package f90y

import (
	"fmt"
	"math"
	"math/rand"
	"strings"
	"testing"
	"testing/quick"

	"f90y/internal/cm2"
	"f90y/internal/interp"
	"f90y/internal/nir"
	"f90y/internal/opt"
	"f90y/internal/pe"
	"f90y/internal/workload"
)

// configs are the optimization levels every corpus program must agree
// under: the full compiler, the CMF-like per-statement configuration, a
// naive PE back end, and everything off.
var configs = map[string]Config{
	"optimized": {Opt: opt.Default, PE: pe.Optimized},
	"cmf-like":  {Opt: opt.Options{PadSections: true}, PE: pe.Optimized},
	"naive-pe":  {Opt: opt.Default, PE: pe.Naive},
	"no-opt":    {Opt: opt.Options{PadSections: true}, PE: pe.Naive},
}

// agree compiles and runs src under every configuration and checks
// arrays, scalars, and PRINT output against the reference interpreter.
func agree(t *testing.T, name, src string) {
	t.Helper()
	oracle, err := Interpret(name, src)
	if err != nil {
		t.Fatalf("oracle: %v\n%s", err, src)
	}
	for cname, cfg := range configs {
		comp, err := Compile(name, src, cfg)
		if err != nil {
			t.Fatalf("[%s] compile: %v\n%s", cname, err, src)
		}
		res, err := comp.Run()
		if err != nil {
			t.Fatalf("[%s] run: %v\n%s", cname, err, src)
		}
		compare(t, cname, src, oracle, res)
	}
}

const tol = 1e-9

func close2(a, b float64) bool {
	if a == b {
		return true
	}
	d := math.Abs(a - b)
	return d <= tol*math.Max(1, math.Max(math.Abs(a), math.Abs(b)))
}

func compare(t *testing.T, cname, src string, oracle *interp.Machine, res *cm2.Result) {
	t.Helper()
	for name, arr := range res.Store.Arrays {
		if strings.HasPrefix(name, "tmp") {
			continue // compiler temporaries have no oracle counterpart
		}
		oa := oracle.Array(name)
		if oa == nil {
			t.Fatalf("[%s] oracle missing array %q", cname, name)
		}
		if oa.Size() != arr.Size() {
			t.Fatalf("[%s] %q size %d vs %d", cname, name, arr.Size(), oa.Size())
		}
		for i := 0; i < arr.Size(); i++ {
			var want float64
			switch oa.Kind {
			case interp.KInt:
				want = float64(oa.I[i])
			case interp.KLogical:
				if oa.B[i] {
					want = 1
				}
			default:
				want = oa.F[i]
			}
			if !close2(arr.Data[i], want) {
				t.Fatalf("[%s] %q[%d] = %v, oracle %v\nsource:\n%s", cname, name, i, arr.Data[i], want, src)
			}
		}
	}
	for name, got := range res.Store.Scalars {
		if strings.HasPrefix(name, "tmp") {
			continue
		}
		ov, ok := oracle.Scalar(name)
		if !ok {
			t.Fatalf("[%s] oracle missing scalar %q", cname, name)
		}
		var want float64
		switch ov.Kind {
		case interp.KInt:
			want = float64(ov.I)
		case interp.KLogical:
			if ov.B {
				want = 1
			}
		default:
			want = ov.F
		}
		if !close2(got, want) {
			t.Fatalf("[%s] scalar %q = %v, oracle %v\nsource:\n%s", cname, name, got, want, src)
		}
	}
	if want, got := oracle.Output(), res.Output; len(want) != len(got) {
		t.Fatalf("[%s] output lines %d vs %d:\n%q\n%q", cname, len(got), len(want), got, want)
	} else {
		for i := range want {
			if want[i] != got[i] {
				t.Fatalf("[%s] output[%d] = %q, oracle %q", cname, i, got[i], want[i])
			}
		}
	}
}

func wrap(body string) string {
	return "program t\n" + body + "\nend program t\n"
}

func TestEndToEndPaperSection21(t *testing.T) {
	agree(t, "fig8.f90", wrap(`integer k(128,64), l(128)
integer i, j
do 10 i=1,128
   l(i) = 3
   do 20 j=1,64
      k(i,j) = i + j
20 continue
10 continue
l = 6
k = 2*k + 5
l(32:64) = l(96:128)
k(32:64,:) = k(32:64,:)**2`))
}

func TestEndToEndFig9(t *testing.T) {
	agree(t, "fig9.f90", wrap(`integer, array(64,64) :: a, b
integer c(64)
integer i
forall (i=1:64, j=1:64) b(i,j) = i*3 + j
forall (i=1:64, j=1:64) a(i,j) = b(i,j) + j
do i = 1, 64
  c(i) = a(i,i)
end do
b = a`))
}

func TestEndToEndFig10(t *testing.T) {
	agree(t, "fig10.f90", wrap(`integer, array(32,32) :: a, b
integer c(32)
integer n
n = 7
a = n
b(1:32:2,:) = a(1:32:2,:)
c = n + 1
b(2:32:2,:) = 5*a(2:32:2,:)`))
}

func TestEndToEndFig7Forall(t *testing.T) {
	agree(t, "fig7.f90", wrap("integer, array(32,32) :: a\nforall (i=1:32, j=1:32) a(i,j) = i+j"))
}

func TestEndToEndCshift(t *testing.T) {
	agree(t, "cshift.f90", wrap(`real, array(16,16) :: v, z
real fsdx
integer i
forall (i=1:16, j=1:16) v(i,j) = i*0.5 + j*j
fsdx = 4.0/16.0
z = fsdx*(v - cshift(v, dim=1, shift=-1))`))
}

func TestEndToEndSWEExcerpt(t *testing.T) {
	// The Fig. 12 statement, with real CSHIFT communication.
	agree(t, "fig12.f90", wrap(`real, array(32,32) :: z, u, v, p
real fsdx, fsdy
forall (i=1:32, j=1:32) u(i,j) = i + 2*j
forall (i=1:32, j=1:32) v(i,j) = 3*i - j
forall (i=1:32, j=1:32) p(i,j) = 100 + i + j
fsdx = 4.0/32.0
fsdy = 4.0/32.0
z = (fsdx*(v - cshift(v, dim=1, shift=-1)) - &
     fsdy*(u - cshift(u, dim=2, shift=-1))) / (p + cshift(p, dim=1, shift=1))`))
}

func TestEndToEndWhere(t *testing.T) {
	agree(t, "where.f90", wrap(`real a(64), b(64)
integer i
do i = 1, 64
  a(i) = i - 32.5
end do
where (a > 0)
  b = sqrt(a)
elsewhere
  b = -a
end where
where (b > 30.0) b = 30.0`))
}

func TestEndToEndWhereMaskConflict(t *testing.T) {
	agree(t, "wherec.f90", wrap(`real a(16)
integer i
do i = 1, 16
  a(i) = i - 8.5
end do
where (a > 0) a = -a`))
}

func TestEndToEndReductionsAndPrint(t *testing.T) {
	agree(t, "reduce.f90", wrap(`real a(100)
real s, mx, mn
integer i
do i = 1, 100
  a(i) = sin(i*0.1)
end do
s = sum(a)
mx = maxval(a)
mn = minval(a)
print *, 'n =', size(a)`))
}

func TestEndToEndEoshiftTransposeSpread(t *testing.T) {
	agree(t, "comm.f90", wrap(`integer, array(8,8) :: a, b
integer v(8)
integer, array(4,8) :: sp
forall (i=1:8, j=1:8) a(i,j) = 10*i + j
b = transpose(a)
forall (i=1:8) v(i) = i*i
sp = spread(v, 1, 4)
a = eoshift(a, 1, boundary=-1, dim=2)`))
}

func TestEndToEndDotProduct(t *testing.T) {
	agree(t, "dot.f90", wrap(`real x(32), y(32)
real d
integer i
do i = 1, 32
  x(i) = i*0.25
  y(i) = 1.0/i
end do
d = dot_product(x, y)`))
}

func TestEndToEndMerge(t *testing.T) {
	agree(t, "merge.f90", wrap(`integer a(16), b(16), c(16)
integer i
do i = 1, 16
  a(i) = i
  b(i) = -i
end do
c = merge(a, b, mod(a, 3) == 0)`))
}

func TestEndToEndControlFlow(t *testing.T) {
	agree(t, "control.f90", wrap(`integer i, s, n
real x(8)
n = 12
s = 0
do while (s < 50)
  s = s + n
end do
if (s > 55) then
  x = 1.5
else if (s > 50) then
  x = 2.5
else
  x = 3.5
end if
do i = 8, 1, -2
  x(i) = x(i) + i
end do`))
}

func TestEndToEndSerialDiagonal(t *testing.T) {
	agree(t, "diag.f90", wrap(`integer, array(16,16) :: a
integer c(16)
integer i
forall (i=1:16, j=1:16) a(i,j) = i*100 + j
do i = 1, 16
  c(i) = a(i, 17-i)
end do`))
}

func TestEndToEndGatherForall(t *testing.T) {
	agree(t, "gather.f90", wrap(`integer, array(8,8) :: a, b
forall (i=1:8, j=1:8) b(i,j) = 10*i + j
forall (i=1:8, j=1:8) a(i,j) = b(j,i)`))
}

func TestEndToEndMixedKinds(t *testing.T) {
	agree(t, "kinds.f90", wrap(`integer k(16)
real x(16)
double precision d(16)
integer i
do i = 1, 16
  k(i) = i*3 - 20
end do
x = k/2 + 0.5
d = x*2.0d0 + abs(k)
k = int(d) - k**2`))
}

func TestEndToEndPowers(t *testing.T) {
	agree(t, "pow.f90", wrap(`real x(8), y(8)
integer k(8)
integer i
do i = 1, 8
  x(i) = 1.0 + i*0.25
  k(i) = i
end do
y = x**3 + x**(-2)
k = k**2`))
}

func TestEndToEndStopAndOutput(t *testing.T) {
	agree(t, "stop.f90", wrap(`integer i
i = 41
print *, 'before', i
i = i + 1
print *, 'answer', i
stop
print *, 'never'`))
}

func TestEndToEndExplicitBounds(t *testing.T) {
	agree(t, "bounds.f90", wrap(`real, dimension(0:15) :: a
integer i
do i = 0, 15
  a(i) = i*1.5
end do
a(0:7) = a(8:15)`))
}

func TestEndToEndTimeLoopWithComm(t *testing.T) {
	// The SWE pattern: a serial time loop containing parallel compute and
	// communication, exercising blocking inside loop bodies.
	agree(t, "timeloop.f90", wrap(`real, array(16,16) :: u, unew
integer it
forall (i=1:16, j=1:16) u(i,j) = i + j*j
do it = 1, 5
  unew = 0.25*(cshift(u, 1, 1) + cshift(u, -1, 1) + cshift(u, 1, 2) + cshift(u, -1, 2))
  u = unew + 0.01
end do`))
}

// TestRandomStraightLinePrograms is the semantic-preservation property
// test: randomized whole-array straight-line programs must agree with the
// oracle under every optimization level.
func TestRandomStraightLinePrograms(t *testing.T) {
	gen := func(seed int64) string {
		r := rand.New(rand.NewSource(seed))
		arrays := []string{"a", "b", "c", "d"}
		var b strings.Builder
		b.WriteString("program r\nreal a(24), b(24), c(24), d(24)\ninteger i\n")
		b.WriteString("do i = 1, 24\n  a(i) = i*0.5\n  b(i) = 25 - i\n  c(i) = i*i*0.01\n  d(i) = 1.0\nend do\n")
		ops := []string{"+", "-", "*"}
		for k := 0; k < 6+r.Intn(6); k++ {
			tgt := arrays[r.Intn(len(arrays))]
			e1 := arrays[r.Intn(len(arrays))]
			e2 := arrays[r.Intn(len(arrays))]
			op := ops[r.Intn(len(ops))]
			switch r.Intn(4) {
			case 0:
				fmt.Fprintf(&b, "%s = %s %s %s\n", tgt, e1, op, e2)
			case 1:
				fmt.Fprintf(&b, "%s = %s %s %g\n", tgt, e1, op, float64(r.Intn(9))+0.5)
			case 2:
				fmt.Fprintf(&b, "%s = abs(%s) %s %s\n", tgt, e1, op, e2)
			case 3:
				fmt.Fprintf(&b, "where (%s > %s) %s = %s %s 2.0\n", e1, e2, tgt, e1, op)
			}
		}
		b.WriteString("end program r\n")
		return b.String()
	}
	f := func(seed int64) bool {
		src := gen(seed)
		oracle, err := Interpret("rand.f90", src)
		if err != nil {
			t.Logf("oracle failed: %v\n%s", err, src)
			return false
		}
		for cname, cfg := range configs {
			comp, err := Compile("rand.f90", src, cfg)
			if err != nil {
				t.Logf("[%s] compile: %v\n%s", cname, err, src)
				return false
			}
			res, err := comp.Run()
			if err != nil {
				t.Logf("[%s] run: %v\n%s", cname, err, src)
				return false
			}
			for _, name := range []string{"a", "b", "c", "d"} {
				oa := oracle.Array(name)
				arr := res.Store.Arrays[name]
				for i := 0; i < arr.Size(); i++ {
					if !close2(arr.Data[i], oa.F[i]) {
						t.Logf("[%s] %s[%d]=%v oracle %v\n%s", cname, name, i, arr.Data[i], oa.F[i], src)
						return false
					}
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Fatal(err)
	}
}

// TestModeledPerformanceCounters checks the cost accounting is populated
// and internally consistent.
func TestModeledPerformanceCounters(t *testing.T) {
	src := wrap(`real, array(64,64) :: u, v
integer it
u = 1.5
do it = 1, 3
  v = cshift(u, 1, 1)*0.5 + u
  u = v
end do`)
	comp, err := Compile("perf.f90", src, DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	res, err := comp.Run()
	if err != nil {
		t.Fatal(err)
	}
	if res.NodeCalls == 0 || res.CommCalls == 0 {
		t.Fatalf("calls: node=%d comm=%d", res.NodeCalls, res.CommCalls)
	}
	if res.Flops == 0 || res.PECycles == 0 || res.CommCycles == 0 || res.HostCycles == 0 {
		t.Fatalf("counters: %+v", res)
	}
	if res.GFLOPS() <= 0 {
		t.Fatalf("gflops = %v", res.GFLOPS())
	}
	_ = nir.True // keep import for the helper below
}

// TestEndToEndSWE runs the paper's benchmark itself through the full
// compiler and checks the fields against the oracle.
func TestEndToEndSWE(t *testing.T) {
	src := workload.SWE(16, 3)
	agree(t, "swe.f90", src)
}

// TestSWEPerformanceShape checks the §6 qualitative claim inside the
// compiled path: the optimized compiler spends fewer total cycles than the
// per-statement (CMF-like) configuration on the same SWE run.
func TestSWEPerformanceShape(t *testing.T) {
	src := workload.SWE(64, 2)
	run := func(cfg Config) *cm2.Result {
		comp, err := Compile("swe.f90", src, cfg)
		if err != nil {
			t.Fatal(err)
		}
		res, err := comp.Run()
		if err != nil {
			t.Fatal(err)
		}
		return res
	}
	full := run(Config{Opt: opt.Default, PE: pe.Optimized})
	cmfLike := run(Config{Opt: opt.Options{PadSections: true}, PE: pe.Optimized})
	if full.TotalCycles() >= cmfLike.TotalCycles() {
		t.Fatalf("blocking did not pay: %v >= %v cycles", full.TotalCycles(), cmfLike.TotalCycles())
	}
	if full.NodeCalls >= cmfLike.NodeCalls {
		t.Fatalf("blocking did not reduce node calls: %d vs %d", full.NodeCalls, cmfLike.NodeCalls)
	}
	if full.GFLOPS() <= cmfLike.GFLOPS() {
		t.Fatalf("GFLOPS: full %v <= cmf %v", full.GFLOPS(), cmfLike.GFLOPS())
	}
}

func TestEndToEndLogicalReductions(t *testing.T) {
	agree(t, "lred.f90", wrap(`real a(32)
logical anyneg, allpos
integer nneg
real prod
integer i
do i = 1, 32
  a(i) = i - 5.5
end do
anyneg = any(a < 0)
allpos = all(a > 0)
nneg = count(a < 0)
prod = product(a(1:4))
print *, anyneg, allpos, nneg, prod`))
}

func TestEndToEndSpillCodeExecutes(t *testing.T) {
	// Register pressure past the file: the spill/restore code itself must
	// compute correct values, not only correct costs.
	agree(t, "spill.f90", wrap(`real a(16), b(16), c(16), d(16), e(16), f(16)
real g(16), h(16), p(16), q(16), r(16)
integer i
do i = 1, 16
  a(i) = i*0.5
  b(i) = i + 1.0
  c(i) = 17.0 - i
  d(i) = i*i*0.1
  e(i) = 1.0/i
  f(i) = i - 8.0
  g(i) = i*0.25 + 3.0
  h(i) = 2.0*i - 5.0
  p(i) = i*1.5
  q(i) = 20.0 - i*0.5
end do
r = (a+b+c+d+e+f+g+h+p+q) * (a*b*c*d*e*f*g*h*p*q)`))
}

func TestEndToEndForallStride(t *testing.T) {
	agree(t, "fstride.f90", wrap(`integer a(16)
a = -1
forall (i=1:16:3) a(i) = i*i`))
}

func TestEndToEndNestedWhereInLoop(t *testing.T) {
	agree(t, "nestwhere.f90", wrap(`real a(32), b(32)
integer it
integer i
do i = 1, 32
  a(i) = sin(i*0.3)
end do
b = 0.0
do it = 1, 4
  where (a > 0)
    b = b + a
  elsewhere
    b = b - a*0.5
  end where
  a = cshift(a, 1)
end do`))
}

func TestEndToEndSectionWithBoundsAndStride(t *testing.T) {
	agree(t, "secmix.f90", wrap(`integer a(20), b(20)
integer i
do i = 1, 20
  a(i) = i
  b(i) = 0
end do
b(3:17:2) = a(3:17:2)*10
b(2:20:4) = b(2:20:4) + 1`))
}

func TestEndToEndEoshiftNegative(t *testing.T) {
	agree(t, "eoneg.f90", wrap(`integer a(6), b(6)
integer i
do i = 1, 6
  a(i) = i*11
end do
b = eoshift(a, -2, boundary=7)`))
}

func TestEndToEndMultipleKindsInOneBlock(t *testing.T) {
	agree(t, "mixblock.f90", wrap(`integer k(24)
real x(24), y(24)
integer i
do i = 1, 24
  k(i) = i - 12
end do
x = k*0.5
y = abs(x) + k
k = k + int(y)`))
}

func TestEndToEndDoublePrecisionSWEStep(t *testing.T) {
	agree(t, "dpstep.f90", wrap(`double precision u(16), v(16)
double precision dt
integer i
do i = 1, 16
  u(i) = sin(i*0.4)
end do
dt = 0.125d0
v = u + dt*(cshift(u, 1) - 2.0d0*u + cshift(u, -1))`))
}
