program swe
integer, parameter :: n = 64
integer, parameter :: itmax = 2
real, array(n,n) :: u, v, p, unew, vnew, pnew, uold, vold, pold
real, array(n,n) :: cu, cv, z, h, psi
real, parameter :: a = 1000000.0
real, parameter :: dt = 90.0
real, parameter :: el = n*100000.0
real :: pi, tpi, di, dj, pcf, dx, dy, fsdx, fsdy, tdt, tdts8, tdtsdx, tdtsdy, alpha
integer :: ncycle
pi = 3.14159265359
tpi = pi + pi
di = tpi/n
dj = tpi/n
dx = 100000.0
dy = 100000.0
fsdx = 4.0/dx
fsdy = 4.0/dy
alpha = 0.001
pcf = pi*pi*a*a/(el*el)

! Initial conditions from a stream function.
forall (i=1:n, j=1:n) psi(i,j) = a*sin((i - 0.5)*di)*sin((j - 0.5)*dj)
forall (i=1:n, j=1:n) p(i,j) = pcf*(cos(2.0*(i - 1)*di) + cos(2.0*(j - 1)*dj)) + 50000.0
u = -(cshift(psi, dim=2, shift=1) - psi)*(n/el)*10.0
v = (cshift(psi, dim=1, shift=1) - psi)*(n/el)*10.0
uold = u
vold = v
pold = p
tdt = dt

do ncycle = 1, itmax
  ! Compute capital-U, capital-V, Z and H.
  cu = 0.5*(p + cshift(p, dim=1, shift=-1))*u
  cv = 0.5*(p + cshift(p, dim=2, shift=-1))*v
  z = (fsdx*(v - cshift(v, dim=1, shift=-1)) - fsdy*(u - cshift(u, dim=2, shift=-1))) &
      / (p + cshift(p, dim=1, shift=-1) + cshift(p, dim=2, shift=-1) &
         + cshift(cshift(p, dim=1, shift=-1), dim=2, shift=-1))
  h = p + 0.25*(u*u + cshift(u, dim=1, shift=1)*cshift(u, dim=1, shift=1)) &
        + 0.25*(v*v + cshift(v, dim=2, shift=1)*cshift(v, dim=2, shift=1))

  tdts8 = tdt/8.0
  tdtsdx = tdt/dx
  tdtsdy = tdt/dy

  ! Advance the prognostic fields.
  unew = uold + tdts8*(z + cshift(z, dim=2, shift=1))*(cv + cshift(cv, dim=1, shift=1) &
         + cshift(cshift(cv, dim=1, shift=1), dim=2, shift=-1) + cshift(cv, dim=2, shift=-1)) &
         - tdtsdx*(h - cshift(h, dim=1, shift=-1))
  vnew = vold - tdts8*(z + cshift(z, dim=1, shift=1))*(cu + cshift(cu, dim=2, shift=1) &
         + cshift(cshift(cu, dim=1, shift=-1), dim=2, shift=1) + cshift(cu, dim=1, shift=-1)) &
         - tdtsdy*(h - cshift(h, dim=2, shift=-1))
  pnew = pold - tdtsdx*(cshift(cu, dim=1, shift=1) - cu) - tdtsdy*(cshift(cv, dim=2, shift=1) - cv)

  ! Robert–Asselin time filter and rotation.
  uold = u + alpha*(unew - 2.0*u + uold)
  vold = v + alpha*(vnew - 2.0*v + vold)
  pold = p + alpha*(pnew - 2.0*p + pold)
  u = unew
  v = vnew
  p = pnew
  tdt = dt + dt
end do
end program swe
