// Stencil: a nine-point convolution of the kind §1 says the CM Fortran
// machine model handled poorly ("the sort of fine-grain processing users
// perform using stencils"). The example shows how Fortran-90-Y's phase
// analysis turns the stencil into clustered grid communications followed
// by one fused computation block per sweep, and compares PE-optimization
// ablations on the generated node code.
//
// Run with:
//
//	go run ./examples/stencil [-n 128] [-iters 4]
package main

import (
	"flag"
	"fmt"
	"log"

	"f90y"
	"f90y/internal/opt"
	"f90y/internal/pe"
	"f90y/internal/workload"
)

func main() {
	n := flag.Int("n", 128, "grid edge")
	iters := flag.Int("iters", 4, "sweeps")
	flag.Parse()

	src := workload.Stencil(*n, *iters)

	type variant struct {
		name string
		cfg  f90y.Config
	}
	variants := []variant{
		{"naive PE, no blocking", f90y.Config{Opt: opt.Options{PadSections: true}, PE: pe.Naive}},
		{"optimized PE, no blocking", f90y.Config{Opt: opt.Options{PadSections: true}, PE: pe.Optimized}},
		{"full Fortran-90-Y", f90y.DefaultConfig()},
	}

	fmt.Printf("nine-point stencil, %dx%d grid, %d sweeps\n\n", *n, *n, *iters)
	fmt.Printf("%-28s %12s %12s %12s\n", "configuration", "node calls", "cycles", "GFLOPS")
	var first *float64
	for _, v := range variants {
		comp, err := f90y.Compile("stencil.f90", src, v.cfg)
		if err != nil {
			log.Fatal(err)
		}
		res, err := comp.Run()
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%-28s %12d %12.0f %12.2f\n", v.name, res.NodeCalls, res.TotalCycles(), res.GFLOPS())
		if first == nil {
			c := res.TotalCycles()
			first = &c
		} else if res.TotalCycles() > *first {
			log.Fatalf("%s got slower than the naive baseline", v.name)
		}
	}

	// The full configuration's result is verified against the oracle.
	comp, _ := f90y.Compile("stencil.f90", src, f90y.DefaultConfig())
	res, _ := comp.Run()
	oracle, err := f90y.Interpret("stencil.f90", src)
	if err != nil {
		log.Fatal(err)
	}
	want := oracle.Array("grid")
	got := res.Store.Arrays["grid"]
	for i := range got.Data {
		if diff := got.Data[i] - want.F[i]; diff > 1e-9 || diff < -1e-9 {
			log.Fatalf("grid[%d]: compiled %v, oracle %v", i, got.Data[i], want.F[i])
		}
	}
	fmt.Printf("\nverify: all %d grid points match the reference interpreter\n", len(got.Data))
}
