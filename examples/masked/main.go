// Masked: WHERE/ELSEWHERE computation and strided-section assignment on
// the simulated CM/2. The slicewise PE has no conditional control flow —
// "the programmer must use masked moves to simulate conditional
// assignment" (§2.2) — so the compiler pads sections to full-array masked
// operations (Fig. 10) and blocks the disjoint-mask moves together. The
// example prints the generated PEAC so the masked stores and coordinate
// mask tests are visible.
//
// Run with:
//
//	go run ./examples/masked
package main

import (
	"fmt"
	"log"

	"f90y"
)

const source = `
program masked
integer, parameter :: n = 64
real, array(n,n) :: field, work
real bound
forall (i=1:n, j=1:n) field(i,j) = sin(i*0.2) * cos(j*0.3) * 10.0

! Clip through WHERE/ELSEWHERE: complementary masked moves.
bound = 4.0
where (field > bound)
  work = bound
elsewhere
  work = field
end where

! Red-black relaxation via disjoint stride-2 sections (Fig. 10 pattern):
! the optimizer pads both to full-shape masked moves and fuses them.
field(1:n:2,:) = work(1:n:2,:)*0.5
field(2:n:2,:) = work(2:n:2,:)*2.0
end program masked
`

func main() {
	comp, err := f90y.Compile("masked.f90", source, f90y.DefaultConfig())
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("optimizer: %d section moves padded to masked full-shape moves, %d fused\n\n",
		comp.OptStats.PaddedMoves, comp.OptStats.FusedMoves)

	for _, r := range comp.Program.Routines {
		fmt.Printf("--- %s (%d instructions, %d spill slots) ---\n", r.Name, r.InstrCount(), r.SpillSlots)
		fmt.Print(r.Format())
		fmt.Println()
	}

	res, err := comp.Run()
	if err != nil {
		log.Fatal(err)
	}
	oracle, err := f90y.Interpret("masked.f90", source)
	if err != nil {
		log.Fatal(err)
	}
	want := oracle.Array("field")
	got := res.Store.Arrays["field"]
	for i := range got.Data {
		if d := got.Data[i] - want.F[i]; d > 1e-9 || d < -1e-9 {
			log.Fatalf("field[%d]: compiled %v, oracle %v", i, got.Data[i], want.F[i])
		}
	}
	fmt.Printf("verify: %d elements match the reference interpreter\n", len(got.Data))
	fmt.Printf("modeled: %.2f GFLOPS over %d node dispatches\n", res.GFLOPS(), res.NodeCalls)
}
