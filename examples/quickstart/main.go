// Quickstart: compile a small data-parallel Fortran 90 program with the
// Fortran-90-Y pipeline, run it on the simulated CM/2, and inspect both
// the program's output and the machine model's performance report.
//
// Run with:
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"log"

	"f90y"
)

// The §2.1 example from the paper: whole-array assignments replacing the
// Fortran 77 loop nest.
const source = `
program quickstart
integer k(128,64), l(128)
integer ksum
l = 6
k = 2*k + 5
k(32:64,:) = k(32:64,:)**2
ksum = sum(k)
print *, 'sum of k =', ksum
end program quickstart
`

func main() {
	comp, err := f90y.Compile("quickstart.f90", source, f90y.DefaultConfig())
	if err != nil {
		log.Fatal(err)
	}

	// The compiler retains every intermediate artifact for inspection.
	fmt.Printf("partition: %d PEAC node routines, %d communication calls, %d host moves\n",
		comp.PartStats.NodeRoutines, comp.PartStats.CommCalls, comp.PartStats.HostMoves)
	for _, r := range comp.Program.Routines {
		fmt.Printf("  routine %s: %d instructions, %d flops/iteration\n",
			r.Name, r.InstrCount(), r.FlopsPerIteration())
	}

	res, err := comp.Run()
	if err != nil {
		log.Fatal(err)
	}
	for _, line := range res.Output {
		fmt.Println("program output:", line)
	}
	fmt.Printf("modeled: %.3f ms on %d PEs, %.2f GFLOPS\n",
		res.Seconds()*1e3, comp.Machine.PEs, res.GFLOPS())

	// Cross-check against the reference interpreter.
	oracle, err := f90y.Interpret("quickstart.f90", source)
	if err != nil {
		log.Fatal(err)
	}
	want, _ := oracle.Scalar("ksum")
	got := res.Store.Scalars["ksum"]
	fmt.Printf("verify: compiled ksum = %v, interpreter ksum = %d\n", got, want.I)
	if got != float64(want.I) {
		log.Fatal("MISMATCH")
	}
}
