// SWE: the paper's §6 benchmark — the shallow-water equations — compiled
// by Fortran-90-Y and executed on the simulated CM/2, alongside the two
// baselines of the evaluation: the hand-coded fieldwise *Lisp program and
// the CM Fortran v1.1 model.
//
// Run with:
//
//	go run ./examples/swe [-n 256] [-steps 4]
package main

import (
	"flag"
	"fmt"
	"log"

	"f90y"
	"f90y/internal/cm2"
	"f90y/internal/cmf"
	"f90y/internal/starlisp"
	"f90y/internal/workload"
)

func main() {
	n := flag.Int("n", 256, "grid edge")
	steps := flag.Int("steps", 4, "time steps")
	flag.Parse()

	src := workload.SWE(*n, *steps)

	// Hand-coded *Lisp, fieldwise model.
	_, sl := starlisp.RunSWE(*n, *steps, starlisp.DefaultModel)

	// CM Fortran model: same back end, per-statement compilation.
	machine := cm2.Default()
	cmfRes, err := cmf.Run("swe.f90", src, machine)
	if err != nil {
		log.Fatal(err)
	}

	// Fortran-90-Y, full shape transformations.
	comp, err := f90y.Compile("swe.f90", src, f90y.DefaultConfig())
	if err != nil {
		log.Fatal(err)
	}
	res, err := comp.Run()
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("shallow-water equations, %dx%d grid, %d steps, 2048 PEs @ 7 MHz\n\n", *n, *n, *steps)
	fmt.Printf("%-30s %10s    %s\n", "system", "modeled GF", "paper (§6)")
	fmt.Printf("%-30s %10.2f    1.89\n", "hand-coded *Lisp (fieldwise)", sl.GFLOPS(starlisp.DefaultModel.ClockHz))
	fmt.Printf("%-30s %10.2f    2.79\n", "CM Fortran v1.1 (model)", cmfRes.GFLOPS())
	fmt.Printf("%-30s %10.2f    2.99\n", "Fortran-90-Y", res.GFLOPS())

	fmt.Printf("\nFortran-90-Y detail: %d node routines (%d dispatches), %d communications\n",
		comp.PartStats.NodeRoutines, res.NodeCalls, res.CommCalls)
	fmt.Printf("optimizer: %d moves fused into blocks, %d communications hoisted\n",
		comp.OptStats.FusedMoves, comp.OptStats.HoistedComms)
	fmt.Printf("cycle split per step: PE %.0f, comm %.0f, host %.0f\n",
		res.PECycles/float64(*steps), res.CommCycles/float64(*steps), res.HostCycles/float64(*steps))
}
