package f90y

import (
	"errors"
	"strings"
	"testing"

	"f90y/internal/workload"
)

// TestCompileMalformedInput locks in the hardening contract: truncated
// and garbage sources produce a diagnostic (or compile cleanly), never
// a process crash. A recovered internal panic surfaces as *PanicError
// and counts as a failure here.
func TestCompileMalformedInput(t *testing.T) {
	swe := workload.SWE(8, 1)
	cases := map[string]string{
		"empty":            "",
		"bare-keyword":     "program",
		"unclosed-decl":    "program p\nreal :: a(\nend",
		"unclosed-do":      "program p\ninteger :: i\ndo i = 1, 10\nend program p",
		"binary-garbage":   "\x00\xff\xfe\x01 !@#$%^&*",
		"truncated-swe-1":  swe[:len(swe)/4],
		"truncated-swe-2":  swe[:len(swe)/2],
		"truncated-swe-3":  swe[:len(swe)-5],
		"shuffled-lines":   shuffleLines(swe),
		"operators-only":   "+ - * / ** = ( ) , ::",
		"deep-parens":      "program p\nreal :: x\nx = " + strings.Repeat("(", 200) + "1" + strings.Repeat(")", 200) + "\nend program p",
		"statement-noise":  "program p\nif then else where do while\nend program p",
		"mismatched-paren": "program p\nreal :: a(10)\na(1 = 2)\nend program p",
	}
	for name, src := range cases {
		t.Run(name, func(t *testing.T) {
			_, err := Compile(name+".f90", src, DefaultConfig())
			var pe *PanicError
			if errors.As(err, &pe) {
				t.Fatalf("compiler panicked in phase %s on %s input: %v\n%s",
					pe.Phase, name, pe.Value, pe.Stack)
			}
		})
	}
}

// shuffleLines deterministically reorders a program's lines (reversal —
// no randomness, the test must be reproducible).
func shuffleLines(src string) string {
	lines := strings.Split(src, "\n")
	for i, j := 0, len(lines)-1; i < j; i, j = i+1, j-1 {
		lines[i], lines[j] = lines[j], lines[i]
	}
	return strings.Join(lines, "\n")
}

// TestGuardRecoversPanic exercises the phase guard directly: a panic
// inside a phase becomes a structured *PanicError naming the file and
// phase, with the stack attached.
func TestGuardRecoversPanic(t *testing.T) {
	err := guard("x.f90", "lower", func() error { panic("boom") })
	var pe *PanicError
	if !errors.As(err, &pe) {
		t.Fatalf("guard returned %v, want *PanicError", err)
	}
	if pe.File != "x.f90" || pe.Phase != "lower" {
		t.Errorf("PanicError = {File: %q, Phase: %q}, want {x.f90, lower}", pe.File, pe.Phase)
	}
	if pe.Value != "boom" {
		t.Errorf("PanicError.Value = %v, want boom", pe.Value)
	}
	if len(pe.Stack) == 0 {
		t.Error("PanicError.Stack is empty")
	}
	if !strings.Contains(pe.Error(), "internal compiler error in lower") {
		t.Errorf("Error() = %q, want phase named", pe.Error())
	}

	// Errors pass through untouched.
	want := errors.New("plain")
	if got := guard("x.f90", "parse", func() error { return want }); got != want {
		t.Errorf("guard(err) = %v, want %v", got, want)
	}
}
