module f90y

go 1.22
