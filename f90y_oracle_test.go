package f90y_test

// FuzzOracle lives in the external test package: internal/oracle
// imports f90y, so an in-package fuzz target would be an import cycle.

import (
	"errors"
	"fmt"
	"math"
	"os"
	"strconv"
	"testing"
	"time"

	"f90y"
	"f90y/internal/oracle"
	"f90y/internal/workload"
)

// FuzzOracle feeds fuzzer-generated programs through the differential
// check: any program the compiler accepts must produce agreeing results
// on the reference interpreter and both machine backends, under both
// executor engines (interpreted and JIT-compiled) — the fuzzer is part
// of the gate that keeps the compiled engine bit-exact. Inputs that
// fail to compile, exceed the cycle/step/size guards, or trip known
// semantic gaps between the backends are skipped; a genuine divergence
// or a compiler panic fails the run.
func FuzzOracle(f *testing.F) {
	f.Add(workload.SWE(8, 1))
	f.Add(workload.Fig9(8))
	f.Add(workload.Fig10(8))
	f.Add(workload.Stencil(8, 2))
	f.Add("program p\ninteger :: i\ni = 1\nprint *, i\nend program p\n")
	f.Add("program q\nreal :: a(4), b(4)\na = 2.0\nb = sqrt(a) + cshift(a, 1)\nprint *, sum(b)\nend program q\n")
	f.Fuzz(func(t *testing.T, src string) {
		start := time.Now()
		defer func() {
			if d := time.Since(start); d > 2*time.Second {
				fmt.Fprintf(os.Stderr, "SLOW %v src=%q\n", d, src)
				t.Fatalf("slow exec: %v", d)
			}
		}()
		// Tight guards keep throughput up: an interpreter statement can
		// touch every lane of every array, so the step and element
		// limits multiply into the worst-case cost per exec. Both
		// executor engines must pass; divergence handling below applies
		// to whichever engine failed first.
		var rep *oracle.Report
		var err error
		for _, jit := range []bool{false, true} {
			rep, err = oracle.Verify("fuzz.f90", src, oracle.Options{
				MaxCycles:   2_000_000,
				InterpSteps: 20_000,
				MaxElems:    1 << 10,
				ExecJIT:     jit,
			})
			if err != nil {
				break
			}
		}
		if err == nil {
			return
		}
		var pe *f90y.PanicError
		if errors.As(err, &pe) {
			t.Fatalf("compiler panicked in phase %s: %v\n%s", pe.Phase, pe.Value, pe.Stack)
		}
		if !errors.Is(err, oracle.ErrDivergence) {
			return // compile/run/guard failures are not oracle findings
		}
		d := rep.Divergence
		// Known semantic gap, not a bug: the interpreter carries
		// integers as int64 while the compiled store truncates through
		// float64, so arithmetic past 2^53 (and overflow past 2^63)
		// legitimately differs. Skip integer divergences at magnitudes
		// where the representations part ways.
		if d != nil && d.Kind == "int" {
			const bound = float64(1 << 53)
			if a, err := strconv.ParseFloat(d.AVal, 64); err == nil && math.Abs(a) >= bound {
				t.Skip("integer magnitude beyond exact float64 range")
			}
			if b, err := strconv.ParseFloat(d.BVal, 64); err == nil && math.Abs(b) >= bound {
				t.Skip("integer magnitude beyond exact float64 range")
			}
		}
		t.Fatalf("differential divergence: %v", err)
	})
}
