GO ?= go

.PHONY: check vet build test race smoke serve-smoke loadtest crash-smoke crash-soak fuzz-smoke profile-smoke layout-smoke jit-smoke determinism concurrency soak-short soak bench bench-exec bench-batch bench-record clean

# check is the tier-1 gate (see ROADMAP.md): static analysis, a full
# build, the race-enabled test suite, the race-enabled concurrency
# tests (driver cache, batch executor, cancellation), machine-readable
# benchmark smoke runs (serial and batch mode), a short fuzz of the
# front end, the fault-plane determinism tests, a short fault-invariance
# soak through the differential oracle, an end-to-end smoke of the
# source-line cycle profiler's three artifact formats, the !HPF$
# distribution-plane layout sweep (oracle-verified, deterministic, and
# the layout choice must matter), the compiled-executor bit-identity
# smoke (SWE + the layout kernel trio, interpreter vs JIT, plus an
# oracle-verified JIT run), the f90yd server lifecycle smoke (start,
# load, overload, SIGTERM drain), and the durability-plane crash smoke
# (SIGKILL mid-load, relaunch, bit-identical recovery).
check: vet build race concurrency smoke fuzz-smoke determinism soak-short profile-smoke layout-smoke jit-smoke serve-smoke crash-smoke

vet:
	$(GO) vet ./...

build:
	$(GO) build ./...

# Full suite, including the paper-scale §6 reproduction (~1 min).
test:
	$(GO) test ./...

# Race-enabled suite; -short skips the paper-scale run.
race:
	$(GO) test -race -short ./...

# Race-enabled concurrency gate: shared-artifact determinism, compile
# cache singleflight, LRU byte-bound eviction racing Peek/hot hits and
# in-flight pins (plus the error-entry flood), batch serial/parallel
# identity, cancellation, the
# sharded-executor determinism test (bit-exact stores, cycles, and
# fault/numeric tallies across -exec-workers values, with fault
# injection and the numeric record plane active), the compiled-executor
# differential tests (chunk boundaries, chained-Mem positions, error
# taxonomy, record-plane parity and failure-path merge, all JIT vs
# interpreter across worker counts), and the pool telemetry test
# (workers recording into one shared collector while the modeled
# counters and per-line cycle attribution stay bit-identical to a
# serial run).
concurrency:
	$(GO) test -race -run 'Concurrent|ExecParallelDeterminism|ExecJIT' ./...

# Smoke-test the f90y-bench/v1 JSON writer end to end, serial and with
# the parallel batch pool.
smoke:
	$(GO) run ./cmd/swebench -json -n 128 -steps 2 -o .bench-smoke.json
	$(GO) run ./cmd/swebench -json -parallel 4 -n 128 -steps 2 -o .bench-smoke.json
	rm -f .bench-smoke.json

# End-to-end server lifecycle smoke: build f90yd, start it on a random
# port, fire the swebench -serve-url traffic mix (healthy, verified,
# fault-injected, budget-killer, oversize), assert only documented
# statuses come back, SIGTERM, and assert a clean drain (exit 0 with a
# draining stats snapshot).
serve-smoke:
	REQS=48 LOADW=8 OUT=.load-smoke.json ./scripts/serve_smoke.sh
	rm -f .load-smoke.json

# Durability-plane crash smoke: the swebench -restart harness SIGKILLs
# a -state-dir f90yd mid-load and relaunches it, clean and under
# torn/short durable-write injection. Fails on any silent job loss,
# any result diverging from its uninterrupted baseline, or a run where
# the kills never actually interrupted anything (vacuity check).
crash-smoke:
	KILLS=3 OUT=.crash-smoke.json ./scripts/crash_smoke.sh
	rm -f .crash-smoke.json

# Crash soak: 20 SIGKILL/relaunch cycles per phase (clean + fault
# injected), recording the f90y-crash/v1 evidence quoted in
# EXPERIMENTS.md L2.
crash-soak:
	KILLS=20 OUT=CRASH_soak.json ./scripts/crash_smoke.sh

# Bigger load run against a fresh server, recording the f90y-load/v1
# baseline (healthy p50/p99, per-class status counts) quoted in
# EXPERIMENTS.md L1. 32 clients against 4 workers + a depth-8 queue
# drives the admission queue into overflow on purpose.
loadtest:
	REQS=256 LOADW=32 OUT=LOAD_baseline.json ./scripts/serve_smoke.sh

# Short fuzz of the parser, the whole compile pipeline, and the
# differential oracle (~30s). The native fuzzer also replays the
# regression corpus in testdata/fuzz/. FuzzOracle gets a short budget:
# every successfully-compiling input runs the interpreter plus both
# machine backends, so its throughput is execution-bound, not
# parse-bound.
fuzz-smoke:
	$(GO) test -run '^$$' -fuzz '^FuzzParse$$' -fuzztime 10s .
	$(GO) test -run '^$$' -fuzz '^FuzzCompile$$' -fuzztime 10s .
	$(GO) test -run '^$$' -fuzz '^FuzzOracle$$' -fuzztime 5s .

# End-to-end smoke of the source-line cycle profiler: one run emits the
# annotated listing, the pprof protobuf, and the folded stacks; the
# pprof file must parse with the stock toolchain and the folded file
# must be non-empty.
profile-smoke:
	$(GO) run ./cmd/f90yrun -profile -profile-pprof .profile-smoke.pb.gz \
		-profile-folded .profile-smoke.folded examples/swe.f90 > /dev/null
	$(GO) tool pprof -top .profile-smoke.pb.gz > /dev/null
	test -s .profile-smoke.folded
	rm -f .profile-smoke.pb.gz .profile-smoke.folded

# Distribution-plane smoke: the swebench layout sweep with every
# kernel/layout pair oracle-verified, record determinism across runs,
# at least one kernel whose best layout is not all-BLOCK, and a >= 2x
# worst/best cycle spread (see EXPERIMENTS.md E2').
layout-smoke:
	./scripts/layout_smoke.sh

# Fault-plane invariants: zero overhead with no plan attached, and
# bit-identical replay of the same seed.
determinism:
	$(GO) test -run 'ZeroOverhead|Determinism|Resume' ./internal/cm2/ ./internal/cm5/

# Short fault-invariance soak: the oracle package's soak tests under
# the race detector (2 programs x 2 backends x 2 seeds x 4 plans).
soak-short:
	$(GO) test -race -run 'Soak|Verify' ./internal/oracle/

# Full chaos soak: verify all seven kernels across interp/cm2/cm5,
# then sweep 25 seeds x 4 fault plans x 2 backends (1400 faulted runs)
# asserting bit-exact fault invariance. Reproducers for any violation
# land in soak-repros/.
soak:
	$(GO) run ./cmd/swebench -soak 25 -parallel -1

bench:
	$(GO) test -bench . -benchtime 1x -benchmem -run '^$$' ./...

# Compiled-executor bit-identity smoke: SWE plus the layout kernel trio
# run under the interpreter and the JIT (stores, output, and every
# modeled cycle plane must match exactly), and an oracle-verified JIT
# run of SWE across worker counts.
jit-smoke:
	$(GO) test -run 'JITSmoke' -count=1 .

# Sharded-executor scaling: SWE wall-clock across -exec-workers 1/2/4/8,
# interpreted and JIT-compiled (modeled metrics are identical across all
# eight by construction; see EXPERIMENTS.md).
bench-exec:
	$(GO) test -bench 'SWE_ExecWorkers|ExecJIT' -benchmem -run '^$$' .

# Time the full experiment suite serial vs parallel and write the
# f90y-batch/v1 comparison record.
bench-batch:
	$(GO) run ./cmd/swebench -bench-batch -o BENCH_batch.json

# Refresh the committed baseline records: the f90y-bench/v1 JSON for
# the paper-scale SWE run (with its profile summary), the same run with
# the compiled executor (modeled fields must stay identical; only
# phase wall-clock and the exec_jit marker differ), then the
# sharded-executor scaling benchmarks — interpreted and JIT — for the
# wall-clock numbers quoted in EXPERIMENTS.md.
bench-record:
	$(GO) run ./cmd/swebench -json -n 512 -steps 2 -o BENCH_baseline.json
	$(GO) run ./cmd/swebench -json -exec-jit -n 512 -steps 2 -o BENCH_jit.json
	$(GO) test -bench 'SWE_ExecWorkers|ExecJIT' -benchmem -run '^$$' .

# clean removes generated benchmark outputs but keeps the committed
# BENCH_baseline.json (refresh it with bench-record).
clean:
	rm -f BENCH_swe_*.json BENCH_batch.json .bench-smoke.json .profile-smoke.pb.gz .profile-smoke.folded .load-smoke.json LOAD_swe.json .crash-smoke.json CRASH_swe.json
