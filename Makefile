GO ?= go

.PHONY: check vet build test race smoke bench clean

# check is the tier-1 gate (see ROADMAP.md): static analysis, a full
# build, the race-enabled test suite, and a machine-readable benchmark
# smoke run.
check: vet build race smoke

vet:
	$(GO) vet ./...

build:
	$(GO) build ./...

# Full suite, including the paper-scale §6 reproduction (~1 min).
test:
	$(GO) test ./...

# Race-enabled suite; -short skips the paper-scale run.
race:
	$(GO) test -race -short ./...

# Smoke-test the f90y-bench/v1 JSON writer end to end.
smoke:
	$(GO) run ./cmd/swebench -json -n 128 -steps 2 -o .bench-smoke.json
	rm -f .bench-smoke.json

bench:
	$(GO) test -bench . -benchtime 1x -run '^$$' ./...

clean:
	rm -f BENCH_*.json .bench-smoke.json
