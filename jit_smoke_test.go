package f90y_test

// JIT smoke: the tier-1 gate for the compiled executor. Each kernel is
// compiled once and run under the interpreter and the compiled engine;
// stores must be bit-identical (Float64bits), PRINT output equal, and
// every modeled cycle total unchanged — the JIT is a wall-clock-only
// engine swap. The SWE kernel additionally goes through the full
// three-way differential oracle with the compiled engine enabled.
// (External test package: internal/oracle imports f90y.)

import (
	"math"
	"reflect"
	"testing"

	"f90y"
	"f90y/internal/cm2"
	"f90y/internal/oracle"
	"f90y/internal/workload"
)

func jitSmokeKernels() map[string]string {
	return map[string]string{
		"swe.f90":       workload.SWE(48, 2),
		"transpose.f90": workload.LayoutTranspose(24, 2, nil),
		"fft.f90":       workload.LayoutFFT(32, 4, nil),
		"gather.f90":    workload.LayoutGather(32, 2, nil),
	}
}

// TestJITSmoke asserts engine equivalence kernel by kernel.
func TestJITSmoke(t *testing.T) {
	for name, src := range jitSmokeKernels() {
		comp, err := f90y.Compile(name, src, f90y.DefaultConfig())
		if err != nil {
			t.Fatalf("%s: compile: %v", name, err)
		}
		ref, err := comp.Run()
		if err != nil {
			t.Fatalf("%s: interpreter run: %v", name, err)
		}
		res, err := comp.RunCtl(&cm2.Control{ExecJIT: true})
		if err != nil {
			t.Fatalf("%s: jit run: %v", name, err)
		}

		for arr, want := range ref.Store.Arrays {
			got := res.Store.Arrays[arr]
			if got == nil {
				t.Fatalf("%s: jit run lost array %q", name, arr)
			}
			for i := range want.Data {
				if math.Float64bits(got.Data[i]) != math.Float64bits(want.Data[i]) {
					t.Fatalf("%s: %s[%d] = %v, want %v (jit not bit-exact)",
						name, arr, i, got.Data[i], want.Data[i])
				}
			}
		}
		if !reflect.DeepEqual(res.Store.Scalars, ref.Store.Scalars) {
			t.Errorf("%s: scalars differ: %v vs %v", name, res.Store.Scalars, ref.Store.Scalars)
		}
		if !reflect.DeepEqual(res.Output, ref.Output) {
			t.Errorf("%s: PRINT output differs:\n jit: %q\n ref: %q", name, res.Output, ref.Output)
		}

		// The modeled planes are computed before dispatch; any drift here
		// means the JIT leaked into the cost model.
		if res.PECycles != ref.PECycles || res.CommCycles != ref.CommCycles ||
			res.HostCycles != ref.HostCycles || res.TotalCycles() != ref.TotalCycles() {
			t.Errorf("%s: modeled cycles differ: jit (pe=%v comm=%v host=%v) vs (pe=%v comm=%v host=%v)",
				name, res.PECycles, res.CommCycles, res.HostCycles,
				ref.PECycles, ref.CommCycles, ref.HostCycles)
		}
		if res.Flops != ref.Flops || res.NodeCalls != ref.NodeCalls {
			t.Errorf("%s: modeled work differs: jit (flops=%d calls=%d) vs (flops=%d calls=%d)",
				name, res.Flops, res.NodeCalls, ref.Flops, ref.NodeCalls)
		}
		if !reflect.DeepEqual(res.PEClassCycles, ref.PEClassCycles) {
			t.Errorf("%s: per-class PE cycle attribution differs: %v vs %v",
				name, res.PEClassCycles, ref.PEClassCycles)
		}
	}
}

// TestJITSmokeOracle runs the SWE kernel through the three-way
// differential oracle (interp vs cm2 vs cm5) with the compiled engine
// enabled on both backends — the gate the ISSUE requires before the
// JIT is trusted anywhere.
func TestJITSmokeOracle(t *testing.T) {
	for _, workers := range []int{0, 4} {
		rep, err := oracle.Verify("swe.f90", workload.SWE(70, 2),
			oracle.Options{ExecJIT: true, ExecWorkers: workers})
		if err != nil {
			t.Fatalf("workers=%d: %v", workers, err)
		}
		if rep.Elems == 0 {
			t.Fatalf("workers=%d: oracle compared no elements", workers)
		}
	}
}
