// Command f90yd is the hardened multi-tenant compile-and-run server:
// the internal/driver service layer behind an HTTP/JSON API with
// bounded admission, per-tenant quotas, LRU-bounded artifact caching,
// a typed error taxonomy, and graceful drain on SIGTERM/SIGINT.
//
// Usage:
//
//	f90yd [-addr 127.0.0.1:8090] [-addr-file path] [-workers N]
//	      [-queue-depth 64] [-request-timeout 60s] [-drain-timeout 15s]
//	      [-max-cycles 2e9] [-exec-workers N] [-exec-jit] [-tenant-inflight 8]
//	      [-max-source-bytes 1048576] [-tenant-max-cycles 0]
//	      [-cache-entries 512] [-cache-bytes 268435456]
//
// Endpoints:
//
//	POST /v1/compile     compile through the shared LRU artifact cache
//	POST /v1/run         compile+run a job (sync, or "async": true + polling)
//	GET  /v1/jobs/{id}   fetch a job's status/result
//	GET  /healthz        liveness (always 200 while the process is up)
//	GET  /readyz         readiness (503 once draining)
//	GET  /statsz         queue/cache/tenant/outcome counters (f90y-statsz/v1)
//
// See internal/server/errors.go (and README "Status and exit codes")
// for the status ↔ code taxonomy. On SIGTERM the server stops
// admitting, gives in-flight jobs -drain-timeout to finish, kills the
// stragglers through the context plumbing, writes the final stats
// snapshot to stderr, and exits 0.
//
// -addr-file writes the bound address (host:port) to a file once the
// listener is up — with -addr 127.0.0.1:0 this is how scripts discover
// the randomly assigned port (see scripts/serve_smoke.sh).
package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"net"
	"os"
	"os/signal"
	"syscall"
	"time"

	"f90y/internal/faults"
	"f90y/internal/server"
)

var (
	flagAddr         = flag.String("addr", "127.0.0.1:8090", "listen address (use :0 for a random port)")
	flagAddrFile     = flag.String("addr-file", "", "write the bound host:port to this file once listening")
	flagWorkers      = flag.Int("workers", 0, "job execution workers (0 = GOMAXPROCS)")
	flagQueueDepth   = flag.Int("queue-depth", 64, "bounded admission queue depth (overflow -> 429)")
	flagReqTimeout   = flag.Duration("request-timeout", 60*time.Second, "per-job wall-clock deadline (requests may ask for less)")
	flagDrainTimeout = flag.Duration("drain-timeout", 15*time.Second, "grace for in-flight jobs on SIGTERM before they are killed")
	flagMaxCycles    = flag.Float64("max-cycles", 2e9, "default modeled-cycle budget per job (rt.ErrBudget on overrun)")
	flagExecWorkers  = flag.Int("exec-workers", 0, "default executor sharding per job (0/1 = serial, <0 = GOMAXPROCS)")
	flagExecJIT      = flag.Bool("exec-jit", false, "run node routines through the compiled closure executor (bit-identical results; wall-clock only)")
	flagTenantJobs   = flag.Int("tenant-inflight", 8, "max queued+running jobs per tenant (0 = unlimited)")
	flagTenantCycles = flag.Float64("tenant-max-cycles", 0, "per-tenant cap on a job's requested cycle budget (0 = server default only)")
	flagTenantExecW  = flag.Int("tenant-exec-workers", 8, "per-tenant cap on requested executor sharding")
	flagMaxSource    = flag.Int("max-source-bytes", 1<<20, "max program source bytes per request (0 = unlimited)")
	flagCacheEntries = flag.Int("cache-entries", 512, "artifact cache LRU entry bound")
	flagCacheBytes   = flag.Int64("cache-bytes", 256<<20, "artifact cache LRU byte bound (estimated)")
	flagRetainedJobs = flag.Int("retained-jobs", 256, "finished jobs retained for GET /v1/jobs/{id}")
	flagStateDir     = flag.String("state-dir", "", "durability plane root (job journal, drain spills, persistent artifact cache); empty = disabled")
	flagCkptEvery    = flag.Int("ckpt-every", 0, "spill a run checkpoint every N host boundaries under -state-dir (0 = 8)")
	flagDiskCache    = flag.Int64("disk-cache-bytes", 1<<30, "persistent artifact cache byte bound under -state-dir (pruned at startup)")
	flagIOFaults     = flag.String("io-faults", "", "deterministic durable-write fault spec, e.g. seed=1,torn=0.05,short=0.05 (crash testing)")
)

func main() {
	flag.Parse()
	if flag.NArg() != 0 {
		fmt.Fprintln(os.Stderr, "usage: f90yd [flags]")
		os.Exit(2)
	}

	ioPlan, err := faults.ParseIOSpec(*flagIOFaults)
	if err != nil {
		fmt.Fprintln(os.Stderr, "f90yd:", err)
		os.Exit(2)
	}

	srv, err := server.New(server.Config{
		Addr:           *flagAddr,
		Workers:        *flagWorkers,
		QueueDepth:     *flagQueueDepth,
		RequestTimeout: *flagReqTimeout,
		MaxCycles:      *flagMaxCycles,
		ExecWorkers:    *flagExecWorkers,
		ExecJIT:        *flagExecJIT,
		Quotas: server.Quotas{
			MaxInFlight:    *flagTenantJobs,
			MaxCycles:      *flagTenantCycles,
			MaxExecWorkers: *flagTenantExecW,
			MaxSourceBytes: *flagMaxSource,
		},
		RetainedJobs:    *flagRetainedJobs,
		CacheEntries:    *flagCacheEntries,
		CacheBytes:      *flagCacheBytes,
		StateDir:        *flagStateDir,
		CheckpointEvery: *flagCkptEvery,
		DiskCacheBytes:  *flagDiskCache,
		IOFaults:        faults.NewIO(ioPlan),
		Log:             os.Stderr,
	})
	if err != nil {
		fmt.Fprintln(os.Stderr, "f90yd:", err)
		os.Exit(1)
	}

	serveErr := make(chan error, 1)
	go func() {
		serveErr <- srv.ListenAndServe(func(addr net.Addr) {
			if *flagAddrFile != "" {
				if err := os.WriteFile(*flagAddrFile, []byte(addr.String()), 0o644); err != nil {
					fmt.Fprintln(os.Stderr, "f90yd:", err)
				}
			}
		})
	}()

	sig := make(chan os.Signal, 1)
	signal.Notify(sig, syscall.SIGTERM, syscall.SIGINT)
	select {
	case err := <-serveErr:
		if err != nil {
			fmt.Fprintln(os.Stderr, "f90yd:", err)
			os.Exit(1)
		}
		return // listener closed without a signal (tests)
	case got := <-sig:
		fmt.Fprintf(os.Stderr, "f90yd: %v received; draining\n", got)
	}

	ctx, cancel := context.WithTimeout(context.Background(), *flagDrainTimeout)
	stats := srv.Drain(ctx)
	cancel()

	// Flush the final snapshot so operators (and the smoke script) see
	// exactly what the instance did before it went away.
	enc := json.NewEncoder(os.Stderr)
	enc.SetIndent("", "  ")
	enc.Encode(stats)

	if err := <-serveErr; err != nil {
		fmt.Fprintln(os.Stderr, "f90yd:", err)
		os.Exit(1)
	}
}
