package main

import (
	"bytes"
	"testing"

	"f90y/internal/driver"
)

// TestLayoutRecordDeterministicAndConsistent builds the layout-sweep
// record twice (with oracle verification on the second pass) and
// checks the invariants the smoke script and EXPERIMENTS.md rely on:
// identical modeled fields across runs, grid+router+reduce summing
// exactly to each row's comm_cycles, and per-kernel best/spread
// consistent with the rows.
func TestLayoutRecordDeterministicAndConsistent(t *testing.T) {
	const n, iters = 4096, 2
	a, err := buildLayoutRecord(driver.New(1), n, iters, false)
	if err != nil {
		t.Fatal(err)
	}
	b, err := buildLayoutRecord(driver.New(1), n, iters, true)
	if err != nil {
		t.Fatal(err)
	}
	// Verification flips only the per-row verified marker.
	for ki := range b.Kernels {
		for ri := range b.Kernels[ki].Rows {
			if !b.Kernels[ki].Rows[ri].Verified {
				t.Errorf("%s/%s: verified sweep left row unmarked",
					b.Kernels[ki].Kernel, b.Kernels[ki].Rows[ri].Layout)
			}
			b.Kernels[ki].Rows[ri].Verified = false
		}
	}
	aj, bj := renderAny(t, a), renderAny(t, b)
	if aj != bj {
		t.Errorf("layout record differs across runs:\n%s\nvs\n%s", aj, bj)
	}

	if len(a.Kernels) != 3 {
		t.Fatalf("sweep covered %d kernels, want 3", len(a.Kernels))
	}
	for _, k := range a.Kernels {
		if len(k.Rows) != 3 {
			t.Fatalf("%s: %d rows, want 3 (block, cyclic, aligned)", k.Kernel, len(k.Rows))
		}
		best, worst := k.Rows[0], k.Rows[0]
		for _, r := range k.Rows {
			if got, want := r.Grid+r.Router+r.Reduce, r.CommCycles; got != want {
				t.Errorf("%s/%s: class split %v != comm_cycles %v", k.Kernel, r.Layout, got, want)
			}
			if r.Cycles < best.Cycles {
				best = r
			}
			if r.Cycles > worst.Cycles {
				worst = r
			}
		}
		if k.BestLayout != best.Layout {
			t.Errorf("%s: best_layout %q, cheapest row is %q", k.Kernel, k.BestLayout, best.Layout)
		}
		if got := worst.Cycles / best.Cycles; got != k.Spread {
			t.Errorf("%s: spread %v, rows say %v", k.Kernel, k.Spread, got)
		}
	}
}

func renderAny(t *testing.T, rec any) string {
	t.Helper()
	var b bytes.Buffer
	if err := writeRecordTo(&b, rec); err != nil {
		t.Fatal(err)
	}
	return b.String()
}
