package main

import (
	"bytes"
	"strings"
	"testing"

	"f90y/internal/driver"
)

// suiteIDs lists every experiment, in presentation order.
func suiteIDs() []string {
	var ids []string
	for _, e := range experiments {
		ids = append(ids, e.id)
	}
	return ids
}

// TestConcurrentSuiteMatchesSerial renders the whole suite serially and
// on a parallel pool and asserts the output is byte-identical: the
// experiments share a compile cache but no mutable run state, and the
// pool flushes buffers in experiment order.
func TestConcurrentSuiteMatchesSerial(t *testing.T) {
	const n, steps = 32, 2
	var serial, parallel bytes.Buffer
	if err := runSuite(&serial, driver.New(1), suiteIDs(), n, steps, 1); err != nil {
		t.Fatal(err)
	}
	if err := runSuite(&parallel, driver.New(8), suiteIDs(), n, steps, 8); err != nil {
		t.Fatal(err)
	}
	if serial.Len() == 0 {
		t.Fatal("serial suite produced no output")
	}
	if !bytes.Equal(serial.Bytes(), parallel.Bytes()) {
		t.Errorf("parallel suite output differs from serial:\n--- serial ---\n%s\n--- parallel ---\n%s",
			serial.String(), parallel.String())
	}
	if !strings.Contains(serial.String(), "E7 (§5.3.1)") {
		t.Error("suite output is missing the E7 table")
	}
}

// TestConcurrentSuiteSharesCompiles asserts the experiments hit the
// shared cache: e1 and e7 compile the same SWE source under the same
// config, so a full-suite pass must record at least one cache hit.
func TestConcurrentSuiteSharesCompiles(t *testing.T) {
	svc := driver.New(4)
	var out bytes.Buffer
	if err := runSuite(&out, svc, suiteIDs(), 32, 2, 4); err != nil {
		t.Fatal(err)
	}
	hits, misses := svc.CacheStats()
	if hits == 0 {
		t.Errorf("full suite recorded no compile-cache hits (misses=%d); e1 and e7 share the SWE compile", misses)
	}
}

// TestConcurrentBenchRecordDeterministic asserts the -json record's
// modeled fields are identical whether the systems are measured
// serially or concurrently.
func TestConcurrentBenchRecordDeterministic(t *testing.T) {
	serial, _, err := buildRecord(32, 2, nil, 1, 0, false)
	if err != nil {
		t.Fatal(err)
	}
	parallel, _, err := buildRecord(32, 2, nil, 8, 0, false)
	if err != nil {
		t.Fatal(err)
	}
	// Phases hold wall-clock times; everything else is modeled and must
	// not depend on measurement concurrency.
	serial.Phases, parallel.Phases = nil, nil
	sj, pj := render(t, serial), render(t, parallel)
	if sj != pj {
		t.Errorf("bench record differs serial vs parallel:\n%s\nvs\n%s", sj, pj)
	}
}

func render(t *testing.T, rec benchRecord) string {
	t.Helper()
	var b bytes.Buffer
	if err := writeRecordTo(&b, rec); err != nil {
		t.Fatal(err)
	}
	return b.String()
}
