// Command swebench reproduces the experiments of the paper's evaluation
// (§6 and the worked figures) on the simulated CM/2, printing
// paper-versus-measured tables.
//
// Usage:
//
//	swebench [-n 1024] [-steps 4] [-experiment e1|e2|e3|e4|e5|e6|e7|all]
//	swebench -json [-o BENCH_swe.json] [-n 1024] [-steps 4]
//
// With -json the SWE benchmark runs once with full telemetry and a
// machine-readable record (schema "f90y-bench/v1", see json.go) is
// written to -o (default BENCH_swe_n<N>_s<steps>.json); the output path
// is printed to stdout.
package main

import (
	"flag"
	"fmt"
	"os"

	"f90y"
	"f90y/internal/cm2"
	"f90y/internal/cm5"
	"f90y/internal/cmf"
	"f90y/internal/faults"
	"f90y/internal/nir"
	"f90y/internal/opt"
	"f90y/internal/pe"
	"f90y/internal/peac"
	"f90y/internal/starlisp"
	"f90y/internal/workload"
)

var (
	flagN     = flag.Int("n", 1024, "SWE grid edge")
	flagSteps = flag.Int("steps", 4, "SWE time steps")
	flagExp   = flag.String("experiment", "all", "experiment id: e1..e7 or all")
	flagJSON   = flag.Bool("json", false, "write a machine-readable benchmark record instead of tables")
	flagOut    = flag.String("o", "", "output path for -json (default BENCH_swe_n<N>_s<steps>.json)")
	flagFaults = flag.String("faults", "", "fault-injection spec for the -json run, e.g. seed=7,pe=0.02")
)

func main() {
	flag.Parse()
	if *flagJSON {
		plan, err := faults.ParseSpec(*flagFaults)
		if err != nil {
			fmt.Fprintln(os.Stderr, "swebench:", err)
			os.Exit(2)
		}
		path := *flagOut
		if path == "" {
			path = fmt.Sprintf("BENCH_swe_n%d_s%d.json", *flagN, *flagSteps)
		}
		writeJSON(path, plan)
		return
	}
	exps := map[string]func(){
		"e1": e1, "e2": e2, "e3": e3, "e4": e4, "e5": e5, "e6": e6, "e7": e7,
	}
	if *flagExp == "all" {
		for _, id := range []string{"e1", "e2", "e3", "e4", "e5", "e6", "e7"} {
			exps[id]()
			fmt.Println()
		}
		return
	}
	run, ok := exps[*flagExp]
	if !ok {
		fmt.Fprintf(os.Stderr, "unknown experiment %q\n", *flagExp)
		os.Exit(2)
	}
	run()
}

func die(err error) {
	fmt.Fprintln(os.Stderr, "swebench:", err)
	os.Exit(1)
}

func runF90Y(src string, cfg f90y.Config) *cm2.Result {
	comp, err := f90y.Compile("swe.f90", src, cfg)
	if err != nil {
		die(err)
	}
	res, err := comp.Run()
	if err != nil {
		die(err)
	}
	return res
}

// e1 is the §6 performance table: SWE sustained GFLOPS for hand-coded
// *Lisp (fieldwise), the CMF v1.1 model, and Fortran-90-Y.
func e1() {
	n, steps := *flagN, *flagSteps
	src := workload.SWE(n, steps)

	_, sl := starlisp.RunSWE(n, steps, starlisp.DefaultModel)
	slGF := sl.GFLOPS(starlisp.DefaultModel.ClockHz)

	machine := cm2.Default()
	cmfProg, _, err := cmf.Compile("swe.f90", src)
	if err != nil {
		die(err)
	}
	cmfRes, err := machine.Run(cmfProg)
	if err != nil {
		die(err)
	}

	f90yRes := runF90Y(src, f90y.DefaultConfig())

	fmt.Printf("E1 (§6): SWE sustained performance, %dx%d grid, %d steps, 2048 PEs @ 7 MHz\n", n, n, steps)
	fmt.Printf("%-28s %-14s %s\n", "system", "modeled GF", "paper GF")
	fmt.Printf("%-28s %-14.2f %.2f\n", "hand-coded *Lisp (fieldwise)", slGF, 1.89)
	fmt.Printf("%-28s %-14.2f %.2f\n", "CM Fortran v1.1 (model)", cmfRes.GFLOPS(), 2.79)
	fmt.Printf("%-28s %-14.2f %.2f\n", "Fortran-90-Y", f90yRes.GFLOPS(), 2.99)
	fmt.Printf("detail: f90y cycles/step pe=%.0f comm=%.0f host=%.0f calls=%d | cmf calls=%d\n",
		f90yRes.PECycles/float64(steps), f90yRes.CommCycles/float64(steps),
		f90yRes.HostCycles/float64(steps), f90yRes.NodeCalls, cmfRes.NodeCalls)
}

// e2 is the Fig. 9 domain-blocking transformation: phase counts before and
// after.
func e2() {
	src := workload.Fig9(64)
	with := runF90Y(src, f90y.DefaultConfig())
	without := runF90Y(src, f90y.Config{Opt: opt.Options{PadSections: true}, PE: pe.Optimized})
	fmt.Println("E2 (Fig. 9): domain blocking — like-shape moves fuse into one computation block")
	fmt.Printf("%-24s %-12s %s\n", "configuration", "node calls", "total cycles")
	fmt.Printf("%-24s %-12d %.0f\n", "naive (per statement)", without.NodeCalls, without.TotalCycles())
	fmt.Printf("%-24s %-12d %.0f\n", "blocked (F90-Y)", with.NodeCalls, with.TotalCycles())
}

// e3 is the Fig. 10 masked-assignment blocking experiment.
func e3() {
	src := workload.Fig10(32)
	with := runF90Y(src, f90y.DefaultConfig())
	without := runF90Y(src, f90y.Config{Opt: opt.Options{PadSections: true}, PE: pe.Optimized})
	fmt.Println("E3 (Fig. 10): masked-assignment blocking — disjoint masked sections share a block")
	fmt.Printf("%-24s %-12s %s\n", "configuration", "node calls", "total cycles")
	fmt.Printf("%-24s %-12d %.0f\n", "unblocked", without.NodeCalls, without.TotalCycles())
	fmt.Printf("%-24s %-12d %.0f\n", "blocked (F90-Y)", with.NodeCalls, with.TotalCycles())
}

// e4 is the Fig. 11 partition-structure experiment over an alternating
// phase graph.
func e4() {
	src := workload.Fig11(64, 16)
	naive, err := f90y.Compile("fig11.f90", src, f90y.Config{Opt: opt.Options{PadSections: true}, PE: pe.Optimized})
	if err != nil {
		die(err)
	}
	blocked, err := f90y.Compile("fig11.f90", src, f90y.DefaultConfig())
	if err != nil {
		die(err)
	}
	fmt.Println("E4 (Fig. 11): naive vs blocked vs partitioned program structure")
	fmt.Printf("%-24s %-16s %-12s %s\n", "configuration", "node routines", "comm calls", "host ops")
	n1 := naive.Program.CountOps()
	n2 := blocked.Program.CountOps()
	fmt.Printf("%-24s %-16d %-12d %d\n", "naive", n1["callnode"], n1["comm"], n1["assign"])
	fmt.Printf("%-24s %-16d %-12d %d\n", "blocked+partitioned", n2["callnode"], n2["comm"], n2["assign"])
}

// e5 is the Fig. 12 naive-versus-optimized PEAC encoding of the SWE
// excerpt.
func e5() {
	// Per-statement partitioning isolates the Fig. 12 statement as its own
	// PEAC routine; only the PE/NIR optimization level differs.
	src := workload.Fig12(64)
	perStmt := opt.Options{PadSections: true}
	compN, err := f90y.Compile("fig12.f90", src, f90y.Config{Opt: perStmt, PE: pe.Naive})
	if err != nil {
		die(err)
	}
	compO, err := f90y.Compile("fig12.f90", src, f90y.Config{Opt: perStmt, PE: pe.Optimized})
	if err != nil {
		die(err)
	}
	pick := func(c *f90y.Compilation) *peac.Routine {
		var best *peac.Routine
		for _, r := range c.Program.Routines {
			if best == nil || r.InstrCount() > best.InstrCount() {
				best = r
			}
		}
		return best
	}
	rn, ro := pick(compN), pick(compO)
	cm := peac.DefaultCost
	fmt.Println("E5 (Fig. 12): SWE excerpt, naive vs optimized PEAC encoding")
	fmt.Printf("%-12s %-14s %-14s %s\n", "encoding", "instructions", "issue slots", "cycles/iter")
	fmt.Printf("%-12s %-14d %-14d %d\n", "naive", rn.InstrCount(), rn.IssueSlots(), cm.BodyCycles(rn.Body))
	fmt.Printf("%-12s %-14d %-14d %d\n", "optimized", ro.InstrCount(), ro.IssueSlots(), cm.BodyCycles(ro.Body))
	fmt.Println("\nnaive encoding:")
	fmt.Print(rn.Format())
	fmt.Println("\noptimized encoding:")
	fmt.Print(ro.Format())
}

// e6 is the §5.2 spill-pressure experiment: cycles as live values exceed
// the eight vector registers (one spill/restore pair = 18 cycles ≈ three
// vector ops).
func e6() {
	fmt.Println("E6 (§5.2): spill pressure sweep (spill/restore pair = 18 cycles)")
	fmt.Printf("%-8s %-14s %-12s %s\n", "terms", "instructions", "spill slots", "cycles/iter")
	for _, terms := range []int{4, 6, 8, 10, 12, 16} {
		src := workload.SpillKernel(1024, terms)
		comp, err := f90y.Compile("spill.f90", src, f90y.DefaultConfig())
		if err != nil {
			die(err)
		}
		var r *peac.Routine
		for _, rt := range comp.Program.Routines {
			if r == nil || rt.InstrCount() > r.InstrCount() {
				r = rt
			}
		}
		fmt.Printf("%-8d %-14d %-12d %d\n", terms, r.InstrCount(), r.SpillSlots, peac.DefaultCost.BodyCycles(r.Body))
	}
}

// e7 is the §5.3.1 CM-5 retarget: the same partitioned program runs on
// both back ends.
func e7() {
	n, steps := *flagN, *flagSteps
	src := workload.SWE(n, steps)
	comp, err := f90y.Compile("swe.f90", src, f90y.DefaultConfig())
	if err != nil {
		die(err)
	}
	cm2Res, err := comp.Run()
	if err != nil {
		die(err)
	}
	cm5Res, err := cm5.Default().Run(comp.Program)
	if err != nil {
		die(err)
	}
	fmt.Println("E7 (§5.3.1): CM-5 retarget — identical front end, three-way node split")
	fmt.Printf("%-10s %-12s %-16s %s\n", "target", "GFLOPS", "node calls", "comm cycles")
	fmt.Printf("%-10s %-12.2f %-16d %.0f\n", "CM-2", cm2Res.GFLOPS(), cm2Res.NodeCalls, cm2Res.CommCycles)
	fmt.Printf("%-10s %-12.2f %-16d %.0f\n", "CM-5", cm5Res.GFLOPS(), cm5Res.NodeCalls, cm5Res.CommCycles)
	fmt.Printf("CM-5 node split: SPARC issue %.0f cycles, vector units %.0f cycles\n",
		cm5Res.SPARCCycles, cm5Res.VUCycles)
	_ = nir.True
}
