// Command swebench reproduces the experiments of the paper's evaluation
// (§6 and the worked figures) on the simulated CM/2, printing
// paper-versus-measured tables.
//
// Usage:
//
//	swebench [-n 1024] [-steps 4] [-experiment e1|e2|e3|e4|e5|e6|e7|all]
//	         [-parallel N] [-exec-workers N] [-exec-jit]
//	swebench -json [-parallel N] [-o BENCH_swe.json] [-n 1024] [-steps 4]
//	         [-profile] [-profile-pprof swe.pb.gz] [-profile-folded swe.folded]
//	swebench -bench-batch [-parallel N] [-o BENCH_batch.json]
//	swebench -layout-sweep [-layout-n 65536] [-layout-iters 2]
//	         [-layout-verify] [-o BENCH_layout.json]
//	swebench -soak N [-json [-o SOAK.json]] [-parallel N] [-repro-dir DIR]
//	swebench -serve-url http://127.0.0.1:8090 [-load 64] [-load-workers 8]
//	         [-serve-wait 10s] [-o LOAD_swe.json]
//	swebench -restart N -server-bin ./f90yd [-state-dir DIR]
//	         [-restart-io-faults seed=1,torn=0.05] [-o CRASH_swe.json]
//
// With -serve-url the suite turns into a traffic generator against a
// running f90yd server (see serve.go): a deterministic mix of healthy,
// verified, fault-injected, budget-killer, and oversized jobs is fired
// from concurrent clients, every response is checked against the
// documented error taxonomy (any 500 fails the run), and a
// "f90y-load/v1" record with healthy-request p50/p99 latencies is
// written to -o.
//
// With -restart the suite becomes a crash-safety harness (see
// restart.go): it launches its own f90yd on a durable -state-dir,
// SIGKILLs it mid-load N times, relaunches it on the same state, and
// fails unless every acknowledged job is recovered with a result
// byte-identical to an uninterrupted baseline — or, under
// -restart-io-faults, is lost ONLY as a server-reported torn-record
// casualty. A "f90y-crash/v1" record goes to -o.
//
// With -parallel N the seven experiments run concurrently on an
// N-worker pool (N < 1 selects GOMAXPROCS): each experiment renders
// into its own buffer, buffers print in experiment order, and every
// table is byte-identical to a serial run — the experiments share one
// compile cache (internal/driver) but no mutable run state.
//
// With -json the SWE benchmark runs once with full telemetry and a
// machine-readable record (schema "f90y-bench/v1", see json.go) is
// written to -o (default BENCH_swe_n<N>_s<steps>.json); the output path
// is printed to stdout. -parallel runs the three measured systems
// (Fortran-90-Y, CM Fortran model, *Lisp model) concurrently.
//
// The record always carries a "profile" summary (total attributed
// cycles + five hottest source lines); the -profile* flags additionally
// emit the full artifacts from the same run — the annotated source
// listing to stdout, a pprof protobuf, and folded flamegraph stacks.
//
// With -bench-batch the whole suite is timed twice — serial, then on
// the parallel pool — and a "f90y-batch/v1" record comparing the two
// wall-clocks is written to -o (default BENCH_batch.json).
//
// With -layout-sweep the router-heavy kernel trio (transpose, FFT
// butterfly, irregular gather) runs under BLOCK / CYCLIC / ALIGN'd
// !HPF$ data distributions and a deterministic "f90y-layout/v1" record
// (per-layout cycles, NEWS/router/reduce split, best layout, spread)
// is written to -o (default BENCH_layout_n<N>_i<iters>.json; see
// layout.go). -layout-verify first pushes every (kernel, layout) pair
// through the differential oracle at a reduced size.
//
// With -soak N the suite's kernels are verified through the
// differential oracle and chaos-soaked across N seeds x fault plans x
// both backends (see soak.go); fault-invariance violations are
// minimized to reproducer specs under -repro-dir and fail the command.
// -json writes a "f90y-soak/v1" record to -o (default stdout).
//
// -exec-workers N is orthogonal to -parallel: where -parallel runs
// whole experiments concurrently, -exec-workers shards each individual
// PEAC routine dispatch across N chunk workers over disjoint element
// ranges (1 = serial, the default; N < 0 selects GOMAXPROCS). Every
// table, record, and cycle total is bit-identical for every value —
// only host wall-clock changes.
//
// -exec-jit swaps the PEAC interpreter for the compiled closure
// executor on every run the suite dispatches (and records
// "exec_jit": true in f90y-bench/v1). Like -exec-workers it is purely
// a wall-clock lever: every table, record field, error string, and
// modeled cycle is bit-identical to an interpreter run.
package main

import (
	"bytes"
	"context"
	"flag"
	"fmt"
	"io"
	"os"
	"sync"
	"time"

	"f90y"
	"f90y/internal/cm2"
	"f90y/internal/cm5"
	"f90y/internal/cmf"
	"f90y/internal/driver"
	"f90y/internal/opt"
	"f90y/internal/pe"
	"f90y/internal/peac"
	"f90y/internal/starlisp"
	"f90y/internal/workload"
)

var (
	flagN          = flag.Int("n", 1024, "SWE grid edge")
	flagSteps      = flag.Int("steps", 4, "SWE time steps")
	flagExp        = flag.String("experiment", "all", "experiment id: e1..e7 or all")
	flagJSON       = flag.Bool("json", false, "write a machine-readable benchmark record instead of tables")
	flagOut        = flag.String("o", "", "output path for -json/-bench-batch (defaults depend on mode)")
	flagFaults     = flag.String("faults", "", driver.FaultsHelp)
	flagParallel   = flag.Int("parallel", 0, "run experiments concurrently on an N-worker pool (0 = serial, <0 = GOMAXPROCS)")
	flagBenchBatch = flag.Bool("bench-batch", false, "time the suite serial vs parallel and write a f90y-batch/v1 record")
	flagSoak       = flag.Int("soak", 0, "chaos-soak: verify all kernels differentially, then sweep N seeds x fault plans x backends")
	flagReproDir   = flag.String("repro-dir", "soak-repros", "directory for fault-invariance reproducer specs (-soak)")
	flagExecW      = flag.Int("exec-workers", 1, "shard each routine dispatch across N chunk workers (1 = serial, <0 = GOMAXPROCS); results are bit-exact")
	flagExecJIT    = flag.Bool("exec-jit", false, "run node routines through the compiled closure executor (bit-identical to the interpreter; wall-clock only)")
	flagServeURL   = flag.String("serve-url", "", "load-generator client mode: fire a mixed job stream at a running f90yd and write a f90y-load/v1 record")
	flagLoad       = flag.Int("load", 64, "with -serve-url: total requests to issue")
	flagLoadW      = flag.Int("load-workers", 8, "with -serve-url: concurrent client connections")
	flagServeWait  = flag.Duration("serve-wait", 10*time.Second, "with -serve-url: how long to poll /healthz for the server to come up")
	flagProf       = flag.Bool("profile", false, "with -json: print the SWE run's source-annotated cycle profile to stdout")
	flagProfPB     = flag.String("profile-pprof", "", "with -json: write the SWE run's pprof protobuf profile")
	flagProfFG     = flag.String("profile-folded", "", "with -json: write the SWE run's folded stacks for flamegraph tooling")
	flagLayout     = flag.Bool("layout-sweep", false, "sweep the kernel trio across !HPF$ data distributions and write a f90y-layout/v1 record")
	flagLayoutN    = flag.Int("layout-n", 65536, "with -layout-sweep: problem size (elements)")
	flagLayoutIter = flag.Int("layout-iters", 2, "with -layout-sweep: kernel iterations")
	flagLayoutVer  = flag.Bool("layout-verify", false, "with -layout-sweep: oracle-verify each (kernel, layout) pair at a reduced size first")
	flagRestart    = flag.Int("restart", 0, "crash harness: SIGKILL and relaunch the managed server N times mid-load, verifying bit-identical recovery (see restart.go)")
	flagServerBin  = flag.String("server-bin", "", "with -restart: path to the f90yd binary to launch, kill, and relaunch")
	flagStateDir   = flag.String("state-dir", "", "with -restart: server durability directory (default: a fresh temp dir)")
	flagIOFaults   = flag.String("restart-io-faults", "", "with -restart: -io-faults spec passed to the server, e.g. seed=1,torn=0.05,short=0.05")
)

// execWorkers normalizes the -exec-workers flag: explicit serial (1)
// becomes the zero value so the zero-overhead executor path is taken.
func execWorkers() int {
	if *flagExecW == 1 {
		return 0
	}
	return *flagExecW
}

// newService builds the shared compile-and-run service with the
// -exec-workers and -exec-jit defaults applied, so every run the suite
// dispatches shards (and compiles) its routines the same way.
func newService(workers int) *driver.Service {
	svc := driver.New(workers)
	svc.ExecWorkers = execWorkers()
	svc.ExecJIT = *flagExecJIT
	return svc
}

// experiment is one reproduction: it renders its table to w, running
// compiles and executions through the shared service.
type experiment struct {
	id string
	fn func(w io.Writer, svc *driver.Service, n, steps int) error
}

// experiments lists the suite in presentation order.
var experiments = []experiment{
	{"e1", e1}, {"e2", e2}, {"e3", e3}, {"e4", e4}, {"e5", e5}, {"e6", e6}, {"e7", e7},
}

func main() {
	flag.Parse()
	workers := *flagParallel
	if (*flagProf || *flagProfPB != "" || *flagProfFG != "") && !*flagJSON {
		die(fmt.Errorf("-profile, -profile-pprof, and -profile-folded require -json (they profile the measured SWE run)"))
	}
	if *flagRestart > 0 {
		if err := runRestart(os.Stdout, *flagServerBin, *flagRestart, *flagStateDir, *flagIOFaults, *flagOut); err != nil {
			die(err)
		}
		return
	}
	if *flagServeURL != "" {
		if err := runServeLoad(os.Stdout, *flagServeURL, *flagLoad, *flagLoadW, *flagServeWait, *flagOut); err != nil {
			die(err)
		}
		return
	}
	if *flagSoak > 0 {
		failures, err := runSoak(os.Stdout, *flagSoak, workers, *flagReproDir, *flagJSON, *flagOut)
		if err != nil {
			die(err)
		}
		if failures > 0 {
			os.Exit(1)
		}
		return
	}
	if *flagLayout {
		if err := runLayoutSweep(os.Stdout, *flagOut, *flagLayoutN, *flagLayoutIter, *flagLayoutVer); err != nil {
			die(err)
		}
		return
	}
	if *flagBenchBatch {
		if err := runBenchBatch(*flagOut, *flagN, *flagSteps, workers); err != nil {
			die(err)
		}
		return
	}
	if *flagJSON {
		writeJSON(*flagOut, *flagN, *flagSteps, workers)
		return
	}

	ids := []string{}
	if *flagExp == "all" {
		for _, e := range experiments {
			ids = append(ids, e.id)
		}
	} else {
		ids = append(ids, *flagExp)
	}
	svc := newService(workers)
	if err := runSuite(os.Stdout, svc, ids, *flagN, *flagSteps, workers); err != nil {
		die(err)
	}
}

// runSuite executes the named experiments against one shared service.
// workers > 1 runs them concurrently, each into a private buffer;
// buffers flush to w in experiment order, so the bytes written are
// identical to a serial run.
func runSuite(w io.Writer, svc *driver.Service, ids []string, n, steps, workers int) error {
	byID := map[string]func(io.Writer, *driver.Service, int, int) error{}
	for _, e := range experiments {
		byID[e.id] = e.fn
	}
	blank := len(ids) > 1 // "all" mode separates tables with a blank line
	for _, id := range ids {
		if byID[id] == nil {
			return fmt.Errorf("unknown experiment %q", id)
		}
	}

	if workers <= 1 || len(ids) == 1 {
		for _, id := range ids {
			if err := byID[id](w, svc, n, steps); err != nil {
				return err
			}
			if blank {
				fmt.Fprintln(w)
			}
		}
		return nil
	}

	bufs := make([]bytes.Buffer, len(ids))
	errs := make([]error, len(ids))
	sem := make(chan struct{}, workers)
	var wg sync.WaitGroup
	for i, id := range ids {
		wg.Add(1)
		go func(i int, id string) {
			defer wg.Done()
			sem <- struct{}{}
			defer func() { <-sem }()
			errs[i] = byID[id](&bufs[i], svc, n, steps)
		}(i, id)
	}
	wg.Wait()
	for i := range ids {
		if errs[i] != nil {
			return fmt.Errorf("%s: %w", ids[i], errs[i])
		}
		if _, err := w.Write(bufs[i].Bytes()); err != nil {
			return err
		}
		if blank {
			fmt.Fprintln(w)
		}
	}
	return nil
}

func die(err error) {
	fmt.Fprintln(os.Stderr, "swebench:", err)
	os.Exit(1)
}

// runF90Y compiles (through the shared cache) and runs one program on
// the default CM/2.
func runF90Y(svc *driver.Service, file, src string, cfg f90y.Config) (*cm2.Result, error) {
	res := svc.Run(context.Background(), driver.Job{Name: file, File: file, Source: src, Config: cfg})
	return res.CM2, res.Err
}

// compileF90Y compiles through the shared cache without running.
func compileF90Y(svc *driver.Service, file, src string, cfg f90y.Config) (*f90y.Compilation, error) {
	art, err := svc.Compile(context.Background(), file, src, cfg)
	if err != nil {
		return nil, err
	}
	return art.Comp, nil
}

// e1 is the §6 performance table: SWE sustained GFLOPS for hand-coded
// *Lisp (fieldwise), the CMF v1.1 model, and Fortran-90-Y.
func e1(w io.Writer, svc *driver.Service, n, steps int) error {
	src := workload.SWE(n, steps)

	_, sl := starlisp.RunSWE(n, steps, starlisp.DefaultModel)
	slGF := sl.GFLOPS(starlisp.DefaultModel.ClockHz)

	machine := cm2.Default()
	cmfProg, _, err := cmf.Compile("swe.f90", src)
	if err != nil {
		return err
	}
	cmfRes, err := machine.Run(cmfProg)
	if err != nil {
		return err
	}

	f90yRes, err := runF90Y(svc, "swe.f90", src, f90y.DefaultConfig())
	if err != nil {
		return err
	}

	fmt.Fprintf(w, "E1 (§6): SWE sustained performance, %dx%d grid, %d steps, 2048 PEs @ 7 MHz\n", n, n, steps)
	fmt.Fprintf(w, "%-28s %-14s %s\n", "system", "modeled GF", "paper GF")
	fmt.Fprintf(w, "%-28s %-14.2f %.2f\n", "hand-coded *Lisp (fieldwise)", slGF, 1.89)
	fmt.Fprintf(w, "%-28s %-14.2f %.2f\n", "CM Fortran v1.1 (model)", cmfRes.GFLOPS(), 2.79)
	fmt.Fprintf(w, "%-28s %-14.2f %.2f\n", "Fortran-90-Y", f90yRes.GFLOPS(), 2.99)
	fmt.Fprintf(w, "detail: f90y cycles/step pe=%.0f comm=%.0f host=%.0f calls=%d | cmf calls=%d\n",
		f90yRes.PECycles/float64(steps), f90yRes.CommCycles/float64(steps),
		f90yRes.HostCycles/float64(steps), f90yRes.NodeCalls, cmfRes.NodeCalls)
	return nil
}

// e2 is the Fig. 9 domain-blocking transformation: phase counts before and
// after.
func e2(w io.Writer, svc *driver.Service, n, steps int) error {
	src := workload.Fig9(64)
	with, err := runF90Y(svc, "fig9.f90", src, f90y.DefaultConfig())
	if err != nil {
		return err
	}
	without, err := runF90Y(svc, "fig9.f90", src, f90y.Config{Opt: opt.Options{PadSections: true}, PE: pe.Optimized})
	if err != nil {
		return err
	}
	fmt.Fprintln(w, "E2 (Fig. 9): domain blocking — like-shape moves fuse into one computation block")
	fmt.Fprintf(w, "%-24s %-12s %s\n", "configuration", "node calls", "total cycles")
	fmt.Fprintf(w, "%-24s %-12d %.0f\n", "naive (per statement)", without.NodeCalls, without.TotalCycles())
	fmt.Fprintf(w, "%-24s %-12d %.0f\n", "blocked (F90-Y)", with.NodeCalls, with.TotalCycles())
	return nil
}

// e3 is the Fig. 10 masked-assignment blocking experiment.
func e3(w io.Writer, svc *driver.Service, n, steps int) error {
	src := workload.Fig10(32)
	with, err := runF90Y(svc, "fig10.f90", src, f90y.DefaultConfig())
	if err != nil {
		return err
	}
	without, err := runF90Y(svc, "fig10.f90", src, f90y.Config{Opt: opt.Options{PadSections: true}, PE: pe.Optimized})
	if err != nil {
		return err
	}
	fmt.Fprintln(w, "E3 (Fig. 10): masked-assignment blocking — disjoint masked sections share a block")
	fmt.Fprintf(w, "%-24s %-12s %s\n", "configuration", "node calls", "total cycles")
	fmt.Fprintf(w, "%-24s %-12d %.0f\n", "unblocked", without.NodeCalls, without.TotalCycles())
	fmt.Fprintf(w, "%-24s %-12d %.0f\n", "blocked (F90-Y)", with.NodeCalls, with.TotalCycles())
	return nil
}

// e4 is the Fig. 11 partition-structure experiment over an alternating
// phase graph.
func e4(w io.Writer, svc *driver.Service, n, steps int) error {
	src := workload.Fig11(64, 16)
	naive, err := compileF90Y(svc, "fig11.f90", src, f90y.Config{Opt: opt.Options{PadSections: true}, PE: pe.Optimized})
	if err != nil {
		return err
	}
	blocked, err := compileF90Y(svc, "fig11.f90", src, f90y.DefaultConfig())
	if err != nil {
		return err
	}
	fmt.Fprintln(w, "E4 (Fig. 11): naive vs blocked vs partitioned program structure")
	fmt.Fprintf(w, "%-24s %-16s %-12s %s\n", "configuration", "node routines", "comm calls", "host ops")
	n1 := naive.Program.CountOps()
	n2 := blocked.Program.CountOps()
	fmt.Fprintf(w, "%-24s %-16d %-12d %d\n", "naive", n1["callnode"], n1["comm"], n1["assign"])
	fmt.Fprintf(w, "%-24s %-16d %-12d %d\n", "blocked+partitioned", n2["callnode"], n2["comm"], n2["assign"])
	return nil
}

// e5 is the Fig. 12 naive-versus-optimized PEAC encoding of the SWE
// excerpt.
func e5(w io.Writer, svc *driver.Service, n, steps int) error {
	// Per-statement partitioning isolates the Fig. 12 statement as its own
	// PEAC routine; only the PE/NIR optimization level differs.
	src := workload.Fig12(64)
	perStmt := opt.Options{PadSections: true}
	compN, err := compileF90Y(svc, "fig12.f90", src, f90y.Config{Opt: perStmt, PE: pe.Naive})
	if err != nil {
		return err
	}
	compO, err := compileF90Y(svc, "fig12.f90", src, f90y.Config{Opt: perStmt, PE: pe.Optimized})
	if err != nil {
		return err
	}
	pick := func(c *f90y.Compilation) *peac.Routine {
		var best *peac.Routine
		for _, r := range c.Program.Routines {
			if best == nil || r.InstrCount() > best.InstrCount() {
				best = r
			}
		}
		return best
	}
	rn, ro := pick(compN), pick(compO)
	cm := peac.DefaultCost
	fmt.Fprintln(w, "E5 (Fig. 12): SWE excerpt, naive vs optimized PEAC encoding")
	fmt.Fprintf(w, "%-12s %-14s %-14s %s\n", "encoding", "instructions", "issue slots", "cycles/iter")
	fmt.Fprintf(w, "%-12s %-14d %-14d %d\n", "naive", rn.InstrCount(), rn.IssueSlots(), cm.BodyCycles(rn.Body))
	fmt.Fprintf(w, "%-12s %-14d %-14d %d\n", "optimized", ro.InstrCount(), ro.IssueSlots(), cm.BodyCycles(ro.Body))
	fmt.Fprintln(w, "\nnaive encoding:")
	fmt.Fprint(w, rn.Format())
	fmt.Fprintln(w, "\noptimized encoding:")
	fmt.Fprint(w, ro.Format())
	return nil
}

// e6 is the §5.2 spill-pressure experiment: cycles as live values exceed
// the eight vector registers (one spill/restore pair = 18 cycles ≈ three
// vector ops).
func e6(w io.Writer, svc *driver.Service, n, steps int) error {
	fmt.Fprintln(w, "E6 (§5.2): spill pressure sweep (spill/restore pair = 18 cycles)")
	fmt.Fprintf(w, "%-8s %-14s %-12s %s\n", "terms", "instructions", "spill slots", "cycles/iter")
	for _, terms := range []int{4, 6, 8, 10, 12, 16} {
		src := workload.SpillKernel(1024, terms)
		comp, err := compileF90Y(svc, "spill.f90", src, f90y.DefaultConfig())
		if err != nil {
			return err
		}
		var r *peac.Routine
		for _, rt := range comp.Program.Routines {
			if r == nil || rt.InstrCount() > r.InstrCount() {
				r = rt
			}
		}
		fmt.Fprintf(w, "%-8d %-14d %-12d %d\n", terms, r.InstrCount(), r.SpillSlots, peac.DefaultCost.BodyCycles(r.Body))
	}
	return nil
}

// e7 is the §5.3.1 CM-5 retarget: the same partitioned program runs on
// both back ends.
func e7(w io.Writer, svc *driver.Service, n, steps int) error {
	src := workload.SWE(n, steps)
	comp, err := compileF90Y(svc, "swe.f90", src, f90y.DefaultConfig())
	if err != nil {
		return err
	}
	cm2Res, err := cm2.Default().Run(comp.Program)
	if err != nil {
		return err
	}
	cm5Res, err := cm5.Default().Run(comp.Program)
	if err != nil {
		return err
	}
	fmt.Fprintln(w, "E7 (§5.3.1): CM-5 retarget — identical front end, three-way node split")
	fmt.Fprintf(w, "%-10s %-12s %-16s %s\n", "target", "GFLOPS", "node calls", "comm cycles")
	fmt.Fprintf(w, "%-10s %-12.2f %-16d %.0f\n", "CM-2", cm2Res.GFLOPS(), cm2Res.NodeCalls, cm2Res.CommCycles)
	fmt.Fprintf(w, "%-10s %-12.2f %-16d %.0f\n", "CM-5", cm5Res.GFLOPS(), cm5Res.NodeCalls, cm5Res.CommCycles)
	fmt.Fprintf(w, "CM-5 node split: SPARC issue %.0f cycles, vector units %.0f cycles\n",
		cm5Res.SPARCCycles, cm5Res.VUCycles)
	return nil
}
