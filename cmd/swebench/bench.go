package main

// -bench-batch: time the whole experiment suite serial versus parallel
// and write one "f90y-batch/v1" record. Each pass uses a fresh compile
// cache so the comparison is pool-vs-no-pool, not cold-vs-warm cache,
// and the two outputs are compared byte-for-byte as a determinism
// check.
//
//	{
//	  "schema": "f90y-batch/v1",
//	  "n": 1024, "steps": 4,
//	  "experiments": ["e1", ..., "e7"],
//	  "workers": 8,                 pool size of the parallel pass
//	  "serial_ms": 61234.5,         wall-clock, workers=1
//	  "parallel_ms": 17890.1,       wall-clock, workers=N
//	  "speedup": 3.42,              serial_ms / parallel_ms
//	  "output_bytes": 4096,         rendered table bytes per pass
//	  "identical": true             parallel output == serial output
//	}

import (
	"bytes"
	"fmt"
	"runtime"
	"time"
)

type batchRecord struct {
	Schema      string   `json:"schema"`
	N           int      `json:"n"`
	Steps       int      `json:"steps"`
	Experiments []string `json:"experiments"`
	Workers     int      `json:"workers"`
	SerialMS    float64  `json:"serial_ms"`
	ParallelMS  float64  `json:"parallel_ms"`
	Speedup     float64  `json:"speedup"`
	OutputBytes int      `json:"output_bytes"`
	Identical   bool     `json:"identical"`
}

// runBenchBatch times the full suite serially and on a workers-wide
// pool (workers <= 1 selects GOMAXPROCS) and writes the comparison
// record to path (default BENCH_batch.json).
func runBenchBatch(path string, n, steps, workers int) error {
	if path == "" {
		path = "BENCH_batch.json"
	}
	if workers <= 1 {
		workers = runtime.GOMAXPROCS(0)
	}
	var ids []string
	for _, e := range experiments {
		ids = append(ids, e.id)
	}

	pass := func(w int) (time.Duration, []byte, error) {
		var buf bytes.Buffer
		start := time.Now()
		err := runSuite(&buf, newService(w), ids, n, steps, w)
		return time.Since(start), buf.Bytes(), err
	}

	serialDur, serialOut, err := pass(1)
	if err != nil {
		return err
	}
	parallelDur, parallelOut, err := pass(workers)
	if err != nil {
		return err
	}

	rec := batchRecord{
		Schema:      "f90y-batch/v1",
		N:           n,
		Steps:       steps,
		Experiments: ids,
		Workers:     workers,
		SerialMS:    float64(serialDur.Nanoseconds()) / 1e6,
		ParallelMS:  float64(parallelDur.Nanoseconds()) / 1e6,
		Speedup:     float64(serialDur) / float64(parallelDur),
		OutputBytes: len(serialOut),
		Identical:   bytes.Equal(serialOut, parallelOut),
	}
	if err := writeRecord(path, rec); err != nil {
		return err
	}
	fmt.Printf("%s (serial %.0f ms, parallel %.0f ms on %d workers, %.2fx, identical=%v)\n",
		path, rec.SerialMS, rec.ParallelMS, workers, rec.Speedup, rec.Identical)
	return nil
}
