package main

// Crash-restart harness: with -restart N the suite launches its own
// f90yd (-server-bin) on a durable state dir, fires deterministic jobs
// at it, SIGKILLs the process mid-load, relaunches it, and verifies the
// recovery contract end to end, N times:
//
//   - every job the server acknowledged (202) is accounted for after
//     the restart — resumed from its drain/crash spill or re-run from
//     its journaled admission, never silently lost;
//   - every recovered job's result is byte-identical (DeepEqual on the
//     decoded result payload) to the uninterrupted baseline result for
//     the same program, measured once up front;
//   - no response ever falls outside the documented error taxonomy.
//
// With -restart-io-faults a deterministic torn/short-write spec is
// passed through to the server, so journal records and spills get
// damaged on purpose. Damaged-record casualties (a job id the restarted
// server no longer knows) are then forgiven EXACTLY when the server
// reports them (durability.torn_records > 0 / journal_errors > 0) —
// loss must be reported loss, never silent loss.
//
// A "f90y-crash/v1" record goes to -o (default CRASH_swe.json).

import (
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"os"
	"os/exec"
	"path/filepath"
	"reflect"
	"strings"
	"syscall"
	"time"

	"f90y/internal/workload"
)

// crashLoopKernel has enough top-level host boundaries (one per DO
// iteration) that a SIGKILL reliably lands mid-run, leaving a spill.
func crashLoopKernel(iters int) string {
	return fmt.Sprintf(`      PROGRAM LOOPK
      REAL A(32), B(32)
      INTEGER I
      A = 1.5
      B = 0.25
      DO I = 1, %d
        A = A * B + A
      END DO
      PRINT *, SUM(A)
      END
`, iters)
}

// crashProgs is the deterministic job mix: two long-running kernels
// that the kill interrupts mid-flight (resume path) and two quick ones
// that usually finish first (finished-record recovery path). All are
// deterministic — resumed results must match the baseline bit for bit.
var crashProgs = []struct {
	file string
	src  string
}{
	{"loopa.f90", crashLoopKernel(2400)},
	{"loopb.f90", crashLoopKernel(1800)},
	{"swe.f90", workload.SWE(12, 1)},
	{"fig9.f90", workload.Fig9(32)},
}

// crashRecord is the machine-readable outcome (schema f90y-crash/v1).
type crashRecord struct {
	Schema      string          `json:"schema"`
	Cycles      int             `json:"cycles"`
	Jobs        int             `json:"jobs"`
	Identical   int             `json:"identical"`
	Divergences int             `json:"divergences"`
	Casualties  int             `json:"casualties"` // reported torn-record losses (io-fault runs only)
	IOFaults    string          `json:"io_faults,omitempty"`
	ServerStats json.RawMessage `json:"server_stats,omitempty"`
}

// serverProc is one epoch of the managed f90yd.
type serverProc struct {
	cmd *exec.Cmd
	url string
}

// launchServer starts f90yd on stateDir and waits for /healthz.
func launchServer(bin, stateDir, addrFile, ioFaults string, logw io.Writer) (*serverProc, error) {
	os.Remove(addrFile)
	args := []string{
		"-addr", "127.0.0.1:0", "-addr-file", addrFile,
		"-workers", "2", "-queue-depth", "32",
		"-state-dir", stateDir, "-ckpt-every", "8",
		"-request-timeout", "5m", "-drain-timeout", "30s",
	}
	if ioFaults != "" {
		args = append(args, "-io-faults", ioFaults)
	}
	cmd := exec.Command(bin, args...)
	cmd.Stderr = logw
	if err := cmd.Start(); err != nil {
		return nil, fmt.Errorf("launch %s: %w", bin, err)
	}
	deadline := time.Now().Add(15 * time.Second)
	for {
		if data, err := os.ReadFile(addrFile); err == nil && len(data) > 0 {
			url := "http://" + strings.TrimSpace(string(data))
			if err := waitServe(&http.Client{Timeout: 5 * time.Second}, url, 10*time.Second); err == nil {
				return &serverProc{cmd: cmd, url: url}, nil
			}
		}
		if time.Now().After(deadline) {
			cmd.Process.Kill()
			cmd.Wait()
			return nil, fmt.Errorf("server never became healthy (state dir %s)", stateDir)
		}
		time.Sleep(25 * time.Millisecond)
	}
}

// kill SIGKILLs the epoch — the crash under test, no drain, no warning.
func (p *serverProc) kill() {
	p.cmd.Process.Kill()
	p.cmd.Wait()
}

// shutdown drains the epoch gracefully (SIGTERM, bounded wait).
func (p *serverProc) shutdown() {
	p.cmd.Process.Signal(syscall.SIGTERM)
	done := make(chan struct{})
	go func() { p.cmd.Wait(); close(done) }()
	select {
	case <-done:
	case <-time.After(45 * time.Second):
		p.cmd.Process.Kill()
		<-done
	}
}

// crashClient wraps the typed calls the harness needs.
type crashClient struct{ c *http.Client }

type crashJobView struct {
	JobID      string          `json:"job_id"`
	Status     string          `json:"status"`
	HTTPStatus int             `json:"http_status"`
	Code       string          `json:"code"`
	Error      string          `json:"error"`
	Result     json.RawMessage `json:"result"`
}

// post runs one request body against url, decoding the jobView shape.
func (cc crashClient) post(url string, body map[string]any) (int, crashJobView, error) {
	var v crashJobView
	b, err := json.Marshal(body)
	if err != nil {
		return 0, v, err
	}
	resp, err := cc.c.Post(url+"/v1/run", "application/json", strings.NewReader(string(b)))
	if err != nil {
		return 0, v, err
	}
	defer resp.Body.Close()
	if err := json.NewDecoder(resp.Body).Decode(&v); err != nil && err != io.EOF {
		return resp.StatusCode, v, err
	}
	return resp.StatusCode, v, nil
}

// getJob fetches one job; a 404 is reported via found=false, not error.
func (cc crashClient) getJob(url, id string) (found bool, v crashJobView, err error) {
	resp, err := cc.c.Get(url + "/v1/jobs/" + id)
	if err != nil {
		return false, v, err
	}
	defer resp.Body.Close()
	if resp.StatusCode == http.StatusNotFound {
		io.Copy(io.Discard, resp.Body)
		return false, v, nil
	}
	if err := json.NewDecoder(resp.Body).Decode(&v); err != nil {
		return true, v, err
	}
	return true, v, nil
}

// tornReported checks /statsz for evidence the server itself noticed
// durable-write damage; only then may a lost job id be forgiven.
func (cc crashClient) tornReported(url string) (bool, json.RawMessage) {
	resp, err := cc.c.Get(url + "/statsz")
	if err != nil {
		return false, nil
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		return false, nil
	}
	var st struct {
		Durability *struct {
			TornRecords     int64 `json:"torn_records"`
			JournalErrors   int64 `json:"journal_errors"`
			SpillCasualties int64 `json:"spill_casualties"`
			Unrecoverable   int64 `json:"unrecoverable"`
		} `json:"durability"`
	}
	if json.Unmarshal(body, &st) != nil || st.Durability == nil {
		return false, body
	}
	d := st.Durability
	return d.TornRecords > 0 || d.JournalErrors > 0 || d.Unrecoverable > 0, body
}

// runRestart is the -restart entry point.
func runRestart(w io.Writer, bin string, cycles int, stateDir, ioFaults, outPath string) error {
	if bin == "" {
		return fmt.Errorf("-restart requires -server-bin (path to f90yd)")
	}
	if stateDir == "" {
		dir, err := os.MkdirTemp("", "f90y-crash-*")
		if err != nil {
			return err
		}
		defer os.RemoveAll(dir)
		stateDir = dir
	}
	addrFile := filepath.Join(stateDir, "addr")
	cc := crashClient{c: &http.Client{Timeout: 5 * time.Minute}}

	srv, err := launchServer(bin, stateDir, addrFile, ioFaults, io.Discard)
	if err != nil {
		return err
	}
	alive := true
	defer func() {
		if alive {
			srv.shutdown()
		}
	}()

	// Uninterrupted baselines: one sync run per program. These also prove
	// the server healthy before any crash, and warm the artifact cache.
	baseline := make([]json.RawMessage, len(crashProgs))
	for i, p := range crashProgs {
		st, v, err := cc.post(srv.url, map[string]any{"file": p.file, "source": p.src})
		if err != nil {
			return fmt.Errorf("baseline %s: %w", p.file, err)
		}
		if st != 200 || v.Result == nil {
			return fmt.Errorf("baseline %s: status %d (%s: %s)", p.file, st, v.Code, v.Error)
		}
		baseline[i] = v.Result
	}
	fmt.Fprintf(w, "crash: baselines recorded for %d programs; starting %d SIGKILL cycles\n", len(crashProgs), cycles)

	rec := crashRecord{Schema: "f90y-crash/v1", Cycles: cycles, IOFaults: ioFaults}
	for cycle := 1; cycle <= cycles; cycle++ {
		// Admit one async job per program; all four must be acknowledged.
		type pending struct {
			id   string
			prog int
		}
		var jobs []pending
		for i, p := range crashProgs {
			st, v, err := cc.post(srv.url, map[string]any{"file": p.file, "source": p.src, "async": true})
			if err != nil {
				return fmt.Errorf("cycle %d admit %s: %w", cycle, p.file, err)
			}
			if st != 202 || v.JobID == "" {
				return fmt.Errorf("cycle %d admit %s: status %d", cycle, p.file, st)
			}
			jobs = append(jobs, pending{id: v.JobID, prog: i})
		}
		rec.Jobs += len(jobs)

		// Let the workers get into the long kernels, then pull the plug.
		time.Sleep(150 * time.Millisecond)
		srv.kill()
		alive = false

		srv, err = launchServer(bin, stateDir, addrFile, ioFaults, io.Discard)
		if err != nil {
			return fmt.Errorf("cycle %d relaunch: %w", cycle, err)
		}
		alive = true

		// Every acknowledged job must reach a terminal state and match
		// its baseline; a vanished id is tolerable only as a REPORTED
		// torn-record casualty under io-fault injection.
		for _, j := range jobs {
			deadline := time.Now().Add(2 * time.Minute)
			for {
				found, v, err := cc.getJob(srv.url, j.id)
				if err != nil {
					return fmt.Errorf("cycle %d poll %s: %w", cycle, j.id, err)
				}
				if !found {
					reported, _ := cc.tornReported(srv.url)
					if ioFaults != "" && reported {
						rec.Casualties++
						fmt.Fprintf(w, "crash: cycle %d job %s lost to reported torn records (forgiven)\n", cycle, j.id)
						break
					}
					return fmt.Errorf("cycle %d: job %s vanished with no reported journal damage — silent loss", cycle, j.id)
				}
				if v.Status == "done" {
					if v.HTTPStatus != 200 {
						return fmt.Errorf("cycle %d: job %s (%s) ended (%d, %s): %s",
							cycle, j.id, crashProgs[j.prog].file, v.HTTPStatus, v.Code, v.Error)
					}
					if sameJSON(v.Result, baseline[j.prog]) {
						rec.Identical++
					} else {
						rec.Divergences++
						fmt.Fprintf(w, "crash: cycle %d DIVERGENCE on %s (%s):\n  got  %s\n  want %s\n",
							cycle, j.id, crashProgs[j.prog].file, v.Result, baseline[j.prog])
					}
					break
				}
				if time.Now().After(deadline) {
					return fmt.Errorf("cycle %d: job %s stuck at %q after relaunch", cycle, j.id, v.Status)
				}
				time.Sleep(25 * time.Millisecond)
			}
		}
		fmt.Fprintf(w, "crash: cycle %d/%d ok (identical=%d casualties=%d)\n", cycle, cycles, rec.Identical, rec.Casualties)
	}

	_, stats := cc.tornReported(srv.url)
	rec.ServerStats = stats
	srv.shutdown()
	alive = false

	if outPath == "" {
		outPath = "CRASH_swe.json"
	}
	if err := writeRecord(outPath, rec); err != nil {
		return err
	}
	fmt.Fprintln(w, outPath)
	fmt.Fprintf(w, "crash: %d cycles, %d jobs: %d identical, %d divergences, %d reported casualties\n",
		rec.Cycles, rec.Jobs, rec.Identical, rec.Divergences, rec.Casualties)
	if rec.Divergences > 0 {
		return fmt.Errorf("%d resumed jobs diverged from their uninterrupted baselines", rec.Divergences)
	}
	if rec.Identical == 0 {
		return fmt.Errorf("no job survived to be compared — the harness never exercised recovery")
	}
	return nil
}

// sameJSON compares two JSON payloads structurally (key order and
// whitespace independent; numbers compare by their decoded values,
// which round-trip float64 bit patterns exactly).
func sameJSON(a, b json.RawMessage) bool {
	var va, vb any
	if json.Unmarshal(a, &va) != nil || json.Unmarshal(b, &vb) != nil {
		return false
	}
	return reflect.DeepEqual(va, vb)
}
