package main

// Chaos-soak mode. `swebench -soak N` sweeps the seven experiment
// kernels (at reduced sizes) through the differential oracle and the
// fault-invariance chaos harness: each program is first verified across
// the reference interpreter and both machine backends, then run under
// N seeds x the default fault plans x both backends, asserting that
// every recovered fault leaves the numerical results bit-identical to
// the unfaulted baseline. Violations are minimized to a reproducer spec
// written under -repro-dir and fail the command with exit status 1.
//
// Schema "f90y-soak/v1" (-soak N -json):
//
//	{
//	  "schema": "f90y-soak/v1",
//	  "seeds": N,                       seeds swept per plan
//	  "plans": ["seed=0,drop=0.05,...], the swept plans, CLI spec syntax
//	  "backends": ["cm2", "cm5"],
//	  "programs": [{"name": "swe", "vars": 9, "elems": 1234}, ...],
//	      per-program oracle verification size (interp vs cm2 vs cm5)
//	  "runs": 448,                      faulted runs compared to baselines
//	  "violations": [...],              fault-invariance failures (want [])
//	  "errors": ["..."]                 runs that failed outright (want [])
//	}

import (
	"context"
	"encoding/json"
	"fmt"
	"io"
	"os"

	"f90y/internal/oracle"
	"f90y/internal/workload"
)

// soakPrograms are the soak subjects: the suite's seven kernels at
// sizes small enough to sweep hundreds of runs in seconds.
func soakPrograms() []oracle.Program {
	return []oracle.Program{
		{Name: "swe", File: "swe.f90", Source: workload.SWE(16, 2)},
		{Name: "fig9", File: "fig9.f90", Source: workload.Fig9(16)},
		{Name: "fig10", File: "fig10.f90", Source: workload.Fig10(16)},
		{Name: "fig11", File: "fig11.f90", Source: workload.Fig11(16, 8)},
		{Name: "fig12", File: "fig12.f90", Source: workload.Fig12(16)},
		{Name: "stencil", File: "stencil.f90", Source: workload.Stencil(16, 2)},
		{Name: "spill", File: "spill.f90", Source: workload.SpillKernel(64, 10)},
	}
}

type soakProgram struct {
	Name  string `json:"name"`
	Vars  int    `json:"vars"`
	Elems int    `json:"elems"`
}

type soakRecord struct {
	Schema     string             `json:"schema"`
	Seeds      int                `json:"seeds"`
	Plans      []string           `json:"plans"`
	Backends   []string           `json:"backends"`
	Programs   []soakProgram      `json:"programs"`
	Runs       int                `json:"runs"`
	Violations []oracle.Violation `json:"violations"`
	Errors     []string           `json:"errors,omitempty"`
}

// runSoak verifies then chaos-soaks the suite. It returns the number of
// failures (violations + verify failures + run errors); the caller
// exits nonzero when it is not 0.
func runSoak(w io.Writer, seeds, workers int, reproDir string, asJSON bool, outPath string) (int, error) {
	progs := soakPrograms()
	svc := newService(workers)
	svc.MaxCycles = 2_000_000_000 // fault-induced runaways must not hang the sweep

	rec := soakRecord{Schema: "f90y-soak/v1", Seeds: seeds, Backends: []string{"cm2", "cm5"}}
	for _, p := range oracle.DefaultPlans() {
		rec.Plans = append(rec.Plans, p.SpecString())
	}

	// Phase 1: differential verification, interp vs cm2 vs cm5.
	failures := 0
	for _, p := range progs {
		vrep, err := oracle.Verify(p.File, p.Source, oracle.Options{MaxCycles: svc.MaxCycles, ExecWorkers: svc.ExecWorkers, ExecJIT: svc.ExecJIT})
		if err != nil {
			failures++
			rec.Errors = append(rec.Errors, fmt.Sprintf("verify %s: %v", p.Name, err))
			if !asJSON {
				fmt.Fprintf(w, "verify %-8s FAIL  %v\n", p.Name, err)
			}
			continue
		}
		rec.Programs = append(rec.Programs, soakProgram{Name: p.Name, Vars: vrep.Vars, Elems: vrep.Elems})
		if !asJSON {
			fmt.Fprintf(w, "verify %-8s ok    %d vars, %d values agree across interp, cm2, cm5\n",
				p.Name, vrep.Vars, vrep.Elems)
		}
	}

	// Phase 2: fault-invariance sweep.
	seedList := make([]int64, seeds)
	for i := range seedList {
		seedList[i] = int64(i + 1)
	}
	srep, err := oracle.Soak(context.Background(), svc, progs, oracle.SoakOptions{
		Seeds:     seedList,
		MaxCycles: svc.MaxCycles,
		ReproDir:  reproDir,
		ExecJIT:   svc.ExecJIT,
	})
	if err != nil {
		return failures + 1, err
	}
	rec.Runs = srep.Runs
	rec.Violations = srep.Violations
	rec.Errors = append(rec.Errors, srep.Errors...)
	failures += len(srep.Violations) + len(srep.Errors)

	if asJSON {
		if rec.Violations == nil {
			rec.Violations = []oracle.Violation{}
		}
		data, err := json.MarshalIndent(rec, "", "  ")
		if err != nil {
			return failures, err
		}
		data = append(data, '\n')
		if outPath == "" || outPath == "-" {
			_, err = w.Write(data)
			return failures, err
		}
		if err := os.WriteFile(outPath, data, 0o644); err != nil {
			return failures, err
		}
		fmt.Fprintln(w, outPath)
		return failures, nil
	}

	fmt.Fprintf(w, "soak: %d programs x 2 backends x %d seeds x %d plans = %d faulted runs\n",
		len(progs), seeds, len(oracle.DefaultPlans()), srep.Runs)
	for _, v := range srep.Violations {
		fmt.Fprintf(w, "VIOLATION %s/%s seed=%d spec=%q: %s", v.Program, v.Backend, v.Seed, v.Spec, v.Divergence)
		if v.ReproPath != "" {
			fmt.Fprintf(w, " (repro: %s)", v.ReproPath)
		}
		fmt.Fprintln(w)
	}
	for _, e := range srep.Errors {
		fmt.Fprintf(w, "ERROR %s\n", e)
	}
	if failures == 0 {
		fmt.Fprintln(w, "soak: fault invariance holds — 0 divergences")
	} else {
		fmt.Fprintf(w, "soak: %d failures\n", failures)
	}
	return failures, nil
}
