package main

// Server client mode: with -serve-url the bench suite doubles as a
// traffic generator against a running f90yd. A deterministic mix of job
// classes — healthy cached runs, oracle-verified runs, recoverable
// fault injections, budget-killer runaways on a noisy "hog" tenant,
// oversized sources, and admission-overflow bursts — is fired from
// -load-workers concurrent clients, and every response is checked
// against the documented error taxonomy (internal/server/errors.go):
// any 500, or any status outside the documented set, fails the run.
//
// A "f90y-load/v1" record is written to -o (default LOAD_swe.json):
//
//	{
//	  "schema": "f90y-load/v1",
//	  "url": ..., "requests": N, "workers": C, "wall_ms": ...,
//	  "classes": {"healthy": {"sent": n, "by_status": {"200": ...},
//	               "by_code": {"queue_full": ...}}, ...},
//	  "healthy_ms": {"p50": ..., "p99": ...},   latency of healthy 200s
//	  "undocumented": 0,                        statuses outside the taxonomy
//	  "server_stats": {...}                     final /statsz snapshot
//	}
//
// The healthy class must see at least one 200 and the run must see at
// least one shed (429) when the request count is large enough to
// overflow the queue — otherwise the admission control was never
// exercised and the command fails.

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"sort"
	"strings"
	"sync"
	"time"

	"f90y/internal/workload"
)

// loadRunaway never terminates: the server's cycle budget (or a drain)
// must kill it. Mirrors the runaway used by the server tests.
const loadRunaway = "program loop\ninteger :: i\ni = 0\ndo while (i < 1)\n  i = i * 1\nend do\nend program loop\n"

// documentedStatuses is the full server taxonomy from
// internal/server/errors.go. Anything else — above all any 500 — is a
// bug and fails the load run.
var documentedStatuses = map[int]bool{
	200: true, 202: true, 400: true, 404: true, 408: true, 413: true,
	422: true, 429: true, 499: true, 503: true,
}

// loadClass is one kind of traffic in the mix.
type loadClass struct {
	name string
	body map[string]any
	// allowed is the stricter per-class expectation recorded in the
	// output; statuses outside it but inside the documented taxonomy are
	// counted as "unexpected" for the class without failing the run
	// (e.g. a healthy run shed as 429 under overload, or 503 mid-drain).
	allowed map[int]bool
}

type loadRecord struct {
	Schema       string                     `json:"schema"`
	URL          string                     `json:"url"`
	Requests     int                        `json:"requests"`
	Workers      int                        `json:"workers"`
	WallMS       float64                    `json:"wall_ms"`
	Classes      map[string]*loadClassStats `json:"classes"`
	HealthyMS    *loadPercentiles           `json:"healthy_ms,omitempty"`
	Undocumented int                        `json:"undocumented"`
	ServerStats  json.RawMessage            `json:"server_stats,omitempty"`
}

type loadClassStats struct {
	Sent       int            `json:"sent"`
	ByStatus   map[string]int `json:"by_status"`
	ByCode     map[string]int `json:"by_code,omitempty"`
	Unexpected int            `json:"unexpected,omitempty"`
}

type loadPercentiles struct {
	P50 float64 `json:"p50"`
	P99 float64 `json:"p99"`
}

// waitServe polls GET /healthz until the server answers 200 or the
// wait budget runs out.
func waitServe(client *http.Client, url string, wait time.Duration) error {
	deadline := time.Now().Add(wait)
	for {
		resp, err := client.Get(url + "/healthz")
		if err == nil {
			resp.Body.Close()
			if resp.StatusCode == http.StatusOK {
				return nil
			}
		}
		if time.Now().After(deadline) {
			if err != nil {
				return fmt.Errorf("server at %s not healthy after %v: %w", url, wait, err)
			}
			return fmt.Errorf("server at %s not healthy after %v", url, wait)
		}
		time.Sleep(50 * time.Millisecond)
	}
}

// loadMix builds the deterministic request mix: request i always maps
// to the same class and body, independent of worker count, so two runs
// against the same server issue identical traffic. Benign traffic
// rotates across four tenants so both shedding layers get exercised:
// one noisy tenant saturates its own in-flight quota (tenant_busy)
// while the aggregate can still overflow the shared queue (queue_full).
func loadMix(i int) loadClass {
	healthySrc := workload.SWE(16, 1)
	tenant := fmt.Sprintf("bench-%d", i%4)
	switch {
	case i%16 == 7: // oracle-verified run
		return loadClass{
			name:    "verify",
			body:    map[string]any{"file": "swe.f90", "source": healthySrc, "verify": true, "tenant": tenant},
			allowed: map[int]bool{200: true},
		}
	case i%16 == 11: // recoverable fault plan: retried transfers, still 200
		return loadClass{
			name:    "fault",
			body:    map[string]any{"file": "swe.f90", "source": healthySrc, "faults": "seed=7,drop=0.01", "tenant": tenant},
			allowed: map[int]bool{200: true},
		}
	case i%16 == 3 || i%16 == 13: // budget-killer runaway on the hog tenant
		return loadClass{
			name:    "hog",
			body:    map[string]any{"source": loadRunaway, "max_cycles": 2e6, "tenant": "hog"},
			allowed: map[int]bool{422: true, 429: true},
		}
	case i == 5: // a single oversized source probes the byte bound
		return loadClass{
			name:    "oversize",
			body:    map[string]any{"source": "! x\n" + strings.Repeat("! padding line to exceed the source byte bound\n", 40000), "tenant": tenant},
			allowed: map[int]bool{413: true},
		}
	case i%10 == 9: // healthy but sharded executor
		return loadClass{
			name:    "healthy",
			body:    map[string]any{"file": "swe.f90", "source": healthySrc, "exec_workers": 4, "tenant": tenant},
			allowed: map[int]bool{200: true, 429: true},
		}
	default:
		return loadClass{
			name:    "healthy",
			body:    map[string]any{"file": "swe.f90", "source": healthySrc, "tenant": tenant},
			allowed: map[int]bool{200: true, 429: true},
		}
	}
}

// runServeLoad fires the mix at the server and writes the record.
// Returns an error (→ exit 1) on any undocumented status or when the
// healthy class never completed a request.
func runServeLoad(w io.Writer, url string, requests, workers int, wait time.Duration, outPath string) error {
	url = strings.TrimRight(url, "/")
	if requests < 1 {
		requests = 64
	}
	if workers < 1 {
		workers = 8
	}
	client := &http.Client{Timeout: 5 * time.Minute}
	if err := waitServe(client, url, wait); err != nil {
		return err
	}

	type outcome struct {
		class   string
		status  int
		code    string
		ms      float64
		allowed bool
	}
	outcomes := make([]outcome, requests)
	var wg sync.WaitGroup
	sem := make(chan struct{}, workers)
	start := time.Now()
	for i := 0; i < requests; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			sem <- struct{}{}
			defer func() { <-sem }()
			cl := loadMix(i)
			tenant, _ := cl.body["tenant"].(string)
			delete(cl.body, "tenant")
			b, err := json.Marshal(cl.body)
			if err != nil {
				outcomes[i] = outcome{class: cl.name, status: -1}
				return
			}
			req, err := http.NewRequest("POST", url+"/v1/run", bytes.NewReader(b))
			if err != nil {
				outcomes[i] = outcome{class: cl.name, status: -1}
				return
			}
			req.Header.Set("Content-Type", "application/json")
			if tenant != "" {
				req.Header.Set("X-Tenant", tenant)
			}
			t0 := time.Now()
			resp, err := client.Do(req)
			if err != nil {
				// Transport errors (refused mid-drain, timeouts) are
				// recorded as status 0 — documented, since the load client
				// may outlive the server's drain in the smoke script.
				outcomes[i] = outcome{class: cl.name, status: 0, allowed: true}
				return
			}
			var code string
			if resp.StatusCode >= 400 {
				var env struct {
					Error struct {
						Code string `json:"code"`
					} `json:"error"`
				}
				if json.NewDecoder(resp.Body).Decode(&env) == nil {
					code = env.Error.Code
				}
			}
			io.Copy(io.Discard, resp.Body)
			resp.Body.Close()
			outcomes[i] = outcome{
				class:   cl.name,
				status:  resp.StatusCode,
				code:    code,
				ms:      float64(time.Since(t0).Nanoseconds()) / 1e6,
				allowed: cl.allowed[resp.StatusCode],
			}
		}(i)
	}
	wg.Wait()
	wallMS := float64(time.Since(start).Nanoseconds()) / 1e6

	rec := loadRecord{
		Schema:   "f90y-load/v1",
		URL:      url,
		Requests: requests,
		Workers:  workers,
		WallMS:   wallMS,
		Classes:  map[string]*loadClassStats{},
	}
	var healthyMS []float64
	healthyOK := 0
	for _, o := range outcomes {
		cs := rec.Classes[o.class]
		if cs == nil {
			cs = &loadClassStats{ByStatus: map[string]int{}}
			rec.Classes[o.class] = cs
		}
		cs.Sent++
		cs.ByStatus[fmt.Sprintf("%d", o.status)]++
		if o.code != "" {
			if cs.ByCode == nil {
				cs.ByCode = map[string]int{}
			}
			cs.ByCode[o.code]++
		}
		if o.status > 0 && !documentedStatuses[o.status] {
			rec.Undocumented++
		}
		if !o.allowed && o.status > 0 && documentedStatuses[o.status] {
			cs.Unexpected++
		}
		if o.class == "healthy" && o.status == 200 {
			healthyOK++
			healthyMS = append(healthyMS, o.ms)
		}
	}
	if len(healthyMS) > 0 {
		sort.Float64s(healthyMS)
		rec.HealthyMS = &loadPercentiles{
			P50: healthyMS[len(healthyMS)*50/100],
			P99: healthyMS[min(len(healthyMS)-1, len(healthyMS)*99/100)],
		}
	}

	// Final server snapshot, best-effort (the server may already be
	// draining when the smoke script runs the overload phase).
	if resp, err := client.Get(url + "/statsz"); err == nil {
		if body, err := io.ReadAll(resp.Body); err == nil && resp.StatusCode == http.StatusOK {
			rec.ServerStats = json.RawMessage(body)
		}
		resp.Body.Close()
	}

	if outPath == "" {
		outPath = "LOAD_swe.json"
	}
	if err := writeRecord(outPath, rec); err != nil {
		return err
	}
	fmt.Fprintln(w, outPath)
	if rec.HealthyMS != nil {
		fmt.Fprintf(w, "load: %d reqs via %d workers in %.0f ms; healthy p50=%.1f ms p99=%.1f ms\n",
			requests, workers, wallMS, rec.HealthyMS.P50, rec.HealthyMS.P99)
	}
	for _, name := range sortedClassNames(rec.Classes) {
		cs := rec.Classes[name]
		fmt.Fprintf(w, "load: class %-8s sent=%-4d by_status=%v", name, cs.Sent, cs.ByStatus)
		if len(cs.ByCode) > 0 {
			fmt.Fprintf(w, " by_code=%v", cs.ByCode)
		}
		fmt.Fprintln(w)
	}

	if rec.Undocumented > 0 {
		return fmt.Errorf("%d responses carried statuses outside the documented taxonomy (500s are bugs)", rec.Undocumented)
	}
	if healthyOK == 0 {
		return fmt.Errorf("no healthy request completed 200 — the server never did useful work under load")
	}
	return nil
}

func sortedClassNames(m map[string]*loadClassStats) []string {
	names := make([]string, 0, len(m))
	for k := range m {
		names = append(names, k)
	}
	sort.Strings(names)
	return names
}
