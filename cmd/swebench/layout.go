package main

// The layout sweep (-layout-sweep): the router-heavy kernel trio
// (transpose ping-pong, FFT butterfly, irregular gather) is compiled
// and run under three data distributions each — the directive-free
// BLOCK default, an explicit CYCLIC layout, and an ALIGN'd layout — on
// the default CM/2 model. The printed table and the "f90y-layout/v1"
// record show, per (kernel, layout), the modeled cycle total, the
// NEWS-grid/router/reduce split of the communication cycles, and the
// communication fraction; per kernel, the best layout and the
// worst/best cycle spread.
//
// Schema "f90y-layout/v1" (all cycle values are modeled CM/2 cycles;
// grid+router+reduce sums exactly to comm_cycles; the record carries no
// wall-clock fields, so repeated sweeps are byte-identical):
//
//	{
//	  "schema": "f90y-layout/v1",
//	  "pes": 2048,                 processing elements
//	  "n": 65536, "iters": 2,      sweep problem size and iterations
//	  "any_non_block_best": true,  some kernel's best layout isn't BLOCK
//	  "max_spread": 3.4,           largest worst/best cycle ratio
//	  "kernels": [{
//	    "kernel": "fft", "n": 65536, "iters": 16,
//	    "best_layout": "cyclic", "spread": 3.4,
//	    "rows": [{
//	      "layout": "block", "directives": [...],
//	      "cycles": c, "comm_cycles": m,
//	      "grid": g, "router": r, "reduce": d,   g+r+d == m
//	      "comm_fraction": m/c,
//	      "verified": true                       only with -layout-verify
//	    }, ...]
//	  }, ...]
//	}
//
// With -layout-verify each (kernel, layout) pair is additionally pushed
// through the three-way differential oracle (reference interpreter vs
// CM-2 vs CM-5) at a reduced problem size before the sweep row is
// accepted; a divergence fails the command.

import (
	"context"
	"fmt"
	"io"

	"f90y"
	"f90y/internal/driver"
	"f90y/internal/oracle"
	"f90y/internal/workload"
)

type layoutRow struct {
	Layout       string   `json:"layout"`
	Directives   []string `json:"directives,omitempty"`
	Cycles       float64  `json:"cycles"`
	CommCycles   float64  `json:"comm_cycles"`
	Grid         float64  `json:"grid"`
	Router       float64  `json:"router"`
	Reduce       float64  `json:"reduce"`
	CommFraction float64  `json:"comm_fraction"`
	Verified     bool     `json:"verified,omitempty"`
}

type layoutKernel struct {
	Kernel     string      `json:"kernel"`
	N          int         `json:"n"`
	Iters      int         `json:"iters"`
	BestLayout string      `json:"best_layout"`
	Spread     float64     `json:"spread"`
	Rows       []layoutRow `json:"rows"`
}

type layoutRecord struct {
	Schema          string         `json:"schema"`
	PEs             int            `json:"pes"`
	N               int            `json:"n"`
	Iters           int            `json:"iters"`
	AnyNonBlockBest bool           `json:"any_non_block_best"`
	MaxSpread       float64        `json:"max_spread"`
	Kernels         []layoutKernel `json:"kernels"`
}

// layoutVariant is one distribution to sweep: the directive lines are
// spliced into the kernel source verbatim (nil = directive-free BLOCK).
type layoutVariant struct {
	name string
	dirs []string
}

// layoutCase is one kernel of the trio: the generator, the sweep-size
// parameters, the (smaller) oracle-verification parameters, and the
// distributions to sweep.
type layoutCase struct {
	kernel           string
	gen              func(a, b int, dirs []string) string
	a, b             int // sweep generator arguments
	verifyA, verifyB int // -layout-verify generator arguments
	variants         []layoutVariant
}

// layoutCases builds the trio for a sweep over n elements. The
// transpose works an edge×edge grid with edge² ≤ n; the FFT runs
// log2(n) butterfly stages so the late long-stride shifts dominate.
func layoutCases(n, iters int) []layoutCase {
	edge := 1
	for (edge*2)*(edge*2) <= n {
		edge *= 2
	}
	stages := 0
	for 1<<stages < n {
		stages++
	}
	return []layoutCase{
		{
			kernel: "transpose", gen: workload.LayoutTranspose,
			a: edge, b: iters, verifyA: 16, verifyB: 2,
			variants: []layoutVariant{
				{"block", nil},
				{"cyclic", []string{
					"!HPF$ DISTRIBUTE a(CYCLIC, CYCLIC)",
					"!HPF$ ALIGN b WITH a",
					"!HPF$ ALIGN c WITH a",
				}},
				{"aligned", []string{
					"!HPF$ DISTRIBUTE a(BLOCK, *)",
					"!HPF$ DISTRIBUTE b(*, BLOCK)",
					"!HPF$ ALIGN c WITH b",
				}},
			},
		},
		{
			kernel: "fft", gen: workload.LayoutFFT,
			a: n, b: stages, verifyA: 64, verifyB: 6,
			variants: []layoutVariant{
				{"block", nil},
				{"cyclic", []string{
					"!HPF$ DISTRIBUTE x(CYCLIC)",
					"!HPF$ ALIGN y WITH x",
				}},
				{"aligned", []string{
					"!HPF$ PROCESSORS procs(16)",
					"!HPF$ DISTRIBUTE x(CYCLIC(2)) ONTO procs",
					"!HPF$ ALIGN y WITH x",
				}},
			},
		},
		{
			kernel: "gather", gen: workload.LayoutGather,
			a: n, b: iters, verifyA: 64, verifyB: 2,
			variants: []layoutVariant{
				{"block", nil},
				{"cyclic", []string{
					"!HPF$ DISTRIBUTE a(CYCLIC)",
					"!HPF$ ALIGN b WITH a",
				}},
				{"aligned", []string{
					"!HPF$ DISTRIBUTE a(CYCLIC(4))",
					"!HPF$ ALIGN b WITH a",
					"!HPF$ ALIGN idx WITH a",
				}},
			},
		},
	}
}

// buildLayoutRecord runs the sweep and assembles the record. Separated
// from printing and the file write so tests can assert determinism.
func buildLayoutRecord(svc *driver.Service, n, iters int, verify bool) (layoutRecord, error) {
	cfg := f90y.DefaultConfig()
	rec := layoutRecord{
		Schema: "f90y-layout/v1",
		PEs:    cfg.Machine.PEs,
		N:      n,
		Iters:  iters,
	}
	for _, c := range layoutCases(n, iters) {
		k := layoutKernel{Kernel: c.kernel, N: c.a, Iters: c.b}
		for _, v := range c.variants {
			if verify {
				small := c.gen(c.verifyA, c.verifyB, v.dirs)
				rep, err := oracle.Verify(c.kernel+"-"+v.name+".f90", small, oracle.Options{})
				if err != nil {
					return rec, fmt.Errorf("%s/%s: verify: %w", c.kernel, v.name, err)
				}
				if rep.Divergence != nil {
					return rec, fmt.Errorf("%s/%s: divergence: %s", c.kernel, v.name, rep.Divergence)
				}
			}
			file := fmt.Sprintf("%s-%s.f90", c.kernel, v.name)
			res := svc.Run(context.Background(), driver.Job{
				Name: file, File: file,
				Source: c.gen(c.a, c.b, v.dirs),
				Config: f90y.DefaultConfig(),
			})
			if res.Err != nil {
				return rec, fmt.Errorf("%s/%s: %w", c.kernel, v.name, res.Err)
			}
			r := res.Result()
			total := r.TotalCycles()
			row := layoutRow{
				Layout:     v.name,
				Directives: v.dirs,
				Cycles:     total,
				CommCycles: r.CommCycles,
				Grid:       r.CommClassCycles["grid"],
				Router:     r.CommClassCycles["router"],
				Reduce:     r.CommClassCycles["reduce"],
				Verified:   verify,
			}
			if total > 0 {
				row.CommFraction = r.CommCycles / total
			}
			k.Rows = append(k.Rows, row)
		}
		best, worst := k.Rows[0], k.Rows[0]
		for _, row := range k.Rows[1:] {
			if row.Cycles < best.Cycles {
				best = row
			}
			if row.Cycles > worst.Cycles {
				worst = row
			}
		}
		k.BestLayout = best.Layout
		if best.Cycles > 0 {
			k.Spread = worst.Cycles / best.Cycles
		}
		if k.BestLayout != "block" {
			rec.AnyNonBlockBest = true
		}
		if k.Spread > rec.MaxSpread {
			rec.MaxSpread = k.Spread
		}
		rec.Kernels = append(rec.Kernels, k)
	}
	return rec, nil
}

// runLayoutSweep prints the sweep table to w and writes the record to
// path (default BENCH_layout_n<N>_i<iters>.json).
func runLayoutSweep(w io.Writer, path string, n, iters int, verify bool) error {
	svc := newService(1)
	rec, err := buildLayoutRecord(svc, n, iters, verify)
	if err != nil {
		return err
	}
	fmt.Fprintf(w, "Layout sweep: !HPF$ distribution plane, %d PEs, n=%d, iters=%d\n", rec.PEs, n, iters)
	for _, k := range rec.Kernels {
		fmt.Fprintf(w, "\n%s (n=%d, iters=%d): best=%s spread=%.2fx\n", k.Kernel, k.N, k.Iters, k.BestLayout, k.Spread)
		fmt.Fprintf(w, "  %-10s %-14s %-14s %-12s %-12s %-10s %s\n",
			"layout", "cycles", "comm", "grid", "router", "reduce", "comm%")
		for _, r := range k.Rows {
			fmt.Fprintf(w, "  %-10s %-14.0f %-14.0f %-12.0f %-12.0f %-10.0f %.1f%%\n",
				r.Layout, r.Cycles, r.CommCycles, r.Grid, r.Router, r.Reduce, 100*r.CommFraction)
		}
	}
	fmt.Fprintf(w, "\nany_non_block_best=%t max_spread=%.2fx\n", rec.AnyNonBlockBest, rec.MaxSpread)
	if path == "" {
		path = fmt.Sprintf("BENCH_layout_n%d_i%d.json", n, iters)
	}
	if err := writeRecord(path, rec); err != nil {
		return err
	}
	fmt.Fprintln(w, path)
	return nil
}
