// Command f90yc is the Fortran-90-Y compiler driver: it compiles a
// Fortran 90 source file through the full pipeline and dumps whichever
// intermediate representation is requested.
//
// Usage:
//
//	f90yc [flags] file.f90
//
//	-dump ast|nir|opt|peac|host|stats   what to print (default peac)
//	-O                                   optimization level (default true)
//	-pe naive|optimized                  PE code generator level
package main

import (
	"flag"
	"fmt"
	"os"

	"f90y"
	"f90y/internal/ast"
	"f90y/internal/fe"
	"f90y/internal/nir"
	"f90y/internal/opt"
	"f90y/internal/pe"
)

var (
	flagDump = flag.String("dump", "peac", "dump: ast, nir, opt, peac, host, stats")
	flagO    = flag.Bool("O", true, "enable the NIR shape transformations (blocking, padding)")
	flagPE   = flag.String("pe", "optimized", "PE code generator: naive or optimized")
)

func main() {
	flag.Parse()
	if flag.NArg() != 1 {
		fmt.Fprintln(os.Stderr, "usage: f90yc [flags] file.f90")
		os.Exit(2)
	}
	file := flag.Arg(0)
	src, err := os.ReadFile(file)
	if err != nil {
		fmt.Fprintln(os.Stderr, "f90yc:", err)
		os.Exit(1)
	}

	cfg := f90y.Config{Opt: opt.Default, PE: pe.Optimized}
	if !*flagO {
		cfg.Opt = opt.Options{PadSections: true}
	}
	if *flagPE == "naive" {
		cfg.PE = pe.Naive
	}

	comp, err := f90y.Compile(file, string(src), cfg)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}

	switch *flagDump {
	case "ast":
		fmt.Print(ast.Format(comp.AST))
	case "nir":
		fmt.Print(nir.Print(comp.Module.Prog))
	case "opt":
		fmt.Print(nir.Print(comp.Optimized.Prog))
	case "peac":
		for _, r := range comp.Program.Routines {
			fmt.Print(r.Format())
			fmt.Println()
		}
	case "host":
		printHost(comp.Program.Ops, 0)
	case "stats":
		fmt.Printf("optimizer: %d padded, %d fused, %d comms hoisted\n",
			comp.OptStats.PaddedMoves, comp.OptStats.FusedMoves, comp.OptStats.HoistedComms)
		fmt.Printf("partition: %d node routines, %d comm calls, %d host moves, %d fallbacks\n",
			comp.PartStats.NodeRoutines, comp.PartStats.CommCalls,
			comp.PartStats.HostMoves, comp.PartStats.Fallbacks)
		for _, r := range comp.Program.Routines {
			fmt.Printf("routine %s: %d instrs, %d issue slots, %d spill slots, %d flops/iter\n",
				r.Name, r.InstrCount(), r.IssueSlots(), r.SpillSlots, r.FlopsPerIteration())
		}
	default:
		fmt.Fprintf(os.Stderr, "f90yc: unknown dump %q\n", *flagDump)
		os.Exit(2)
	}
}

func printHost(ops []fe.Op, depth int) {
	ind := ""
	for i := 0; i < depth; i++ {
		ind += "  "
	}
	for _, op := range ops {
		switch op := op.(type) {
		case fe.Assign:
			fmt.Printf("%sassign %s <- %s\n", ind, nir.PrintValue(op.Tgt), nir.PrintValue(op.Src))
		case fe.CallNode:
			fmt.Printf("%scall-node %s over %s (%d params)\n", ind, op.Routine.Name, op.Over, len(op.Routine.Params))
		case fe.Comm:
			fmt.Printf("%scomm %s\n", ind, summarizeComm(op))
		case fe.If:
			fmt.Printf("%sif %s\n", ind, nir.PrintValue(op.Cond))
			printHost(op.Then, depth+1)
			if len(op.Else) > 0 {
				fmt.Printf("%selse\n", ind)
				printHost(op.Else, depth+1)
			}
		case fe.While:
			fmt.Printf("%swhile %s\n", ind, nir.PrintValue(op.Cond))
			printHost(op.Body, depth+1)
		case fe.DoSerial:
			fmt.Printf("%sdo %s\n", ind, op.S)
			printHost(op.Body, depth+1)
		case fe.Print:
			fmt.Printf("%sprint (%d items)\n", ind, len(op.Args))
		case fe.Stop:
			fmt.Printf("%sstop\n", ind)
		}
	}
}

func summarizeComm(op fe.Comm) string {
	for _, g := range op.Move.Moves {
		if fc, ok := g.Src.(nir.FcnCall); ok {
			return fc.Name
		}
	}
	return "general-router move"
}
