// Command f90yc is the Fortran-90-Y compiler driver: it compiles a
// Fortran 90 source file through the full pipeline and dumps whichever
// intermediate representation is requested.
//
// Usage:
//
//	f90yc [flags] file.f90
//
//	-dump ast|nir|opt|peac|host|stats|none  what to print (default peac)
//	-O                                   optimization level (default true)
//	-pe naive|optimized                  PE code generator level
//	-v                                   print the phase/counter report to stderr
//	-metrics                             run the program, print the full report
//	-trace out.json                      run the program, write a Chrome trace
//	-faults spec                         inject faults during -metrics/-trace runs
//
// -metrics and -trace execute the compiled program on the modeled CM/2
// so the report and trace include the "exec" span and the cycle
// attribution counters; the trace file loads in chrome://tracing or
// ui.perfetto.dev. When any of -v/-metrics/-trace is given, -dump
// defaults to none.
//
// Compilation goes through internal/driver — the same cached service
// layer behind f90yrun and swebench — so flag semantics and fault-spec
// parsing cannot drift between the commands.
package main

import (
	"context"
	"flag"
	"fmt"
	"os"

	"f90y"
	"f90y/internal/ast"
	"f90y/internal/driver"
	"f90y/internal/fe"
	"f90y/internal/nir"
	"f90y/internal/obs"
	"f90y/internal/opt"
	"f90y/internal/pe"
)

var (
	flagDump    = flag.String("dump", "peac", "dump: ast, nir, opt, peac, host, stats, none")
	flagO       = flag.Bool("O", true, "enable the NIR shape transformations (blocking, padding)")
	flagPE      = flag.String("pe", "optimized", "PE code generator: naive or optimized")
	flagV       = flag.Bool("v", false, "print the compilation phase/counter report to stderr")
	flagMetrics = flag.Bool("metrics", false, "run the program and print the full telemetry report")
	flagTrace   = flag.String("trace", "", "run the program and write a Chrome trace_event JSON file")
	flagFaults  = flag.String("faults", "", driver.FaultsHelp)
)

func main() {
	flag.Parse()
	if flag.NArg() != 1 {
		fmt.Fprintln(os.Stderr, "usage: f90yc [flags] file.f90")
		os.Exit(2)
	}
	file := flag.Arg(0)
	src, err := os.ReadFile(file)
	if err != nil {
		fmt.Fprintln(os.Stderr, "f90yc:", err)
		os.Exit(1)
	}

	cfg := f90y.Config{Opt: opt.Default, PE: pe.Optimized}
	if !*flagO {
		cfg.Opt = opt.Options{PadSections: true}
	}
	if *flagPE == "naive" {
		cfg.PE = pe.Naive
	}

	// Telemetry requests share one collector; stats dumps render from it
	// too, so there is a single formatting path for phase statistics.
	tel := driver.NewTelemetry(*flagMetrics, *flagTrace)
	if (*flagV || *flagDump == "stats") && tel.Col == nil {
		tel.Col = obs.NewCollector()
	}
	cfg.Obs = tel.Recorder()

	// Telemetry flags change the default output from a peac dump to none;
	// an explicit -dump still wins.
	dump := *flagDump
	if (*flagV || *flagMetrics || *flagTrace != "") && !dumpSetExplicitly() {
		dump = "none"
	}

	ctx := context.Background()
	art, err := driver.New(1).Compile(ctx, file, string(src), cfg)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	comp := art.Comp

	// -metrics/-trace execute the program so the report and trace carry
	// the exec span and cycle attribution (and, with -faults, the
	// injected-fault events and recovery counters).
	if *flagMetrics || *flagTrace != "" {
		ctl, err := driver.ControlOptions{Faults: *flagFaults}.Build(file, cfg.Obs)
		if err != nil {
			fmt.Fprintln(os.Stderr, "f90yc:", err)
			os.Exit(2)
		}
		res, err := comp.RunCtlCtx(ctx, ctl)
		if err != nil {
			fmt.Fprintln(os.Stderr, "f90yc:", err)
			os.Exit(1)
		}
		for _, line := range res.Output {
			fmt.Println(line)
		}
	}

	switch dump {
	case "none":
	case "ast":
		fmt.Print(ast.Format(comp.AST))
	case "nir":
		fmt.Print(nir.Print(comp.Module.Prog))
	case "opt":
		fmt.Print(nir.Print(comp.Optimized.Prog))
	case "peac":
		for _, r := range comp.Program.Routines {
			fmt.Print(r.Format())
			fmt.Println()
		}
	case "host":
		printHost(comp.Program.Ops, 0)
	case "stats":
		fmt.Print(tel.Col.Report())
	default:
		fmt.Fprintf(os.Stderr, "f90yc: unknown dump %q\n", dump)
		os.Exit(2)
	}

	if *flagMetrics {
		fmt.Print(tel.Col.Report())
	} else if *flagV && dump != "stats" {
		fmt.Fprint(os.Stderr, tel.Col.Report())
	}
	if err := tel.WriteTrace(os.Stderr); err != nil {
		fmt.Fprintln(os.Stderr, "f90yc:", err)
		os.Exit(1)
	}
}

func dumpSetExplicitly() bool {
	set := false
	flag.Visit(func(f *flag.Flag) {
		if f.Name == "dump" {
			set = true
		}
	})
	return set
}

func printHost(ops []fe.Op, depth int) {
	ind := ""
	for i := 0; i < depth; i++ {
		ind += "  "
	}
	for _, op := range ops {
		switch op := op.(type) {
		case fe.Assign:
			fmt.Printf("%sassign %s <- %s\n", ind, nir.PrintValue(op.Tgt), nir.PrintValue(op.Src))
		case fe.CallNode:
			fmt.Printf("%scall-node %s over %s (%d params)\n", ind, op.Routine.Name, op.Over, len(op.Routine.Params))
		case fe.Comm:
			fmt.Printf("%scomm %s\n", ind, summarizeComm(op))
		case fe.If:
			fmt.Printf("%sif %s\n", ind, nir.PrintValue(op.Cond))
			printHost(op.Then, depth+1)
			if len(op.Else) > 0 {
				fmt.Printf("%selse\n", ind)
				printHost(op.Else, depth+1)
			}
		case fe.While:
			fmt.Printf("%swhile %s\n", ind, nir.PrintValue(op.Cond))
			printHost(op.Body, depth+1)
		case fe.DoSerial:
			fmt.Printf("%sdo %s\n", ind, op.S)
			printHost(op.Body, depth+1)
		case fe.Print:
			fmt.Printf("%sprint (%d items)\n", ind, len(op.Args))
		case fe.Stop:
			fmt.Printf("%sstop\n", ind)
		}
	}
}

func summarizeComm(op fe.Comm) string {
	for _, g := range op.Move.Moves {
		if fc, ok := g.Src.(nir.FcnCall); ok {
			return fc.Name
		}
	}
	return "general-router move"
}
