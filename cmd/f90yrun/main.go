// Command f90yrun compiles a Fortran 90 source file and executes it on
// the simulated CM/2 (or CM-5), printing the program's output followed by
// a performance report from the machine model.
//
// Usage:
//
//	f90yrun [-target cm2|cm5] [-pes 2048] [-verify] [-metrics] [-trace out.json]
//	        [-timeout 30s] [-faults spec] [-checkpoint-every N]
//	        [-checkpoint ckpt.json] [-resume ckpt.json] file.f90
//
// With -verify the result is also checked elementwise against the
// reference interpreter. -metrics prints the phase/counter telemetry
// report (compile spans plus execution cycle attribution) to stderr;
// -trace writes the same telemetry as Chrome trace_event JSON.
//
// -timeout bounds the whole compile+run: past the deadline the run
// stops at the next host-op boundary with an error wrapping
// f90y.ErrCanceled (exit status 3).
//
// -faults attaches a deterministic fault-injection plan (see
// internal/faults.ParseSpec for the full key list). -checkpoint-every N
// snapshots the machine to -checkpoint (default <file>.ckpt.json) every
// N host boundaries; -resume restarts a run from such a snapshot — a
// run killed by an injected fatal fault continues from its last
// checkpoint and produces the same final store as an uninterrupted run.
//
// The command is a thin shell over internal/driver, the same service
// layer swebench's batch mode uses.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"math"
	"os"
	"strings"

	"f90y"
	"f90y/internal/cm5"
	"f90y/internal/driver"
	"f90y/internal/faults"
	"f90y/internal/interp"
	"f90y/internal/rt"
)

var (
	flagTarget  = flag.String("target", "cm2", "target machine: cm2 or cm5")
	flagPEs     = flag.Int("pes", 2048, "processing elements (cm2 target)")
	flagVerify  = flag.Bool("verify", false, "check results against the reference interpreter")
	flagMetrics = flag.Bool("metrics", false, "print the telemetry report to stderr")
	flagTrace   = flag.String("trace", "", "write a Chrome trace_event JSON file")
	flagTimeout = flag.Duration("timeout", 0, "abort the compile+run after this duration (0 = no limit)")
	flagFaults  = flag.String("faults", "", driver.FaultsHelp)
	flagCkEvery = flag.Int("checkpoint-every", 0, "write a checkpoint every N host boundaries (0 = off)")
	flagCkPath  = flag.String("checkpoint", "", "checkpoint file path (default <file>.ckpt.json)")
	flagResume  = flag.String("resume", "", "resume from a checkpoint file")
)

// fail reports a run error; an injected fatal fault points at the
// checkpoint so the user knows the run is resumable, and a deadline
// expiry exits with a distinct status.
func fail(file string, err error) {
	fmt.Fprintln(os.Stderr, "f90yrun:", err)
	if errors.Is(err, faults.ErrFatal) && *flagCkEvery > 0 {
		fmt.Fprintln(os.Stderr, "f90yrun: resume with -resume", driver.CheckpointPath(file, *flagCkPath))
	}
	if errors.Is(err, f90y.ErrCanceled) {
		os.Exit(3)
	}
	os.Exit(1)
}

func main() {
	flag.Parse()
	if flag.NArg() != 1 {
		fmt.Fprintln(os.Stderr, "usage: f90yrun [flags] file.f90")
		os.Exit(2)
	}
	file := flag.Arg(0)
	src, err := os.ReadFile(file)
	if err != nil {
		fmt.Fprintln(os.Stderr, "f90yrun:", err)
		os.Exit(1)
	}

	ctx := context.Background()
	if *flagTimeout > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, *flagTimeout)
		defer cancel()
	}

	tel := driver.NewTelemetry(*flagMetrics, *flagTrace)
	cfg := f90y.DefaultConfig()
	cfg.Machine.PEs = *flagPEs
	cfg.Obs = tel.Recorder()

	ctl, err := driver.ControlOptions{
		Faults:          *flagFaults,
		CheckpointEvery: *flagCkEvery,
		CheckpointPath:  *flagCkPath,
		ResumePath:      *flagResume,
	}.Build(file, cfg.Obs)
	if err != nil {
		fmt.Fprintln(os.Stderr, "f90yrun:", err)
		os.Exit(2)
	}

	cm5m := cm5.Default()
	svc := driver.New(1)
	res := svc.Run(ctx, driver.Job{
		Name:   file,
		File:   file,
		Source: string(src),
		Config: cfg,
		Target: *flagTarget,
		CM5:    cm5m,
		Ctl:    ctl,
	})
	if res.Err != nil {
		fail(file, res.Err)
	}

	var report string
	switch {
	case res.CM2 != nil:
		r := res.CM2
		report = fmt.Sprintf(
			"cm2: %d PEs @ %.0f MHz | %.3f modeled ms | %.2f GFLOPS | %d node calls, %d comm calls\n"+
				"cycles: pe %.0f, comm %.0f, host %.0f | flops %d",
			cfg.Machine.PEs, cfg.Machine.ClockHz/1e6, r.Seconds()*1e3, r.GFLOPS(),
			r.NodeCalls, r.CommCalls, r.PECycles, r.CommCycles, r.HostCycles, r.Flops)
	case res.CM5 != nil:
		r := res.CM5
		report = fmt.Sprintf(
			"cm5: %d nodes x %d VUs @ %.0f MHz | %.3f modeled ms | %.2f GFLOPS | %d node calls",
			cm5m.Nodes, cm5m.VUsPerNode, cm5m.ClockHz/1e6, r.Seconds()*1e3, r.GFLOPS(), r.NodeCalls)
	}
	common := res.Result()
	if common.Faults != nil {
		report += "\n" + faultLine(common.Faults)
	}
	if *flagVerify {
		verify(file, string(src), common.Store.Arrays)
	}

	for _, line := range common.Output {
		fmt.Println(line)
	}
	fmt.Fprintln(os.Stderr, report)
	tel.Report(os.Stderr)
	if err := tel.WriteTrace(os.Stderr); err != nil {
		fmt.Fprintln(os.Stderr, "f90yrun:", err)
		os.Exit(1)
	}
}

// faultLine summarizes the fault plane's activity for the report.
func faultLine(s *faults.Stats) string {
	total := int64(0)
	for _, n := range s.Injected {
		total += n
	}
	return fmt.Sprintf("faults: %d injected | %d retries (%.0f cycles) | %d PEs degraded",
		total, s.Retries, s.RetryCycles, s.Degraded)
}

// verify re-runs the program under the reference interpreter and compares
// every array elementwise; mismatches are fatal.
func verify(file, src string, arrays map[string]*rt.Array) {
	oracle, err := f90y.Interpret(file, src)
	if err != nil {
		fmt.Fprintln(os.Stderr, "f90yrun: verify:", err)
		os.Exit(1)
	}
	checked := 0
	for name, arr := range arrays {
		if strings.HasPrefix(name, "tmp") {
			continue
		}
		oa := oracle.Array(name)
		if oa == nil {
			fmt.Fprintf(os.Stderr, "f90yrun: verify: oracle missing %q\n", name)
			os.Exit(1)
		}
		for i := 0; i < arr.Size(); i++ {
			var want float64
			switch oa.Kind {
			case interp.KInt:
				want = float64(oa.I[i])
			case interp.KLogical:
				if oa.B[i] {
					want = 1
				}
			default:
				want = oa.F[i]
			}
			got := arr.Data[i]
			if got != want && math.Abs(got-want) > 1e-9*math.Max(1, math.Abs(want)) {
				fmt.Fprintf(os.Stderr, "f90yrun: verify: %s[%d] = %v, oracle %v\n", name, i, got, want)
				os.Exit(1)
			}
			checked++
		}
	}
	fmt.Fprintf(os.Stderr, "verify: %d elements match the reference interpreter\n", checked)
}
