// Command f90yrun compiles a Fortran 90 source file and executes it on
// the simulated CM/2 (or CM-5), printing the program's output followed by
// a performance report from the machine model.
//
// Usage:
//
//	f90yrun [-target cm2|cm5] [-pes 2048] [-verify] [-metrics] [-trace out.json]
//	        [-profile] [-profile-pprof swe.pb.gz] [-profile-folded swe.folded]
//	        [-timeout 30s] [-max-cycles N] [-numeric off|trap|record]
//	        [-exec-workers N] [-exec-jit] [-faults spec] [-checkpoint-every N]
//	        [-checkpoint ckpt.json] [-resume ckpt.json]
//	        [-distribute a=cyclic]... file.f90
//
// -distribute overrides an array's data distribution without editing
// the source (repeatable; same specs as !HPF$ DISTRIBUTE, e.g.
// "a=cyclic", "b=block,cyclic(2)", "c=*,block"). Source-level !HPF$
// directives need no flag — they are part of the program. The
// overrides apply to the measured run; -verify exercises the source as
// written, so put directives in the source to verify a layout.
//
// With -verify the program is run through the differential oracle
// (internal/oracle): the reference interpreter and BOTH machine
// backends execute it and the final stores are cross-checked
// value-for-value under the documented ULP tolerance; a divergence
// reports the first differing variable, element, and backend pair and
// exits nonzero. -metrics prints the phase/counter telemetry report
// (compile spans plus execution cycle attribution) to stderr; -trace
// writes the same telemetry as Chrome trace_event JSON.
//
// -profile prints the source-line cycle profile to stdout: the compiler
// threads source positions from the Fortran tokens through NIR and PEAC,
// and the machine model attributes every modeled PE cycle back to the
// line that generated it (the attribution sums exactly to the report's
// pe cycle total and is bit-identical for every -exec-workers value).
// -profile-pprof writes the same attribution as a gzipped pprof profile
// (`go tool pprof -top file.pb.gz`); -profile-folded writes folded
// stacks (routine;file:line;class cycles) for flamegraph tooling.
//
// -timeout bounds the whole compile+run in wall-clock time: past the
// deadline the run stops at the next host-op boundary with an error
// wrapping f90y.ErrCanceled (exit status 3). -max-cycles bounds the run
// in MODELED cycles — the deterministic watchdog: a runaway loop is
// killed at the same cycle on every run with an error wrapping
// rt.ErrBudget (exit status 4), and with checkpointing on, the killed
// run resumes from its last snapshot under a higher budget.
//
// -numeric attaches the numeric-exception plane: "trap" fails the run
// on the first NaN or Inf produced by a PE float op (with PE and
// instruction attribution); "record" tallies exceptional lanes per
// cycle class into the telemetry counters instead.
//
// -exec-workers N shards each PEAC routine dispatch across N host
// worker goroutines over disjoint element ranges (1 = serial, the
// default; N < 0 selects GOMAXPROCS). Results — stores, output, cycle
// totals, GFLOPS, numeric tallies — are bit-identical for every worker
// count; only host wall-clock changes. The analytic cycle model is
// untouched: it prices the simulated machine, not the host.
//
// -exec-jit switches the node-routine executor from the PEAC
// interpreter to the compiled engine: each routine is translated once
// into a chain of specialized Go closures (operand kinds, masks, and
// comparison predicates resolved at build time). Results — stores,
// output, error strings, modeled cycle totals, numeric tallies — are
// bit-identical to the interpreter for every -exec-workers value; only
// host wall-clock changes. Composes with -exec-workers: the compiled
// program dispatches from the same sharded chunk-worker pool.
//
// -faults attaches a deterministic fault-injection plan (see
// internal/faults.ParseSpec for the full key list). -checkpoint-every N
// snapshots the machine to -checkpoint (default <file>.ckpt.json) every
// N host boundaries; -resume restarts a run from such a snapshot — a
// run killed by an injected fatal fault continues from its last
// checkpoint and produces the same final store as an uninterrupted run.
//
// The command is a thin shell over internal/driver, the same service
// layer swebench's batch mode uses.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"os"
	"strings"

	"f90y"
	"f90y/internal/cm5"
	"f90y/internal/driver"
	"f90y/internal/faults"
	"f90y/internal/oracle"
	"f90y/internal/rt"
)

var (
	flagTarget  = flag.String("target", "cm2", "target machine: cm2 or cm5")
	flagPEs     = flag.Int("pes", 2048, "processing elements (cm2 target)")
	flagVerify  = flag.Bool("verify", false, "cross-check interpreter, cm2, and cm5 results (differential oracle)")
	flagMetrics = flag.Bool("metrics", false, "print the telemetry report to stderr")
	flagTrace   = flag.String("trace", "", "write a Chrome trace_event JSON file")
	flagTimeout = flag.Duration("timeout", 0, "abort the compile+run after this duration (0 = no limit)")
	flagMaxCyc  = flag.Float64("max-cycles", 0, "kill the run after this many modeled cycles (0 = no budget)")
	flagNumeric = flag.String("numeric", "", "numeric-exception plane: off, trap, or record")
	flagExecW   = flag.Int("exec-workers", 1, "shard each routine dispatch across N workers (1 = serial, <0 = GOMAXPROCS); results are bit-exact")
	flagExecJIT = flag.Bool("exec-jit", false, "run node routines through the compiled closure executor (bit-identical to the interpreter; wall-clock only)")
	flagFaults  = flag.String("faults", "", driver.FaultsHelp)
	flagCkEvery = flag.Int("checkpoint-every", 0, "write a checkpoint every N host boundaries (0 = off)")
	flagCkPath  = flag.String("checkpoint", "", "checkpoint file path (default <file>.ckpt.json)")
	flagResume  = flag.String("resume", "", "resume from a checkpoint file")
	flagProf    = flag.Bool("profile", false, "print the source-annotated cycle profile (hot lines + listing) to stdout")
	flagProfPB  = flag.String("profile-pprof", "", "write a pprof protobuf profile (open with go tool pprof)")
	flagProfFG  = flag.String("profile-folded", "", "write folded stacks for flamegraph tooling")
	flagDist    distributeFlags
)

// distributeFlags collects the repeatable -distribute overrides.
type distributeFlags []string

func (d *distributeFlags) String() string { return strings.Join(*d, " ") }
func (d *distributeFlags) Set(v string) error {
	*d = append(*d, v)
	return nil
}

func init() {
	flag.Var(&flagDist, "distribute",
		"override an array's data distribution, array=spec (repeatable), e.g. a=cyclic or b=block,cyclic(2)")
}

// fail reports a run error; an injected fatal fault or a budget kill
// points at the checkpoint so the user knows the run is resumable, and
// deadline expiry (3) and budget exhaustion (4) exit with distinct
// statuses.
func fail(file string, err error) {
	fmt.Fprintln(os.Stderr, "f90yrun:", err)
	if (errors.Is(err, faults.ErrFatal) || errors.Is(err, rt.ErrBudget)) && *flagCkEvery > 0 {
		fmt.Fprintln(os.Stderr, "f90yrun: resume with -resume", driver.CheckpointPath(file, *flagCkPath))
	}
	if errors.Is(err, f90y.ErrCanceled) {
		os.Exit(3)
	}
	if errors.Is(err, rt.ErrBudget) {
		os.Exit(4)
	}
	os.Exit(1)
}

func main() {
	flag.Parse()
	if flag.NArg() != 1 {
		fmt.Fprintln(os.Stderr, "usage: f90yrun [flags] file.f90")
		os.Exit(2)
	}
	file := flag.Arg(0)
	src, err := os.ReadFile(file)
	if err != nil {
		fmt.Fprintln(os.Stderr, "f90yrun:", err)
		os.Exit(1)
	}

	ctx := context.Background()
	if *flagTimeout > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, *flagTimeout)
		defer cancel()
	}

	tel := driver.NewTelemetry(*flagMetrics, *flagTrace)
	cfg := f90y.DefaultConfig()
	cfg.Machine.PEs = *flagPEs
	cfg.Obs = tel.Recorder()
	cfg.Distribute = flagDist

	ctl, err := driver.ControlOptions{
		Faults:          *flagFaults,
		CheckpointEvery: *flagCkEvery,
		CheckpointPath:  *flagCkPath,
		ResumePath:      *flagResume,
		MaxCycles:       *flagMaxCyc,
		Numeric:         *flagNumeric,
		ExecWorkers:     *flagExecW,
		ExecJIT:         *flagExecJIT,
	}.Build(file, cfg.Obs)
	if err != nil {
		fmt.Fprintln(os.Stderr, "f90yrun:", err)
		os.Exit(2)
	}

	cm5m := cm5.Default()
	svc := driver.New(1)
	res := svc.Run(ctx, driver.Job{
		Name:   file,
		File:   file,
		Source: string(src),
		Config: cfg,
		Target: *flagTarget,
		CM5:    cm5m,
		Ctl:    ctl,
	})
	if res.Err != nil {
		fail(file, res.Err)
	}

	var report string
	switch {
	case res.CM2 != nil:
		r := res.CM2
		report = fmt.Sprintf(
			"cm2: %d PEs @ %.0f MHz | %.3f modeled ms | %.2f GFLOPS | %d node calls, %d comm calls\n"+
				"cycles: pe %.0f, comm %.0f, host %.0f | flops %d",
			cfg.Machine.PEs, cfg.Machine.ClockHz/1e6, r.Seconds()*1e3, r.GFLOPS(),
			r.NodeCalls, r.CommCalls, r.PECycles, r.CommCycles, r.HostCycles, r.Flops)
	case res.CM5 != nil:
		r := res.CM5
		report = fmt.Sprintf(
			"cm5: %d nodes x %d VUs @ %.0f MHz | %.3f modeled ms | %.2f GFLOPS | %d node calls",
			cm5m.Nodes, cm5m.VUsPerNode, cm5m.ClockHz/1e6, r.Seconds()*1e3, r.GFLOPS(), r.NodeCalls)
	}
	common := res.Result()
	if common.Faults != nil {
		report += "\n" + faultLine(common.Faults)
	}
	if common.Numeric != nil && common.Numeric.Mode == rt.NumericRecord {
		report += "\n" + numericLine(common.Numeric)
	}
	if *flagVerify {
		verify(file, string(src), *flagMaxCyc)
	}

	for _, line := range common.Output {
		fmt.Println(line)
	}
	prof := driver.ProfileOptions{Text: *flagProf, Pprof: *flagProfPB, Folded: *flagProfFG}
	if err := prof.Emit(res.Profile(), os.Stdout, os.Stderr); err != nil {
		fmt.Fprintln(os.Stderr, "f90yrun:", err)
		os.Exit(1)
	}
	fmt.Fprintln(os.Stderr, report)
	tel.Report(os.Stderr)
	if err := tel.WriteTrace(os.Stderr); err != nil {
		fmt.Fprintln(os.Stderr, "f90yrun:", err)
		os.Exit(1)
	}
}

// faultLine summarizes the fault plane's activity for the report.
func faultLine(s *faults.Stats) string {
	total := int64(0)
	for _, n := range s.Injected {
		total += n
	}
	return fmt.Sprintf("faults: %d injected | %d retries (%.0f cycles) | %d PEs degraded",
		total, s.Retries, s.RetryCycles, s.Degraded)
}

// numericLine summarizes the numeric-exception tallies for the report.
func numericLine(n *rt.Numeric) string {
	nan, inf := int64(0), int64(0)
	for _, c := range n.NaN {
		nan += c
	}
	for _, c := range n.Inf {
		inf += c
	}
	return fmt.Sprintf("numeric: %d NaN lanes, %d Inf lanes recorded", nan, inf)
}

// verify runs the program through the differential oracle: reference
// interpreter vs cm2 vs cm5, value-for-value. A divergence (or any
// backend failure) is fatal; agreement prints the comparison size.
func verify(file, src string, maxCycles float64) {
	rep, err := oracle.Verify(file, src, oracle.Options{MaxCycles: maxCycles})
	if err != nil {
		fmt.Fprintln(os.Stderr, "f90yrun: verify:", err)
		os.Exit(1)
	}
	fmt.Fprintf(os.Stderr, "verify: %d variables, %d values agree across interp, cm2, cm5 (<=%d ulps)\n",
		rep.Vars, rep.Elems, uint64(oracle.DefaultULPs))
}
