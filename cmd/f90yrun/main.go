// Command f90yrun compiles a Fortran 90 source file and executes it on
// the simulated CM/2 (or CM-5), printing the program's output followed by
// a performance report from the machine model.
//
// Usage:
//
//	f90yrun [-target cm2|cm5] [-pes 2048] [-verify] [-metrics] [-trace out.json]
//	        [-faults spec] [-checkpoint-every N] [-checkpoint ckpt.json]
//	        [-resume ckpt.json] file.f90
//
// With -verify the result is also checked elementwise against the
// reference interpreter. -metrics prints the phase/counter telemetry
// report (compile spans plus execution cycle attribution) to stderr;
// -trace writes the same telemetry as Chrome trace_event JSON.
//
// -faults attaches a deterministic fault-injection plan, e.g.
// "seed=7,pe=0.01,drop=0.001,fatal=200" (see internal/faults.ParseSpec
// for the full key list). -checkpoint-every N snapshots the machine to
// -checkpoint (default <file>.ckpt.json) every N host boundaries;
// -resume restarts a run from such a snapshot — a run killed by an
// injected fatal fault continues from its last checkpoint and produces
// the same final store as an uninterrupted run.
package main

import (
	"errors"
	"flag"
	"fmt"
	"math"
	"os"
	"strings"

	"f90y"
	"f90y/internal/cm2"
	"f90y/internal/cm5"
	"f90y/internal/faults"
	"f90y/internal/interp"
	"f90y/internal/obs"
	"f90y/internal/rt"
)

var (
	flagTarget  = flag.String("target", "cm2", "target machine: cm2 or cm5")
	flagPEs     = flag.Int("pes", 2048, "processing elements (cm2 target)")
	flagVerify  = flag.Bool("verify", false, "check results against the reference interpreter")
	flagMetrics = flag.Bool("metrics", false, "print the telemetry report to stderr")
	flagTrace   = flag.String("trace", "", "write a Chrome trace_event JSON file")
	flagFaults  = flag.String("faults", "", "fault-injection spec, e.g. seed=7,pe=0.01,drop=0.001")
	flagCkEvery = flag.Int("checkpoint-every", 0, "write a checkpoint every N host boundaries (0 = off)")
	flagCkPath  = flag.String("checkpoint", "", "checkpoint file path (default <file>.ckpt.json)")
	flagResume  = flag.String("resume", "", "resume from a checkpoint file")
)

// control assembles the execution control plane from the fault and
// checkpoint flags; nil when none are in play (the zero-overhead path).
func control(file string, rec obs.Recorder) *cm2.Control {
	plan, err := faults.ParseSpec(*flagFaults)
	if err != nil {
		fmt.Fprintln(os.Stderr, "f90yrun:", err)
		os.Exit(2)
	}
	if plan == nil && *flagCkEvery == 0 && *flagResume == "" {
		return nil
	}
	ctl := &cm2.Control{Faults: faults.New(plan, rec), CheckpointEvery: *flagCkEvery}
	if *flagCkEvery > 0 {
		path := *flagCkPath
		if path == "" {
			path = file + ".ckpt.json"
		}
		ctl.Checkpoint = func(ck *rt.Checkpoint) error { return ck.Write(path) }
	}
	if *flagResume != "" {
		ck, err := rt.ReadCheckpoint(*flagResume)
		if err != nil {
			fmt.Fprintln(os.Stderr, "f90yrun:", err)
			os.Exit(1)
		}
		ctl.Resume = ck
	}
	return ctl
}

// fail reports a run error; an injected fatal fault points at the
// checkpoint so the user knows the run is resumable.
func fail(err error) {
	fmt.Fprintln(os.Stderr, "f90yrun:", err)
	if errors.Is(err, faults.ErrFatal) && *flagCkEvery > 0 {
		fmt.Fprintln(os.Stderr, "f90yrun: resume with -resume", ckptPath())
	}
	os.Exit(1)
}

func ckptPath() string {
	if *flagCkPath != "" {
		return *flagCkPath
	}
	return flag.Arg(0) + ".ckpt.json"
}

func main() {
	flag.Parse()
	if flag.NArg() != 1 {
		fmt.Fprintln(os.Stderr, "usage: f90yrun [flags] file.f90")
		os.Exit(2)
	}
	file := flag.Arg(0)
	src, err := os.ReadFile(file)
	if err != nil {
		fmt.Fprintln(os.Stderr, "f90yrun:", err)
		os.Exit(1)
	}

	cfg := f90y.DefaultConfig()
	cfg.Machine.PEs = *flagPEs
	var col *obs.Collector
	if *flagMetrics || *flagTrace != "" {
		col = obs.NewCollector()
		cfg.Obs = col
	}
	comp, err := f90y.Compile(file, string(src), cfg)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}

	ctl := control(file, cfg.Obs)
	var output []string
	var report string
	var stats *faults.Stats
	switch *flagTarget {
	case "cm2":
		res, err := comp.RunCtl(ctl)
		if err != nil {
			fail(err)
		}
		output = res.Output
		stats = res.Faults
		report = fmt.Sprintf(
			"cm2: %d PEs @ %.0f MHz | %.3f modeled ms | %.2f GFLOPS | %d node calls, %d comm calls\n"+
				"cycles: pe %.0f, comm %.0f, host %.0f | flops %d",
			cfg.Machine.PEs, cfg.Machine.ClockHz/1e6, res.Seconds()*1e3, res.GFLOPS(),
			res.NodeCalls, res.CommCalls, res.PECycles, res.CommCycles, res.HostCycles, res.Flops)
		if *flagVerify {
			verify(file, string(src), res.Store.Arrays)
		}
	case "cm5":
		m := cm5.Default()
		span := obs.Start(cfg.Obs, "exec")
		res, err := m.RunCtl(comp.Program, cfg.Obs, ctl)
		span.End()
		if err != nil {
			fail(err)
		}
		output = res.Output
		stats = res.Faults
		report = fmt.Sprintf(
			"cm5: %d nodes x %d VUs @ %.0f MHz | %.3f modeled ms | %.2f GFLOPS | %d node calls",
			m.Nodes, m.VUsPerNode, m.ClockHz/1e6, res.Seconds()*1e3, res.GFLOPS(), res.NodeCalls)
		if *flagVerify {
			verify(file, string(src), res.Store.Arrays)
		}
	default:
		fmt.Fprintf(os.Stderr, "f90yrun: unknown target %q\n", *flagTarget)
		os.Exit(2)
	}
	if stats != nil {
		report += "\n" + faultLine(stats)
	}

	for _, line := range output {
		fmt.Println(line)
	}
	fmt.Fprintln(os.Stderr, report)
	if *flagMetrics {
		fmt.Fprint(os.Stderr, col.Report())
	}
	if *flagTrace != "" {
		f, err := os.Create(*flagTrace)
		if err != nil {
			fmt.Fprintln(os.Stderr, "f90yrun:", err)
			os.Exit(1)
		}
		if err := col.WriteTrace(f); err == nil {
			err = f.Close()
		} else {
			f.Close()
		}
		if err != nil {
			fmt.Fprintln(os.Stderr, "f90yrun:", err)
			os.Exit(1)
		}
		fmt.Fprintf(os.Stderr, "trace written to %s\n", *flagTrace)
	}
}

// faultLine summarizes the fault plane's activity for the report.
func faultLine(s *faults.Stats) string {
	total := int64(0)
	for _, n := range s.Injected {
		total += n
	}
	return fmt.Sprintf("faults: %d injected | %d retries (%.0f cycles) | %d PEs degraded",
		total, s.Retries, s.RetryCycles, s.Degraded)
}

// verify re-runs the program under the reference interpreter and compares
// every array elementwise; mismatches are fatal.
func verify(file, src string, arrays map[string]*rt.Array) {
	oracle, err := f90y.Interpret(file, src)
	if err != nil {
		fmt.Fprintln(os.Stderr, "f90yrun: verify:", err)
		os.Exit(1)
	}
	checked := 0
	for name, arr := range arrays {
		if strings.HasPrefix(name, "tmp") {
			continue
		}
		oa := oracle.Array(name)
		if oa == nil {
			fmt.Fprintf(os.Stderr, "f90yrun: verify: oracle missing %q\n", name)
			os.Exit(1)
		}
		for i := 0; i < arr.Size(); i++ {
			var want float64
			switch oa.Kind {
			case interp.KInt:
				want = float64(oa.I[i])
			case interp.KLogical:
				if oa.B[i] {
					want = 1
				}
			default:
				want = oa.F[i]
			}
			got := arr.Data[i]
			if got != want && math.Abs(got-want) > 1e-9*math.Max(1, math.Abs(want)) {
				fmt.Fprintf(os.Stderr, "f90yrun: verify: %s[%d] = %v, oracle %v\n", name, i, got, want)
				os.Exit(1)
			}
			checked++
		}
	}
	fmt.Fprintf(os.Stderr, "verify: %d elements match the reference interpreter\n", checked)
}
