// Command f90yrun compiles a Fortran 90 source file and executes it on
// the simulated CM/2 (or CM-5), printing the program's output followed by
// a performance report from the machine model.
//
// Usage:
//
//	f90yrun [-target cm2|cm5] [-pes 2048] [-verify] [-metrics] [-trace out.json] file.f90
//
// With -verify the result is also checked elementwise against the
// reference interpreter. -metrics prints the phase/counter telemetry
// report (compile spans plus execution cycle attribution) to stderr;
// -trace writes the same telemetry as Chrome trace_event JSON.
package main

import (
	"flag"
	"fmt"
	"math"
	"os"
	"strings"

	"f90y"
	"f90y/internal/cm5"
	"f90y/internal/interp"
	"f90y/internal/obs"
	"f90y/internal/rt"
)

var (
	flagTarget  = flag.String("target", "cm2", "target machine: cm2 or cm5")
	flagPEs     = flag.Int("pes", 2048, "processing elements (cm2 target)")
	flagVerify  = flag.Bool("verify", false, "check results against the reference interpreter")
	flagMetrics = flag.Bool("metrics", false, "print the telemetry report to stderr")
	flagTrace   = flag.String("trace", "", "write a Chrome trace_event JSON file")
)

func main() {
	flag.Parse()
	if flag.NArg() != 1 {
		fmt.Fprintln(os.Stderr, "usage: f90yrun [flags] file.f90")
		os.Exit(2)
	}
	file := flag.Arg(0)
	src, err := os.ReadFile(file)
	if err != nil {
		fmt.Fprintln(os.Stderr, "f90yrun:", err)
		os.Exit(1)
	}

	cfg := f90y.DefaultConfig()
	cfg.Machine.PEs = *flagPEs
	var col *obs.Collector
	if *flagMetrics || *flagTrace != "" {
		col = obs.NewCollector()
		cfg.Obs = col
	}
	comp, err := f90y.Compile(file, string(src), cfg)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}

	var output []string
	var report string
	switch *flagTarget {
	case "cm2":
		res, err := comp.Run()
		if err != nil {
			fmt.Fprintln(os.Stderr, "f90yrun:", err)
			os.Exit(1)
		}
		output = res.Output
		report = fmt.Sprintf(
			"cm2: %d PEs @ %.0f MHz | %.3f modeled ms | %.2f GFLOPS | %d node calls, %d comm calls\n"+
				"cycles: pe %.0f, comm %.0f, host %.0f | flops %d",
			cfg.Machine.PEs, cfg.Machine.ClockHz/1e6, res.Seconds()*1e3, res.GFLOPS(),
			res.NodeCalls, res.CommCalls, res.PECycles, res.CommCycles, res.HostCycles, res.Flops)
		if *flagVerify {
			verify(file, string(src), res.Store.Arrays)
		}
	case "cm5":
		m := cm5.Default()
		span := obs.Start(cfg.Obs, "exec")
		res, err := m.RunObs(comp.Program, cfg.Obs)
		span.End()
		if err != nil {
			fmt.Fprintln(os.Stderr, "f90yrun:", err)
			os.Exit(1)
		}
		output = res.Output
		report = fmt.Sprintf(
			"cm5: %d nodes x %d VUs @ %.0f MHz | %.3f modeled ms | %.2f GFLOPS | %d node calls",
			m.Nodes, m.VUsPerNode, m.ClockHz/1e6, res.Seconds()*1e3, res.GFLOPS(), res.NodeCalls)
		if *flagVerify {
			verify(file, string(src), res.Store.Arrays)
		}
	default:
		fmt.Fprintf(os.Stderr, "f90yrun: unknown target %q\n", *flagTarget)
		os.Exit(2)
	}

	for _, line := range output {
		fmt.Println(line)
	}
	fmt.Fprintln(os.Stderr, report)
	if *flagMetrics {
		fmt.Fprint(os.Stderr, col.Report())
	}
	if *flagTrace != "" {
		f, err := os.Create(*flagTrace)
		if err != nil {
			fmt.Fprintln(os.Stderr, "f90yrun:", err)
			os.Exit(1)
		}
		if err := col.WriteTrace(f); err == nil {
			err = f.Close()
		} else {
			f.Close()
		}
		if err != nil {
			fmt.Fprintln(os.Stderr, "f90yrun:", err)
			os.Exit(1)
		}
		fmt.Fprintf(os.Stderr, "trace written to %s\n", *flagTrace)
	}
}

// verify re-runs the program under the reference interpreter and compares
// every array elementwise; mismatches are fatal.
func verify(file, src string, arrays map[string]*rt.Array) {
	oracle, err := f90y.Interpret(file, src)
	if err != nil {
		fmt.Fprintln(os.Stderr, "f90yrun: verify:", err)
		os.Exit(1)
	}
	checked := 0
	for name, arr := range arrays {
		if strings.HasPrefix(name, "tmp") {
			continue
		}
		oa := oracle.Array(name)
		if oa == nil {
			fmt.Fprintf(os.Stderr, "f90yrun: verify: oracle missing %q\n", name)
			os.Exit(1)
		}
		for i := 0; i < arr.Size(); i++ {
			var want float64
			switch oa.Kind {
			case interp.KInt:
				want = float64(oa.I[i])
			case interp.KLogical:
				if oa.B[i] {
					want = 1
				}
			default:
				want = oa.F[i]
			}
			got := arr.Data[i]
			if got != want && math.Abs(got-want) > 1e-9*math.Max(1, math.Abs(want)) {
				fmt.Fprintf(os.Stderr, "f90yrun: verify: %s[%d] = %v, oracle %v\n", name, i, got, want)
				os.Exit(1)
			}
			checked++
		}
	}
	fmt.Fprintf(os.Stderr, "verify: %d elements match the reference interpreter\n", checked)
}
