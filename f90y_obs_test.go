package f90y

// Tests for the observability layer's pipeline integration: every phase
// emits exactly one span, and the per-class cycle attribution sums
// exactly to the machine totals (the property the §6-style breakdown
// tables rest on).

import (
	"math"
	"testing"

	"f90y/internal/hostvm"
	"f90y/internal/obs"
	"f90y/internal/rt"
	"f90y/internal/workload"
)

func TestPipelineEmitsOneSpanPerPhase(t *testing.T) {
	col := obs.NewCollector()
	cfg := DefaultConfig()
	cfg.Obs = col
	comp, err := Compile("swe.f90", workload.SWE(64, 1), cfg)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := comp.Run(); err != nil {
		t.Fatal(err)
	}

	counts := map[string]int{}
	for _, s := range col.Spans() {
		counts[s.Name]++
		if s.End == 0 {
			t.Errorf("span %q left open", s.Name)
		}
	}
	for _, phase := range []string{
		"lex", "parse", "lower",
		"opt/pad-sections", "opt/block-domains",
		"partition", "exec",
	} {
		if counts[phase] != 1 {
			t.Errorf("phase %q emitted %d spans, want exactly 1", phase, counts[phase])
		}
	}
	// One pe-codegen span per compiled node routine.
	if got, want := counts["pe-codegen"], comp.PartStats.NodeRoutines+comp.PartStats.Fallbacks; got != want {
		t.Errorf("pe-codegen spans = %d, want %d (routines+fallbacks)", got, want)
	}

	// Phase statistics arrive as counters.
	c := col.Counters()
	if c["partition/node-routines"] != float64(comp.PartStats.NodeRoutines) {
		t.Errorf("partition/node-routines counter = %v, stats say %d",
			c["partition/node-routines"], comp.PartStats.NodeRoutines)
	}
	if c["opt/fused-moves"] != float64(comp.OptStats.FusedMoves) {
		t.Errorf("opt/fused-moves counter = %v, stats say %d",
			c["opt/fused-moves"], comp.OptStats.FusedMoves)
	}
	if c["lex/tokens"] <= 0 {
		t.Errorf("lex/tokens counter missing")
	}
}

func TestCycleAttributionSumsExactly(t *testing.T) {
	col := obs.NewCollector()
	cfg := DefaultConfig()
	cfg.Obs = col
	comp, err := Compile("swe.f90", workload.SWE(128, 2), cfg)
	if err != nil {
		t.Fatal(err)
	}
	res, err := comp.Run()
	if err != nil {
		t.Fatal(err)
	}

	sum := func(m map[string]float64) float64 {
		s := 0.0
		for _, v := range m {
			s += v
		}
		return s
	}
	if got := sum(res.PEClassCycles); got != res.PECycles {
		t.Errorf("PE class cycles sum %v != PECycles %v", got, res.PECycles)
	}
	if got := sum(res.PERoutineCycles); got != res.PECycles {
		t.Errorf("PE routine cycles sum %v != PECycles %v", got, res.PECycles)
	}
	if got := sum(res.CommClassCycles); got != res.CommCycles {
		t.Errorf("comm class cycles sum %v != CommCycles %v", got, res.CommCycles)
	}
	if got := sum(res.HostClassCycles); got != res.HostCycles {
		t.Errorf("host class cycles sum %v != HostCycles %v", got, res.HostCycles)
	}
	if res.PECycles <= 0 || res.CommCycles <= 0 || res.HostCycles <= 0 {
		t.Fatalf("degenerate run: pe=%v comm=%v host=%v",
			res.PECycles, res.CommCycles, res.HostCycles)
	}

	// The emitted counters agree with the result.
	c := col.Counters()
	if c["exec/pe-cycles"] != res.PECycles {
		t.Errorf("exec/pe-cycles counter %v != %v", c["exec/pe-cycles"], res.PECycles)
	}
	classSum := 0.0
	for _, cl := range []string{"vector-arith", "divide", "sqrt", "transcend", "load-store", "spill", "loop"} {
		classSum += c["exec/pe/"+cl]
	}
	if classSum != res.PECycles {
		t.Errorf("exec/pe/* counters sum %v != PECycles %v", classSum, res.PECycles)
	}
	commSum := 0.0
	for _, cl := range rt.CommClasses {
		commSum += c["exec/comm/"+cl]
	}
	if commSum != res.CommCycles {
		t.Errorf("exec/comm/* counters sum %v != CommCycles %v", commSum, res.CommCycles)
	}
	hostSum := 0.0
	for _, cl := range hostvm.HostClasses {
		hostSum += c["exec/host/"+cl]
	}
	if hostSum != res.HostCycles {
		t.Errorf("exec/host/* counters sum %v != HostCycles %v", hostSum, res.HostCycles)
	}

	// Attribution never invents or loses work: the SWE kernel must show
	// divides and memory traffic, and the dominant class is vector
	// arithmetic or memory, not loop overhead.
	if res.PEClassCycles["divide"] == 0 {
		t.Errorf("SWE kernel reported zero divide cycles")
	}
	if res.PEClassCycles["load-store"] == 0 {
		t.Errorf("SWE kernel reported zero load/store cycles")
	}
	if res.PEClassCycles["loop"] > res.PEClassCycles["vector-arith"] {
		t.Errorf("loop overhead %v exceeds vector arithmetic %v",
			res.PEClassCycles["loop"], res.PEClassCycles["vector-arith"])
	}
}

// TestRecorderOffIsBitIdentical guards the no-op hot path: a run with a
// nil recorder must produce the identical modeled result as a recorded
// run (recording is observation, never perturbation).
func TestRecorderOffIsBitIdentical(t *testing.T) {
	src := workload.SWE(64, 2)

	plain, err := Compile("swe.f90", src, DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	resPlain, err := plain.Run()
	if err != nil {
		t.Fatal(err)
	}

	cfg := DefaultConfig()
	cfg.Obs = obs.NewCollector()
	rec, err := Compile("swe.f90", src, cfg)
	if err != nil {
		t.Fatal(err)
	}
	resRec, err := rec.Run()
	if err != nil {
		t.Fatal(err)
	}

	if resPlain.PECycles != resRec.PECycles ||
		resPlain.CommCycles != resRec.CommCycles ||
		resPlain.HostCycles != resRec.HostCycles ||
		resPlain.Flops != resRec.Flops {
		t.Errorf("recorded run diverged: %+v vs %+v", resPlain, resRec)
	}
	if math.Abs(resPlain.GFLOPS()-resRec.GFLOPS()) != 0 {
		t.Errorf("gflops diverged")
	}
}
