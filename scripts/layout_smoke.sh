#!/bin/sh
# layout_smoke.sh — end-to-end smoke of the !HPF$ distribution plane:
#
#   1. run `swebench -layout-sweep -layout-verify` (every kernel/layout
#      pair passes the three-way differential oracle at a reduced size
#      before the sweep row is accepted),
#   2. run the unverified sweep twice and assert the two
#      f90y-layout/v1 records are byte-identical (the sweep is
#      deterministic),
#   3. assert at least one kernel's best layout is not all-BLOCK, and
#   4. assert the worst/best cycle spread reaches 2x on some kernel
#      (the distribution choice must matter in the model).
#
# Parameters (environment):
#   N      sweep problem size (elements)  (default 65536)
#   ITERS  kernel iterations              (default 2)
#
# Used by `make layout-smoke` (tier-1).
set -eu

N="${N:-65536}"
ITERS="${ITERS:-2}"
GO="${GO:-go}"

workdir="$(mktemp -d)"
cleanup() { rm -rf "$workdir"; }
trap cleanup EXIT INT TERM

echo "layout-smoke: verified sweep (n=$N iters=$ITERS)"
$GO run ./cmd/swebench -layout-sweep -layout-verify \
	-layout-n "$N" -layout-iters "$ITERS" -o "$workdir/a.json" > "$workdir/a.txt"

echo "layout-smoke: determinism re-runs"
$GO run ./cmd/swebench -layout-sweep \
	-layout-n "$N" -layout-iters "$ITERS" -o "$workdir/b.json" > /dev/null
$GO run ./cmd/swebench -layout-sweep \
	-layout-n "$N" -layout-iters "$ITERS" -o "$workdir/c.json" > /dev/null
if ! cmp -s "$workdir/b.json" "$workdir/c.json"; then
	echo "layout-smoke: FAIL: sweep records differ between runs" >&2
	diff "$workdir/b.json" "$workdir/c.json" >&2 || true
	exit 1
fi

if ! grep -q '"any_non_block_best": true' "$workdir/b.json"; then
	echo "layout-smoke: FAIL: every kernel's best layout is all-BLOCK" >&2
	cat "$workdir/a.txt" >&2
	exit 1
fi

spread_ok="$(awk -F': ' '/"max_spread"/ { print ($2 + 0 >= 2.0) ? "yes" : "no"; exit }' "$workdir/b.json")"
if [ "$spread_ok" != "yes" ]; then
	echo "layout-smoke: FAIL: max worst/best cycle spread below 2x" >&2
	cat "$workdir/a.txt" >&2
	exit 1
fi

echo "layout-smoke: OK"
