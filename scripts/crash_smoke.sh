#!/bin/sh
# crash_smoke.sh — end-to-end proof of the durability plane:
#
#   1. build f90yd and swebench,
#   2. run the swebench -restart harness, which launches f90yd on a
#      durable -state-dir, fires a deterministic job mix, SIGKILLs the
#      server mid-load KILLS times, relaunches it on the same state, and
#      fails unless every acknowledged job is recovered with a result
#      byte-identical to an uninterrupted baseline (no silent loss, no
#      divergence, no undocumented status),
#   3. repeat with deterministic torn/short durable-write injection
#      (the faults plane's IO injector) and require that any lost job is
#      a server-REPORTED torn-record casualty — damaged journal entries
#      must surface in /statsz, never vanish quietly,
#   4. assert the final stats show actual recovery work (resumed or
#      requeued jobs), so a harness that never interrupts anything
#      cannot pass vacuously.
#
# Parameters (environment):
#   KILLS   SIGKILL/relaunch cycles per phase  (default 3; soak uses 20)
#   OUT     f90y-crash/v1 record path          (default .crash-smoke.json)
#
# Used by `make crash-smoke` (tier-1, small) and `make crash-soak`
# (KILLS=20, writes CRASH_soak.json for EXPERIMENTS.md L2).
set -eu

KILLS="${KILLS:-3}"
OUT="${OUT:-.crash-smoke.json}"
GO="${GO:-go}"

workdir="$(mktemp -d)"
cleanup() { rm -rf "$workdir"; }
trap cleanup EXIT INT TERM

echo "crash-smoke: building f90yd and swebench"
"$GO" build -o "$workdir/f90yd" ./cmd/f90yd
"$GO" build -o "$workdir/swebench" ./cmd/swebench

echo "crash-smoke: phase 1 — $KILLS clean SIGKILL cycles"
"$workdir/swebench" -restart "$KILLS" -server-bin "$workdir/f90yd" \
    -state-dir "$workdir/state-clean" -o "$OUT" | tee "$workdir/phase1.log"

# Vacuity check: the last relaunch must have actually recovered work.
if ! grep -Eq '"(resumed|requeued)": [1-9]' "$OUT"; then
    echo "crash-smoke: FAIL — no job was ever resumed or requeued; the kills never interrupted anything" >&2
    cat "$OUT" >&2
    exit 1
fi
if ! grep -q '"divergences": 0' "$OUT"; then
    echo "crash-smoke: FAIL — divergences recorded in $OUT" >&2
    exit 1
fi

echo "crash-smoke: phase 2 — $KILLS cycles with torn/short write injection"
"$workdir/swebench" -restart "$KILLS" -server-bin "$workdir/f90yd" \
    -state-dir "$workdir/state-faults" \
    -restart-io-faults "seed=3,torn=0.08,short=0.08" \
    -o "$workdir/crash_faults.json" | tee "$workdir/phase2.log"

if ! grep -q '"divergences": 0' "$workdir/crash_faults.json"; then
    echo "crash-smoke: FAIL — divergences under io-fault injection" >&2
    exit 1
fi

echo "crash-smoke: OK — $KILLS clean + $KILLS fault-injected cycles, zero divergences, record in $OUT"
