#!/bin/sh
# serve_smoke.sh — end-to-end smoke of the f90yd server lifecycle:
#
#   1. build f90yd and swebench,
#   2. start f90yd on a random port (-addr 127.0.0.1:0 -addr-file),
#   3. fire the swebench -serve-url traffic mix at it (healthy, verify,
#      fault, budget-killer, oversize, overflow burst) and fail on any
#      undocumented status,
#   4. SIGTERM the server and assert it drains: exits 0 and reports
#      draining in its final stats snapshot.
#
# Parameters (environment):
#   REQS   total load requests            (default 48)
#   LOADW  concurrent load clients        (default 8)
#   OUT    f90y-load/v1 record path       (default .load-smoke.json)
#
# Used by `make serve-smoke` (tier-1, small) and `make loadtest`
# (bigger run, writes LOAD_baseline.json for EXPERIMENTS.md L1).
set -eu

REQS="${REQS:-48}"
LOADW="${LOADW:-8}"
OUT="${OUT:-.load-smoke.json}"
GO="${GO:-go}"

workdir="$(mktemp -d)"
addrfile="$workdir/addr"
serverlog="$workdir/f90yd.log"
pid=""
cleanup() {
    [ -n "$pid" ] && kill "$pid" 2>/dev/null || true
    rm -rf "$workdir"
}
trap cleanup EXIT INT TERM

echo "serve-smoke: building f90yd and swebench"
"$GO" build -o "$workdir/f90yd" ./cmd/f90yd
"$GO" build -o "$workdir/swebench" ./cmd/swebench

# Small limits so the smoke run actually exercises admission control:
# a shallow queue for 429s, a modest default budget so runaways die in
# milliseconds, and the stock 1 MiB source bound for the 413 probe.
"$workdir/f90yd" -addr 127.0.0.1:0 -addr-file "$addrfile" \
    -workers 4 -queue-depth 8 -max-cycles 5e6 -tenant-inflight 4 \
    -request-timeout 30s -drain-timeout 10s 2> "$serverlog" &
pid=$!

# The load client polls /healthz itself (-serve-wait); we only need the
# bound address to appear.
i=0
while [ ! -s "$addrfile" ]; do
    i=$((i + 1))
    if [ "$i" -gt 100 ]; then
        echo "serve-smoke: FAIL — server never wrote $addrfile" >&2
        cat "$serverlog" >&2
        exit 1
    fi
    sleep 0.1
done
addr="$(cat "$addrfile")"
echo "serve-smoke: f90yd up at $addr (pid $pid)"

"$workdir/swebench" -serve-url "http://$addr" \
    -load "$REQS" -load-workers "$LOADW" -serve-wait 10s -o "$OUT"

echo "serve-smoke: load complete; sending SIGTERM"
kill -TERM "$pid"
status=0
wait "$pid" || status=$?
pid=""
if [ "$status" -ne 0 ]; then
    echo "serve-smoke: FAIL — f90yd exited $status after SIGTERM" >&2
    cat "$serverlog" >&2
    exit 1
fi
if ! grep -q '"draining": true' "$serverlog"; then
    echo "serve-smoke: FAIL — final stats snapshot does not show draining" >&2
    cat "$serverlog" >&2
    exit 1
fi
echo "serve-smoke: OK — drained cleanly, record in $OUT"
