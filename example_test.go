package f90y_test

import (
	"fmt"
	"log"

	"f90y"
)

// ExampleCompile compiles the paper's §2.1 whole-array program and runs it
// on the simulated CM/2.
func ExampleCompile() {
	const src = `
program demo
integer k(128,64), l(128)
l = 6
k = 2*k + 5
print *, 'k(1,1) =', k(1,1), 'l(1) =', l(1)
end program demo
`
	comp, err := f90y.Compile("demo.f90", src, f90y.DefaultConfig())
	if err != nil {
		log.Fatal(err)
	}
	res, err := comp.Run()
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println(res.Output[0])
	fmt.Println("node routines:", comp.PartStats.NodeRoutines)
	// Output:
	// k(1,1) = 5 l(1) = 6
	// node routines: 2
}

// ExampleInterpret runs the same program under the reference interpreter,
// the oracle every compiled result is validated against.
func ExampleInterpret() {
	const src = `
program demo
integer a(8)
integer i
do i = 1, 8
  a(i) = i*i
end do
print *, sum(a)
end program demo
`
	m, err := f90y.Interpret("demo.f90", src)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println(m.Output()[0])
	// Output:
	// 204
}

// ExampleCompilation_Run shows the machine model's performance report for
// a communication-heavy program.
func ExampleCompilation_Run() {
	const src = `
program stencil
real, array(64,64) :: g, n
n = 0.25*(cshift(g,1,1) + cshift(g,-1,1) + cshift(g,1,2) + cshift(g,-1,2))
g = n
end program stencil
`
	comp, err := f90y.Compile("stencil.f90", src, f90y.DefaultConfig())
	if err != nil {
		log.Fatal(err)
	}
	res, err := comp.Run()
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("communications:", res.CommCalls)
	// Domain blocking fuses the stencil combination and the copy-back
	// into a single node routine.
	fmt.Println("node dispatches:", res.NodeCalls)
	// Output:
	// communications: 4
	// node dispatches: 1
}
