package f90y

// The benchmark harness regenerates every quantitative artifact of the
// paper's evaluation (§6 and Figs. 9-12) plus the ablations DESIGN.md
// calls out. Each benchmark executes the full pipeline on the simulated
// machine and reports the *modeled* machine metrics (gflops, cycles,
// instruction counts) via b.ReportMetric; Go wall time measures only the
// simulator itself. cmd/swebench prints the same results as tables.
//
// Paper targets (§6): *Lisp 1.89 GF, CM Fortran v1.1 2.79 GF,
// Fortran-90-Y 2.99 GF on SWE. The modeled numbers reproduce those at the
// calibration size (1024x1024); benchmark sizes here are smaller so the
// suite stays fast — the E1 check at full size runs in TestE1PaperScale
// (guarded by -short).

import (
	"testing"

	"f90y/internal/cm2"
	"f90y/internal/cm5"
	"f90y/internal/cmf"
	"f90y/internal/opt"
	"f90y/internal/pe"
	"f90y/internal/peac"
	"f90y/internal/starlisp"
	"f90y/internal/workload"
)

const (
	benchN     = 256
	benchSteps = 2
)

func compileRun(b *testing.B, src string, cfg Config) *cm2.Result {
	b.Helper()
	comp, err := Compile("bench.f90", src, cfg)
	if err != nil {
		b.Fatal(err)
	}
	res, err := comp.Run()
	if err != nil {
		b.Fatal(err)
	}
	return res
}

// ---- E1: §6 performance table ----

func BenchmarkSWE_StarLisp(b *testing.B) {
	var last starlisp.Result
	for i := 0; i < b.N; i++ {
		_, last = starlisp.RunSWE(benchN, benchSteps, starlisp.DefaultModel)
	}
	b.ReportMetric(last.GFLOPS(starlisp.DefaultModel.ClockHz), "gflops-modeled")
	b.ReportMetric(float64(last.Ops), "array-ops")
}

func BenchmarkSWE_CMF(b *testing.B) {
	src := workload.SWE(benchN, benchSteps)
	var last *cm2.Result
	for i := 0; i < b.N; i++ {
		res, err := cmf.Run("swe.f90", src, cm2.Default())
		if err != nil {
			b.Fatal(err)
		}
		last = res
	}
	b.ReportMetric(last.GFLOPS(), "gflops-modeled")
	b.ReportMetric(float64(last.NodeCalls), "node-calls")
}

func BenchmarkSWE_F90Y(b *testing.B) {
	src := workload.SWE(benchN, benchSteps)
	var last *cm2.Result
	for i := 0; i < b.N; i++ {
		last = compileRun(b, src, DefaultConfig())
	}
	b.ReportMetric(last.GFLOPS(), "gflops-modeled")
	b.ReportMetric(float64(last.NodeCalls), "node-calls")
}

// BenchmarkSWE_ExecWorkers measures the sharded PEAC executor: one SWE
// compilation run repeatedly under -exec-workers 1/2/4/8. Modeled
// metrics (gflops, cycles) are identical across sub-benchmarks by
// construction — only host wall-clock (ns/op) changes, which is the
// point: the speedup EXPERIMENTS.md records comes from this benchmark.
// Larger than benchN so each routine dispatch spans many 4096-element
// chunks.
func BenchmarkSWE_ExecWorkers(b *testing.B) {
	src := workload.SWE(512, benchSteps)
	comp, err := Compile("swe.f90", src, DefaultConfig())
	if err != nil {
		b.Fatal(err)
	}
	for _, w := range []int{1, 2, 4, 8} {
		b.Run(name("workers", w), func(b *testing.B) {
			var last *cm2.Result
			for i := 0; i < b.N; i++ {
				res, err := comp.RunCtl(&cm2.Control{ExecWorkers: w})
				if err != nil {
					b.Fatal(err)
				}
				last = res
			}
			b.ReportMetric(last.GFLOPS(), "gflops-modeled")
			b.ReportMetric(last.TotalCycles(), "cycles-modeled")
		})
	}
}

// BenchmarkExecJIT is BenchmarkSWE_ExecWorkers with the compiled
// closure executor engaged: same compilation, same worker sweep, same
// modeled metrics (which are identical to the interpreter's by
// construction — compare cycles-modeled across the two benchmarks to
// confirm). The wall-clock ratio between matching sub-benchmarks is
// the JIT speedup EXPERIMENTS.md records.
func BenchmarkExecJIT(b *testing.B) {
	src := workload.SWE(512, benchSteps)
	comp, err := Compile("swe.f90", src, DefaultConfig())
	if err != nil {
		b.Fatal(err)
	}
	for _, w := range []int{1, 2, 4, 8} {
		b.Run(name("workers", w), func(b *testing.B) {
			var last *cm2.Result
			for i := 0; i < b.N; i++ {
				res, err := comp.RunCtl(&cm2.Control{ExecWorkers: w, ExecJIT: true})
				if err != nil {
					b.Fatal(err)
				}
				last = res
			}
			b.ReportMetric(last.GFLOPS(), "gflops-modeled")
			b.ReportMetric(last.TotalCycles(), "cycles-modeled")
		})
	}
}

// TestE1PaperScale reproduces §6 at the calibration size and asserts the
// paper's shape: F90-Y > CMF > *Lisp, each within 10% of the published
// number.
func TestE1PaperScale(t *testing.T) {
	if testing.Short() {
		t.Skip("1024x1024 SWE run")
	}
	const n, steps = 1024, 2
	src := workload.SWE(n, steps)

	_, sl := starlisp.RunSWE(n, steps, starlisp.DefaultModel)
	slGF := sl.GFLOPS(starlisp.DefaultModel.ClockHz)

	cmfRes, err := cmf.Run("swe.f90", src, cm2.Default())
	if err != nil {
		t.Fatal(err)
	}
	comp, err := Compile("swe.f90", src, DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	res, err := comp.Run()
	if err != nil {
		t.Fatal(err)
	}

	within := func(got, want float64) bool { return got > 0.9*want && got < 1.1*want }
	if !within(slGF, 1.89) {
		t.Errorf("*Lisp = %.2f GF, paper 1.89", slGF)
	}
	if !within(cmfRes.GFLOPS(), 2.79) {
		t.Errorf("CMF = %.2f GF, paper 2.79", cmfRes.GFLOPS())
	}
	if !within(res.GFLOPS(), 2.99) {
		t.Errorf("F90-Y = %.2f GF, paper 2.99", res.GFLOPS())
	}
	if !(res.GFLOPS() > cmfRes.GFLOPS() && cmfRes.GFLOPS() > slGF) {
		t.Errorf("ordering violated: %.2f / %.2f / %.2f", res.GFLOPS(), cmfRes.GFLOPS(), slGF)
	}
}

// ---- E2: Fig. 9 domain blocking ----

func BenchmarkFig9_Naive(b *testing.B) {
	src := workload.Fig9(64)
	cfg := Config{Opt: opt.Options{PadSections: true}, PE: pe.Optimized}
	var last *cm2.Result
	for i := 0; i < b.N; i++ {
		last = compileRun(b, src, cfg)
	}
	b.ReportMetric(float64(last.NodeCalls), "node-calls")
	b.ReportMetric(last.TotalCycles(), "cycles-modeled")
}

func BenchmarkFig9_Blocked(b *testing.B) {
	src := workload.Fig9(64)
	var last *cm2.Result
	for i := 0; i < b.N; i++ {
		last = compileRun(b, src, DefaultConfig())
	}
	b.ReportMetric(float64(last.NodeCalls), "node-calls")
	b.ReportMetric(last.TotalCycles(), "cycles-modeled")
}

// ---- E3: Fig. 10 masked-assignment blocking ----

func BenchmarkFig10_Unblocked(b *testing.B) {
	src := workload.Fig10(32)
	cfg := Config{Opt: opt.Options{PadSections: true}, PE: pe.Optimized}
	var last *cm2.Result
	for i := 0; i < b.N; i++ {
		last = compileRun(b, src, cfg)
	}
	b.ReportMetric(float64(last.NodeCalls), "node-calls")
	b.ReportMetric(last.TotalCycles(), "cycles-modeled")
}

func BenchmarkFig10_Blocked(b *testing.B) {
	src := workload.Fig10(32)
	var last *cm2.Result
	for i := 0; i < b.N; i++ {
		last = compileRun(b, src, DefaultConfig())
	}
	b.ReportMetric(float64(last.NodeCalls), "node-calls")
	b.ReportMetric(last.TotalCycles(), "cycles-modeled")
}

// ---- E4: Fig. 11 partition structure ----

func BenchmarkFig11_Naive(b *testing.B) {
	src := workload.Fig11(64, 16)
	cfg := Config{Opt: opt.Options{PadSections: true}, PE: pe.Optimized}
	var routines int
	for i := 0; i < b.N; i++ {
		comp, err := Compile("fig11.f90", src, cfg)
		if err != nil {
			b.Fatal(err)
		}
		routines = comp.PartStats.NodeRoutines
	}
	b.ReportMetric(float64(routines), "node-routines")
}

func BenchmarkFig11_Blocked(b *testing.B) {
	src := workload.Fig11(64, 16)
	var routines, hoisted int
	for i := 0; i < b.N; i++ {
		comp, err := Compile("fig11.f90", src, DefaultConfig())
		if err != nil {
			b.Fatal(err)
		}
		routines = comp.PartStats.NodeRoutines
		hoisted = comp.OptStats.HoistedComms
	}
	b.ReportMetric(float64(routines), "node-routines")
	b.ReportMetric(float64(hoisted), "comms-hoisted")
}

// ---- E5: Fig. 12 naive vs optimized PEAC ----

func fig12Routine(b *testing.B, peOpts pe.Options) *peac.Routine {
	b.Helper()
	comp, err := Compile("fig12.f90", workload.Fig12(64),
		Config{Opt: opt.Options{PadSections: true}, PE: peOpts})
	if err != nil {
		b.Fatal(err)
	}
	var best *peac.Routine
	for _, r := range comp.Program.Routines {
		if best == nil || r.InstrCount() > best.InstrCount() {
			best = r
		}
	}
	return best
}

func BenchmarkFig12_NaivePEAC(b *testing.B) {
	var r *peac.Routine
	for i := 0; i < b.N; i++ {
		r = fig12Routine(b, pe.Naive)
	}
	b.ReportMetric(float64(r.InstrCount()), "instrs")
	b.ReportMetric(float64(peac.DefaultCost.BodyCycles(r.Body)), "cycles/iter")
}

func BenchmarkFig12_OptimizedPEAC(b *testing.B) {
	var r *peac.Routine
	for i := 0; i < b.N; i++ {
		r = fig12Routine(b, pe.Optimized)
	}
	b.ReportMetric(float64(r.InstrCount()), "instrs")
	b.ReportMetric(float64(r.IssueSlots()), "issue-slots")
	b.ReportMetric(float64(peac.DefaultCost.BodyCycles(r.Body)), "cycles/iter")
}

// ---- E6: §5.2 spill pressure ----

func BenchmarkSpillPressure(b *testing.B) {
	for _, terms := range []int{4, 8, 12, 16} {
		b.Run(name("terms", terms), func(b *testing.B) {
			src := workload.SpillKernel(1024, terms)
			var r *peac.Routine
			for i := 0; i < b.N; i++ {
				comp, err := Compile("spill.f90", src, DefaultConfig())
				if err != nil {
					b.Fatal(err)
				}
				r = nil
				for _, rt := range comp.Program.Routines {
					if r == nil || rt.InstrCount() > r.InstrCount() {
						r = rt
					}
				}
			}
			b.ReportMetric(float64(r.SpillSlots), "spill-slots")
			b.ReportMetric(float64(peac.DefaultCost.BodyCycles(r.Body)), "cycles/iter")
		})
	}
}

// ---- E7: §5.3.1 CM-5 retarget ----

func BenchmarkSWE_CM5(b *testing.B) {
	src := workload.SWE(benchN, benchSteps)
	comp, err := Compile("swe.f90", src, DefaultConfig())
	if err != nil {
		b.Fatal(err)
	}
	var last *cm5.Result
	for i := 0; i < b.N; i++ {
		res, err := cm5.Default().Run(comp.Program)
		if err != nil {
			b.Fatal(err)
		}
		last = res
	}
	b.ReportMetric(last.GFLOPS(), "gflops-modeled")
	b.ReportMetric(last.SPARCCycles, "sparc-cycles")
	b.ReportMetric(last.VUCycles, "vu-cycles")
}

// ---- A1: blocking ablation on SWE ----

func BenchmarkAblationBlocking(b *testing.B) {
	src := workload.SWE(benchN, benchSteps)
	for _, v := range []struct {
		name string
		cfg  Config
	}{
		{"off", Config{Opt: opt.Options{PadSections: true}, PE: pe.Optimized}},
		{"on", DefaultConfig()},
	} {
		b.Run(v.name, func(b *testing.B) {
			var last *cm2.Result
			for i := 0; i < b.N; i++ {
				last = compileRun(b, src, v.cfg)
			}
			b.ReportMetric(last.GFLOPS(), "gflops-modeled")
			b.ReportMetric(float64(last.NodeCalls), "node-calls")
		})
	}
}

// ---- A2: PE optimization ablations on the Fig. 12 block ----

func BenchmarkAblationPE(b *testing.B) {
	variants := []struct {
		name string
		opts pe.Options
	}{
		{"none", pe.Naive},
		{"cse", pe.Options{CSE: true}},
		{"cse+chain", pe.Options{CSE: true, Chaining: true}},
		{"cse+chain+fmadd", pe.Options{CSE: true, Chaining: true, Fmadd: true}},
		{"all", pe.Optimized},
	}
	for _, v := range variants {
		b.Run(v.name, func(b *testing.B) {
			var r *peac.Routine
			for i := 0; i < b.N; i++ {
				r = fig12Routine(b, v.opts)
			}
			b.ReportMetric(float64(r.InstrCount()), "instrs")
			b.ReportMetric(float64(peac.DefaultCost.BodyCycles(r.Body)), "cycles/iter")
		})
	}
}

// ---- A3: virtual-processor-ratio sweep ----

func BenchmarkVPRatio(b *testing.B) {
	for _, n := range []int{64, 128, 256, 512} {
		b.Run(name("n", n), func(b *testing.B) {
			src := workload.SWE(n, 1)
			var last *cm2.Result
			for i := 0; i < b.N; i++ {
				last = compileRun(b, src, DefaultConfig())
			}
			b.ReportMetric(last.GFLOPS(), "gflops-modeled")
			b.ReportMetric(float64(n*n)/2048.0, "vp-ratio")
		})
	}
}

func name(prefix string, v int) string {
	return prefix + "=" + itoa(v)
}

func itoa(v int) string {
	if v == 0 {
		return "0"
	}
	var buf [8]byte
	i := len(buf)
	for v > 0 {
		i--
		buf[i] = byte('0' + v%10)
		v /= 10
	}
	return string(buf[i:])
}

// ---- A4: register-file ablation (§5.2: "vector registers tend to be the
// limiting resource") ----

func BenchmarkRegisterFile(b *testing.B) {
	src := workload.SpillKernel(1024, 12)
	for _, k := range []int{4, 6, 8, 12, 16} {
		b.Run(name("vregs", k), func(b *testing.B) {
			peOpts := pe.Optimized
			peOpts.VRegs = k
			var r *peac.Routine
			for i := 0; i < b.N; i++ {
				comp, err := Compile("spill.f90", src, Config{Opt: opt.Default, PE: peOpts})
				if err != nil {
					b.Fatal(err)
				}
				r = nil
				for _, rt := range comp.Program.Routines {
					if r == nil || rt.InstrCount() > r.InstrCount() {
						r = rt
					}
				}
			}
			b.ReportMetric(float64(r.SpillSlots), "spill-slots")
			b.ReportMetric(float64(peac.DefaultCost.BodyCycles(r.Body)), "cycles/iter")
		})
	}
}
