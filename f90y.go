// Package f90y is the public entry point to the Fortran-90-Y prototype
// compiler, a reproduction of "Prototyping Fortran-90 Compilers for
// Massively Parallel Machines" (Chen & Cowie, PLDI 1992). It drives the
// full pipeline of the paper's Fig. 2:
//
//	Fortran 90 source
//	  -> front end (lexer/parser)            internal/lexer, internal/parser
//	  -> semantic lowering to NIR            internal/lower   (§4.1)
//	  -> NIR shape transformations           internal/opt     (§4.2)
//	  -> CM2/NIR partition into host + node  internal/partition (§5.1)
//	       host remainder  -> FE host IR     internal/fe      (§5.2)
//	       compute blocks  -> PEAC routines  internal/pe, internal/peac
//	  -> execution on the simulated CM/2     internal/cm2, internal/rt
//
// A typical use:
//
//	comp, err := f90y.Compile("swe.f90", source, f90y.DefaultConfig())
//	if err != nil { ... }
//	res, err := comp.Run()
//	fmt.Println(res.GFLOPS(), res.Output)
package f90y

import (
	"context"
	"fmt"
	"runtime/debug"

	"f90y/internal/ast"
	"f90y/internal/cm2"
	"f90y/internal/fe"
	"f90y/internal/interp"
	"f90y/internal/lexer"
	"f90y/internal/lower"
	"f90y/internal/obs"
	"f90y/internal/opt"
	"f90y/internal/parser"
	"f90y/internal/partition"
	"f90y/internal/pe"
	"f90y/internal/rt"
	"f90y/internal/source"
)

// ErrCanceled is the sentinel wrapped by every error CompileCtx or a
// ctx-aware Run variant returns because its context was canceled or its
// deadline expired; the context's own cause (context.Canceled or
// context.DeadlineExceeded) is wrapped alongside it.
var ErrCanceled = rt.ErrCanceled

// Config selects the optimization level and target machine for a
// compilation.
type Config struct {
	// Opt selects the NIR transformation passes (§4.2). The zero value
	// disables them; use opt.Default for the full compiler.
	Opt opt.Options
	// PE selects the PE/NIR code generator optimizations (§5.2).
	PE pe.Options
	// Machine is the simulated target; nil means the default 2,048-PE,
	// 7 MHz CM/2.
	Machine *cm2.Machine
	// Obs receives compilation and execution telemetry: one span per
	// pipeline phase (lex, parse, lower, each opt pass, partition,
	// pe-codegen per routine, exec) plus each phase's statistics as
	// counters. nil disables recording at the cost of one branch per
	// instrumented call site; use an *obs.Collector to record.
	Obs obs.Recorder
	// Distribute overrides or supplies per-array data distributions
	// without editing the source: each spec is "array=fmt,fmt,..."
	// using the !HPF$ DISTRIBUTE dimension-format grammar, e.g.
	// "a=block,cyclic(2)". Specs are validated like source directives
	// and take precedence over them. Part of the compile-cache key.
	Distribute []string
}

// DefaultConfig is the fully optimizing Fortran-90-Y configuration.
func DefaultConfig() Config {
	return Config{Opt: opt.Default, PE: pe.Optimized, Machine: cm2.Default()}
}

// Compilation is the result of compiling one program: every intermediate
// artifact of the pipeline, retained for inspection and tooling.
type Compilation struct {
	AST       *ast.Program
	Module    *lower.Module // typechecked, shapechecked NIR (§4.1)
	Optimized *lower.Module // after shape transformations (§4.2)
	OptStats  opt.Stats
	Program   *fe.Program // partitioned host program + PEAC routines
	PartStats partition.Stats
	Machine   *cm2.Machine
	Obs       obs.Recorder // telemetry sink carried from Config (may be nil)
}

// PanicError is an internal compiler error: a pipeline phase panicked
// and Compile converted the panic into a structured diagnostic instead
// of crashing the process. The zero-indexed stack is captured at the
// panic site.
type PanicError struct {
	File  string // source file being compiled
	Phase string // pipeline phase that panicked (lex, parse, lower, opt, partition)
	Value any    // the recovered panic value
	Stack []byte // stack trace captured at recovery
}

func (e *PanicError) Error() string {
	return fmt.Sprintf("%s: internal compiler error in %s: %v", e.File, e.Phase, e.Value)
}

// guard runs one pipeline phase, converting a panic into a *PanicError.
// Malformed input must surface as a diagnostic, never a crash: the
// front end is fed machine-generated and fuzzed sources.
func guard(file, phase string, f func() error) (err error) {
	defer func() {
		if r := recover(); r != nil {
			err = &PanicError{File: file, Phase: phase, Value: r, Stack: debug.Stack()}
		}
	}()
	return f()
}

// Compile runs the front end, semantic lowering, NIR optimization, and
// CM2/NIR partitioning. When cfg.Obs is set, each phase emits one span
// (lex, parse, lower, opt/<pass>..., partition with nested pe-codegen
// spans) and its statistics as counters. A panic inside any phase is
// recovered into a *PanicError diagnostic naming the file and phase.
func Compile(filename, src string, cfg Config) (*Compilation, error) {
	return CompileCtx(context.Background(), filename, src, cfg)
}

// CompileCtx is Compile under a context, checked between pipeline
// phases: a canceled context or an expired deadline aborts the
// compilation with an error wrapping ErrCanceled.
func CompileCtx(ctx context.Context, filename, src string, cfg Config) (*Compilation, error) {
	if cfg.Machine == nil {
		cfg.Machine = cm2.Default()
	}
	rec := cfg.Obs
	phaseCtx := func(phase string) error {
		if ctx.Err() != nil {
			return fmt.Errorf("%s: compile %s: %w", filename, phase, rt.Canceled(ctx))
		}
		return nil
	}

	var toks []lexer.Token
	var rep source.Reporter
	if err := phaseCtx("lex"); err != nil {
		return nil, err
	}
	if err := guard(filename, "lex", func() error {
		span := obs.Start(rec, "lex")
		toks = lexer.Tokens(filename, src, &rep)
		span.End()
		obs.Add(rec, "lex/tokens", float64(len(toks)))
		if rep.HasErrors() {
			return rep.Err()
		}
		return nil
	}); err != nil {
		return nil, err
	}

	var tree *ast.Program
	if err := phaseCtx("parse"); err != nil {
		return nil, err
	}
	if err := guard(filename, "parse", func() error {
		span := obs.Start(rec, "parse")
		defer span.End()
		var err error
		tree, err = parser.ParseTokens(toks, &rep)
		return err
	}); err != nil {
		return nil, err
	}

	var mod *lower.Module
	if err := phaseCtx("lower"); err != nil {
		return nil, err
	}
	if err := guard(filename, "lower", func() error {
		span := obs.Start(rec, "lower")
		defer span.End()
		var err error
		mod, err = lower.Lower(tree)
		return err
	}); err != nil {
		return nil, err
	}

	// Distribution plane: validate !HPF$ directives and stamp per-array
	// distributions onto the symbol table. Skipped entirely for
	// directive-free programs with no overrides, so their phase lists
	// and artifacts are bit-identical to the pre-directive compiler.
	if len(tree.Directives) > 0 || len(cfg.Distribute) > 0 {
		if err := phaseCtx("hpf"); err != nil {
			return nil, err
		}
		if err := guard(filename, "hpf", func() error {
			span := obs.Start(rec, "hpf")
			defer span.End()
			return fe.ApplyDirectives(tree, mod.Syms, cfg.Distribute)
		}); err != nil {
			return nil, err
		}
	}

	var omod *lower.Module
	var ostats opt.Stats
	if err := phaseCtx("opt"); err != nil {
		return nil, err
	}
	if err := guard(filename, "opt", func() error {
		omod, ostats = opt.OptimizeObs(mod, cfg.Opt, rec)
		return nil
	}); err != nil {
		return nil, err
	}

	var prog *fe.Program
	var pstats partition.Stats
	if err := phaseCtx("partition"); err != nil {
		return nil, err
	}
	if err := guard(filename, "partition", func() error {
		span := obs.Start(rec, "partition")
		defer span.End()
		var err error
		prog, pstats, err = partition.CompileObs(omod, cfg.PE, rec)
		return err
	}); err != nil {
		return nil, err
	}
	return &Compilation{
		AST:       tree,
		Module:    mod,
		Optimized: omod,
		OptStats:  ostats,
		Program:   prog,
		PartStats: pstats,
		Machine:   cfg.Machine,
		Obs:       rec,
	}, nil
}

// Run executes the compiled program on the simulated CM/2, reporting an
// "exec" span plus the cycle-attribution counters to the compilation's
// recorder.
func (c *Compilation) Run() (*cm2.Result, error) {
	return c.RunCtlCtx(context.Background(), nil)
}

// RunCtx is Run under a context: cancellation and deadline expiry are
// checked at host op and loop-iteration boundaries and surface as an
// error wrapping ErrCanceled.
func (c *Compilation) RunCtx(ctx context.Context) (*cm2.Result, error) {
	return c.RunCtlCtx(ctx, nil)
}

// RunCtl executes the compiled program under an execution control
// plane: deterministic fault injection, periodic checkpoints, and
// resume from a snapshot (see cm2.Control). A nil ctl is exactly Run.
func (c *Compilation) RunCtl(ctl *cm2.Control) (*cm2.Result, error) {
	return c.RunCtlCtx(context.Background(), ctl)
}

// RunCtlCtx is RunCtl under a context. A Compilation is immutable once
// built, so concurrent RunCtlCtx calls on one Compilation are safe;
// each run builds its own store.
func (c *Compilation) RunCtlCtx(ctx context.Context, ctl *cm2.Control) (*cm2.Result, error) {
	span := obs.Start(c.Obs, "exec")
	defer span.End()
	return c.Machine.RunCtx(ctx, c.Program, nil, c.Obs, ctl)
}

// Interpret runs a program under the reference interpreter (the oracle):
// no compilation, no machine model.
func Interpret(filename, src string) (*interp.Machine, error) {
	tree, err := parser.Parse(filename, src)
	if err != nil {
		return nil, err
	}
	return interp.Run(tree)
}
