// Package nir defines the Native Intermediate Language of the
// Fortran-90-Y compiler (§3 of the paper): an abstract semantic algebra
// whose productions are programs for an abstract machine. NIR has four
// core domains — Types, Declarations, Values, Imperatives (Fig. 5) —
// augmented by a shape domain and its bridge operators (Fig. 6) that model
// serial and parallel iteration over fields of data.
//
// Every compiler phase after semantic lowering consumes and produces NIR:
// the optimizer transforms it source-to-source, and the target-specific
// compilers (CM2/NIR, FE/NIR, PE/NIR, CM5/NIR) reduce it to native code.
package nir

import (
	"fmt"

	"f90y/internal/shape"
	"f90y/internal/source"
)

// ---- Type domain (T) ----

// ScalarKind enumerates the machine-level elemental types.
type ScalarKind int

// Elemental NIR types (Fig. 5).
const (
	Integer32 ScalarKind = iota
	Logical32
	Float32
	Float64
)

func (k ScalarKind) String() string {
	switch k {
	case Integer32:
		return "integer_32"
	case Logical32:
		return "logical_32"
	case Float32:
		return "float_32"
	case Float64:
		return "float_64"
	}
	return "bad_type"
}

// Type is a member of the NIR type domain.
type Type interface {
	isType()
	String() string
}

// Scalar is an elemental type.
type Scalar struct {
	Kind ScalarKind
}

// DField is the bridge operator dfield(S,T): a field of elements of type
// Elem laid out over Shape (Fig. 6).
type DField struct {
	Shape shape.Shape
	Elem  Type
}

func (Scalar) isType() {}
func (DField) isType() {}

func (s Scalar) String() string { return s.Kind.String() }
func (d DField) String() string {
	return fmt.Sprintf("dfield{shape=%s, element=%s}", d.Shape, d.Elem)
}

// Elemental returns the scalar kind at the bottom of a (possibly nested)
// dfield type.
func Elemental(t Type) ScalarKind {
	for {
		switch tt := t.(type) {
		case Scalar:
			return tt.Kind
		case DField:
			t = tt.Elem
		default:
			panic("nir: unknown type")
		}
	}
}

// IsField reports whether t is a dfield.
func IsField(t Type) bool {
	_, ok := t.(DField)
	return ok
}

// FieldShape returns the shape of a dfield type, or nil for scalars.
func FieldShape(t Type) shape.Shape {
	if d, ok := t.(DField); ok {
		return d.Shape
	}
	return nil
}

// ---- Declaration domain (D) ----

// Decl is a member of the NIR declaration domain.
type Decl interface {
	isDecl()
}

// DeclVar binds an identifier to a type: DECL(id, T).
type DeclVar struct {
	Name string
	Type Type
}

// DeclSet groups declarations: DECLSET[...].
type DeclSet struct {
	List []Decl
}

// Initialized is DECL plus an initial value: INITIALIZED(id, T, V).
type Initialized struct {
	Name string
	Type Type
	Init Value
}

func (DeclVar) isDecl()     {}
func (DeclSet) isDecl()     {}
func (Initialized) isDecl() {}

// ---- Value domain (V) ----

// BinOp is a binary value operator.
type BinOp int

// Binary operators of the value domain. Mod/Min/Max extend the paper's
// listing with operators its own figures use (Fig. 10 uses Mod).
const (
	Plus BinOp = iota
	Minus
	Mul
	Div
	Pow
	Mod
	Min
	Max
	Equals
	NotEquals
	Less
	LessEq
	Greater
	GreaterEq
	AndOp
	OrOp
	EqvOp
	NeqvOp
)

var binOpNames = [...]string{
	Plus: "Plus", Minus: "Sub", Mul: "Mul", Div: "Div", Pow: "Pow",
	Mod: "Mod", Min: "Min", Max: "Max",
	Equals: "Equals", NotEquals: "NotEquals",
	Less: "Less", LessEq: "LessEq", Greater: "Greater", GreaterEq: "GreaterEq",
	AndOp: "And", OrOp: "Or", EqvOp: "Eqv", NeqvOp: "Neqv",
}

func (op BinOp) String() string { return binOpNames[op] }

// Comparison reports whether op yields a logical from non-logical operands.
func (op BinOp) Comparison() bool {
	switch op {
	case Equals, NotEquals, Less, LessEq, Greater, GreaterEq:
		return true
	}
	return false
}

// Logical reports whether op combines logical operands.
func (op BinOp) Logical() bool {
	switch op {
	case AndOp, OrOp, EqvOp, NeqvOp:
		return true
	}
	return false
}

// UnOp is a unary value operator. Elemental intrinsics are unary
// operators, following the paper's UNARY(Sin, ...) convention.
type UnOp int

// Unary operators.
const (
	Neg UnOp = iota
	NotU
	Sin
	Cos
	Tan
	Sqrt
	Exp
	Log
	Abs
	ToFloat64 // type conversions
	ToFloat32
	ToInteger32 // truncation
)

var unOpNames = [...]string{
	Neg: "Neg", NotU: "Not", Sin: "Sin", Cos: "Cos", Tan: "Tan",
	Sqrt: "Sqrt", Exp: "Exp", Log: "Log", Abs: "Abs",
	ToFloat64: "ToF64", ToFloat32: "ToF32", ToInteger32: "ToI32",
}

func (op UnOp) String() string { return unOpNames[op] }

// Value is a member of the NIR value domain.
type Value interface {
	isValue()
}

// Binary is BINARY(op, l, r).
type Binary struct {
	Op   BinOp
	L, R Value
}

// Unary is UNARY(op, x).
type Unary struct {
	Op UnOp
	X  Value
}

// SVar references scalar storage bound to an identifier.
type SVar struct {
	Name string
}

// Const is SCALAR(T, rep): a typed scalar constant. Exactly one of I, F, B
// is meaningful, per Type.
type Const struct {
	Type Scalar
	I    int64
	F    float64
	B    bool
}

// FcnCall is FCNCALL(id, args): an opaque function call. Communication
// intrinsics (cm_cshift, cm_reduce_sum, ...) appear as FcnCalls until the
// back end replaces them with runtime library invocations (§5.2).
type FcnCall struct {
	Name string
	Args []Value
}

// AVar is AVAR(i, F): a reference to field storage bound to identifier i
// through field action F (Fig. 6).
type AVar struct {
	Name  string
	Field Field
}

// StrConst is a character constant. It appears only as an argument of
// imperative runtime calls (PRINT items); the value domain proper has no
// character type, matching the paper's machine-level type set.
type StrConst struct {
	S string
}

// LocalUnder is local_under(S, d): the coordinate matrix of shape S along
// dimension d (1-based). The paper's figures use it freely in value
// position (Figs. 7, 9, 10), so it is a Value here; the field-restrictor
// spelling in Fig. 6 corresponds to Subscript fields built from LocalUnder
// values.
type LocalUnder struct {
	S   shape.Shape
	Dim int
}

func (Binary) isValue()     {}
func (Unary) isValue()      {}
func (SVar) isValue()       {}
func (Const) isValue()      {}
func (FcnCall) isValue()    {}
func (AVar) isValue()       {}
func (StrConst) isValue()   {}
func (LocalUnder) isValue() {}

// IntConst builds an integer_32 constant.
func IntConst(v int64) Const { return Const{Type: Scalar{Kind: Integer32}, I: v} }

// FloatConst builds a float_64 constant.
func FloatConst(v float64) Const { return Const{Type: Scalar{Kind: Float64}, F: v} }

// Float32Const builds a float_32 constant.
func Float32Const(v float64) Const { return Const{Type: Scalar{Kind: Float32}, F: v} }

// BoolConst builds a logical_32 constant.
func BoolConst(v bool) Const { return Const{Type: Scalar{Kind: Logical32}, B: v} }

// True is the constant mask used for unconditional moves.
var True = BoolConst(true)

// ---- Field restrictor domain (F) ----

// Field is a field action specializing an AVar's declared shape (Fig. 6).
type Field interface {
	isField()
}

// Everywhere selects the whole field; the shape is supplied by context,
// decoupling data-movement parallelism from declared shapes (§3.2).
type Everywhere struct{}

// Subscript selects a single point per dimension: shapewise subscripting.
// Each entry is a scalar-valued expression (loop coordinates via
// LocalUnder, scalar variables, constants).
type Subscript struct {
	Subs []Value
}

// Triplet is one dimension of a Section: the index set Lo:Hi:Step. A Full
// triplet selects the whole declared extent (the ":" subscript). A Scalar
// triplet is a single subscript inside a section reference (A(3,1:5)): it
// selects one index and reduces the section's rank, per Fortran 90 rules.
type Triplet struct {
	Full         bool
	Scalar       bool
	Lo, Hi, Step Value // Step nil means 1; Scalar uses Lo only
}

// Section selects a regular subsection per dimension. Sections are
// produced by lowering of Fortran 90 section syntax and eliminated by the
// optimizer: aligned sections become masked everywhere-moves (Fig. 10),
// misaligned ones become communication.
type Section struct {
	Subs []Triplet
}

func (Everywhere) isField() {}
func (Subscript) isField()  {}
func (Section) isField()    {}

// ---- Imperative domain (I) ----

// Imp is a member of the NIR imperative domain.
type Imp interface {
	isImp()
}

// Program is the top-level program action.
type Program struct {
	Body Imp
}

// Sequentially composes actions for in-order execution.
type Sequentially struct {
	List []Imp
}

// Concurrently composes actions with no ordering constraint.
type Concurrently struct {
	List []Imp
}

// GuardedMove is one (mask, (src, tgt)) element of a MOVE. Pos is the
// source statement the guarded move descends from; it survives blocking
// and fusion (which concatenate move lists) so downstream code
// generators can attribute every emitted instruction to a Fortran line.
type GuardedMove struct {
	Mask Value // nir.True for unconditional
	Src  Value
	Tgt  Value // SVar or AVar
	Pos  source.Pos
}

// Move is MOVE[(mask,(src,tgt)),...]: multiple data movements under masks.
// Over records the common shape the move ranges over — nil for purely
// scalar moves — an annotation the optimizer and partitioner rely on;
// semantically MOVE over shape s equals DO(s, elementwise MOVE) (§3.2).
// Pos is the originating statement of the first guarded move (a fused
// block keeps the position of the statement that opened it).
type Move struct {
	Over  shape.Shape
	Moves []GuardedMove
	Pos   source.Pos
}

// IfThenElse is the classical conditional.
type IfThenElse struct {
	Cond Value
	Then Imp
	Else Imp
}

// While is the classical while-construct.
type While struct {
	Cond Value
	Body Imp
}

// Do is DO(S,I): carry out I at each point of shape S; serial or parallel
// execution depends entirely on S (§3.2). The body addresses the current
// point through LocalUnder values over S.
type Do struct {
	S    shape.Shape
	Body Imp
}

// WithDecl is WITH_DECL(d, I): execute I with declaration d visible.
type WithDecl struct {
	Decl Decl
	Body Imp
}

// WithDomain binds a domain name to a shape for the scope of Body.
type WithDomain struct {
	Name  string
	Shape shape.Shape
	Body  Imp
}

// CallImp invokes a runtime procedure for effect (I/O, diagnostics).
type CallImp struct {
	Name string
	Args []Value
}

// Skip is the empty action, defined as SEQUENTIALLY nil.
type Skip struct{}

func (Program) isImp()      {}
func (Sequentially) isImp() {}
func (Concurrently) isImp() {}
func (Move) isImp()         {}
func (IfThenElse) isImp()   {}
func (While) isImp()        {}
func (Do) isImp()           {}
func (WithDecl) isImp()     {}
func (WithDomain) isImp()   {}
func (CallImp) isImp()      {}
func (Skip) isImp()         {}

// Seq builds a Sequentially, flattening nested Sequentially actions and
// dropping Skips; it returns Skip{} for an empty list and the action
// itself for a singleton.
func Seq(actions ...Imp) Imp {
	var flat []Imp
	var add func(Imp)
	add = func(a Imp) {
		switch a := a.(type) {
		case nil, Skip:
		case Sequentially:
			for _, x := range a.List {
				add(x)
			}
		default:
			flat = append(flat, a)
		}
	}
	for _, a := range actions {
		add(a)
	}
	switch len(flat) {
	case 0:
		return Skip{}
	case 1:
		return flat[0]
	}
	return Sequentially{List: flat}
}
