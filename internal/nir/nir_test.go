package nir

import (
	"math/rand"
	"strings"
	"testing"
	"testing/quick"

	"f90y/internal/shape"
)

func ew(name string) AVar { return AVar{Name: name, Field: Everywhere{}} }

// fig8Move builds the K/L computation of Fig. 8:
//
//	MOVE[(True, (6, l@everywhere)), (True, (2*k+5, k@everywhere))]
func fig8Move() Move {
	alpha := shape.Interval{Lo: 1, Hi: 128}
	beta := shape.Prod{Dims: []shape.Shape{alpha, shape.Interval{Lo: 1, Hi: 64}}}
	return Move{
		Over: beta,
		Moves: []GuardedMove{
			{Mask: True, Src: IntConst(6), Tgt: ew("l")},
			{Mask: True, Src: Binary{Op: Plus,
				L: Binary{Op: Mul, L: IntConst(2), R: ew("k")},
				R: IntConst(5)}, Tgt: ew("k")},
		},
	}
}

func TestPrintPaperNotation(t *testing.T) {
	m := fig8Move()
	out := Print(m)
	for _, want := range []string{
		"MOVE<",
		"(SCALAR(logical_32, 'True'), (SCALAR(integer_32, '6'), AVAR('l', everywhere)))",
		"BINARY(Plus, BINARY(Mul, SCALAR(integer_32, '2'), AVAR('k', everywhere)), SCALAR(integer_32, '5'))",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("printer output missing %q:\n%s", want, out)
		}
	}
}

func TestPrintWithDomainAndDecl(t *testing.T) {
	alpha := shape.Interval{Lo: 1, Hi: 128}
	prog := WithDomain{Name: "alpha", Shape: alpha,
		Body: WithDecl{
			Decl: DeclSet{List: []Decl{
				DeclVar{Name: "l", Type: DField{Shape: shape.Ref{Name: "alpha"}, Elem: Scalar{Kind: Integer32}}},
			}},
			Body: fig8Move(),
		}}
	out := Print(prog)
	for _, want := range []string{
		"WITH_DOMAIN(('alpha', interval(point 1, point 128))",
		"DECLSET[DECL('l', dfield{shape=domain 'alpha', element=integer_32})]",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("missing %q in:\n%s", want, out)
		}
	}
}

func TestPrintLocalUnderAndSubscript(t *testing.T) {
	beta := shape.Interval{Lo: 1, Hi: 64, Serial: true}
	// Fig. 9's diagonal extraction: c(i) = a(i,i).
	mv := Move{Moves: []GuardedMove{{
		Mask: True,
		Src: AVar{Name: "a", Field: Subscript{Subs: []Value{
			LocalUnder{S: beta, Dim: 1}, LocalUnder{S: beta, Dim: 1},
		}}},
		Tgt: AVar{Name: "c", Field: Subscript{Subs: []Value{LocalUnder{S: beta, Dim: 1}}}},
	}}}
	d := Do{S: beta, Body: mv}
	out := Print(d)
	for _, want := range []string{
		"DO(serial_interval(point 1, point 64)",
		"subscript[local_under(serial_interval(point 1, point 64), 1), local_under(serial_interval(point 1, point 64), 1)]",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("missing %q in:\n%s", want, out)
		}
	}
}

func TestSeqFlattening(t *testing.T) {
	a := Move{Moves: []GuardedMove{{Mask: True, Src: IntConst(1), Tgt: SVar{Name: "x"}}}}
	b := Move{Moves: []GuardedMove{{Mask: True, Src: IntConst(2), Tgt: SVar{Name: "y"}}}}
	got := Seq(Seq(a, Skip{}), Seq(Seq(b)), Skip{})
	s, ok := got.(Sequentially)
	if !ok || len(s.List) != 2 {
		t.Fatalf("Seq did not flatten: %#v", got)
	}
	if _, ok := Seq().(Skip); !ok {
		t.Error("empty Seq should be Skip")
	}
	if _, ok := Seq(a).(Move); !ok {
		t.Error("singleton Seq should unwrap")
	}
}

func TestReadsWrites(t *testing.T) {
	m := fig8Move()
	r, w := Reads(m), Writes(m)
	if !r["k"] || r["l"] {
		t.Errorf("reads = %v", r)
	}
	if !w["k"] || !w["l"] {
		t.Errorf("writes = %v", w)
	}
}

func TestReadsIncludesMaskAndSubscripts(t *testing.T) {
	m := Move{Moves: []GuardedMove{{
		Mask: Binary{Op: Greater, L: SVar{Name: "n"}, R: IntConst(0)},
		Src:  IntConst(1),
		Tgt:  AVar{Name: "a", Field: Subscript{Subs: []Value{SVar{Name: "i"}}}},
	}}}
	r := Reads(m)
	if !r["n"] || !r["i"] {
		t.Errorf("reads = %v", r)
	}
	if Reads(m)["a"] {
		t.Errorf("target should not be read: %v", r)
	}
}

func TestReadsNested(t *testing.T) {
	inner := Move{Moves: []GuardedMove{{Mask: True, Src: SVar{Name: "b"}, Tgt: SVar{Name: "a"}}}}
	loop := While{Cond: Binary{Op: Less, L: SVar{Name: "i"}, R: SVar{Name: "n"}}, Body: inner}
	r := Reads(loop)
	for _, name := range []string{"b", "i", "n"} {
		if !r[name] {
			t.Errorf("missing read %q: %v", name, r)
		}
	}
	if !Writes(loop)["a"] {
		t.Errorf("missing write a")
	}
}

func TestRewriteValues(t *testing.T) {
	// Replace SVar n by the constant 3 throughout.
	v := Binary{Op: Plus, L: SVar{Name: "n"}, R: Binary{Op: Mul, L: SVar{Name: "n"}, R: IntConst(2)}}
	got := RewriteValues(v, func(x Value) Value {
		if s, ok := x.(SVar); ok && s.Name == "n" {
			return IntConst(3)
		}
		return x
	})
	want := Binary{Op: Plus, L: IntConst(3), R: Binary{Op: Mul, L: IntConst(3), R: IntConst(2)}}
	if !EqualValue(got, want) {
		t.Fatalf("got %s", PrintValue(got))
	}
}

func TestRewriteImps(t *testing.T) {
	prog := Seq(
		Move{Moves: []GuardedMove{{Mask: True, Src: IntConst(1), Tgt: SVar{Name: "x"}}}},
		Skip{},
		Move{Moves: []GuardedMove{{Mask: True, Src: IntConst(2), Tgt: SVar{Name: "y"}}}},
	)
	// Drop all Skips via rewrite (Seq already did; ensure idempotent).
	count := 0
	RewriteImps(prog, func(i Imp) Imp {
		if _, ok := i.(Move); ok {
			count++
		}
		return i
	})
	if count != 2 {
		t.Fatalf("visited %d moves", count)
	}
}

func TestElemental(t *testing.T) {
	d := DField{Shape: shape.Of(4, 4), Elem: DField{Shape: shape.Of(2), Elem: Scalar{Kind: Float32}}}
	if Elemental(d) != Float32 {
		t.Error("nested dfield elemental")
	}
	if !IsField(d) || IsField(Scalar{Kind: Float64}) {
		t.Error("IsField")
	}
	if FieldShape(Scalar{Kind: Float64}) != nil {
		t.Error("FieldShape of scalar")
	}
}

func randValue(r *rand.Rand, depth int) Value {
	if depth <= 0 {
		switch r.Intn(4) {
		case 0:
			return SVar{Name: string(rune('a' + r.Intn(4)))}
		case 1:
			return IntConst(int64(r.Intn(10)))
		case 2:
			return FloatConst(float64(r.Intn(10)) / 2)
		default:
			return ew(string(rune('p' + r.Intn(3))))
		}
	}
	switch r.Intn(3) {
	case 0:
		return Binary{Op: BinOp(r.Intn(int(NeqvOp) + 1)), L: randValue(r, depth-1), R: randValue(r, depth-1)}
	case 1:
		return Unary{Op: UnOp(r.Intn(int(ToInteger32) + 1)), X: randValue(r, depth-1)}
	default:
		return FcnCall{Name: "f", Args: []Value{randValue(r, depth-1)}}
	}
}

// Property: EqualValue is reflexive, and rewriting with the identity
// function preserves equality.
func TestEqualValueReflexiveProperty(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		v := randValue(r, 3)
		if !EqualValue(v, v) {
			return false
		}
		id := RewriteValues(v, func(x Value) Value { return x })
		return EqualValue(v, id)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

// Property: printing two structurally different constants yields different
// strings, and printing is deterministic.
func TestPrintDeterministicProperty(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		v := randValue(r, 3)
		return PrintValue(v) == PrintValue(v)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestEqualValueDistinguishes(t *testing.T) {
	cases := [][2]Value{
		{SVar{Name: "a"}, SVar{Name: "b"}},
		{IntConst(1), IntConst(2)},
		{IntConst(1), FloatConst(1)},
		{ew("a"), AVar{Name: "a", Field: Subscript{Subs: []Value{IntConst(1)}}}},
		{Binary{Op: Plus, L: IntConst(1), R: IntConst(2)}, Binary{Op: Minus, L: IntConst(1), R: IntConst(2)}},
		{LocalUnder{S: shape.Of(4), Dim: 1}, LocalUnder{S: shape.Of(4), Dim: 2}},
	}
	for _, c := range cases {
		if EqualValue(c[0], c[1]) {
			t.Errorf("EqualValue(%s, %s) = true", PrintValue(c[0]), PrintValue(c[1]))
		}
	}
}

func TestEqualFieldSection(t *testing.T) {
	s1 := AVar{Name: "a", Field: Section{Subs: []Triplet{{Lo: IntConst(1), Hi: IntConst(32), Step: IntConst(2)}, {Full: true}}}}
	s2 := AVar{Name: "a", Field: Section{Subs: []Triplet{{Lo: IntConst(1), Hi: IntConst(32), Step: IntConst(2)}, {Full: true}}}}
	s3 := AVar{Name: "a", Field: Section{Subs: []Triplet{{Lo: IntConst(2), Hi: IntConst(32), Step: IntConst(2)}, {Full: true}}}}
	if !EqualValue(s1, s2) {
		t.Error("identical sections unequal")
	}
	if EqualValue(s1, s3) {
		t.Error("different sections equal")
	}
}

func TestPrintControlConstructs(t *testing.T) {
	prog := Program{Body: Sequentially{List: []Imp{
		IfThenElse{
			Cond: Binary{Op: Greater, L: SVar{Name: "n"}, R: IntConst(0)},
			Then: Move{Moves: []GuardedMove{{Mask: True, Src: IntConst(1), Tgt: SVar{Name: "x"}}}},
			Else: Skip{},
		},
		While{
			Cond: Binary{Op: Less, L: SVar{Name: "i"}, R: IntConst(4)},
			Body: CallImp{Name: "rt_print", Args: []Value{StrConst{S: "hi"}, SVar{Name: "i"}}},
		},
		Concurrently{List: []Imp{Skip{}, Skip{}}},
	}}}
	out := Print(prog)
	for _, want := range []string{
		"PROGRAM(", "IFTHENELSE(BINARY(Greater", "WHILE(BINARY(Less",
		"CALL('rt_print', 'hi', SVAR 'i')", "CONCURRENTLY", "SKIP",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("missing %q in:\n%s", want, out)
		}
	}
}

func TestPrintInitializedDecl(t *testing.T) {
	d := WithDecl{
		Decl: Initialized{Name: "n", Type: Scalar{Kind: Integer32}, Init: IntConst(64)},
		Body: Skip{},
	}
	out := Print(d)
	if !strings.Contains(out, "INITIALIZED('n', integer_32, SCALAR(integer_32, '64'))") {
		t.Errorf("got:\n%s", out)
	}
}

func TestPrintSectionTriplets(t *testing.T) {
	av := AVar{Name: "b", Field: Section{Subs: []Triplet{
		{Lo: IntConst(1), Hi: IntConst(32), Step: IntConst(2)},
		{Full: true},
		{Scalar: true, Lo: IntConst(3)},
	}}}
	got := PrintValue(av)
	want := "AVAR('b', section[SCALAR(integer_32, '1'):SCALAR(integer_32, '32'):SCALAR(integer_32, '2'), :, SCALAR(integer_32, '3')])"
	if got != want {
		t.Errorf("got %s", got)
	}
}

func TestWalkImpsVisitsEverything(t *testing.T) {
	inner := Move{Moves: []GuardedMove{{Mask: True, Src: IntConst(1), Tgt: SVar{Name: "x"}}}}
	prog := Program{Body: WithDomain{Name: "a", Shape: shape.Of(4),
		Body: WithDecl{Decl: DeclVar{Name: "x", Type: Scalar{Kind: Integer32}},
			Body: Do{S: shape.SerialOf(4), Body: Concurrently{List: []Imp{inner, While{Cond: True, Body: Skip{}}}}}}}}
	count := 0
	WalkImps(prog, func(Imp) { count++ })
	// Program, WithDomain, WithDecl, Do, Concurrently, Move, While, Skip.
	if count != 8 {
		t.Fatalf("visited %d actions", count)
	}
}

func TestStrConstEquality(t *testing.T) {
	if !EqualValue(StrConst{S: "a"}, StrConst{S: "a"}) || EqualValue(StrConst{S: "a"}, StrConst{S: "b"}) {
		t.Fatal("StrConst equality broken")
	}
}
