package nir

import (
	"fmt"
	"strconv"
	"strings"
)

// Print renders an imperative action in the paper's NIR notation
// (cf. Figs. 8–10), indented for readability.
func Print(i Imp) string {
	var b strings.Builder
	printImp(&b, i, 0)
	b.WriteString("\n")
	return b.String()
}

func ind(b *strings.Builder, depth int) {
	b.WriteString(strings.Repeat("  ", depth))
}

func printImp(b *strings.Builder, i Imp, depth int) {
	switch i := i.(type) {
	case nil:
		ind(b, depth)
		b.WriteString("SKIP")
	case Program:
		ind(b, depth)
		b.WriteString("PROGRAM(\n")
		printImp(b, i.Body, depth+1)
		b.WriteString(")")
	case Skip:
		ind(b, depth)
		b.WriteString("SKIP")
	case Sequentially:
		ind(b, depth)
		b.WriteString("SEQUENTIALLY\n")
		ind(b, depth)
		b.WriteString("[\n")
		for k, a := range i.List {
			printImp(b, a, depth+1)
			if k < len(i.List)-1 {
				b.WriteString(",")
			}
			b.WriteString("\n")
		}
		ind(b, depth)
		b.WriteString("]")
	case Concurrently:
		ind(b, depth)
		b.WriteString("CONCURRENTLY\n")
		ind(b, depth)
		b.WriteString("[\n")
		for k, a := range i.List {
			printImp(b, a, depth+1)
			if k < len(i.List)-1 {
				b.WriteString(",")
			}
			b.WriteString("\n")
		}
		ind(b, depth)
		b.WriteString("]")
	case Move:
		ind(b, depth)
		if i.Over != nil {
			fmt.Fprintf(b, "MOVE<%s>[", i.Over)
		} else {
			b.WriteString("MOVE[")
		}
		for k, m := range i.Moves {
			if k > 0 {
				b.WriteString(",\n")
				ind(b, depth+1)
			}
			fmt.Fprintf(b, "(%s, (%s, %s))", PrintValue(m.Mask), PrintValue(m.Src), PrintValue(m.Tgt))
		}
		b.WriteString("]")
	case IfThenElse:
		ind(b, depth)
		fmt.Fprintf(b, "IFTHENELSE(%s,\n", PrintValue(i.Cond))
		printImp(b, i.Then, depth+1)
		b.WriteString(",\n")
		printImp(b, i.Else, depth+1)
		b.WriteString(")")
	case While:
		ind(b, depth)
		fmt.Fprintf(b, "WHILE(%s,\n", PrintValue(i.Cond))
		printImp(b, i.Body, depth+1)
		b.WriteString(")")
	case Do:
		ind(b, depth)
		fmt.Fprintf(b, "DO(%s,\n", i.S)
		printImp(b, i.Body, depth+1)
		b.WriteString(")")
	case WithDecl:
		ind(b, depth)
		fmt.Fprintf(b, "WITH_DECL(%s,\n", printDecl(i.Decl))
		printImp(b, i.Body, depth+1)
		b.WriteString(")")
	case WithDomain:
		ind(b, depth)
		fmt.Fprintf(b, "WITH_DOMAIN(('%s', %s),\n", i.Name, i.Shape)
		printImp(b, i.Body, depth+1)
		b.WriteString(")")
	case CallImp:
		ind(b, depth)
		fmt.Fprintf(b, "CALL('%s'", i.Name)
		for _, a := range i.Args {
			b.WriteString(", " + PrintValue(a))
		}
		b.WriteString(")")
	default:
		ind(b, depth)
		fmt.Fprintf(b, "<unknown imp %T>", i)
	}
}

func printDecl(d Decl) string {
	switch d := d.(type) {
	case DeclVar:
		return fmt.Sprintf("DECL('%s', %s)", d.Name, d.Type)
	case Initialized:
		return fmt.Sprintf("INITIALIZED('%s', %s, %s)", d.Name, d.Type, PrintValue(d.Init))
	case DeclSet:
		parts := make([]string, len(d.List))
		for i, x := range d.List {
			parts[i] = printDecl(x)
		}
		return "DECLSET[" + strings.Join(parts, ", ") + "]"
	}
	return fmt.Sprintf("<unknown decl %T>", d)
}

// PrintValue renders a value in the paper's notation.
func PrintValue(v Value) string {
	switch v := v.(type) {
	case nil:
		return "<nil>"
	case Binary:
		return fmt.Sprintf("BINARY(%s, %s, %s)", v.Op, PrintValue(v.L), PrintValue(v.R))
	case Unary:
		return fmt.Sprintf("UNARY(%s, %s)", v.Op, PrintValue(v.X))
	case SVar:
		return fmt.Sprintf("SVAR '%s'", v.Name)
	case Const:
		return fmt.Sprintf("SCALAR(%s, '%s')", v.Type, constRep(v))
	case FcnCall:
		args := make([]string, len(v.Args))
		for i, a := range v.Args {
			args[i] = PrintValue(a)
		}
		return fmt.Sprintf("FCNCALL('%s', [%s])", v.Name, strings.Join(args, ", "))
	case AVar:
		return fmt.Sprintf("AVAR('%s', %s)", v.Name, printField(v.Field))
	case StrConst:
		return fmt.Sprintf("'%s'", v.S)
	case LocalUnder:
		return fmt.Sprintf("local_under(%s, %d)", v.S, v.Dim)
	}
	return fmt.Sprintf("<unknown value %T>", v)
}

func constRep(c Const) string {
	switch c.Type.Kind {
	case Integer32:
		return strconv.FormatInt(c.I, 10)
	case Logical32:
		if c.B {
			return "True"
		}
		return "False"
	default:
		return strconv.FormatFloat(c.F, 'g', -1, 64)
	}
}

func printField(f Field) string {
	switch f := f.(type) {
	case Everywhere:
		return "everywhere"
	case Subscript:
		parts := make([]string, len(f.Subs))
		for i, s := range f.Subs {
			parts[i] = PrintValue(s)
		}
		return "subscript[" + strings.Join(parts, ", ") + "]"
	case Section:
		parts := make([]string, len(f.Subs))
		for i, t := range f.Subs {
			parts[i] = printTriplet(t)
		}
		return "section[" + strings.Join(parts, ", ") + "]"
	}
	return fmt.Sprintf("<unknown field %T>", f)
}

func printTriplet(t Triplet) string {
	if t.Full {
		return ":"
	}
	if t.Scalar {
		return PrintValue(t.Lo)
	}
	s := PrintValue(t.Lo) + ":" + PrintValue(t.Hi)
	if t.Step != nil {
		s += ":" + PrintValue(t.Step)
	}
	return s
}
