package nir

import "f90y/internal/shape"

// WalkValues calls fn for v and every value reachable beneath it,
// including subscript and section components of AVar fields.
func WalkValues(v Value, fn func(Value)) {
	if v == nil {
		return
	}
	fn(v)
	switch v := v.(type) {
	case Binary:
		WalkValues(v.L, fn)
		WalkValues(v.R, fn)
	case Unary:
		WalkValues(v.X, fn)
	case FcnCall:
		for _, a := range v.Args {
			WalkValues(a, fn)
		}
	case AVar:
		walkField(v.Field, fn)
	}
}

func walkField(f Field, fn func(Value)) {
	switch f := f.(type) {
	case Subscript:
		for _, s := range f.Subs {
			WalkValues(s, fn)
		}
	case Section:
		for _, t := range f.Subs {
			switch {
			case t.Full:
			case t.Scalar:
				WalkValues(t.Lo, fn)
			default:
				WalkValues(t.Lo, fn)
				WalkValues(t.Hi, fn)
				if t.Step != nil {
					WalkValues(t.Step, fn)
				}
			}
		}
	}
}

// WalkImps calls fn for i and every imperative action beneath it.
func WalkImps(i Imp, fn func(Imp)) {
	if i == nil {
		return
	}
	fn(i)
	switch i := i.(type) {
	case Program:
		WalkImps(i.Body, fn)
	case Sequentially:
		for _, a := range i.List {
			WalkImps(a, fn)
		}
	case Concurrently:
		for _, a := range i.List {
			WalkImps(a, fn)
		}
	case IfThenElse:
		WalkImps(i.Then, fn)
		WalkImps(i.Else, fn)
	case While:
		WalkImps(i.Body, fn)
	case Do:
		WalkImps(i.Body, fn)
	case WithDecl:
		WalkImps(i.Body, fn)
	case WithDomain:
		WalkImps(i.Body, fn)
	}
}

// ValuesOf calls fn for every value appearing directly in action i
// (without descending into nested imperatives).
func ValuesOf(i Imp, fn func(Value)) {
	switch i := i.(type) {
	case Move:
		for _, m := range i.Moves {
			WalkValues(m.Mask, fn)
			WalkValues(m.Src, fn)
			WalkValues(m.Tgt, fn)
		}
	case IfThenElse:
		WalkValues(i.Cond, fn)
	case While:
		WalkValues(i.Cond, fn)
	case CallImp:
		for _, a := range i.Args {
			WalkValues(a, fn)
		}
	case WithDecl:
		if init, ok := i.Decl.(Initialized); ok {
			WalkValues(init.Init, fn)
		}
	}
}

// Reads returns the set of identifiers whose storage action i may read,
// including reads nested anywhere beneath it. Mask expressions and
// subscript components count as reads; move targets do not (but their
// subscripts do).
func Reads(i Imp) map[string]bool {
	out := map[string]bool{}
	WalkImps(i, func(a Imp) {
		switch a := a.(type) {
		case Move:
			for _, m := range a.Moves {
				WalkValues(m.Mask, func(v Value) { addRead(out, v) })
				WalkValues(m.Src, func(v Value) { addRead(out, v) })
				// Target subscripts are reads even though the target is a write.
				if av, ok := m.Tgt.(AVar); ok {
					walkField(av.Field, func(v Value) { addRead(out, v) })
				}
			}
		default:
			ValuesOf(a, func(v Value) { addRead(out, v) })
		}
	})
	return out
}

func addRead(set map[string]bool, v Value) {
	switch v := v.(type) {
	case SVar:
		set[v.Name] = true
	case AVar:
		set[v.Name] = true
	}
}

// Writes returns the set of identifiers whose storage action i may write.
func Writes(i Imp) map[string]bool {
	out := map[string]bool{}
	WalkImps(i, func(a Imp) {
		m, ok := a.(Move)
		if !ok {
			return
		}
		for _, g := range m.Moves {
			switch t := g.Tgt.(type) {
			case SVar:
				out[t.Name] = true
			case AVar:
				out[t.Name] = true
			}
		}
	})
	return out
}

// RewriteValues applies fn bottom-up to every value in v, rebuilding
// containers. fn receives each already-rewritten node and returns its
// replacement.
func RewriteValues(v Value, fn func(Value) Value) Value {
	if v == nil {
		return nil
	}
	switch vv := v.(type) {
	case Binary:
		vv.L = RewriteValues(vv.L, fn)
		vv.R = RewriteValues(vv.R, fn)
		return fn(vv)
	case Unary:
		vv.X = RewriteValues(vv.X, fn)
		return fn(vv)
	case FcnCall:
		args := make([]Value, len(vv.Args))
		for i, a := range vv.Args {
			args[i] = RewriteValues(a, fn)
		}
		vv.Args = args
		return fn(vv)
	case AVar:
		vv.Field = rewriteField(vv.Field, fn)
		return fn(vv)
	default:
		return fn(v)
	}
}

func rewriteField(f Field, fn func(Value) Value) Field {
	switch ff := f.(type) {
	case Subscript:
		subs := make([]Value, len(ff.Subs))
		for i, s := range ff.Subs {
			subs[i] = RewriteValues(s, fn)
		}
		return Subscript{Subs: subs}
	case Section:
		subs := make([]Triplet, len(ff.Subs))
		for i, t := range ff.Subs {
			switch {
			case t.Full:
				subs[i] = t
			case t.Scalar:
				subs[i] = Triplet{Scalar: true, Lo: RewriteValues(t.Lo, fn)}
			default:
				nt := Triplet{Lo: RewriteValues(t.Lo, fn), Hi: RewriteValues(t.Hi, fn)}
				if t.Step != nil {
					nt.Step = RewriteValues(t.Step, fn)
				}
				subs[i] = nt
			}
		}
		return Section{Subs: subs}
	default:
		return f
	}
}

// RewriteImps applies fn bottom-up to every imperative in i.
func RewriteImps(i Imp, fn func(Imp) Imp) Imp {
	if i == nil {
		return nil
	}
	switch ii := i.(type) {
	case Program:
		ii.Body = RewriteImps(ii.Body, fn)
		return fn(ii)
	case Sequentially:
		list := make([]Imp, len(ii.List))
		for k, a := range ii.List {
			list[k] = RewriteImps(a, fn)
		}
		ii.List = list
		return fn(ii)
	case Concurrently:
		list := make([]Imp, len(ii.List))
		for k, a := range ii.List {
			list[k] = RewriteImps(a, fn)
		}
		ii.List = list
		return fn(ii)
	case IfThenElse:
		ii.Then = RewriteImps(ii.Then, fn)
		ii.Else = RewriteImps(ii.Else, fn)
		return fn(ii)
	case While:
		ii.Body = RewriteImps(ii.Body, fn)
		return fn(ii)
	case Do:
		ii.Body = RewriteImps(ii.Body, fn)
		return fn(ii)
	case WithDecl:
		ii.Body = RewriteImps(ii.Body, fn)
		return fn(ii)
	case WithDomain:
		ii.Body = RewriteImps(ii.Body, fn)
		return fn(ii)
	default:
		return fn(i)
	}
}

// EqualValue reports structural equality of two values.
func EqualValue(a, b Value) bool {
	switch a := a.(type) {
	case nil:
		return b == nil
	case Binary:
		bb, ok := b.(Binary)
		return ok && a.Op == bb.Op && EqualValue(a.L, bb.L) && EqualValue(a.R, bb.R)
	case Unary:
		bb, ok := b.(Unary)
		return ok && a.Op == bb.Op && EqualValue(a.X, bb.X)
	case SVar:
		bb, ok := b.(SVar)
		return ok && a == bb
	case Const:
		bb, ok := b.(Const)
		return ok && a == bb
	case FcnCall:
		bb, ok := b.(FcnCall)
		if !ok || a.Name != bb.Name || len(a.Args) != len(bb.Args) {
			return false
		}
		for i := range a.Args {
			if !EqualValue(a.Args[i], bb.Args[i]) {
				return false
			}
		}
		return true
	case AVar:
		bb, ok := b.(AVar)
		return ok && a.Name == bb.Name && equalField(a.Field, bb.Field)
	case StrConst:
		bb, ok := b.(StrConst)
		return ok && a == bb
	case LocalUnder:
		bb, ok := b.(LocalUnder)
		return ok && a.Dim == bb.Dim && shape.Equal(a.S, bb.S)
	}
	return false
}

func equalField(a, b Field) bool {
	switch a := a.(type) {
	case Everywhere:
		_, ok := b.(Everywhere)
		return ok
	case Subscript:
		bb, ok := b.(Subscript)
		if !ok || len(a.Subs) != len(bb.Subs) {
			return false
		}
		for i := range a.Subs {
			if !EqualValue(a.Subs[i], bb.Subs[i]) {
				return false
			}
		}
		return true
	case Section:
		bb, ok := b.(Section)
		if !ok || len(a.Subs) != len(bb.Subs) {
			return false
		}
		for i := range a.Subs {
			if !equalTriplet(a.Subs[i], bb.Subs[i]) {
				return false
			}
		}
		return true
	}
	return false
}

func equalTriplet(a, b Triplet) bool {
	if a.Full != b.Full || a.Scalar != b.Scalar {
		return false
	}
	if a.Full {
		return true
	}
	if a.Scalar {
		return EqualValue(a.Lo, b.Lo)
	}
	if !EqualValue(a.Lo, b.Lo) || !EqualValue(a.Hi, b.Hi) {
		return false
	}
	if (a.Step == nil) != (b.Step == nil) {
		return false
	}
	return a.Step == nil || EqualValue(a.Step, b.Step)
}
