package parser

import (
	"fmt"
	"strconv"
	"strings"

	"f90y/internal/ast"
	"f90y/internal/source"
)

// This file parses the bodies of !HPF$ comment directives. The grammar
// (SNIPPETS.md snippet 3, the HPF subset the paper's runtime can map):
//
//	directive := PROCESSORS name "(" int { "," int } ")"
//	           | DISTRIBUTE name "(" dist { "," dist } ")" [ ONTO name ]
//	           | ALIGN name WITH name
//	dist      := BLOCK | CYCLIC [ "(" int ")" ] | "*"
//
// Keywords and names are case-insensitive; names are normalized to
// lower case like every other identifier.

// parseDirective consumes one DIRECTIVE token and records the parsed
// directive; malformed directives are reported as parse errors at the
// directive's position.
func (p *Parser) parseDirective() {
	tok := p.next() // the DIRECTIVE token
	d, err := parseDirectiveBody(tok.Text, tok.Pos)
	if err != nil {
		p.rep.Errorf("parse", tok.Pos, "malformed !HPF$ directive: %v", err)
		return
	}
	p.directives = append(p.directives, d)
}

// dirScanner is a trivial word/punctuation scanner over a directive body.
type dirScanner struct {
	s string
	i int
}

func (sc *dirScanner) skipSpace() {
	for sc.i < len(sc.s) && (sc.s[sc.i] == ' ' || sc.s[sc.i] == '\t') {
		sc.i++
	}
}

// word returns the next identifier-like word lower-cased ("" if the
// next character is not a word character).
func (sc *dirScanner) word() string {
	sc.skipSpace()
	start := sc.i
	for sc.i < len(sc.s) {
		c := sc.s[sc.i]
		if c >= 'a' && c <= 'z' || c >= 'A' && c <= 'Z' || c >= '0' && c <= '9' || c == '_' {
			sc.i++
			continue
		}
		break
	}
	return strings.ToLower(sc.s[start:sc.i])
}

// sym consumes the given single-character symbol if present.
func (sc *dirScanner) sym(c byte) bool {
	sc.skipSpace()
	if sc.i < len(sc.s) && sc.s[sc.i] == c {
		sc.i++
		return true
	}
	return false
}

func (sc *dirScanner) done() bool {
	sc.skipSpace()
	return sc.i >= len(sc.s)
}

func (sc *dirScanner) rest() string { return strings.TrimSpace(sc.s[sc.i:]) }

func (sc *dirScanner) int() (int, error) {
	w := sc.word()
	if w == "" {
		return 0, fmt.Errorf("expected integer, found %q", sc.rest())
	}
	return strconv.Atoi(w)
}

func parseDirectiveBody(body string, pos source.Pos) (*ast.Directive, error) {
	sc := &dirScanner{s: body}
	d := &ast.Directive{Pos: pos}
	switch kw := sc.word(); kw {
	case "processors":
		d.Kind = ast.DirProcessors
		if d.Name = sc.word(); d.Name == "" {
			return nil, fmt.Errorf("PROCESSORS needs a grid name")
		}
		if !sc.sym('(') {
			return nil, fmt.Errorf("PROCESSORS %s needs a parenthesized extent list", d.Name)
		}
		for {
			n, err := sc.int()
			if err != nil {
				return nil, fmt.Errorf("bad PROCESSORS extent: %v", err)
			}
			d.Ints = append(d.Ints, n)
			if sc.sym(',') {
				continue
			}
			break
		}
		if !sc.sym(')') {
			return nil, fmt.Errorf("PROCESSORS %s: missing ')'", d.Name)
		}
	case "distribute":
		d.Kind = ast.DirDistribute
		if d.Name = sc.word(); d.Name == "" {
			return nil, fmt.Errorf("DISTRIBUTE needs an array name")
		}
		if !sc.sym('(') {
			return nil, fmt.Errorf("DISTRIBUTE %s needs a parenthesized format list", d.Name)
		}
		for {
			spec, err := parseDistSpec(sc)
			if err != nil {
				return nil, err
			}
			d.Dists = append(d.Dists, spec)
			if sc.sym(',') {
				continue
			}
			break
		}
		if !sc.sym(')') {
			return nil, fmt.Errorf("DISTRIBUTE %s: missing ')'", d.Name)
		}
		if !sc.done() {
			if sc.word() != "onto" {
				return nil, fmt.Errorf("DISTRIBUTE %s: expected ONTO, found %q", d.Name, sc.rest())
			}
			if d.Onto = sc.word(); d.Onto == "" {
				return nil, fmt.Errorf("DISTRIBUTE %s ONTO needs a processors-grid name", d.Name)
			}
		}
	case "align":
		d.Kind = ast.DirAlign
		if d.Name = sc.word(); d.Name == "" {
			return nil, fmt.Errorf("ALIGN needs an array name")
		}
		if sc.word() != "with" {
			return nil, fmt.Errorf("ALIGN %s: expected WITH", d.Name)
		}
		if d.With = sc.word(); d.With == "" {
			return nil, fmt.Errorf("ALIGN %s WITH needs a template name", d.Name)
		}
	case "":
		return nil, fmt.Errorf("empty directive")
	default:
		return nil, fmt.Errorf("unknown directive %q (want PROCESSORS, DISTRIBUTE, or ALIGN)", kw)
	}
	if !sc.done() {
		return nil, fmt.Errorf("trailing junk %q", sc.rest())
	}
	return d, nil
}

func parseDistSpec(sc *dirScanner) (ast.DistSpec, error) {
	if sc.sym('*') {
		return ast.DistSpec{Kind: "*"}, nil
	}
	switch w := sc.word(); w {
	case "block":
		return ast.DistSpec{Kind: "block"}, nil
	case "cyclic":
		spec := ast.DistSpec{Kind: "cyclic"}
		if sc.sym('(') {
			k, err := sc.int()
			if err != nil || k < 1 {
				return ast.DistSpec{}, fmt.Errorf("CYCLIC needs a positive chunk size")
			}
			spec.K = k
			if !sc.sym(')') {
				return ast.DistSpec{}, fmt.Errorf("CYCLIC(%d): missing ')'", k)
			}
		}
		return spec, nil
	case "":
		return ast.DistSpec{}, fmt.Errorf("expected distribution format, found %q", sc.rest())
	default:
		return ast.DistSpec{}, fmt.Errorf("unknown distribution format %q (want BLOCK, CYCLIC, or *)", w)
	}
}
