package parser

import (
	"strings"
	"testing"

	"f90y/internal/ast"
)

const dirProg = `program d
integer, parameter :: n = 8
real, array(n,n) :: a, b
!HPF$ PROCESSORS p(4, 8)
!hpf$ distribute a(block, cyclic(4)) onto p
!HPF$ ALIGN B WITH A
a = 1.0
b = a + 1.0
end program d
`

func TestParseDirectives(t *testing.T) {
	prog, err := Parse("d.f90", dirProg)
	if err != nil {
		t.Fatalf("Parse: %v", err)
	}
	if len(prog.Directives) != 3 {
		t.Fatalf("got %d directives, want 3: %+v", len(prog.Directives), prog.Directives)
	}
	p, d, a := prog.Directives[0], prog.Directives[1], prog.Directives[2]
	if p.Kind != ast.DirProcessors || p.Name != "p" || len(p.Ints) != 2 || p.Ints[0] != 4 || p.Ints[1] != 8 {
		t.Errorf("PROCESSORS = %+v", p)
	}
	if p.Pos.Line != 4 {
		t.Errorf("PROCESSORS at line %d, want 4", p.Pos.Line)
	}
	if d.Kind != ast.DirDistribute || d.Name != "a" || d.Onto != "p" ||
		len(d.Dists) != 2 || d.Dists[0].Kind != "block" || d.Dists[1].Kind != "cyclic" || d.Dists[1].K != 4 {
		t.Errorf("DISTRIBUTE = %+v", d)
	}
	if a.Kind != ast.DirAlign || a.Name != "b" || a.With != "a" {
		t.Errorf("ALIGN = %+v", a)
	}
	// The program body must be unaffected by the directive lines.
	if len(prog.Body) != 2 {
		t.Errorf("got %d body statements, want 2", len(prog.Body))
	}
}

func TestParseDirectiveStar(t *testing.T) {
	src := "program d\nreal, array(4,4) :: a\n!HPF$ DISTRIBUTE a(*, BLOCK)\na = 0.0\nend program d\n"
	prog, err := Parse("d.f90", src)
	if err != nil {
		t.Fatalf("Parse: %v", err)
	}
	if len(prog.Directives) != 1 || prog.Directives[0].Dists[0].Kind != "*" {
		t.Fatalf("directives = %+v", prog.Directives)
	}
}

func TestParseDirectiveErrors(t *testing.T) {
	cases := []struct {
		dir  string
		want string
	}{
		{"!HPF$ TEMPLATE t(8)", "unknown directive"},
		{"!HPF$ DISTRIBUTE a(banana)", "unknown distribution format"},
		{"!HPF$ DISTRIBUTE a block", "parenthesized format list"},
		{"!HPF$ DISTRIBUTE a(cyclic(0))", "positive chunk size"},
		{"!HPF$ ALIGN b a", "expected WITH"},
		{"!HPF$ PROCESSORS p", "parenthesized extent list"},
		{"!HPF$ PROCESSORS p(2) junk", "trailing junk"},
		{"!HPF$", "empty directive"},
	}
	for _, c := range cases {
		src := "program d\nreal, array(4) :: a, b\n" + c.dir + "\na = 0.0\nend program d\n"
		_, err := Parse("d.f90", src)
		if err == nil {
			t.Errorf("%q: expected parse error", c.dir)
			continue
		}
		if !strings.Contains(err.Error(), c.want) {
			t.Errorf("%q: error %q does not mention %q", c.dir, err, c.want)
		}
		if !strings.Contains(err.Error(), "d.f90:3") {
			t.Errorf("%q: error %q not positioned at the directive line", c.dir, err)
		}
	}
}

func TestOrdinaryCommentsStillSkipped(t *testing.T) {
	src := "program d\n! just a comment, not hpf$\nreal :: x\nx = 1.0 ! trailing\nend program d\n"
	prog, err := Parse("d.f90", src)
	if err != nil {
		t.Fatalf("Parse: %v", err)
	}
	if len(prog.Directives) != 0 {
		t.Fatalf("plain comments produced directives: %+v", prog.Directives)
	}
}
