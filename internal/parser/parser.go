// Package parser implements a recursive-descent parser for the free-form
// Fortran 90 subset of the Fortran-90-Y compiler. It produces the AST
// consumed by the semantic lowering phase (§4.1).
//
// Fortran has no reserved words; the parser dispatches on the leading
// identifier of each statement and falls back to assignment parsing.
// Old-style labelled DO loops (DO 10 I=1,N ... 10 CONTINUE) are accepted
// and normalized to block DO loops.
package parser

import (
	"strconv"
	"strings"

	"f90y/internal/ast"
	"f90y/internal/lexer"
	"f90y/internal/source"
)

// Parser holds parse state over a token stream.
type Parser struct {
	toks []lexer.Token
	pos  int
	rep  *source.Reporter

	directives []*ast.Directive // !HPF$ directives collected in source order
}

// Parse lexes and parses one main program unit.
func Parse(file, src string) (*ast.Program, error) {
	var rep source.Reporter
	toks := lexer.Tokens(file, src, &rep)
	if rep.HasErrors() {
		return nil, rep.Err()
	}
	return ParseTokens(toks, &rep)
}

// ParseTokens parses a pre-lexed token stream (as produced by
// lexer.Tokens); callers that time the phases separately lex first and
// hand the tokens here.
func ParseTokens(toks []lexer.Token, rep *source.Reporter) (*ast.Program, error) {
	p := &Parser{toks: toks, rep: rep}
	prog := p.parseProgram()
	if rep.HasErrors() {
		return nil, rep.Err()
	}
	return prog, nil
}

func (p *Parser) cur() lexer.Token { return p.toks[p.pos] }
func (p *Parser) peek() lexer.Token {
	if p.pos+1 < len(p.toks) {
		return p.toks[p.pos+1]
	}
	return p.toks[len(p.toks)-1]
}

func (p *Parser) next() lexer.Token {
	t := p.toks[p.pos]
	if p.pos < len(p.toks)-1 {
		p.pos++
	}
	return t
}

func (p *Parser) at(k lexer.Kind) bool { return p.cur().Kind == k }

func (p *Parser) atKw(word string) bool {
	return p.cur().Kind == lexer.IDENT && p.cur().Text == word
}

func (p *Parser) accept(k lexer.Kind) bool {
	if p.at(k) {
		p.next()
		return true
	}
	return false
}

func (p *Parser) acceptKw(word string) bool {
	if p.atKw(word) {
		p.next()
		return true
	}
	return false
}

func (p *Parser) expect(k lexer.Kind) lexer.Token {
	if p.at(k) {
		return p.next()
	}
	p.errorf("expected %v, found %v", k, p.cur())
	return lexer.Token{Kind: k, Pos: p.cur().Pos}
}

func (p *Parser) expectKw(word string) {
	if !p.acceptKw(word) {
		p.errorf("expected %q, found %v", word, p.cur())
	}
}

func (p *Parser) errorf(format string, args ...any) {
	p.rep.Errorf("parse", p.cur().Pos, format, args...)
	// Panic-free recovery: skip to end of statement.
	p.syncToStmtEnd()
}

func (p *Parser) syncToStmtEnd() {
	for !p.at(lexer.NEWLINE) && !p.at(lexer.SEMI) && !p.at(lexer.EOF) {
		p.next()
	}
}

// endOfStmt consumes the statement terminator (newline, semicolon, or EOF).
func (p *Parser) endOfStmt() {
	switch p.cur().Kind {
	case lexer.NEWLINE, lexer.SEMI:
		p.next()
	case lexer.EOF:
	default:
		p.errorf("unexpected %v at end of statement", p.cur())
		if p.at(lexer.NEWLINE) || p.at(lexer.SEMI) {
			p.next()
		}
	}
}

// skipNewlines consumes statement separators and any !HPF$ directive
// lines (directives are whole comment lines, so they only ever appear
// at statement boundaries).
func (p *Parser) skipNewlines() {
	for {
		switch {
		case p.at(lexer.NEWLINE) || p.at(lexer.SEMI):
			p.next()
		case p.at(lexer.DIRECTIVE):
			p.parseDirective()
		default:
			return
		}
	}
}

// ---- Program structure ----

var typeKeywords = map[string]ast.BaseKind{
	"integer": ast.Integer,
	"real":    ast.Real,
	"double":  ast.Double,
	"logical": ast.Logical,
}

func (p *Parser) parseProgram() *ast.Program {
	p.skipNewlines()
	prog := &ast.Program{Name: "main", Pos: p.cur().Pos}
	if p.acceptKw("program") {
		prog.Name = p.expect(lexer.IDENT).Text
		p.endOfStmt()
	}
	p.skipNewlines()

	// Specification part: declarations until first executable statement.
	for {
		p.skipNewlines()
		if p.at(lexer.EOF) {
			break
		}
		if p.acceptKw("implicit") {
			p.expectKw("none")
			p.endOfStmt()
			continue
		}
		if kind, ok := p.atTypeDecl(); ok {
			prog.Decls = append(prog.Decls, p.parseDecl(kind)...)
			continue
		}
		break
	}

	// Executable part.
	prog.Body = p.parseBlock("end program", "end")
	switch {
	case p.matchEnd("end program"):
		if p.at(lexer.IDENT) {
			p.next() // optional program name
		}
	case p.matchEnd("end"):
	default:
		p.errorf("expected END PROGRAM, found %v", p.cur())
	}
	p.endOfStmt()
	p.skipNewlines()
	if !p.at(lexer.EOF) {
		p.errorf("unexpected tokens after END PROGRAM")
	}
	prog.Directives = p.directives
	return prog
}

// atTypeDecl reports whether the current statement begins a type
// declaration, returning its elemental kind. It distinguishes the
// declaration "real x" from an assignment to a variable named "real" by
// looking at the following token.
func (p *Parser) atTypeDecl() (ast.BaseKind, bool) {
	if !p.at(lexer.IDENT) {
		return 0, false
	}
	kind, ok := typeKeywords[p.cur().Text]
	if !ok {
		return 0, false
	}
	switch p.peek().Kind {
	case lexer.ASSIGN, lexer.LPAREN:
		return 0, false // "real = ..." or "real(x) = ..." is not a decl here
	}
	return kind, true
}

// parseDecl parses one type declaration statement, which may declare
// several entities:
//
//	INTEGER K(128,64), L(128)
//	integer, array(64,64) :: A, B
//	real, dimension(64), parameter :: W = 0
//	double precision m, n
func (p *Parser) parseDecl(kind ast.BaseKind) []*ast.Decl {
	pos := p.cur().Pos
	p.next() // type keyword
	if kind == ast.Double {
		p.expectKw("precision")
	}

	var commonDims []ast.Extent
	isParam := false
	// Attribute list: ", dimension(...)", ", array(...)", ", parameter".
	for p.at(lexer.COMMA) {
		p.next()
		attr := p.expect(lexer.IDENT).Text
		switch attr {
		case "dimension", "array":
			p.expect(lexer.LPAREN)
			commonDims = p.parseExtents()
			p.expect(lexer.RPAREN)
		case "parameter":
			isParam = true
		default:
			p.errorf("unknown declaration attribute %q", attr)
		}
	}
	p.accept(lexer.DCOLON) // optional "::"

	var decls []*ast.Decl
	for {
		name := p.expect(lexer.IDENT).Text
		d := &ast.Decl{Name: name, Kind: kind, Dims: commonDims, Param: isParam, Pos: pos}
		if p.at(lexer.LPAREN) { // entity-specific dims: K(128,64)
			p.next()
			d.Dims = p.parseExtents()
			p.expect(lexer.RPAREN)
		}
		if p.accept(lexer.ASSIGN) {
			d.Init = p.parseExpr()
		}
		decls = append(decls, d)
		if !p.accept(lexer.COMMA) {
			break
		}
	}
	p.endOfStmt()
	return decls
}

func (p *Parser) parseExtents() []ast.Extent {
	var out []ast.Extent
	for {
		e := ast.Extent{Hi: p.parseExpr()}
		if p.accept(lexer.COLON) {
			e.Lo = e.Hi
			e.Hi = p.parseExpr()
		}
		out = append(out, e)
		if !p.accept(lexer.COMMA) {
			break
		}
	}
	return out
}

// ---- Statements ----

// matchEnd reports whether the statement at the cursor begins with the
// given canonical end-form ("end do", "end if", "end where", "end forall",
// "end program", "else", "elsewhere", "else if", "end") and consumes it if
// so. Fused spellings (ENDDO, ENDIF, ...) are normalized.
func (p *Parser) matchEnd(form string) bool {
	if !p.at(lexer.IDENT) {
		return false
	}
	save := p.pos
	words := strings.Fields(form)
	first := p.cur().Text
	fused := strings.Join(words, "")
	if first == fused && len(words) > 1 {
		p.next()
		return true
	}
	if first != words[0] {
		return false
	}
	p.next()
	for _, w := range words[1:] {
		if !p.atKw(w) {
			p.pos = save
			return false
		}
		p.next()
	}
	// Plain "end" must not swallow "end do" etc.
	if form == "end" && p.at(lexer.IDENT) {
		switch p.cur().Text {
		case "do", "if", "where", "forall", "program":
			p.pos = save
			return false
		}
	}
	return true
}

// atEnd peeks matchEnd without consuming.
func (p *Parser) atEnd(form string) bool {
	save := p.pos
	ok := p.matchEnd(form)
	p.pos = save
	return ok
}

// parseBlock parses statements until one of the terminator forms appears
// at statement start. The terminator is left unconsumed.
func (p *Parser) parseBlock(terminators ...string) []ast.Stmt {
	var out []ast.Stmt
	for {
		p.skipNewlines()
		if p.at(lexer.EOF) {
			p.errorf("unexpected end of file, expected %q", terminators[0])
			return out
		}
		for _, t := range terminators {
			if p.atEnd(t) {
				return out
			}
		}
		pos := p.cur().Pos
		label, s := p.parseLabelledStmt()
		if label != "" {
			// A bare label may precede a statement that fails to parse
			// (s == nil); report at the label's own position then.
			at := pos
			if s != nil {
				at = s.Position()
			}
			p.rep.Errorf("parse", at, "unexpected statement label %s outside labelled DO", label)
		}
		if s != nil {
			out = append(out, s)
		}
	}
}

// parseLabelledStmt parses one statement, returning its numeric label (or
// "") and the statement.
func (p *Parser) parseLabelledStmt() (string, ast.Stmt) {
	label := ""
	if p.at(lexer.INT) {
		label = p.next().Text
	}
	return label, p.parseStmt()
}

func (p *Parser) parseStmt() ast.Stmt {
	pos := p.cur().Pos
	if !p.at(lexer.IDENT) {
		p.errorf("expected statement, found %v", p.cur())
		p.endOfStmt()
		return nil
	}
	switch p.cur().Text {
	case "if":
		return p.parseIf()
	case "do":
		return p.parseDo()
	case "where":
		// "where (m) x = y" single-statement vs block form — both start
		// with "where (", so disambiguation happens inside.
		return p.parseWhere()
	case "forall":
		return p.parseForall()
	case "call":
		return p.parseCall()
	case "print":
		return p.parsePrint()
	case "continue":
		p.next()
		p.endOfStmt()
		return &ast.Continue{Pos: pos}
	case "stop":
		p.next()
		if p.at(lexer.INT) || p.at(lexer.STRING) {
			p.next() // optional stop code, ignored
		}
		p.endOfStmt()
		return &ast.Stop{Pos: pos}
	}
	return p.parseAssign()
}

func (p *Parser) parseAssign() ast.Stmt {
	pos := p.cur().Pos
	lhs := p.parseDesignator()
	p.expect(lexer.ASSIGN)
	rhs := p.parseExpr()
	p.endOfStmt()
	return &ast.Assign{LHS: lhs, RHS: rhs, Pos: pos}
}

// parseDesignator parses an assignment target: NAME or NAME(subscripts).
func (p *Parser) parseDesignator() ast.Expr {
	tok := p.expect(lexer.IDENT)
	if !p.at(lexer.LPAREN) {
		return &ast.Ident{Name: tok.Text, Pos: tok.Pos}
	}
	return p.parseIndexRest(tok)
}

func (p *Parser) parseIf() ast.Stmt {
	pos := p.cur().Pos
	p.next() // "if"
	p.expect(lexer.LPAREN)
	cond := p.parseExpr()
	p.expect(lexer.RPAREN)
	if !p.acceptKw("then") {
		// Logical IF: "if (c) stmt".
		s := p.parseStmt()
		return &ast.If{Cond: cond, Then: []ast.Stmt{s}, Pos: pos}
	}
	p.endOfStmt()
	then := p.parseBlock("else if", "else", "end if")
	node := &ast.If{Cond: cond, Then: then, Pos: pos}
	switch {
	case p.matchEnd("else if"):
		// Desugar ELSE IF into a nested IF inside ELSE.
		p.expect(lexer.LPAREN)
		c2 := p.parseExpr()
		p.expect(lexer.RPAREN)
		p.expectKw("then")
		p.endOfStmt()
		inner := p.parseElseIfChain(c2)
		node.Else = []ast.Stmt{inner}
	case p.matchEnd("else"):
		p.endOfStmt()
		node.Else = p.parseBlock("end if")
		p.matchEnd("end if")
		p.endOfStmt()
	case p.matchEnd("end if"):
		p.endOfStmt()
	}
	return node
}

func (p *Parser) parseElseIfChain(cond ast.Expr) *ast.If {
	pos := p.cur().Pos
	then := p.parseBlock("else if", "else", "end if")
	node := &ast.If{Cond: cond, Then: then, Pos: pos}
	switch {
	case p.matchEnd("else if"):
		p.expect(lexer.LPAREN)
		c2 := p.parseExpr()
		p.expect(lexer.RPAREN)
		p.expectKw("then")
		p.endOfStmt()
		node.Else = []ast.Stmt{p.parseElseIfChain(c2)}
	case p.matchEnd("else"):
		p.endOfStmt()
		node.Else = p.parseBlock("end if")
		p.matchEnd("end if")
		p.endOfStmt()
	case p.matchEnd("end if"):
		p.endOfStmt()
	}
	return node
}

func (p *Parser) parseDo() ast.Stmt {
	pos := p.cur().Pos
	p.next() // "do"

	if p.atKw("while") {
		p.next()
		p.expect(lexer.LPAREN)
		cond := p.parseExpr()
		p.expect(lexer.RPAREN)
		p.endOfStmt()
		body := p.parseBlock("end do")
		p.matchEnd("end do")
		p.endOfStmt()
		return &ast.DoWhile{Cond: cond, Body: body, Pos: pos}
	}

	// Old-style labelled DO: "do 10 i = 1, n".
	label := ""
	if p.at(lexer.INT) {
		label = p.next().Text
	}

	v := p.expect(lexer.IDENT).Text
	p.expect(lexer.ASSIGN)
	from := p.parseExpr()
	p.expect(lexer.COMMA)
	to := p.parseExpr()
	var step ast.Expr
	if p.accept(lexer.COMMA) {
		step = p.parseExpr()
	}
	p.endOfStmt()

	loop := &ast.DoLoop{Var: v, From: from, To: to, Step: step, Pos: pos}
	if label == "" {
		loop.Body = p.parseBlock("end do")
		p.matchEnd("end do")
		p.endOfStmt()
		return loop
	}

	// Labelled body: parse statements until the statement carrying the
	// label; that statement (usually CONTINUE) is included in the body.
	for {
		p.skipNewlines()
		if p.at(lexer.EOF) {
			p.errorf("unexpected end of file inside DO %s", label)
			return loop
		}
		l, s := p.parseLabelledStmt()
		if s != nil {
			loop.Body = append(loop.Body, s)
		}
		if l == label {
			return loop
		}
		if l != "" {
			p.rep.Errorf("parse", pos, "unexpected label %s inside DO %s", l, label)
		}
	}
}

func (p *Parser) parseWhere() ast.Stmt {
	pos := p.cur().Pos
	p.next() // "where"
	p.expect(lexer.LPAREN)
	mask := p.parseExpr()
	p.expect(lexer.RPAREN)

	// Single-statement form: "where (m) a = b".
	if !p.at(lexer.NEWLINE) && !p.at(lexer.SEMI) && !p.at(lexer.EOF) {
		a, ok := p.parseAssign().(*ast.Assign)
		if !ok {
			return &ast.Where{Mask: mask, Pos: pos}
		}
		return &ast.Where{Mask: mask, Body: []*ast.Assign{a}, Pos: pos}
	}
	p.endOfStmt()

	node := &ast.Where{Mask: mask, Pos: pos}
	node.Body = p.parseWhereBody("elsewhere", "end where")
	if p.matchEnd("elsewhere") {
		p.endOfStmt()
		node.ElseBody = p.parseWhereBody("end where")
		if node.ElseBody == nil {
			node.ElseBody = []*ast.Assign{}
		}
	}
	p.matchEnd("end where")
	p.endOfStmt()
	return node
}

func (p *Parser) parseWhereBody(terminators ...string) []*ast.Assign {
	var out []*ast.Assign
	for _, s := range p.parseBlock(terminators...) {
		a, ok := s.(*ast.Assign)
		if !ok {
			p.rep.Errorf("parse", s.Position(), "only assignments may appear inside WHERE")
			continue
		}
		out = append(out, a)
	}
	return out
}

func (p *Parser) parseForall() ast.Stmt {
	pos := p.cur().Pos
	p.next() // "forall"
	p.expect(lexer.LPAREN)
	node := &ast.Forall{Pos: pos}
	for {
		// An index spec is "ident = lo:hi[:step]"; anything else is the
		// optional scalar mask expression, which must come last.
		if p.at(lexer.IDENT) && p.peek().Kind == lexer.ASSIGN {
			v := p.next().Text
			p.next() // '='
			lo := p.parseExpr()
			p.expect(lexer.COLON)
			hi := p.parseExpr()
			var step ast.Expr
			if p.accept(lexer.COLON) {
				step = p.parseExpr()
			}
			node.Indexes = append(node.Indexes, ast.ForallIndex{Var: v, Lo: lo, Hi: hi, Step: step})
		} else {
			node.Mask = p.parseExpr()
			break
		}
		if !p.accept(lexer.COMMA) {
			break
		}
	}
	p.expect(lexer.RPAREN)
	a, ok := p.parseAssign().(*ast.Assign)
	if !ok {
		return node
	}
	node.Assign = a
	return node
}

func (p *Parser) parseCall() ast.Stmt {
	pos := p.cur().Pos
	p.next() // "call"
	name := p.expect(lexer.IDENT).Text
	node := &ast.Call{Name: name, Pos: pos}
	if p.accept(lexer.LPAREN) {
		if !p.at(lexer.RPAREN) {
			for {
				node.Args = append(node.Args, p.parseExpr())
				if !p.accept(lexer.COMMA) {
					break
				}
			}
		}
		p.expect(lexer.RPAREN)
	}
	p.endOfStmt()
	return node
}

func (p *Parser) parsePrint() ast.Stmt {
	pos := p.cur().Pos
	p.next() // "print"
	p.expect(lexer.STAR)
	node := &ast.Print{Pos: pos}
	for p.accept(lexer.COMMA) {
		node.Items = append(node.Items, p.parseExpr())
	}
	p.endOfStmt()
	return node
}

// ---- Expressions ----
//
// Fortran 90 precedence, loosest to tightest:
//
//	.eqv. .neqv.  <  .or.  <  .and.  <  .not.  <  relational
//	  <  //  <  + - (binary and unary)  <  * /  <  **

func (p *Parser) parseExpr() ast.Expr { return p.parseEquiv() }

func (p *Parser) parseEquiv() ast.Expr {
	e := p.parseOr()
	for {
		pos := p.cur().Pos
		var op ast.BinOp
		switch p.cur().Kind {
		case lexer.EQV:
			op = ast.Eqv
		case lexer.NEQV:
			op = ast.Neqv
		default:
			return e
		}
		p.next()
		e = &ast.Binary{Op: op, L: e, R: p.parseOr(), Pos: pos}
	}
}

func (p *Parser) parseOr() ast.Expr {
	e := p.parseAnd()
	for p.at(lexer.OR) {
		pos := p.next().Pos
		e = &ast.Binary{Op: ast.Or, L: e, R: p.parseAnd(), Pos: pos}
	}
	return e
}

func (p *Parser) parseAnd() ast.Expr {
	e := p.parseNot()
	for p.at(lexer.AND) {
		pos := p.next().Pos
		e = &ast.Binary{Op: ast.And, L: e, R: p.parseNot(), Pos: pos}
	}
	return e
}

func (p *Parser) parseNot() ast.Expr {
	if p.at(lexer.NOT) {
		pos := p.next().Pos
		return &ast.Unary{Op: ast.Not, X: p.parseNot(), Pos: pos}
	}
	return p.parseRelational()
}

var relOps = map[lexer.Kind]ast.BinOp{
	lexer.EQ: ast.Eq, lexer.NE: ast.Ne,
	lexer.LT: ast.Lt, lexer.LE: ast.Le,
	lexer.GT: ast.Gt, lexer.GE: ast.Ge,
}

func (p *Parser) parseRelational() ast.Expr {
	e := p.parseAdditive()
	if op, ok := relOps[p.cur().Kind]; ok {
		pos := p.next().Pos
		return &ast.Binary{Op: op, L: e, R: p.parseAdditive(), Pos: pos}
	}
	return e
}

func (p *Parser) parseAdditive() ast.Expr {
	// Leading sign binds looser than * and /: -a*b is -(a*b).
	var lead *lexer.Token
	if p.at(lexer.MINUS) || p.at(lexer.PLUS) {
		t := p.next()
		lead = &t
	}
	e := p.parseMultiplicative()
	if lead != nil && lead.Kind == lexer.MINUS {
		e = &ast.Unary{Op: ast.Neg, X: e, Pos: lead.Pos}
	}
	for p.at(lexer.PLUS) || p.at(lexer.MINUS) {
		t := p.next()
		op := ast.Add
		if t.Kind == lexer.MINUS {
			op = ast.Sub
		}
		e = &ast.Binary{Op: op, L: e, R: p.parseMultiplicative(), Pos: t.Pos}
	}
	return e
}

func (p *Parser) parseMultiplicative() ast.Expr {
	e := p.parsePower()
	for p.at(lexer.STAR) || p.at(lexer.SLASH) {
		t := p.next()
		op := ast.Mul
		if t.Kind == lexer.SLASH {
			op = ast.Div
		}
		e = &ast.Binary{Op: op, L: e, R: p.parsePower(), Pos: t.Pos}
	}
	return e
}

func (p *Parser) parsePower() ast.Expr {
	e := p.parseUnary()
	if p.at(lexer.POW) {
		pos := p.next().Pos
		// ** is right-associative: a**b**c = a**(b**c). The exponent may
		// carry a sign: a**-2.
		var r ast.Expr
		if p.at(lexer.MINUS) {
			mpos := p.next().Pos
			r = &ast.Unary{Op: ast.Neg, X: p.parsePower(), Pos: mpos}
		} else {
			r = p.parsePower()
		}
		return &ast.Binary{Op: ast.Pow, L: e, R: r, Pos: pos}
	}
	return e
}

func (p *Parser) parseUnary() ast.Expr {
	if p.at(lexer.MINUS) {
		pos := p.next().Pos
		return &ast.Unary{Op: ast.Neg, X: p.parseUnary(), Pos: pos}
	}
	if p.at(lexer.PLUS) {
		p.next()
		return p.parseUnary()
	}
	return p.parsePrimary()
}

func (p *Parser) parsePrimary() ast.Expr {
	tok := p.cur()
	switch tok.Kind {
	case lexer.INT:
		p.next()
		v, err := strconv.ParseInt(tok.Text, 10, 64)
		if err != nil {
			p.errorf("bad integer literal %q", tok.Text)
		}
		return &ast.IntLit{Value: v, Pos: tok.Pos}
	case lexer.REAL:
		p.next()
		text := tok.Text
		isDouble := strings.ContainsAny(text, "dD")
		norm := strings.Map(func(r rune) rune {
			if r == 'd' || r == 'D' {
				return 'e'
			}
			return r
		}, text)
		v, err := strconv.ParseFloat(norm, 64)
		if err != nil {
			p.errorf("bad real literal %q", tok.Text)
		}
		return &ast.RealLit{Value: v, Double: isDouble, Text: text, Pos: tok.Pos}
	case lexer.TRUE:
		p.next()
		return &ast.LogicalLit{Value: true, Pos: tok.Pos}
	case lexer.FALSE:
		p.next()
		return &ast.LogicalLit{Value: false, Pos: tok.Pos}
	case lexer.STRING:
		p.next()
		return &ast.StringLit{Value: tok.Text, Pos: tok.Pos}
	case lexer.LPAREN:
		p.next()
		e := p.parseExpr()
		p.expect(lexer.RPAREN)
		return e
	case lexer.IDENT:
		p.next()
		if p.at(lexer.LPAREN) {
			return p.parseIndexRest(tok)
		}
		return &ast.Ident{Name: tok.Text, Pos: tok.Pos}
	}
	p.errorf("expected expression, found %v", tok)
	p.next()
	return &ast.IntLit{Value: 0, Pos: tok.Pos}
}

// parseIndexRest parses "(subscript-list)" after NAME, producing an Index
// node. Each subscript is a single expression, a section triplet, or a
// keyword argument KEY=expr (for intrinsic calls).
func (p *Parser) parseIndexRest(name lexer.Token) ast.Expr {
	p.expect(lexer.LPAREN)
	node := &ast.Index{Name: name.Text, Pos: name.Pos}
	if p.accept(lexer.RPAREN) {
		return node
	}
	for {
		key := ""
		if p.at(lexer.IDENT) && p.peek().Kind == lexer.ASSIGN {
			key = p.next().Text
			p.next() // '='
		}
		node.Subs = append(node.Subs, p.parseSubscript())
		node.Keys = append(node.Keys, key)
		if !p.accept(lexer.COMMA) {
			break
		}
	}
	p.expect(lexer.RPAREN)
	return node
}

func (p *Parser) parseSubscript() ast.Subscript {
	var s ast.Subscript
	// Leading ':' means full-range lower bound omitted.
	if p.at(lexer.COLON) {
		p.next()
	} else {
		s.Lo = p.parseExpr()
		if !p.accept(lexer.COLON) {
			s.Single = true
			return s
		}
	}
	// After the first colon: optional Hi, optional :Step.
	if !p.at(lexer.COLON) && !p.at(lexer.COMMA) && !p.at(lexer.RPAREN) {
		s.Hi = p.parseExpr()
	}
	if p.accept(lexer.COLON) {
		s.Step = p.parseExpr()
	}
	return s
}
