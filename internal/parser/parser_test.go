package parser

import (
	"strings"
	"testing"

	"f90y/internal/ast"
)

func parse(t *testing.T, src string) *ast.Program {
	t.Helper()
	prog, err := Parse("test.f90", src)
	if err != nil {
		t.Fatalf("parse error:\n%v\nsource:\n%s", err, src)
	}
	return prog
}

func wrap(body string) string {
	return "program t\n" + body + "\nend program t\n"
}

func TestPaperFortran77Example(t *testing.T) {
	// The §2.1 Fortran 77 loop nest, verbatim from the paper.
	src := `
      PROGRAM OLD
      INTEGER K(128,64), L(128)
      DO 10 I=1,128
         L(I) = 6
         DO 20 J=1,64
            K(I,J) = 2*K(I,J) + 5
20       CONTINUE
10    CONTINUE
      END PROGRAM OLD
`
	prog := parse(t, src)
	if prog.Name != "old" {
		t.Errorf("name = %q", prog.Name)
	}
	if len(prog.Decls) != 2 {
		t.Fatalf("decls = %d", len(prog.Decls))
	}
	k := prog.Decls[0]
	if k.Name != "k" || len(k.Dims) != 2 {
		t.Fatalf("bad decl %+v", k)
	}
	if len(prog.Body) != 1 {
		t.Fatalf("body = %d stmts", len(prog.Body))
	}
	outer, ok := prog.Body[0].(*ast.DoLoop)
	if !ok {
		t.Fatalf("expected DoLoop, got %T", prog.Body[0])
	}
	if outer.Var != "i" {
		t.Errorf("outer var %q", outer.Var)
	}
	// Body: assignment, inner loop (with CONTINUE inside), CONTINUE.
	if len(outer.Body) != 3 {
		t.Fatalf("outer body = %d stmts: %#v", len(outer.Body), outer.Body)
	}
	inner, ok := outer.Body[1].(*ast.DoLoop)
	if !ok || inner.Var != "j" {
		t.Fatalf("inner loop: %#v", outer.Body[1])
	}
}

func TestPaperFortran90Assignments(t *testing.T) {
	// §2.1: "L = 6" and "K = 2*K + 5".
	prog := parse(t, wrap("integer k(128,64), l(128)\nl = 6\nk = 2*k + 5"))
	if len(prog.Body) != 2 {
		t.Fatalf("body = %d", len(prog.Body))
	}
	a2 := prog.Body[1].(*ast.Assign)
	bin, ok := a2.RHS.(*ast.Binary)
	if !ok || bin.Op != ast.Add {
		t.Fatalf("rhs = %#v", a2.RHS)
	}
}

func TestPaperSectionAssignments(t *testing.T) {
	// §2.1: "L(32:64) = L(96:128)" and "K(32:64,:) = K(32:64,:)**2".
	prog := parse(t, wrap("integer k(128,64), l(128)\nl(32:64) = l(96:128)\nk(32:64,:) = k(32:64,:)**2"))
	a := prog.Body[0].(*ast.Assign)
	ix := a.LHS.(*ast.Index)
	if ix.Name != "l" || len(ix.Subs) != 1 || ix.Subs[0].Single {
		t.Fatalf("lhs = %#v", ix)
	}
	b := prog.Body[1].(*ast.Assign)
	kx := b.LHS.(*ast.Index)
	if len(kx.Subs) != 2 || kx.Subs[1].Lo != nil || kx.Subs[1].Single {
		t.Fatalf("k section = %#v", kx.Subs)
	}
	if pow, ok := b.RHS.(*ast.Binary); !ok || pow.Op != ast.Pow {
		t.Fatalf("rhs = %#v", b.RHS)
	}
}

func TestPaperFig10Fragment(t *testing.T) {
	// Fig. 10 source fragment with stride-2 sections.
	src := wrap(`integer, array(32,32) :: a, b
integer, array(32) :: c
integer :: n
a = n
b(1:32:2,:) = a(1:32:2,:)
c = n + 1
b(2:32:2,:) = 5*a(2:32:2,:)`)
	prog := parse(t, src)
	if len(prog.Body) != 4 {
		t.Fatalf("body = %d", len(prog.Body))
	}
	b1 := prog.Body[1].(*ast.Assign).LHS.(*ast.Index)
	if b1.Subs[0].Single || b1.Subs[0].Step == nil {
		t.Fatalf("stride section = %#v", b1.Subs[0])
	}
}

func TestPaperFig7Forall(t *testing.T) {
	// Fig. 7: FORALL (i=1:32, j=1:32) A(i,j) = i+j.
	src := wrap("integer, array(32,32) :: a\nforall (i=1:32, j=1:32) a(i,j) = i+j")
	prog := parse(t, src)
	f := prog.Body[0].(*ast.Forall)
	if len(f.Indexes) != 2 || f.Indexes[0].Var != "i" || f.Indexes[1].Var != "j" {
		t.Fatalf("indexes = %#v", f.Indexes)
	}
	if f.Mask != nil || f.Assign == nil {
		t.Fatalf("forall = %#v", f)
	}
}

func TestForallWithMask(t *testing.T) {
	src := wrap("integer, array(8,8) :: a\nforall (i=1:8, j=1:8, i /= j) a(i,j) = 0")
	f := parse(t, src).Body[0].(*ast.Forall)
	if f.Mask == nil {
		t.Fatal("mask missing")
	}
}

func TestWhereBlock(t *testing.T) {
	src := wrap(`real, array(16) :: a, b
where (a > 0)
  b = a
elsewhere
  b = -a
end where`)
	w := parse(t, src).Body[0].(*ast.Where)
	if len(w.Body) != 1 || len(w.ElseBody) != 1 {
		t.Fatalf("where = %#v", w)
	}
}

func TestWhereSingleStatement(t *testing.T) {
	src := wrap("real, array(16) :: a, b\nwhere (a > 0) b = a")
	w := parse(t, src).Body[0].(*ast.Where)
	if len(w.Body) != 1 || w.ElseBody != nil {
		t.Fatalf("where = %#v", w)
	}
}

func TestCshiftKeywordArgs(t *testing.T) {
	// Fig. 12: CSHIFT(v, DIM=1, SHIFT=-1).
	src := wrap("real, array(64,64) :: v, z\nz = cshift(v, dim=1, shift=-1)")
	a := parse(t, src).Body[0].(*ast.Assign)
	ix := a.RHS.(*ast.Index)
	if ix.Name != "cshift" || len(ix.Subs) != 3 {
		t.Fatalf("cshift = %#v", ix)
	}
	if ix.Keys[0] != "" || ix.Keys[1] != "dim" || ix.Keys[2] != "shift" {
		t.Fatalf("keys = %#v", ix.Keys)
	}
	sh := ix.Subs[2].Lo.(*ast.Unary)
	if sh.Op != ast.Neg {
		t.Fatalf("shift = %#v", ix.Subs[2].Lo)
	}
}

func TestIfElseChain(t *testing.T) {
	src := wrap(`integer :: i, r
if (i > 10) then
  r = 1
else if (i > 5) then
  r = 2
else if (i > 1) then
  r = 3
else
  r = 4
end if`)
	top := parse(t, src).Body[0].(*ast.If)
	mid := top.Else[0].(*ast.If)
	inner := mid.Else[0].(*ast.If)
	if len(inner.Else) != 1 {
		t.Fatalf("else-if chain malformed: %#v", inner)
	}
}

func TestLogicalIf(t *testing.T) {
	src := wrap("integer :: i\nif (i > 0) i = i - 1")
	ifs := parse(t, src).Body[0].(*ast.If)
	if len(ifs.Then) != 1 || ifs.Else != nil {
		t.Fatalf("logical if = %#v", ifs)
	}
}

func TestDoWhile(t *testing.T) {
	src := wrap("integer :: i\ni = 0\ndo while (i < 10)\n  i = i + 1\nend do")
	loop := parse(t, src).Body[1].(*ast.DoWhile)
	if len(loop.Body) != 1 {
		t.Fatalf("do while = %#v", loop)
	}
}

func TestDoWithStep(t *testing.T) {
	src := wrap("integer :: i, s\ndo i = 1, 32, 2\n  s = s + i\nend do")
	loop := parse(t, src).Body[0].(*ast.DoLoop)
	if loop.Step == nil {
		t.Fatal("step missing")
	}
}

func TestParameterDecl(t *testing.T) {
	src := "program t\ninteger, parameter :: n = 64\nreal, parameter :: g = 9.8\nreal :: x\nx = g\nend program t"
	prog := parse(t, src)
	if !prog.Decls[0].Param || prog.Decls[0].Init == nil {
		t.Fatalf("param decl = %#v", prog.Decls[0])
	}
}

func TestDoublePrecisionDecl(t *testing.T) {
	src := "program t\ndouble precision m, n\nm = n\nend program t"
	prog := parse(t, src)
	if prog.Decls[0].Kind != ast.Double || prog.Decls[1].Kind != ast.Double {
		t.Fatalf("decls = %#v", prog.Decls)
	}
}

func TestArrayAttrSyntax(t *testing.T) {
	// Old CM Fortran "array" attribute spelling used throughout the paper.
	src := "program t\ninteger, array(64,64) :: a, b\ninteger, dimension(64) :: c\na = b\nend program t"
	prog := parse(t, src)
	if len(prog.Decls) != 3 {
		t.Fatalf("decls = %d", len(prog.Decls))
	}
	if len(prog.Decls[0].Dims) != 2 || len(prog.Decls[2].Dims) != 1 {
		t.Fatalf("dims wrong: %#v", prog.Decls)
	}
}

func TestExplicitBounds(t *testing.T) {
	src := "program t\nreal, dimension(0:63) :: a\na = 0\nend program t"
	d := parse(t, src).Decls[0]
	if d.Dims[0].Lo == nil {
		t.Fatal("explicit lower bound lost")
	}
}

func TestPrecedence(t *testing.T) {
	// -a*b parses as -(a*b); a+b*c as a+(b*c); a**b**c as a**(b**c).
	src := wrap("real :: a, b, c, r\nr = -a*b\nr = a + b*c\nr = a**b**c\nr = a - b - c")
	prog := parse(t, src)
	neg := prog.Body[0].(*ast.Assign).RHS.(*ast.Unary)
	if _, ok := neg.X.(*ast.Binary); !ok {
		t.Fatalf("-a*b: %#v", neg)
	}
	add := prog.Body[1].(*ast.Assign).RHS.(*ast.Binary)
	if add.Op != ast.Add {
		t.Fatalf("a+b*c: %#v", add)
	}
	pow := prog.Body[2].(*ast.Assign).RHS.(*ast.Binary)
	if inner, ok := pow.R.(*ast.Binary); !ok || inner.Op != ast.Pow {
		t.Fatalf("a**b**c: %#v", pow)
	}
	sub := prog.Body[3].(*ast.Assign).RHS.(*ast.Binary)
	if l, ok := sub.L.(*ast.Binary); !ok || l.Op != ast.Sub {
		t.Fatalf("a-b-c not left assoc: %#v", sub)
	}
}

func TestLogicalPrecedence(t *testing.T) {
	src := wrap("logical :: p, q, r, s\ns = p .or. q .and. .not. r")
	or := parse(t, src).Body[0].(*ast.Assign).RHS.(*ast.Binary)
	if or.Op != ast.Or {
		t.Fatalf("top = %v", or.Op)
	}
	and := or.R.(*ast.Binary)
	if and.Op != ast.And {
		t.Fatalf("right = %v", and.Op)
	}
	if n, ok := and.R.(*ast.Unary); !ok || n.Op != ast.Not {
		t.Fatalf("not = %#v", and.R)
	}
}

func TestCallAndPrint(t *testing.T) {
	src := wrap("real :: x\ncall init(x, 3)\nprint *, 'x =', x")
	prog := parse(t, src)
	c := prog.Body[0].(*ast.Call)
	if c.Name != "init" || len(c.Args) != 2 {
		t.Fatalf("call = %#v", c)
	}
	pr := prog.Body[1].(*ast.Print)
	if len(pr.Items) != 2 {
		t.Fatalf("print = %#v", pr)
	}
}

func TestStopAndContinue(t *testing.T) {
	src := wrap("continue\nstop")
	prog := parse(t, src)
	if _, ok := prog.Body[0].(*ast.Continue); !ok {
		t.Fatalf("continue: %#v", prog.Body[0])
	}
	if _, ok := prog.Body[1].(*ast.Stop); !ok {
		t.Fatalf("stop: %#v", prog.Body[1])
	}
}

func TestSWEExcerpt(t *testing.T) {
	// The Fig. 12 SWE statement with continuation.
	src := wrap(`real, array(64,64) :: z, u, v, p, tmp0, tmp1
real :: fsdx, fsdy
z = (fsdx*(v - cshift(v, dim=1, shift=-1)) - &
     fsdy*(u - cshift(u, dim=2, shift=-1))) / (p + tmp0)`)
	a := parse(t, src).Body[0].(*ast.Assign)
	div := a.RHS.(*ast.Binary)
	if div.Op != ast.Div {
		t.Fatalf("top op = %v", div.Op)
	}
}

func TestParseErrors(t *testing.T) {
	cases := []string{
		"program t\nx = \nend program t",
		"program t\nif (x then\ny=1\nend if\nend program t",
		"program t\ndo i = 1\nend do\nend program t",
		"program t\nx = 1",                    // missing end
		"program t\ninteger :: \nend program", // missing name
	}
	for _, src := range cases {
		if _, err := Parse("bad.f90", src); err == nil {
			t.Errorf("expected error for:\n%s", src)
		}
	}
}

// TestFormatRoundTrip checks Format∘Parse is idempotent on a corpus of
// programs: parse, format, re-parse, re-format — the two formatted strings
// must be identical.
func TestFormatRoundTrip(t *testing.T) {
	corpus := []string{
		wrap("integer k(128,64), l(128)\nl = 6\nk = 2*k + 5"),
		wrap("integer k(128,64), l(128)\nl(32:64) = l(96:128)\nk(32:64,:) = k(32:64,:)**2"),
		wrap("integer, array(32,32) :: a\nforall (i=1:32, j=1:32) a(i,j) = i+j"),
		wrap("real, array(16) :: a, b\nwhere (a > 0)\n  b = a\nelsewhere\n  b = -a\nend where"),
		wrap("real, array(64,64) :: v, z\nz = cshift(v, dim=1, shift=-1)"),
		wrap("integer :: i, s\ndo i = 1, 32, 2\n  if (s < 100) then\n    s = s + i\n  else\n    s = s - i\n  end if\nend do"),
		wrap("real :: a, b, c, r\nr = (a + b)*c\nr = a**(b*c)\nr = -(a + b)"),
	}
	for _, src := range corpus {
		p1 := parse(t, src)
		f1 := ast.Format(p1)
		p2, err := Parse("fmt.f90", f1)
		if err != nil {
			t.Fatalf("re-parse failed: %v\nformatted:\n%s", err, f1)
		}
		f2 := ast.Format(p2)
		if f1 != f2 {
			t.Errorf("round trip not idempotent:\n--- first ---\n%s\n--- second ---\n%s", f1, f2)
		}
	}
}

func TestSemicolonStatements(t *testing.T) {
	src := wrap("integer :: x, y\nx = 1; y = 2")
	prog := parse(t, src)
	if len(prog.Body) != 2 {
		t.Fatalf("body = %d", len(prog.Body))
	}
}

func TestEmptyProgram(t *testing.T) {
	prog := parse(t, "program empty\nend program empty\n")
	if len(prog.Body) != 0 || len(prog.Decls) != 0 {
		t.Fatalf("empty program: %#v", prog)
	}
}

func TestEndWithoutProgramKeyword(t *testing.T) {
	prog := parse(t, "program t\ninteger :: i\ni = 1\nend\n")
	if len(prog.Body) != 1 {
		t.Fatalf("body = %d", len(prog.Body))
	}
}

func TestFusedEndSpellings(t *testing.T) {
	src := wrap("integer :: i, s\ndo i = 1, 4\n  if (i > 2) then\n    s = i\n  endif\nenddo")
	prog := parse(t, src)
	loop := prog.Body[0].(*ast.DoLoop)
	if len(loop.Body) != 1 {
		t.Fatalf("fused ends: %#v", loop)
	}
}

func TestDeepNesting(t *testing.T) {
	var b strings.Builder
	b.WriteString("program deep\ninteger :: s\n")
	const n = 30
	for i := 0; i < n; i++ {
		b.WriteString("if (s > 0) then\n")
	}
	b.WriteString("s = 1\n")
	for i := 0; i < n; i++ {
		b.WriteString("end if\n")
	}
	b.WriteString("end program deep\n")
	prog := parse(t, b.String())
	depth := 0
	s := prog.Body[0]
	for {
		ifs, ok := s.(*ast.If)
		if !ok {
			break
		}
		depth++
		if len(ifs.Then) == 0 {
			break
		}
		s = ifs.Then[0]
	}
	if depth != n {
		t.Fatalf("depth = %d, want %d", depth, n)
	}
}
