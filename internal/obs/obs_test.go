package obs

import (
	"bytes"
	"encoding/json"
	"flag"
	"os"
	"path/filepath"
	"testing"
	"time"
)

var updateGolden = flag.Bool("update", false, "rewrite golden files")

// fakeClock installs a deterministic monotonic clock that advances one
// millisecond per reading.
func fakeClock(c *Collector) {
	var t time.Duration
	c.now = func() time.Duration {
		t += time.Millisecond
		return t
	}
}

func TestSpansRecordMonotonicIntervals(t *testing.T) {
	c := NewCollector()
	fakeClock(c)
	outer := c.StartSpan("outer") // t=1ms
	inner := c.StartSpan("inner") // t=2ms
	inner.End()                   // t=3ms
	outer.End()                   // t=4ms

	spans := c.Spans()
	if len(spans) != 2 {
		t.Fatalf("got %d spans, want 2", len(spans))
	}
	if spans[0].Name != "outer" || spans[1].Name != "inner" {
		t.Fatalf("span order: %v", spans)
	}
	if spans[1].Start <= spans[0].Start {
		t.Errorf("inner must start after outer")
	}
	if spans[0].End <= spans[1].End {
		t.Errorf("outer must end after inner (LIFO nesting)")
	}
	if d := spans[1].Dur(); d != time.Millisecond {
		t.Errorf("inner dur = %v, want 1ms", d)
	}
}

func TestCountersAccumulate(t *testing.T) {
	c := NewCollector()
	c.Add("a", 2)
	c.Add("a", 3)
	c.Add("b", -1)
	if got := c.Counter("a"); got != 5 {
		t.Errorf("a = %v, want 5", got)
	}
	if got := c.Counter("b"); got != -1 {
		t.Errorf("b = %v, want -1", got)
	}
	if got := c.Counter("missing"); got != 0 {
		t.Errorf("missing = %v, want 0", got)
	}
}

func TestHistogramBuckets(t *testing.T) {
	c := NewCollector()
	for _, v := range []float64{0.5, 1, 2, 2.5, 1024} {
		c.Observe("h", v)
	}
	h := c.Histograms()["h"]
	if h.Count != 5 {
		t.Fatalf("count = %d, want 5", h.Count)
	}
	if h.Min != 0.5 || h.Max != 1024 {
		t.Errorf("min/max = %v/%v, want 0.5/1024", h.Min, h.Max)
	}
	if h.Sum != 0.5+1+2+2.5+1024 {
		t.Errorf("sum = %v", h.Sum)
	}
	// 0.5 and 1 land in bucket 0; 2 in bucket 1; 2.5 in bucket 2; 1024
	// in bucket 10.
	want := map[int]int64{0: 2, 1: 1, 2: 1, 10: 1}
	for b, n := range want {
		if h.Buckets[b] != n {
			t.Errorf("bucket %d = %d, want %d", b, h.Buckets[b], n)
		}
	}
}

func TestNilAndNopRecordersAreInert(t *testing.T) {
	// The nil-safe helpers must not panic and must return inert spans.
	s := Start(nil, "x")
	s.End()
	Add(nil, "c", 1)
	Observe(nil, "h", 1)

	var n Nop
	sp := n.StartSpan("x")
	sp.End()
	n.Add("c", 1)
	n.Observe("h", 1)
	Start(n, "y").End()
}

func TestReportGolden(t *testing.T) {
	c := NewCollector()
	fakeClock(c)
	compile := c.StartSpan("compile")
	lex := c.StartSpan("lex")
	lex.End()
	part := c.StartSpan("partition")
	pe := c.StartSpan("pe-codegen")
	pe.End()
	part.End()
	compile.End()
	open := c.StartSpan("exec")
	_ = open // deliberately left open

	c.Add("opt/fused-moves", 12)
	c.Add("exec/pe-cycles", 40320)
	c.Add("exec/gflops", 2.987)
	c.Observe("cm2/dispatch-cycles", 96)
	c.Observe("cm2/dispatch-cycles", 4032)

	got := c.Report()
	golden := filepath.Join("testdata", "report.golden")
	if *updateGolden {
		if err := os.WriteFile(golden, []byte(got), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	want, err := os.ReadFile(golden)
	if err != nil {
		t.Fatalf("read golden (run with -update to create): %v", err)
	}
	if got != string(want) {
		t.Errorf("report mismatch\n--- got ---\n%s--- want ---\n%s", got, want)
	}
}

func TestWriteTraceIsChromeLoadable(t *testing.T) {
	c := NewCollector()
	fakeClock(c)
	s1 := c.StartSpan("compile")
	s2 := c.StartSpan("lex")
	s2.End()
	s1.End()
	c.Add("exec/flops", 123)

	var buf bytes.Buffer
	if err := c.WriteTrace(&buf); err != nil {
		t.Fatal(err)
	}
	var tf struct {
		TraceEvents []struct {
			Name string         `json:"name"`
			Ph   string         `json:"ph"`
			Ts   float64        `json:"ts"`
			Dur  float64        `json:"dur"`
			Args map[string]any `json:"args"`
		} `json:"traceEvents"`
	}
	if err := json.Unmarshal(buf.Bytes(), &tf); err != nil {
		t.Fatalf("trace is not valid JSON: %v", err)
	}
	var xs, cs, ms int
	for _, e := range tf.TraceEvents {
		switch e.Ph {
		case "X":
			xs++
			if e.Dur <= 0 {
				t.Errorf("span %q has non-positive dur %v", e.Name, e.Dur)
			}
		case "C":
			cs++
			if e.Args["value"] != 123.0 {
				t.Errorf("counter args = %v", e.Args)
			}
		case "M":
			ms++
		}
	}
	// Metadata: process_name plus a thread_name for the default track.
	if xs != 2 || cs != 1 || ms != 2 {
		t.Errorf("event counts X/C/M = %d/%d/%d, want 2/1/2", xs, cs, ms)
	}
}
