package obs

import (
	"fmt"
	"sort"
	"strings"
	"time"
)

// Report renders the collector as a fixed-width text table: phases
// (spans) in start order with nesting shown by indentation, counters in
// sorted order, then histograms. It is the one formatting path shared by
// f90yc -v, f90yc -metrics, and f90yrun -metrics.
func (c *Collector) Report() string {
	spans := c.Spans()
	counters := c.Counters()
	hists := c.Histograms()
	events := c.Events()

	var b strings.Builder
	if len(spans) > 0 {
		b.WriteString("phases:\n")
		// Nesting depth: a span is a child of every earlier span whose
		// interval contains it (spans are opened and closed in LIFO
		// order within the single-threaded pipeline). An open span's
		// end is treated as infinity.
		end := func(r SpanRec) time.Duration {
			if r.End == 0 {
				return 1 << 62
			}
			return r.End
		}
		for i, s := range spans {
			depth := 0
			for j := 0; j < i; j++ {
				p := spans[j]
				if p.Start <= s.Start && end(p) > s.Start && end(p) >= end(s) {
					depth++
				}
			}
			name := strings.Repeat("  ", depth) + s.Name
			if s.End == 0 {
				fmt.Fprintf(&b, "  %-32s (open)\n", name)
				continue
			}
			fmt.Fprintf(&b, "  %-32s %12.0fµs\n", name, float64(s.Dur().Microseconds()))
		}
	}
	if len(counters) > 0 {
		b.WriteString("counters:\n")
		keys := make([]string, 0, len(counters))
		for k := range counters {
			keys = append(keys, k)
		}
		sort.Strings(keys)
		for _, k := range keys {
			fmt.Fprintf(&b, "  %-40s %s\n", k, formatCount(counters[k]))
		}
	}
	if len(events) > 0 {
		// Events are summarized per name (first/last occurrence time);
		// the full stream is in the trace export.
		b.WriteString("events:\n")
		type agg struct {
			n           int
			first, last time.Duration
		}
		byName := map[string]*agg{}
		var names []string
		for _, e := range events {
			a := byName[e.Name]
			if a == nil {
				a = &agg{first: e.At}
				byName[e.Name] = a
				names = append(names, e.Name)
			}
			a.n++
			a.last = e.At
		}
		sort.Strings(names)
		for _, name := range names {
			a := byName[name]
			fmt.Fprintf(&b, "  %-40s n=%d first=%.0fµs last=%.0fµs\n",
				name, a.n, float64(a.first.Microseconds()), float64(a.last.Microseconds()))
		}
		if d := c.EventsDropped(); d > 0 {
			fmt.Fprintf(&b, "  (%d events dropped past the log bound)\n", d)
		}
	}
	if len(hists) > 0 {
		b.WriteString("histograms:\n")
		keys := make([]string, 0, len(hists))
		for k := range hists {
			keys = append(keys, k)
		}
		sort.Strings(keys)
		for _, k := range keys {
			h := hists[k]
			fmt.Fprintf(&b, "  %-40s n=%d min=%s max=%s mean=%s\n",
				k, h.Count, formatCount(h.Min), formatCount(h.Max), formatCount(h.Mean()))
		}
	}
	return b.String()
}

// formatCount prints integers without a fraction and everything else
// with a short fixed precision.
func formatCount(v float64) string {
	if v == float64(int64(v)) {
		return fmt.Sprintf("%d", int64(v))
	}
	return fmt.Sprintf("%.2f", v)
}
