package obs

import (
	"bytes"
	"encoding/json"
	"os"
	"path/filepath"
	"testing"
)

// traceCollector records a deterministic mix of everything WriteTrace
// renders: nested default-track spans, per-worker tracked spans, a
// multi-attribute event, counters, and a histogram sample.
func traceCollector() *Collector {
	c := NewCollector()
	fakeClock(c)
	root := c.StartSpan("exec")             // t=1ms
	w1 := c.StartSpanTrack("worker/Pk0", 1) // t=2ms
	w2 := c.StartSpanTrack("worker/Pk0", 2) // t=3ms
	ch := c.StartSpanTrack("chunk/Pk0", 1)  // t=4ms
	ch.End()                                // t=5ms
	w2.End()                                // t=6ms
	w1.End()                                // t=7ms
	root.End()                              // t=8ms
	c.Event("fault/inject", map[string]float64{"pe": 3, "cycle": 96, "kind": 1})
	c.Add("execpool/chunks", 7)
	c.Add("exec/pe-cycles", 1476)
	c.Observe("execpool/chunk-ns", 123)
	return c
}

// TestWriteTraceByteStable pins WriteTrace's determinism: exporting the
// same collector twice yields identical bytes (argument key order and
// counter order are fixed by construction, not by map iteration), and
// the rendering matches the committed golden file.
func TestWriteTraceByteStable(t *testing.T) {
	c := traceCollector()
	var a, b bytes.Buffer
	if err := c.WriteTrace(&a); err != nil {
		t.Fatal(err)
	}
	if err := c.WriteTrace(&b); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(a.Bytes(), b.Bytes()) {
		t.Errorf("two exports of the same collector differ:\n--- first ---\n%s--- second ---\n%s", a.String(), b.String())
	}

	golden := filepath.Join("testdata", "trace.golden")
	if *updateGolden {
		if err := os.WriteFile(golden, a.Bytes(), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	want, err := os.ReadFile(golden)
	if err != nil {
		t.Fatalf("read golden (run with -update to create): %v", err)
	}
	if !bytes.Equal(a.Bytes(), want) {
		t.Errorf("trace mismatch\n--- got ---\n%s--- want ---\n%s", a.String(), want)
	}
}

// TestWriteTraceWorkerTracks asserts tracked spans land on their own
// named thread lanes: one thread_name metadata record per track, and
// every span's tid matching its track's.
func TestWriteTraceWorkerTracks(t *testing.T) {
	var buf bytes.Buffer
	if err := traceCollector().WriteTrace(&buf); err != nil {
		t.Fatal(err)
	}
	var tf struct {
		TraceEvents []struct {
			Name string         `json:"name"`
			Ph   string         `json:"ph"`
			Tid  int            `json:"tid"`
			Args map[string]any `json:"args"`
		} `json:"traceEvents"`
	}
	if err := json.Unmarshal(buf.Bytes(), &tf); err != nil {
		t.Fatalf("trace is not valid JSON: %v", err)
	}

	threadNames := map[int]string{}
	spanTids := map[string]int{}
	for _, e := range tf.TraceEvents {
		switch {
		case e.Ph == "M" && e.Name == "thread_name":
			threadNames[e.Tid], _ = e.Args["name"].(string)
		case e.Ph == "X":
			spanTids[e.Name] = e.Tid
		}
	}
	want := map[int]string{1: "main", 2: "worker 1", 3: "worker 2"}
	for tid, name := range want {
		if threadNames[tid] != name {
			t.Errorf("thread_name[tid=%d] = %q, want %q", tid, threadNames[tid], name)
		}
	}
	if spanTids["exec"] != 1 {
		t.Errorf("exec span tid = %d, want 1 (main)", spanTids["exec"])
	}
	if spanTids["chunk/Pk0"] != 2 {
		t.Errorf("chunk span tid = %d, want 2 (worker 1)", spanTids["chunk/Pk0"])
	}
}
