package obs

import (
	"encoding/json"
	"fmt"
	"io"
	"sort"
)

// traceEvent is one Chrome trace_event record. The format is documented
// in the Trace Event Format spec; "X" is a complete event (ts + dur),
// "C" a counter sample, "M" process/thread metadata. Timestamps are in
// microseconds. Args is pre-rendered JSON so the argument key order is
// fixed by construction, keeping WriteTrace output byte-stable.
type traceEvent struct {
	Name string          `json:"name"`
	Ph   string          `json:"ph"`
	Ts   float64         `json:"ts"`
	Dur  float64         `json:"dur,omitempty"`
	Pid  int             `json:"pid"`
	Tid  int             `json:"tid"`
	S    string          `json:"s,omitempty"` // instant-event scope
	Args json.RawMessage `json:"args,omitempty"`
}

type traceFile struct {
	TraceEvents     []traceEvent `json:"traceEvents"`
	DisplayTimeUnit string       `json:"displayTimeUnit"`
}

// argsJSON renders an args object with the given keys in the given
// order. Values marshal individually, so any marshalable value works.
func argsJSON(keys []string, get func(string) any) json.RawMessage {
	out := []byte{'{'}
	for i, k := range keys {
		if i > 0 {
			out = append(out, ',')
		}
		kb, _ := json.Marshal(k)
		vb, err := json.Marshal(get(k))
		if err != nil {
			vb = []byte("null")
		}
		out = append(out, kb...)
		out = append(out, ':')
		out = append(out, vb...)
	}
	return append(out, '}')
}

// attrArgs renders numeric event attributes with sorted keys: the
// explicit ordering (rather than reliance on encoding/json's map-key
// sorting) is what the byte-stability golden test pins down.
func attrArgs(attrs map[string]float64) json.RawMessage {
	if len(attrs) == 0 {
		return nil
	}
	keys := make([]string, 0, len(attrs))
	for k := range attrs {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return argsJSON(keys, func(k string) any { return attrs[k] })
}

func oneArg(key string, val any) json.RawMessage {
	return argsJSON([]string{key}, func(string) any { return val })
}

// trackTid maps a span track to a trace thread id. Track 0 (the default
// lane) is tid 1; executor workers (track 1..N) become tids 2..N+1.
func trackTid(track int) int { return track + 1 }

// trackName is the lane label shown by the trace viewer.
func trackName(track int) string {
	if track == 0 {
		return "main"
	}
	return fmt.Sprintf("worker %d", track)
}

// WriteTrace exports the collector as Chrome trace_event JSON: every
// span becomes a complete ("X") event on its track's thread lane —
// nested phases nest in the timeline, executor pool workers appear as
// separate lanes — and every counter becomes a counter ("C") sample at
// the end of the trace. The output is byte-stable: exporting the same
// collector twice produces identical bytes. Load the output at
// chrome://tracing or https://ui.perfetto.dev.
func (c *Collector) WriteTrace(w io.Writer) error {
	spans := c.Spans()
	counters := c.Counters()

	tf := traceFile{DisplayTimeUnit: "ms"}
	tf.TraceEvents = append(tf.TraceEvents, traceEvent{
		Name: "process_name", Ph: "M", Pid: 1, Tid: 1,
		Args: oneArg("name", "f90y"),
	})

	// Name every thread lane the spans use, in tid order.
	tracks := map[int]bool{0: true}
	for _, s := range spans {
		tracks[s.Track] = true
	}
	trackList := make([]int, 0, len(tracks))
	for t := range tracks {
		trackList = append(trackList, t)
	}
	sort.Ints(trackList)
	for _, t := range trackList {
		tf.TraceEvents = append(tf.TraceEvents, traceEvent{
			Name: "thread_name", Ph: "M", Pid: 1, Tid: trackTid(t),
			Args: oneArg("name", trackName(t)),
		})
	}

	var last float64
	for _, s := range spans {
		ts := float64(s.Start.Nanoseconds()) / 1e3
		dur := float64(s.Dur().Nanoseconds()) / 1e3
		if end := ts + dur; end > last {
			last = end
		}
		tf.TraceEvents = append(tf.TraceEvents, traceEvent{
			Name: s.Name, Ph: "X", Ts: ts, Dur: dur, Pid: 1, Tid: trackTid(s.Track),
		})
	}

	// Events render as instant ("i") marks on the timeline.
	for _, e := range c.Events() {
		ts := float64(e.At.Nanoseconds()) / 1e3
		if ts > last {
			last = ts
		}
		tf.TraceEvents = append(tf.TraceEvents, traceEvent{
			Name: e.Name, Ph: "i", Ts: ts, Pid: 1, Tid: 1, S: "t", Args: attrArgs(e.Attrs),
		})
	}

	keys := make([]string, 0, len(counters))
	for k := range counters {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	for _, k := range keys {
		tf.TraceEvents = append(tf.TraceEvents, traceEvent{
			Name: k, Ph: "C", Ts: last, Pid: 1, Tid: 1,
			Args: oneArg("value", counters[k]),
		})
	}

	enc := json.NewEncoder(w)
	enc.SetIndent("", " ")
	return enc.Encode(tf)
}
