package obs

import (
	"encoding/json"
	"io"
	"sort"
)

// traceEvent is one Chrome trace_event record. The format is documented
// in the Trace Event Format spec; "X" is a complete event (ts + dur),
// "C" a counter sample, "M" process/thread metadata. Timestamps are in
// microseconds.
type traceEvent struct {
	Name string         `json:"name"`
	Ph   string         `json:"ph"`
	Ts   float64        `json:"ts"`
	Dur  float64        `json:"dur,omitempty"`
	Pid  int            `json:"pid"`
	Tid  int            `json:"tid"`
	S    string         `json:"s,omitempty"` // instant-event scope
	Args map[string]any `json:"args,omitempty"`
}

type traceFile struct {
	TraceEvents     []traceEvent `json:"traceEvents"`
	DisplayTimeUnit string       `json:"displayTimeUnit"`
}

// WriteTrace exports the collector as Chrome trace_event JSON: every
// span becomes a complete ("X") event — nested phases nest in the
// timeline — and every counter becomes a counter ("C") sample at the
// end of the trace. Load the output at chrome://tracing or
// https://ui.perfetto.dev.
func (c *Collector) WriteTrace(w io.Writer) error {
	spans := c.Spans()
	counters := c.Counters()

	tf := traceFile{DisplayTimeUnit: "ms"}
	tf.TraceEvents = append(tf.TraceEvents, traceEvent{
		Name: "process_name", Ph: "M", Pid: 1, Tid: 1,
		Args: map[string]any{"name": "f90y"},
	})

	var last float64
	for _, s := range spans {
		ts := float64(s.Start.Nanoseconds()) / 1e3
		dur := float64(s.Dur().Nanoseconds()) / 1e3
		if end := ts + dur; end > last {
			last = end
		}
		tf.TraceEvents = append(tf.TraceEvents, traceEvent{
			Name: s.Name, Ph: "X", Ts: ts, Dur: dur, Pid: 1, Tid: 1,
		})
	}

	// Events render as instant ("i") marks on the timeline.
	for _, e := range c.Events() {
		ts := float64(e.At.Nanoseconds()) / 1e3
		if ts > last {
			last = ts
		}
		args := make(map[string]any, len(e.Attrs))
		for k, v := range e.Attrs {
			args[k] = v
		}
		tf.TraceEvents = append(tf.TraceEvents, traceEvent{
			Name: e.Name, Ph: "i", Ts: ts, Pid: 1, Tid: 1, S: "t", Args: args,
		})
	}

	keys := make([]string, 0, len(counters))
	for k := range counters {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	for _, k := range keys {
		tf.TraceEvents = append(tf.TraceEvents, traceEvent{
			Name: k, Ph: "C", Ts: last, Pid: 1, Tid: 1,
			Args: map[string]any{"value": counters[k]},
		})
	}

	enc := json.NewEncoder(w)
	enc.SetIndent("", " ")
	return enc.Encode(tf)
}
