// Package obs is the compiler/machine observability layer: spans with
// monotonic timestamps for every pipeline phase, named counters for the
// stats each phase already computes, and histograms for per-dispatch
// cycle distributions. It is dependency-free (stdlib only) and designed
// so that an instrumented call site costs one nil check when no recorder
// is attached — the hot paths of the CM/2 simulator run unchanged.
//
// The package follows the paper's own methodology (§6): performance
// claims rest on *attribution* — instruction counts, call-overhead
// amortisation, compute-versus-communication balance — so every layer of
// the pipeline reports what it did through the same Recorder, and every
// perf experiment can prove its win from emitted telemetry rather than
// ad-hoc prints.
//
// Three consumers are provided:
//
//   - Collector: the recording implementation, safe for concurrent use;
//   - (*Collector).Report: a text rendering of phases, counters, and
//     histograms (the single formatting path for the CLIs' -v/-metrics);
//   - (*Collector).WriteTrace: a Chrome trace_event JSON exporter
//     (load the file at chrome://tracing or https://ui.perfetto.dev).
package obs

import (
	"sync"
	"time"
)

// Recorder receives telemetry from instrumented code. Implementations
// must be safe for concurrent use. Instrumented code should not call a
// possibly-nil Recorder directly; it uses the nil-safe package helpers
// Start, Add, and Observe instead.
type Recorder interface {
	// StartSpan opens a named span at the current monotonic time. The
	// returned Span is closed with End.
	StartSpan(name string) Span
	// Add increments the named counter by delta.
	Add(name string, delta float64)
	// Observe records one sample into the named histogram.
	Observe(name string, value float64)
}

// Start opens a span on r; a nil r yields a no-op Span. This is the form
// instrumented code uses:
//
//	defer obs.Start(rec, "partition").End()
func Start(r Recorder, name string) Span {
	if r == nil {
		return Span{}
	}
	return r.StartSpan(name)
}

// Add increments a counter on r; nil r is a no-op.
func Add(r Recorder, name string, delta float64) {
	if r != nil {
		r.Add(name, delta)
	}
}

// Observe records a histogram sample on r; nil r is a no-op.
func Observe(r Recorder, name string, value float64) {
	if r != nil {
		r.Observe(name, value)
	}
}

// EventRecorder is an optional Recorder extension for discrete
// occurrences that are neither durations (spans) nor monotone totals
// (counters) — e.g. one injected machine fault. Recorders that do not
// implement it silently drop events.
type EventRecorder interface {
	// Event records one named occurrence with numeric attributes.
	Event(name string, attrs map[string]float64)
}

// Event records a discrete occurrence on r; recorders without event
// support (and nil r) drop it.
func Event(r Recorder, name string, attrs map[string]float64) {
	if er, ok := r.(EventRecorder); ok {
		er.Event(name, attrs)
	}
}

// TrackSpanRecorder is an optional Recorder extension for spans that
// belong to a specific track — a logical thread lane in the exported
// Chrome trace. The sharded executor assigns one track per pool worker
// so the trace shows the pool's shape. Recorders that do not implement
// it record the span on the default track.
type TrackSpanRecorder interface {
	// StartSpanTrack opens a named span on the given track (0 is the
	// default track; workers use 1..N).
	StartSpanTrack(name string, track int) Span
}

// StartTrack opens a span on a specific track; recorders without track
// support fall back to StartSpan, and a nil r yields a no-op Span.
func StartTrack(r Recorder, name string, track int) Span {
	if tr, ok := r.(TrackSpanRecorder); ok {
		return tr.StartSpanTrack(name, track)
	}
	if r == nil {
		return Span{}
	}
	return r.StartSpan(name)
}

// Span is one open interval of work. The zero Span (and any Span from a
// Nop recorder or nil Recorder) is inert: End does nothing.
type Span struct {
	c   *Collector
	idx int
}

// End closes the span at the current monotonic time.
func (s Span) End() {
	if s.c == nil {
		return
	}
	s.c.endSpan(s.idx)
}

// Nop is a Recorder that records nothing. It exists for callers that
// want an always-non-nil Recorder; instrumented code reached through the
// package helpers accepts nil just as well.
type Nop struct{}

// StartSpan returns an inert Span.
func (Nop) StartSpan(string) Span { return Span{} }

// Add does nothing.
func (Nop) Add(string, float64) {}

// Observe does nothing.
func (Nop) Observe(string, float64) {}

// EventRec is one recorded occurrence: a name, a monotonic offset from
// the collector's epoch, and numeric attributes.
type EventRec struct {
	Name  string
	At    time.Duration
	Attrs map[string]float64
}

// SpanRec is one completed (or still-open) span: times are monotonic
// offsets from the collector's epoch. End is zero while the span is
// open. Track is the logical thread lane (0 = default; executor pool
// workers record on 1..N).
type SpanRec struct {
	Name  string
	Start time.Duration
	End   time.Duration
	Track int
}

// Dur is the span length (zero while open).
func (s SpanRec) Dur() time.Duration {
	if s.End < s.Start {
		return 0
	}
	return s.End - s.Start
}

// HistBuckets is the number of power-of-two histogram buckets.
const HistBuckets = 64

// Hist is a power-of-two-bucketed histogram: bucket 0 counts samples
// <= 1, bucket i counts samples in (2^(i-1), 2^i].
type Hist struct {
	Count   int64
	Sum     float64
	Min     float64
	Max     float64
	Buckets [HistBuckets]int64
}

// Mean is the sample mean (zero with no samples).
func (h *Hist) Mean() float64 {
	if h.Count == 0 {
		return 0
	}
	return h.Sum / float64(h.Count)
}

func bucketOf(v float64) int {
	b := 0
	for x := 1.0; x < v && b < HistBuckets-1; x *= 2 {
		b++
	}
	return b
}

// Collector is the recording Recorder. The zero value is not usable;
// construct with NewCollector.
type Collector struct {
	mu            sync.Mutex
	epoch         time.Time
	now           func() time.Duration // monotonic offset from epoch
	spans         []SpanRec
	counters      map[string]float64
	hists         map[string]*Hist
	events        []EventRec
	eventsDropped int64
}

// maxEvents bounds the collector's event log; past it, Event only
// counts the overflow.
const maxEvents = 65536

// maxSpans bounds the collector's span log: per-chunk executor spans on
// a long run could otherwise grow without limit. Past the bound,
// StartSpan returns an inert Span.
const maxSpans = 1 << 18

// NewCollector returns an empty collector whose epoch is now.
func NewCollector() *Collector {
	c := &Collector{
		epoch:    time.Now(),
		counters: map[string]float64{},
		hists:    map[string]*Hist{},
	}
	c.now = func() time.Duration { return time.Since(c.epoch) }
	return c
}

// StartSpan implements Recorder.
func (c *Collector) StartSpan(name string) Span {
	return c.StartSpanTrack(name, 0)
}

// StartSpanTrack implements TrackSpanRecorder.
func (c *Collector) StartSpanTrack(name string, track int) Span {
	c.mu.Lock()
	defer c.mu.Unlock()
	if len(c.spans) >= maxSpans {
		return Span{}
	}
	c.spans = append(c.spans, SpanRec{Name: name, Start: c.now(), Track: track})
	return Span{c: c, idx: len(c.spans) - 1}
}

func (c *Collector) endSpan(idx int) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if idx >= 0 && idx < len(c.spans) && c.spans[idx].End == 0 {
		c.spans[idx].End = c.now()
	}
}

// Add implements Recorder.
func (c *Collector) Add(name string, delta float64) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.counters[name] += delta
}

// Observe implements Recorder.
func (c *Collector) Observe(name string, value float64) {
	c.mu.Lock()
	defer c.mu.Unlock()
	h := c.hists[name]
	if h == nil {
		h = &Hist{Min: value, Max: value}
		c.hists[name] = h
	}
	if value < h.Min || h.Count == 0 {
		h.Min = value
	}
	if value > h.Max || h.Count == 0 {
		h.Max = value
	}
	h.Count++
	h.Sum += value
	h.Buckets[bucketOf(value)]++
}

// Event implements EventRecorder: it timestamps and records one
// occurrence, bounded at maxEvents entries.
func (c *Collector) Event(name string, attrs map[string]float64) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if len(c.events) >= maxEvents {
		c.eventsDropped++
		return
	}
	var cp map[string]float64
	if len(attrs) > 0 {
		cp = make(map[string]float64, len(attrs))
		for k, v := range attrs {
			cp[k] = v
		}
	}
	c.events = append(c.events, EventRec{Name: name, At: c.now(), Attrs: cp})
}

// Events returns the recorded events in record order.
func (c *Collector) Events() []EventRec {
	c.mu.Lock()
	defer c.mu.Unlock()
	out := make([]EventRec, len(c.events))
	copy(out, c.events)
	return out
}

// EventsDropped is the number of events past the maxEvents bound.
func (c *Collector) EventsDropped() int64 {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.eventsDropped
}

// Spans returns the recorded spans in start order.
func (c *Collector) Spans() []SpanRec {
	c.mu.Lock()
	defer c.mu.Unlock()
	out := make([]SpanRec, len(c.spans))
	copy(out, c.spans)
	return out
}

// Counters returns a copy of the counter map.
func (c *Collector) Counters() map[string]float64 {
	c.mu.Lock()
	defer c.mu.Unlock()
	out := make(map[string]float64, len(c.counters))
	for k, v := range c.counters {
		out[k] = v
	}
	return out
}

// Counter returns one counter's value (zero if never incremented).
func (c *Collector) Counter(name string) float64 {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.counters[name]
}

// Histograms returns a copy of the histogram map.
func (c *Collector) Histograms() map[string]*Hist {
	c.mu.Lock()
	defer c.mu.Unlock()
	out := make(map[string]*Hist, len(c.hists))
	for k, v := range c.hists {
		h := *v
		out[k] = &h
	}
	return out
}
