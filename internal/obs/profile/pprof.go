package profile

import (
	"compress/gzip"
	"io"
	"math"
)

// This file hand-encodes the pprof profile.proto wire format so the
// repo stays stdlib-only: no generated code, no protobuf dependency.
// Only the subset `go tool pprof` needs is emitted. Field numbers are
// from github.com/google/pprof/proto/profile.proto:
//
//	Profile:  1 sample_type (ValueType), 2 sample (Sample),
//	          3 mapping (Mapping), 4 location (Location),
//	          5 function (Function), 6 string_table,
//	          9 time_nanos, 11 period_type (ValueType), 12 period
//	ValueType: 1 type (strtab index), 2 unit (strtab index)
//	Sample:    1 location_id (repeated), 2 value (repeated), 3 label
//	Label:     1 key (strtab), 2 str (strtab)
//	Location:  1 id, 2 mapping_id, 3 address, 4 line (Line)
//	Line:      1 function_id, 2 line
//	Function:  1 id, 2 name (strtab), 3 system_name (strtab),
//	           4 filename (strtab), 5 start_line
//	Mapping:   1 id, 5 filename (strtab)

// pbuf is a minimal protobuf writer: varints and length-delimited
// fields are all the profile format needs.
type pbuf struct{ b []byte }

func (p *pbuf) uvarint(x uint64) {
	for x >= 0x80 {
		p.b = append(p.b, byte(x)|0x80)
		x >>= 7
	}
	p.b = append(p.b, byte(x))
}

// tag writes a field key: (field number << 3) | wire type.
func (p *pbuf) tag(field, wire int) { p.uvarint(uint64(field)<<3 | uint64(wire)) }

// varintField writes an int64 field with wire type 0.
func (p *pbuf) varintField(field int, v int64) {
	if v == 0 {
		return
	}
	p.tag(field, 0)
	p.uvarint(uint64(v))
}

// bytesField writes a length-delimited field (wire type 2).
func (p *pbuf) bytesField(field int, b []byte) {
	p.tag(field, 2)
	p.uvarint(uint64(len(b)))
	p.b = append(p.b, b...)
}

func (p *pbuf) stringField(field int, s string) {
	p.tag(field, 2)
	p.uvarint(uint64(len(s)))
	p.b = append(p.b, s...)
}

// strtab interns strings for the profile's string table. Index 0 is
// required to be the empty string.
type strtab struct {
	idx  map[string]int64
	list []string
}

func newStrtab() *strtab {
	return &strtab{idx: map[string]int64{"": 0}, list: []string{""}}
}

func (t *strtab) of(s string) int64 {
	if i, ok := t.idx[s]; ok {
		return i
	}
	i := int64(len(t.list))
	t.idx[s] = i
	t.list = append(t.list, s)
	return i
}

func valueType(typ, unit int64) []byte {
	var p pbuf
	p.varintField(1, typ)
	p.varintField(2, unit)
	return p.b
}

// WritePprof emits the attribution as a gzipped pprof protobuf profile
// with one sample per (routine, file, line, class) cell: sample value is
// the modeled cycle count, location is the Fortran file:line inside a
// function named after the PEAC routine, and the cycle class rides along
// as a string label ("class") so `go tool pprof -tagfocus` can slice by
// it. time_nanos is fixed at zero so equal inputs produce byte-identical
// profiles.
func (p *Profile) WritePprof(w io.Writer) error {
	tab := newStrtab()
	var out pbuf

	cycles := tab.of("cycles")
	count := tab.of("count")
	classKey := tab.of("class")

	out.bytesField(1, valueType(cycles, count)) // sample_type

	// Functions dedup by (routine, filename); locations by (function,
	// line). IDs are assigned in the canonical ref order, so the encoded
	// profile is deterministic.
	type funcKey struct {
		name, file string
	}
	type locKey struct {
		fn   uint64
		line int
	}
	funcIDs := map[funcKey]uint64{}
	locIDs := map[locKey]uint64{}
	var funcs []funcKey
	var locs []locKey

	refs := p.sortedRefs()
	type sample struct {
		loc   uint64
		val   int64
		class int64
	}
	samples := make([]sample, 0, len(refs))
	for _, ref := range refs {
		fk := funcKey{name: ref.Routine, file: ref.File}
		fid, ok := funcIDs[fk]
		if !ok {
			fid = uint64(len(funcs) + 1)
			funcIDs[fk] = fid
			funcs = append(funcs, fk)
		}
		lk := locKey{fn: fid, line: ref.Line}
		lid, ok := locIDs[lk]
		if !ok {
			lid = uint64(len(locs) + 1)
			locIDs[lk] = lid
			locs = append(locs, lk)
		}
		samples = append(samples, sample{
			loc:   lid,
			val:   int64(math.Round(p.Lines[ref])),
			class: tab.of(ref.Class),
		})
	}

	for _, s := range samples {
		var sp pbuf
		sp.varintField(1, int64(s.loc)) // location_id
		sp.tag(2, 0)                    // value (cycles) — emitted even when 0
		sp.uvarint(uint64(s.val))
		var lb pbuf
		lb.varintField(1, classKey)
		lb.varintField(2, s.class)
		sp.bytesField(3, lb.b)
		out.bytesField(2, sp.b)
	}

	// One synthetic mapping: the "binary" is the analytic machine model.
	// has_functions/has_filenames/has_line_numbers (fields 7-9) tell
	// pprof the profile is fully symbolized, so it does not try to
	// symbolize a binary that does not exist.
	{
		var mp pbuf
		mp.varintField(1, 1)
		mp.varintField(5, tab.of("f90y-model"))
		mp.varintField(7, 1)
		mp.varintField(8, 1)
		mp.varintField(9, 1)
		out.bytesField(3, mp.b)
	}

	for i, lk := range locs {
		var lp pbuf
		lp.varintField(1, int64(i+1)) // id
		lp.varintField(2, 1)          // mapping_id
		var ln pbuf
		ln.varintField(1, int64(lk.fn))
		ln.varintField(2, int64(lk.line))
		lp.bytesField(4, ln.b)
		out.bytesField(4, lp.b)
	}

	for i, fk := range funcs {
		name := fk.name
		if name == "" {
			name = "<unknown>"
		}
		var fp pbuf
		fp.varintField(1, int64(i+1))
		fp.varintField(2, tab.of(name))
		fp.varintField(3, tab.of(name))
		fp.varintField(4, tab.of(fk.file))
		out.bytesField(5, fp.b)
	}

	for _, s := range tab.list {
		out.stringField(6, s)
	}

	// time_nanos (field 9) stays zero for reproducible output.
	out.bytesField(11, valueType(cycles, count)) // period_type
	out.varintField(12, 1)                       // period

	gz := gzip.NewWriter(w)
	if _, err := gz.Write(out.b); err != nil {
		gz.Close()
		return err
	}
	return gz.Close()
}
