package profile

import (
	"bytes"
	"compress/gzip"
	"fmt"
	"io"
	"strconv"
	"strings"
	"testing"

	"f90y/internal/rt"
)

func testProfile() *Profile {
	src := "program k\nx = y + z\nw = sin(x)\nend\n"
	lines := map[rt.LineRef]float64{
		{Routine: "Pk0", File: "k.f90", Line: 2, Class: "vector-arith"}: 36,
		{Routine: "Pk0", File: "k.f90", Line: 2, Class: "load-store"}:   18,
		{Routine: "Pk0", File: "k.f90", Line: 2, Class: "loop"}:         1,
		{Routine: "Pk1", File: "k.f90", Line: 3, Class: "transcend"}:    60,
		{Routine: "Pk1", File: "k.f90", Line: 3, Class: "loop"}:         1,
		{Routine: "Pk1", File: "", Line: 0, Class: "degrade"}:           5,
	}
	return New(lines, map[string]string{"k.f90": src})
}

// TestWritersDeterministic pins every artifact's byte stability: two
// renderings of the same profile are identical.
func TestWritersDeterministic(t *testing.T) {
	p := testProfile()
	for _, w := range []struct {
		name   string
		render func(io.Writer) error
	}{
		{"annotated", p.WriteAnnotated},
		{"folded", p.WriteFolded},
		{"pprof", p.WritePprof},
	} {
		var a, b bytes.Buffer
		if err := w.render(&a); err != nil {
			t.Fatalf("%s: %v", w.name, err)
		}
		if err := w.render(&b); err != nil {
			t.Fatalf("%s: %v", w.name, err)
		}
		if !bytes.Equal(a.Bytes(), b.Bytes()) {
			t.Errorf("%s: two renderings differ", w.name)
		}
		if a.Len() == 0 {
			t.Errorf("%s: empty output", w.name)
		}
	}
}

// TestAnnotatedReport checks the text rendering: total in the header,
// the hot source line annotated in the listing, and the provenance-free
// degrade cycles surfaced as unattributed (conservation: nothing is
// silently dropped).
func TestAnnotatedReport(t *testing.T) {
	p := testProfile()
	var buf bytes.Buffer
	if err := p.WriteAnnotated(&buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	if want := "121 modeled cycles"; !strings.Contains(out, want) {
		t.Errorf("missing total %q in:\n%s", want, out)
	}
	if !strings.Contains(out, "x = y + z") || !strings.Contains(out, "w = sin(x)") {
		t.Errorf("annotated listing is missing source text:\n%s", out)
	}
	if !strings.Contains(out, "unattributed:") || !strings.Contains(out, "<unknown>") {
		t.Errorf("position-free cycles not reported as unattributed:\n%s", out)
	}
}

// TestFoldedConservation parses the folded stacks back and checks the
// values sum to the profile total and every frame has the
// routine;location;class shape.
func TestFoldedConservation(t *testing.T) {
	p := testProfile()
	var buf bytes.Buffer
	if err := p.WriteFolded(&buf); err != nil {
		t.Fatal(err)
	}
	sum := 0.0
	for _, line := range strings.Split(strings.TrimSpace(buf.String()), "\n") {
		stack, val, ok := strings.Cut(line, " ")
		if !ok {
			t.Fatalf("malformed folded line %q", line)
		}
		if frames := strings.Split(stack, ";"); len(frames) != 3 {
			t.Errorf("stack %q has %d frames, want 3", stack, len(frames))
		}
		v, err := strconv.ParseFloat(val, 64)
		if err != nil {
			t.Fatalf("folded value %q: %v", val, err)
		}
		sum += v
	}
	if sum != p.Total() {
		t.Errorf("folded values sum to %v, profile total is %v", sum, p.Total())
	}
}

// protoFields walks one level of protobuf wire format, calling visit
// with each field number and its varint value (wire 0) or payload
// (wire 2).
func protoFields(t *testing.T, b []byte, visit func(field int, varint uint64, payload []byte)) {
	t.Helper()
	for len(b) > 0 {
		key, n := uvarint(b)
		if n <= 0 {
			t.Fatal("malformed protobuf key")
		}
		b = b[n:]
		field, wire := int(key>>3), int(key&7)
		switch wire {
		case 0:
			v, n := uvarint(b)
			if n <= 0 {
				t.Fatal("malformed varint")
			}
			b = b[n:]
			visit(field, v, nil)
		case 2:
			l, n := uvarint(b)
			if n <= 0 || int(l) > len(b[n:]) {
				t.Fatal("malformed length-delimited field")
			}
			visit(field, 0, b[n:n+int(l)])
			b = b[n+int(l):]
		default:
			t.Fatalf("unexpected wire type %d for field %d", wire, field)
		}
	}
}

func uvarint(b []byte) (uint64, int) {
	var v uint64
	for i := 0; i < len(b); i++ {
		v |= uint64(b[i]&0x7f) << (7 * i)
		if b[i] < 0x80 {
			return v, i + 1
		}
	}
	return 0, -1
}

// TestPprofProfileShape gunzips and decodes the emitted profile and
// checks the invariants `go tool pprof` depends on: samples sum to the
// attribution total, the string table starts empty and contains the
// sample type and class names, and every referenced location, function,
// and mapping is present.
func TestPprofProfileShape(t *testing.T) {
	p := testProfile()
	var buf bytes.Buffer
	if err := p.WritePprof(&buf); err != nil {
		t.Fatal(err)
	}
	zr, err := gzip.NewReader(&buf)
	if err != nil {
		t.Fatalf("profile is not gzipped: %v", err)
	}
	raw, err := io.ReadAll(zr)
	if err != nil {
		t.Fatal(err)
	}

	var strs []string
	var sampleSum int64
	samples, mappings, locations, functions := 0, 0, 0, 0
	locSeen := map[uint64]bool{}
	locUsed := map[uint64]bool{}
	protoFields(t, raw, func(field int, _ uint64, payload []byte) {
		switch field {
		case 2: // Sample
			samples++
			protoFields(t, payload, func(f int, v uint64, _ []byte) {
				switch f {
				case 1:
					locUsed[v] = true
				case 2:
					sampleSum += int64(v)
				}
			})
		case 3:
			mappings++
		case 4: // Location
			locations++
			protoFields(t, payload, func(f int, v uint64, _ []byte) {
				if f == 1 {
					locSeen[v] = true
				}
			})
		case 5:
			functions++
		case 6:
			strs = append(strs, string(payload))
		}
	})

	if want := int64(p.Total()); sampleSum != want {
		t.Errorf("sample values sum to %d, want %d", sampleSum, want)
	}
	if samples != len(p.Lines) {
		t.Errorf("%d samples, want one per attribution cell (%d)", samples, len(p.Lines))
	}
	if mappings != 1 {
		t.Errorf("%d mappings, want 1", mappings)
	}
	if functions == 0 || locations == 0 {
		t.Errorf("functions/locations = %d/%d, want both nonzero", functions, locations)
	}
	if len(strs) == 0 || strs[0] != "" {
		t.Fatalf("string table must start with the empty string, got %q", strs)
	}
	joined := fmt.Sprintf("%q", strs)
	for _, want := range []string{"cycles", "count", "class", "vector-arith", "transcend", "f90y-model", "k.f90", "Pk0"} {
		if !strings.Contains(joined, want) {
			t.Errorf("string table is missing %q: %s", want, joined)
		}
	}
	for id := range locUsed {
		if !locSeen[id] {
			t.Errorf("sample references undefined location %d", id)
		}
	}
}
