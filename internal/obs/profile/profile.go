// Package profile turns the executors' source-line cycle attribution
// (Result.PELineCycles) into human- and tool-consumable artifacts: an
// annotated source listing in the style of `perf annotate`, a folded
// stack file for flamegraph tooling, and a pprof-compatible protobuf
// profile `go tool pprof` can open (see pprof.go).
//
// All three renderings are deterministic — equal inputs produce
// byte-identical outputs — and conserve cycles exactly: every artifact's
// total equals the sum of the attribution map, which the machine models
// guarantee equals the modeled PE cycle total.
package profile

import (
	"fmt"
	"io"
	"sort"
	"strings"

	"f90y/internal/rt"
)

// Profile is one run's source-line cycle attribution, plus the source
// text of the files it refers to (keyed by the file name used in the
// attribution; entries may be missing, in which case the annotated view
// lists hot lines without source text).
type Profile struct {
	Lines   map[rt.LineRef]float64
	Sources map[string]string
}

// New builds a Profile over an attribution map and the sources it
// references. The maps are referenced, not copied.
func New(lines map[rt.LineRef]float64, sources map[string]string) *Profile {
	return &Profile{Lines: lines, Sources: sources}
}

// Total is the cycle sum over every attribution cell.
func (p *Profile) Total() float64 {
	t := 0.0
	for _, v := range p.Lines {
		t += v
	}
	return t
}

// sortedRefs returns the attribution keys in the canonical order every
// rendering uses: by file, line, routine, then class.
func (p *Profile) sortedRefs() []rt.LineRef {
	refs := make([]rt.LineRef, 0, len(p.Lines))
	for ref := range p.Lines {
		refs = append(refs, ref)
	}
	sort.Slice(refs, func(i, j int) bool {
		a, b := refs[i], refs[j]
		if a.File != b.File {
			return a.File < b.File
		}
		if a.Line != b.Line {
			return a.Line < b.Line
		}
		if a.Routine != b.Routine {
			return a.Routine < b.Routine
		}
		return a.Class < b.Class
	})
	return refs
}

// lineKey aggregates attribution cells per source line.
type lineKey struct {
	file string
	line int
}

// byLine folds the per-(routine, class) cells down to per-line totals.
func (p *Profile) byLine() map[lineKey]float64 {
	out := map[lineKey]float64{}
	for ref, v := range p.Lines {
		out[lineKey{file: ref.File, line: ref.Line}] += v
	}
	return out
}

// HotLines returns up to n source lines ordered by descending cycles
// (ties broken by file then line, so the order is deterministic). Each
// entry carries the aggregate cycles of the line across every routine
// and class.
func (p *Profile) HotLines(n int) []HotLine {
	agg := p.byLine()
	out := make([]HotLine, 0, len(agg))
	for k, v := range agg {
		out = append(out, HotLine{File: k.file, Line: k.line, Cycles: v})
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Cycles != out[j].Cycles {
			return out[i].Cycles > out[j].Cycles
		}
		if out[i].File != out[j].File {
			return out[i].File < out[j].File
		}
		return out[i].Line < out[j].Line
	})
	if n > 0 && len(out) > n {
		out = out[:n]
	}
	return out
}

// HotLine is one aggregated source line in the hot-line ranking.
type HotLine struct {
	File   string
	Line   int
	Cycles float64
}

// locString renders a file:line location, tolerating unknown provenance.
func locString(file string, line int) string {
	if line <= 0 {
		return "<unknown>"
	}
	if file == "" {
		return fmt.Sprintf("<unknown>:%d", line)
	}
	return fmt.Sprintf("%s:%d", file, line)
}

// WriteAnnotated renders the perf-annotate-style report: a header with
// the total and the top hot lines, then each source file's full listing
// with a cycles/percent column beside every line. Cycles attributed to
// positions outside any provided source (unknown files or out-of-range
// lines) are reported in a trailing "unattributed" section so the
// report's total always matches the attribution exactly.
func (p *Profile) WriteAnnotated(w io.Writer) error {
	total := p.Total()
	pct := func(v float64) float64 {
		if total == 0 {
			return 0
		}
		return 100 * v / total
	}

	fmt.Fprintf(w, "source-line cycle profile: %.0f modeled cycles (PE + communication)\n\n", total)

	hot := p.HotLines(10)
	if len(hot) > 0 {
		fmt.Fprintf(w, "hot lines:\n")
		fmt.Fprintf(w, "  %14s %7s  %s\n", "cycles", "%", "location")
		for _, h := range hot {
			fmt.Fprintf(w, "  %14.0f %6.2f%%  %s\n", h.Cycles, pct(h.Cycles), locString(h.File, h.Line))
		}
		fmt.Fprintln(w)
	}

	agg := p.byLine()

	// Annotated listing per provided source file, in file-name order.
	files := make([]string, 0, len(p.Sources))
	for f := range p.Sources {
		files = append(files, f)
	}
	sort.Strings(files)
	covered := map[lineKey]bool{}
	for _, f := range files {
		lines := strings.Split(p.Sources[f], "\n")
		// A trailing newline yields one empty trailing element; drop it
		// so the listing matches the file's line count.
		if len(lines) > 0 && lines[len(lines)-1] == "" {
			lines = lines[:len(lines)-1]
		}
		fmt.Fprintf(w, "%s:\n", f)
		fmt.Fprintf(w, "  %14s %7s  %4s  %s\n", "cycles", "%", "line", "source")
		for i, text := range lines {
			k := lineKey{file: f, line: i + 1}
			v, hit := agg[k]
			if hit {
				covered[k] = true
				fmt.Fprintf(w, "  %14.0f %6.2f%%  %4d  %s\n", v, pct(v), i+1, text)
			} else {
				fmt.Fprintf(w, "  %14s %7s  %4d  %s\n", "", "", i+1, text)
			}
		}
		fmt.Fprintln(w)
	}

	// Anything the listings did not cover (unknown positions, files we
	// have no source for, line numbers past the end of a file).
	var rest []HotLine
	for k, v := range agg {
		if !covered[k] {
			rest = append(rest, HotLine{File: k.file, Line: k.line, Cycles: v})
		}
	}
	if len(rest) > 0 {
		sort.Slice(rest, func(i, j int) bool {
			if rest[i].File != rest[j].File {
				return rest[i].File < rest[j].File
			}
			return rest[i].Line < rest[j].Line
		})
		fmt.Fprintf(w, "unattributed:\n")
		for _, h := range rest {
			fmt.Fprintf(w, "  %14.0f %6.2f%%  %s\n", h.Cycles, pct(h.Cycles), locString(h.File, h.Line))
		}
		fmt.Fprintln(w)
	}
	return nil
}

// WriteFolded renders the attribution as folded stacks, one line per
// cell: "routine;file:line;class cycles". The output feeds flamegraph
// tooling (flamegraph.pl, speedscope, inferno) directly; the stack reads
// routine → statement → cycle class, so a flame graph shows which
// routines and lines dominate and how their cost splits across classes.
func (p *Profile) WriteFolded(w io.Writer) error {
	for _, ref := range p.sortedRefs() {
		fmt.Fprintf(w, "%s;%s;%s %.0f\n", ref.Routine, locString(ref.File, ref.Line), ref.Class, p.Lines[ref])
	}
	return nil
}
