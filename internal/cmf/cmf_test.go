package cmf

import (
	"math"
	"testing"

	"f90y/internal/cm2"
	"f90y/internal/interp"
	"f90y/internal/parser"
	"f90y/internal/workload"
)

func TestCMFModelMatchesOracle(t *testing.T) {
	src := workload.SWE(16, 2)
	res, err := Run("swe.f90", src, cm2.Default())
	if err != nil {
		t.Fatal(err)
	}
	tree, _ := parser.Parse("swe.f90", src)
	oracle, err := interp.Run(tree)
	if err != nil {
		t.Fatal(err)
	}
	p := oracle.Array("p")
	got := res.Store.Arrays["p"]
	for i := range got.Data {
		if math.Abs(got.Data[i]-p.F[i]) > 1e-9*math.Max(1, math.Abs(p.F[i])) {
			t.Fatalf("p[%d] = %v, oracle %v", i, got.Data[i], p.F[i])
		}
	}
}

func TestCMFCompilesPerStatement(t *testing.T) {
	// No cross-statement blocking: four like-shape statements become four
	// node routines.
	src := `program t
real, array(32,32) :: a, b
a = 1.0
b = a*2.0
a = b + 1.0
b = a*a
end program t
`
	prog, stats, err := Compile("t.f90", src)
	if err != nil {
		t.Fatal(err)
	}
	if stats.NodeRoutines != 4 {
		t.Fatalf("node routines = %d, want 4 (per statement)", stats.NodeRoutines)
	}
	if len(prog.Routines) != 4 {
		t.Fatalf("routines = %d", len(prog.Routines))
	}
}

func TestCMFSlowerThanF90YOnSWE(t *testing.T) {
	// The §6 ordering at a moderate problem size.
	src := workload.SWE(128, 2)
	m := cm2.Default()
	cmfRes, err := Run("swe.f90", src, m)
	if err != nil {
		t.Fatal(err)
	}
	if cmfRes.NodeCalls == 0 {
		t.Fatal("no node calls")
	}
	if cmfRes.GFLOPS() <= 0 {
		t.Fatal("no modeled rate")
	}
}
