// Package cmf models Thinking Machines' CM Fortran compiler (v1.1,
// slicewise) as the paper's comparator (§6: "The slicewise CM Fortran
// compiler (v1.1) reached an extrapolated 2.79 gigaflops").
//
// The model follows §6's own explanation of why Fortran-90-Y beats CMF:
// CMF generates competitive node code for each statement, but compiles
// per-statement — no shape-based blocking across statements, so PEAC
// subroutine call overhead is paid per statement and no values are reused
// across statement boundaries. The configuration therefore shares the
// entire Fortran-90-Y back end (including the tuned PE code generator)
// with the domain-blocking and communication-clustering transformations
// disabled.
package cmf

import (
	"f90y/internal/cm2"
	"f90y/internal/fe"
	"f90y/internal/lower"
	"f90y/internal/opt"
	"f90y/internal/parser"
	"f90y/internal/partition"
	"f90y/internal/pe"
)

// OptOptions is the NIR transformation configuration modeling CMF:
// section padding (CMF's virtual-processor model also executes sections as
// masked full-VP-set operations) without cross-statement blocking.
func OptOptions() opt.Options {
	return opt.Options{PadSections: true, BlockDomains: false}
}

// PEOptions is the node-code configuration modeling CMF: within one
// statement the code generator is competitive (chaining, multiply-add,
// overlap), matching CMF's production-quality per-statement codeblocks.
func PEOptions() pe.Options {
	return pe.Optimized
}

// Compile compiles source under the CMF model, returning the partitioned
// program.
func Compile(filename, src string) (*fe.Program, partition.Stats, error) {
	tree, err := parser.Parse(filename, src)
	if err != nil {
		return nil, partition.Stats{}, err
	}
	mod, err := lower.Lower(tree)
	if err != nil {
		return nil, partition.Stats{}, err
	}
	omod, _ := opt.Optimize(mod, OptOptions())
	return partition.Compile(omod, PEOptions())
}

// Run compiles and executes source on the given machine under the CMF
// model.
func Run(filename, src string, m *cm2.Machine) (*cm2.Result, error) {
	prog, _, err := Compile(filename, src)
	if err != nil {
		return nil, err
	}
	return m.Run(prog)
}
