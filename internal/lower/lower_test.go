package lower

import (
	"strings"
	"testing"

	"f90y/internal/nir"
	"f90y/internal/parser"
	"f90y/internal/shape"
)

func mustLower(t *testing.T, src string) *Module {
	t.Helper()
	prog, err := parser.Parse("test.f90", src)
	if err != nil {
		t.Fatalf("parse: %v", err)
	}
	mod, err := Lower(prog)
	if err != nil {
		t.Fatalf("lower: %v\nsource:\n%s", err, src)
	}
	return mod
}

func lowerErr(t *testing.T, src string) error {
	t.Helper()
	prog, err := parser.Parse("test.f90", src)
	if err != nil {
		t.Fatalf("parse: %v", err)
	}
	_, err = Lower(prog)
	if err == nil {
		t.Fatalf("expected lowering error for:\n%s", src)
	}
	return err
}

func wrap(body string) string {
	return "program t\n" + body + "\nend program t\n"
}

// firstMoves flattens the module body into its top-level action list.
func actions(mod *Module) []nir.Imp {
	switch b := mod.Body.(type) {
	case nir.Sequentially:
		return b.List
	case nir.Skip:
		return nil
	default:
		return []nir.Imp{b}
	}
}

func TestPaperFig8Lowering(t *testing.T) {
	// §2.1/Fig. 8: L = 6; K = 2*K + 5 over shapes alpha (128) and beta
	// (128x64).
	mod := mustLower(t, wrap("integer k(128,64), l(128)\nl = 6\nk = 2*k + 5"))
	acts := actions(mod)
	if len(acts) != 2 {
		t.Fatalf("actions = %d", len(acts))
	}
	m1 := acts[0].(nir.Move)
	if !shape.Congruent(m1.Over, shape.Of(128)) {
		t.Errorf("l move over %v", m1.Over)
	}
	m2 := acts[1].(nir.Move)
	if !shape.Congruent(m2.Over, shape.Of(128, 64)) {
		t.Errorf("k move over %v", m2.Over)
	}
	// RHS of k: BINARY(Plus, BINARY(Mul, 2, k@everywhere), 5).
	out := nir.PrintValue(m2.Moves[0].Src)
	want := "BINARY(Plus, BINARY(Mul, SCALAR(integer_32, '2'), AVAR('k', everywhere)), SCALAR(integer_32, '5'))"
	if out != want {
		t.Errorf("k rhs:\n got %s\nwant %s", out, want)
	}
	// Program wrapper carries the domains.
	if len(mod.Domains) != 2 {
		t.Errorf("domains = %v", mod.Domains)
	}
	text := nir.Print(mod.Prog)
	if !strings.Contains(text, "WITH_DOMAIN(('alpha'") || !strings.Contains(text, "WITH_DECL(DECLSET[") {
		t.Errorf("program wrapper:\n%s", text)
	}
}

func TestScalarAssignment(t *testing.T) {
	mod := mustLower(t, wrap("double precision a, b\na = cos(b)\nb = b + a"))
	acts := actions(mod)
	if len(acts) != 2 {
		t.Fatalf("actions = %d", len(acts))
	}
	// Appendix example: MOVE[(True, (UNARY(Cos, SVAR 'b'), SVAR 'a'))].
	got := nir.PrintValue(acts[0].(nir.Move).Moves[0].Src)
	if got != "UNARY(Cos, SVAR 'b')" {
		t.Errorf("got %s", got)
	}
	if acts[0].(nir.Move).Over != nil {
		t.Error("scalar move must have nil shape")
	}
}

func TestSectionAssignmentLowering(t *testing.T) {
	mod := mustLower(t, wrap("integer l(128)\nl(32:64) = l(96:128)"))
	mv := actions(mod)[0].(nir.Move)
	if shape.Size(mv.Over) != 33 {
		t.Fatalf("section move over %v", mv.Over)
	}
	src := mv.Moves[0].Src.(nir.AVar)
	sec, ok := src.Field.(nir.Section)
	if !ok {
		t.Fatalf("src field %T", src.Field)
	}
	if nir.PrintValue(sec.Subs[0].Lo) != "SCALAR(integer_32, '96')" {
		t.Errorf("src lo = %s", nir.PrintValue(sec.Subs[0].Lo))
	}
}

func TestStrideSectionAndRankReduction(t *testing.T) {
	mod := mustLower(t, wrap("integer, array(32,32) :: a, b\nb(1:32:2,:) = a(1:32:2,:)"))
	mv := actions(mod)[0].(nir.Move)
	ext := shape.Extents(mv.Over)
	if len(ext) != 2 || ext[0] != 16 || ext[1] != 32 {
		t.Fatalf("iteration extents %v", ext)
	}

	// Rank reduction: a(3,1:5) has rank 1.
	mod2 := mustLower(t, wrap("integer, array(8,8) :: a\ninteger c(5)\nc = a(3,1:5)"))
	mv2 := actions(mod2)[0].(nir.Move)
	if shape.Rank(mv2.Over) != 1 || shape.Size(mv2.Over) != 5 {
		t.Fatalf("rank-reduced over %v", mv2.Over)
	}
}

func TestShapecheckRejectsMismatched(t *testing.T) {
	err := lowerErr(t, wrap("integer a(8), b(9)\na = b"))
	if !strings.Contains(err.Error(), "shape") {
		t.Errorf("error = %v", err)
	}
	lowerErr(t, wrap("integer, array(8,8) :: a\ninteger b(8)\na = a + b"))
	lowerErr(t, wrap("integer a(8)\ninteger s\ns = a")) // array to scalar
}

func TestShapecheckAcceptsBroadcast(t *testing.T) {
	mustLower(t, wrap("integer a(8)\ninteger s\na = s\na = a + s\na = 2*a"))
}

func TestTypecheckErrors(t *testing.T) {
	lowerErr(t, wrap("integer a\na = undeclared_var"))
	lowerErr(t, wrap("logical p\ninteger a\na = p + 1"))
	lowerErr(t, wrap("logical p\ninteger a\np = .not. a"))
	lowerErr(t, wrap("integer, parameter :: n = 4\nn = 5"))
	lowerErr(t, wrap("integer a(8)\na(1,2) = 0"))   // wrong rank
	lowerErr(t, wrap("real x\nx(1:2) = 0"))         // subscripting a scalar
	lowerErr(t, wrap("integer a(8)\na = a(1:4)*2")) // congruence
}

func TestKindPromotion(t *testing.T) {
	mod := mustLower(t, wrap("real x(8)\ninteger k(8)\nx = k + 1.5"))
	mv := actions(mod)[0].(nir.Move)
	s := nir.PrintValue(mv.Moves[0].Src)
	// k is converted to float_32 to meet the literal 1.5.
	if !strings.Contains(s, "ToF32") {
		t.Errorf("missing conversion: %s", s)
	}
}

func TestDoubleLiteralKind(t *testing.T) {
	mod := mustLower(t, wrap("double precision x\nx = 2.5d0"))
	mv := actions(mod)[0].(nir.Move)
	c := mv.Moves[0].Src.(nir.Const)
	if c.Type.Kind != nir.Float64 || c.F != 2.5 {
		t.Errorf("const %v", c)
	}
}

func TestParameterInlining(t *testing.T) {
	mod := mustLower(t, wrap("integer, parameter :: n = 8\ninteger a(n)\na = n"))
	mv := actions(mod)[0].(nir.Move)
	if shape.Size(mv.Over) != 8 {
		t.Errorf("param-dimensioned shape %v", mv.Over)
	}
	if c, ok := mv.Moves[0].Src.(nir.Const); !ok || c.I != 8 {
		t.Errorf("param not inlined: %s", nir.PrintValue(mv.Moves[0].Src))
	}
}

func TestStaticDoBecomesSerialShape(t *testing.T) {
	mod := mustLower(t, wrap("integer a(64)\ninteger i\ndo i = 1, 64\n  a(i) = i\nend do"))
	d := actions(mod)[0].(nir.Do)
	iv, ok := d.S.(shape.Interval)
	if !ok || !iv.Serial || iv.Lo != 1 || iv.Hi != 64 {
		t.Fatalf("do shape %v", d.S)
	}
	mv := d.Body.(nir.Move)
	sub := mv.Moves[0].Tgt.(nir.AVar).Field.(nir.Subscript)
	if _, ok := sub.Subs[0].(nir.LocalUnder); !ok {
		t.Errorf("index not local_under: %s", nir.PrintValue(sub.Subs[0]))
	}
	if _, ok := mv.Moves[0].Src.(nir.LocalUnder); !ok {
		t.Errorf("src not local_under: %s", nir.PrintValue(mv.Moves[0].Src))
	}
}

func TestStaticDoWithStep(t *testing.T) {
	mod := mustLower(t, wrap("integer a(64)\ninteger i\ndo i = 1, 64, 2\n  a(i) = 0\nend do"))
	d := actions(mod)[0].(nir.Do)
	if shape.Size(d.S) != 32 {
		t.Fatalf("trip count %v", shape.Size(d.S))
	}
}

func TestEmptyStaticDoDropped(t *testing.T) {
	// A zero-trip loop leaves only the Fortran-mandated index assignment
	// (i = initial value).
	mod := mustLower(t, wrap("integer i\ninteger a(4)\ndo i = 5, 4\n  a(1) = 1\nend do"))
	acts := actions(mod)
	if len(acts) != 1 {
		t.Fatalf("zero-trip loop should lower to the index store only: %v", acts)
	}
	mv, ok := acts[0].(nir.Move)
	if !ok || mv.Over != nil {
		t.Fatalf("expected scalar index store, got %#v", acts[0])
	}
	if c, ok := mv.Moves[0].Src.(nir.Const); !ok || c.I != 5 {
		t.Fatalf("index store = %s", nir.PrintValue(mv.Moves[0].Src))
	}
}

func TestDynamicDoBecomesWhile(t *testing.T) {
	mod := mustLower(t, wrap("integer i, n\ninteger a(64)\nn = 10\ndo i = 1, n\n  a(1) = i\nend do"))
	var found bool
	nir.WalkImps(mod.Body, func(x nir.Imp) {
		if _, ok := x.(nir.While); ok {
			found = true
		}
	})
	if !found {
		t.Fatal("dynamic DO should lower to WHILE")
	}
}

func TestNestedStaticDoPaperExample(t *testing.T) {
	// §2.1 Fortran 77 nest.
	src := `
program old
integer k(128,64), l(128)
integer i, j
do 10 i=1,128
   l(i) = 6
   do 20 j=1,64
      k(i,j) = 2*k(i,j) + 5
20 continue
10 continue
end program old
`
	mod := mustLower(t, src)
	outer := actions(mod)[0].(nir.Do)
	seq := outer.Body.(nir.Sequentially)
	// l(i) assignment, inner DO, and the inner index's final store.
	if len(seq.List) != 3 {
		t.Fatalf("outer body = %d", len(seq.List))
	}
	if _, ok := seq.List[1].(nir.Do); !ok {
		t.Fatalf("inner loop %T", seq.List[1])
	}
}

func TestWhereLowering(t *testing.T) {
	mod := mustLower(t, wrap("real a(16), b(16)\nwhere (a > 0)\n  b = a\nelsewhere\n  b = -a\nend where"))
	acts := actions(mod)
	if len(acts) != 2 {
		t.Fatalf("actions = %d", len(acts))
	}
	m1 := acts[0].(nir.Move)
	if nir.EqualValue(m1.Moves[0].Mask, nir.True) {
		t.Error("where body should be masked")
	}
	m2 := acts[1].(nir.Move)
	if _, ok := m2.Moves[0].Mask.(nir.Unary); !ok {
		t.Errorf("elsewhere mask = %s", nir.PrintValue(m2.Moves[0].Mask))
	}
}

func TestWhereMaskMaterializedOnConflict(t *testing.T) {
	// Body writes a, which the mask reads: mask must be hoisted.
	mod := mustLower(t, wrap("real a(16)\nwhere (a > 0)\n  a = -a\nend where"))
	acts := actions(mod)
	if len(acts) != 2 {
		t.Fatalf("expected mask materialization + move, got %d actions", len(acts))
	}
	first := acts[0].(nir.Move)
	tgt := first.Moves[0].Tgt.(nir.AVar)
	sym, _ := mod.Syms.Lookup(tgt.Name)
	if sym == nil || !sym.Temp || sym.Kind != nir.Logical32 {
		t.Fatalf("first action should compute the mask temp, tgt=%s", tgt.Name)
	}
}

func TestForallIdentityCollapse(t *testing.T) {
	// Fig. 7: FORALL (i=1:32, j=1:32) A(i,j) = i+j lowers to one parallel
	// MOVE with an everywhere target and local_under sources.
	mod := mustLower(t, wrap("integer, array(32,32) :: a\nforall (i=1:32, j=1:32) a(i,j) = i+j"))
	mv := actions(mod)[0].(nir.Move)
	if shape.Size(mv.Over) != 1024 {
		t.Fatalf("over %v", mv.Over)
	}
	if _, ok := mv.Moves[0].Tgt.(nir.AVar).Field.(nir.Everywhere); !ok {
		t.Errorf("target not collapsed: %s", nir.PrintValue(mv.Moves[0].Tgt))
	}
	s := nir.PrintValue(mv.Moves[0].Src)
	if !strings.Contains(s, "local_under") {
		t.Errorf("src = %s", s)
	}
}

func TestForallNonIdentityKeepsSubscript(t *testing.T) {
	mod := mustLower(t, wrap("integer, array(8,8) :: a, b\nforall (i=1:8, j=1:8) a(i,j) = b(j,i)"))
	mv := actions(mod)[0].(nir.Move)
	src := mv.Moves[0].Src.(nir.AVar)
	if _, ok := src.Field.(nir.Subscript); !ok {
		t.Errorf("transposed ref must keep subscript: %s", nir.PrintValue(src))
	}
	if _, ok := mv.Moves[0].Tgt.(nir.AVar).Field.(nir.Everywhere); !ok {
		t.Errorf("identity target should collapse")
	}
}

func TestCshiftLoweringMatchesFig12(t *testing.T) {
	mod := mustLower(t, wrap("real, array(64,64) :: v, z\nz = cshift(v, dim=1, shift=-1)"))
	acts := actions(mod)
	if len(acts) != 2 {
		t.Fatalf("actions = %d", len(acts))
	}
	comm := acts[0].(nir.Move)
	fc := comm.Moves[0].Src.(nir.FcnCall)
	if fc.Name != "cm_cshift" || len(fc.Args) != 3 {
		t.Fatalf("comm call %s", nir.PrintValue(fc))
	}
	tmp := comm.Moves[0].Tgt.(nir.AVar)
	if !strings.HasPrefix(tmp.Name, "tmp") {
		t.Errorf("comm target %q", tmp.Name)
	}
	// Main move reads the temp.
	main := acts[1].(nir.Move)
	if src, ok := main.Moves[0].Src.(nir.AVar); !ok || src.Name != tmp.Name {
		t.Errorf("main src = %s", nir.PrintValue(main.Moves[0].Src))
	}
}

func TestReductionLowering(t *testing.T) {
	mod := mustLower(t, wrap("real a(64)\nreal s\ns = sum(a)"))
	acts := actions(mod)
	red := acts[0].(nir.Move)
	fc := red.Moves[0].Src.(nir.FcnCall)
	if fc.Name != "cm_reduce_sum" {
		t.Fatalf("reduction call %s", fc.Name)
	}
	if _, ok := red.Moves[0].Tgt.(nir.SVar); !ok {
		t.Errorf("reduction target should be scalar temp")
	}
}

func TestMergeLowering(t *testing.T) {
	mod := mustLower(t, wrap("real a(8), b(8), c(8)\nc = merge(a, b, a > b)"))
	acts := actions(mod)
	if len(acts) != 2 {
		t.Fatalf("actions = %d", len(acts))
	}
	sel := acts[0].(nir.Move)
	if len(sel.Moves) != 2 {
		t.Fatalf("merge moves = %d", len(sel.Moves))
	}
	if _, ok := sel.Moves[1].Mask.(nir.Unary); !ok {
		t.Errorf("complementary mask missing")
	}
}

func TestTransposeShape(t *testing.T) {
	mod := mustLower(t, wrap("real, array(4,8) :: a\nreal, array(8,4) :: b\nb = transpose(a)"))
	comm := actions(mod)[0].(nir.Move)
	ext := shape.Extents(comm.Over)
	if ext[0] != 8 || ext[1] != 4 {
		t.Fatalf("transpose result shape %v", ext)
	}
}

func TestSizeConstant(t *testing.T) {
	mod := mustLower(t, wrap("real, array(4,8) :: a\ninteger n\nn = size(a) + size(a, 2)"))
	mv := actions(mod)[0].(nir.Move)
	s := nir.PrintValue(mv.Moves[0].Src)
	if !strings.Contains(s, "'32'") || !strings.Contains(s, "'8'") {
		t.Errorf("size not folded: %s", s)
	}
}

func TestPrintAndStop(t *testing.T) {
	mod := mustLower(t, wrap("real x\nx = 1\nprint *, 'x =', x\nstop"))
	acts := actions(mod)
	call := acts[1].(nir.CallImp)
	if call.Name != "rt_print" || len(call.Args) != 2 {
		t.Fatalf("print call %#v", call)
	}
	if _, ok := call.Args[0].(nir.StrConst); !ok {
		t.Errorf("first arg should be string")
	}
	if stop := acts[2].(nir.CallImp); stop.Name != "rt_stop" {
		t.Errorf("stop = %#v", acts[2])
	}
}

func TestCallRejected(t *testing.T) {
	lowerErr(t, wrap("real x\ncall foo(x)"))
}

func TestIfLowering(t *testing.T) {
	mod := mustLower(t, wrap("integer i\nreal x\nif (i > 0) then\n  x = 1\nelse\n  x = 2\nend if"))
	ite := actions(mod)[0].(nir.IfThenElse)
	if _, ok := ite.Cond.(nir.Binary); !ok {
		t.Errorf("cond %T", ite.Cond)
	}
	lowerErr(t, wrap("real a(8)\nreal x\nif (a > 0) then\n  x = 1\nend if"))
}

func TestExplicitLowerBoundSection(t *testing.T) {
	mod := mustLower(t, wrap("real, dimension(0:63) :: a\na(0:31) = 1.0"))
	mv := actions(mod)[0].(nir.Move)
	if shape.Size(mv.Over) != 32 {
		t.Fatalf("over %v", mv.Over)
	}
}

func TestTempNaming(t *testing.T) {
	// Paper Fig. 12 names communication temporaries tmp0, tmp1, ...
	mod := mustLower(t, wrap("real, array(8,8) :: u, v, z\nz = (v - cshift(v, dim=1, shift=-1)) + (u - cshift(u, dim=2, shift=-1))"))
	var names []string
	for _, sym := range mod.Syms.All() {
		if sym.Temp {
			names = append(names, sym.Name)
		}
	}
	if len(names) != 2 || names[0] != "tmp0" || names[1] != "tmp1" {
		t.Fatalf("temps = %v", names)
	}
}
