// Package lower implements the semantic lowering stage of the
// Fortran-90-Y compiler (§4.1): it consumes ASTs and, by way of five
// semantic equations — one per semantic domain (declarations, types,
// values, imperatives, shapes) — filters out the static semantics of
// Fortran 90 and expresses the residual as a valid NIR program.
//
// The stage typechecks and shapechecks as it lowers: in all direct
// computations between arrays, the shapes of interacting arrays must
// agree (static shapechecking, the shape-domain analogue of static
// typechecking).
package lower

import (
	"bytes"
	"encoding/gob"
	"fmt"
	"math"

	"f90y/internal/ast"
	"f90y/internal/nir"
	"f90y/internal/shape"
	"f90y/internal/source"
)

// Symbol is one declared entity with its lowered NIR type.
type Symbol struct {
	Name   string
	Type   nir.Type // Scalar or DField with a concrete shape
	Kind   nir.ScalarKind
	Shape  shape.Shape // nil for scalars
	Lowers []int       // declared lower bound per dimension
	Param  bool
	Const  constVal // value for PARAMETERs
	Temp   bool     // compiler-generated temporary
	// Dist is the array's data distribution from !HPF$ directives (or a
	// compiler override); the zero value is the default blockwise layout.
	Dist shape.Distribution
}

// SymTab maps identifiers to symbols.
type SymTab struct {
	byName map[string]*Symbol
	order  []string
}

// NewSymTab returns an empty symbol table.
func NewSymTab() *SymTab {
	return &SymTab{byName: map[string]*Symbol{}}
}

// Define adds a symbol; redefinition is the caller's error to report.
func (st *SymTab) Define(s *Symbol) bool {
	if _, dup := st.byName[s.Name]; dup {
		return false
	}
	st.byName[s.Name] = s
	st.order = append(st.order, s.Name)
	return true
}

// Lookup finds a symbol by name.
func (st *SymTab) Lookup(name string) (*Symbol, bool) {
	s, ok := st.byName[name]
	return s, ok
}

// All returns symbols in declaration order.
func (st *SymTab) All() []*Symbol {
	out := make([]*Symbol, len(st.order))
	for i, n := range st.order {
		out[i] = st.byName[n]
	}
	return out
}

// Arrays returns the field-typed symbols in declaration order.
func (st *SymTab) Arrays() []*Symbol {
	var out []*Symbol
	for _, s := range st.All() {
		if s.Shape != nil {
			out = append(out, s)
		}
	}
	return out
}

// Symbols carry nir.Type and shape.Shape interface values; gob needs
// the concrete implementations registered before it can move them.
func init() {
	gob.Register(nir.Scalar{})
	gob.Register(nir.DField{})
	gob.Register(shape.Point{})
	gob.Register(shape.Interval{})
	gob.Register(shape.Prod{})
	gob.Register(shape.Ref{})
}

// GobEncode serializes the table as its symbols in declaration order.
// SymTab's fields are unexported (the map is an implementation detail),
// so without this the gob encoding used by the driver's persistent
// artifact cache would silently flatten the table to nothing and every
// restored program would run against an empty store.
func (st *SymTab) GobEncode() ([]byte, error) {
	var buf bytes.Buffer
	if err := gob.NewEncoder(&buf).Encode(st.All()); err != nil {
		return nil, err
	}
	return buf.Bytes(), nil
}

// GobDecode rebuilds the table from a GobEncode payload, preserving
// declaration order.
func (st *SymTab) GobDecode(data []byte) error {
	var syms []*Symbol
	if err := gob.NewDecoder(bytes.NewReader(data)).Decode(&syms); err != nil {
		return err
	}
	st.byName = map[string]*Symbol{}
	st.order = nil
	for _, s := range syms {
		if !st.Define(s) {
			return fmt.Errorf("lower: decode symtab: duplicate symbol %q", s.Name)
		}
	}
	return nil
}

// Module is the result of lowering one program unit: the NIR program plus
// the symbol and domain context later phases need.
type Module struct {
	Name    string
	Prog    nir.Imp // PROGRAM(WITH_DOMAIN*(WITH_DECL(body)))
	Body    nir.Imp // the executable action inside the wrappers
	Syms    *SymTab
	Domains []Domain // named concrete shapes, in binding order
}

// Domain is a WITH_DOMAIN binding emitted by lowering: one name per
// distinct array shape in the program, in the style of the paper's
// 'alpha', 'beta', ... examples.
type Domain struct {
	Name  string
	Shape shape.Shape
}

var greek = []string{"alpha", "beta", "gamma", "delta", "epsilon", "zeta", "eta", "theta", "iota", "kappa", "lambda", "mu"}

// domainName returns the idiomatic name for the i-th distinct shape.
func domainName(i int) string {
	if i < len(greek) {
		return greek[i]
	}
	return fmt.Sprintf("dom%d", i)
}

// ---- constant evaluation ----

// constVal is a compile-time scalar constant.
type constVal struct {
	Kind nir.ScalarKind
	I    int64
	F    float64
	B    bool
	OK   bool
}

func (c constVal) asFloat() float64 {
	if c.Kind == nir.Integer32 {
		return float64(c.I)
	}
	return c.F
}

func (c constVal) toValue() nir.Value {
	switch c.Kind {
	case nir.Integer32:
		return nir.IntConst(c.I)
	case nir.Logical32:
		return nir.BoolConst(c.B)
	case nir.Float32:
		return nir.Float32Const(c.F)
	default:
		return nir.FloatConst(c.F)
	}
}

// evalConst evaluates a restricted constant expression (literals,
// PARAMETER names, arithmetic). The zero constVal (OK=false) means
// "not constant".
func (lw *lowerer) evalConst(e ast.Expr) constVal {
	switch e := e.(type) {
	case *ast.IntLit:
		return constVal{Kind: nir.Integer32, I: e.Value, OK: true}
	case *ast.RealLit:
		k := nir.Float32
		if e.Double {
			k = nir.Float64
		}
		return constVal{Kind: k, F: e.Value, OK: true}
	case *ast.LogicalLit:
		return constVal{Kind: nir.Logical32, B: e.Value, OK: true}
	case *ast.Ident:
		if s, ok := lw.syms.Lookup(e.Name); ok && s.Param {
			return s.Const
		}
	case *ast.Unary:
		x := lw.evalConst(e.X)
		if !x.OK {
			return constVal{}
		}
		switch e.Op {
		case ast.Neg:
			if x.Kind == nir.Integer32 {
				return constVal{Kind: nir.Integer32, I: -x.I, OK: true}
			}
			return constVal{Kind: x.Kind, F: -x.F, OK: true}
		case ast.Not:
			if x.Kind == nir.Logical32 {
				return constVal{Kind: nir.Logical32, B: !x.B, OK: true}
			}
		}
	case *ast.Binary:
		l, r := lw.evalConst(e.L), lw.evalConst(e.R)
		if !l.OK || !r.OK {
			return constVal{}
		}
		if l.Kind == nir.Integer32 && r.Kind == nir.Integer32 {
			switch e.Op {
			case ast.Add:
				return constVal{Kind: nir.Integer32, I: l.I + r.I, OK: true}
			case ast.Sub:
				return constVal{Kind: nir.Integer32, I: l.I - r.I, OK: true}
			case ast.Mul:
				return constVal{Kind: nir.Integer32, I: l.I * r.I, OK: true}
			case ast.Div:
				if r.I == 0 {
					return constVal{}
				}
				return constVal{Kind: nir.Integer32, I: l.I / r.I, OK: true}
			case ast.Pow:
				if r.I < 0 {
					return constVal{}
				}
				p := int64(1)
				for k := int64(0); k < r.I; k++ {
					p *= l.I
				}
				return constVal{Kind: nir.Integer32, I: p, OK: true}
			}
			return constVal{}
		}
		// Mixed or floating arithmetic.
		kind := nir.Float64
		if l.Kind != nir.Float64 && r.Kind != nir.Float64 {
			kind = nir.Float32
		}
		lf, rf := l.asFloat(), r.asFloat()
		switch e.Op {
		case ast.Add:
			return constVal{Kind: kind, F: lf + rf, OK: true}
		case ast.Sub:
			return constVal{Kind: kind, F: lf - rf, OK: true}
		case ast.Mul:
			return constVal{Kind: kind, F: lf * rf, OK: true}
		case ast.Div:
			return constVal{Kind: kind, F: lf / rf, OK: true}
		case ast.Pow:
			return constVal{Kind: kind, F: math.Pow(lf, rf), OK: true}
		}
	}
	return constVal{}
}

// evalConstInt evaluates an expression that must be an integer constant
// (array bounds, section triplets); reports an error otherwise.
func (lw *lowerer) evalConstInt(e ast.Expr, what string) (int, bool) {
	c := lw.evalConst(e)
	if !c.OK || c.Kind != nir.Integer32 {
		lw.rep.Errorf("lower", e.Position(), "%s must be an integer constant expression", what)
		return 0, false
	}
	return int(c.I), true
}

// freshTemp allocates a compiler temporary with the given type, matching
// the paper's tmp0/tmp1 naming (Fig. 12).
func (lw *lowerer) freshTemp(kind nir.ScalarKind, sh shape.Shape, pos source.Pos) *Symbol {
	name := fmt.Sprintf("tmp%d", lw.tempCount)
	lw.tempCount++
	sym := &Symbol{Name: name, Kind: kind, Shape: sh, Temp: true}
	if sh == nil {
		sym.Type = nir.Scalar{Kind: kind}
	} else {
		sym.Type = nir.DField{Shape: sh, Elem: nir.Scalar{Kind: kind}}
		sym.Lowers = shape.Lowers(sh)
	}
	if !lw.syms.Define(sym) {
		lw.rep.Errorf("lower", pos, "internal: temporary %s collides", name)
	}
	return sym
}

// shapeKey produces a canonical string for shape identity used to assign
// domain names deterministically.
func shapeKey(s shape.Shape) string { return s.String() }
