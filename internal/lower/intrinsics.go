package lower

import (
	"sort"

	"f90y/internal/ast"
	"f90y/internal/nir"
	"f90y/internal/shape"
)

// IntrinsicNames returns the sorted names of every intrinsic the
// compiler lowers. Cross-checked against interp.IntrinsicNames by the
// backend coverage audit.
func IntrinsicNames() []string {
	names := make([]string, 0, len(intrinsics))
	for n := range intrinsics {
		names = append(names, n)
	}
	sort.Strings(names)
	return names
}

// intrinsicFn lowers one intrinsic call.
type intrinsicFn func(*lowerer, *ast.Index) tv

// intrinsics maps intrinsic names to their lowering rules. Elemental
// intrinsics become unary/binary value operators; transformational ones
// (CSHIFT, SUM, TRANSPOSE, ...) become cm_* runtime FcnCalls computed into
// compiler temporaries — the paper's tmp0/tmp1 pattern (Fig. 12) — which
// the optimizer then classifies as communication phases.
var intrinsics map[string]intrinsicFn

func init() {
	intrinsics = map[string]intrinsicFn{
		"sqrt": elemental(nir.Sqrt), "sin": elemental(nir.Sin), "cos": elemental(nir.Cos),
		"tan": elemental(nir.Tan), "exp": elemental(nir.Exp), "log": elemental(nir.Log),
		"abs":   lowerAbs,
		"real":  conversion(nir.ToFloat32, nir.Float32),
		"float": conversion(nir.ToFloat32, nir.Float32),
		"dble":  conversion(nir.ToFloat64, nir.Float64),
		"int":   conversion(nir.ToInteger32, nir.Integer32),
		"mod":   lowerMod,
		"min":   variadic(nir.Min), "max": variadic(nir.Max),
		"merge":       lowerMerge,
		"cshift":      lowerCshift,
		"eoshift":     lowerEoshift,
		"sum":         reduction("cm_reduce_sum"),
		"product":     reduction("cm_reduce_product"),
		"maxval":      reduction("cm_reduce_max"),
		"minval":      reduction("cm_reduce_min"),
		"any":         logicalReduction("cm_reduce_any", nir.Logical32),
		"all":         logicalReduction("cm_reduce_all", nir.Logical32),
		"count":       logicalReduction("cm_reduce_count", nir.Integer32),
		"transpose":   lowerTranspose,
		"gather":      lowerGather,
		"spread":      lowerSpread,
		"dot_product": lowerDotProduct,
		"size":        lowerSize,
	}
}

// getArgs resolves positional and keyword arguments of an intrinsic call
// against the given parameter names. Missing optional arguments are nil.
func (lw *lowerer) getArgs(e *ast.Index, names ...string) []ast.Expr {
	out := make([]ast.Expr, len(names))
	positional := true
	for i, sub := range e.Subs {
		if !sub.Single {
			lw.rep.Errorf("typecheck", e.Pos, "section triplet invalid as argument of %q", e.Name)
			continue
		}
		key := ""
		if i < len(e.Keys) {
			key = e.Keys[i]
		}
		if key == "" {
			if !positional {
				lw.rep.Errorf("typecheck", e.Pos, "positional argument after keyword argument in %q", e.Name)
				continue
			}
			if i >= len(names) {
				lw.rep.Errorf("typecheck", e.Pos, "too many arguments to %q", e.Name)
				continue
			}
			out[i] = sub.Lo
			continue
		}
		positional = false
		found := false
		for j, n := range names {
			if n == key {
				out[j] = sub.Lo
				found = true
				break
			}
		}
		if !found {
			lw.rep.Errorf("typecheck", e.Pos, "unknown keyword argument %q to %q", key, e.Name)
		}
	}
	return out
}

func elemental(op nir.UnOp) intrinsicFn {
	return func(lw *lowerer, e *ast.Index) tv {
		args := lw.getArgs(e, "x")
		if args[0] == nil {
			lw.rep.Errorf("typecheck", e.Pos, "%q requires an argument", e.Name)
			return badTV
		}
		x := lw.lowerExpr(args[0])
		k := x.kind
		if k == nir.Integer32 {
			x.v = convert(x.v, k, nir.Float64)
			k = nir.Float64
		}
		if k == nir.Logical32 {
			lw.rep.Errorf("typecheck", e.Pos, "%q of a logical value", e.Name)
			return badTV
		}
		return tv{v: nir.Unary{Op: op, X: x.v}, kind: k, shape: x.shape}
	}
}

func lowerAbs(lw *lowerer, e *ast.Index) tv {
	args := lw.getArgs(e, "x")
	if args[0] == nil {
		lw.rep.Errorf("typecheck", e.Pos, "abs requires an argument")
		return badTV
	}
	x := lw.lowerExpr(args[0])
	if x.kind == nir.Logical32 {
		lw.rep.Errorf("typecheck", e.Pos, "abs of a logical value")
		return badTV
	}
	return tv{v: nir.Unary{Op: nir.Abs, X: x.v}, kind: x.kind, shape: x.shape}
}

func conversion(op nir.UnOp, to nir.ScalarKind) intrinsicFn {
	return func(lw *lowerer, e *ast.Index) tv {
		args := lw.getArgs(e, "x")
		if args[0] == nil {
			lw.rep.Errorf("typecheck", e.Pos, "%q requires an argument", e.Name)
			return badTV
		}
		x := lw.lowerExpr(args[0])
		if x.kind == to {
			return x
		}
		return tv{v: nir.Unary{Op: op, X: x.v}, kind: to, shape: x.shape}
	}
}

func lowerMod(lw *lowerer, e *ast.Index) tv {
	args := lw.getArgs(e, "a", "p")
	if args[0] == nil || args[1] == nil {
		lw.rep.Errorf("typecheck", e.Pos, "mod requires two arguments")
		return badTV
	}
	a := lw.lowerExpr(args[0])
	p := lw.lowerExpr(args[1])
	k := promote(a.kind, p.kind)
	sh := lw.unifyShapes(a.shape, p.shape, e.Pos)
	return tv{v: nir.Binary{Op: nir.Mod, L: convert(a.v, a.kind, k), R: convert(p.v, p.kind, k)}, kind: k, shape: sh}
}

func variadic(op nir.BinOp) intrinsicFn {
	return func(lw *lowerer, e *ast.Index) tv {
		if len(e.Subs) < 2 {
			lw.rep.Errorf("typecheck", e.Pos, "%q requires at least two arguments", e.Name)
			return badTV
		}
		var acc tv
		for i, sub := range e.Subs {
			if !sub.Single {
				lw.rep.Errorf("typecheck", e.Pos, "bad argument %d to %q", i+1, e.Name)
				return badTV
			}
			x := lw.lowerExpr(sub.Lo)
			if i == 0 {
				acc = x
				continue
			}
			k := promote(acc.kind, x.kind)
			sh := lw.unifyShapes(acc.shape, x.shape, e.Pos)
			acc = tv{v: nir.Binary{Op: op, L: convert(acc.v, acc.kind, k), R: convert(x.v, x.kind, k)}, kind: k, shape: sh}
		}
		return acc
	}
}

// lowerMerge lowers MERGE(tsource, fsource, mask) by materializing a
// temporary and issuing a pair of complementary masked moves — the same
// masked-move encoding the slicewise PE uses for conditional assignment
// (§2.2: "the programmer must use masked moves to simulate conditional
// assignment").
func lowerMerge(lw *lowerer, e *ast.Index) tv {
	args := lw.getArgs(e, "tsource", "fsource", "mask")
	if args[0] == nil || args[1] == nil || args[2] == nil {
		lw.rep.Errorf("typecheck", e.Pos, "merge requires tsource, fsource, mask")
		return badTV
	}
	t := lw.lowerExpr(args[0])
	f := lw.lowerExpr(args[1])
	m := lw.lowerExpr(args[2])
	if m.kind != nir.Logical32 {
		lw.rep.Errorf("typecheck", e.Pos, "merge mask must be logical")
		return badTV
	}
	k := promote(t.kind, f.kind)
	sh := lw.unifyShapes(lw.unifyShapes(t.shape, f.shape, e.Pos), m.shape, e.Pos)
	tmp := lw.freshTemp(k, sh, e.Pos)
	var tgt nir.Value
	if sh == nil {
		tgt = nir.SVar{Name: tmp.Name}
	} else {
		tgt = nir.AVar{Name: tmp.Name, Field: nir.Everywhere{}}
	}
	lw.pre = append(lw.pre, nir.Move{Over: sh, Moves: []nir.GuardedMove{
		{Mask: m.v, Src: convert(t.v, t.kind, k), Tgt: tgt, Pos: e.Pos},
		{Mask: nir.Unary{Op: nir.NotU, X: m.v}, Src: convert(f.v, f.kind, k), Tgt: tgt, Pos: e.Pos},
	}, Pos: e.Pos})
	return tv{v: tgt, kind: k, shape: sh}
}

// materializeField forces a field-valued tv into a named whole-array
// reference, computing it into a temporary if necessary, so communication
// intrinsics always operate on plain arrays.
func (lw *lowerer) materializeField(x tv, e ast.Expr) tv {
	if av, ok := x.v.(nir.AVar); ok {
		if _, ew := av.Field.(nir.Everywhere); ew {
			return x
		}
	}
	tmp := lw.freshTemp(x.kind, x.shape, e.Position())
	tgt := nir.AVar{Name: tmp.Name, Field: nir.Everywhere{}}
	lw.pre = append(lw.pre, nir.Move{Over: x.shape, Moves: []nir.GuardedMove{
		{Mask: nir.True, Src: x.v, Tgt: tgt, Pos: e.Position()},
	}, Pos: e.Position()})
	return tv{v: tgt, kind: x.kind, shape: x.shape}
}

// commCall emits MOVE[(True, (FCNCALL(name, args), tmp))] and returns the
// temporary holding the result.
func (lw *lowerer) commCall(name string, args []nir.Value, kind nir.ScalarKind, sh shape.Shape, e ast.Expr) tv {
	tmp := lw.freshTemp(kind, sh, e.Position())
	var tgt nir.Value
	if sh == nil {
		tgt = nir.SVar{Name: tmp.Name}
	} else {
		tgt = nir.AVar{Name: tmp.Name, Field: nir.Everywhere{}}
	}
	lw.pre = append(lw.pre, nir.Move{Over: sh, Moves: []nir.GuardedMove{
		{Mask: nir.True, Src: nir.FcnCall{Name: name, Args: args}, Tgt: tgt, Pos: e.Position()},
	}, Pos: e.Position()})
	return tv{v: tgt, kind: kind, shape: sh}
}

func lowerCshift(lw *lowerer, e *ast.Index) tv {
	args := lw.getArgs(e, "array", "shift", "dim")
	if args[0] == nil || args[1] == nil {
		lw.rep.Errorf("typecheck", e.Pos, "cshift requires array and shift")
		return badTV
	}
	arr := lw.lowerExpr(args[0])
	if arr.scalar() {
		lw.rep.Errorf("typecheck", e.Pos, "cshift of a scalar")
		return badTV
	}
	arr = lw.materializeField(arr, args[0])
	sh := lw.lowerExpr(args[1])
	if !sh.scalar() || sh.kind != nir.Integer32 {
		lw.rep.Errorf("typecheck", e.Pos, "cshift shift must be a scalar integer")
		return badTV
	}
	dim := 1
	if args[2] != nil {
		dim, _ = lw.evalConstInt(args[2], "cshift dim")
	}
	if dim < 1 || dim > shape.Rank(arr.shape) {
		lw.rep.Errorf("shapecheck", e.Pos, "cshift dim %d out of range for rank %d", dim, shape.Rank(arr.shape))
		dim = 1
	}
	return lw.commCall("cm_cshift", []nir.Value{arr.v, sh.v, nir.IntConst(int64(dim))}, arr.kind, arr.shape, e)
}

func lowerEoshift(lw *lowerer, e *ast.Index) tv {
	args := lw.getArgs(e, "array", "shift", "boundary", "dim")
	if args[0] == nil || args[1] == nil {
		lw.rep.Errorf("typecheck", e.Pos, "eoshift requires array and shift")
		return badTV
	}
	arr := lw.lowerExpr(args[0])
	if arr.scalar() {
		lw.rep.Errorf("typecheck", e.Pos, "eoshift of a scalar")
		return badTV
	}
	arr = lw.materializeField(arr, args[0])
	sh := lw.lowerExpr(args[1])
	if !sh.scalar() || sh.kind != nir.Integer32 {
		lw.rep.Errorf("typecheck", e.Pos, "eoshift shift must be a scalar integer")
		return badTV
	}
	var boundary nir.Value = nir.FloatConst(0)
	if args[2] != nil {
		b := lw.lowerExpr(args[2])
		if !b.scalar() {
			lw.rep.Errorf("typecheck", e.Pos, "eoshift boundary must be scalar")
		}
		boundary = convert(b.v, b.kind, arr.kind)
	}
	dim := 1
	if args[3] != nil {
		dim, _ = lw.evalConstInt(args[3], "eoshift dim")
	}
	if dim < 1 || dim > shape.Rank(arr.shape) {
		lw.rep.Errorf("shapecheck", e.Pos, "eoshift dim %d out of range for rank %d", dim, shape.Rank(arr.shape))
		dim = 1
	}
	return lw.commCall("cm_eoshift", []nir.Value{arr.v, sh.v, boundary, nir.IntConst(int64(dim))}, arr.kind, arr.shape, e)
}

func reduction(fn string) intrinsicFn {
	return func(lw *lowerer, e *ast.Index) tv {
		args := lw.getArgs(e, "array")
		if args[0] == nil {
			lw.rep.Errorf("typecheck", e.Pos, "%q requires an array argument", e.Name)
			return badTV
		}
		arr := lw.lowerExpr(args[0])
		if arr.scalar() {
			lw.rep.Errorf("typecheck", e.Pos, "%q of a scalar", e.Name)
			return badTV
		}
		arr = lw.materializeField(arr, args[0])
		return lw.commCall(fn, []nir.Value{arr.v}, arr.kind, nil, e)
	}
}

// logicalReduction handles ANY/ALL/COUNT: a logical array reduced to a
// logical or integer scalar.
func logicalReduction(fn string, result nir.ScalarKind) intrinsicFn {
	return func(lw *lowerer, e *ast.Index) tv {
		args := lw.getArgs(e, "mask")
		if args[0] == nil {
			lw.rep.Errorf("typecheck", e.Pos, "%q requires a mask argument", e.Name)
			return badTV
		}
		m := lw.lowerExpr(args[0])
		if m.scalar() || m.kind != nir.Logical32 {
			lw.rep.Errorf("typecheck", e.Pos, "%q requires a logical array", e.Name)
			return badTV
		}
		m = lw.materializeField(m, args[0])
		out := lw.commCall(fn, []nir.Value{m.v}, result, nil, e)
		return out
	}
}

func lowerTranspose(lw *lowerer, e *ast.Index) tv {
	args := lw.getArgs(e, "matrix")
	if args[0] == nil {
		lw.rep.Errorf("typecheck", e.Pos, "transpose requires a matrix argument")
		return badTV
	}
	m := lw.lowerExpr(args[0])
	if m.scalar() || shape.Rank(m.shape) != 2 {
		lw.rep.Errorf("shapecheck", e.Pos, "transpose requires a rank-2 array")
		return badTV
	}
	m = lw.materializeField(m, args[0])
	ext := shape.Extents(m.shape)
	out := shape.Of(ext[1], ext[0])
	return lw.commCall("cm_transpose", []nir.Value{m.v}, m.kind, out, e)
}

// lowerGather lowers GATHER(array, index) — the irregular-access
// companion of CSHIFT: result(i) = array(index(i)) for rank-1 array and
// index. It becomes a cm_gather runtime call, the general-router
// communication pattern the NEWS grid cannot express.
func lowerGather(lw *lowerer, e *ast.Index) tv {
	args := lw.getArgs(e, "array", "index")
	if args[0] == nil || args[1] == nil {
		lw.rep.Errorf("typecheck", e.Pos, "gather requires array and index")
		return badTV
	}
	arr := lw.lowerExpr(args[0])
	idx := lw.lowerExpr(args[1])
	if arr.scalar() || shape.Rank(arr.shape) != 1 {
		lw.rep.Errorf("shapecheck", e.Pos, "gather requires a rank-1 array")
		return badTV
	}
	if idx.scalar() || shape.Rank(idx.shape) != 1 || idx.kind != nir.Integer32 {
		lw.rep.Errorf("typecheck", e.Pos, "gather index must be a rank-1 integer array")
		return badTV
	}
	arr = lw.materializeField(arr, args[0])
	idx = lw.materializeField(idx, args[1])
	return lw.commCall("cm_gather", []nir.Value{arr.v, idx.v}, arr.kind, idx.shape, e)
}

func lowerSpread(lw *lowerer, e *ast.Index) tv {
	args := lw.getArgs(e, "source", "dim", "ncopies")
	if args[0] == nil || args[1] == nil || args[2] == nil {
		lw.rep.Errorf("typecheck", e.Pos, "spread requires source, dim, ncopies")
		return badTV
	}
	src := lw.lowerExpr(args[0])
	dim, _ := lw.evalConstInt(args[1], "spread dim")
	n, _ := lw.evalConstInt(args[2], "spread ncopies")
	if n < 1 {
		lw.rep.Errorf("shapecheck", e.Pos, "spread ncopies must be positive")
		n = 1
	}
	var ext []int
	if !src.scalar() {
		src = lw.materializeField(src, args[0])
		ext = shape.Extents(src.shape)
	}
	if dim < 1 || dim > len(ext)+1 {
		lw.rep.Errorf("shapecheck", e.Pos, "spread dim %d out of range", dim)
		dim = 1
	}
	newExt := make([]int, 0, len(ext)+1)
	newExt = append(newExt, ext[:dim-1]...)
	newExt = append(newExt, n)
	newExt = append(newExt, ext[dim-1:]...)
	out := shape.Of(newExt...)
	return lw.commCall("cm_spread", []nir.Value{src.v, nir.IntConst(int64(dim)), nir.IntConst(int64(n))}, src.kind, out, e)
}

func lowerDotProduct(lw *lowerer, e *ast.Index) tv {
	args := lw.getArgs(e, "vector_a", "vector_b")
	if args[0] == nil || args[1] == nil {
		lw.rep.Errorf("typecheck", e.Pos, "dot_product requires two vectors")
		return badTV
	}
	a := lw.lowerExpr(args[0])
	b := lw.lowerExpr(args[1])
	if a.scalar() || b.scalar() || shape.Rank(a.shape) != 1 || shape.Rank(b.shape) != 1 {
		lw.rep.Errorf("shapecheck", e.Pos, "dot_product requires rank-1 arrays")
		return badTV
	}
	lw.unifyShapes(a.shape, b.shape, e.Pos)
	a = lw.materializeField(a, args[0])
	b = lw.materializeField(b, args[1])
	k := promote(a.kind, b.kind)
	return lw.commCall("cm_dot", []nir.Value{a.v, b.v}, k, nil, e)
}

func lowerSize(lw *lowerer, e *ast.Index) tv {
	args := lw.getArgs(e, "array", "dim")
	if args[0] == nil {
		lw.rep.Errorf("typecheck", e.Pos, "size requires an array argument")
		return badTV
	}
	ident, ok := args[0].(*ast.Ident)
	if !ok {
		lw.rep.Errorf("typecheck", e.Pos, "size argument must be an array name")
		return badTV
	}
	sym, ok := lw.syms.Lookup(ident.Name)
	if !ok || sym.Shape == nil {
		lw.rep.Errorf("typecheck", e.Pos, "size of non-array %q", ident.Name)
		return badTV
	}
	if args[1] == nil {
		return tv{v: nir.IntConst(int64(shape.Size(sym.Shape))), kind: nir.Integer32}
	}
	dim, _ := lw.evalConstInt(args[1], "size dim")
	ext := shape.Extents(sym.Shape)
	if dim < 1 || dim > len(ext) {
		lw.rep.Errorf("shapecheck", e.Pos, "size dim %d out of range", dim)
		return badTV
	}
	return tv{v: nir.IntConst(int64(ext[dim-1])), kind: nir.Integer32}
}
