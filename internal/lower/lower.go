package lower

import (
	"fmt"

	"f90y/internal/ast"
	"f90y/internal/nir"
	"f90y/internal/shape"
	"f90y/internal/source"
)

// lowerer carries the state of one lowering run.
type lowerer struct {
	rep       *source.Reporter
	syms      *SymTab
	tempCount int
	loopCount int
	idxEnv    map[string]nir.Value // DO/FORALL index substitutions
	pre       []nir.Imp            // pending pre-actions for the current statement
}

// Lower runs the semantic lowering stage over one parsed program unit,
// producing a typechecked, shapechecked NIR module.
func Lower(prog *ast.Program) (*Module, error) {
	var rep source.Reporter
	lw := &lowerer{rep: &rep, syms: NewSymTab(), idxEnv: map[string]nir.Value{}}

	init := lw.lowerDecls(prog.Decls)
	body := lw.lowerStmts(prog.Body)
	body = nir.Seq(nir.Seq(init...), body)

	if rep.HasErrors() {
		return nil, rep.Err()
	}

	mod := &Module{Name: prog.Name, Body: body, Syms: lw.syms}
	mod.Prog = lw.wrap(body, mod)
	return mod, nil
}

// lowerDecls is the declaration-domain semantic equation. It populates the
// symbol table and returns initialization actions for initialized
// non-PARAMETER entities.
func (lw *lowerer) lowerDecls(decls []*ast.Decl) []nir.Imp {
	var init []nir.Imp
	for _, d := range decls {
		kind := baseKind(d.Kind)
		sym := &Symbol{Name: d.Name, Kind: kind, Param: d.Param}

		if d.Param {
			if d.Dims != nil {
				lw.rep.Errorf("lower", d.Pos, "array PARAMETER %q not supported", d.Name)
			}
			if d.Init == nil {
				lw.rep.Errorf("lower", d.Pos, "PARAMETER %q lacks a value", d.Name)
				continue
			}
			c := lw.evalConst(d.Init)
			if !c.OK {
				lw.rep.Errorf("lower", d.Pos, "PARAMETER %q value is not constant", d.Name)
				continue
			}
			// A parameter's value adopts its declared kind.
			sym.Const = coerceConst(c, kind)
			sym.Type = nir.Scalar{Kind: kind}
			if !lw.syms.Define(sym) {
				lw.rep.Errorf("lower", d.Pos, "duplicate declaration of %q", d.Name)
			}
			continue
		}

		if d.Dims == nil {
			sym.Type = nir.Scalar{Kind: kind}
		} else {
			var dims []shape.Shape
			var lowers []int
			for _, ext := range d.Dims {
				lo := 1
				if ext.Lo != nil {
					lo, _ = lw.evalConstInt(ext.Lo, "array lower bound")
				}
				hi, _ := lw.evalConstInt(ext.Hi, "array upper bound")
				if hi < lo {
					lw.rep.Errorf("lower", d.Pos, "array %q has empty extent %d:%d", d.Name, lo, hi)
					hi = lo
				}
				dims = append(dims, shape.Interval{Lo: lo, Hi: hi})
				lowers = append(lowers, lo)
			}
			if len(dims) == 1 {
				sym.Shape = dims[0]
			} else {
				sym.Shape = shape.Prod{Dims: dims}
			}
			sym.Lowers = lowers
			sym.Type = nir.DField{Shape: sym.Shape, Elem: nir.Scalar{Kind: kind}}
		}
		if !lw.syms.Define(sym) {
			lw.rep.Errorf("lower", d.Pos, "duplicate declaration of %q", d.Name)
			continue
		}

		if d.Init != nil {
			lw.pre = nil
			rhs := lw.lowerExpr(d.Init)
			mv := lw.buildAssign(sym, nil, rhs, nil, d.Pos)
			init = append(init, lw.takePre()...)
			init = append(init, mv)
		}
	}
	return init
}

func baseKind(k ast.BaseKind) nir.ScalarKind {
	switch k {
	case ast.Integer:
		return nir.Integer32
	case ast.Real:
		return nir.Float32
	case ast.Double:
		return nir.Float64
	default:
		return nir.Logical32
	}
}

func coerceConst(c constVal, kind nir.ScalarKind) constVal {
	if c.Kind == kind {
		return c
	}
	out := constVal{Kind: kind, OK: true}
	switch kind {
	case nir.Integer32:
		out.I = int64(c.asFloat())
	case nir.Float32, nir.Float64:
		out.F = c.asFloat()
	case nir.Logical32:
		out.B = c.B
	}
	return out
}

func (lw *lowerer) takePre() []nir.Imp {
	p := lw.pre
	lw.pre = nil
	return p
}

// lowerStmts is the imperative-domain semantic equation over a statement
// list: each statement becomes an action, prefixed by the pre-actions its
// expressions demanded.
func (lw *lowerer) lowerStmts(stmts []ast.Stmt) nir.Imp {
	var actions []nir.Imp
	for _, s := range stmts {
		lw.pre = nil
		a := lw.lowerStmt(s)
		actions = append(actions, lw.takePre()...)
		actions = append(actions, a)
	}
	return nir.Seq(actions...)
}

func (lw *lowerer) lowerStmt(s ast.Stmt) nir.Imp {
	switch s := s.(type) {
	case *ast.Assign:
		return lw.lowerAssign(s, nil, nil)
	case *ast.If:
		return lw.lowerIf(s)
	case *ast.DoLoop:
		return lw.lowerDo(s)
	case *ast.DoWhile:
		cond := lw.lowerExpr(s.Cond)
		if !cond.scalar() || cond.kind != nir.Logical32 {
			lw.rep.Errorf("typecheck", s.Pos, "DO WHILE condition must be a scalar logical")
		}
		pre := lw.takePre()
		body := lw.lowerStmts(s.Body)
		// Re-evaluate any condition temporaries at the loop bottom.
		return nir.Seq(nir.Seq(pre...), nir.While{Cond: cond.v, Body: nir.Seq(body, nir.Seq(clone(pre)...))})
	case *ast.Where:
		return lw.lowerWhere(s)
	case *ast.Forall:
		return lw.lowerForall(s)
	case *ast.Print:
		return lw.lowerPrint(s)
	case *ast.Call:
		lw.rep.Errorf("lower", s.Pos, "user subroutines are outside the prototype's subset (CALL %s)", s.Name)
		return nir.Skip{}
	case *ast.Continue:
		return nir.Skip{}
	case *ast.Stop:
		return nir.CallImp{Name: "rt_stop"}
	}
	lw.rep.Errorf("lower", s.Position(), "unsupported statement %T", s)
	return nir.Skip{}
}

// clone shallow-copies an action list (pre-action re-emission).
func clone(in []nir.Imp) []nir.Imp {
	out := make([]nir.Imp, len(in))
	copy(out, in)
	return out
}

// lowerAssign lowers LHS = RHS under an optional mask (from WHERE).
func (lw *lowerer) lowerAssign(a *ast.Assign, mask nir.Value, maskShape shape.Shape) nir.Imp {
	rhs := lw.lowerExpr(a.RHS)
	switch lhs := a.LHS.(type) {
	case *ast.Ident:
		if _, isIdx := lw.idxEnv[lhs.Name]; isIdx {
			lw.rep.Errorf("typecheck", lhs.Pos, "assignment to loop index %q", lhs.Name)
			return nir.Skip{}
		}
		sym, ok := lw.syms.Lookup(lhs.Name)
		if !ok {
			lw.rep.Errorf("typecheck", lhs.Pos, "undeclared identifier %q", lhs.Name)
			return nir.Skip{}
		}
		if sym.Param {
			lw.rep.Errorf("typecheck", lhs.Pos, "assignment to PARAMETER %q", lhs.Name)
			return nir.Skip{}
		}
		return lw.buildAssign(sym, nil, rhs, lw.checkedMask(mask, maskShape, sym.Shape, a.Pos), a.Pos)
	case *ast.Index:
		sym, ok := lw.syms.Lookup(lhs.Name)
		if !ok {
			lw.rep.Errorf("typecheck", lhs.Pos, "undeclared identifier %q", lhs.Name)
			return nir.Skip{}
		}
		tgt := lw.lowerArrayRef(lhs, sym)
		av, ok := tgt.v.(nir.AVar)
		if !ok {
			return nir.Skip{}
		}
		return lw.buildAssignTo(av, tgt.shape, sym.Kind, rhs, lw.checkedMask(mask, maskShape, tgt.shape, a.Pos), a.Pos)
	}
	lw.rep.Errorf("typecheck", a.Pos, "invalid assignment target")
	return nir.Skip{}
}

// checkedMask shapechecks a WHERE mask against the assignment's iteration
// shape.
func (lw *lowerer) checkedMask(mask nir.Value, maskShape, tgtShape shape.Shape, pos source.Pos) nir.Value {
	if mask == nil {
		return nil
	}
	if tgtShape == nil {
		lw.rep.Errorf("shapecheck", pos, "scalar assignment inside WHERE")
		return mask
	}
	if maskShape != nil && !shape.Congruent(maskShape, tgtShape) {
		lw.rep.Errorf("shapecheck", pos, "WHERE mask shape %s does not match assignment shape %s", maskShape, tgtShape)
	}
	return mask
}

// buildAssign assembles the MOVE for an assignment to a whole symbol.
func (lw *lowerer) buildAssign(sym *Symbol, _ nir.Field, rhs tv, mask nir.Value, pos source.Pos) nir.Imp {
	var tgt nir.Value
	if sym.Shape == nil {
		tgt = nir.SVar{Name: sym.Name}
	} else {
		tgt = nir.AVar{Name: sym.Name, Field: nir.Everywhere{}}
	}
	if av, ok := tgt.(nir.AVar); ok {
		return lw.buildAssignTo(av, sym.Shape, sym.Kind, rhs, mask, pos)
	}
	// Scalar target.
	if !rhs.scalar() {
		lw.rep.Errorf("shapecheck", pos, "array value assigned to scalar %q", sym.Name)
		return nir.Skip{}
	}
	src := lw.convertChecked(rhs, sym.Kind, pos)
	g := nir.GuardedMove{Mask: nir.True, Src: src, Tgt: tgt, Pos: pos}
	if mask != nil {
		g.Mask = mask
	}
	return nir.Move{Moves: []nir.GuardedMove{g}, Pos: pos}
}

// buildAssignTo assembles the MOVE for an assignment to an array target
// reference (everywhere, element, or section).
func (lw *lowerer) buildAssignTo(tgt nir.AVar, tgtShape shape.Shape, tgtKind nir.ScalarKind, rhs tv, mask nir.Value, pos source.Pos) nir.Imp {
	if tgtShape == nil {
		// Element assignment: A(i,j) = scalar.
		if !rhs.scalar() {
			lw.rep.Errorf("shapecheck", pos, "array value assigned to array element")
			return nir.Skip{}
		}
	} else if !rhs.scalar() && !shape.Congruent(rhs.shape, tgtShape) {
		lw.rep.Errorf("shapecheck", pos, "shapes disagree in assignment: %s = %s", tgtShape, rhs.shape)
	}
	src := lw.convertChecked(rhs, tgtKind, pos)
	g := nir.GuardedMove{Mask: nir.True, Src: src, Tgt: tgt, Pos: pos}
	if mask != nil {
		g.Mask = mask
	}
	return nir.Move{Over: tgtShape, Moves: []nir.GuardedMove{g}, Pos: pos}
}

// convertChecked inserts a kind conversion for the assignment, rejecting
// logical/numeric mixing.
func (lw *lowerer) convertChecked(rhs tv, to nir.ScalarKind, pos source.Pos) nir.Value {
	if (rhs.kind == nir.Logical32) != (to == nir.Logical32) {
		lw.rep.Errorf("typecheck", pos, "cannot assign %s value to %s target",
			nir.Scalar{Kind: rhs.kind}, nir.Scalar{Kind: to})
		return rhs.v
	}
	return convert(rhs.v, rhs.kind, to)
}

func (lw *lowerer) lowerIf(s *ast.If) nir.Imp {
	cond := lw.lowerExpr(s.Cond)
	if cond.kind != nir.Logical32 {
		lw.rep.Errorf("typecheck", s.Pos, "IF condition must be logical")
	}
	if !cond.scalar() {
		lw.rep.Errorf("shapecheck", s.Pos, "IF condition must be scalar; use WHERE for array masks")
	}
	pre := lw.takePre()
	then := lw.lowerStmts(s.Then)
	var els nir.Imp = nir.Skip{}
	if s.Else != nil {
		els = lw.lowerStmts(s.Else)
	}
	return nir.Seq(nir.Seq(pre...), nir.IfThenElse{Cond: cond.v, Then: then, Else: els})
}

// lowerDo lowers an indexed DO. Constant-bound loops become DO over a
// serial shape with the index substituted by a local_under coordinate —
// the inductive loop model of Fig. 4 — so the optimizer can reason about
// them shapewise; dynamic-bound loops fall back to the classical WHILE
// encoding.
func (lw *lowerer) lowerDo(s *ast.DoLoop) nir.Imp {
	from := lw.evalConst(s.From)
	to := lw.evalConst(s.To)
	step := constVal{Kind: nir.Integer32, I: 1, OK: true}
	if s.Step != nil {
		step = lw.evalConst(s.Step)
	}

	if from.OK && to.OK && step.OK &&
		from.Kind == nir.Integer32 && to.Kind == nir.Integer32 && step.Kind == nir.Integer32 {
		return lw.lowerStaticDo(s, int(from.I), int(to.I), int(step.I))
	}
	return lw.lowerDynamicDo(s)
}

func (lw *lowerer) lowerStaticDo(s *ast.DoLoop, from, to, step int) nir.Imp {
	if step == 0 {
		lw.rep.Errorf("lower", s.Pos, "zero DO step")
		return nir.Skip{}
	}
	trips := 0
	if step > 0 && to >= from {
		trips = (to-from)/step + 1
	} else if step < 0 && to <= from {
		trips = (from-to)/(-step) + 1
	}
	if trips == 0 {
		// Zero-trip loop: only the index assignment is observable.
		if sym, ok := lw.syms.Lookup(s.Var); ok && sym.Shape == nil && sym.Kind == nir.Integer32 && !sym.Param {
			return nir.Move{Moves: []nir.GuardedMove{{
				Mask: nir.True, Src: nir.IntConst(int64(from)), Tgt: nir.SVar{Name: s.Var}, Pos: s.Pos}}, Pos: s.Pos}
		}
		return nir.Skip{}
	}

	tag := fmt.Sprintf("do%d", lw.loopCount)
	lw.loopCount++
	var S shape.Interval
	var idx nir.Value
	if step == 1 {
		S = shape.Interval{Lo: from, Hi: to, Serial: true, Tag: tag}
		idx = nir.LocalUnder{S: S, Dim: 1}
	} else {
		S = shape.Interval{Lo: 1, Hi: trips, Serial: true, Tag: tag}
		// i = from + (k-1)*step
		k := nir.LocalUnder{S: S, Dim: 1}
		idx = nir.Binary{Op: nir.Plus,
			L: nir.IntConst(int64(from)),
			R: nir.Binary{Op: nir.Mul,
				L: nir.Binary{Op: nir.Minus, L: k, R: nir.IntConst(1)},
				R: nir.IntConst(int64(step))}}
	}

	saved, had := lw.idxEnv[s.Var]
	lw.idxEnv[s.Var] = idx
	body := lw.lowerStmts(s.Body)
	if had {
		lw.idxEnv[s.Var] = saved
	} else {
		delete(lw.idxEnv, s.Var)
	}
	loop := nir.Imp(nir.Do{S: S, Body: body})
	// Fortran 90 semantics: after loop completion the DO variable holds
	// the value after the final incrementation. Emit the trailing store
	// when the index is a declared scalar integer (observable storage).
	if sym, ok := lw.syms.Lookup(s.Var); ok && sym.Shape == nil && sym.Kind == nir.Integer32 && !sym.Param {
		final := from + trips*step
		loop = nir.Seq(loop, nir.Move{Moves: []nir.GuardedMove{{
			Mask: nir.True, Src: nir.IntConst(int64(final)), Tgt: nir.SVar{Name: s.Var}, Pos: s.Pos}}, Pos: s.Pos})
	}
	return loop
}

func (lw *lowerer) lowerDynamicDo(s *ast.DoLoop) nir.Imp {
	sym, ok := lw.syms.Lookup(s.Var)
	if !ok || sym.Shape != nil || sym.Kind != nir.Integer32 {
		lw.rep.Errorf("typecheck", s.Pos, "DO index %q must be a declared scalar integer", s.Var)
		return nir.Skip{}
	}
	from := lw.lowerExpr(s.From)
	to := lw.lowerExpr(s.To)
	stepc := 1
	if s.Step != nil {
		stepc, _ = lw.evalConstInt(s.Step, "DO step with dynamic bounds")
		if stepc == 0 {
			stepc = 1
		}
	}
	if !from.scalar() || !to.scalar() {
		lw.rep.Errorf("shapecheck", s.Pos, "DO bounds must be scalar")
	}
	pre := lw.takePre()
	iv := nir.SVar{Name: s.Var}

	initMove := nir.Move{Moves: []nir.GuardedMove{{Mask: nir.True, Src: convert(from.v, from.kind, nir.Integer32), Tgt: iv, Pos: s.Pos}}, Pos: s.Pos}
	condOp := nir.LessEq
	if stepc < 0 {
		condOp = nir.GreaterEq
	}
	cond := nir.Binary{Op: condOp, L: iv, R: convert(to.v, to.kind, nir.Integer32)}
	body := lw.lowerStmts(s.Body)
	inc := nir.Move{Moves: []nir.GuardedMove{{Mask: nir.True,
		Src: nir.Binary{Op: nir.Plus, L: iv, R: nir.IntConst(int64(stepc))}, Tgt: iv, Pos: s.Pos}}, Pos: s.Pos}
	return nir.Seq(nir.Seq(pre...), initMove, nir.While{Cond: cond, Body: nir.Seq(body, inc)})
}

// lowerWhere lowers WHERE/ELSEWHERE into complementary masked moves
// (§4.2, Fig. 10). The mask expression is inlined into the guards unless
// a body assignment writes storage the mask reads, in which case Fortran's
// evaluate-mask-first semantics force materialization into a temporary.
func (lw *lowerer) lowerWhere(s *ast.Where) nir.Imp {
	mask := lw.lowerExpr(s.Mask)
	if mask.kind != nir.Logical32 || mask.scalar() {
		lw.rep.Errorf("typecheck", s.Pos, "WHERE mask must be a logical array")
		return nir.Skip{}
	}
	head := lw.takePre()

	// Materialize the mask if any body assignment writes what it reads.
	maskReads := map[string]bool{}
	nir.WalkValues(mask.v, func(v nir.Value) {
		switch v := v.(type) {
		case nir.SVar:
			maskReads[v.Name] = true
		case nir.AVar:
			maskReads[v.Name] = true
		}
	})
	conflict := false
	for _, group := range [][]*ast.Assign{s.Body, s.ElseBody} {
		for _, a := range group {
			switch lhs := a.LHS.(type) {
			case *ast.Ident:
				conflict = conflict || maskReads[lhs.Name]
			case *ast.Index:
				conflict = conflict || maskReads[lhs.Name]
			}
		}
	}
	if conflict {
		tmp := lw.freshTemp(nir.Logical32, mask.shape, s.Pos)
		tgt := nir.AVar{Name: tmp.Name, Field: nir.Everywhere{}}
		head = append(head, nir.Move{Over: mask.shape, Moves: []nir.GuardedMove{
			{Mask: nir.True, Src: mask.v, Tgt: tgt, Pos: s.Pos}}, Pos: s.Pos})
		mask.v = tgt
	}

	var actions []nir.Imp
	actions = append(actions, head...)
	for _, a := range s.Body {
		lw.pre = nil
		mv := lw.lowerAssign(a, mask.v, mask.shape)
		actions = append(actions, lw.takePre()...)
		actions = append(actions, mv)
	}
	notMask := nir.Unary{Op: nir.NotU, X: mask.v}
	for _, a := range s.ElseBody {
		lw.pre = nil
		mv := lw.lowerAssign(a, notMask, mask.shape)
		actions = append(actions, lw.takePre()...)
		actions = append(actions, mv)
	}
	return nir.Seq(actions...)
}

// lowerForall lowers a FORALL into a single parallel MOVE over the index
// space (Fig. 7). Identity subscripts collapse to everywhere references.
func (lw *lowerer) lowerForall(s *ast.Forall) nir.Imp {
	if s.Assign == nil {
		return nir.Skip{}
	}
	type idxInfo struct {
		name string
		val  nir.Value
	}
	var dims []shape.Shape
	var infos []idxInfo
	for _, ix := range s.Indexes {
		lo, ok1 := lw.evalConstInt(ix.Lo, "FORALL bound")
		hi, ok2 := lw.evalConstInt(ix.Hi, "FORALL bound")
		step := 1
		if ix.Step != nil {
			step, _ = lw.evalConstInt(ix.Step, "FORALL stride")
			if step == 0 {
				step = 1
			}
		}
		if !ok1 || !ok2 {
			return nir.Skip{}
		}
		var dim shape.Interval
		if step == 1 {
			dim = shape.Interval{Lo: lo, Hi: hi}
		} else {
			trips := 0
			if step > 0 && hi >= lo {
				trips = (hi-lo)/step + 1
			} else if step < 0 && hi <= lo {
				trips = (lo-hi)/(-step) + 1
			}
			if trips == 0 {
				return nir.Skip{}
			}
			dim = shape.Interval{Lo: 1, Hi: trips}
		}
		dims = append(dims, dim)
		infos = append(infos, idxInfo{name: ix.Var})
	}
	var S shape.Shape
	if len(dims) == 1 {
		S = dims[0]
	} else {
		S = shape.Prod{Dims: dims}
	}
	// Index values: LocalUnder over the whole product shape, or affine
	// maps of it for strided index sets.
	for k := range infos {
		ix := s.Indexes[k]
		base := nir.LocalUnder{S: S, Dim: k + 1}
		step := 1
		if ix.Step != nil {
			step, _ = lw.evalConstInt(ix.Step, "FORALL stride")
		}
		if step == 1 || step == 0 {
			infos[k].val = base
		} else {
			lo, _ := lw.evalConstInt(ix.Lo, "FORALL bound")
			infos[k].val = nir.Binary{Op: nir.Plus,
				L: nir.IntConst(int64(lo)),
				R: nir.Binary{Op: nir.Mul,
					L: nir.Binary{Op: nir.Minus, L: base, R: nir.IntConst(1)},
					R: nir.IntConst(int64(step))}}
		}
	}

	saved := map[string]nir.Value{}
	for _, info := range infos {
		if old, had := lw.idxEnv[info.name]; had {
			saved[info.name] = old
		}
		lw.idxEnv[info.name] = info.val
	}
	defer func() {
		for _, info := range infos {
			if old, had := saved[info.name]; had {
				lw.idxEnv[info.name] = old
			} else {
				delete(lw.idxEnv, info.name)
			}
		}
	}()

	guard := nir.Value(nir.True)
	if s.Mask != nil {
		m := lw.lowerExpr(s.Mask)
		if m.kind != nir.Logical32 {
			lw.rep.Errorf("typecheck", s.Pos, "FORALL mask must be logical")
		}
		guard = m.v
	}

	// Target: must be an element reference over the FORALL indexes.
	lhs, ok := s.Assign.LHS.(*ast.Index)
	if !ok {
		lw.rep.Errorf("typecheck", s.Assign.Pos, "FORALL assignment target must be subscripted")
		return nir.Skip{}
	}
	sym, ok := lw.syms.Lookup(lhs.Name)
	if !ok || sym.Shape == nil {
		lw.rep.Errorf("typecheck", lhs.Pos, "FORALL target %q is not an array", lhs.Name)
		return nir.Skip{}
	}
	tgt := lw.lowerArrayRef(lhs, sym)
	av, ok := tgt.v.(nir.AVar)
	if !ok || tgt.shape != nil {
		lw.rep.Errorf("typecheck", lhs.Pos, "FORALL target must be an element reference")
		return nir.Skip{}
	}

	rhs := lw.lowerExpr(s.Assign.RHS)
	if !rhs.scalar() {
		lw.rep.Errorf("shapecheck", s.Assign.Pos, "FORALL body must be elementwise")
	}
	src := lw.convertChecked(rhs, sym.Kind, s.Assign.Pos)

	idVals := make([]nir.Value, len(infos))
	for k, info := range infos {
		idVals[k] = info.val
	}
	mv := nir.Move{Over: S, Moves: []nir.GuardedMove{{Mask: guard, Src: src, Tgt: av, Pos: s.Assign.Pos}}, Pos: s.Assign.Pos}
	return lw.collapseIdentity(mv, S, idVals)
}

// collapseIdentity rewrites AVar subscript references whose subscripts are
// exactly the identity index vector over S (and whose array shape is
// congruent with S with matching bounds) into everywhere references.
func (lw *lowerer) collapseIdentity(mv nir.Move, S shape.Shape, idVals []nir.Value) nir.Move {
	identity := func(av nir.AVar) nir.Value {
		sub, ok := av.Field.(nir.Subscript)
		if !ok || len(sub.Subs) != len(idVals) {
			return av
		}
		sym, found := lw.syms.Lookup(av.Name)
		if !found || sym.Shape == nil || !shape.Congruent(sym.Shape, S) {
			return av
		}
		// Bounds must also line up for an everywhere collapse.
		sl, il := shape.Lowers(sym.Shape), shape.Lowers(S)
		for i := range sl {
			if sl[i] != il[i] {
				return av
			}
		}
		for i := range sub.Subs {
			if !nir.EqualValue(sub.Subs[i], idVals[i]) {
				return av
			}
		}
		return nir.AVar{Name: av.Name, Field: nir.Everywhere{}}
	}
	out := make([]nir.GuardedMove, len(mv.Moves))
	for i, g := range mv.Moves {
		g.Src = nir.RewriteValues(g.Src, func(v nir.Value) nir.Value {
			if av, ok := v.(nir.AVar); ok {
				return identity(av)
			}
			return v
		})
		g.Mask = nir.RewriteValues(g.Mask, func(v nir.Value) nir.Value {
			if av, ok := v.(nir.AVar); ok {
				return identity(av)
			}
			return v
		})
		if av, ok := g.Tgt.(nir.AVar); ok {
			g.Tgt = identity(av)
		}
		out[i] = g
	}
	return nir.Move{Over: mv.Over, Moves: out, Pos: mv.Pos}
}

func (lw *lowerer) lowerPrint(s *ast.Print) nir.Imp {
	var args []nir.Value
	for _, item := range s.Items {
		x := lw.lowerExpr(item)
		if !x.scalar() {
			x = lw.materializeField(x, item)
		}
		args = append(args, x.v)
	}
	return nir.Seq(nir.Seq(lw.takePre()...), nir.CallImp{Name: "rt_print", Args: args})
}

// wrap builds the full paper-style program: WITH_DOMAIN bindings for each
// distinct array shape, a WITH_DECL(DECLSET[...]) for all entities, and
// the PROGRAM action (Fig. 8).
func (lw *lowerer) wrap(body nir.Imp, mod *Module) nir.Imp {
	shapeNames := map[string]string{}
	var domains []Domain
	for _, sym := range lw.syms.Arrays() {
		key := shapeKey(sym.Shape)
		if _, seen := shapeNames[key]; !seen {
			name := domainName(len(domains))
			shapeNames[key] = name
			domains = append(domains, Domain{Name: name, Shape: sym.Shape})
		}
	}
	mod.Domains = domains

	var decls []nir.Decl
	for _, sym := range lw.syms.All() {
		if sym.Param {
			decls = append(decls, nir.Initialized{Name: sym.Name,
				Type: nir.Scalar{Kind: sym.Kind}, Init: sym.Const.toValue()})
			continue
		}
		t := sym.Type
		if sym.Shape != nil {
			t = nir.DField{Shape: shape.Ref{Name: shapeNames[shapeKey(sym.Shape)]}, Elem: nir.Scalar{Kind: sym.Kind}}
		}
		decls = append(decls, nir.DeclVar{Name: sym.Name, Type: t})
	}

	wrapped := nir.Imp(nir.WithDecl{Decl: nir.DeclSet{List: decls}, Body: body})
	for i := len(domains) - 1; i >= 0; i-- {
		wrapped = nir.WithDomain{Name: domains[i].Name, Shape: domains[i].Shape, Body: wrapped}
	}
	return nir.Program{Body: wrapped}
}
