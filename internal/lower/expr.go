package lower

import (
	"f90y/internal/ast"
	"f90y/internal/nir"
	"f90y/internal/shape"
	"f90y/internal/source"
)

// tv is a typed, shaped NIR value: the result of the value-domain semantic
// equation. Shape nil means scalar.
type tv struct {
	v     nir.Value
	kind  nir.ScalarKind
	shape shape.Shape
}

func (t tv) scalar() bool { return t.shape == nil }

// badTV is the error recovery value.
var badTV = tv{v: nir.IntConst(0), kind: nir.Integer32}

// promote returns the common numeric kind of two operands:
// integer_32 < float_32 < float_64.
func promote(a, b nir.ScalarKind) nir.ScalarKind {
	rank := func(k nir.ScalarKind) int {
		switch k {
		case nir.Integer32:
			return 0
		case nir.Float32:
			return 1
		default:
			return 2
		}
	}
	if rank(a) >= rank(b) {
		return a
	}
	return b
}

// convert wraps v with the conversion operator taking it from kind 'from'
// to kind 'to', or returns it unchanged when the kinds agree.
func convert(v nir.Value, from, to nir.ScalarKind) nir.Value {
	if from == to {
		return v
	}
	switch to {
	case nir.Float64:
		return nir.Unary{Op: nir.ToFloat64, X: v}
	case nir.Float32:
		return nir.Unary{Op: nir.ToFloat32, X: v}
	case nir.Integer32:
		return nir.Unary{Op: nir.ToInteger32, X: v}
	}
	return v
}

// unifyShapes shapechecks two operand shapes for a direct computation:
// scalar broadcasts against anything; two fields must be congruent. It
// returns the result shape.
func (lw *lowerer) unifyShapes(a, b shape.Shape, pos source.Pos) shape.Shape {
	switch {
	case a == nil:
		return b
	case b == nil:
		return a
	case shape.Congruent(a, b):
		return a
	default:
		lw.rep.Errorf("shapecheck", pos, "shapes disagree in direct computation: %s vs %s", a, b)
		return a
	}
}

var astBin = map[ast.BinOp]nir.BinOp{
	ast.Add: nir.Plus, ast.Sub: nir.Minus, ast.Mul: nir.Mul, ast.Div: nir.Div,
	ast.Pow: nir.Pow, ast.Eq: nir.Equals, ast.Ne: nir.NotEquals,
	ast.Lt: nir.Less, ast.Le: nir.LessEq, ast.Gt: nir.Greater, ast.Ge: nir.GreaterEq,
	ast.And: nir.AndOp, ast.Or: nir.OrOp, ast.Eqv: nir.EqvOp, ast.Neqv: nir.NeqvOp,
}

// lowerExpr is the value-domain semantic equation: it maps a source
// expression to a typed NIR value, emitting pre-actions (temporary
// computations for communication intrinsics, reductions, MERGE) onto
// lw.pre.
func (lw *lowerer) lowerExpr(e ast.Expr) tv {
	switch e := e.(type) {
	case *ast.IntLit:
		return tv{v: nir.IntConst(e.Value), kind: nir.Integer32}
	case *ast.RealLit:
		if e.Double {
			return tv{v: nir.FloatConst(e.Value), kind: nir.Float64}
		}
		return tv{v: nir.Float32Const(e.Value), kind: nir.Float32}
	case *ast.LogicalLit:
		return tv{v: nir.BoolConst(e.Value), kind: nir.Logical32}
	case *ast.StringLit:
		return tv{v: nir.StrConst{S: e.Value}, kind: nir.Logical32}
	case *ast.Ident:
		return lw.lowerIdent(e)
	case *ast.Unary:
		return lw.lowerUnary(e)
	case *ast.Binary:
		return lw.lowerBinary(e)
	case *ast.Index:
		return lw.lowerIndex(e)
	}
	lw.rep.Errorf("lower", e.Position(), "unsupported expression %T", e)
	return badTV
}

func (lw *lowerer) lowerIdent(e *ast.Ident) tv {
	// Loop and FORALL indexes are substituted from the index environment.
	if v, ok := lw.idxEnv[e.Name]; ok {
		return tv{v: v, kind: nir.Integer32}
	}
	sym, ok := lw.syms.Lookup(e.Name)
	if !ok {
		lw.rep.Errorf("typecheck", e.Pos, "undeclared identifier %q", e.Name)
		return badTV
	}
	if sym.Param {
		return tv{v: sym.Const.toValue(), kind: sym.Const.Kind}
	}
	if sym.Shape != nil {
		return tv{v: nir.AVar{Name: sym.Name, Field: nir.Everywhere{}}, kind: sym.Kind, shape: sym.Shape}
	}
	return tv{v: nir.SVar{Name: sym.Name}, kind: sym.Kind}
}

func (lw *lowerer) lowerUnary(e *ast.Unary) tv {
	x := lw.lowerExpr(e.X)
	switch e.Op {
	case ast.Neg:
		if x.kind == nir.Logical32 {
			lw.rep.Errorf("typecheck", e.Pos, "negation of logical value")
			return badTV
		}
		return tv{v: nir.Unary{Op: nir.Neg, X: x.v}, kind: x.kind, shape: x.shape}
	case ast.Not:
		if x.kind != nir.Logical32 {
			lw.rep.Errorf("typecheck", e.Pos, ".not. applied to non-logical value")
			return badTV
		}
		return tv{v: nir.Unary{Op: nir.NotU, X: x.v}, kind: x.kind, shape: x.shape}
	default: // unary plus
		return x
	}
}

func (lw *lowerer) lowerBinary(e *ast.Binary) tv {
	l := lw.lowerExpr(e.L)
	r := lw.lowerExpr(e.R)
	op := astBin[e.Op]
	sh := lw.unifyShapes(l.shape, r.shape, e.Pos)

	switch {
	case op.Logical():
		if l.kind != nir.Logical32 || r.kind != nir.Logical32 {
			lw.rep.Errorf("typecheck", e.Pos, "%s requires logical operands", e.Op)
			return badTV
		}
		return tv{v: nir.Binary{Op: op, L: l.v, R: r.v}, kind: nir.Logical32, shape: sh}
	case op.Comparison():
		if l.kind == nir.Logical32 || r.kind == nir.Logical32 {
			lw.rep.Errorf("typecheck", e.Pos, "%s requires numeric operands", e.Op)
			return badTV
		}
		k := promote(l.kind, r.kind)
		return tv{v: nir.Binary{Op: op, L: convert(l.v, l.kind, k), R: convert(r.v, r.kind, k)},
			kind: nir.Logical32, shape: sh}
	default: // arithmetic
		if l.kind == nir.Logical32 || r.kind == nir.Logical32 {
			lw.rep.Errorf("typecheck", e.Pos, "arithmetic on logical value")
			return badTV
		}
		// Integer exponents stay unconverted: x**2 is repeated
		// multiplication, not exp/log (and the PE compiler strength-
		// reduces small constant powers).
		if op == nir.Pow && r.kind == nir.Integer32 {
			return tv{v: nir.Binary{Op: nir.Pow, L: l.v, R: r.v}, kind: l.kind, shape: sh}
		}
		k := promote(l.kind, r.kind)
		return tv{v: nir.Binary{Op: op, L: convert(l.v, l.kind, k), R: convert(r.v, r.kind, k)},
			kind: k, shape: sh}
	}
}

// lowerIndex handles NAME(...): an array element, an array section, or an
// intrinsic call, disambiguated against the symbol table.
func (lw *lowerer) lowerIndex(e *ast.Index) tv {
	if sym, ok := lw.syms.Lookup(e.Name); ok && !sym.Param {
		return lw.lowerArrayRef(e, sym)
	}
	if fn, ok := intrinsics[e.Name]; ok {
		return fn(lw, e)
	}
	lw.rep.Errorf("typecheck", e.Pos, "%q is not an array or known intrinsic", e.Name)
	return badTV
}

// lowerArrayRef lowers A(subscripts): either a scalar element reference
// (all subscripts single scalars) or a section.
func (lw *lowerer) lowerArrayRef(e *ast.Index, sym *Symbol) tv {
	if sym.Shape == nil {
		lw.rep.Errorf("typecheck", e.Pos, "%q is scalar and cannot be subscripted", e.Name)
		return badTV
	}
	rank := shape.Rank(sym.Shape)
	if len(e.Subs) != rank {
		lw.rep.Errorf("shapecheck", e.Pos, "%q has rank %d but %d subscripts given", e.Name, rank, len(e.Subs))
		return badTV
	}
	for i, k := range e.Keys {
		if k != "" {
			lw.rep.Errorf("typecheck", e.Pos, "keyword argument %q invalid in array reference (subscript %d)", k, i+1)
		}
	}

	allSingle := true
	for _, s := range e.Subs {
		if !s.Single {
			allSingle = false
		}
	}
	if allSingle {
		subs := make([]nir.Value, rank)
		for i, s := range e.Subs {
			sv := lw.lowerExpr(s.Lo)
			if !sv.scalar() || sv.kind != nir.Integer32 {
				lw.rep.Errorf("typecheck", s.Lo.Position(), "subscript %d of %q must be a scalar integer", i+1, e.Name)
			}
			subs[i] = sv.v
		}
		return tv{v: nir.AVar{Name: sym.Name, Field: nir.Subscript{Subs: subs}}, kind: sym.Kind}
	}

	// Section reference: build triplets and the section iteration shape.
	sec, secShape := lw.lowerSection(e, sym)
	return tv{v: nir.AVar{Name: sym.Name, Field: sec}, kind: sym.Kind, shape: secShape}
}

// lowerSection builds the Section field and its iteration shape for a
// section reference. Triplet bounds must be integer constants in this
// subset (runtime section bounds would defeat static shapechecking).
func (lw *lowerer) lowerSection(e *ast.Index, sym *Symbol) (nir.Section, shape.Shape) {
	declExt := shape.Extents(sym.Shape)
	declLo := sym.Lowers
	subs := make([]nir.Triplet, len(e.Subs))
	var iterDims []shape.Shape
	for i, s := range e.Subs {
		lo := declLo[i]
		hi := declLo[i] + declExt[i] - 1
		if s.Single {
			sv := lw.lowerExpr(s.Lo)
			if !sv.scalar() || sv.kind != nir.Integer32 {
				lw.rep.Errorf("typecheck", s.Lo.Position(), "subscript %d of %q must be a scalar integer", i+1, e.Name)
			}
			subs[i] = nir.Triplet{Scalar: true, Lo: sv.v}
			continue
		}
		if s.Lo == nil && s.Hi == nil && s.Step == nil {
			subs[i] = nir.Triplet{Full: true}
			iterDims = append(iterDims, shape.Interval{Lo: lo, Hi: hi})
			continue
		}
		clo, chi, cstep := lo, hi, 1
		if s.Lo != nil {
			clo, _ = lw.evalConstInt(s.Lo, "section lower bound")
		}
		if s.Hi != nil {
			chi, _ = lw.evalConstInt(s.Hi, "section upper bound")
		}
		if s.Step != nil {
			cstep, _ = lw.evalConstInt(s.Step, "section stride")
			if cstep == 0 {
				lw.rep.Errorf("shapecheck", e.Pos, "zero section stride")
				cstep = 1
			}
		}
		count := 0
		if cstep > 0 && chi >= clo {
			count = (chi-clo)/cstep + 1
		} else if cstep < 0 && chi <= clo {
			count = (clo-chi)/(-cstep) + 1
		}
		if count <= 0 {
			lw.rep.Errorf("shapecheck", e.Pos, "empty section %d:%d:%d of %q", clo, chi, cstep, e.Name)
			count = 1
		}
		t := nir.Triplet{Lo: nir.IntConst(int64(clo)), Hi: nir.IntConst(int64(chi))}
		if cstep != 1 {
			t.Step = nir.IntConst(int64(cstep))
		}
		subs[i] = t
		iterDims = append(iterDims, shape.Interval{Lo: 1, Hi: count})
	}
	var iter shape.Shape
	switch len(iterDims) {
	case 0:
		iter = nil // fully scalar after rank reduction — caller treats as element
	case 1:
		iter = iterDims[0]
	default:
		iter = shape.Prod{Dims: iterDims}
	}
	return nir.Section{Subs: subs}, iter
}
