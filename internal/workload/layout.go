package workload

// The layout kernel trio: three router-heavy benchmarks whose best data
// distribution differs, used by the swebench -layout-sweep experiment
// (E2) to exercise the !HPF$ distribution plane end to end. Each
// generator takes the directive lines verbatim (e.g. "!HPF$ DISTRIBUTE
// a(CYCLIC)"); an empty slice yields the directive-free program, whose
// compilation must stay bit-identical to the seed pipeline.

import (
	"fmt"
	"strings"
)

// renderDirectives joins directive lines for splicing after the
// declarations (directives are recognized at any statement boundary).
func renderDirectives(directives []string) string {
	if len(directives) == 0 {
		return ""
	}
	return strings.Join(directives, "\n") + "\n"
}

// LayoutTranspose is the transpose ping-pong kernel over an n-by-n grid:
// per iteration two full transposes plus a light grid-local accumulate.
// Under the default blockwise layout every transpose is a general-router
// permutation; a (BLOCK,*) source aligned with a (*,BLOCK) destination
// makes the permutation PE-local.
func LayoutTranspose(n, iters int, directives []string) string {
	return fmt.Sprintf(`program ltrans
integer, parameter :: n = %d
integer, parameter :: iters = %d
real, array(n,n) :: a, b, c
integer it
%sforall (i=1:n, j=1:n) a(i,j) = 0.001*i + 0.000001*j
c = 0.0
do it = 1, iters
  b = transpose(a)
  c = c + 0.5*b
  a = transpose(b) + 0.125*c
end do
end program ltrans
`, n, iters, renderDirectives(directives))
}

// LayoutFFT is the FFT butterfly kernel over an n-vector: each stage
// pairs elements at a doubling stride s via circular shifts. Blockwise
// layouts pay grid wires proportional to s (the late, long-stride stages
// dominate); a CYCLIC layout makes every power-of-two-aligned stage a
// free relabeling or a short router hop.
func LayoutFFT(n, stages int, directives []string) string {
	return fmt.Sprintf(`program lfft
integer, parameter :: n = %d
integer, parameter :: stages = %d
real, array(n) :: x, y
integer st, s
%sforall (i=1:n) x(i) = sin(0.001*i)
s = 1
do st = 1, stages
  y = x + 0.5*cshift(x, shift=s)
  x = y - 0.25*cshift(y, shift=-s)
  s = 2*s
end do
end program lfft
`, n, stages, renderDirectives(directives))
}

// LayoutGather is the irregular-gather kernel over an n-vector: a
// deterministic scrambled index vector drives GATHER(a, idx) each
// iteration, followed by a grid-local accumulate. The indices stay
// near-neighbor (offsets in -2..+2, circularly), so a fine-grained
// CYCLIC layout scatters partners across PEs while BLOCK keeps most of
// them home.
func LayoutGather(n, iters int, directives []string) string {
	return fmt.Sprintf(`program lgather
integer, parameter :: n = %d
integer, parameter :: iters = %d
real, array(n) :: a, b
integer, array(n) :: idx
integer it
%sforall (i=1:n) a(i) = 0.001*i
forall (i=1:n) idx(i) = 1 + mod(i - 1 + mod(7*i, 5) - 2 + n, n)
b = 0.0
do it = 1, iters
  b = gather(a, idx)
  a = a + 0.5*b
end do
end program lgather
`, n, iters, renderDirectives(directives))
}
