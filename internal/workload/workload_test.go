package workload

import (
	"math"
	"testing"

	"f90y/internal/interp"
	"f90y/internal/parser"
)

func runOracle(t *testing.T, src string) *interp.Machine {
	t.Helper()
	prog, err := parser.Parse("w.f90", src)
	if err != nil {
		t.Fatalf("parse: %v\n%s", err, src)
	}
	m, err := interp.Run(prog)
	if err != nil {
		t.Fatalf("run: %v", err)
	}
	return m
}

func TestSWEParsesAndRuns(t *testing.T) {
	m := runOracle(t, SWE(16, 3))
	p := m.Array("p")
	if p == nil {
		t.Fatal("p missing")
	}
	// The height field must stay finite and near its base value.
	for i, v := range p.F {
		if math.IsNaN(v) || math.IsInf(v, 0) {
			t.Fatalf("p[%d] = %v (unstable)", i, v)
		}
		if v < 1000 || v > 200000 {
			t.Fatalf("p[%d] = %v (outside physical range)", i, v)
		}
	}
	// The flow must be non-trivial.
	u := m.Array("u")
	energy := 0.0
	for _, v := range u.F {
		energy += v * v
	}
	if energy == 0 {
		t.Fatal("u is identically zero")
	}
}

func TestSWEConservesMassApproximately(t *testing.T) {
	m3 := runOracle(t, SWE(16, 1))
	m6 := runOracle(t, SWE(16, 6))
	mass := func(m *interp.Machine) float64 {
		s := 0.0
		for _, v := range m.Array("p").F {
			s += v
		}
		return s
	}
	a, b := mass(m3), mass(m6)
	if math.Abs(a-b)/math.Abs(a) > 0.01 {
		t.Fatalf("mass drifted: %v -> %v", a, b)
	}
}

func TestFigureSourcesParse(t *testing.T) {
	for name, src := range map[string]string{
		"fig9":    Fig9(32),
		"fig10":   Fig10(32),
		"fig11":   Fig11(16, 12),
		"fig12":   Fig12(16),
		"stencil": Stencil(16, 2),
		"spill":   SpillKernel(64, 12),
	} {
		if _, err := parser.Parse(name+".f90", src); err != nil {
			t.Errorf("%s: %v", name, err)
		}
	}
}

func TestStencilSmooths(t *testing.T) {
	m := runOracle(t, Stencil(16, 5))
	g := m.Array("grid")
	lo, hi := math.Inf(1), math.Inf(-1)
	for _, v := range g.F {
		lo, hi = math.Min(lo, v), math.Max(hi, v)
	}
	if hi-lo >= 18 {
		t.Fatalf("smoothing did not contract range: [%v, %v]", lo, hi)
	}
}
