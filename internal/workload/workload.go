// Package workload provides the benchmark programs of the paper's
// evaluation (§6) and the worked examples of its figures, as Fortran 90
// source parameterized by problem size.
//
// The centerpiece is SWE, "an updated Fortran-90 version of a dusty deck
// code to implement a meteorological model, the shallow-water equations":
// a leapfrog time integration over a doubly-periodic grid — "a series of
// circular shifts interspersed with blocks of local computation", which
// §6 calls an ideal problem for a SIMD data-parallel machine.
package workload

import (
	"fmt"
	"strings"
)

// SWE returns the shallow-water-equations benchmark over an n-by-n grid
// running itmax leapfrog steps. The operation mix follows the classic
// Sadourny formulation: per step, four diagnostic fields (mass fluxes CU
// and CV, potential vorticity Z, Bernoulli function H) from nine circular
// shifts, three prognostic updates (UNEW/VNEW/PNEW) from eight more
// shifts, and a Robert–Asselin time filter — all grid-local except the
// CSHIFTs.
func SWE(n, itmax int) string {
	var b strings.Builder
	fmt.Fprintf(&b, `program swe
integer, parameter :: n = %d
integer, parameter :: itmax = %d
real, array(n,n) :: u, v, p, unew, vnew, pnew, uold, vold, pold
real, array(n,n) :: cu, cv, z, h, psi
real, parameter :: a = 1000000.0
real, parameter :: dt = 90.0
real, parameter :: el = n*100000.0
real :: pi, tpi, di, dj, pcf, dx, dy, fsdx, fsdy, tdt, tdts8, tdtsdx, tdtsdy, alpha
integer :: ncycle
pi = 3.14159265359
tpi = pi + pi
di = tpi/n
dj = tpi/n
dx = 100000.0
dy = 100000.0
fsdx = 4.0/dx
fsdy = 4.0/dy
alpha = 0.001
pcf = pi*pi*a*a/(el*el)

! Initial conditions from a stream function.
forall (i=1:n, j=1:n) psi(i,j) = a*sin((i - 0.5)*di)*sin((j - 0.5)*dj)
forall (i=1:n, j=1:n) p(i,j) = pcf*(cos(2.0*(i - 1)*di) + cos(2.0*(j - 1)*dj)) + 50000.0
u = -(cshift(psi, dim=2, shift=1) - psi)*(n/el)*10.0
v = (cshift(psi, dim=1, shift=1) - psi)*(n/el)*10.0
uold = u
vold = v
pold = p
tdt = dt

do ncycle = 1, itmax
  ! Compute capital-U, capital-V, Z and H.
  cu = 0.5*(p + cshift(p, dim=1, shift=-1))*u
  cv = 0.5*(p + cshift(p, dim=2, shift=-1))*v
  z = (fsdx*(v - cshift(v, dim=1, shift=-1)) - fsdy*(u - cshift(u, dim=2, shift=-1))) &
      / (p + cshift(p, dim=1, shift=-1) + cshift(p, dim=2, shift=-1) &
         + cshift(cshift(p, dim=1, shift=-1), dim=2, shift=-1))
  h = p + 0.25*(u*u + cshift(u, dim=1, shift=1)*cshift(u, dim=1, shift=1)) &
        + 0.25*(v*v + cshift(v, dim=2, shift=1)*cshift(v, dim=2, shift=1))

  tdts8 = tdt/8.0
  tdtsdx = tdt/dx
  tdtsdy = tdt/dy

  ! Advance the prognostic fields.
  unew = uold + tdts8*(z + cshift(z, dim=2, shift=1))*(cv + cshift(cv, dim=1, shift=1) &
         + cshift(cshift(cv, dim=1, shift=1), dim=2, shift=-1) + cshift(cv, dim=2, shift=-1)) &
         - tdtsdx*(h - cshift(h, dim=1, shift=-1))
  vnew = vold - tdts8*(z + cshift(z, dim=1, shift=1))*(cu + cshift(cu, dim=2, shift=1) &
         + cshift(cshift(cu, dim=1, shift=-1), dim=2, shift=1) + cshift(cu, dim=1, shift=-1)) &
         - tdtsdy*(h - cshift(h, dim=2, shift=-1))
  pnew = pold - tdtsdx*(cshift(cu, dim=1, shift=1) - cu) - tdtsdy*(cshift(cv, dim=2, shift=1) - cv)

  ! Robert–Asselin time filter and rotation.
  uold = u + alpha*(unew - 2.0*u + uold)
  vold = v + alpha*(vnew - 2.0*v + vold)
  pold = p + alpha*(pnew - 2.0*p + pold)
  u = unew
  v = vnew
  p = pnew
  tdt = dt + dt
end do
end program swe
`, n, itmax)
	return b.String()
}

// Fig9 is the domain-blocking example of Fig. 9: two like-shape parallel
// computations separated by a serial diagonal extraction.
func Fig9(n int) string {
	return fmt.Sprintf(`program fig9
integer, parameter :: n = %d
integer, array(n,n) :: a, b
integer c(n)
integer i
forall (i=1:n, j=1:n) b(i,j) = i*3 + j
forall (i=1:n, j=1:n) a(i,j) = b(i,j) + j
do i = 1, n
  c(i) = a(i,i)
end do
b = a
end program fig9
`, n)
}

// Fig10 is the masked-assignment blocking example of Fig. 10: disjoint
// stride-2 section assignments around an unrelated vector computation.
func Fig10(n int) string {
	return fmt.Sprintf(`program fig10
integer, parameter :: n = %d
integer, array(n,n) :: a, b
integer c(n)
integer m
m = 7
a = m
b(1:n:2,:) = a(1:n:2,:)
c = m + 1
b(2:n:2,:) = 5*a(2:n:2,:)
end program fig10
`, n)
}

// Fig11 builds the phase-alternation example of Fig. 11: nphases
// computations alternating between shape A (n-by-n) and shape B (a vector
// of length n), with communications on the shape boundaries. Blocking
// should collapse the A-computations that dependences allow.
func Fig11(n, nphases int) string {
	var b strings.Builder
	fmt.Fprintf(&b, "program fig11\ninteger, parameter :: n = %d\n", n)
	b.WriteString("real, array(n,n) :: a1, a2\nreal bv(n)\nreal s\n")
	b.WriteString("a1 = 1.0\na2 = 2.0\nbv = 0.5\ns = 0.0\n")
	for i := 0; i < nphases; i++ {
		switch i % 4 {
		case 0:
			fmt.Fprintf(&b, "a1 = a1*1.5 + a2\n")
		case 1:
			fmt.Fprintf(&b, "bv = bv + %d.0\n", i)
		case 2:
			fmt.Fprintf(&b, "a2 = a2 + cshift(a1, 1, 1)*0.25\n")
		case 3:
			fmt.Fprintf(&b, "s = s + %d.0\n", i)
		}
	}
	b.WriteString("end program fig11\n")
	return b.String()
}

// Fig12 is the SWE excerpt of Fig. 12 in isolation, with the shifted
// operands precomputed so the statement is one pure computation block.
func Fig12(n int) string {
	return fmt.Sprintf(`program fig12
integer, parameter :: n = %d
real, array(n,n) :: z, u, v, p, t0, t1, t2
real fsdx, fsdy
forall (i=1:n, j=1:n) u(i,j) = i + 2*j
forall (i=1:n, j=1:n) v(i,j) = 3*i - j
forall (i=1:n, j=1:n) p(i,j) = 100 + i + j
fsdx = 4.0/n
fsdy = 4.0/n
t0 = cshift(v, dim=1, shift=-1)
t1 = cshift(u, dim=2, shift=-1)
t2 = cshift(p, dim=1, shift=1)
z = (fsdx*(v - t0) - fsdy*(u - t1))/(p + t2)
end program fig12
`, n)
}

// Stencil is a nine-point convolution benchmark (the kind of fine-grain
// stencil §1 notes the CMF machine model handled poorly).
func Stencil(n, iters int) string {
	return fmt.Sprintf(`program stencil
integer, parameter :: n = %d
integer, parameter :: iters = %d
real, array(n,n) :: grid, next
integer it
forall (i=1:n, j=1:n) grid(i,j) = mod(i*7 + j*13, 19)*1.0
do it = 1, iters
  next = 0.25*grid &
       + 0.125*(cshift(grid, dim=1, shift=1) + cshift(grid, dim=1, shift=-1) &
              + cshift(grid, dim=2, shift=1) + cshift(grid, dim=2, shift=-1)) &
       + 0.0625*(cshift(cshift(grid, dim=1, shift=1), dim=2, shift=1) &
               + cshift(cshift(grid, dim=1, shift=1), dim=2, shift=-1) &
               + cshift(cshift(grid, dim=1, shift=-1), dim=2, shift=1) &
               + cshift(cshift(grid, dim=1, shift=-1), dim=2, shift=-1))
  grid = next
end do
end program stencil
`, n, iters)
}

// SpillKernel is a synthetic computation whose live-value count is
// controlled by depth, driving the register allocator past the eight
// vector registers (the E6 spill-pressure experiment).
func SpillKernel(n, terms int) string {
	var b strings.Builder
	fmt.Fprintf(&b, "program spill\ninteger, parameter :: n = %d\n", n)
	names := make([]string, terms)
	for i := range names {
		names[i] = fmt.Sprintf("x%d", i)
	}
	fmt.Fprintf(&b, "real, array(n) :: r, %s\n", strings.Join(names, ", "))
	for i, nm := range names {
		fmt.Fprintf(&b, "%s = %d.5\n", nm, i)
	}
	// A communication on the first operand pins the kernel in its own
	// computation block, so every term is a genuine subgrid load (without
	// it, store-to-load forwarding would fold the whole kernel into the
	// initialization block's constants).
	fmt.Fprintf(&b, "%s = cshift(%s, 1)\n", names[0], names[0])
	// Sum of all pairwise-staggered products keeps every load live.
	var sum, prod []string
	for _, nm := range names {
		sum = append(sum, nm)
		prod = append(prod, nm)
	}
	fmt.Fprintf(&b, "r = (%s) * (%s)\n", strings.Join(sum, " + "), strings.Join(prod, " * "))
	b.WriteString("end program spill\n")
	return b.String()
}
