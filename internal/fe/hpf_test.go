package fe

import (
	"strings"
	"testing"

	"f90y/internal/ast"
	"f90y/internal/lower"
	"f90y/internal/parser"
	"f90y/internal/shape"
)

func lowerFor(t *testing.T, src string) (*lower.Module, *ast.Program) {
	t.Helper()
	tree, err := parser.Parse("t.f90", src)
	if err != nil {
		t.Fatalf("parse: %v", err)
	}
	mod, err := lower.Lower(tree)
	if err != nil {
		t.Fatalf("lower: %v", err)
	}
	return mod, tree
}

func TestApplyDirectivesStamps(t *testing.T) {
	src := `program t
real, array(8,8) :: a, b, c
!HPF$ PROCESSORS p(4,2)
!HPF$ DISTRIBUTE a(BLOCK, CYCLIC(2)) ONTO p
!HPF$ ALIGN b WITH a
a = 1.0
b = a
c = b
end program t
`
	mod, tree := lowerFor(t, src)
	if err := ApplyDirectives(tree, mod.Syms, nil); err != nil {
		t.Fatalf("ApplyDirectives: %v", err)
	}
	a, _ := mod.Syms.Lookup("a")
	b, _ := mod.Syms.Lookup("b")
	c, _ := mod.Syms.Lookup("c")
	want := shape.Distribution{Dims: []shape.DimDist{{Kind: shape.DistBlock}, {Kind: shape.DistCyclic, K: 2}}}
	if !a.Dist.Equal(want, 2) || a.Dist.IsDefault() {
		t.Errorf("a.Dist = %+v, want %v", a.Dist, want)
	}
	if !b.Dist.Equal(want, 2) || b.Dist.Align != "a" {
		t.Errorf("b.Dist = %+v, want %v aligned with a", b.Dist, want)
	}
	if !c.Dist.IsDefault() {
		t.Errorf("c.Dist = %+v, want default", c.Dist)
	}
}

func TestApplyDirectivesOverrides(t *testing.T) {
	src := `program t
real, array(8) :: a
!HPF$ DISTRIBUTE a(BLOCK)
a = 1.0
end program t
`
	mod, tree := lowerFor(t, src)
	if err := ApplyDirectives(tree, mod.Syms, []string{"a=cyclic(4)"}); err != nil {
		t.Fatalf("ApplyDirectives: %v", err)
	}
	a, _ := mod.Syms.Lookup("a")
	if a.Dist.Dim(0).Kind != shape.DistCyclic || a.Dist.Dim(0).K != 4 {
		t.Errorf("override did not win: a.Dist = %+v", a.Dist)
	}

	for _, bad := range []string{"zz=block", "a=banana", "a=block,block", "noequals"} {
		mod2, tree2 := lowerFor(t, src)
		if err := ApplyDirectives(tree2, mod2.Syms, []string{bad}); err == nil {
			t.Errorf("override %q: expected error", bad)
		}
	}
}

func TestApplyDirectivesErrors(t *testing.T) {
	cases := []struct {
		name string
		dirs string
		want string
	}{
		{"unknown array", "!HPF$ DISTRIBUTE zz(BLOCK)", "unknown array"},
		{"scalar target", "!HPF$ DISTRIBUTE s(BLOCK)", "is a scalar"},
		{"rank mismatch", "!HPF$ DISTRIBUTE a(BLOCK)", "rank"},
		{"dup distribute", "!HPF$ DISTRIBUTE a(BLOCK,BLOCK)\n!HPF$ DISTRIBUTE a(CYCLIC,CYCLIC)", "conflicting"},
		{"align and distribute", "!HPF$ ALIGN a WITH b\n!HPF$ DISTRIBUTE a(BLOCK,BLOCK)", "conflicts"},
		{"align self", "!HPF$ ALIGN a WITH a", "itself"},
		{"align cycle", "!HPF$ ALIGN a WITH b\n!HPF$ ALIGN b WITH a", "cycle"},
		{"align shape mismatch", "!HPF$ ALIGN a WITH d", "shapes differ"},
		{"unknown onto", "!HPF$ DISTRIBUTE a(BLOCK,BLOCK) ONTO q", "unknown PROCESSORS"},
		{"dup processors", "!HPF$ PROCESSORS p(2)\n!HPF$ PROCESSORS p(4)", "duplicate"},
		{"bad processors extent", "!HPF$ PROCESSORS q(0)", "not positive"},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			src := "program t\nreal, array(8,8) :: a, b\nreal, array(4) :: d\nreal :: s\n" +
				c.dirs + "\na = 1.0\nb = a\nd = 2.0\ns = 3.0\nend program t\n"
			mod, tree := lowerFor(t, src)
			err := ApplyDirectives(tree, mod.Syms, nil)
			if err == nil {
				t.Fatalf("expected error")
			}
			if !strings.Contains(err.Error(), c.want) {
				t.Errorf("error %q does not mention %q", err, c.want)
			}
			if !strings.Contains(err.Error(), "t.f90:") {
				t.Errorf("error %q carries no source position", err)
			}
		})
	}
}
