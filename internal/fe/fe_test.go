package fe

import (
	"testing"

	"f90y/internal/nir"
	"f90y/internal/peac"
	"f90y/internal/shape"
)

func TestCountOpsWalksNesting(t *testing.T) {
	prog := &Program{
		Name: "t",
		Ops: []Op{
			Assign{Tgt: nir.SVar{Name: "i"}, Src: nir.IntConst(0)},
			While{
				Cond: nir.Binary{Op: nir.Less, L: nir.SVar{Name: "i"}, R: nir.IntConst(4)},
				Body: []Op{
					CallNode{Routine: &peac.Routine{Name: "Pk0"}, Over: shape.Of(8)},
					Comm{Move: nir.Move{}},
					If{
						Cond: nir.BoolConst(true),
						Then: []Op{Assign{Tgt: nir.SVar{Name: "i"}, Src: nir.IntConst(1)}},
						Else: []Op{Stop{}},
					},
				},
			},
			DoSerial{S: shape.SerialOf(4), Body: []Op{
				Print{Args: []nir.Value{nir.StrConst{S: "hi"}}},
			}},
		},
	}
	c := prog.CountOps()
	want := map[string]int{
		"assign": 2, "while": 1, "callnode": 1, "comm": 1,
		"if": 1, "stop": 1, "do": 1, "print": 1,
	}
	for k, w := range want {
		if c[k] != w {
			t.Errorf("%s = %d, want %d (all: %v)", k, c[k], w, c)
		}
	}
}

func TestCountOpsEmpty(t *testing.T) {
	p := &Program{Name: "empty"}
	if len(p.CountOps()) != 0 {
		t.Fatalf("counts = %v", p.CountOps())
	}
}
