// Package fe defines the host intermediate representation produced by the
// FE/NIR compiler (§5.2): the "remainder program" left after the CM2/NIR
// compiler excises computation blocks. DO- and MOVE-constructs over serial
// shapes become explicit iteration; references to front-end data and CM
// data used in a front-end context become front-end code; communication
// intrinsics become CM runtime library calls; and for each computation
// block executed remotely, calling code pushes PEAC procedure arguments
// over the IFIFO to the processors.
//
// The host virtual machine (internal/hostvm) interprets this IR with a
// front-end cost model standing in for SPARC code generation — per §5.2
// the prototype's front end "uses a simple memory-to-memory load/store
// model", its time a negligible fraction of the execution profile.
package fe

import (
	"f90y/internal/lower"
	"f90y/internal/nir"
	"f90y/internal/peac"
	"f90y/internal/shape"
)

// Op is one host operation.
type Op interface {
	isOp()
}

// Assign is a front-end scalar or element move: Tgt = Src when Mask is
// true (Mask nil means unconditional).
type Assign struct {
	Tgt  nir.Value // SVar or AVar with Subscript field
	Src  nir.Value
	Mask nir.Value
}

// CallNode dispatches one PEAC routine to the processing elements: the
// host pushes the routine's parameters (subgrid pointers, coordinate
// subgrids, scalars, and the virtual subgrid size) over the IFIFO.
type CallNode struct {
	Routine *peac.Routine
	Over    shape.Shape // the shape the computation block ranges over
}

// Comm invokes the CM runtime system for one communication-class move.
type Comm struct {
	Move nir.Move
}

// If is host conditional control flow.
type If struct {
	Cond nir.Value
	Then []Op
	Else []Op
}

// While is host loop control flow.
type While struct {
	Cond nir.Value
	Body []Op
}

// DoSerial is explicit front-end iteration over a serial shape; the body
// addresses the current point through local_under coordinates.
type DoSerial struct {
	S    shape.Shape
	Body []Op
}

// Print emits one line of list-directed output.
type Print struct {
	Args []nir.Value
}

// Stop terminates execution.
type Stop struct{}

func (Assign) isOp()   {}
func (CallNode) isOp() {}
func (Comm) isOp()     {}
func (If) isOp()       {}
func (While) isOp()    {}
func (DoSerial) isOp() {}
func (Print) isOp()    {}
func (Stop) isOp()     {}

// Program is a fully partitioned executable: the host remainder program
// plus the excised PEAC node procedures.
type Program struct {
	Name     string
	Ops      []Op
	Routines []*peac.Routine
	Syms     *lower.SymTab
}

// CountOps walks the host program and returns the number of operations of
// each concrete type, keyed by a short name. Used by the Fig. 11
// partition-structure experiment.
func (p *Program) CountOps() map[string]int {
	out := map[string]int{}
	var walk func(ops []Op)
	walk = func(ops []Op) {
		for _, op := range ops {
			switch op := op.(type) {
			case Assign:
				out["assign"]++
			case CallNode:
				out["callnode"]++
			case Comm:
				out["comm"]++
			case If:
				out["if"]++
				walk(op.Then)
				walk(op.Else)
			case While:
				out["while"]++
				walk(op.Body)
			case DoSerial:
				out["do"]++
				walk(op.Body)
			case Print:
				out["print"]++
			case Stop:
				out["stop"]++
			}
		}
	}
	walk(p.Ops)
	return out
}
