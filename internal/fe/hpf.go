package fe

import (
	"strings"

	"f90y/internal/ast"
	"f90y/internal/lower"
	"f90y/internal/shape"
	"f90y/internal/source"
)

// This file is the semantic half of the distribution plane's front end:
// it validates a program's !HPF$ directives against the lowered symbol
// table and stamps the resulting per-array shape.Distribution onto each
// array symbol, from which the partitioner and both machine models read
// it. Directives are advisory in HPF; here they are checked strictly —
// unknown arrays, rank mismatches, and conflicting directives are
// compile errors with source positions.

// ApplyDirectives validates prog's !HPF$ directives, applies any
// compiler-level override specs (each "array=fmt,fmt,..." using the
// DISTRIBUTE format grammar, e.g. "a=block,cyclic(2)"; overrides win
// over source directives), resolves ALIGN chains, and stamps the
// resulting distribution onto the array symbols in syms.
func ApplyDirectives(prog *ast.Program, syms *lower.SymTab, overrides []string) error {
	var rep source.Reporter
	procs := map[string][]int{}            // PROCESSORS grids by name
	dist := map[string]*ast.Directive{}    // DISTRIBUTE by array
	aligned := map[string]*ast.Directive{} // ALIGN by array

	lookupArray := func(d *ast.Directive, name string) bool {
		sym, ok := syms.Lookup(name)
		if !ok {
			rep.Errorf("hpf", d.Pos, "!HPF$ %v names unknown array %q", d.Kind, name)
			return false
		}
		if sym.Shape == nil {
			rep.Errorf("hpf", d.Pos, "!HPF$ %v target %q is a scalar, not an array", d.Kind, name)
			return false
		}
		return true
	}

	for _, d := range prog.Directives {
		switch d.Kind {
		case ast.DirProcessors:
			if _, dup := procs[d.Name]; dup {
				rep.Errorf("hpf", d.Pos, "duplicate !HPF$ PROCESSORS grid %q", d.Name)
				continue
			}
			ok := true
			for _, e := range d.Ints {
				if e < 1 {
					rep.Errorf("hpf", d.Pos, "!HPF$ PROCESSORS %s: extent %d is not positive", d.Name, e)
					ok = false
				}
			}
			if ok {
				procs[d.Name] = d.Ints
			}
		case ast.DirDistribute:
			if !lookupArray(d, d.Name) {
				continue
			}
			if prev, dup := dist[d.Name]; dup {
				rep.Errorf("hpf", d.Pos, "conflicting !HPF$ DISTRIBUTE for %q (first at %v)", d.Name, prev.Pos)
				continue
			}
			if prev, dup := aligned[d.Name]; dup {
				rep.Errorf("hpf", d.Pos, "%q is already ALIGN'd (at %v); DISTRIBUTE conflicts", d.Name, prev.Pos)
				continue
			}
			sym, _ := syms.Lookup(d.Name)
			if rank := len(shape.Extents(sym.Shape)); rank != len(d.Dists) {
				rep.Errorf("hpf", d.Pos, "!HPF$ DISTRIBUTE %s has %d dimension formats, array has rank %d",
					d.Name, len(d.Dists), rank)
				continue
			}
			dist[d.Name] = d
		case ast.DirAlign:
			if !lookupArray(d, d.Name) || !lookupArray(d, d.With) {
				continue
			}
			if d.Name == d.With {
				rep.Errorf("hpf", d.Pos, "!HPF$ ALIGN %s WITH itself", d.Name)
				continue
			}
			if prev, dup := aligned[d.Name]; dup {
				rep.Errorf("hpf", d.Pos, "conflicting !HPF$ ALIGN for %q (first at %v)", d.Name, prev.Pos)
				continue
			}
			if prev, dup := dist[d.Name]; dup {
				rep.Errorf("hpf", d.Pos, "%q is already DISTRIBUTE'd (at %v); ALIGN conflicts", d.Name, prev.Pos)
				continue
			}
			aligned[d.Name] = d
		}
	}

	// ONTO references must name a declared PROCESSORS grid of matching
	// rank (the grid only constrains geometry; the greedy splitter
	// still decides the factorization, so ONTO is validated shape-wise).
	for _, d := range dist {
		if d.Onto == "" {
			continue
		}
		grid, ok := procs[d.Onto]
		if !ok {
			rep.Errorf("hpf", d.Pos, "!HPF$ DISTRIBUTE %s ONTO unknown PROCESSORS grid %q", d.Name, d.Onto)
			continue
		}
		if len(grid) > len(d.Dists) {
			rep.Errorf("hpf", d.Pos, "!HPF$ DISTRIBUTE %s ONTO %s: grid rank %d exceeds array rank %d",
				d.Name, d.Onto, len(grid), len(d.Dists))
		}
	}

	// Compiler-level overrides, applied after (and over) source
	// directives. They have no source position of their own.
	overridden := map[string]shape.Distribution{}
	for _, spec := range overrides {
		name, fmts, ok := strings.Cut(spec, "=")
		name = strings.ToLower(strings.TrimSpace(name))
		if !ok || name == "" {
			rep.Errorf("hpf", source.Pos{File: "<distribute>"}, "bad distribution override %q (want array=fmt,fmt,...)", spec)
			continue
		}
		sym, found := syms.Lookup(name)
		if !found || sym.Shape == nil {
			rep.Errorf("hpf", source.Pos{File: "<distribute>"}, "distribution override %q names unknown array %q", spec, name)
			continue
		}
		d, err := shape.ParseDist(fmts)
		if err != nil {
			rep.Errorf("hpf", source.Pos{File: "<distribute>"}, "bad distribution override %q: %v", spec, err)
			continue
		}
		if rank := len(shape.Extents(sym.Shape)); rank != len(d.Dims) {
			rep.Errorf("hpf", source.Pos{File: "<distribute>"},
				"distribution override %q has %d dimension formats, array has rank %d", spec, len(d.Dims), rank)
			continue
		}
		overridden[name] = d
	}

	if rep.HasErrors() {
		return rep.Err()
	}

	// resolve returns the distribution of an array, following ALIGN
	// chains to their root. A chain longer than the alignment count has
	// a cycle.
	var resolve func(name string, depth int, at *ast.Directive) (shape.Distribution, bool)
	resolve = func(name string, depth int, at *ast.Directive) (shape.Distribution, bool) {
		if d, ok := overridden[name]; ok {
			return d, true
		}
		if a, ok := aligned[name]; ok {
			if depth > len(aligned) {
				rep.Errorf("hpf", at.Pos, "!HPF$ ALIGN cycle through %q", name)
				return shape.Distribution{}, false
			}
			tgt, ok := resolve(a.With, depth+1, a)
			if !ok {
				return shape.Distribution{}, false
			}
			tgt.Align = a.With
			return tgt, true
		}
		if d, ok := dist[name]; ok {
			return toDistribution(d.Dists), true
		}
		return shape.Distribution{}, true // default blockwise
	}

	for _, sym := range syms.Arrays() {
		// Aligned arrays must be congruent with their template: the
		// per-dimension distribution is copied positionally.
		if a, ok := aligned[sym.Name]; ok {
			tgt, _ := syms.Lookup(a.With)
			if tgt != nil && !shape.Congruent(sym.Shape, tgt.Shape) {
				rep.Errorf("hpf", a.Pos, "cannot ALIGN %s (%v) WITH %s (%v): shapes differ",
					a.Name, sym.Shape, a.With, tgt.Shape)
				continue
			}
		}
		d, ok := resolve(sym.Name, 0, nil)
		if ok {
			sym.Dist = d
		}
	}
	return rep.Err()
}

func toDistribution(specs []ast.DistSpec) shape.Distribution {
	var d shape.Distribution
	for _, s := range specs {
		switch s.Kind {
		case "cyclic":
			d.Dims = append(d.Dims, shape.DimDist{Kind: shape.DistCyclic, K: s.K})
		case "*":
			d.Dims = append(d.Dims, shape.DimDist{Kind: shape.DistStar})
		default:
			d.Dims = append(d.Dims, shape.DimDist{Kind: shape.DistBlock})
		}
	}
	return d
}
