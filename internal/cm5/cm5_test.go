package cm5

import (
	"math"
	"testing"

	"f90y/internal/cm2"
	"f90y/internal/interp"
	"f90y/internal/lower"
	"f90y/internal/opt"
	"f90y/internal/parser"
	"f90y/internal/partition"
	"f90y/internal/pe"
	"f90y/internal/workload"
)

func TestSameFrontEndBothTargets(t *testing.T) {
	src := workload.SWE(16, 2)
	tree, _ := parser.Parse("swe.f90", src)
	mod, err := lower.Lower(tree)
	if err != nil {
		t.Fatal(err)
	}
	omod, _ := opt.Optimize(mod, opt.Default)
	prog, _, err := partition.Compile(omod, pe.Optimized)
	if err != nil {
		t.Fatal(err)
	}

	cm2Res, err := cm2.Default().Run(prog)
	if err != nil {
		t.Fatalf("cm2: %v", err)
	}
	cm5Res, err := Default().Run(prog)
	if err != nil {
		t.Fatalf("cm5: %v", err)
	}
	// Identical partitioned program: identical node-call counts.
	if cm2Res.NodeCalls != cm5Res.NodeCalls {
		t.Fatalf("node calls differ: %d vs %d", cm2Res.NodeCalls, cm5Res.NodeCalls)
	}
	// Both targets compute identical values.
	for name, a2 := range cm2Res.Store.Arrays {
		a5 := cm5Res.Store.Arrays[name]
		for i := range a2.Data {
			if a2.Data[i] != a5.Data[i] {
				t.Fatalf("%s[%d]: cm2 %v, cm5 %v", name, i, a2.Data[i], a5.Data[i])
			}
		}
	}
}

func TestCM5MatchesOracle(t *testing.T) {
	src := workload.SWE(16, 2)
	tree, _ := parser.Parse("swe.f90", src)
	oracle, err := interp.Run(tree)
	if err != nil {
		t.Fatal(err)
	}
	mod, _ := lower.Lower(tree)
	omod, _ := opt.Optimize(mod, opt.Default)
	prog, _, _ := partition.Compile(omod, pe.Optimized)
	res, err := Default().Run(prog)
	if err != nil {
		t.Fatal(err)
	}
	p := oracle.Array("p")
	got := res.Store.Arrays["p"]
	for i := range got.Data {
		if math.Abs(got.Data[i]-p.F[i]) > 1e-9*math.Max(1, math.Abs(p.F[i])) {
			t.Fatalf("p[%d] = %v, oracle %v", i, got.Data[i], p.F[i])
		}
	}
}

func TestCM5ThreeWaySplitAccounting(t *testing.T) {
	src := workload.SWE(32, 2)
	tree, _ := parser.Parse("swe.f90", src)
	mod, _ := lower.Lower(tree)
	omod, _ := opt.Optimize(mod, opt.Default)
	prog, _, _ := partition.Compile(omod, pe.Optimized)
	res, err := Default().Run(prog)
	if err != nil {
		t.Fatal(err)
	}
	if res.SPARCCycles <= 0 || res.VUCycles <= 0 || res.HostCycles <= 0 {
		t.Fatalf("three-way split not accounted: %+v", res)
	}
	if res.PECycles != res.VUCycles+res.SPARCCycles {
		t.Fatalf("PECycles %v != VU %v + SPARC %v", res.PECycles, res.VUCycles, res.SPARCCycles)
	}
}

func TestCM5OutperformsCM2(t *testing.T) {
	// The newer machine with four vector units per node and a faster
	// clock must sustain a higher modeled rate on the same program.
	src := workload.SWE(128, 2)
	tree, _ := parser.Parse("swe.f90", src)
	mod, _ := lower.Lower(tree)
	omod, _ := opt.Optimize(mod, opt.Default)
	prog, _, _ := partition.Compile(omod, pe.Optimized)

	r2, err := cm2.Default().Run(prog)
	if err != nil {
		t.Fatal(err)
	}
	r5, err := Default().Run(prog)
	if err != nil {
		t.Fatal(err)
	}
	if r5.GFLOPS() <= r2.GFLOPS() {
		t.Fatalf("CM-5 %v GF <= CM-2 %v GF", r5.GFLOPS(), r2.GFLOPS())
	}
}
