package cm5

import (
	"errors"
	"reflect"
	"testing"

	"f90y/internal/cm2"
	"f90y/internal/faults"
	"f90y/internal/fe"
	"f90y/internal/lower"
	"f90y/internal/opt"
	"f90y/internal/parser"
	"f90y/internal/partition"
	"f90y/internal/pe"
	"f90y/internal/rt"
)

const ctlProg = `program t
real a(64), b(64), c(64)
real s
integer i
a = 1.0
b = 0.0
do i = 1, 16
  b = a*2.0 + b
  c = cshift(b, 1)
  a = c + 0.5
end do
s = sum(a)
print *, 'sum =', s
end program t
`

func compileCtl(t *testing.T) *fe.Program {
	t.Helper()
	tree, err := parser.Parse("t.f90", ctlProg)
	if err != nil {
		t.Fatal(err)
	}
	mod, err := lower.Lower(tree)
	if err != nil {
		t.Fatal(err)
	}
	omod, _ := opt.Optimize(mod, opt.Default)
	prog, _, err := partition.Compile(omod, pe.Optimized)
	if err != nil {
		t.Fatal(err)
	}
	return prog
}

func sameCM5Result(t *testing.T, what string, a, b *Result) {
	t.Helper()
	if a.VUCycles != b.VUCycles || a.SPARCCycles != b.SPARCCycles || a.DegradeCycles != b.DegradeCycles {
		t.Errorf("%s: node split differs: vu %v/%v sparc %v/%v degrade %v/%v", what,
			a.VUCycles, b.VUCycles, a.SPARCCycles, b.SPARCCycles, a.DegradeCycles, b.DegradeCycles)
	}
	if a.HostCycles != b.HostCycles || a.PECycles != b.PECycles || a.CommCycles != b.CommCycles {
		t.Errorf("%s: cycles differ: host %v/%v pe %v/%v comm %v/%v", what,
			a.HostCycles, b.HostCycles, a.PECycles, b.PECycles, a.CommCycles, b.CommCycles)
	}
	if !reflect.DeepEqual(a.Output, b.Output) {
		t.Errorf("%s: output differs: %q vs %q", what, a.Output, b.Output)
	}
	if !reflect.DeepEqual(a.PEClassCycles, b.PEClassCycles) {
		t.Errorf("%s: pe-class map differs: %v vs %v", what, a.PEClassCycles, b.PEClassCycles)
	}
	for name, arr := range a.Store.Arrays {
		if !reflect.DeepEqual(arr.Data, b.Store.Arrays[name].Data) {
			t.Errorf("%s: array %q differs", what, name)
		}
	}
}

// TestCM5RunCtlNilZeroOverhead: the zero-overhead invariant holds on
// the CM-5 path too, including the VU/SPARC cycle split.
func TestCM5RunCtlNilZeroOverhead(t *testing.T) {
	prog := compileCtl(t)
	m := Default()
	plain, err := m.Run(prog)
	if err != nil {
		t.Fatal(err)
	}
	ctl, err := m.RunCtl(prog, nil, nil)
	if err != nil {
		t.Fatal(err)
	}
	sameCM5Result(t, "nil-ctl", plain, ctl)
	if ctl.DegradeCycles != 0 || ctl.Faults != nil {
		t.Error("fault-free run must carry no degrade cycles or stats")
	}
}

// TestCM5CheckpointResumeAfterFatal: the CM-5 three-way node split
// (VU / SPARC / degrade) travels through the checkpoint Extra section
// and a resumed run reproduces an uninterrupted one exactly.
func TestCM5CheckpointResumeAfterFatal(t *testing.T) {
	prog := compileCtl(t)
	m := Default()
	clean, err := m.Run(prog)
	if err != nil {
		t.Fatal(err)
	}

	var last *rt.Checkpoint
	inj := faults.New(&faults.Plan{Seed: 1, Events: []faults.Event{{At: 40, Kind: faults.FatalStop}}}, nil)
	_, err = m.RunCtl(prog, nil, &cm2.Control{
		Faults:          inj,
		CheckpointEvery: 3,
		Checkpoint:      func(ck *rt.Checkpoint) error { last = ck; return nil },
	})
	if !errors.Is(err, faults.ErrFatal) {
		t.Fatalf("run survived the fatal fault: %v", err)
	}
	if last == nil {
		t.Fatal("no checkpoint before the fatal fault")
	}
	if last.Machine != "cm5" {
		t.Fatalf("machine tag %q, want cm5", last.Machine)
	}
	if _, ok := last.Extra["vu-cycles"]; !ok {
		t.Fatalf("cm5 snapshot lacks the vu-cycles split: %v", last.Extra)
	}

	resumed, err := m.RunCtl(prog, nil, &cm2.Control{Resume: last})
	if err != nil {
		t.Fatal(err)
	}
	sameCM5Result(t, "resumed", clean, resumed)
}

// TestCM5NodeKillDegrades: a scheduled node kill on the CM-5 degrades
// into the buddy VU with the penalty charged to DegradeCycles, and the
// computed values stay exact.
func TestCM5NodeKillDegrades(t *testing.T) {
	prog := compileCtl(t)
	m := Default()
	clean, err := m.Run(prog)
	if err != nil {
		t.Fatal(err)
	}
	inj := faults.New(&faults.Plan{Seed: 1, Events: []faults.Event{{At: 2, Kind: faults.KillPE, PE: 3}}}, nil)
	degraded, err := m.RunCtl(prog, nil, &cm2.Control{Faults: inj})
	if err != nil {
		t.Fatal(err)
	}
	if degraded.DegradeCycles <= 0 {
		t.Error("no degrade cycles charged")
	}
	if degraded.PECycles != degraded.VUCycles+degraded.SPARCCycles+degraded.DegradeCycles {
		t.Errorf("node split does not sum: %v != %v + %v + %v",
			degraded.PECycles, degraded.VUCycles, degraded.SPARCCycles, degraded.DegradeCycles)
	}
	for name, arr := range clean.Store.Arrays {
		if !reflect.DeepEqual(arr.Data, degraded.Store.Arrays[name].Data) {
			t.Errorf("array %q differs under degradation", name)
		}
	}
}
