// Package cm5 is the CM5/NIR back end of §5.3.1: the retarget of the
// specified compiler to the Connection Machine CM-5, whose processing
// node is a SPARC augmented with four vector datapaths.
//
// "The CM/5 NIR compiler retains the majority of its structure and,
// therefore, its specification from the CM/2 version... a single NIR
// program will be split three ways rather than two; one part will go to
// the control processor, as before; a second part will be executed on the
// SPARC node processor, and a third part will carry out floating point
// vector operations on the CM/5 vector datapaths."
//
// The package realizes exactly that: it consumes the same partitioned
// program (fe.Program) the CM/2 back end consumes — the machine-
// independent blocking and vectorizing NIR transformations are reused
// unchanged — and only the node-level model differs: each node's SPARC
// issues every computation block (charged NodeSetup cycles) and spreads
// its subgrid across the four vector units.
package cm5

import (
	"context"
	"fmt"

	"f90y/internal/cm2"
	"f90y/internal/faults"
	"f90y/internal/fe"
	"f90y/internal/hostvm"
	"f90y/internal/nir"
	"f90y/internal/obs"
	"f90y/internal/partition"
	"f90y/internal/peac"
	"f90y/internal/rt"
	"f90y/internal/shape"
)

// Machine is one CM-5 configuration.
type Machine struct {
	// Nodes is the number of processing nodes (a large CM-5 had 1,024).
	Nodes int
	// VUsPerNode is the number of vector datapaths per node (4).
	VUsPerNode int
	// ClockHz is the node clock (32 MHz).
	ClockHz float64
	// NodeSetup is the SPARC issue cost per computation block per node:
	// argument unpacking and vector-unit kickoff.
	NodeSetup float64
	// VUCost is the vector-datapath cycle model. The CM-5 VU issues one
	// 64-bit result per cycle with pipelined multiply-add.
	VUCost peac.CostModel
	// CommCost models the fat-tree data network.
	CommCost rt.CommCost
	// HostCost models the control processor.
	HostCost hostvm.Cost
}

// Default is a 1,024-node CM-5 with vector units.
func Default() *Machine {
	return &Machine{
		Nodes:      1024,
		VUsPerNode: 4,
		ClockHz:    32e6,
		NodeSetup:  80,
		VUCost: peac.CostModel{
			VectorOp:  4, // pipelined: 4 elements in 4 cycles
			Divide:    24,
			Sqrt:      30,
			Transcend: 48,
			Spill:     6,
			LoopJnz:   1,
		},
		CommCost: rt.CommCost{
			GridStartup:   80,
			GridLocal:     1,
			GridWire:      10, // fat tree: cheaper wires than the CM-2 grid
			RouterStartup: 200,
			RouterPerElem: 20,
			ReduceStartup: 100,
			ReducePerElem: 1,
			HopCost:       10,
		},
		HostCost: hostvm.DefaultCost,
	}
}

// Result extends the common execution result with the three-way split's
// node-level breakdown.
type Result struct {
	cm2.Result
	VUCycles      float64 // vector-datapath time
	SPARCCycles   float64 // node SPARC issue/setup time
	DegradeCycles float64 // dead-node remaps and buddy double-duty (fault plane)
}

// Run executes a partitioned program on the CM-5. The input is the same
// fe.Program the CM/2 consumes: the front end is target-independent.
func (m *Machine) Run(prog *fe.Program) (*Result, error) {
	return m.RunObs(prog, nil)
}

// RunObs executes a partitioned program, reporting telemetry to rec
// (which may be nil). The three-way split attributes node cycles to the
// PEAC instruction classes (vector-unit time) plus a "sparc-issue"
// class for the node SPARC's block setup.
func (m *Machine) RunObs(prog *fe.Program, rec obs.Recorder) (*Result, error) {
	return m.RunCtl(prog, rec, nil)
}

// RunCtl executes a partitioned program under an execution control
// plane (fault injection, checkpoints, resume — see cm2.Control). A
// nil ctl is exactly RunObs: same path, bit-identical cycle totals.
func (m *Machine) RunCtl(prog *fe.Program, rec obs.Recorder, ctl *cm2.Control) (*Result, error) {
	return m.RunCtx(context.Background(), prog, rec, ctl)
}

// RunCtx is RunCtl under a context: cancellation and deadline expiry
// are checked at every host op and loop-iteration boundary and return
// promptly with an error wrapping rt.ErrCanceled. The Machine is never
// mutated by a run, so one *Machine may serve concurrent RunCtx calls.
func (m *Machine) RunCtx(ctx context.Context, prog *fe.Program, rec obs.Recorder, ctl *cm2.Control) (*Result, error) {
	store := rt.NewStore(prog.Syms)
	comm := &rt.Comm{Store: store, PEs: m.Nodes * m.VUsPerNode, Cost: m.CommCost}
	res := &Result{}
	res.Store = store
	res.ClockHz = m.ClockHz
	res.PEClassCycles = map[string]float64{}
	res.PERoutineCycles = map[string]float64{}
	res.PELineCycles = map[rt.LineRef]float64{}

	var inj *faults.Injector
	var num *rt.Numeric
	var hctl *hostvm.Ctl
	workers := 0
	jit := false
	if ctl != nil {
		inj = ctl.Faults
		num = ctl.Numeric
		res.Numeric = num
		workers = ctl.ExecWorkers
		jit = ctl.ExecJIT
		comm.Faults = inj
		hctl = &hostvm.Ctl{Faults: inj, CheckpointEvery: ctl.CheckpointEvery, MaxCycles: ctl.MaxCycles}
		if ctl.MaxCycles > 0 {
			hctl.ExtraCycles = func() float64 {
				return res.VUCycles + res.SPARCCycles + res.DegradeCycles + comm.Cycles
			}
		}
		if ctl.Checkpoint != nil {
			hctl.Checkpoint = func(vm *hostvm.VM, next int, inLoop bool, iterDone int) error {
				return ctl.Checkpoint(m.snapshot(store, vm, comm, res, next, inLoop, iterDone))
			}
		}
		if ck := ctl.Resume; ck != nil {
			if err := m.resume(ck, store, comm, res, hctl); err != nil {
				return nil, err
			}
		}
	}

	hooks := hostvm.Hooks{
		Dispatch: func(r *peac.Routine, over shape.Shape) error {
			return m.dispatch(ctx, r, over, store, res, rec, inj, num, workers, jit)
		},
		Comm: func(mv nir.Move) error { return comm.ExecMove(mv) },
	}
	vm, err := hostvm.RunCtx(ctx, prog, store, m.HostCost, hooks, hctl)
	if err != nil {
		return nil, err
	}
	res.Output = vm.Output
	res.Stopped = vm.Stopped()
	res.HostCycles = vm.Cycles
	res.CommCycles = comm.Cycles
	res.CommCalls = comm.Calls
	res.PECycles = res.VUCycles + res.SPARCCycles + res.DegradeCycles
	res.HostClassCycles = vm.ClassCycles()
	res.CommClassCycles = map[string]float64{}
	for _, cl := range rt.CommClasses {
		res.CommClassCycles[cl] = comm.ClassCycles[cl]
	}
	res.CommLineCycles = rt.CopyLineMap(comm.LineCycles)
	// The SPARC issue time is its own attribution class so the
	// breakdown sums exactly to PECycles; degradation likewise.
	res.PEClassCycles["sparc-issue"] = res.SPARCCycles
	if res.DegradeCycles != 0 {
		res.PEClassCycles[cm2.DegradeClass] = res.DegradeCycles
	}
	res.Faults = inj.Stats()
	res.emitObs(rec)
	return res, nil
}

// snapshot captures a consistent boundary state via the shared rt
// boundary plumbing; the CM-5's three-way split travels in the Extra
// map.
func (m *Machine) snapshot(store *rt.Store, vm *hostvm.VM, comm *rt.Comm, res *Result, next int, inLoop bool, iterDone int) *rt.Checkpoint {
	ck := rt.SnapshotBoundary(store, comm,
		rt.Boundary{Machine: "cm5", NextOp: next, InLoop: inLoop, IterDone: iterDone},
		rt.HostState{Output: vm.Output, Cycles: vm.Cycles, ClassCycles: vm.ClassCycles()},
		rt.ExecTotals{
			Flops:           res.Flops,
			NodeCalls:       res.NodeCalls,
			PECycles:        res.VUCycles + res.SPARCCycles + res.DegradeCycles,
			PEClassCycles:   res.PEClassCycles,
			PERoutineCycles: res.PERoutineCycles,
			PELineCycles:    res.PELineCycles,
		})
	ck.Extra = map[string]float64{
		"vu-cycles":      res.VUCycles,
		"sparc-cycles":   res.SPARCCycles,
		"degrade-cycles": res.DegradeCycles,
	}
	return ck
}

// resume restores a snapshot into the store and accumulators.
func (m *Machine) resume(ck *rt.Checkpoint, store *rt.Store, comm *rt.Comm, res *Result, hctl *hostvm.Ctl) error {
	tot, err := rt.ResumeBoundary(ck, store, comm)
	if err != nil {
		return fmt.Errorf("cm5: resume: %w", err)
	}
	res.Flops = tot.Flops
	res.NodeCalls = tot.NodeCalls
	res.VUCycles = ck.Extra["vu-cycles"]
	res.SPARCCycles = ck.Extra["sparc-cycles"]
	res.DegradeCycles = ck.Extra["degrade-cycles"]
	res.PEClassCycles = tot.PEClassCycles
	res.PERoutineCycles = tot.PERoutineCycles
	res.PELineCycles = tot.PELineCycles
	hctl.SetResume(ck)
	return nil
}

func (res *Result) emitObs(rec obs.Recorder) {
	if rec == nil {
		return
	}
	obs.Add(rec, "exec/host-cycles", res.HostCycles)
	obs.Add(rec, "exec/pe-cycles", res.PECycles)
	obs.Add(rec, "exec/comm-cycles", res.CommCycles)
	obs.Add(rec, "exec/flops", float64(res.Flops))
	obs.Add(rec, "exec/node-calls", float64(res.NodeCalls))
	obs.Add(rec, "exec/sparc-cycles", res.SPARCCycles)
	obs.Add(rec, "exec/vu-cycles", res.VUCycles)
	for cl, v := range res.PEClassCycles {
		obs.Add(rec, "exec/pe/"+cl, v)
	}
	for cl, v := range res.CommClassCycles {
		obs.Add(rec, "exec/comm/"+cl, v)
	}
	for cl, v := range res.HostClassCycles {
		obs.Add(rec, "exec/host/"+cl, v)
	}
	if res.Numeric != nil {
		for cl, n := range res.Numeric.NaN {
			obs.Add(rec, "exec/numeric/nan/"+cl, float64(n))
		}
		for cl, n := range res.Numeric.Inf {
			obs.Add(rec, "exec/numeric/inf/"+cl, float64(n))
		}
	}
}

// dispatch is the three-way split's node half: the control processor has
// already broadcast the block (host side); here each node's SPARC unpacks
// arguments and drives its four vector units over a quarter of the node
// subgrid each.
func (m *Machine) dispatch(ctx context.Context, r *peac.Routine, over shape.Shape, store *rt.Store, res *Result, rec obs.Recorder, inj *faults.Injector, num *rt.Numeric, workers int, jit bool) error {
	if over == nil {
		return fmt.Errorf("cm5: node routine %s without a shape: %w", r.Name, cm2.ErrDispatch)
	}
	layout := shape.Distribute(over, m.Nodes, r.Dist)
	nodeSub := partition.NodeSubgridSize(layout)
	perVU := (nodeSub + m.VUsPerNode - 1) / m.VUsPerNode

	sparc := m.NodeSetup + float64(len(r.Params))*2
	vu := float64(m.VUCost.RoutineCycles(r, perVU))

	degradeRef := rt.LineRef{Routine: r.Name, File: r.Pos.File, Line: r.Pos.Line, Class: cm2.DegradeClass}
	if inj != nil {
		// Dead processing nodes: remap the node subgrid to a buddy
		// through the data network, then every dispatch pays one extra
		// node's worth of work while nodes are down (the control
		// processor gates on the slowest node).
		for _, node := range inj.DispatchTick(m.Nodes) {
			if !inj.Degrade() {
				return fmt.Errorf("cm5: dispatch of %s: %w: processing node %d: %w",
					r.Name, cm2.ErrDispatch, node, faults.ErrPEDead)
			}
			remap := m.CommCost.RouterStartup + float64(nodeSub)*m.CommCost.RouterPerElem
			res.DegradeCycles += remap
			res.PELineCycles[degradeRef] += remap
			inj.NoteDegraded(node)
		}
		if inj.DeadCount() > 0 {
			res.DegradeCycles += sparc + vu
			res.PELineCycles[degradeRef] += sparc + vu
		}
	}

	res.SPARCCycles += sparc
	res.VUCycles += vu
	res.PERoutineCycles[r.Name] += sparc + vu
	res.PELineCycles[rt.LineRef{Routine: r.Name, File: r.Pos.File, Line: r.Pos.Line, Class: "sparc-issue"}] += sparc
	itersPerVU := (perVU + peac.VectorWidth - 1) / peac.VectorWidth
	if itersPerVU > 0 {
		byClass := m.VUCost.BodyCyclesByClass(r.Body)
		for cl, n := range byClass {
			if n != 0 {
				res.PEClassCycles[peac.CycleClass(cl).String()] += float64(n * itersPerVU)
			}
		}
		for cell, n := range m.VUCost.BodyCyclesByLine(r.Body, r.Pos) {
			if n != 0 {
				res.PELineCycles[rt.LineRef{Routine: r.Name, File: cell.Pos.File, Line: cell.Pos.Line, Class: cell.Class.String()}] += float64(n * itersPerVU)
			}
		}
	}
	res.Flops += int64(r.FlopsPerIteration()) * int64(itersPerVU) * int64(layout.PEsUsed()*m.VUsPerNode)
	res.NodeCalls++
	res.PECycles = res.VUCycles + res.SPARCCycles + res.DegradeCycles
	return cm2.ExecRoutineOpts(ctx, r, over, store,
		cm2.ExecOpts{Num: num, Subgrid: nodeSub, PEs: m.Nodes, Workers: workers, Rec: rec, JIT: jit})
}
