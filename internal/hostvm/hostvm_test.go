package hostvm

import (
	"testing"

	"f90y/internal/fe"
	"f90y/internal/lower"
	"f90y/internal/nir"
	"f90y/internal/peac"
	"f90y/internal/rt"
	"f90y/internal/shape"
)

func testStore() *rt.Store {
	syms := lower.NewSymTab()
	syms.Define(&lower.Symbol{Name: "i", Kind: nir.Integer32, Type: nir.Scalar{Kind: nir.Integer32}})
	syms.Define(&lower.Symbol{Name: "x", Kind: nir.Float64, Type: nir.Scalar{Kind: nir.Float64}})
	syms.Define(&lower.Symbol{Name: "a", Kind: nir.Float64, Shape: shape.Of(8),
		Type: nir.DField{Shape: shape.Of(8), Elem: nir.Scalar{Kind: nir.Float64}}, Lowers: []int{1}})
	return rt.NewStore(syms)
}

func runOps(t *testing.T, ops []fe.Op, store *rt.Store, hooks Hooks) *VM {
	t.Helper()
	vm, err := Run(&fe.Program{Name: "t", Ops: ops}, store, DefaultCost, hooks)
	if err != nil {
		t.Fatal(err)
	}
	return vm
}

func iv(n int64) nir.Value   { return nir.IntConst(n) }
func sv(n string) nir.Value  { return nir.SVar{Name: n} }
func fv(f float64) nir.Value { return nir.FloatConst(f) }

func TestScalarAssignAndArithmetic(t *testing.T) {
	st := testStore()
	runOps(t, []fe.Op{
		fe.Assign{Tgt: sv("i"), Src: iv(3)},
		fe.Assign{Tgt: sv("x"), Src: nir.Binary{Op: nir.Mul, L: sv("i"), R: fv(2.5)}},
	}, st, Hooks{})
	if st.Scalars["i"] != 3 || st.Scalars["x"] != 7.5 {
		t.Fatalf("i=%v x=%v", st.Scalars["i"], st.Scalars["x"])
	}
}

func TestElementStoreAndLoad(t *testing.T) {
	st := testStore()
	runOps(t, []fe.Op{
		fe.Assign{Tgt: nir.AVar{Name: "a", Field: nir.Subscript{Subs: []nir.Value{iv(3)}}}, Src: fv(42)},
		fe.Assign{Tgt: sv("x"), Src: nir.AVar{Name: "a", Field: nir.Subscript{Subs: []nir.Value{iv(3)}}}},
	}, st, Hooks{})
	if st.Arrays["a"].Data[2] != 42 || st.Scalars["x"] != 42 {
		t.Fatalf("a=%v x=%v", st.Arrays["a"].Data, st.Scalars["x"])
	}
}

func TestMaskedAssignSkips(t *testing.T) {
	st := testStore()
	runOps(t, []fe.Op{
		fe.Assign{Tgt: sv("x"), Src: fv(1), Mask: nir.BoolConst(false)},
		fe.Assign{Tgt: sv("i"), Src: iv(1), Mask: nir.BoolConst(true)},
	}, st, Hooks{})
	if st.Scalars["x"] != 0 || st.Scalars["i"] != 1 {
		t.Fatalf("x=%v i=%v", st.Scalars["x"], st.Scalars["i"])
	}
}

func TestIfWhileControlFlow(t *testing.T) {
	st := testStore()
	// while i < 5 { i++ }; if i == 5 then x = 1 else x = 2
	runOps(t, []fe.Op{
		fe.While{
			Cond: nir.Binary{Op: nir.Less, L: sv("i"), R: iv(5)},
			Body: []fe.Op{fe.Assign{Tgt: sv("i"), Src: nir.Binary{Op: nir.Plus, L: sv("i"), R: iv(1)}}},
		},
		fe.If{
			Cond: nir.Binary{Op: nir.Equals, L: sv("i"), R: iv(5)},
			Then: []fe.Op{fe.Assign{Tgt: sv("x"), Src: fv(1)}},
			Else: []fe.Op{fe.Assign{Tgt: sv("x"), Src: fv(2)}},
		},
	}, st, Hooks{})
	if st.Scalars["i"] != 5 || st.Scalars["x"] != 1 {
		t.Fatalf("i=%v x=%v", st.Scalars["i"], st.Scalars["x"])
	}
}

func TestDoSerialWithLocalUnder(t *testing.T) {
	st := testStore()
	S := shape.Interval{Lo: 1, Hi: 8, Serial: true, Tag: "do0"}
	coord := nir.LocalUnder{S: S, Dim: 1}
	runOps(t, []fe.Op{
		fe.DoSerial{S: S, Body: []fe.Op{
			fe.Assign{
				Tgt: nir.AVar{Name: "a", Field: nir.Subscript{Subs: []nir.Value{coord}}},
				Src: nir.Binary{Op: nir.Mul, L: coord, R: iv(10)},
			},
		}},
	}, st, Hooks{})
	for i := 0; i < 8; i++ {
		if st.Arrays["a"].Data[i] != float64((i+1)*10) {
			t.Fatalf("a = %v", st.Arrays["a"].Data)
		}
	}
}

func TestNestedLoopsDistinguishedByTag(t *testing.T) {
	st := testStore()
	outer := shape.Interval{Lo: 1, Hi: 2, Serial: true, Tag: "do0"}
	inner := shape.Interval{Lo: 1, Hi: 2, Serial: true, Tag: "do1"}
	oc := nir.LocalUnder{S: outer, Dim: 1}
	ic := nir.LocalUnder{S: inner, Dim: 1}
	// x accumulates 10*outer + inner over all 4 iterations = 10*(1+1+2+2)+(1+2+1+2) = 66.
	acc := nir.Binary{Op: nir.Plus, L: sv("x"),
		R: nir.Binary{Op: nir.Plus, R: ic,
			L: nir.Binary{Op: nir.Mul, L: iv(10), R: oc}}}
	runOps(t, []fe.Op{
		fe.DoSerial{S: outer, Body: []fe.Op{
			fe.DoSerial{S: inner, Body: []fe.Op{
				fe.Assign{Tgt: sv("x"), Src: acc},
			}},
		}},
	}, st, Hooks{})
	if st.Scalars["x"] != 66 {
		t.Fatalf("x = %v", st.Scalars["x"])
	}
}

func TestDispatchAndCommHooks(t *testing.T) {
	st := testStore()
	var dispatched, commed int
	r := &peac.Routine{Name: "Pk0", Params: []peac.Param{{Kind: peac.ArrayParam, Name: "a", Reg: 2}}}
	hooks := Hooks{
		Dispatch: func(rt *peac.Routine, over shape.Shape) error { dispatched++; return nil },
		Comm:     func(m nir.Move) error { commed++; return nil },
	}
	vm := runOps(t, []fe.Op{
		fe.CallNode{Routine: r, Over: shape.Of(8)},
		fe.Comm{Move: nir.Move{}},
	}, st, hooks)
	if dispatched != 1 || commed != 1 {
		t.Fatalf("dispatched=%d commed=%d", dispatched, commed)
	}
	// Dispatch charged FIFO costs.
	if vm.Cycles < DefaultCost.DispatchStart {
		t.Fatalf("cycles = %v", vm.Cycles)
	}
}

func TestPrintFormatting(t *testing.T) {
	st := testStore()
	st.Scalars["i"] = 42
	st.Scalars["x"] = 1.5
	for k := range st.Arrays["a"].Data {
		st.Arrays["a"].Data[k] = float64(k)
	}
	vm := runOps(t, []fe.Op{
		fe.Print{Args: []nir.Value{nir.StrConst{S: "vals"}, sv("i"), sv("x")}},
		fe.Print{Args: []nir.Value{nir.AVar{Name: "a", Field: nir.Everywhere{}}}},
	}, st, Hooks{})
	if vm.Output[0] != "vals 42 1.5" {
		t.Fatalf("line 0 = %q", vm.Output[0])
	}
	if vm.Output[1] != "0 1 2 3 4 5 6 7" {
		t.Fatalf("line 1 = %q", vm.Output[1])
	}
}

func TestStopUnwinds(t *testing.T) {
	st := testStore()
	vm := runOps(t, []fe.Op{
		fe.Assign{Tgt: sv("i"), Src: iv(1)},
		fe.Stop{},
		fe.Assign{Tgt: sv("i"), Src: iv(2)},
	}, st, Hooks{})
	if !vm.Stopped() || st.Scalars["i"] != 1 {
		t.Fatalf("stopped=%v i=%v", vm.Stopped(), st.Scalars["i"])
	}
}

func TestHostCostAccumulates(t *testing.T) {
	st := testStore()
	vm1 := runOps(t, []fe.Op{fe.Assign{Tgt: sv("i"), Src: iv(1)}}, st, Hooks{})
	vm2 := runOps(t, []fe.Op{
		fe.Assign{Tgt: sv("i"), Src: iv(1)},
		fe.Assign{Tgt: sv("x"), Src: nir.Binary{Op: nir.Plus, L: sv("i"), R: iv(1)}},
	}, st, Hooks{})
	if vm2.Cycles <= vm1.Cycles {
		t.Fatalf("cost not monotone: %v vs %v", vm1.Cycles, vm2.Cycles)
	}
}

func TestRuntimeErrors(t *testing.T) {
	st := testStore()
	cases := [][]fe.Op{
		{fe.Assign{Tgt: sv("ghost"), Src: iv(1)}},
		{fe.Assign{Tgt: nir.AVar{Name: "a", Field: nir.Subscript{Subs: []nir.Value{iv(99)}}}, Src: iv(1)}},
		{fe.Assign{Tgt: sv("x"), Src: nir.Binary{Op: nir.Div, L: iv(1), R: iv(0)}}},
	}
	for i, ops := range cases {
		if _, err := Run(&fe.Program{Ops: ops}, st, DefaultCost, Hooks{}); err == nil {
			t.Errorf("case %d: expected error", i)
		}
	}
}
