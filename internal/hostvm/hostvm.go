// Package hostvm interprets the FE host representation against the CM
// runtime store. It stands in for the SPARC front end of §5.2: serial
// code, scalar arithmetic, front-end element accesses into CM data, and
// the IFIFO pushes that dispatch PEAC node procedures. Front-end work is
// charged against a simple cost model — the paper's prototype also used
// "a simple memory-to-memory load/store model" on the host, whose time is
// a negligible fraction of the profile as problem size grows.
package hostvm

import (
	"fmt"
	"math"
	"strings"

	"f90y/internal/fe"
	"f90y/internal/nir"
	"f90y/internal/peac"
	"f90y/internal/rt"
	"f90y/internal/shape"
)

// Cost is the front-end cycle model.
type Cost struct {
	ScalarOp        float64 // per evaluated operator
	ElemAccess      float64 // per front-end access to a CM array element
	DispatchStart   float64 // per PEAC routine call (FIFO setup)
	DispatchPerArg  float64 // per parameter pushed over the IFIFO
	StatementIssued float64 // fixed decode cost per host operation
}

// DefaultCost is the calibrated host model.
var DefaultCost = Cost{
	ScalarOp:        1,
	ElemAccess:      30,
	DispatchStart:   150,
	DispatchPerArg:  8,
	StatementIssued: 2,
}

// Hooks connect the host VM to the machine model: node dispatch and
// runtime communication are performed by the caller (internal/cm2).
type Hooks struct {
	Dispatch func(r *peac.Routine, over shape.Shape) error
	Comm     func(m nir.Move) error
}

// Host cycle classes: every front-end charge is attributed to one of
// these activities, and the class values sum exactly to VM.Cycles.
const (
	HostIssue    = "issue"       // fixed decode cost per host operation
	HostScalar   = "scalar"      // front-end scalar arithmetic
	HostElem     = "elem-access" // front-end touches of CM array elements
	HostDispatch = "dispatch"    // IFIFO setup and argument pushes
)

// HostClasses lists the host cycle classes.
var HostClasses = []string{HostIssue, HostScalar, HostElem, HostDispatch}

// VM is one host execution.
type VM struct {
	Store  *rt.Store
	Cost   Cost
	Hooks  Hooks
	Cycles float64
	Output []string

	// Per-class cycle attribution; IssueCycles + ScalarCycles +
	// ElemCycles + DispatchCycles == Cycles exactly.
	IssueCycles    float64
	ScalarCycles   float64
	ElemCycles     float64
	DispatchCycles float64

	frames  []frame
	stopped bool
	steps   int
	limit   int
}

// charge adds cyc to one attribution bucket, keeping Cycles as the
// re-summed total so the buckets always sum exactly to it.
func (vm *VM) charge(bucket *float64, cyc float64) {
	*bucket += cyc
	vm.Cycles = vm.IssueCycles + vm.ScalarCycles + vm.ElemCycles + vm.DispatchCycles
}

// ClassCycles returns the per-class attribution keyed by HostClasses.
func (vm *VM) ClassCycles() map[string]float64 {
	return map[string]float64{
		HostIssue:    vm.IssueCycles,
		HostScalar:   vm.ScalarCycles,
		HostElem:     vm.ElemCycles,
		HostDispatch: vm.DispatchCycles,
	}
}

type frame struct {
	s   shape.Shape
	idx int // current coordinate (serial shapes are rank 1)
}

type stopSignal struct{}

// Run interprets a partitioned program.
func Run(prog *fe.Program, store *rt.Store, cost Cost, hooks Hooks) (vm *VM, err error) {
	vm = &VM{Store: store, Cost: cost, Hooks: hooks, limit: 500_000_000}
	defer func() {
		if r := recover(); r != nil {
			if _, ok := r.(stopSignal); ok {
				vm.stopped = true
				err = nil
				return
			}
			panic(r)
		}
	}()
	err = vm.exec(prog.Ops)
	return vm, err
}

// Stopped reports whether the program ended via STOP.
func (vm *VM) Stopped() bool { return vm.stopped }

func (vm *VM) exec(ops []fe.Op) error {
	for _, op := range ops {
		if err := vm.execOp(op); err != nil {
			return err
		}
	}
	return nil
}

func (vm *VM) tick() error {
	vm.steps++
	if vm.steps > vm.limit {
		return fmt.Errorf("hostvm: step limit exceeded")
	}
	vm.charge(&vm.IssueCycles, vm.Cost.StatementIssued)
	return nil
}

// ctx builds the evaluation context carrying the serial-loop coordinate
// frames.
func (vm *VM) ctx() *rt.EvalCtx {
	c := &rt.EvalCtx{Store: vm.Store}
	c.Local = func(s shape.Shape, dim int) (int, bool) {
		if dim != 1 {
			return 0, false
		}
		for i := len(vm.frames) - 1; i >= 0; i-- {
			if shape.Equal(vm.frames[i].s, s) {
				return vm.frames[i].idx, true
			}
		}
		return 0, false
	}
	return c
}

// eval computes a scalar NIR value on the host, charging cycles.
func (vm *VM) eval(v nir.Value) (float64, nir.ScalarKind, error) {
	c := vm.ctx()
	val, kind, err := rt.Eval(v, c)
	vm.charge(&vm.ScalarCycles, float64(c.Ops)*vm.Cost.ScalarOp)
	// Front-end touches of CM data are expensive.
	elems := 0
	nir.WalkValues(v, func(x nir.Value) {
		if _, ok := x.(nir.AVar); ok {
			elems++
		}
	})
	vm.charge(&vm.ElemCycles, float64(elems)*vm.Cost.ElemAccess)
	return val, kind, err
}

func (vm *VM) execOp(op fe.Op) error {
	if err := vm.tick(); err != nil {
		return err
	}
	switch op := op.(type) {
	case fe.Assign:
		return vm.assign(op)
	case fe.CallNode:
		vm.charge(&vm.DispatchCycles, vm.Cost.DispatchStart+float64(len(op.Routine.Params))*vm.Cost.DispatchPerArg)
		return vm.Hooks.Dispatch(op.Routine, op.Over)
	case fe.Comm:
		return vm.Hooks.Comm(op.Move)
	case fe.If:
		c, _, err := vm.eval(op.Cond)
		if err != nil {
			return err
		}
		if c != 0 {
			return vm.exec(op.Then)
		}
		return vm.exec(op.Else)
	case fe.While:
		for {
			c, _, err := vm.eval(op.Cond)
			if err != nil {
				return err
			}
			if c == 0 {
				return nil
			}
			if err := vm.exec(op.Body); err != nil {
				return err
			}
			if err := vm.tick(); err != nil {
				return err
			}
		}
	case fe.DoSerial:
		iv, ok := op.S.(shape.Interval)
		if !ok {
			return fmt.Errorf("hostvm: serial iteration over non-interval %v", op.S)
		}
		vm.frames = append(vm.frames, frame{s: op.S})
		fi := len(vm.frames) - 1
		for i := iv.Lo; i <= iv.Hi; i++ {
			vm.frames[fi].idx = i
			if err := vm.exec(op.Body); err != nil {
				return err
			}
			if err := vm.tick(); err != nil {
				return err
			}
		}
		vm.frames = vm.frames[:fi]
		return nil
	case fe.Print:
		return vm.print(op)
	case fe.Stop:
		panic(stopSignal{})
	}
	return fmt.Errorf("hostvm: unknown op %T", op)
}

func (vm *VM) assign(op fe.Assign) error {
	if op.Mask != nil {
		m, _, err := vm.eval(op.Mask)
		if err != nil {
			return err
		}
		if m == 0 {
			return nil
		}
	}
	val, _, err := vm.eval(op.Src)
	if err != nil {
		return err
	}
	switch tgt := op.Tgt.(type) {
	case nir.SVar:
		if _, ok := vm.Store.Scalars[tgt.Name]; !ok {
			return fmt.Errorf("hostvm: store to undefined scalar %q", tgt.Name)
		}
		vm.Store.SetScalar(tgt.Name, val)
		return nil
	case nir.AVar:
		arr, ok := vm.Store.Arrays[tgt.Name]
		if !ok {
			return fmt.Errorf("hostvm: undefined array %q", tgt.Name)
		}
		sub, ok := tgt.Field.(nir.Subscript)
		if !ok {
			return fmt.Errorf("hostvm: host store to %q needs element subscripts", tgt.Name)
		}
		idx := make([]int, len(sub.Subs))
		for d, s := range sub.Subs {
			v, _, err := vm.eval(s)
			if err != nil {
				return err
			}
			idx[d] = int(math.Trunc(v))
		}
		off, err := arr.Offset(idx)
		if err != nil {
			return fmt.Errorf("hostvm: %q: %w", tgt.Name, err)
		}
		arr.StoreVal(off, val)
		vm.charge(&vm.ElemCycles, vm.Cost.ElemAccess)
		return nil
	}
	return fmt.Errorf("hostvm: bad assignment target %T", op.Tgt)
}

func (vm *VM) print(op fe.Print) error {
	var parts []string
	for _, a := range op.Args {
		switch a := a.(type) {
		case nir.StrConst:
			parts = append(parts, a.S)
		case nir.AVar:
			if _, ew := a.Field.(nir.Everywhere); ew {
				arr, ok := vm.Store.Arrays[a.Name]
				if !ok {
					return fmt.Errorf("hostvm: undefined array %q", a.Name)
				}
				elems := make([]string, arr.Size())
				for i, v := range arr.Data {
					elems[i] = rt.FormatVal(arr.Kind, v)
				}
				parts = append(parts, strings.Join(elems, " "))
				vm.charge(&vm.ElemCycles, float64(arr.Size())*vm.Cost.ElemAccess)
				continue
			}
			v, kind, err := vm.eval(a)
			if err != nil {
				return err
			}
			parts = append(parts, rt.FormatVal(kind, v))
		default:
			v, kind, err := vm.eval(a)
			if err != nil {
				return err
			}
			parts = append(parts, rt.FormatVal(kind, v))
		}
	}
	vm.Output = append(vm.Output, strings.Join(parts, " "))
	return nil
}
