// Package hostvm interprets the FE host representation against the CM
// runtime store. It stands in for the SPARC front end of §5.2: serial
// code, scalar arithmetic, front-end element accesses into CM data, and
// the IFIFO pushes that dispatch PEAC node procedures. Front-end work is
// charged against a simple cost model — the paper's prototype also used
// "a simple memory-to-memory load/store model" on the host, whose time is
// a negligible fraction of the profile as problem size grows.
package hostvm

import (
	"context"
	"fmt"
	"math"
	"strings"

	"f90y/internal/faults"
	"f90y/internal/fe"
	"f90y/internal/nir"
	"f90y/internal/peac"
	"f90y/internal/rt"
	"f90y/internal/shape"
)

// Cost is the front-end cycle model.
type Cost struct {
	ScalarOp        float64 // per evaluated operator
	ElemAccess      float64 // per front-end access to a CM array element
	DispatchStart   float64 // per PEAC routine call (FIFO setup)
	DispatchPerArg  float64 // per parameter pushed over the IFIFO
	StatementIssued float64 // fixed decode cost per host operation
}

// DefaultCost is the calibrated host model.
var DefaultCost = Cost{
	ScalarOp:        1,
	ElemAccess:      30,
	DispatchStart:   150,
	DispatchPerArg:  8,
	StatementIssued: 2,
}

// Hooks connect the host VM to the machine model: node dispatch and
// runtime communication are performed by the caller (internal/cm2).
type Hooks struct {
	Dispatch func(r *peac.Routine, over shape.Shape) error
	Comm     func(m nir.Move) error
}

// Host cycle classes: every front-end charge is attributed to one of
// these activities, and the class values sum exactly to VM.Cycles.
const (
	HostIssue    = "issue"       // fixed decode cost per host operation
	HostScalar   = "scalar"      // front-end scalar arithmetic
	HostElem     = "elem-access" // front-end touches of CM array elements
	HostDispatch = "dispatch"    // IFIFO setup and argument pushes
	HostStall    = "stall"       // injected front-end stalls (fault plane)
)

// HostClasses lists the host cycle classes. HostStall appears in
// ClassCycles only when stalls were actually injected, so fault-free
// reports are unchanged.
var HostClasses = []string{HostIssue, HostScalar, HostElem, HostDispatch, HostStall}

// Ctl is the optional execution control plane: fault injection,
// periodic checkpointing, and resume from a snapshot. A nil *Ctl costs
// nothing — Run(Ctl) with nil is bit-identical to the plain path.
type Ctl struct {
	// Faults injects front-end stalls and scheduled fatal faults at
	// every host tick (nil disables injection).
	Faults *faults.Injector
	// CheckpointEvery invokes Checkpoint after every N completed
	// top-level boundaries (top-level ops and top-level serial-DO
	// iterations). Zero disables checkpointing.
	CheckpointEvery int
	// Checkpoint receives the VM at a consistent boundary: every op
	// before next has completed; when inLoop is set, op next is a
	// serial DO completed through iteration iterDone.
	Checkpoint func(vm *VM, next int, inLoop bool, iterDone int) error

	// MaxCycles is the watchdog budget: when the modeled cycle total
	// (host cycles plus ExtraCycles) exceeds it, the run is killed
	// deterministically at the next host tick with an error wrapping
	// rt.ErrBudget. Zero disables the watchdog.
	MaxCycles float64
	// ExtraCycles reports the non-host cycle accumulators (PE and
	// communication time) so the budget covers the whole modeled
	// machine, not just the front end. Nil counts host cycles only.
	ExtraCycles func() float64

	// Resume position (from a checkpoint): skip completed top-level
	// ops, and when ResumeInLoop is set re-enter op ResumeOp's serial
	// DO at iteration ResumeIter+1.
	ResumeOp     int
	ResumeInLoop bool
	ResumeIter   int
	// ResumeOutput pre-seeds the accumulated program output.
	ResumeOutput []string
	// ResumeClassCycles pre-seeds the per-class host cycle buckets so
	// a resumed run's totals continue from the snapshot.
	ResumeClassCycles map[string]float64
}

// SetResume points the control plane at a snapshot's resume position
// and pre-seeded host state. It is the single place the checkpoint
// fields map onto the Resume* knobs, shared by every machine model.
func (c *Ctl) SetResume(ck *rt.Checkpoint) {
	c.ResumeOp = ck.NextOp
	c.ResumeInLoop = ck.InLoop
	c.ResumeIter = ck.IterDone
	c.ResumeOutput = ck.Output
	c.ResumeClassCycles = ck.HostClassCycles
}

// VM is one host execution.
type VM struct {
	Store  *rt.Store
	Cost   Cost
	Hooks  Hooks
	Cycles float64
	Output []string

	// Per-class cycle attribution; IssueCycles + ScalarCycles +
	// ElemCycles + DispatchCycles + StallCycles == Cycles exactly.
	IssueCycles    float64
	ScalarCycles   float64
	ElemCycles     float64
	DispatchCycles float64
	StallCycles    float64

	runCtx     context.Context
	done       <-chan struct{} // runCtx.Done(), nil when uncancellable
	ctl        *Ctl
	boundaries int

	frames  []frame
	stopped bool
	steps   int
	limit   int
}

// charge adds cyc to one attribution bucket, keeping Cycles as the
// re-summed total so the buckets always sum exactly to it.
func (vm *VM) charge(bucket *float64, cyc float64) {
	*bucket += cyc
	vm.Cycles = vm.IssueCycles + vm.ScalarCycles + vm.ElemCycles + vm.DispatchCycles + vm.StallCycles
}

// ClassCycles returns the per-class attribution keyed by HostClasses.
// The stall class appears only when stalls were injected, keeping
// fault-free reports bit-identical to builds without the fault plane.
func (vm *VM) ClassCycles() map[string]float64 {
	m := map[string]float64{
		HostIssue:    vm.IssueCycles,
		HostScalar:   vm.ScalarCycles,
		HostElem:     vm.ElemCycles,
		HostDispatch: vm.DispatchCycles,
	}
	if vm.StallCycles != 0 {
		m[HostStall] = vm.StallCycles
	}
	return m
}

type frame struct {
	s   shape.Shape
	idx int // current coordinate (serial shapes are rank 1)
}

type stopSignal struct{}

// Run interprets a partitioned program.
func Run(prog *fe.Program, store *rt.Store, cost Cost, hooks Hooks) (vm *VM, err error) {
	return RunCtx(context.Background(), prog, store, cost, hooks, nil)
}

// RunCtl interprets a partitioned program under an execution control
// plane. A nil ctl is exactly Run: no injection, no checkpoints, and
// bit-identical cycle totals.
func RunCtl(prog *fe.Program, store *rt.Store, cost Cost, hooks Hooks, ctl *Ctl) (vm *VM, err error) {
	return RunCtx(context.Background(), prog, store, cost, hooks, ctl)
}

// RunCtx interprets a partitioned program under a context: cancellation
// and deadline expiry are checked at every op and loop-iteration
// boundary and surface promptly as an error wrapping rt.ErrCanceled.
// An uncancellable context (Done() == nil, e.g. context.Background())
// costs one nil check per boundary — the cycle totals are bit-identical
// to the ctx-less path.
func RunCtx(ctx context.Context, prog *fe.Program, store *rt.Store, cost Cost, hooks Hooks, ctl *Ctl) (vm *VM, err error) {
	vm = &VM{Store: store, Cost: cost, Hooks: hooks, runCtx: ctx, done: ctx.Done(), ctl: ctl, limit: 500_000_000}
	if ctl != nil {
		vm.Output = append(vm.Output, ctl.ResumeOutput...)
		for cl, v := range ctl.ResumeClassCycles {
			switch cl {
			case HostIssue:
				vm.charge(&vm.IssueCycles, v)
			case HostScalar:
				vm.charge(&vm.ScalarCycles, v)
			case HostElem:
				vm.charge(&vm.ElemCycles, v)
			case HostDispatch:
				vm.charge(&vm.DispatchCycles, v)
			case HostStall:
				vm.charge(&vm.StallCycles, v)
			}
		}
	}
	defer func() {
		if r := recover(); r != nil {
			if _, ok := r.(stopSignal); ok {
				vm.stopped = true
				err = nil
				return
			}
			panic(r)
		}
	}()
	err = vm.execTop(prog.Ops)
	return vm, err
}

// Stopped reports whether the program ended via STOP.
func (vm *VM) Stopped() bool { return vm.stopped }

// execTop runs the program's top-level op sequence. With a control
// plane attached it honours the resume position and offers a
// checkpoint boundary after every top-level op (and, inside top-level
// serial DO loops, after every iteration).
func (vm *VM) execTop(ops []fe.Op) error {
	if vm.ctl == nil {
		return vm.exec(ops)
	}
	for i := vm.ctl.ResumeOp; i < len(ops); i++ {
		op := ops[i]
		if ds, ok := op.(fe.DoSerial); ok {
			// Mirror execOp's decode charge, then run the loop with
			// iteration-granular boundaries. When resuming inside this
			// loop the decode charge is already in the snapshot's
			// buckets, so it must not be re-ticked.
			resume := i == vm.ctl.ResumeOp && vm.ctl.ResumeInLoop
			if !resume {
				if err := vm.tick(); err != nil {
					return err
				}
			}
			if err := vm.doSerial(ds, resume, i); err != nil {
				return err
			}
		} else if err := vm.execOp(op); err != nil {
			return err
		}
		if err := vm.boundary(i+1, false, 0); err != nil {
			return err
		}
	}
	return nil
}

// boundary marks one completed top-level unit of work and writes a
// checkpoint every CheckpointEvery units.
func (vm *VM) boundary(next int, inLoop bool, iterDone int) error {
	vm.boundaries++
	c := vm.ctl
	if c.CheckpointEvery > 0 && c.Checkpoint != nil && vm.boundaries%c.CheckpointEvery == 0 {
		if err := c.Checkpoint(vm, next, inLoop, iterDone); err != nil {
			return fmt.Errorf("hostvm: checkpoint at op %d: %w", next, err)
		}
	}
	return nil
}

func (vm *VM) exec(ops []fe.Op) error {
	for _, op := range ops {
		if err := vm.execOp(op); err != nil {
			return err
		}
	}
	return nil
}

func (vm *VM) tick() error {
	vm.steps++
	if vm.steps > vm.limit {
		return fmt.Errorf("hostvm: step limit (%d) exceeded: %w", vm.limit, rt.ErrBudget)
	}
	if vm.done != nil {
		select {
		case <-vm.done:
			return fmt.Errorf("hostvm: at op boundary %d: %w", vm.steps, rt.Canceled(vm.runCtx))
		default:
		}
	}
	vm.charge(&vm.IssueCycles, vm.Cost.StatementIssued)
	if vm.ctl != nil {
		stall, err := vm.ctl.Faults.HostTick()
		if stall != 0 {
			vm.charge(&vm.StallCycles, stall)
		}
		if err != nil {
			return fmt.Errorf("hostvm: %w", err)
		}
		if max := vm.ctl.MaxCycles; max > 0 {
			total := vm.Cycles
			if vm.ctl.ExtraCycles != nil {
				total += vm.ctl.ExtraCycles()
			}
			if total > max {
				return fmt.Errorf("hostvm: %.0f modeled cycles exceed the %.0f-cycle budget at host step %d: %w",
					total, max, vm.steps, rt.ErrBudget)
			}
		}
	}
	return nil
}

// ctx builds the evaluation context carrying the serial-loop coordinate
// frames.
func (vm *VM) ctx() *rt.EvalCtx {
	c := &rt.EvalCtx{Store: vm.Store}
	c.Local = func(s shape.Shape, dim int) (int, bool) {
		if dim != 1 {
			return 0, false
		}
		for i := len(vm.frames) - 1; i >= 0; i-- {
			if shape.Equal(vm.frames[i].s, s) {
				return vm.frames[i].idx, true
			}
		}
		return 0, false
	}
	return c
}

// eval computes a scalar NIR value on the host, charging cycles.
func (vm *VM) eval(v nir.Value) (float64, nir.ScalarKind, error) {
	c := vm.ctx()
	val, kind, err := rt.Eval(v, c)
	vm.charge(&vm.ScalarCycles, float64(c.Ops)*vm.Cost.ScalarOp)
	// Front-end touches of CM data are expensive.
	elems := 0
	nir.WalkValues(v, func(x nir.Value) {
		if _, ok := x.(nir.AVar); ok {
			elems++
		}
	})
	vm.charge(&vm.ElemCycles, float64(elems)*vm.Cost.ElemAccess)
	return val, kind, err
}

func (vm *VM) execOp(op fe.Op) error {
	if err := vm.tick(); err != nil {
		return err
	}
	switch op := op.(type) {
	case fe.Assign:
		return vm.assign(op)
	case fe.CallNode:
		vm.charge(&vm.DispatchCycles, vm.Cost.DispatchStart+float64(len(op.Routine.Params))*vm.Cost.DispatchPerArg)
		return vm.Hooks.Dispatch(op.Routine, op.Over)
	case fe.Comm:
		return vm.Hooks.Comm(op.Move)
	case fe.If:
		c, _, err := vm.eval(op.Cond)
		if err != nil {
			return err
		}
		if c != 0 {
			return vm.exec(op.Then)
		}
		return vm.exec(op.Else)
	case fe.While:
		for {
			c, _, err := vm.eval(op.Cond)
			if err != nil {
				return err
			}
			if c == 0 {
				return nil
			}
			if err := vm.exec(op.Body); err != nil {
				return err
			}
			if err := vm.tick(); err != nil {
				return err
			}
		}
	case fe.DoSerial:
		return vm.doSerial(op, false, -1)
	case fe.Print:
		return vm.print(op)
	case fe.Stop:
		panic(stopSignal{})
	}
	return fmt.Errorf("hostvm: unknown op %T", op)
}

// doSerial runs one serial DO. topIdx >= 0 marks a top-level loop run
// under the control plane: each completed iteration is a checkpoint
// boundary, and resume restarts at the snapshot's iteration + 1.
func (vm *VM) doSerial(op fe.DoSerial, resume bool, topIdx int) error {
	iv, ok := op.S.(shape.Interval)
	if !ok {
		return fmt.Errorf("hostvm: serial iteration over non-interval %v", op.S)
	}
	lo := iv.Lo
	if resume {
		lo = vm.ctl.ResumeIter + 1
	}
	vm.frames = append(vm.frames, frame{s: op.S})
	fi := len(vm.frames) - 1
	for i := lo; i <= iv.Hi; i++ {
		vm.frames[fi].idx = i
		if err := vm.exec(op.Body); err != nil {
			return err
		}
		if err := vm.tick(); err != nil {
			return err
		}
		if topIdx >= 0 {
			if err := vm.boundary(topIdx, true, i); err != nil {
				return err
			}
		}
	}
	vm.frames = vm.frames[:fi]
	return nil
}

func (vm *VM) assign(op fe.Assign) error {
	if op.Mask != nil {
		m, _, err := vm.eval(op.Mask)
		if err != nil {
			return err
		}
		if m == 0 {
			return nil
		}
	}
	val, _, err := vm.eval(op.Src)
	if err != nil {
		return err
	}
	switch tgt := op.Tgt.(type) {
	case nir.SVar:
		if _, ok := vm.Store.Scalars[tgt.Name]; !ok {
			return fmt.Errorf("hostvm: store to undefined scalar %q", tgt.Name)
		}
		vm.Store.SetScalar(tgt.Name, val)
		return nil
	case nir.AVar:
		arr, ok := vm.Store.Arrays[tgt.Name]
		if !ok {
			return fmt.Errorf("hostvm: undefined array %q", tgt.Name)
		}
		sub, ok := tgt.Field.(nir.Subscript)
		if !ok {
			return fmt.Errorf("hostvm: host store to %q needs element subscripts", tgt.Name)
		}
		idx := make([]int, len(sub.Subs))
		for d, s := range sub.Subs {
			v, _, err := vm.eval(s)
			if err != nil {
				return err
			}
			idx[d] = int(math.Trunc(v))
		}
		off, err := arr.Offset(idx)
		if err != nil {
			return fmt.Errorf("hostvm: %q: %w", tgt.Name, err)
		}
		arr.StoreVal(off, val)
		vm.charge(&vm.ElemCycles, vm.Cost.ElemAccess)
		return nil
	}
	return fmt.Errorf("hostvm: bad assignment target %T", op.Tgt)
}

func (vm *VM) print(op fe.Print) error {
	var parts []string
	for _, a := range op.Args {
		switch a := a.(type) {
		case nir.StrConst:
			parts = append(parts, a.S)
		case nir.AVar:
			if _, ew := a.Field.(nir.Everywhere); ew {
				arr, ok := vm.Store.Arrays[a.Name]
				if !ok {
					return fmt.Errorf("hostvm: undefined array %q", a.Name)
				}
				elems := make([]string, arr.Size())
				for i, v := range arr.Data {
					elems[i] = rt.FormatVal(arr.Kind, v)
				}
				parts = append(parts, strings.Join(elems, " "))
				vm.charge(&vm.ElemCycles, float64(arr.Size())*vm.Cost.ElemAccess)
				continue
			}
			v, kind, err := vm.eval(a)
			if err != nil {
				return err
			}
			parts = append(parts, rt.FormatVal(kind, v))
		default:
			v, kind, err := vm.eval(a)
			if err != nil {
				return err
			}
			parts = append(parts, rt.FormatVal(kind, v))
		}
	}
	vm.Output = append(vm.Output, strings.Join(parts, " "))
	return nil
}
