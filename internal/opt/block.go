package opt

import (
	"f90y/internal/lower"
	"f90y/internal/nir"
	"f90y/internal/shape"
)

// Options selects which transformations run. The CMF-like baseline
// (internal/cmf) disables BlockDomains to model per-statement compilation.
type Options struct {
	// PadSections converts aligned section moves to full-shape masked
	// moves (Fig. 10).
	PadSections bool
	// BlockDomains reorders and fuses like-shape compute moves into
	// single computation blocks (Fig. 9).
	BlockDomains bool
}

// Default enables every transformation.
var Default = Options{PadSections: true, BlockDomains: true}

// Stats reports what the optimizer did.
type Stats struct {
	PaddedMoves  int // section moves converted to masked full-shape moves
	FusedMoves   int // moves absorbed into an earlier computation block
	HoistedComms int // communications moved up to cluster with earlier ones
	FusedLoops   int // adjacent independent serial DO loops merged
}

// sameSerialSpace reports whether two serial shapes iterate the same
// index set (tags excluded — they only name loops).
func sameSerialSpace(a, b shape.Shape) bool {
	ia, ok1 := a.(shape.Interval)
	ib, ok2 := b.(shape.Interval)
	return ok1 && ok2 && ia.Serial && ib.Serial && ia.Lo == ib.Lo && ia.Hi == ib.Hi
}

// sharesWrites reports whether the block writes any name in w (WW
// conflicts block fusion even when reads are disjoint).
func sharesWrites(b *block, w map[string]bool) bool {
	for n := range w {
		if b.writes[n] {
			return true
		}
	}
	return false
}

// retagLoop rewrites a loop body's local_under references from its own
// shape onto the fusion target's shape, in every value position (moves,
// conditions, call arguments).
func retagLoop(d nir.Do, target shape.Shape) nir.Do {
	from := d.S
	rt := func(v nir.Value) nir.Value {
		if v == nil {
			return nil
		}
		return nir.RewriteValues(v, func(x nir.Value) nir.Value {
			if lu, isLU := x.(nir.LocalUnder); isLU && shape.Equal(lu.S, from) {
				return nir.LocalUnder{S: target, Dim: lu.Dim}
			}
			return x
		})
	}
	body := nir.RewriteImps(d.Body, func(a nir.Imp) nir.Imp {
		switch a := a.(type) {
		case nir.Move:
			out := nir.Move{Over: a.Over, Moves: make([]nir.GuardedMove, len(a.Moves)), Pos: a.Pos}
			for i, g := range a.Moves {
				out.Moves[i] = nir.GuardedMove{Mask: rt(g.Mask), Src: rt(g.Src), Tgt: rt(g.Tgt), Pos: g.Pos}
			}
			return out
		case nir.IfThenElse:
			a.Cond = rt(a.Cond)
			return a
		case nir.While:
			a.Cond = rt(a.Cond)
			return a
		case nir.CallImp:
			args := make([]nir.Value, len(a.Args))
			for i, x := range a.Args {
				args[i] = rt(x)
			}
			a.Args = args
			return a
		default:
			return a
		}
	})
	return nir.Do{S: target, Body: body}
}

func boolToInt(b bool) int {
	if b {
		return 1
	}
	return 0
}

// replaceBody substitutes the executable action inside the
// PROGRAM/WITH_DOMAIN/WITH_DECL wrapper chain.
func replaceBody(prog nir.Imp, body nir.Imp) nir.Imp {
	switch p := prog.(type) {
	case nir.Program:
		p.Body = replaceBody(p.Body, body)
		return p
	case nir.WithDomain:
		p.Body = replaceBody(p.Body, body)
		return p
	case nir.WithDecl:
		p.Body = body
		return p
	default:
		return body
	}
}

type optimizer struct {
	cls   *Classifier
	opts  Options
	stats Stats
}

// rewrite transforms one action, recursing into composite bodies.
func (o *optimizer) rewrite(a nir.Imp) nir.Imp {
	switch a := a.(type) {
	case nir.Sequentially:
		return o.blockList(a.List)
	case nir.Move:
		return o.blockList([]nir.Imp{a})
	case nir.IfThenElse:
		a.Then = o.rewrite(a.Then)
		a.Else = o.rewrite(a.Else)
		return a
	case nir.While:
		a.Body = o.rewrite(a.Body)
		return a
	case nir.Do:
		a.Body = o.rewrite(a.Body)
		return a
	case nir.WithDecl:
		a.Body = o.rewrite(a.Body)
		return a
	case nir.WithDomain:
		a.Body = o.rewrite(a.Body)
		return a
	case nir.Program:
		a.Body = o.rewrite(a.Body)
		return a
	default:
		return a
	}
}

// block is one phase of the execution partition: a run of fused compute
// moves over a common shape, or a single communication/host action.
type block struct {
	class  Class
	over   shape.Shape
	dist   shape.Distribution // compute blocks: the moves' explicit layout
	moves  []nir.Move         // compute blocks only
	action nir.Imp            // comm/host blocks
	reads  map[string]bool
	writes map[string]bool
}

func conflicts(b *block, r, w map[string]bool) bool {
	for name := range w {
		if b.reads[name] || b.writes[name] {
			return true
		}
	}
	for name := range r {
		if b.writes[name] {
			return true
		}
	}
	return false
}

// blockList performs the execution-partition and domain-blocking
// transformation (§4.2) over one statement sequence: each action is
// padded, classified, and — when it is a pointwise compute move — hoisted
// past independent later-listed phases into the deepest preceding
// computation block of congruent shape. Pointwise moves over a common
// shape compose exactly (shapewise loop fusion), so fusing into a block
// never changes semantics; only the hoisting requires the dependence
// check.
func (o *optimizer) blockList(list []nir.Imp) nir.Imp {
	var blocks []*block
	add := func(a nir.Imp) {
		cl := o.cls.Classify(a)
		r, w := nir.Reads(a), nir.Writes(a)
		if cl == Comm && o.opts.BlockDomains {
			// Hoist communication to the earliest legal point: just after
			// the previous communication group or the action it depends
			// on. Clustering communications maximizes the length of the
			// aligned-computation blocks between them (§4.2).
			pos := 0
			for i := len(blocks) - 1; i >= 0; i-- {
				if blocks[i].class == Comm || conflicts(blocks[i], r, w) {
					pos = i + 1
					break
				}
			}
			nb := &block{class: Comm, action: a, reads: r, writes: w}
			blocks = append(blocks, nil)
			copy(blocks[pos+1:], blocks[pos:])
			blocks[pos] = nb
			o.stats.HoistedComms += boolToInt(pos != len(blocks)-1)
			return
		}
		if cl == Host && o.opts.BlockDomains {
			// Serial-loop fusion ("the shape equivalent of loop fusion",
			// §4.2, applied to DO): an adjacent pair of serial loops over
			// identical iteration spaces with independent bodies becomes
			// one loop. Conservative independence: the loops share no
			// storage at all, so any interleaving is equivalent.
			if d, ok := a.(nir.Do); ok {
				for i := len(blocks) - 1; i >= 0; i-- {
					b := blocks[i]
					ld, isDo := b.action.(nir.Do)
					if isDo && b.class == Host && sameSerialSpace(ld.S, d.S) &&
						!conflicts(b, r, w) && !sharesWrites(b, w) {
						retagged := retagLoop(d, ld.S)
						b.action = nir.Do{S: ld.S, Body: nir.Seq(ld.Body, retagged.Body)}
						for n := range r {
							b.reads[n] = true
						}
						for n := range w {
							b.writes[n] = true
						}
						o.stats.FusedLoops++
						return
					}
					if conflicts(b, r, w) {
						break
					}
				}
			}
		}
		if cl == Compute {
			// Section padding has already run as its own pass
			// (pad-sections); compute moves arrive here in final form.
			m := a.(nir.Move)
			mDist, _ := o.cls.MoveDist(m)
			rank := len(shape.Extents(m.Over))
			if o.opts.BlockDomains {
				for i := len(blocks) - 1; i >= 0; i-- {
					b := blocks[i]
					if b.class == Compute && shape.Congruent(b.over, m.Over) &&
						b.dist.Equal(mDist, rank) {
						b.moves = append(b.moves, m)
						for n := range r {
							b.reads[n] = true
						}
						for n := range w {
							b.writes[n] = true
						}
						o.stats.FusedMoves++
						return
					}
					if conflicts(b, r, w) {
						break
					}
				}
			}
			blocks = append(blocks, &block{class: Compute, over: m.Over, dist: mDist,
				moves: []nir.Move{m}, reads: r, writes: w})
			return
		}
		blocks = append(blocks, &block{class: cl, action: a, reads: r, writes: w})
	}

	for _, a := range list {
		a = o.rewrite1(a)
		// Flatten nested sequences produced by recursion.
		if seq, ok := a.(nir.Sequentially); ok {
			for _, x := range seq.List {
				add(x)
			}
			continue
		}
		if _, ok := a.(nir.Skip); ok {
			continue
		}
		add(a)
	}

	var out []nir.Imp
	for _, b := range blocks {
		if b.class != Compute {
			out = append(out, b.action)
			continue
		}
		fused := nir.Move{Over: b.over}
		for _, m := range b.moves {
			if !fused.Pos.IsValid() {
				fused.Pos = m.Pos
			}
			fused.Moves = append(fused.Moves, m.Moves...)
		}
		out = append(out, fused)
	}
	return nir.Seq(out...)
}

// rewrite1 recurses into a single non-sequence action.
func (o *optimizer) rewrite1(a nir.Imp) nir.Imp {
	switch a.(type) {
	case nir.Sequentially, nir.Move, nir.Skip:
		if seq, ok := a.(nir.Sequentially); ok {
			return o.blockList(seq.List)
		}
		return a
	default:
		return o.rewrite(a)
	}
}

// Phases summarizes the top-level execution partition of an action: the
// classified phases in order. It is the measurement used by the Fig. 9
// and Fig. 11 experiments.
func Phases(a nir.Imp, syms *lower.SymTab) []Class {
	cls := &Classifier{Syms: syms}
	var list []nir.Imp
	if seq, ok := a.(nir.Sequentially); ok {
		list = seq.List
	} else {
		list = []nir.Imp{a}
	}
	out := make([]Class, 0, len(list))
	for _, x := range list {
		if _, ok := x.(nir.Skip); ok {
			continue
		}
		out = append(out, cls.Classify(x))
	}
	return out
}

// CountClass counts phases of one class.
func CountClass(phases []Class, c Class) int {
	n := 0
	for _, p := range phases {
		if p == c {
			n++
		}
	}
	return n
}
