// Package opt implements the NIR optimization stage of the Fortran-90-Y
// compiler (§4.2): source-to-source transformations over NIR whose object
// is to produce programs in which computations over like shapes are
// blocked as much as possible, forming computation phases punctuated by
// communication.
//
// Three passes are provided:
//
//   - classification of each action into computation, communication, or
//     host (front-end) phases;
//   - mask padding (Fig. 10): aligned array-section assignments become
//     full-shape masked moves, enlarging the pool of sibling computations;
//   - domain blocking (Fig. 9): like-shape pointwise moves are reordered
//     past independent actions and fused into single computation blocks,
//     amortizing PEAC call overhead and widening register-allocation scope.
package opt

import (
	"strings"

	"f90y/internal/lower"
	"f90y/internal/nir"
	"f90y/internal/shape"
)

// Class partitions actions by where they execute (§5.1).
type Class int

// Phase classes.
const (
	// Compute actions are grid-local pointwise moves over a parallel
	// shape: they compile to PEAC node procedures.
	Compute Class = iota
	// Comm actions move data between shapes or alignments: they become
	// CM runtime library calls issued from the host.
	Comm
	// Host actions are serial control flow, scalar code, and I/O: they
	// compile to front-end (SPARC) code.
	Host
)

func (c Class) String() string {
	switch c {
	case Compute:
		return "compute"
	case Comm:
		return "comm"
	default:
		return "host"
	}
}

// Classifier answers phase-classification queries against a module's
// symbol table.
type Classifier struct {
	Syms *lower.SymTab
}

// Classify assigns an action to its phase class.
func (c *Classifier) Classify(a nir.Imp) Class {
	switch a := a.(type) {
	case nir.Move:
		return c.classifyMove(a)
	default:
		return Host
	}
}

func (c *Classifier) classifyMove(m nir.Move) Class {
	// Runtime intrinsic calls (cm_cshift, cm_reduce_sum, ...) are
	// communication regardless of shape.
	comm := false
	for _, g := range m.Moves {
		nir.WalkValues(g.Src, func(v nir.Value) {
			if fc, ok := v.(nir.FcnCall); ok && strings.HasPrefix(fc.Name, "cm_") {
				comm = true
			}
		})
	}
	if comm {
		return Comm
	}
	if m.Over == nil || shape.Serial(m.Over) {
		return Host
	}

	// A parallel move is grid-local (Compute) when every array reference
	// is pointwise under the common shape: everywhere references to
	// congruent arrays, or identically-aligned sections of a single
	// declared shape.
	type secsig struct {
		name string
		sec  nir.Section
	}
	var firstSec *secsig
	local := true
	sawSection := false

	checkAVar := func(av nir.AVar) {
		sym, ok := c.Syms.Lookup(av.Name)
		if !ok || sym.Shape == nil {
			local = false
			return
		}
		switch f := av.Field.(type) {
		case nir.Everywhere:
			if !shape.Congruent(sym.Shape, m.Over) {
				local = false
			}
		case nir.Section:
			sawSection = true
			for _, t := range f.Subs {
				if t.Scalar {
					local = false // rank reduction: alignment broken
				}
			}
			if firstSec == nil {
				firstSec = &secsig{name: av.Name, sec: f}
				// The sectioned arrays must all share a declared shape.
				return
			}
			prev, _ := c.Syms.Lookup(firstSec.name)
			if !shape.Congruent(prev.Shape, sym.Shape) || !sameSection(firstSec.sec, f) {
				local = false
			}
		case nir.Subscript:
			local = false // gather/scatter: general communication
		}
	}

	for _, g := range m.Moves {
		for _, v := range []nir.Value{g.Mask, g.Src, g.Tgt} {
			nir.WalkValues(v, func(x nir.Value) {
				if av, ok := x.(nir.AVar); ok {
					checkAVar(av)
				}
			})
		}
	}
	if !local {
		return Comm
	}
	if sawSection {
		// Aligned sections mixed with everywhere refs over the (smaller)
		// section space are misaligned with the full arrays; only
		// all-section moves stay local. Detect everywhere refs: they are
		// congruent with m.Over (the section space), but the sections
		// live on the full shape — localness requires no such mixing
		// unless the section space equals the full shape.
		full := c.sectionFullShape(m)
		if full == nil {
			return Comm
		}
		mixed := false
		for _, g := range m.Moves {
			for _, v := range []nir.Value{g.Mask, g.Src, g.Tgt} {
				nir.WalkValues(v, func(x nir.Value) {
					av, ok := x.(nir.AVar)
					if !ok {
						return
					}
					if _, ew := av.Field.(nir.Everywhere); ew {
						sym, _ := c.Syms.Lookup(av.Name)
						if sym != nil && sym.Shape != nil && !shape.Congruent(sym.Shape, full) {
							mixed = true
						}
					}
				})
			}
		}
		if mixed {
			return Comm
		}
	}
	// Arrays carrying two different explicit !HPF$ distributions are not
	// co-resident even when their shapes agree: the move needs a router
	// realignment, so it is communication.
	if _, ok := c.MoveDist(m); !ok {
		return Comm
	}
	return Compute
}

// MoveDist returns the explicit data distribution shared by a move's
// array references, if any (ok=true). Arrays with the default blockwise
// distribution are wildcards — the compiler materializes their values in
// the partner's layout — so they never constrain the result. Two
// differing explicit distributions mean the move cannot be grid-local
// (ok=false): it requires a router realignment.
func (c *Classifier) MoveDist(m nir.Move) (shape.Distribution, bool) {
	var d shape.Distribution
	ok := true
	for _, g := range m.Moves {
		for _, v := range []nir.Value{g.Mask, g.Src, g.Tgt} {
			nir.WalkValues(v, func(x nir.Value) {
				av, isAV := x.(nir.AVar)
				if !isAV {
					return
				}
				sym, found := c.Syms.Lookup(av.Name)
				if !found || sym.Shape == nil || sym.Dist.IsDefault() {
					return
				}
				rank := len(shape.Extents(sym.Shape))
				if d.IsDefault() {
					d = sym.Dist
				} else if !d.Equal(sym.Dist, rank) {
					ok = false
				}
			})
		}
	}
	return d, ok
}

// sectionFullShape returns the declared shape shared by all sectioned
// arrays of a move, or nil if there is none or they disagree.
func (c *Classifier) sectionFullShape(m nir.Move) shape.Shape {
	var full shape.Shape
	ok := true
	for _, g := range m.Moves {
		for _, v := range []nir.Value{g.Mask, g.Src, g.Tgt} {
			nir.WalkValues(v, func(x nir.Value) {
				av, isAV := x.(nir.AVar)
				if !isAV {
					return
				}
				if _, isSec := av.Field.(nir.Section); !isSec {
					return
				}
				sym, found := c.Syms.Lookup(av.Name)
				if !found || sym.Shape == nil {
					ok = false
					return
				}
				if full == nil {
					full = sym.Shape
				} else if !shape.Congruent(full, sym.Shape) {
					ok = false
				}
			})
		}
	}
	if !ok {
		return nil
	}
	return full
}

func sameSection(a, b nir.Section) bool {
	if len(a.Subs) != len(b.Subs) {
		return false
	}
	for i := range a.Subs {
		ta, tb := a.Subs[i], b.Subs[i]
		if ta.Full != tb.Full || ta.Scalar != tb.Scalar {
			return false
		}
		if ta.Full {
			continue
		}
		if !nir.EqualValue(ta.Lo, tb.Lo) || !nir.EqualValue(ta.Hi, tb.Hi) {
			return false
		}
		sa, sb := ta.Step, tb.Step
		if (sa == nil) != (sb == nil) {
			return false
		}
		if sa != nil && !nir.EqualValue(sa, sb) {
			return false
		}
	}
	return true
}
