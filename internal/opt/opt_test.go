package opt

import (
	"strings"
	"testing"

	"f90y/internal/lower"
	"f90y/internal/nir"
	"f90y/internal/parser"
	"f90y/internal/shape"
)

func mustModule(t *testing.T, src string) *lower.Module {
	t.Helper()
	prog, err := parser.Parse("test.f90", src)
	if err != nil {
		t.Fatalf("parse: %v", err)
	}
	mod, err := lower.Lower(prog)
	if err != nil {
		t.Fatalf("lower: %v", err)
	}
	return mod
}

func wrap(body string) string {
	return "program t\n" + body + "\nend program t\n"
}

func topActions(i nir.Imp) []nir.Imp {
	if seq, ok := i.(nir.Sequentially); ok {
		return seq.List
	}
	if _, ok := i.(nir.Skip); ok {
		return nil
	}
	return []nir.Imp{i}
}

func TestClassification(t *testing.T) {
	mod := mustModule(t, wrap(`real, array(16,16) :: a, b
real c(16)
real s
integer i
a = 2*a + 1
b = cshift(a, 1, 1)
s = s + 1
do i = 1, 16
  c(i) = a(i,i)
end do`))
	cls := &Classifier{Syms: mod.Syms}
	acts := topActions(mod.Body)
	// a=2a+1 (compute); comm temp move (comm); b=tmp (compute);
	// s=s+1 (host); do (host); trailing i store (host).
	var got []Class
	for _, a := range acts {
		got = append(got, cls.Classify(a))
	}
	want := []Class{Compute, Comm, Compute, Host, Host, Host}
	if len(got) != len(want) {
		t.Fatalf("phases = %v", got)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("phase %d = %v, want %v (all %v)", i, got[i], want[i], got)
		}
	}
}

func TestMisalignedSectionIsComm(t *testing.T) {
	// §2.1 L(32:64) = L(96:128): a shifted copy is communication.
	mod := mustModule(t, wrap("integer l(128)\nl(32:64) = l(96:128)"))
	cls := &Classifier{Syms: mod.Syms}
	if got := cls.Classify(topActions(mod.Body)[0]); got != Comm {
		t.Fatalf("misaligned section classified %v", got)
	}
}

func TestAlignedSectionIsCompute(t *testing.T) {
	mod := mustModule(t, wrap("integer, array(32,32) :: a, b\nb(1:32:2,:) = a(1:32:2,:)"))
	cls := &Classifier{Syms: mod.Syms}
	if got := cls.Classify(topActions(mod.Body)[0]); got != Compute {
		t.Fatalf("aligned section classified %v", got)
	}
}

func TestGatherIsComm(t *testing.T) {
	mod := mustModule(t, wrap("integer, array(8,8) :: a, b\nforall (i=1:8, j=1:8) a(i,j) = b(j,i)"))
	cls := &Classifier{Syms: mod.Syms}
	if got := cls.Classify(topActions(mod.Body)[0]); got != Comm {
		t.Fatalf("transpose forall classified %v", got)
	}
}

func TestPadMoveFig10Mask(t *testing.T) {
	mod := mustModule(t, wrap("integer, array(32,32) :: a, b\nb(1:32:2,:) = a(1:32:2,:)"))
	cls := &Classifier{Syms: mod.Syms}
	m := topActions(mod.Body)[0].(nir.Move)
	padded, did := cls.PadMove(m)
	if !did {
		t.Fatal("padding did not apply")
	}
	if !shape.Congruent(padded.Over, shape.Of(32, 32)) {
		t.Fatalf("padded over %v", padded.Over)
	}
	mask := nir.PrintValue(padded.Moves[0].Mask)
	// Fig. 10 mask: BINARY(Equals, BINARY(Mod, coord - lo, 2), 0).
	if !strings.Contains(mask, "Mod") || !strings.Contains(mask, "Equals") {
		t.Errorf("mask = %s", mask)
	}
	for _, g := range padded.Moves {
		if _, ok := g.Tgt.(nir.AVar).Field.(nir.Everywhere); !ok {
			t.Errorf("target not everywhere: %s", nir.PrintValue(g.Tgt))
		}
	}
}

func TestPadMoveBoundsOnly(t *testing.T) {
	// A contiguous prefix section needs only a <= test, no Mod.
	mod := mustModule(t, wrap("integer a(64), b(64)\nb(1:32) = a(1:32)"))
	cls := &Classifier{Syms: mod.Syms}
	m := topActions(mod.Body)[0].(nir.Move)
	padded, did := cls.PadMove(m)
	if !did {
		t.Fatal("padding did not apply")
	}
	mask := nir.PrintValue(padded.Moves[0].Mask)
	if strings.Contains(mask, "Mod") {
		t.Errorf("unit-stride section should not test Mod: %s", mask)
	}
	if !strings.Contains(mask, "LessEq") {
		t.Errorf("missing bound test: %s", mask)
	}
}

func TestFig9DomainBlocking(t *testing.T) {
	// Fig. 9: two like-shape moves separated by a serial DO over the
	// diagonal; the optimizer must fuse the moves into one computation
	// block, leaving two phases.
	src := wrap(`integer, array(64,64) :: a, b
integer c(64)
integer i
forall (i=1:64, j=1:64) a(i,j) = b(i,j) + j
do i = 1, 64
  c(i) = a(i,i)
end do
b = a`)
	mod := mustModule(t, src)
	before := Phases(mod.Body, mod.Syms)
	if CountClass(before, Compute) != 2 || CountClass(before, Host) != 2 {
		t.Fatalf("before: %v", before)
	}

	out, stats := Optimize(mod, Default)
	after := Phases(out.Body, out.Syms)
	// One fused computation block, the serial DO, and the DO index's
	// final store.
	if len(after) != 3 || CountClass(after, Compute) != 1 {
		t.Fatalf("after: %v\n%s", after, nir.Print(out.Body))
	}
	if stats.FusedMoves != 1 {
		t.Fatalf("fused = %d", stats.FusedMoves)
	}
	// The fused block holds both guarded moves.
	fused := topActions(out.Body)[0].(nir.Move)
	if len(fused.Moves) != 2 {
		t.Fatalf("fused moves = %d", len(fused.Moves))
	}
}

func TestFig10MaskedBlocking(t *testing.T) {
	// Fig. 10: four statements become one 3-pair computation block over
	// the 32x32 shape plus a 1-pair block over the vector shape.
	src := wrap(`integer, array(32,32) :: a, b
integer c(32)
integer n
a = n
b(1:32:2,:) = a(1:32:2,:)
c = n + 1
b(2:32:2,:) = 5*a(2:32:2,:)`)
	mod := mustModule(t, src)
	out, stats := Optimize(mod, Default)
	acts := topActions(out.Body)
	if len(acts) != 2 {
		t.Fatalf("phases = %d:\n%s", len(acts), nir.Print(out.Body))
	}
	if stats.PaddedMoves != 2 {
		t.Fatalf("padded = %d", stats.PaddedMoves)
	}
	big := acts[0].(nir.Move)
	if len(big.Moves) != 3 || !shape.Congruent(big.Over, shape.Of(32, 32)) {
		t.Fatalf("big block: %d moves over %v", len(big.Moves), big.Over)
	}
	small := acts[1].(nir.Move)
	if len(small.Moves) != 1 || shape.Size(small.Over) != 32 {
		t.Fatalf("small block: %d moves over %v", len(small.Moves), small.Over)
	}
	// The two padded guards must be complementary Mod tests.
	m1 := nir.PrintValue(big.Moves[1].Mask)
	m2 := nir.PrintValue(big.Moves[2].Mask)
	if !strings.Contains(m1, "Mod") || !strings.Contains(m2, "Mod") || m1 == m2 {
		t.Errorf("masks:\n%s\n%s", m1, m2)
	}
}

func TestBlockingRespectsDependences(t *testing.T) {
	// b = a; a = 2*b may not fuse the second into the first pointwise?
	// Pointwise fusion IS legal here (same shape): check it happens.
	src := wrap("integer x(8), y(8)\ny = x\nx = 2*y")
	mod := mustModule(t, src)
	out, _ := Optimize(mod, Default)
	acts := topActions(out.Body)
	if len(acts) != 1 {
		t.Fatalf("pointwise RAW should fuse: %d phases", len(acts))
	}

	// A communication between like-shape moves blocks hoisting when the
	// later move depends on it.
	src2 := wrap(`integer x(8), y(8), z(8)
y = x
z = cshift(y, 1)
x = z + 1`)
	mod2 := mustModule(t, src2)
	out2, _ := Optimize(mod2, Default)
	phases := Phases(out2.Body, out2.Syms)
	if CountClass(phases, Compute) != 2 || CountClass(phases, Comm) != 1 {
		t.Fatalf("phases = %v", phases)
	}
}

func TestBlockingHoistsPastIndependentComm(t *testing.T) {
	// The unrelated communication on z hoists to the front (it conflicts
	// with nothing before it), after which all three like-shape moves
	// fuse into a single computation block: [comm, compute].
	src := wrap(`integer x(8), y(8), z(8), w(8)
y = x + 1
w = cshift(z, 1)
x = y*2`)
	mod := mustModule(t, src)
	out, stats := Optimize(mod, Default)
	if stats.FusedMoves != 2 {
		t.Fatalf("fused = %d\n%s", stats.FusedMoves, nir.Print(out.Body))
	}
	if stats.HoistedComms != 1 {
		t.Fatalf("hoisted = %d", stats.HoistedComms)
	}
	phases := Phases(out.Body, out.Syms)
	if len(phases) != 2 || phases[0] != Comm || phases[1] != Compute {
		t.Fatalf("phases = %v", phases)
	}
}

func TestCommHoistingClustersSWEPattern(t *testing.T) {
	// The SWE inner-loop pattern: comm, compute, comm, compute over the
	// same shape. Hoisting clusters the communications so the computes
	// fuse: comm, comm, compute.
	src := wrap(`real a(16), b(16), c(16), d(16)
c = cshift(a, 1)*0.5
d = cshift(b, 1)*0.5 + c`)
	mod := mustModule(t, src)
	out, _ := Optimize(mod, Default)
	phases := Phases(out.Body, out.Syms)
	if CountClass(phases, Compute) != 1 || CountClass(phases, Comm) != 2 {
		t.Fatalf("phases = %v\n%s", phases, nir.Print(out.Body))
	}
	// And the communications come first.
	if phases[0] != Comm || phases[1] != Comm || phases[2] != Compute {
		t.Fatalf("order = %v", phases)
	}
}

func TestBlockingInsideSerialLoop(t *testing.T) {
	// The SWE pattern: a time loop whose body contains parallel moves;
	// blocking must apply inside the DO body.
	src := wrap(`real, array(16,16) :: u, v
integer it
do it = 1, 10
  u = u + 1.0
  v = v*2.0
end do`)
	mod := mustModule(t, src)
	out, stats := Optimize(mod, Default)
	if stats.FusedMoves != 1 {
		t.Fatalf("fused inside loop = %d", stats.FusedMoves)
	}
	loop := topActions(out.Body)[0].(nir.Do)
	if mv, ok := loop.Body.(nir.Move); !ok || len(mv.Moves) != 2 {
		t.Fatalf("loop body: %s", nir.Print(loop.Body))
	}
}

func TestDifferentShapesDoNotFuse(t *testing.T) {
	src := wrap("integer a(8)\ninteger b(16)\na = 1\nb = 2")
	mod := mustModule(t, src)
	out, stats := Optimize(mod, Default)
	if stats.FusedMoves != 0 {
		t.Fatal("incongruent shapes fused")
	}
	if len(topActions(out.Body)) != 2 {
		t.Fatalf("phases = %d", len(topActions(out.Body)))
	}
}

func TestOptimizeWithBlockingDisabled(t *testing.T) {
	// The CMF-like configuration pads but does not fuse.
	src := wrap(`integer, array(32,32) :: a, b
a = 1
b = 2*a`)
	mod := mustModule(t, src)
	out, stats := Optimize(mod, Options{PadSections: true})
	if stats.FusedMoves != 0 {
		t.Fatal("blocking ran while disabled")
	}
	if len(topActions(out.Body)) != 2 {
		t.Fatalf("phases = %d", len(topActions(out.Body)))
	}
}

func TestOptimizePreservesWrapper(t *testing.T) {
	src := wrap("integer a(8), b(8)\na = 1\nb = a")
	mod := mustModule(t, src)
	out, _ := Optimize(mod, Default)
	text := nir.Print(out.Prog)
	if !strings.Contains(text, "PROGRAM(") || !strings.Contains(text, "WITH_DECL") {
		t.Fatalf("wrapper lost:\n%s", text)
	}
	// And the wrapper's body is the optimized one: a single fused move.
	if !strings.Contains(text, "MOVE<") {
		t.Fatalf("no move in prog:\n%s", text)
	}
}

func TestPhasesSummary(t *testing.T) {
	src := wrap(`real a(8), b(8)
real s
a = 1
b = cshift(a, 1)
s = sum(b)`)
	mod := mustModule(t, src)
	p := Phases(mod.Body, mod.Syms)
	if CountClass(p, Comm) != 2 { // cshift + reduction
		t.Fatalf("phases = %v", p)
	}
}

func TestSerialLoopFusion(t *testing.T) {
	// Two independent serial loops over identical bounds fuse into one,
	// even across the trailing index stores between them.
	src := wrap(`integer, array(8,8) :: a, b
integer c(8), d(8)
integer i, j
forall (i=1:8, j=1:8) a(i,j) = i + j
forall (i=1:8, j=1:8) b(i,j) = i*j
do i = 1, 8
  c(i) = a(i,i)
end do
do j = 1, 8
  d(j) = b(j,j)
end do`)
	mod := mustModule(t, src)
	out, stats := Optimize(mod, Default)
	if stats.FusedLoops != 1 {
		t.Fatalf("fused loops = %d\n%s", stats.FusedLoops, nir.Print(out.Body))
	}
	dos := 0
	nir.WalkImps(out.Body, func(a nir.Imp) {
		if _, ok := a.(nir.Do); ok {
			dos++
		}
	})
	if dos != 1 {
		t.Fatalf("loops remaining = %d", dos)
	}
}

func TestSerialLoopFusionRespectsDependence(t *testing.T) {
	// The second loop reads what the first writes: no fusion.
	src := wrap(`integer c(8), d(8)
integer i, j
do i = 1, 8
  c(i) = i
end do
do j = 1, 8
  d(j) = c(9-j)
end do`)
	mod := mustModule(t, src)
	_, stats := Optimize(mod, Default)
	if stats.FusedLoops != 0 {
		t.Fatalf("dependent loops fused")
	}
}

func TestSerialLoopFusionDifferentBounds(t *testing.T) {
	src := wrap(`integer c(8), d(4)
integer i, j
do i = 1, 8
  c(i) = i
end do
do j = 1, 4
  d(j) = j
end do`)
	mod := mustModule(t, src)
	_, stats := Optimize(mod, Default)
	if stats.FusedLoops != 0 {
		t.Fatalf("different-bounds loops fused")
	}
}
