package opt

import (
	"f90y/internal/lower"
	"f90y/internal/nir"
	"f90y/internal/obs"
)

// Pass is one named NIR transformation. The optimizer is structured as
// an ordered pass list so each pass reports its own span and counters:
// every future transformation slots in here and is automatically
// visible in traces and metric reports.
type Pass struct {
	// Name identifies the pass in spans ("opt/<name>") and reports.
	Name string
	run  func(o *optimizer, a nir.Imp) nir.Imp
}

// passes returns the pass list selected by opts, in execution order.
func passes(opts Options) []Pass {
	var out []Pass
	if opts.PadSections {
		out = append(out, Pass{Name: "pad-sections", run: (*optimizer).padAll})
	}
	// Domain blocking always runs: it normalizes the statement-list
	// structure (flattening nested sequences, dropping skips) and, when
	// opts.BlockDomains is set, additionally fuses like-shape compute
	// moves, hoists communications, and merges independent serial loops.
	out = append(out, Pass{Name: "block-domains", run: (*optimizer).rewrite})
	return out
}

// PassNames returns the names of the passes opts enables, in order; the
// CLIs and tests use it to know which "opt/<name>" spans to expect.
func PassNames(opts Options) []string {
	ps := passes(opts)
	names := make([]string, len(ps))
	for i, p := range ps {
		names[i] = p.Name
	}
	return names
}

// Optimize runs the NIR transformation stage over a module, returning
// the rewritten module (Body and Prog replaced) and statistics. The
// input module is not modified.
func Optimize(mod *lower.Module, opts Options) (*lower.Module, Stats) {
	return OptimizeObs(mod, opts, nil)
}

// OptimizeObs is Optimize with telemetry: each pass emits one
// "opt/<name>" span, and the final statistics are emitted as counters.
// rec may be nil.
func OptimizeObs(mod *lower.Module, opts Options, rec obs.Recorder) (*lower.Module, Stats) {
	o := &optimizer{cls: &Classifier{Syms: mod.Syms}, opts: opts}
	body := mod.Body
	for _, p := range passes(opts) {
		span := obs.Start(rec, "opt/"+p.Name)
		body = p.run(o, body)
		span.End()
	}
	obs.Add(rec, "opt/padded-moves", float64(o.stats.PaddedMoves))
	obs.Add(rec, "opt/fused-moves", float64(o.stats.FusedMoves))
	obs.Add(rec, "opt/hoisted-comms", float64(o.stats.HoistedComms))
	obs.Add(rec, "opt/fused-loops", float64(o.stats.FusedLoops))
	out := *mod
	out.Body = body
	out.Prog = replaceBody(mod.Prog, body)
	return &out, o.stats
}

// padAll is the pad-sections pass body: every compute-classified
// aligned-section move becomes a full-shape masked move (Fig. 10).
// PadMove itself verifies the Compute classification, so the traversal
// simply offers it every move.
func (o *optimizer) padAll(a nir.Imp) nir.Imp {
	switch a := a.(type) {
	case nir.Move:
		if padded, did := o.cls.PadMove(a); did {
			o.stats.PaddedMoves++
			return padded
		}
		return a
	case nir.Sequentially:
		list := make([]nir.Imp, len(a.List))
		for i, x := range a.List {
			list[i] = o.padAll(x)
		}
		a.List = list
		return a
	case nir.Concurrently:
		list := make([]nir.Imp, len(a.List))
		for i, x := range a.List {
			list[i] = o.padAll(x)
		}
		a.List = list
		return a
	case nir.IfThenElse:
		a.Then = o.padAll(a.Then)
		a.Else = o.padAll(a.Else)
		return a
	case nir.While:
		a.Body = o.padAll(a.Body)
		return a
	case nir.Do:
		a.Body = o.padAll(a.Body)
		return a
	case nir.WithDecl:
		a.Body = o.padAll(a.Body)
		return a
	case nir.WithDomain:
		a.Body = o.padAll(a.Body)
		return a
	case nir.Program:
		a.Body = o.padAll(a.Body)
		return a
	default:
		return a
	}
}
