package opt

import (
	"f90y/internal/nir"
	"f90y/internal/shape"
)

// PadMove rewrites an aligned section move into a full-shape masked move
// (Fig. 10): the compiler "pads computations over array subsections to
// full-array operations, increasing the pool of sibling computations which
// could be implemented in the same computation block". The generated mask
// tests the local coordinate matrix against the section's bounds and
// stride (the BINARY(Equals, BINARY(Mod, ...)) encoding of Fig. 10).
//
// PadMove returns the padded move and true, or the original move and
// false when padding does not apply (not a compute move, no sections,
// negative strides, or rank-reducing subscripts).
func (c *Classifier) PadMove(m nir.Move) (nir.Move, bool) {
	if c.Classify(m) != Compute {
		return m, false
	}
	full := c.sectionFullShape(m)
	if full == nil {
		return m, false // no sections at all
	}
	if shape.Congruent(full, m.Over) && !hasSection(m) {
		return m, false
	}

	// All sections are identical (Compute classification guarantees it);
	// take the first as the representative.
	var sec *nir.Section
	for _, g := range m.Moves {
		for _, v := range []nir.Value{g.Mask, g.Src, g.Tgt} {
			nir.WalkValues(v, func(x nir.Value) {
				if av, ok := x.(nir.AVar); ok && sec == nil {
					if s, isSec := av.Field.(nir.Section); isSec {
						sc := s
						sec = &sc
					}
				}
			})
		}
	}
	if sec == nil {
		return m, false
	}

	declLo := shape.Lowers(full)
	declExt := shape.Extents(full)
	var mask nir.Value
	and := func(t nir.Value) {
		if mask == nil {
			mask = t
		} else {
			mask = nir.Binary{Op: nir.AndOp, L: mask, R: t}
		}
	}
	for d, t := range sec.Subs {
		if t.Full {
			continue
		}
		lo, lok := constInt(t.Lo)
		hi, hok := constInt(t.Hi)
		step := 1
		if t.Step != nil {
			s, sok := constInt(t.Step)
			if !sok {
				return m, false
			}
			step = s
		}
		if !lok || !hok || step <= 0 {
			return m, false // dynamic or negative-stride sections stay communication
		}
		coord := nir.LocalUnder{S: full, Dim: d + 1}
		if lo != declLo[d] {
			and(nir.Binary{Op: nir.GreaterEq, L: coord, R: nir.IntConst(int64(lo))})
		}
		if hi != declLo[d]+declExt[d]-1 {
			and(nir.Binary{Op: nir.LessEq, L: coord, R: nir.IntConst(int64(hi))})
		}
		if step > 1 {
			and(nir.Binary{Op: nir.Equals,
				L: nir.Binary{Op: nir.Mod,
					L: nir.Binary{Op: nir.Minus, L: coord, R: nir.IntConst(int64(lo))},
					R: nir.IntConst(int64(step))},
				R: nir.IntConst(0)})
		}
	}
	if mask == nil {
		mask = nir.True
	}

	out := nir.Move{Over: full, Moves: make([]nir.GuardedMove, len(m.Moves)), Pos: m.Pos}
	toEverywhere := func(v nir.Value) nir.Value {
		return nir.RewriteValues(v, func(x nir.Value) nir.Value {
			if av, ok := x.(nir.AVar); ok {
				if _, isSec := av.Field.(nir.Section); isSec {
					return nir.AVar{Name: av.Name, Field: nir.Everywhere{}}
				}
			}
			return x
		})
	}
	for i, g := range m.Moves {
		ng := nir.GuardedMove{
			Src: toEverywhere(g.Src),
			Tgt: toEverywhere(g.Tgt),
			Pos: g.Pos,
		}
		oldMask := toEverywhere(g.Mask)
		if nir.EqualValue(oldMask, nir.True) {
			ng.Mask = mask
		} else if nir.EqualValue(mask, nir.True) {
			ng.Mask = oldMask
		} else {
			ng.Mask = nir.Binary{Op: nir.AndOp, L: mask, R: oldMask}
		}
		out.Moves[i] = ng
	}
	return out, true
}

func hasSection(m nir.Move) bool {
	found := false
	for _, g := range m.Moves {
		for _, v := range []nir.Value{g.Mask, g.Src, g.Tgt} {
			nir.WalkValues(v, func(x nir.Value) {
				if av, ok := x.(nir.AVar); ok {
					if _, isSec := av.Field.(nir.Section); isSec {
						found = true
					}
				}
			})
		}
	}
	return found
}

func constInt(v nir.Value) (int, bool) {
	c, ok := v.(nir.Const)
	if !ok || c.Type.Kind != nir.Integer32 {
		return 0, false
	}
	return int(c.I), true
}
