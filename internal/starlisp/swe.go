package starlisp

import "math"

// RunSWE executes the hand-coded fieldwise *Lisp shallow-water-equations
// program: the same computation as workload.SWE, written operation by
// operation the way a *Lisp programmer would (each elemental op a separate
// whole-array traversal; repeated CSHIFT subexpressions reused by hand).
// The expression trees mirror the Fortran source exactly, so the numeric
// results validate against the reference interpreter bit-for-bit in
// float64.
func RunSWE(n, itmax int, m Model) (*Sim, Result) {
	s := New(n, m)

	pi := 3.14159265359
	tpi := pi + pi
	di := tpi / float64(n)
	dj := tpi / float64(n)
	dx := 100000.0
	dy := 100000.0
	fsdx := 4.0 / dx
	fsdy := 4.0 / dy
	alpha := 0.001
	aa := 1000000.0
	el := float64(n) * 100000.0
	pcf := pi * pi * aa * aa / (el * el)
	dt := 90.0

	add := func(x, y float64) float64 { return x + y }
	sub := func(x, y float64) float64 { return x - y }
	mul := func(x, y float64) float64 { return x * y }
	div := func(x, y float64) float64 { return x / y }
	by := func(k float64) func(float64) float64 { return func(x float64) float64 { return k * x } }

	// Initial conditions (not part of the measured kernel in cycles, but
	// charged like any other fieldwise ops).
	s.Init("psi", func(i, j int) float64 {
		return aa * math.Sin((float64(i)-0.5)*di) * math.Sin((float64(j)-0.5)*dj)
	})
	s.Init("p", func(i, j int) float64 {
		return pcf*(math.Cos(2.0*(float64(i)-1)*di)+math.Cos(2.0*(float64(j)-1)*dj)) + 50000.0
	})
	// u = -(cshift(psi,2,1) - psi)*(n/el)*10 ; v analogous on dim 1.
	s.Shift("t", "psi", 2, 1)
	s.Bin("t", "t", "psi", sub)
	s.Scale("t", "t", by(float64(n)/el))
	s.Scale("u", "t", by(10.0))
	s.Scale("u", "u", func(x float64) float64 { return -x })
	s.Shift("t", "psi", 1, 1)
	s.Bin("t", "t", "psi", sub)
	s.Scale("t", "t", by(float64(n)/el))
	s.Scale("v", "t", by(10.0))
	s.Copy("uold", "u")
	s.Copy("vold", "v")
	s.Copy("pold", "p")

	tdt := dt
	for cycle := 0; cycle < itmax; cycle++ {
		// cu = 0.5*(p + cshift(p,1,-1))*u
		s.Shift("p1m", "p", 1, -1) // reused below in z's denominator
		s.Bin("t", "p", "p1m", add)
		s.Scale("t", "t", by(0.5))
		s.Bin("cu", "t", "u", mul)

		// cv = 0.5*(p + cshift(p,2,-1))*v
		s.Shift("p2m", "p", 2, -1) // reused below
		s.Bin("t", "p", "p2m", add)
		s.Scale("t", "t", by(0.5))
		s.Bin("cv", "t", "v", mul)

		// z = (fsdx*(v - cshift(v,1,-1)) - fsdy*(u - cshift(u,2,-1)))
		//     / (p + cshift(p,1,-1) + cshift(p,2,-1) + cshift(cshift(p,1,-1),2,-1))
		s.Shift("t", "v", 1, -1)
		s.Bin("t", "v", "t", sub)
		s.Scale("num", "t", by(fsdx))
		s.Shift("t", "u", 2, -1)
		s.Bin("t", "u", "t", sub)
		s.Scale("t", "t", by(fsdy))
		s.Bin("num", "num", "t", sub)
		s.Bin("den", "p", "p1m", add)
		s.Bin("den", "den", "p2m", add)
		s.Shift("t", "p1m", 2, -1)
		s.Bin("den", "den", "t", add)
		s.Bin("z", "num", "den", div)

		// h = p + 0.25*(u*u + cshift(u,1,1)^2) + 0.25*(v*v + cshift(v,2,1)^2)
		s.Shift("t", "u", 1, 1)
		s.Bin("t", "t", "t", mul)
		s.Bin("t2", "u", "u", mul)
		s.Bin("t", "t2", "t", add)
		s.Scale("t", "t", by(0.25))
		s.Bin("h", "p", "t", add)
		s.Shift("t", "v", 2, 1)
		s.Bin("t", "t", "t", mul)
		s.Bin("t2", "v", "v", mul)
		s.Bin("t", "t2", "t", add)
		s.Scale("t", "t", by(0.25))
		s.Bin("h", "h", "t", add)

		tdts8 := tdt / 8.0
		tdtsdx := tdt / dx
		tdtsdy := tdt / dy

		// unew = uold + tdts8*(z + cshift(z,2,1))
		//        *(cv + cshift(cv,1,1) + cshift(cshift(cv,1,1),2,-1) + cshift(cv,2,-1))
		//        - tdtsdx*(h - cshift(h,1,-1))
		s.Shift("t", "z", 2, 1)
		s.Bin("zs", "z", "t", add)
		s.Scale("zs", "zs", by(tdts8))
		s.Shift("cv11", "cv", 1, 1)
		s.Bin("cvs", "cv", "cv11", add)
		s.Shift("t", "cv11", 2, -1)
		s.Bin("cvs", "cvs", "t", add)
		s.Shift("t", "cv", 2, -1)
		s.Bin("cvs", "cvs", "t", add)
		s.Bin("t", "zs", "cvs", mul)
		s.Bin("unew", "uold", "t", add)
		s.Shift("t", "h", 1, -1)
		s.Bin("t", "h", "t", sub)
		s.Scale("t", "t", by(tdtsdx))
		s.Bin("unew", "unew", "t", sub)

		// vnew = vold - tdts8*(z + cshift(z,1,1))
		//        *(cu + cshift(cu,2,1) + cshift(cshift(cu,1,-1),2,1) + cshift(cu,1,-1))
		//        - tdtsdy*(h - cshift(h,2,-1))
		s.Shift("t", "z", 1, 1)
		s.Bin("zs", "z", "t", add)
		s.Scale("zs", "zs", by(tdts8))
		s.Shift("t", "cu", 2, 1)
		s.Bin("cus", "cu", "t", add)
		s.Shift("cu1m", "cu", 1, -1)
		s.Shift("t", "cu1m", 2, 1)
		s.Bin("cus", "cus", "t", add)
		s.Bin("cus", "cus", "cu1m", add)
		s.Bin("t", "zs", "cus", mul)
		s.Bin("vnew", "vold", "t", sub)
		s.Shift("t", "h", 2, -1)
		s.Bin("t", "h", "t", sub)
		s.Scale("t", "t", by(tdtsdy))
		s.Bin("vnew", "vnew", "t", sub)

		// pnew = pold - tdtsdx*(cshift(cu,1,1) - cu) - tdtsdy*(cshift(cv,2,1) - cv)
		s.Shift("t", "cu", 1, 1)
		s.Bin("t", "t", "cu", sub)
		s.Scale("t", "t", by(tdtsdx))
		s.Bin("pnew", "pold", "t", sub)
		s.Shift("t", "cv", 2, 1)
		s.Bin("t", "t", "cv", sub)
		s.Scale("t", "t", by(tdtsdy))
		s.Bin("pnew", "pnew", "t", sub)

		// Robert–Asselin filter: xold = x + alpha*(xnew - 2*x + xold).
		filter := func(old, cur, new string) {
			s.Scale("t", cur, by(2.0))
			s.Bin("t", new, "t", sub)
			s.Bin("t", "t", old, add)
			s.Scale("t", "t", by(alpha))
			s.Bin(old, cur, "t", add)
		}
		filter("uold", "u", "unew")
		filter("vold", "v", "vnew")
		filter("pold", "p", "pnew")
		s.Copy("u", "unew")
		s.Copy("v", "vnew")
		s.Copy("p", "pnew")
		tdt = dt + dt
	}

	return s, Result{Cycles: s.Cycles, Flops: s.Flops, Ops: s.Ops, N: n, Steps: itmax}
}
