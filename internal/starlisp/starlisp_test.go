package starlisp

import (
	"math"
	"testing"

	"f90y/internal/interp"
	"f90y/internal/parser"
	"f90y/internal/workload"
)

// TestHandCodedSWEMatchesOracle validates the hand-coded *Lisp program
// against the reference interpreter running the Fortran source: same
// equations, same values.
func TestHandCodedSWEMatchesOracle(t *testing.T) {
	const n, steps = 16, 4
	sim, _ := RunSWE(n, steps, DefaultModel)

	prog, err := parser.Parse("swe.f90", workload.SWE(n, steps))
	if err != nil {
		t.Fatal(err)
	}
	oracle, err := interp.Run(prog)
	if err != nil {
		t.Fatal(err)
	}
	for _, name := range []string{"p", "u", "v"} {
		want := oracle.Array(name)
		got := sim.PVar(name)
		for i := range got {
			w := want.F[i]
			if math.Abs(got[i]-w) > 1e-9*math.Max(1, math.Abs(w)) {
				t.Fatalf("%s[%d] = %v, oracle %v", name, i, got[i], w)
			}
		}
	}
}

func TestCostAccountingScales(t *testing.T) {
	_, r1 := RunSWE(16, 1, DefaultModel)
	_, r2 := RunSWE(16, 2, DefaultModel)
	if r2.Cycles <= r1.Cycles || r2.Flops <= r1.Flops {
		t.Fatalf("costs did not grow: %v vs %v", r1, r2)
	}
	// Two steps roughly double the per-step work beyond init.
	stepCycles := r2.Cycles - r1.Cycles
	if stepCycles <= 0 {
		t.Fatal("non-positive per-step cost")
	}
}

func TestGFLOPSInPlausibleRange(t *testing.T) {
	// At the paper's scale the model must land in the low single-digit
	// gigaflops, below the compiled slicewise systems.
	_, r := RunSWE(256, 2, DefaultModel)
	gf := r.GFLOPS(DefaultModel.ClockHz)
	if gf < 0.5 || gf > 3.0 {
		t.Fatalf("fieldwise SWE = %.2f GF, outside plausible band", gf)
	}
}

func TestShiftSemantics(t *testing.T) {
	s := New(4, DefaultModel)
	a := s.PVar("a")
	for i := range a {
		a[i] = float64(i)
	}
	s.Shift("b", "a", 1, -1) // b(i,j) = a(i-1,j)
	b := s.PVar("b")
	// Column-major 4x4: element (2,1) is index 1; its source (1,1) is 0.
	if b[1] != 0 || b[0] != 3 {
		t.Fatalf("shift wrong: %v", b[:4])
	}
}

func TestOpsCounted(t *testing.T) {
	s := New(8, DefaultModel)
	s.Bin("c", "a", "b", func(x, y float64) float64 { return x + y })
	s.Scale("c", "c", func(x float64) float64 { return 2 * x })
	if s.Ops != 2 || s.Flops != int64(2*8*8) {
		t.Fatalf("ops=%d flops=%d", s.Ops, s.Flops)
	}
}
