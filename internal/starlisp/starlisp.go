// Package starlisp models the hand-coded *Lisp baseline of §6: the SWE
// benchmark "running under fieldwise mode peaked at 1.89 gigaflops".
//
// Under the fieldwise programming model, every elemental operation is a
// separate whole-array traversal dispatched through the virtual-processor
// runtime: operands stream through the transposer between the bit-serial
// processor memory layout and the Weitek datapath, and nothing fuses — no
// cross-operation register reuse, no load chaining, no multiply-add
// pairing. The package provides a tiny *Lisp-style array VM with a
// calibrated fieldwise cost model, and the hand-coded SWE program written
// against it (mirroring exactly the computation of workload.SWE so its
// numeric results can be validated against the reference interpreter).
package starlisp

import (
	"fmt"
	"math"
)

// Model is the fieldwise cost model, in sequencer cycles.
type Model struct {
	PEs     int     // Weitek FPUs behind the transposer (2,048)
	ClockHz float64 // 7 MHz
	// OpCycles is the per-vector-group cost of one elemental operation's
	// traversal: two operand fetches and one store through the
	// transposer plus the arithmetic — fieldwise layout makes each
	// leg slower than slicewise (the transposer charge).
	OpCycles float64
	// CallOverhead is the per-operation dispatch cost of the VP runtime.
	CallOverhead float64
	// ShiftPerGroup is the per-vector-group cost of a NEWS grid shift.
	ShiftPerGroup float64
	// ShiftStartup is the per-shift dispatch cost.
	ShiftStartup float64
}

// DefaultModel is calibrated so the hand-coded SWE lands near the paper's
// 1.89 GF on the 1024x1024 problem: each fieldwise traversal costs about
// 1.7x its slicewise naive equivalent (transposer plus VP bookkeeping),
// and no fusion ever amortizes dispatch.
var DefaultModel = Model{
	PEs:           2048,
	ClockHz:       7e6,
	OpCycles:      24, // per 4-element group: load+load+op+store traversal
	CallOverhead:  100,
	ShiftPerGroup: 14,
	ShiftStartup:  160,
}

// Sim is one fieldwise *Lisp execution.
type Sim struct {
	Model
	N      int // grid edge: arrays are N x N, column-major
	Cycles float64
	Flops  int64
	Ops    int
	pvars  map[string][]float64
}

// New creates a simulator for an n-by-n VP set.
func New(n int, m Model) *Sim {
	return &Sim{Model: m, N: n, pvars: map[string][]float64{}}
}

// PVar returns (allocating if needed) a parallel variable's storage.
func (s *Sim) PVar(name string) []float64 {
	if v, ok := s.pvars[name]; ok {
		return v
	}
	v := make([]float64, s.N*s.N)
	s.pvars[name] = v
	return v
}

// groups is the per-PE vector-group count of one traversal.
func (s *Sim) groups() float64 {
	sub := (s.N*s.N + s.PEs - 1) / s.PEs
	return float64((sub + 3) / 4)
}

// chargeOp accounts one elemental whole-array operation.
func (s *Sim) chargeOp(flopsPerElem int) {
	s.Ops++
	s.Cycles += s.CallOverhead + s.groups()*s.OpCycles
	s.Flops += int64(flopsPerElem * s.N * s.N)
}

// Bin applies dst = f(a, b) elementwise as one fieldwise operation.
func (s *Sim) Bin(dst, a, b string, f func(x, y float64) float64) {
	d, x, y := s.PVar(dst), s.PVar(a), s.PVar(b)
	for i := range d {
		d[i] = f(x[i], y[i])
	}
	s.chargeOp(1)
}

// Scale applies dst = a * k (or any unary op via f) elementwise.
func (s *Sim) Scale(dst, a string, f func(x float64) float64) {
	d, x := s.PVar(dst), s.PVar(a)
	for i := range d {
		d[i] = f(x[i])
	}
	s.chargeOp(1)
}

// Copy is dst = a; it moves data without floating-point work.
func (s *Sim) Copy(dst, a string) {
	copy(s.PVar(dst), s.PVar(a))
	s.Ops++
	s.Cycles += s.CallOverhead + s.groups()*s.OpCycles
}

// Shift is dst = CSHIFT(a, dim, amt) over the NEWS grid.
func (s *Sim) Shift(dst, a string, dim, amt int) {
	d, x := s.PVar(dst), s.PVar(a)
	n := s.N
	for j := 0; j < n; j++ {
		for i := 0; i < n; i++ {
			si, sj := i, j
			if dim == 1 {
				si = ((i+amt)%n + n) % n
			} else {
				sj = ((j+amt)%n + n) % n
			}
			d[i+j*n] = x[si+sj*n]
		}
	}
	s.Ops++
	s.Cycles += s.ShiftStartup + s.groups()*s.ShiftPerGroup*math.Abs(float64(amt))
}

// Init fills a parallel variable from a coordinate function (self-address
// computation is cheap and not part of the measured kernel).
func (s *Sim) Init(name string, f func(i, j int) float64) {
	d := s.PVar(name)
	n := s.N
	for j := 0; j < n; j++ {
		for i := 0; i < n; i++ {
			d[i+j*n] = f(i+1, j+1)
		}
	}
}

// Result summarizes a run.
type Result struct {
	Cycles float64
	Flops  int64
	Ops    int
	N      int
	Steps  int
}

// Seconds is modeled wall time.
func (r Result) Seconds(clockHz float64) float64 { return r.Cycles / clockHz }

// GFLOPS is the modeled sustained rate.
func (r Result) GFLOPS(clockHz float64) float64 {
	return float64(r.Flops) / r.Seconds(clockHz) / 1e9
}

func (r Result) String() string {
	return fmt.Sprintf("starlisp swe n=%d steps=%d ops=%d cycles=%.0f", r.N, r.Steps, r.Ops, r.Cycles)
}
