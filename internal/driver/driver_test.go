package driver

import (
	"context"
	"errors"
	"fmt"
	"reflect"
	"strings"
	"sync"
	"testing"
	"time"

	"f90y"
	"f90y/internal/cm2"
	"f90y/internal/obs"
	"f90y/internal/pe"
	"f90y/internal/rt"
	"f90y/internal/workload"
)

// resultFingerprint renders every deterministic field of a result so
// runs can be compared for bit-identity (spans/wall-clock excluded).
func resultFingerprint(r *cm2.Result) string {
	return fmt.Sprintf("host=%v pe=%v comm=%v flops=%d node=%d comm-calls=%d gflops=%v out=%q peclass=%v routines=%v commclass=%v hostclass=%v",
		r.HostCycles, r.PECycles, r.CommCycles, r.Flops, r.NodeCalls, r.CommCalls,
		r.GFLOPS(), strings.Join(r.Output, "\n"),
		sortedMap(r.PEClassCycles), sortedMap(r.PERoutineCycles),
		sortedMap(r.CommClassCycles), sortedMap(r.HostClassCycles))
}

func sortedMap(m map[string]float64) string {
	keys := make([]string, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	// insertion sort; the maps are tiny
	for i := 1; i < len(keys); i++ {
		for j := i; j > 0 && keys[j] < keys[j-1]; j-- {
			keys[j], keys[j-1] = keys[j-1], keys[j]
		}
	}
	var b strings.Builder
	for _, k := range keys {
		fmt.Fprintf(&b, "%s=%v;", k, m[k])
	}
	return b.String()
}

// TestConcurrentRunsDeterministic runs many goroutines over one cached
// *fe.Program on one Machine configuration and asserts every result is
// bit-identical to a serial baseline. Run under -race this is also the
// proof that a shared Artifact and a shared Machine are safe.
func TestConcurrentRunsDeterministic(t *testing.T) {
	svc := New(8)
	src := workload.SWE(64, 3)
	cfg := f90y.DefaultConfig()
	art, err := svc.Compile(context.Background(), "swe.f90", src, cfg)
	if err != nil {
		t.Fatal(err)
	}

	machine := cm2.Default()
	baseline, err := machine.RunCtx(context.Background(), art.Comp.Program, nil, nil, nil)
	if err != nil {
		t.Fatal(err)
	}
	want := resultFingerprint(baseline)

	const goroutines = 16
	got := make([]string, goroutines)
	errs := make([]error, goroutines)
	var wg sync.WaitGroup
	for i := 0; i < goroutines; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			res, err := machine.RunCtx(context.Background(), art.Comp.Program, nil, nil, nil)
			if err != nil {
				errs[i] = err
				return
			}
			got[i] = resultFingerprint(res)
		}(i)
	}
	wg.Wait()
	for i := 0; i < goroutines; i++ {
		if errs[i] != nil {
			t.Fatalf("goroutine %d: %v", i, errs[i])
		}
		if got[i] != want {
			t.Errorf("goroutine %d result differs from serial baseline:\n got %s\nwant %s", i, got[i], want)
		}
	}
}

// TestConcurrentBatchMatchesSerial runs the same job set serially
// (workers=1) and in parallel and asserts result-for-result identity,
// across both targets and with per-job recorders attached.
func TestConcurrentBatchMatchesSerial(t *testing.T) {
	jobs := func() []Job {
		var js []Job
		for i, target := range []string{"cm2", "cm5", "cm2", "cm5"} {
			cfg := f90y.DefaultConfig()
			cfg.Obs = obs.NewCollector()
			js = append(js, Job{
				Name:   fmt.Sprintf("swe-%s-%d", target, i),
				File:   "swe.f90",
				Source: workload.SWE(32, 2),
				Config: cfg,
				Target: target,
			})
		}
		cfg := f90y.Config{Opt: f90y.DefaultConfig().Opt, PE: pe.Naive}
		js = append(js, Job{Name: "fig9-naive-pe", File: "fig9.f90", Source: workload.Fig9(32), Config: cfg})
		return js
	}

	serial := New(1).RunBatch(context.Background(), jobs())
	parallel := New(8).RunBatch(context.Background(), jobs())
	if len(serial) != len(parallel) {
		t.Fatalf("result lengths differ: %d vs %d", len(serial), len(parallel))
	}
	for i := range serial {
		if serial[i].Err != nil || parallel[i].Err != nil {
			t.Fatalf("job %d errors: serial=%v parallel=%v", i, serial[i].Err, parallel[i].Err)
		}
		s, p := resultFingerprint(serial[i].Result()), resultFingerprint(parallel[i].Result())
		if s != p {
			t.Errorf("job %d (%s) differs:\nserial   %s\nparallel %s", i, serial[i].Job.Name, s, p)
		}
	}
}

// TestConcurrentCacheHitReturnsSameArtifact asserts hit/miss counting,
// pointer identity on a hit, a changed config missing, and — via span
// counts — that a hit re-runs no pipeline phase.
func TestConcurrentCacheHitReturnsSameArtifact(t *testing.T) {
	svc := New(4)
	src := workload.Fig9(16)
	ctx := context.Background()

	cfg1 := f90y.DefaultConfig()
	col1 := obs.NewCollector()
	cfg1.Obs = col1
	a1, err := svc.Compile(ctx, "fig9.f90", src, cfg1)
	if err != nil {
		t.Fatal(err)
	}
	if n := len(col1.Spans()); n == 0 {
		t.Fatal("compiling miss recorded no pipeline spans")
	}

	cfg2 := f90y.DefaultConfig()
	col2 := obs.NewCollector()
	cfg2.Obs = col2
	a2, err := svc.Compile(ctx, "fig9.f90", src, cfg2)
	if err != nil {
		t.Fatal(err)
	}
	if a1 != a2 {
		t.Errorf("cache hit returned a different artifact pointer: %p vs %p", a1, a2)
	}
	if n := len(col2.Spans()); n != 0 {
		t.Errorf("cache hit re-ran %d pipeline phases (spans: %v)", n, col2.Spans())
	}
	if hits, misses := svc.CacheStats(); hits != 1 || misses != 1 {
		t.Errorf("cache stats = %d hits, %d misses; want 1, 1", hits, misses)
	}

	// A different PE config is a different key.
	cfg3 := f90y.DefaultConfig()
	cfg3.PE = pe.Naive
	a3, err := svc.Compile(ctx, "fig9.f90", src, cfg3)
	if err != nil {
		t.Fatal(err)
	}
	if a3 == a1 {
		t.Error("different config served the same artifact")
	}
	if _, misses := svc.CacheStats(); misses != 2 {
		t.Errorf("misses = %d, want 2", misses)
	}

	// The artifacts of equal keys are the very same immutable program.
	if !reflect.DeepEqual(a1.Key, KeyOf(src, cfg2)) {
		t.Error("artifact key does not round-trip through KeyOf")
	}
}

// TestConcurrentCompileSingleflight issues many concurrent compiles of
// one key and asserts they all get the same artifact from exactly one
// pipeline run.
func TestConcurrentCompileSingleflight(t *testing.T) {
	svc := New(8)
	src := workload.SWE(32, 2)
	const goroutines = 12
	arts := make([]*Artifact, goroutines)
	var wg sync.WaitGroup
	for i := 0; i < goroutines; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			a, err := svc.Compile(context.Background(), "swe.f90", src, f90y.DefaultConfig())
			if err != nil {
				t.Error(err)
				return
			}
			arts[i] = a
		}(i)
	}
	wg.Wait()
	for i := 1; i < goroutines; i++ {
		if arts[i] != arts[0] {
			t.Fatalf("goroutine %d got a different artifact", i)
		}
	}
	if _, misses := svc.CacheStats(); misses != 1 {
		t.Errorf("misses = %d, want 1 (singleflight)", misses)
	}
}

// TestConcurrentCancelMidRun cancels a long run mid-flight and asserts
// it returns promptly with the structured sentinel chain.
func TestConcurrentCancelMidRun(t *testing.T) {
	svc := New(2)
	// Plenty of host boundaries: many steps over a small grid.
	src := workload.SWE(64, 400)
	art, err := svc.Compile(context.Background(), "swe.f90", src, f90y.DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}

	ctx, cancel := context.WithCancel(context.Background())
	done := make(chan error, 1)
	start := time.Now()
	go func() {
		_, err := cm2.Default().RunCtx(ctx, art.Comp.Program, nil, nil, nil)
		done <- err
	}()
	time.Sleep(10 * time.Millisecond)
	cancel()
	select {
	case err := <-done:
		if !errors.Is(err, rt.ErrCanceled) {
			t.Fatalf("error %v does not wrap rt.ErrCanceled", err)
		}
		if !errors.Is(err, context.Canceled) {
			t.Fatalf("error %v does not wrap context.Canceled", err)
		}
	case <-time.After(10 * time.Second):
		t.Fatalf("run did not stop within 10s of cancel (started %v ago)", time.Since(start))
	}
}

// TestConcurrentDeadlineExpires runs under a deadline shorter than the
// program and asserts the deadline error chain.
func TestConcurrentDeadlineExpires(t *testing.T) {
	svc := New(2)
	src := workload.SWE(64, 400)
	if _, err := svc.Compile(context.Background(), "swe.f90", src, f90y.DefaultConfig()); err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 15*time.Millisecond)
	defer cancel()
	res := svc.Run(ctx, Job{Name: "doomed", File: "swe.f90", Source: src, Config: f90y.DefaultConfig()})
	if res.Err == nil {
		t.Skip("machine finished inside the deadline; nothing to assert")
	}
	if !errors.Is(res.Err, rt.ErrCanceled) || !errors.Is(res.Err, context.DeadlineExceeded) {
		t.Fatalf("error %v does not wrap ErrCanceled and DeadlineExceeded", res.Err)
	}
}

// TestConcurrentCompileCancelEvicted asserts a compile aborted by its
// own context is not cached as a permanent failure.
func TestConcurrentCompileCancelEvicted(t *testing.T) {
	svc := New(2)
	src := workload.SWE(16, 1)
	ctx, cancel := context.WithCancel(context.Background())
	cancel() // already canceled: CompileCtx fails at the first phase gate
	if _, err := svc.Compile(ctx, "swe.f90", src, f90y.DefaultConfig()); !errors.Is(err, rt.ErrCanceled) {
		t.Fatalf("pre-canceled compile error = %v, want ErrCanceled", err)
	}
	a, err := svc.Compile(context.Background(), "swe.f90", src, f90y.DefaultConfig())
	if err != nil || a == nil {
		t.Fatalf("retry after canceled compile failed: %v", err)
	}
}

// TestServiceBudgetKillsRunaway: the service-wide MaxCycles default is
// enforced on jobs that bring no budget of their own, killing a
// runaway loop deterministically with rt.ErrBudget on both targets.
func TestServiceBudgetKillsRunaway(t *testing.T) {
	src := "program loop\ninteger :: i\ni = 0\ndo while (i < 1)\n  i = i * 1\nend do\nend program loop\n"
	svc := New(2)
	svc.MaxCycles = 100_000
	for _, target := range []string{"cm2", "cm5"} {
		res := svc.Run(context.Background(), Job{
			Name: "runaway", File: "loop.f90", Source: src,
			Config: f90y.DefaultConfig(), Target: target,
		})
		if !errors.Is(res.Err, rt.ErrBudget) {
			t.Errorf("%s: want rt.ErrBudget, got %v", target, res.Err)
		}
	}
	// A job with its own tighter Control keeps it: the service default
	// must not overwrite an explicit per-job budget.
	res := svc.Run(context.Background(), Job{
		Name: "own-budget", File: "loop.f90", Source: src,
		Config: f90y.DefaultConfig(), Ctl: &cm2.Control{MaxCycles: 10_000},
	})
	if !errors.Is(res.Err, rt.ErrBudget) {
		t.Errorf("per-job budget: want rt.ErrBudget, got %v", res.Err)
	}
	if !strings.Contains(res.Err.Error(), "10000") {
		t.Errorf("per-job budget of 10000 not the one enforced: %v", res.Err)
	}
}
