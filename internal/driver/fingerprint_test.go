package driver

import (
	"reflect"
	"testing"

	"f90y"
	"f90y/internal/opt"
	"f90y/internal/pe"
)

// TestFingerprintGolden pins the exact cache-key rendering for the
// configurations the tools actually use. If this test fails, a config
// field changed meaning or the rendering drifted: bump the "fp1"
// version prefix (invalidating old keys deliberately) and update the
// goldens, rather than letting the key change silently.
func TestFingerprintGolden(t *testing.T) {
	cases := []struct {
		name string
		cfg  f90y.Config
		want string
	}{
		{
			"default",
			f90y.DefaultConfig(),
			"fp1|opt:pad=true,block=true|pe:cse=true,chain=true,fmadd=true,overlap=true,vregs=0",
		},
		{
			"zero",
			f90y.Config{},
			"fp1|opt:pad=false,block=false|pe:cse=false,chain=false,fmadd=false,overlap=false,vregs=0",
		},
		{
			"naive-pe",
			f90y.Config{Opt: opt.Default, PE: pe.Naive},
			"fp1|opt:pad=true,block=true|pe:cse=false,chain=false,fmadd=false,overlap=false,vregs=0",
		},
		{
			"vreg-ablation",
			f90y.Config{Opt: opt.Options{PadSections: true}, PE: pe.Options{CSE: true, VRegs: 4}},
			"fp1|opt:pad=true,block=false|pe:cse=true,chain=false,fmadd=false,overlap=false,vregs=4",
		},
		{
			"distribute",
			func() f90y.Config {
				c := f90y.DefaultConfig()
				c.Distribute = []string{"a=cyclic", "b=block,cyclic(2)"}
				return c
			}(),
			"fp1|opt:pad=true,block=true|pe:cse=true,chain=true,fmadd=true,overlap=true,vregs=0|dist:a=cyclic;b=block,cyclic(2)",
		},
	}
	for _, c := range cases {
		if got := Fingerprint(c.cfg); got != c.want {
			t.Errorf("%s:\n got  %s\n want %s", c.name, got, c.want)
		}
	}
}

// TestFingerprintCoversEveryField fails when opt.Options or pe.Options
// gains (or loses) a field without Fingerprint being revisited: the
// old %+v rendering changed meaning silently on any struct edit; the
// explicit rendering instead makes this test the tripwire.
func TestFingerprintCoversEveryField(t *testing.T) {
	if n := reflect.TypeOf(opt.Options{}).NumField(); n != 2 {
		t.Errorf("opt.Options has %d fields; Fingerprint renders 2 — "+
			"add the new field to Fingerprint (and the golden test) or exclude it deliberately, then update this count", n)
	}
	if n := reflect.TypeOf(pe.Options{}).NumField(); n != 5 {
		t.Errorf("pe.Options has %d fields; Fingerprint renders 5 — "+
			"add the new field to Fingerprint (and the golden test) or exclude it deliberately, then update this count", n)
	}
	if n := reflect.TypeOf(f90y.Config{}).NumField(); n != 5 {
		t.Errorf("f90y.Config has %d fields; Fingerprint accounts for 5 "+
			"(Opt, PE, Distribute rendered; Machine, Obs deliberately excluded) — "+
			"decide whether the new field belongs in the cache key, then update this count", n)
	}
}

// TestFingerprintDistinguishesConfigs spot-checks that every rendered
// field actually separates keys.
func TestFingerprintDistinguishesConfigs(t *testing.T) {
	base := f90y.DefaultConfig()
	variants := []f90y.Config{
		{Opt: opt.Options{PadSections: false, BlockDomains: true}, PE: base.PE},
		{Opt: opt.Options{PadSections: true, BlockDomains: false}, PE: base.PE},
		{Opt: base.Opt, PE: pe.Options{CSE: false, Chaining: true, Fmadd: true, Overlap: true}},
		{Opt: base.Opt, PE: pe.Options{CSE: true, Chaining: false, Fmadd: true, Overlap: true}},
		{Opt: base.Opt, PE: pe.Options{CSE: true, Chaining: true, Fmadd: false, Overlap: true}},
		{Opt: base.Opt, PE: pe.Options{CSE: true, Chaining: true, Fmadd: true, Overlap: false}},
		{Opt: base.Opt, PE: pe.Options{CSE: true, Chaining: true, Fmadd: true, Overlap: true, VRegs: 6}},
		{Opt: base.Opt, PE: base.PE, Distribute: []string{"a=cyclic"}},
		{Opt: base.Opt, PE: base.PE, Distribute: []string{"a=cyclic(4)"}},
	}
	want := Fingerprint(base)
	seen := map[string]bool{want: true}
	for i, v := range variants {
		fp := Fingerprint(v)
		if fp == want {
			t.Errorf("variant %d fingerprints identically to the default: %s", i, fp)
		}
		if seen[fp] {
			t.Errorf("variant %d collides with an earlier variant: %s", i, fp)
		}
		seen[fp] = true
	}
}
