// Package driver is the concurrent compile-and-run service layer: it
// turns the one-shot pipeline of the root f90y package into a reusable
// artifact driven over many programs and machine configurations, the
// way the paper's own evaluation (§6) drives one compiler across
// optimization variants and targets.
//
// Three pieces:
//
//   - Service.Compile: a concurrency-safe compile cache keyed by
//     (source hash, config fingerprint). The first request for a key
//     runs the pipeline; every later request — including concurrent
//     ones, which wait rather than duplicating work — is served the
//     same immutable *Artifact without re-running any pipeline phase.
//   - Service.Run / Service.RunBatch: compile+run jobs, batch-executed
//     on a bounded worker pool with per-job telemetry recorders. Cycle
//     totals, GFLOPS, and output are deterministic and independent of
//     the worker count: a run touches no state shared with its
//     neighbors (each has its own store; machines are read-only).
//   - The shared CLI wiring (cli.go): -faults/-checkpoint/-metrics/
//     -trace flag plumbing, deduplicated out of the three commands.
package driver

import (
	"context"
	"crypto/sha256"
	"errors"
	"fmt"
	"runtime"
	"sync"

	"f90y"
	"f90y/internal/rt"
)

// Key identifies one compilation: a content hash of the source and a
// fingerprint of the compilation-relevant configuration.
type Key struct {
	Source [sha256.Size]byte
	Config string
}

// KeyOf computes the cache key for compiling src under cfg.
func KeyOf(src string, cfg f90y.Config) Key {
	return Key{Source: sha256.Sum256([]byte(src)), Config: Fingerprint(cfg)}
}

// Fingerprint renders the parts of a Config that change the pipeline's
// artifacts: the NIR transformation options and the PE code-generator
// options. Machine and Obs are deliberately excluded — the target
// machine is a run-time choice (the partitioned program is machine-
// independent, §5.3.1), and telemetry never alters what is compiled.
func Fingerprint(cfg f90y.Config) string {
	return fmt.Sprintf("opt=%+v|pe=%+v", cfg.Opt, cfg.PE)
}

// Artifact is one cached compilation: the full pipeline output, shared
// by every run of the same (source, config). It is immutable — runs
// read the partitioned program and build their own stores.
type Artifact struct {
	Key  Key
	Comp *f90y.Compilation
}

// entry is one cache slot. The first requester compiles and closes
// ready; concurrent requesters for the same key block on ready instead
// of duplicating the pipeline.
type entry struct {
	ready chan struct{}
	art   *Artifact
	err   error
}

// Service is the concurrent compile-and-run service. The zero value is
// not usable; construct with New. All methods are safe for concurrent
// use.
type Service struct {
	workers int

	// MaxCycles is the service-wide watchdog budget enforced on every
	// run whose job does not set its own: a runaway request is killed
	// deterministically with an error wrapping rt.ErrBudget instead of
	// occupying a worker forever. Zero disables the default. Set before
	// the first Run/RunBatch call; it is read concurrently afterwards.
	MaxCycles float64

	// ExecWorkers is the service-wide default for the sharded PEAC
	// executor, applied to every run whose job does not set its own
	// cm2.Control.ExecWorkers: n > 1 fans each routine dispatch across
	// n chunk workers, negative selects GOMAXPROCS, 0 and 1 stay
	// serial. Results are bit-exact regardless. Set before the first
	// Run/RunBatch call; it is read concurrently afterwards.
	ExecWorkers int

	mu     sync.Mutex
	cache  map[Key]*entry
	hits   int64
	misses int64
}

// New returns a service whose batch executor runs up to workers jobs
// concurrently; workers < 1 selects GOMAXPROCS.
func New(workers int) *Service {
	if workers < 1 {
		workers = runtime.GOMAXPROCS(0)
	}
	return &Service{workers: workers, cache: map[Key]*entry{}}
}

// Workers is the batch executor's concurrency bound.
func (s *Service) Workers() int { return s.workers }

// CacheStats reports cache hits and misses so far. A hit is any request
// served an existing entry, including one that waited for an in-flight
// compile of the same key.
func (s *Service) CacheStats() (hits, misses int64) {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.hits, s.misses
}

// Compile returns the cached artifact for (src, cfg), compiling on the
// first request. On a hit no pipeline phase re-runs and the same
// *Artifact pointer is returned; cfg.Obs receives compile spans only
// on the miss that actually compiles. A context canceled while waiting
// for another goroutine's in-flight compile abandons the wait (the
// compile itself continues for its owner); a compile aborted by its own
// context is evicted so a later request can retry.
func (s *Service) Compile(ctx context.Context, file, src string, cfg f90y.Config) (*Artifact, error) {
	key := KeyOf(src, cfg)
	s.mu.Lock()
	e, ok := s.cache[key]
	if ok {
		s.hits++
		s.mu.Unlock()
		select {
		case <-e.ready:
			return e.art, e.err
		case <-ctx.Done():
			return nil, fmt.Errorf("driver: compile %s: %w", file, rt.Canceled(ctx))
		}
	}
	s.misses++
	e = &entry{ready: make(chan struct{})}
	s.cache[key] = e
	s.mu.Unlock()

	comp, err := f90y.CompileCtx(ctx, file, src, cfg)
	if err != nil {
		e.err = err
		if errors.Is(err, rt.ErrCanceled) {
			// A canceled compile says nothing about the program; evict
			// so the next request retries under its own context.
			s.mu.Lock()
			delete(s.cache, key)
			s.mu.Unlock()
		}
		close(e.ready)
		return nil, err
	}
	e.art = &Artifact{Key: key, Comp: comp}
	close(e.ready)
	return e.art, nil
}
