// Package driver is the concurrent compile-and-run service layer: it
// turns the one-shot pipeline of the root f90y package into a reusable
// artifact driven over many programs and machine configurations, the
// way the paper's own evaluation (§6) drives one compiler across
// optimization variants and targets.
//
// Three pieces:
//
//   - Service.Compile: a concurrency-safe compile cache keyed by
//     (source hash, config fingerprint). The first request for a key
//     runs the pipeline; every later request — including concurrent
//     ones, which wait rather than duplicating work — is served the
//     same immutable *Artifact without re-running any pipeline phase.
//     The cache is LRU-bounded in entries and estimated bytes (see
//     MaxCacheEntries/MaxCacheBytes), so a long-running server cannot
//     grow it without limit; in-flight compiles are never evicted.
//   - Service.Run / Service.RunBatch: compile+run jobs, batch-executed
//     on a bounded worker pool with per-job telemetry recorders. Cycle
//     totals, GFLOPS, and output are deterministic and independent of
//     the worker count: a run touches no state shared with its
//     neighbors (each has its own store; machines are read-only).
//   - The shared CLI wiring (cli.go): -faults/-checkpoint/-metrics/
//     -trace flag plumbing, deduplicated out of the three commands.
package driver

import (
	"container/list"
	"context"
	"crypto/sha256"
	"errors"
	"fmt"
	"runtime"
	"strings"
	"sync"

	"f90y"
	"f90y/internal/faults"
	"f90y/internal/rt"
)

// Key identifies one compilation: a content hash of the source and a
// fingerprint of the compilation-relevant configuration.
type Key struct {
	Source [sha256.Size]byte
	Config string
}

// KeyOf computes the cache key for compiling src under cfg.
func KeyOf(src string, cfg f90y.Config) Key {
	return Key{Source: sha256.Sum256([]byte(src)), Config: Fingerprint(cfg)}
}

// Fingerprint renders the parts of a Config that change the pipeline's
// artifacts: the NIR transformation options and the PE code-generator
// options. Machine and Obs are deliberately excluded — the target
// machine is a run-time choice (the partitioned program is machine-
// independent, §5.3.1), and telemetry never alters what is compiled.
//
// The rendering is explicit, field by field, NOT reflective (%+v):
// adding, removing, or reordering a field in opt.Options or pe.Options
// must be a conscious cache-key decision, enforced by the
// TestFingerprint* golden and field-count tests. Bump the "fp1" prefix
// when the meaning of an existing field changes.
func Fingerprint(cfg f90y.Config) string {
	o, p := cfg.Opt, cfg.PE
	fp := fmt.Sprintf(
		"fp1|opt:pad=%t,block=%t|pe:cse=%t,chain=%t,fmadd=%t,overlap=%t,vregs=%d",
		o.PadSections, o.BlockDomains,
		p.CSE, p.Chaining, p.Fmadd, p.Overlap, p.VRegs)
	// Distribution overrides change the partitioned program (layout
	// stamps, comm classification), so they are part of the key. The
	// empty case renders nothing, keeping every pre-existing key byte
	// stable.
	if len(cfg.Distribute) > 0 {
		fp += "|dist:" + strings.Join(cfg.Distribute, ";")
	}
	return fp
}

// Artifact is one cached compilation: the full pipeline output, shared
// by every run of the same (source, config). It is immutable — runs
// read the partitioned program and build their own stores.
type Artifact struct {
	Key  Key
	Comp *f90y.Compilation
}

// entry is one cache slot. The first requester compiles and closes
// ready; concurrent requesters for the same key block on ready instead
// of duplicating the pipeline. Waiters hold the *entry directly, so
// evicting a slot from the map/LRU never disturbs a request already
// waiting on it.
type entry struct {
	ready chan struct{}
	art   *Artifact
	err   error

	// LRU bookkeeping, all guarded by Service.mu.
	key  Key
	elem *list.Element
	cost int64
	done bool // compile finished (success or error); only done entries evict
}

// Service is the concurrent compile-and-run service. The zero value is
// not usable; construct with New. All methods are safe for concurrent
// use.
type Service struct {
	workers int

	// MaxCycles is the service-wide watchdog budget enforced on every
	// run whose job does not set its own: a runaway request is killed
	// deterministically with an error wrapping rt.ErrBudget instead of
	// occupying a worker forever. Zero disables the default. Set before
	// the first Run/RunBatch call; it is read concurrently afterwards.
	MaxCycles float64

	// ExecWorkers is the service-wide default for the sharded PEAC
	// executor, applied to every run whose job does not set its own
	// cm2.Control.ExecWorkers: n > 1 fans each routine dispatch across
	// n chunk workers, negative selects GOMAXPROCS, 0 and 1 stay
	// serial. Results are bit-exact regardless. Set before the first
	// Run/RunBatch call; it is read concurrently afterwards.
	ExecWorkers int

	// ExecJIT is the service-wide default for the compiled PEAC
	// executor (cm2.Control.ExecJIT), applied to every run whose job
	// does not set its own control plane's flag. It is a runtime
	// choice, deliberately not part of the compile-cache fingerprint:
	// the cached artifact is engine-independent. Set before the first
	// Run/RunBatch call; it is read concurrently afterwards.
	ExecJIT bool

	// MaxCacheEntries and MaxCacheBytes bound the compile cache:
	// entries beyond either bound are evicted least-recently-used.
	// Zero leaves that dimension unbounded (the CLI default — a batch
	// run compiles a fixed set of programs). Error entries count too,
	// so a flood of distinct bad sources is bounded like everything
	// else. Set before the first Compile call; they are read under the
	// cache lock afterwards.
	MaxCacheEntries int
	MaxCacheBytes   int64

	// CacheDir enables the persistent artifact tier under the in-memory
	// LRU: finished compiles are written as checksummed, content-
	// addressed entries (see diskcache.go), and a cache miss probes the
	// directory before running the pipeline. Entries that fail their
	// integrity or identity checks are evicted and recompiled, never
	// served. Empty disables the tier (the CLI default). Set before the
	// first Compile call.
	CacheDir string

	// IOFaults, when non-nil, mangles disk-tier writes (torn/short) for
	// crash testing. Set before the first Compile call.
	IOFaults *faults.IOInjector

	mu         sync.Mutex
	disk       DiskCacheStats
	cache      map[Key]*entry
	lru        *list.List // of *entry; front = most recently used
	cacheBytes int64      // summed cost of done entries
	hits       int64
	misses     int64
	evictions  int64
}

// New returns a service whose batch executor runs up to workers jobs
// concurrently; workers < 1 selects GOMAXPROCS.
func New(workers int) *Service {
	if workers < 1 {
		workers = runtime.GOMAXPROCS(0)
	}
	return &Service{workers: workers, cache: map[Key]*entry{}, lru: list.New()}
}

// Workers is the batch executor's concurrency bound.
func (s *Service) Workers() int { return s.workers }

// CacheStats reports cache hits and misses so far. A hit is any request
// served an existing entry, including one that waited for an in-flight
// compile of the same key.
func (s *Service) CacheStats() (hits, misses int64) {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.hits, s.misses
}

// Peek reports whether (src, cfg) is resident and finished in the
// cache, without touching LRU order or the hit/miss counters. The
// answer is advisory — a concurrent request can evict or insert the
// key immediately after.
func (s *Service) Peek(src string, cfg f90y.Config) bool {
	key := KeyOf(src, cfg)
	s.mu.Lock()
	defer s.mu.Unlock()
	e, ok := s.cache[key]
	return ok && e.done
}

// CacheUsage reports the cache's current occupancy — resident entries
// (including in-flight compiles) and the summed estimated bytes of the
// finished ones — plus the number of LRU evictions so far.
func (s *Service) CacheUsage() (entries int, bytes, evictions int64) {
	s.mu.Lock()
	defer s.mu.Unlock()
	return len(s.cache), s.cacheBytes, s.evictions
}

// artifactCost estimates an entry's resident size for the byte bound:
// the source it was compiled from plus a per-instruction and per-host-op
// charge for the retained pipeline artifacts, and a fixed overhead. The
// estimate only needs to be monotone in real footprint — the bound is a
// capacity-planning knob, not an accountant.
func artifactCost(src string, comp *f90y.Compilation) int64 {
	cost := int64(1024 + len(src))
	if comp == nil || comp.Program == nil {
		return cost
	}
	instrs := 0
	for _, r := range comp.Program.Routines {
		instrs += r.InstrCount()
	}
	ops := 0
	for _, n := range comp.Program.CountOps() {
		ops += n
	}
	return cost + 64*int64(instrs) + 48*int64(ops)
}

// touchLocked marks e most recently used. Callers hold s.mu.
func (s *Service) touchLocked(e *entry) {
	if e.elem != nil {
		s.lru.MoveToFront(e.elem)
	}
}

// finishLocked records a completed compile (success or deterministic
// error) and evicts over-bound LRU entries. Callers hold s.mu.
func (s *Service) finishLocked(e *entry, cost int64) {
	// The entry may have been evicted while compiling (possible only
	// under a pathological entry bound smaller than the in-flight count);
	// it still serves its waiters but owns no LRU slot.
	if e.elem == nil {
		return
	}
	e.done = true
	e.cost = cost
	s.cacheBytes += cost
	s.evictLocked()
}

// evictLocked removes least-recently-used finished entries until both
// bounds hold. In-flight entries are pinned: evicting one would orphan
// its waiters' singleflight slot, and it has no settled cost yet.
func (s *Service) evictLocked() {
	over := func() bool {
		return (s.MaxCacheEntries > 0 && len(s.cache) > s.MaxCacheEntries) ||
			(s.MaxCacheBytes > 0 && s.cacheBytes > s.MaxCacheBytes)
	}
	for el := s.lru.Back(); el != nil && over(); {
		prev := el.Prev()
		e := el.Value.(*entry)
		if e.done {
			s.removeLocked(e)
			s.evictions++
		}
		el = prev
	}
}

// removeLocked drops e from the map, the LRU list, and the byte total.
// Callers hold s.mu.
func (s *Service) removeLocked(e *entry) {
	if e.elem != nil {
		s.lru.Remove(e.elem)
		e.elem = nil
	}
	delete(s.cache, e.key)
	if e.done {
		s.cacheBytes -= e.cost
	}
}

// Compile returns the cached artifact for (src, cfg), compiling on the
// first request. On a hit no pipeline phase re-runs and the same
// *Artifact pointer is returned; cfg.Obs receives compile spans only
// on the miss that actually compiles. A context canceled while waiting
// for another goroutine's in-flight compile abandons the wait (the
// compile itself continues for its owner); a compile aborted by its own
// context is evicted so a later request can retry. Deterministic
// compile errors are cached like successes — and bounded like them, so
// distinct bad sources cannot grow the cache past its LRU bounds.
func (s *Service) Compile(ctx context.Context, file, src string, cfg f90y.Config) (*Artifact, error) {
	key := KeyOf(src, cfg)
	s.mu.Lock()
	e, ok := s.cache[key]
	if ok {
		s.hits++
		s.touchLocked(e)
		s.mu.Unlock()
		select {
		case <-e.ready:
			return e.art, e.err
		case <-ctx.Done():
			return nil, fmt.Errorf("driver: compile %s: %w", file, rt.Canceled(ctx))
		}
	}
	s.misses++
	e = &entry{ready: make(chan struct{}), key: key}
	e.elem = s.lru.PushFront(e)
	s.cache[key] = e
	s.mu.Unlock()

	// Persistent tier: a prior process may have compiled this key. The
	// singleflight slot is already claimed, so concurrent requesters
	// wait on this probe exactly as they would on a compile.
	if art := s.loadDisk(key); art != nil {
		e.art = art
		s.mu.Lock()
		s.finishLocked(e, artifactCost(src, art.Comp))
		s.mu.Unlock()
		close(e.ready)
		return e.art, nil
	}

	comp, err := f90y.CompileCtx(ctx, file, src, cfg)
	if err != nil {
		e.err = err
		s.mu.Lock()
		if errors.Is(err, rt.ErrCanceled) {
			// A canceled compile says nothing about the program; evict
			// so the next request retries under its own context.
			s.removeLocked(e)
		} else {
			s.finishLocked(e, int64(256+len(src)))
		}
		s.mu.Unlock()
		close(e.ready)
		return nil, err
	}
	e.art = &Artifact{Key: key, Comp: comp}
	s.storeDisk(key, comp.Program)
	s.mu.Lock()
	s.finishLocked(e, artifactCost(src, comp))
	s.mu.Unlock()
	close(e.ready)
	return e.art, nil
}
