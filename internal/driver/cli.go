package driver

import (
	"fmt"
	"io"
	"os"

	"f90y/internal/cm2"
	"f90y/internal/faults"
	"f90y/internal/obs"
	"f90y/internal/obs/profile"
	"f90y/internal/rt"
)

// FaultsHelp is the one -faults usage string shared by f90yc, f90yrun,
// and swebench, so the documented key list cannot drift between
// commands (see internal/faults.ParseSpec for semantics).
const FaultsHelp = "fault-injection spec, e.g. seed=7,pe=0.01,drop=0.001,fatal=200 " +
	"(keys: seed, pe, drop, corrupt, delay, stall, retries, backoff, backoff-cap, " +
	"stall-cycles, delay-cycles, degrade, kill=PE@T, fatal=T)"

// CheckpointPath resolves the snapshot path for a run of file: the
// explicit -checkpoint value when given, else <file>.ckpt.json.
func CheckpointPath(file, explicit string) string {
	if explicit != "" {
		return explicit
	}
	return file + ".ckpt.json"
}

// ControlOptions bundles the control-plane CLI flags shared by the
// commands: the fault spec, the checkpoint/resume paths, and the
// runtime guardrails (cycle budget, numeric-exception plane).
type ControlOptions struct {
	Faults          string  // -faults spec ("" = no injection)
	CheckpointEvery int     // -checkpoint-every (0 = off)
	CheckpointPath  string  // -checkpoint ("" = derive from file)
	ResumePath      string  // -resume ("" = fresh run)
	MaxCycles       float64 // -max-cycles watchdog budget (0 = off)
	Numeric         string  // -numeric off|trap|record ("" = off)
	ExecWorkers     int     // -exec-workers executor sharding (0/1 = serial, <0 = GOMAXPROCS)
	ExecJIT         bool    // -exec-jit compiled executor (bit-identical; wall-clock only)
}

// Build assembles the execution control plane for a run of file,
// reporting injection telemetry to rec. It returns (nil, nil) when no
// control feature is requested — the zero-overhead path.
func (o ControlOptions) Build(file string, rec obs.Recorder) (*cm2.Control, error) {
	plan, err := faults.ParseSpec(o.Faults)
	if err != nil {
		return nil, err
	}
	numMode, err := rt.ParseNumericMode(o.Numeric)
	if err != nil {
		return nil, err
	}
	workers := o.ExecWorkers
	if workers == 1 {
		workers = 0 // explicit serial: same zero-overhead path as unset
	}
	if plan == nil && o.CheckpointEvery == 0 && o.ResumePath == "" &&
		o.MaxCycles == 0 && numMode == rt.NumericOff && workers == 0 && !o.ExecJIT {
		return nil, nil
	}
	ctl := &cm2.Control{
		Faults:          faults.New(plan, rec),
		CheckpointEvery: o.CheckpointEvery,
		MaxCycles:       o.MaxCycles,
		Numeric:         rt.NewNumeric(numMode),
		ExecWorkers:     workers,
		ExecJIT:         o.ExecJIT,
	}
	if o.CheckpointEvery > 0 {
		path := CheckpointPath(file, o.CheckpointPath)
		ctl.Checkpoint = func(ck *rt.Checkpoint) error { return ck.Write(path) }
	}
	if o.ResumePath != "" {
		ck, err := rt.ReadCheckpoint(o.ResumePath)
		if err != nil {
			return nil, err
		}
		ctl.Resume = ck
	}
	return ctl, nil
}

// ProfileOptions bundles the -profile* CLI flags shared by f90yrun and
// swebench: the text hot-line report and the two file artifacts built
// from the same source-line cycle attribution.
type ProfileOptions struct {
	Text   bool   // -profile: annotated source listing
	Pprof  string // -profile-pprof: gzipped pprof protobuf path ("" = off)
	Folded string // -profile-folded: folded-stacks path ("" = off)
}

// Any reports whether any profile output is requested.
func (o ProfileOptions) Any() bool {
	return o.Text || o.Pprof != "" || o.Folded != ""
}

// Emit renders the requested artifacts from p: the annotated listing to
// w, the pprof and folded files to their paths (each noted on logw). A
// nil p with outputs requested is an error — the run produced no
// attribution to profile.
func (o ProfileOptions) Emit(p *profile.Profile, w, logw io.Writer) error {
	if !o.Any() {
		return nil
	}
	if p == nil {
		return fmt.Errorf("driver: profile requested but the run produced no cycle attribution")
	}
	if o.Text {
		if err := p.WriteAnnotated(w); err != nil {
			return err
		}
	}
	write := func(path, kind string, render func(io.Writer) error) error {
		f, err := os.Create(path)
		if err != nil {
			return err
		}
		if err := render(f); err == nil {
			err = f.Close()
		} else {
			f.Close()
		}
		if err != nil {
			return err
		}
		fmt.Fprintf(logw, "%s profile written to %s\n", kind, path)
		return nil
	}
	if o.Pprof != "" {
		if err := write(o.Pprof, "pprof", p.WritePprof); err != nil {
			return err
		}
	}
	if o.Folded != "" {
		if err := write(o.Folded, "folded-stacks", p.WriteFolded); err != nil {
			return err
		}
	}
	return nil
}

// Telemetry is the -metrics/-trace wiring shared by the commands: one
// collector behind both flags, a text report, and a Chrome trace file.
type Telemetry struct {
	Metrics   bool
	TracePath string
	// Col is non-nil whenever any telemetry output is requested; extra
	// consumers (f90yc's -v and stats dump) may set it directly.
	Col *obs.Collector
}

// NewTelemetry builds the wiring, creating the collector when any
// output is requested.
func NewTelemetry(metrics bool, tracePath string) *Telemetry {
	t := &Telemetry{Metrics: metrics, TracePath: tracePath}
	if metrics || tracePath != "" {
		t.Col = obs.NewCollector()
	}
	return t
}

// Recorder is the collector as a nil-safe obs.Recorder for Config.Obs.
func (t *Telemetry) Recorder() obs.Recorder {
	if t.Col == nil {
		return nil
	}
	return t.Col
}

// Report writes the text telemetry report to w when -metrics is set.
func (t *Telemetry) Report(w io.Writer) {
	if t.Metrics && t.Col != nil {
		fmt.Fprint(w, t.Col.Report())
	}
}

// WriteTrace writes the Chrome trace_event file when -trace is set,
// noting the path on logw.
func (t *Telemetry) WriteTrace(logw io.Writer) error {
	if t.TracePath == "" {
		return nil
	}
	f, err := os.Create(t.TracePath)
	if err != nil {
		return err
	}
	if err := t.Col.WriteTrace(f); err == nil {
		err = f.Close()
	} else {
		f.Close()
	}
	if err != nil {
		return err
	}
	fmt.Fprintf(logw, "trace written to %s (load in chrome://tracing or ui.perfetto.dev)\n", t.TracePath)
	return nil
}
