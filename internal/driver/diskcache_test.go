package driver

import (
	"context"
	"os"
	"path/filepath"
	"reflect"
	"testing"
	"time"

	"f90y"
	"f90y/internal/faults"
)

func timeUnix(sec int64) time.Time { return time.Unix(sec, 0) }

const diskSrc = `      PROGRAM DCACHE
      REAL A(8), B(8)
      INTEGER I
      A = 2.0
      B = 3.0
      DO I = 1, 4
        A = A * B + A
      END DO
      PRINT *, SUM(A)
      END
`

// runThrough compiles and runs diskSrc through a fresh service,
// returning the result for identity comparison.
func runThrough(t *testing.T, svc *Service) (*Artifact, []string, float64) {
	t.Helper()
	res := svc.Run(context.Background(), Job{Name: "dc", File: "dc.f90", Source: diskSrc, Config: f90y.DefaultConfig()})
	if res.Err != nil {
		t.Fatal(res.Err)
	}
	r := res.Result()
	return res.Artifact, r.Output, r.TotalCycles()
}

// TestDiskCacheRoundTrip: a second service with the same CacheDir
// serves the compile from disk — no pipeline run — and the restored
// program executes bit-identically to the freshly compiled one.
func TestDiskCacheRoundTrip(t *testing.T) {
	dir := t.TempDir()

	cold := New(1)
	cold.CacheDir = dir
	_, outCold, cycCold := runThrough(t, cold)
	if st := cold.DiskStats(); st.Writes != 1 || st.Hits != 0 {
		t.Fatalf("cold service disk stats %+v, want 1 write, 0 hits", st)
	}

	warm := New(1)
	warm.CacheDir = dir
	art, outWarm, cycWarm := runThrough(t, warm)
	if st := warm.DiskStats(); st.Hits != 1 || st.Corrupt != 0 {
		t.Fatalf("warm service disk stats %+v, want 1 hit, 0 corrupt", st)
	}
	if !reflect.DeepEqual(outCold, outWarm) {
		t.Errorf("restored program output %q, compiled %q", outWarm, outCold)
	}
	if cycCold != cycWarm {
		t.Errorf("restored program cycles %v, compiled %v", cycWarm, cycCold)
	}
	// The restored host program must be structurally complete.
	if got, want := art.Comp.Program.CountOps(), len(art.Comp.Program.Routines); len(got) == 0 || want == 0 {
		t.Errorf("restored program looks empty: ops %v, %d routines", got, want)
	}
	// Routine pointers are re-linked: every CallNode points into Routines.
	if len(art.Comp.Program.Routines) > 0 {
		seen := map[string]bool{}
		for _, r := range art.Comp.Program.Routines {
			seen[r.Name] = true
		}
		if !seen[art.Comp.Program.Routines[0].Name] {
			t.Error("routine table lost names")
		}
	}
}

// TestDiskCacheCorruptEntryEvicted: every way an entry can be damaged —
// torn tail, bit flip, wrong key, garbage — is detected, counted,
// removed, and recompiled. A corrupt entry is never served.
func TestDiskCacheCorruptEntryEvicted(t *testing.T) {
	dir := t.TempDir()
	cold := New(1)
	cold.CacheDir = dir
	runThrough(t, cold)

	ents, err := os.ReadDir(dir)
	if err != nil || len(ents) != 1 {
		t.Fatalf("want exactly one cache entry, got %v (%v)", ents, err)
	}
	path := filepath.Join(dir, ents[0].Name())
	pristine, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}

	damage := map[string]func([]byte) []byte{
		"torn":    func(b []byte) []byte { return b[:len(b)/2] },
		"short":   func(b []byte) []byte { return b[:len(b)-1] },
		"bitflip": func(b []byte) []byte { c := append([]byte(nil), b...); c[len(c)/2] ^= 1; return c },
		"garbage": func([]byte) []byte { return []byte("not an artifact\n") },
		"empty":   func([]byte) []byte { return nil },
	}
	for name, mangle := range damage {
		t.Run(name, func(t *testing.T) {
			if err := os.WriteFile(path, mangle(pristine), 0o644); err != nil {
				t.Fatal(err)
			}
			svc := New(1)
			svc.CacheDir = dir
			_, out, _ := runThrough(t, svc)
			st := svc.DiskStats()
			if st.Hits != 0 || st.Corrupt != 1 {
				t.Errorf("disk stats %+v, want 0 hits, 1 corrupt", st)
			}
			if len(out) == 0 {
				t.Error("recompile after eviction produced no output")
			}
			// The damaged file is gone; the recompile rewrote a good one.
			if data, err := os.ReadFile(path); err != nil || len(data) != len(pristine) {
				t.Errorf("entry not rewritten after eviction: %d bytes, err %v", len(data), err)
			}
		})
	}
}

// TestDiskCacheIOFaults: the injector tears entry writes; the damaged
// entries are detected on the next probe, never served.
func TestDiskCacheIOFaults(t *testing.T) {
	dir := t.TempDir()
	cold := New(1)
	cold.CacheDir = dir
	cold.IOFaults = faults.NewIO(&faults.IOPlan{Seed: 1, Torn: 1})
	runThrough(t, cold)
	if st := cold.IOFaults.Stats(); st.Torn != 1 {
		t.Fatalf("io injector stats %+v, want exactly one torn write", st)
	}

	warm := New(1)
	warm.CacheDir = dir
	_, out, _ := runThrough(t, warm)
	if st := warm.DiskStats(); st.Hits != 0 || st.Corrupt != 1 {
		t.Errorf("disk stats after torn entry %+v, want 0 hits, 1 corrupt", st)
	}
	if len(out) == 0 {
		t.Error("run after torn cache entry produced no output")
	}
}

// TestDiskCacheKeyed: different configs land in different entries; a
// probe under the wrong config misses instead of serving the wrong
// program.
func TestDiskCacheKeyed(t *testing.T) {
	dir := t.TempDir()
	svc := New(1)
	svc.CacheDir = dir

	cfgA := f90y.DefaultConfig()
	cfgB := f90y.Config{} // unoptimized: different fingerprint
	if Fingerprint(cfgA) == Fingerprint(cfgB) {
		t.Fatal("test configs share a fingerprint")
	}
	ctx := context.Background()
	if _, err := svc.Compile(ctx, "dc.f90", diskSrc, cfgA); err != nil {
		t.Fatal(err)
	}
	if _, err := svc.Compile(ctx, "dc.f90", diskSrc, cfgB); err != nil {
		t.Fatal(err)
	}
	ents, _ := os.ReadDir(dir)
	if len(ents) != 2 {
		t.Errorf("two configs produced %d disk entries, want 2", len(ents))
	}
}

// TestDiskCachePrune: the byte bound removes oldest entries first.
func TestDiskCachePrune(t *testing.T) {
	dir := t.TempDir()
	svc := New(1)
	svc.CacheDir = dir
	for i, name := range []string{"a.art", "b.art", "c.art"} {
		path := filepath.Join(dir, name)
		if err := os.WriteFile(path, make([]byte, 1000), 0o644); err != nil {
			t.Fatal(err)
		}
		// Strictly increasing mtimes so eviction order is deterministic.
		mod := int64(1700000000 + i)
		if err := os.Chtimes(path, timeUnix(mod), timeUnix(mod)); err != nil {
			t.Fatal(err)
		}
	}
	if n := svc.PruneDiskCache(2500); n != 1 {
		t.Errorf("prune removed %d entries, want 1", n)
	}
	if _, err := os.Stat(filepath.Join(dir, "a.art")); !os.IsNotExist(err) {
		t.Error("oldest entry a.art survived the prune")
	}
	for _, name := range []string{"b.art", "c.art"} {
		if _, err := os.Stat(filepath.Join(dir, name)); err != nil {
			t.Errorf("entry %s should have survived: %v", name, err)
		}
	}
	if n := svc.PruneDiskCache(0); n != 0 {
		t.Errorf("prune with no bound removed %d entries", n)
	}
}
