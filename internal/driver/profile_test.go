package driver

import (
	"bytes"
	"context"
	"strings"
	"testing"

	"f90y"
	"f90y/internal/workload"
)

// TestRunResultProfileConservesCycles runs a job through the service on
// both targets and checks the profile layer end to end: attribution
// total equals the modeled PE-plus-communication cycle total exactly
// (the profile overlays the network's per-line attribution onto the PE
// attribution), and the ProfileOptions emitter renders all three
// artifacts from it.
func TestRunResultProfileConservesCycles(t *testing.T) {
	svc := New(1)
	src := workload.SWE(32, 2)
	for _, target := range []string{"cm2", "cm5"} {
		res := svc.Run(context.Background(), Job{
			Name: target, File: "swe.f90", Source: src,
			Config: f90y.DefaultConfig(), Target: target,
		})
		if res.Err != nil {
			t.Fatalf("%s: %v", target, res.Err)
		}
		p := res.Profile()
		if p == nil {
			t.Fatalf("%s: no profile from a successful run", target)
		}
		if got, want := p.Total(), res.Result().PECycles+res.Result().CommCycles; got != want {
			t.Errorf("%s: profile total %v, PECycles+CommCycles %v (attribution must conserve cycles)", target, got, want)
		}

		var text, log bytes.Buffer
		pprofPath := t.TempDir() + "/p.pb.gz"
		foldedPath := t.TempDir() + "/p.folded"
		opts := ProfileOptions{Text: true, Pprof: pprofPath, Folded: foldedPath}
		if err := opts.Emit(p, &text, &log); err != nil {
			t.Fatalf("%s: emit: %v", target, err)
		}
		if !strings.Contains(text.String(), "hot lines:") || !strings.Contains(text.String(), "swe.f90:") {
			t.Errorf("%s: annotated report missing expected sections:\n%s", target, text.String())
		}
		for _, want := range []string{"pprof profile written to", "folded-stacks profile written to"} {
			if !strings.Contains(log.String(), want) {
				t.Errorf("%s: log missing %q: %s", target, want, log.String())
			}
		}
	}

	// No outputs requested: Emit is a no-op even with a nil profile.
	if err := (ProfileOptions{}).Emit(nil, nil, nil); err != nil {
		t.Errorf("empty options must be a no-op, got %v", err)
	}
	// Outputs requested but no attribution: a hard error, not silence.
	if err := (ProfileOptions{Text: true}).Emit(nil, &bytes.Buffer{}, &bytes.Buffer{}); err == nil {
		t.Error("profile requested with no attribution must error")
	}
}
