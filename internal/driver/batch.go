package driver

import (
	"context"
	"fmt"
	"sync"

	"f90y"
	"f90y/internal/cm2"
	"f90y/internal/cm5"
	"f90y/internal/obs"
	"f90y/internal/obs/profile"
	"f90y/internal/rt"
)

// Job is one compile+run request. Config.Obs is the job's private
// telemetry recorder: it receives the exec span and cycle attribution
// for this run, plus compile spans when this job is the one that
// populates the cache entry (a cache hit records no compile phases).
type Job struct {
	// Name labels the job in results and telemetry.
	Name string
	// File and Source are the program to compile.
	File   string
	Source string
	// Config selects the optimization levels, the CM/2 machine (for
	// the cm2 target), and the per-job recorder.
	Config f90y.Config
	// Target is "cm2" (the default when empty) or "cm5".
	Target string
	// CM5 overrides the CM-5 configuration for the cm5 target; nil
	// means cm5.Default().
	CM5 *cm5.Machine
	// Ctl optionally attaches an execution control plane (fault
	// injection, checkpoints, resume).
	Ctl *cm2.Control
}

// RunResult is one job's outcome. Exactly one of CM2/CM5 is set on
// success, matching the job's target.
type RunResult struct {
	Job      Job
	Artifact *Artifact
	CM2      *cm2.Result
	CM5      *cm5.Result
	Err      error
}

// Result returns the target-independent execution result (the CM-5
// result embeds the common form); nil when the job failed.
func (r *RunResult) Result() *cm2.Result {
	if r.CM5 != nil {
		return &r.CM5.Result
	}
	return r.CM2
}

// Profile builds the job's source-line cycle profile from the result's
// attribution — the PE attribution overlaid with the communication
// network's (router and NEWS cycles appear under the rt.CommRoutine
// pseudo-routine with their own "grid"/"router"/"reduce" classes) —
// with the job's own source attached for the annotated view. Nil when
// the job failed or its target recorded no attribution.
func (r *RunResult) Profile() *profile.Profile {
	res := r.Result()
	if res == nil || (len(res.PELineCycles) == 0 && len(res.CommLineCycles) == 0) {
		return nil
	}
	lines := rt.MergeLineMaps(res.PELineCycles, res.CommLineCycles)
	return profile.New(lines, map[string]string{r.Job.File: r.Job.Source})
}

// Run compiles (through the cache) and executes one job under ctx.
func (s *Service) Run(ctx context.Context, job Job) RunResult {
	res := RunResult{Job: job}
	art, err := s.Compile(ctx, job.File, job.Source, job.Config)
	if err != nil {
		res.Err = err
		return res
	}
	res.Artifact = art
	rec := job.Config.Obs
	span := obs.Start(rec, "exec")
	defer span.End()
	ctl := job.Ctl
	// Service-wide defaults (watchdog budget, executor sharding) apply
	// to jobs that don't set their own, cloning the control plane first
	// — the job's Control may be shared across jobs.
	clone := func() *cm2.Control {
		var c cm2.Control
		if ctl != nil {
			c = *ctl
		}
		return &c
	}
	if s.MaxCycles > 0 && (ctl == nil || ctl.MaxCycles == 0) {
		c := clone()
		c.MaxCycles = s.MaxCycles
		ctl = c
	}
	if s.ExecWorkers != 0 && (ctl == nil || ctl.ExecWorkers == 0) {
		c := clone()
		c.ExecWorkers = s.ExecWorkers
		ctl = c
	}
	if s.ExecJIT && (ctl == nil || !ctl.ExecJIT) {
		c := clone()
		c.ExecJIT = true
		ctl = c
	}
	switch job.Target {
	case "", "cm2":
		m := job.Config.Machine
		if m == nil {
			m = cm2.Default()
		}
		res.CM2, res.Err = m.RunCtx(ctx, art.Comp.Program, nil, rec, ctl)
	case "cm5":
		m := job.CM5
		if m == nil {
			m = cm5.Default()
		}
		res.CM5, res.Err = m.RunCtx(ctx, art.Comp.Program, rec, ctl)
	default:
		res.Err = fmt.Errorf("driver: job %s: unknown target %q", job.Name, job.Target)
	}
	return res
}

// RunBatch executes the jobs on a worker pool bounded at the service's
// worker count, returning results indexed exactly like jobs. Each job's
// cycle totals, GFLOPS, and output are independent of the worker count
// and of which goroutine ran it; only wall-clock changes. Shared
// (source, config) pairs compile once through the cache — concurrent
// duplicates wait for the in-flight compile rather than re-running it.
func (s *Service) RunBatch(ctx context.Context, jobs []Job) []RunResult {
	out := make([]RunResult, len(jobs))
	n := s.workers
	if n > len(jobs) {
		n = len(jobs)
	}
	if n <= 1 {
		for i := range jobs {
			out[i] = s.Run(ctx, jobs[i])
		}
		return out
	}
	idx := make(chan int)
	var wg sync.WaitGroup
	for w := 0; w < n; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := range idx {
				out[i] = s.Run(ctx, jobs[i])
			}
		}()
	}
	for i := range jobs {
		idx <- i
	}
	close(idx)
	wg.Wait()
	return out
}
