package driver

import (
	"bytes"
	"crypto/sha256"
	"encoding/gob"
	"encoding/hex"
	"errors"
	"fmt"
	"hash/crc32"
	"os"
	"path/filepath"
	"sort"
	"strings"

	"f90y"
	"f90y/internal/cm2"
	"f90y/internal/fe"
	"f90y/internal/nir"
	"f90y/internal/rt"
)

// The on-disk artifact tier persists the partitioned program — the one
// Compilation field every run consumes (batch.go reads art.Comp.Program
// and nothing else; the machine is a run-time choice). The host IR and
// the symbol table carry interface values, which gob can only move with
// the concrete implementations registered. lower registers the types
// symbols need (nir.Type, shape.Shape); the host ops and their value
// trees are registered here.
func init() {
	gob.Register(fe.Assign{})
	gob.Register(fe.CallNode{})
	gob.Register(fe.Comm{})
	gob.Register(fe.If{})
	gob.Register(fe.While{})
	gob.Register(fe.DoSerial{})
	gob.Register(fe.Print{})
	gob.Register(fe.Stop{})
	gob.Register(nir.Binary{})
	gob.Register(nir.Unary{})
	gob.Register(nir.SVar{})
	gob.Register(nir.Const{})
	gob.Register(nir.FcnCall{})
	gob.Register(nir.AVar{})
	gob.Register(nir.StrConst{})
	gob.Register(nir.LocalUnder{})
	gob.Register(nir.Everywhere{})
	gob.Register(nir.Subscript{})
	gob.Register(nir.Section{})
}

// artMagic versions the cache-entry container: a one-line text header
// carrying the payload CRC and length, then the gob payload. Bump it
// when either the container or the gob schema changes incompatibly —
// unreadable entries are evicted and recompiled, never served.
const artMagic = "f90y-art/v1"

// errArtCorrupt reports a cache entry that failed its integrity or
// identity checks. Always an eviction, never a served artifact.
var errArtCorrupt = errors.New("artifact entry corrupt")

// diskArtifact is the persisted form of one compilation. Source and
// Fingerprint restate the cache key so a loaded entry can prove it
// answers the question asked — a truncated-hash filename collision or a
// stale file copied between state dirs is detected, not served.
type diskArtifact struct {
	Source      []byte // sha256 of the source text
	Fingerprint string // Fingerprint(cfg), the fp1| config rendering
	Program     *fe.Program
}

// DiskCacheStats counts disk-tier outcomes.
type DiskCacheStats struct {
	Hits    int64 `json:"hits"`    // compiles served from disk
	Misses  int64 `json:"misses"`  // disk probed, no usable entry
	Writes  int64 `json:"writes"`  // entries persisted
	Corrupt int64 `json:"corrupt"` // entries evicted for failed integrity/identity
	Errors  int64 `json:"errors"`  // I/O or encode failures (entry skipped)
}

// diskPath is the content-addressed entry path: the hex sha256 of the
// full key (source hash plus config fingerprint) under dir.
func diskPath(dir string, key Key) string {
	h := sha256.New()
	h.Write(key.Source[:])
	h.Write([]byte(key.Config))
	return filepath.Join(dir, hex.EncodeToString(h.Sum(nil))+".art")
}

// encodeArtifact renders the container bytes for one entry.
func encodeArtifact(key Key, prog *fe.Program) ([]byte, error) {
	var payload bytes.Buffer
	da := &diskArtifact{Source: key.Source[:], Fingerprint: key.Config, Program: prog}
	if err := gob.NewEncoder(&payload).Encode(da); err != nil {
		return nil, fmt.Errorf("driver: encode artifact: %w", err)
	}
	header := fmt.Sprintf("%s %08x %d\n", artMagic, crc32.ChecksumIEEE(payload.Bytes()), payload.Len())
	return append([]byte(header), payload.Bytes()...), nil
}

// decodeArtifact parses container bytes, verifying the header, length,
// and CRC before gob sees a single byte. Any failure — torn tail, bit
// rot, schema drift, key mismatch — returns errArtCorrupt (wrapped with
// the reason) so the caller evicts and recompiles.
func decodeArtifact(data []byte, key Key) (*fe.Program, error) {
	nl := bytes.IndexByte(data, '\n')
	if nl < 0 {
		return nil, fmt.Errorf("no header line: %w", errArtCorrupt)
	}
	var crc uint32
	var plen int
	var magic string
	if _, err := fmt.Sscanf(string(data[:nl]), "%s %08x %d", &magic, &crc, &plen); err != nil || magic != artMagic {
		return nil, fmt.Errorf("bad header %q: %w", data[:nl], errArtCorrupt)
	}
	payload := data[nl+1:]
	if len(payload) != plen {
		return nil, fmt.Errorf("payload %d bytes, header says %d (torn write): %w", len(payload), plen, errArtCorrupt)
	}
	if got := crc32.ChecksumIEEE(payload); got != crc {
		return nil, fmt.Errorf("payload crc32 %08x, header says %08x: %w", got, crc, errArtCorrupt)
	}
	var da diskArtifact
	if err := gob.NewDecoder(bytes.NewReader(payload)).Decode(&da); err != nil {
		return nil, fmt.Errorf("gob decode: %v: %w", err, errArtCorrupt)
	}
	if !bytes.Equal(da.Source, key.Source[:]) || da.Fingerprint != key.Config {
		return nil, fmt.Errorf("entry answers a different key: %w", errArtCorrupt)
	}
	if da.Program == nil || da.Program.Syms == nil {
		return nil, fmt.Errorf("entry holds no program: %w", errArtCorrupt)
	}
	relinkRoutines(da.Program)
	return da.Program, nil
}

// relinkRoutines restores the pointer sharing gob flattens: every
// CallNode op points back into Program.Routines by name, so a restored
// program holds one copy of each routine like a freshly compiled one.
// Dispatch is by the op's own pointer either way; this is hygiene, not
// correctness.
func relinkRoutines(p *fe.Program) {
	routines := make(map[string]int, len(p.Routines))
	for i, r := range p.Routines {
		routines[r.Name] = i
	}
	var walk func(ops []fe.Op) []fe.Op
	walk = func(ops []fe.Op) []fe.Op {
		for i, op := range ops {
			switch op := op.(type) {
			case fe.CallNode:
				if op.Routine != nil {
					if j, ok := routines[op.Routine.Name]; ok {
						op.Routine = p.Routines[j]
						ops[i] = op
					}
				}
			case fe.If:
				op.Then = walk(op.Then)
				op.Else = walk(op.Else)
				ops[i] = op
			case fe.While:
				op.Body = walk(op.Body)
				ops[i] = op
			case fe.DoSerial:
				op.Body = walk(op.Body)
				ops[i] = op
			}
		}
		return ops
	}
	p.Ops = walk(p.Ops)
}

// loadDisk probes the disk tier for key. A usable entry returns the
// restored artifact; a damaged one is removed (and counted) so it is
// recompiled this time and missed cleanly the next. Never returns a
// corrupt artifact.
func (s *Service) loadDisk(key Key) *Artifact {
	if s.CacheDir == "" {
		return nil
	}
	path := diskPath(s.CacheDir, key)
	data, err := os.ReadFile(path)
	if err != nil {
		s.mu.Lock()
		s.disk.Misses++
		if !errors.Is(err, os.ErrNotExist) {
			s.disk.Errors++
		}
		s.mu.Unlock()
		return nil
	}
	prog, err := decodeArtifact(data, key)
	if err != nil {
		os.Remove(path)
		s.mu.Lock()
		s.disk.Misses++
		s.disk.Corrupt++
		s.mu.Unlock()
		return nil
	}
	s.mu.Lock()
	s.disk.Hits++
	s.mu.Unlock()
	return &Artifact{Key: key, Comp: &f90y.Compilation{Program: prog, Machine: cm2.Default()}}
}

// storeDisk persists a finished compilation, best effort: a full disk
// or unwritable dir costs the durability of this one entry, never the
// request. The payload passes through the IO fault injector (when
// armed) so crash tests can manufacture torn and short entry files.
func (s *Service) storeDisk(key Key, prog *fe.Program) {
	if s.CacheDir == "" {
		return
	}
	data, err := encodeArtifact(key, prog)
	if err == nil {
		mangled, _ := s.IOFaults.Mangle(data)
		err = rt.WriteFileAtomic(diskPath(s.CacheDir, key), mangled)
	}
	s.mu.Lock()
	if err != nil {
		s.disk.Errors++
	} else {
		s.disk.Writes++
	}
	s.mu.Unlock()
}

// DiskStats returns a snapshot of the disk-tier counters.
func (s *Service) DiskStats() DiskCacheStats {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.disk
}

// PruneDiskCache bounds the disk tier at maxBytes by removing the
// oldest entries (by modification time) until the total fits. Returns
// the number of entries removed. Called by the server at startup and
// after drain; a second process pruning concurrently is harmless —
// removal of an already-removed file is not an error.
func (s *Service) PruneDiskCache(maxBytes int64) int {
	if s.CacheDir == "" || maxBytes <= 0 {
		return 0
	}
	ents, err := os.ReadDir(s.CacheDir)
	if err != nil {
		return 0
	}
	type fileInfo struct {
		path string
		size int64
		mod  int64
	}
	var files []fileInfo
	var total int64
	for _, ent := range ents {
		if ent.IsDir() || !strings.HasSuffix(ent.Name(), ".art") {
			continue
		}
		info, err := ent.Info()
		if err != nil {
			continue
		}
		files = append(files, fileInfo{
			path: filepath.Join(s.CacheDir, ent.Name()),
			size: info.Size(),
			mod:  info.ModTime().UnixNano(),
		})
		total += info.Size()
	}
	sort.Slice(files, func(i, j int) bool { return files[i].mod < files[j].mod })
	removed := 0
	for _, f := range files {
		if total <= maxBytes {
			break
		}
		if os.Remove(f.path) == nil || !fileExists(f.path) {
			total -= f.size
			removed++
		}
	}
	return removed
}

func fileExists(path string) bool {
	_, err := os.Stat(path)
	return err == nil
}
