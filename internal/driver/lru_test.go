package driver

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"testing"

	"f90y"
	"f90y/internal/rt"
	"f90y/internal/workload"
)

// TestCacheLRUEntryBound fills the cache past its entry bound with
// distinct sources and asserts least-recently-used eviction: the
// oldest untouched entries recompile, a touched entry survives.
func TestCacheLRUEntryBound(t *testing.T) {
	svc := New(1)
	svc.MaxCacheEntries = 3
	ctx := context.Background()
	cfg := f90y.DefaultConfig()

	src := func(i int) string { return workload.Fig9(16) + fmt.Sprintf("! v%d\n", i) }
	for i := 0; i < 3; i++ {
		if _, err := svc.Compile(ctx, "fig9.f90", src(i), cfg); err != nil {
			t.Fatal(err)
		}
	}
	// Touch v0 so v1 becomes the LRU victim.
	if _, err := svc.Compile(ctx, "fig9.f90", src(0), cfg); err != nil {
		t.Fatal(err)
	}
	if _, err := svc.Compile(ctx, "fig9.f90", src(3), cfg); err != nil {
		t.Fatal(err)
	}
	entries, _, evictions := svc.CacheUsage()
	if entries != 3 {
		t.Errorf("entries = %d, want 3 (bound)", entries)
	}
	if evictions != 1 {
		t.Errorf("evictions = %d, want 1", evictions)
	}

	hits0, _ := svc.CacheStats()
	if _, err := svc.Compile(ctx, "fig9.f90", src(0), cfg); err != nil {
		t.Fatal(err) // v0 was touched: still resident
	}
	hits1, misses1 := svc.CacheStats()
	if hits1 != hits0+1 {
		t.Errorf("touched entry v0 was evicted (hits %d -> %d)", hits0, hits1)
	}
	if _, err := svc.Compile(ctx, "fig9.f90", src(1), cfg); err != nil {
		t.Fatal(err) // v1 was the LRU victim: recompiles
	}
	if _, misses2 := svc.CacheStats(); misses2 != misses1+1 {
		t.Errorf("LRU victim v1 still resident (misses %d -> %d)", misses1, misses2)
	}
}

// TestCacheByteBound asserts the byte bound evicts independently of the
// entry bound.
func TestCacheByteBound(t *testing.T) {
	svc := New(1)
	ctx := context.Background()
	cfg := f90y.DefaultConfig()

	// Learn one artifact's cost, then bound the cache to roughly two.
	if _, err := svc.Compile(ctx, "fig9.f90", workload.Fig9(16)+"! v0\n", cfg); err != nil {
		t.Fatal(err)
	}
	_, bytes, _ := svc.CacheUsage()
	if bytes <= 0 {
		t.Fatalf("cacheBytes = %d, want > 0", bytes)
	}
	svc2 := New(1)
	svc2.MaxCacheBytes = 2*bytes + bytes/2
	for i := 0; i < 4; i++ {
		src := workload.Fig9(16) + fmt.Sprintf("! v%d\n", i)
		if _, err := svc2.Compile(ctx, "fig9.f90", src, cfg); err != nil {
			t.Fatal(err)
		}
	}
	entries, used, evictions := svc2.CacheUsage()
	if used > svc2.MaxCacheBytes {
		t.Errorf("cache bytes %d exceed bound %d", used, svc2.MaxCacheBytes)
	}
	if evictions == 0 {
		t.Error("byte bound triggered no evictions across 4 inserts")
	}
	if entries > 3 {
		t.Errorf("entries = %d under a ~2.5-artifact byte bound", entries)
	}
}

// TestCacheErrorEntriesBounded is the regression test for the unbounded
// error-cache: deterministic compile errors stay cached (same error,
// zero recompiles, on a repeat) but a flood of DISTINCT bad sources is
// evicted like any other entry instead of growing the map forever.
func TestCacheErrorEntriesBounded(t *testing.T) {
	svc := New(1)
	svc.MaxCacheEntries = 4
	ctx := context.Background()
	cfg := f90y.DefaultConfig()

	bad := func(i int) string { return fmt.Sprintf("program p%d\nthis is not fortran\nend\n", i) }
	if _, err := svc.Compile(ctx, "bad.f90", bad(0), cfg); err == nil {
		t.Fatal("malformed program compiled")
	}
	// Repeat of the same bad source: served from cache, no recompile.
	_, missesBefore := svc.CacheStats()
	if _, err := svc.Compile(ctx, "bad.f90", bad(0), cfg); err == nil {
		t.Fatal("malformed program compiled on repeat")
	}
	if _, misses := svc.CacheStats(); misses != missesBefore {
		t.Errorf("repeated bad source recompiled (misses %d -> %d); deterministic errors should cache", missesBefore, misses)
	}

	for i := 1; i < 50; i++ {
		if _, err := svc.Compile(ctx, "bad.f90", bad(i), cfg); err == nil {
			t.Fatalf("bad(%d) compiled", i)
		}
	}
	entries, _, evictions := svc.CacheUsage()
	if entries > 4 {
		t.Errorf("error flood grew the cache to %d entries past the bound of 4", entries)
	}
	if evictions < 40 {
		t.Errorf("evictions = %d, want >= 40 for a 50-source flood over a 4-entry bound", evictions)
	}
}

// TestConcurrentByteBoundEviction races byte-bound eviction against
// Peek and hot-key hits from many goroutines (run under -race via
// `make concurrency`). Distinct sources churn the LRU past its byte
// bound while readers hammer Peek and re-Compile one hot key; every
// returned artifact must carry the key it was asked for, and the final
// bookkeeping must balance: bytes within bound, eviction churn
// recorded, and the byte counter never driven negative.
func TestConcurrentByteBoundEviction(t *testing.T) {
	ctx := context.Background()
	cfg := f90y.DefaultConfig()

	// Learn one artifact's cost so the bound holds roughly two.
	probe := New(1)
	if _, err := probe.Compile(ctx, "fig9.f90", workload.Fig9(16)+"! probe\n", cfg); err != nil {
		t.Fatal(err)
	}
	_, cost, _ := probe.CacheUsage()

	svc := New(4)
	svc.MaxCacheBytes = 2*cost + cost/2
	hot := workload.Fig9(16) + "! hot\n"
	src := func(i int) string { return workload.Fig9(16) + fmt.Sprintf("! churn%d\n", i) }

	var wg sync.WaitGroup
	for g := 0; g < 4; g++ {
		wg.Add(3)
		// Writer: churn distinct keys through the byte bound.
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 8; i++ {
				s := src(g*8 + i)
				art, err := svc.Compile(ctx, "fig9.f90", s, cfg)
				if err != nil {
					t.Errorf("churn compile: %v", err)
					return
				}
				if art.Key != KeyOf(s, cfg) {
					t.Errorf("artifact key mismatch for churn%d", g*8+i)
					return
				}
			}
		}(g)
		// Hot reader: the same key over and over, hit or re-compile.
		go func() {
			defer wg.Done()
			want := KeyOf(hot, cfg)
			for i := 0; i < 16; i++ {
				art, err := svc.Compile(ctx, "fig9.f90", hot, cfg)
				if err != nil {
					t.Errorf("hot compile: %v", err)
					return
				}
				if art.Key != want {
					t.Error("hot artifact carries the wrong key")
					return
				}
			}
		}()
		// Peeker: advisory residence probes racing the eviction churn.
		go func() {
			defer wg.Done()
			for i := 0; i < 64; i++ {
				svc.Peek(hot, cfg)
			}
		}()
	}
	wg.Wait()

	entries, used, evictions := svc.CacheUsage()
	if used < 0 {
		t.Errorf("cache byte counter went negative: %d", used)
	}
	if used > svc.MaxCacheBytes {
		t.Errorf("settled cache bytes %d exceed bound %d", used, svc.MaxCacheBytes)
	}
	if evictions == 0 {
		t.Error("32 distinct keys over a ~2.5-artifact bound evicted nothing")
	}
	if entries == 0 {
		t.Error("cache emptied itself; the most recent entries should survive")
	}
}

// TestConcurrentEvictionPinsInFlight drives more simultaneous compiles
// than the entry bound admits: in-flight entries are pinned (evicting
// one would orphan its waiters' singleflight slot), so every request
// must still complete with its own artifact, and once the dust settles
// the bound must hold again.
func TestConcurrentEvictionPinsInFlight(t *testing.T) {
	ctx := context.Background()
	cfg := f90y.DefaultConfig()
	svc := New(8)
	svc.MaxCacheEntries = 1

	const n = 12
	var wg sync.WaitGroup
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			s := workload.Fig9(16) + fmt.Sprintf("! pin%d\n", i)
			art, err := svc.Compile(ctx, "fig9.f90", s, cfg)
			if err != nil {
				t.Errorf("pin%d: %v", i, err)
				return
			}
			if art.Key != KeyOf(s, cfg) {
				t.Errorf("pin%d served someone else's artifact", i)
			}
		}(i)
	}
	wg.Wait()

	entries, used, _ := svc.CacheUsage()
	if entries > 1 {
		t.Errorf("settled entries = %d, want <= 1 (bound) once no compile is in flight", entries)
	}
	if used < 0 {
		t.Errorf("cache byte counter went negative: %d", used)
	}
}

// TestConcurrentErrorEntryEviction floods the cache with distinct
// deterministic compile errors from several goroutines while one
// goroutine re-asks a fixed bad source. Error entries are bounded like
// successes, eviction churn must not corrupt the bookkeeping, and the
// flood must never upgrade a cached error into a success.
func TestConcurrentErrorEntryEviction(t *testing.T) {
	ctx := context.Background()
	cfg := f90y.DefaultConfig()
	svc := New(4)
	svc.MaxCacheEntries = 4

	bad := func(i int) string { return fmt.Sprintf("program p%d\nthis is not fortran\nend\n", i) }
	var wg sync.WaitGroup
	for g := 0; g < 4; g++ {
		wg.Add(2)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 12; i++ {
				if _, err := svc.Compile(ctx, "bad.f90", bad(g*12+i), cfg); err == nil {
					t.Errorf("bad(%d) compiled", g*12+i)
					return
				}
			}
		}(g)
		go func() {
			defer wg.Done()
			for i := 0; i < 16; i++ {
				if _, err := svc.Compile(ctx, "bad.f90", bad(0), cfg); err == nil {
					t.Error("repeated bad source compiled")
					return
				}
			}
		}()
	}
	wg.Wait()

	entries, used, evictions := svc.CacheUsage()
	if entries > 4 {
		t.Errorf("error flood grew the cache to %d entries past the bound of 4", entries)
	}
	if used < 0 {
		t.Errorf("cache byte counter went negative: %d", used)
	}
	if evictions == 0 {
		t.Error("48 distinct errors over a 4-entry bound evicted nothing")
	}
}

// TestCacheCanceledCompileNotCounted: the cancel-eviction path must not
// corrupt the LRU bookkeeping (bytes stay balanced, retry works).
func TestCacheCanceledCompileNotCounted(t *testing.T) {
	svc := New(1)
	svc.MaxCacheEntries = 2
	src := workload.SWE(16, 1)
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := svc.Compile(ctx, "swe.f90", src, f90y.DefaultConfig()); !errors.Is(err, rt.ErrCanceled) {
		t.Fatalf("pre-canceled compile error = %v, want ErrCanceled", err)
	}
	entries, bytes, _ := svc.CacheUsage()
	if entries != 0 || bytes != 0 {
		t.Errorf("canceled compile left residue: %d entries, %d bytes", entries, bytes)
	}
	if _, err := svc.Compile(context.Background(), "swe.f90", src, f90y.DefaultConfig()); err != nil {
		t.Fatalf("retry after canceled compile: %v", err)
	}
}
