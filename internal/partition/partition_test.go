package partition

import (
	"strings"
	"testing"

	"f90y/internal/fe"
	"f90y/internal/lower"
	"f90y/internal/opt"
	"f90y/internal/parser"
	"f90y/internal/pe"
	"f90y/internal/workload"
)

func compile(t *testing.T, src string, o opt.Options) (*fe.Program, Stats) {
	t.Helper()
	tree, err := parser.Parse("t.f90", src)
	if err != nil {
		t.Fatal(err)
	}
	mod, err := lower.Lower(tree)
	if err != nil {
		t.Fatal(err)
	}
	omod, _ := opt.Optimize(mod, o)
	prog, stats, err := Compile(omod, pe.Optimized)
	if err != nil {
		t.Fatal(err)
	}
	return prog, stats
}

func TestDivisionOfLabor(t *testing.T) {
	// §5.1: computation phases become node procedures; the remainder —
	// serial code, scalar moves, communication — becomes host code.
	src := `program t
real, array(32,32) :: a, b
real c(32)
real s
integer i
a = a*2.0 + 1.0
b = cshift(a, 1, 1)
s = s + 1.0
do i = 1, 32
  c(i) = a(i,i)
end do
end program t
`
	prog, stats := compile(t, src, opt.Default)
	// The a-computation and the b=shifted(a) computation are separated by
	// the dependent communication: two node routines.
	if stats.NodeRoutines != 2 {
		t.Fatalf("node routines = %d", stats.NodeRoutines)
	}
	if stats.CommCalls != 1 {
		t.Fatalf("comm calls = %d", stats.CommCalls)
	}
	counts := prog.CountOps()
	if counts["do"] != 1 || counts["assign"] == 0 {
		t.Fatalf("host structure: %v", counts)
	}
	if counts["callnode"] != 2 {
		t.Fatalf("callnode = %d", counts["callnode"])
	}
}

func TestRoutineNaming(t *testing.T) {
	prog, _ := compile(t, "program t\nreal a(8), b(8)\na = 1.0\nb = cshift(a,1)\nend program t", opt.Default)
	for _, r := range prog.Routines {
		if !strings.HasPrefix(r.Name, "Pk") {
			t.Fatalf("routine name %q", r.Name)
		}
	}
}

func TestSWEPartitionStructure(t *testing.T) {
	src := workload.SWE(32, 2)
	blocked, bstats := compile(t, src, opt.Default)
	perStmt, pstats := compile(t, src, opt.Options{PadSections: true})
	if bstats.NodeRoutines >= pstats.NodeRoutines {
		t.Fatalf("blocking did not reduce routines: %d vs %d", bstats.NodeRoutines, pstats.NodeRoutines)
	}
	if blocked.CountOps()["callnode"] >= perStmt.CountOps()["callnode"] {
		t.Fatalf("blocked program should dispatch fewer node calls")
	}
	// The time loop is host structure containing node calls.
	bc := blocked.CountOps()
	if bc["do"] == 0 && bc["while"] == 0 {
		t.Fatalf("no host loop: %v", bc)
	}
	if bstats.Fallbacks != 0 || pstats.Fallbacks != 0 {
		t.Fatalf("unexpected PE fallbacks: %d/%d", bstats.Fallbacks, pstats.Fallbacks)
	}
}

func TestControlFlowStaysOnHost(t *testing.T) {
	src := `program t
integer i
real x(8)
i = 0
do while (i < 3)
  i = i + 1
end do
if (i == 3) then
  x = 1.0
else
  x = 2.0
end if
print *, i
stop
end program t
`
	prog, _ := compile(t, src, opt.Default)
	c := prog.CountOps()
	for _, k := range []string{"while", "if", "print", "stop"} {
		if c[k] != 1 {
			t.Fatalf("%s = %d: %v", k, c[k], c)
		}
	}
}

func TestCommOpsCarryMoves(t *testing.T) {
	prog, _ := compile(t, "program t\ninteger l(128)\nl(32:64) = l(96:128)\nend program t", opt.Default)
	comms := 0
	for _, op := range prog.Ops {
		if _, ok := op.(fe.Comm); ok {
			comms++
		}
	}
	if comms != 1 {
		t.Fatalf("misaligned section should be one comm op, got %d", comms)
	}
}
