package partition

// This file maps explicit data distributions onto machine subgrids
// (§5.3.1 retarget): given a shape.Layout carrying an !HPF$ distribution,
// it computes exact per-PE ownership counts. The machine models charge
// node compute for the worst-loaded PE — the synchronous machine gates on
// its slowest processor — so the quantity of interest is the maximum
// number of points any single PE owns. For the default blockwise layout
// the nominal Block product is returned unchanged, keeping directive-free
// cycle totals bit-identical to the legacy model.

import (
	"fmt"

	"f90y/internal/shape"
)

// DimCounts returns how many index points each PE coordinate along
// layout dimension d owns (length PEDims[d]; entries sum to Extents[d]).
func DimCounts(lo shape.Layout, d int) []int {
	counts := make([]int, lo.PEDims[d])
	for i := 0; i < lo.Extents[d]; i++ {
		counts[lo.OwnerDim(d, i)]++
	}
	return counts
}

// MaxPointsPerPE is the exact worst-case number of points a single PE
// owns under the layout. Ownership is separable per dimension (a PE's
// point set is the cartesian product of its per-dimension slices), so
// the maximum is the product of the per-dimension maxima.
func MaxPointsPerPE(lo shape.Layout) int {
	m := 1
	for d := range lo.Extents {
		best := 0
		for _, c := range DimCounts(lo, d) {
			if c > best {
				best = c
			}
		}
		m *= best
	}
	return m
}

// NodeSubgridSize is the per-PE (or per-node) subgrid extent the machine
// models charge compute for: exact ownership counting for explicit
// distributions, the nominal Block product for the default layout (the
// two agree for BLOCK dims; the gate keeps the directive-free path on
// the exact legacy arithmetic).
func NodeSubgridSize(lo shape.Layout) int {
	if lo.Dist.IsDefault() {
		return lo.SubgridSize()
	}
	return MaxPointsPerPE(lo)
}

// CheckCover verifies the layout's ownership map partitions the index
// space: along every dimension each point has exactly one owner inside
// the PE grid and the per-PE counts sum back to the extent, and no PE
// owns more points than the nominal Block bound promises.
func CheckCover(lo shape.Layout) error {
	for d := range lo.Extents {
		counts := make([]int, lo.PEDims[d])
		for i := 0; i < lo.Extents[d]; i++ {
			pe := lo.OwnerDim(d, i)
			if pe < 0 || pe >= lo.PEDims[d] {
				return fmt.Errorf("partition: dim %d index %d owner %d outside PE grid [0,%d)",
					d, i, pe, lo.PEDims[d])
			}
			counts[pe]++
		}
		total, most := 0, 0
		for _, c := range counts {
			total += c
			if c > most {
				most = c
			}
		}
		if total != lo.Extents[d] {
			return fmt.Errorf("partition: dim %d per-PE counts sum to %d, extent is %d",
				d, total, lo.Extents[d])
		}
		if most > lo.Block[d] {
			return fmt.Errorf("partition: dim %d worst PE owns %d points, nominal block is %d",
				d, most, lo.Block[d])
		}
	}
	return nil
}
