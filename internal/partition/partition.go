// Package partition implements the CM2/NIR compiler of §5.1: it models
// the CM/2 host and nodes together as a single machine, then partitions
// input NIR programs into subprograms for each half. "The CM2/NIR compiler
// just cuts out the computation phases and patches the remaining program
// to include appropriate NIR calling code. Each computation phase will be
// compiled as a single node procedure, and the remainder will become
// supporting host code." Computation blocks go to the PE/NIR compiler;
// the remainder goes to the FE/NIR host representation.
package partition

import (
	"fmt"

	"f90y/internal/fe"
	"f90y/internal/lower"
	"f90y/internal/nir"
	"f90y/internal/obs"
	"f90y/internal/opt"
	"f90y/internal/pe"
	"f90y/internal/peac"
	"f90y/internal/shape"
)

// Stats describes the division of labor the partitioner produced.
type Stats struct {
	NodeRoutines int // computation blocks compiled to PEAC
	CommCalls    int // runtime communication invocations
	HostMoves    int // front-end scalar/element assignments
	Fallbacks    int // compute blocks the PE compiler rejected (host path)
}

// Compile partitions an optimized module into a host program plus PEAC
// node procedures. peOpts selects the PE/NIR compiler's optimization
// level (pe.Optimized or pe.Naive, or any ablation in between).
func Compile(mod *lower.Module, peOpts pe.Options) (*fe.Program, Stats, error) {
	return CompileObs(mod, peOpts, nil)
}

// CompileObs is Compile with telemetry: every PE/NIR compilation emits
// one "pe-codegen" span plus per-routine size counters, and the
// partition statistics are emitted as counters. rec may be nil.
func CompileObs(mod *lower.Module, peOpts pe.Options, rec obs.Recorder) (*fe.Program, Stats, error) {
	p := &partitioner{
		cls:    &opt.Classifier{Syms: mod.Syms},
		syms:   mod.Syms,
		peOpts: peOpts,
		rec:    rec,
	}
	ops, err := p.ops(mod.Body)
	if err != nil {
		return nil, p.stats, err
	}
	obs.Add(rec, "partition/node-routines", float64(p.stats.NodeRoutines))
	obs.Add(rec, "partition/comm-calls", float64(p.stats.CommCalls))
	obs.Add(rec, "partition/host-moves", float64(p.stats.HostMoves))
	obs.Add(rec, "partition/fallbacks", float64(p.stats.Fallbacks))
	prog := &fe.Program{Name: mod.Name, Ops: ops, Routines: p.routines, Syms: mod.Syms}
	return prog, p.stats, nil
}

type partitioner struct {
	cls      *opt.Classifier
	syms     *lower.SymTab
	peOpts   pe.Options
	routines []*peac.Routine
	stats    Stats
	nextID   int
	rec      obs.Recorder
}

func (p *partitioner) ops(a nir.Imp) ([]fe.Op, error) {
	switch a := a.(type) {
	case nil, nir.Skip:
		return nil, nil
	case nir.Program:
		return p.ops(a.Body)
	case nir.WithDomain:
		return p.ops(a.Body)
	case nir.WithDecl:
		return p.ops(a.Body)
	case nir.Sequentially:
		var out []fe.Op
		for _, x := range a.List {
			ops, err := p.ops(x)
			if err != nil {
				return nil, err
			}
			out = append(out, ops...)
		}
		return out, nil
	case nir.Concurrently:
		var out []fe.Op
		for _, x := range a.List {
			ops, err := p.ops(x)
			if err != nil {
				return nil, err
			}
			out = append(out, ops...)
		}
		return out, nil
	case nir.Move:
		return p.move(a)
	case nir.Do:
		body, err := p.ops(a.Body)
		if err != nil {
			return nil, err
		}
		return []fe.Op{fe.DoSerial{S: a.S, Body: body}}, nil
	case nir.IfThenElse:
		then, err := p.ops(a.Then)
		if err != nil {
			return nil, err
		}
		els, err := p.ops(a.Else)
		if err != nil {
			return nil, err
		}
		return []fe.Op{fe.If{Cond: a.Cond, Then: then, Else: els}}, nil
	case nir.While:
		body, err := p.ops(a.Body)
		if err != nil {
			return nil, err
		}
		return []fe.Op{fe.While{Cond: a.Cond, Body: body}}, nil
	case nir.CallImp:
		switch a.Name {
		case "rt_print":
			return []fe.Op{fe.Print{Args: a.Args}}, nil
		case "rt_stop":
			return []fe.Op{fe.Stop{}}, nil
		}
		return nil, fmt.Errorf("partition: unknown runtime call %q", a.Name)
	}
	return nil, fmt.Errorf("partition: unsupported action %T", a)
}

func (p *partitioner) move(m nir.Move) ([]fe.Op, error) {
	switch p.cls.Classify(m) {
	case opt.Compute:
		name := fmt.Sprintf("Pk%d", p.nextID)
		p.nextID++
		span := obs.Start(p.rec, "pe-codegen")
		r, err := pe.Compile(name, m, p.syms, p.peOpts)
		span.End()
		if err != nil {
			// The PE/NIR compiler accepts a restricted language (§5.2);
			// anything outside it falls back to the host/router path.
			p.stats.Fallbacks++
			p.stats.CommCalls++
			return []fe.Op{fe.Comm{Move: m}}, nil
		}
		p.stats.NodeRoutines++
		// Stamp the routine with the block's explicit data distribution
		// (if any) so the machine models lay its iteration space out the
		// way the !HPF$ directives asked for.
		r.Dist, _ = p.cls.MoveDist(m)
		p.routines = append(p.routines, r)
		obs.Add(p.rec, "pe/"+r.Name+"/instrs", float64(r.InstrCount()))
		obs.Add(p.rec, "pe/"+r.Name+"/issue-slots", float64(r.IssueSlots()))
		obs.Add(p.rec, "pe/"+r.Name+"/spill-slots", float64(r.SpillSlots))
		obs.Add(p.rec, "pe/"+r.Name+"/flops-per-iter", float64(r.FlopsPerIteration()))
		return []fe.Op{fe.CallNode{Routine: r, Over: m.Over}}, nil
	case opt.Comm:
		p.stats.CommCalls++
		return []fe.Op{fe.Comm{Move: m}}, nil
	default:
		var out []fe.Op
		for _, g := range m.Moves {
			mask := g.Mask
			if nir.EqualValue(mask, nir.True) {
				mask = nil
			}
			out = append(out, fe.Assign{Tgt: g.Tgt, Src: g.Src, Mask: mask})
			p.stats.HostMoves++
		}
		if m.Over != nil && !shape.Serial(m.Over) {
			// Host-classified parallel moves do not occur today; guard
			// against silent misclassification.
			return nil, fmt.Errorf("partition: parallel move classified host")
		}
		return out, nil
	}
}
