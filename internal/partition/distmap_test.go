package partition

import (
	"math/rand"
	"testing"

	"f90y/internal/shape"
)

// randDist draws a random per-dimension distribution: block, cyclic,
// cyclic(k), or star.
func randDist(rng *rand.Rand, rank int) shape.Distribution {
	var d shape.Distribution
	for i := 0; i < rank; i++ {
		switch rng.Intn(4) {
		case 0:
			d.Dims = append(d.Dims, shape.DimDist{Kind: shape.DistBlock})
		case 1:
			d.Dims = append(d.Dims, shape.DimDist{Kind: shape.DistCyclic})
		case 2:
			d.Dims = append(d.Dims, shape.DimDist{Kind: shape.DistCyclic, K: 1 + rng.Intn(8)})
		default:
			d.Dims = append(d.Dims, shape.DimDist{Kind: shape.DistStar})
		}
	}
	return d
}

// bruteCounts walks every point of the layout's index space and tallies
// how many each linear PE owns.
func bruteCounts(lo shape.Layout) map[int]int {
	counts := map[int]int{}
	idx := make([]int, len(lo.Extents))
	total := 1
	for _, e := range lo.Extents {
		total *= e
	}
	for n := 0; n < total; n++ {
		counts[lo.Owner(idx...)]++
		for d := range idx {
			idx[d]++
			if idx[d] < lo.Extents[d] {
				break
			}
			idx[d] = 0
		}
	}
	return counts
}

// TestDistributionCoversShape is the satellite property test: for
// randomized extents, power-of-two PE counts, and arbitrary mixed
// distributions, the ownership map partitions the index space exactly —
// every point has one owner, per-dimension counts sum to the extents,
// and no PE exceeds the nominal per-PE block bound.
func TestDistributionCoversShape(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	for trial := 0; trial < 500; trial++ {
		rank := 1 + rng.Intn(3)
		ext := make([]int, rank)
		for i := range ext {
			ext[i] = 1 + rng.Intn(24)
		}
		pes := 1 << rng.Intn(7) // 1..64
		d := randDist(rng, rank)
		lo := shape.Distribute(shape.Of(ext...), pes, d)

		if err := CheckCover(lo); err != nil {
			t.Fatalf("trial %d ext=%v pes=%d dist=%q: %v", trial, ext, pes, d.String(), err)
		}

		counts := bruteCounts(lo)
		total, most := 0, 0
		for pe, c := range counts {
			grid := 1
			for _, p := range lo.PEDims {
				grid *= p
			}
			if pe < 0 || pe >= grid {
				t.Fatalf("trial %d: owner %d outside PE grid of %d", trial, pe, grid)
			}
			total += c
			if c > most {
				most = c
			}
		}
		want := 1
		for _, e := range ext {
			want *= e
		}
		if total != want {
			t.Fatalf("trial %d ext=%v pes=%d dist=%q: owned %d points, shape has %d",
				trial, ext, pes, d.String(), total, want)
		}
		if got := MaxPointsPerPE(lo); got != most {
			t.Fatalf("trial %d ext=%v pes=%d dist=%q: MaxPointsPerPE=%d, brute-force max=%d",
				trial, ext, pes, d.String(), got, most)
		}
		if most > lo.SubgridSize() {
			t.Fatalf("trial %d ext=%v pes=%d dist=%q: worst PE owns %d > nominal subgrid %d",
				trial, ext, pes, d.String(), most, lo.SubgridSize())
		}
	}
}

// TestNodeSubgridSizeDefaultGate pins the gate: for the default layout
// NodeSubgridSize returns the nominal Block product (the legacy
// arithmetic), bit-identical to SubgridSize.
func TestNodeSubgridSizeDefaultGate(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for trial := 0; trial < 200; trial++ {
		rank := 1 + rng.Intn(3)
		ext := make([]int, rank)
		for i := range ext {
			ext[i] = 1 + rng.Intn(100)
		}
		pes := 1 << rng.Intn(12)
		lo := shape.Blockwise(shape.Of(ext...), pes)
		if got, want := NodeSubgridSize(lo), lo.SubgridSize(); got != want {
			t.Fatalf("ext=%v pes=%d: NodeSubgridSize=%d, SubgridSize=%d", ext, pes, got, want)
		}
	}
	// An explicit cyclic layout takes the exact-count path.
	lo := shape.Distribute(shape.Of(10), 4, shape.Distribution{Dims: []shape.DimDist{{Kind: shape.DistCyclic}}})
	if got := NodeSubgridSize(lo); got != MaxPointsPerPE(lo) {
		t.Fatalf("cyclic NodeSubgridSize=%d, MaxPointsPerPE=%d", got, MaxPointsPerPE(lo))
	}
}
