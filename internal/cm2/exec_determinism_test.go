package cm2_test

// TestExecParallelDeterminism is the race-enabled determinism gate for
// the sharded executor (wired into `make check`): a full compiled run —
// fault injection and the numeric record plane active — must produce
// bit-identical stores, identical output, identical cycle totals, and
// identical fault and numeric tallies for every -exec-workers value.

import (
	"math"
	"testing"

	"f90y"
	"f90y/internal/cm2"
	"f90y/internal/faults"
	"f90y/internal/rt"
	"f90y/internal/workload"
)

func TestExecParallelDeterminism(t *testing.T) {
	src := workload.SWE(48, 2)
	comp, err := f90y.Compile("swe.f90", src, f90y.DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	plan, err := faults.ParseSpec("seed=7,pe=0.02,drop=0.005")
	if err != nil {
		t.Fatal(err)
	}

	run := func(workers int) *cm2.Result {
		t.Helper()
		res, err := comp.RunCtl(&cm2.Control{
			Faults:      faults.New(plan, nil),
			Numeric:     &rt.Numeric{Mode: rt.NumericRecord},
			ExecWorkers: workers,
		})
		if err != nil {
			t.Fatalf("workers=%d: %v", workers, err)
		}
		return res
	}

	ref := run(1)
	for _, workers := range []int{4, -1} {
		got := run(workers)

		for name, want := range ref.Store.Arrays {
			g := got.Store.Arrays[name]
			if g == nil {
				t.Fatalf("workers=%d: array %q missing", workers, name)
			}
			for i := range want.Data {
				if math.Float64bits(g.Data[i]) != math.Float64bits(want.Data[i]) {
					t.Fatalf("workers=%d: %s[%d] = %v, want %v (not bit-exact)",
						workers, name, i, g.Data[i], want.Data[i])
				}
			}
		}
		for name, want := range ref.Store.Scalars {
			if g := got.Store.Scalars[name]; math.Float64bits(g) != math.Float64bits(want) {
				t.Errorf("workers=%d: scalar %s = %v, want %v", workers, name, g, want)
			}
		}
		if len(got.Output) != len(ref.Output) {
			t.Fatalf("workers=%d: %d output lines, want %d", workers, len(got.Output), len(ref.Output))
		}
		for i := range ref.Output {
			if got.Output[i] != ref.Output[i] {
				t.Errorf("workers=%d: output[%d] = %q, want %q", workers, i, got.Output[i], ref.Output[i])
			}
		}

		if got.PECycles != ref.PECycles || got.CommCycles != ref.CommCycles || got.HostCycles != ref.HostCycles {
			t.Errorf("workers=%d: cycles (pe %v, comm %v, host %v), want (pe %v, comm %v, host %v)",
				workers, got.PECycles, got.CommCycles, got.HostCycles,
				ref.PECycles, ref.CommCycles, ref.HostCycles)
		}
		if got.Flops != ref.Flops || got.GFLOPS() != ref.GFLOPS() {
			t.Errorf("workers=%d: flops %d / %v GFLOPS, want %d / %v",
				workers, got.Flops, got.GFLOPS(), ref.Flops, ref.GFLOPS())
		}

		if got.Faults == nil || ref.Faults == nil {
			t.Fatalf("workers=%d: missing fault stats", workers)
		}
		if got.Faults.Retries != ref.Faults.Retries || got.Faults.RetryCycles != ref.Faults.RetryCycles {
			t.Errorf("workers=%d: fault recovery (retries %d, cycles %v), want (%d, %v)",
				workers, got.Faults.Retries, got.Faults.RetryCycles, ref.Faults.Retries, ref.Faults.RetryCycles)
		}
		for kind, n := range ref.Faults.Injected {
			if got.Faults.Injected[kind] != n {
				t.Errorf("workers=%d: injected[%s] = %d, want %d", workers, kind, got.Faults.Injected[kind], n)
			}
		}

		if got.Numeric.Total() != ref.Numeric.Total() {
			t.Errorf("workers=%d: numeric tally %d, want %d", workers, got.Numeric.Total(), ref.Numeric.Total())
		}
		for cl, n := range ref.Numeric.NaN {
			if got.Numeric.NaN[cl] != n {
				t.Errorf("workers=%d: NaN[%s] = %d, want %d", workers, cl, got.Numeric.NaN[cl], n)
			}
		}
		for cl, n := range ref.Numeric.Inf {
			if got.Numeric.Inf[cl] != n {
				t.Errorf("workers=%d: Inf[%s] = %d, want %d", workers, cl, got.Numeric.Inf[cl], n)
			}
		}
	}
}
