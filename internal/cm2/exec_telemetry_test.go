package cm2_test

// TestConcurrentExecPoolTelemetry is the race-enabled gate for the
// sharded executor's runtime telemetry (wired into `make concurrency`):
// every pool worker records spans, counters, and histograms into ONE
// shared obs.Collector concurrently, and the run's modeled telemetry
// must still be bit-identical to a serial run's — only the wall-clock
// "execpool/" instrumentation may differ. It also pins the tentpole's
// attribution invariants: PELineCycles is bit-identical for every
// worker count, sums exactly to PECycles, and its per-class marginals
// equal PEClassCycles.

import (
	"math"
	"runtime"
	"strings"
	"testing"

	"f90y"
	"f90y/internal/cm2"
	"f90y/internal/obs"
	"f90y/internal/workload"
)

// modeledCounters strips the wall-clock pool instrumentation, leaving
// only counters derived from the deterministic machine model.
func modeledCounters(col *obs.Collector) map[string]float64 {
	out := map[string]float64{}
	for k, v := range col.Counters() {
		if !strings.HasPrefix(k, "execpool/") {
			out[k] = v
		}
	}
	return out
}

func TestConcurrentExecPoolTelemetry(t *testing.T) {
	// The grid must exceed the executor's chunk size (4096 elements) or
	// the pool clamps to one worker and the parallel path never runs:
	// 96x96 = 9216 elements = 3 chunks.
	src := workload.SWE(96, 2)
	comp, err := f90y.Compile("swe.f90", src, f90y.DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}

	run := func(workers int) (*cm2.Result, *obs.Collector) {
		t.Helper()
		col := obs.NewCollector()
		res, err := cm2.Default().RunCtl(comp.Program, nil, col, &cm2.Control{ExecWorkers: workers})
		if err != nil {
			t.Fatalf("workers=%d: %v", workers, err)
		}
		return res, col
	}

	ref, refCol := run(0)
	refCounters := modeledCounters(refCol)

	// Conservation on the serial reference: the per-line attribution sums
	// exactly to the PE cycle total and its per-class marginals equal the
	// per-class tallies (all values are integral, so sums are exact).
	total := 0.0
	classes := map[string]float64{}
	for cell, v := range ref.PELineCycles {
		total += v
		classes[cell.Class] += v
	}
	if total != ref.PECycles {
		t.Errorf("line attribution sums to %v, PECycles = %v", total, ref.PECycles)
	}
	for cl, want := range ref.PEClassCycles {
		if classes[cl] != want {
			t.Errorf("class marginal %s = %v, PEClassCycles = %v", cl, classes[cl], want)
		}
	}
	for cl := range classes {
		if _, ok := ref.PEClassCycles[cl]; !ok && cl != cm2.DegradeClass {
			t.Errorf("line attribution has class %s absent from PEClassCycles", cl)
		}
	}

	for _, workers := range []int{4, -1} {
		got, col := run(workers)

		// The merged modeled telemetry equals the serial run's exactly.
		counters := modeledCounters(col)
		if len(counters) != len(refCounters) {
			t.Errorf("workers=%d: %d modeled counters, want %d", workers, len(counters), len(refCounters))
		}
		for k, want := range refCounters {
			if counters[k] != want {
				t.Errorf("workers=%d: counter %s = %v, want %v", workers, k, counters[k], want)
			}
		}
		refHist := refCol.Histograms()["cm2/dispatch-cycles"]
		gotHist := col.Histograms()["cm2/dispatch-cycles"]
		if refHist == nil || gotHist == nil {
			t.Fatalf("workers=%d: missing dispatch-cycles histogram", workers)
		}
		if gotHist.Count != refHist.Count || gotHist.Sum != refHist.Sum {
			t.Errorf("workers=%d: dispatch histogram (count %d, sum %v), want (%d, %v)",
				workers, gotHist.Count, gotHist.Sum, refHist.Count, refHist.Sum)
		}

		// Line attribution is bit-identical for every worker count.
		if len(got.PELineCycles) != len(ref.PELineCycles) {
			t.Errorf("workers=%d: %d attribution cells, want %d", workers, len(got.PELineCycles), len(ref.PELineCycles))
		}
		for cell, want := range ref.PELineCycles {
			if g := got.PELineCycles[cell]; math.Float64bits(g) != math.Float64bits(want) {
				t.Errorf("workers=%d: %v = %v, want %v (not bit-exact)", workers, cell, g, want)
			}
		}

		// The pool itself reported: workers joined, chunks were claimed,
		// and the chunk histograms saw one sample per claimed chunk. A
		// negative count resolves to GOMAXPROCS, which on a single-CPU
		// host is the serial path — no pool, no pool telemetry.
		effective := workers
		if effective < 0 {
			effective = runtime.GOMAXPROCS(0)
		}
		if effective <= 1 {
			continue
		}
		pool := col.Counters()
		if pool["execpool/workers"] == 0 {
			t.Errorf("workers=%d: no pool workers recorded", workers)
		}
		chunks := pool["execpool/chunks"]
		if chunks == 0 {
			t.Errorf("workers=%d: no chunks recorded", workers)
		}
		if h := col.Histograms()["execpool/chunk-ns"]; h == nil || float64(h.Count) != chunks {
			t.Errorf("workers=%d: chunk-ns histogram count != chunks counter %v", workers, chunks)
		}
		if h := col.Histograms()["execpool/chunk-claim-wait-ns"]; h == nil || float64(h.Count) != chunks {
			t.Errorf("workers=%d: claim-wait histogram count != chunks counter %v", workers, chunks)
		}

		// Per-worker tracks appear in the span log.
		hasTrack := false
		for _, s := range col.Spans() {
			if s.Track > 0 {
				hasTrack = true
				break
			}
		}
		if !hasTrack {
			t.Errorf("workers=%d: no spans recorded on worker tracks", workers)
		}
	}
}
