package cm2

import "errors"

// ErrDispatch reports a node dispatch that could not run: a routine
// without a shape, or a processing element killed by fault injection
// while graceful degradation is disabled. Match with errors.Is; the
// fault case also wraps faults.ErrPEDead.
var ErrDispatch = errors.New("node dispatch failed")
