package cm2

// Regression tests for the chained-memory operand fix and the sharded
// executor. The chained-operand tests hand-build routines the current
// pe code generator never emits (it chains at most one Mem operand per
// instruction) but the public executor API accepts: before the fix, a
// single shared fetch buffer meant the second Mem operand of an
// instruction silently read the first operand's lanes, and an FSTRV
// with a chained source or mask read whatever the buffer last held.

import (
	"context"
	"errors"
	"math"
	"strings"
	"testing"

	"f90y/internal/nir"
	"f90y/internal/peac"
	"f90y/internal/rt"
	"f90y/internal/shape"
)

// parStore builds a store of float64 arrays with the given element
// count, filling each named array by f(name, i).
func parStore(n int, names []string, f func(name string, i int) float64) *rt.Store {
	st := &rt.Store{
		Arrays:  map[string]*rt.Array{},
		Scalars: map[string]float64{},
		Kinds:   map[string]nir.ScalarKind{},
	}
	for _, name := range names {
		a := rt.NewArray(nir.Float64, shape.Of(n))
		for i := 0; i < n; i++ {
			a.Data[i] = f(name, i)
		}
		st.Arrays[name] = a
	}
	return st
}

// TestExecChainedMemMultiOperand is the headline regression: an
// instruction chaining DISTINCT memory streams in both A and B must
// read each stream's own lanes. With the old single memBuf, d = a + b
// silently computed a + a.
func TestExecChainedMemMultiOperand(t *testing.T) {
	r := &peac.Routine{
		Name: "Pchain2",
		Params: []peac.Param{
			{Kind: peac.ArrayParam, Name: "a", Reg: 2},
			{Kind: peac.ArrayParam, Name: "b", Reg: 3},
			{Kind: peac.ArrayParam, Name: "d", Reg: 4},
		},
		Body: []peac.Instr{
			{Op: peac.FADDV, A: peac.M(2), B: peac.M(3), D: peac.V(0)},
			{Op: peac.FSTRV, A: peac.V(0), D: peac.M(4)},
		},
	}
	const n = 10
	st := parStore(n, []string{"a", "b", "d"}, func(name string, i int) float64 {
		switch name {
		case "a":
			return float64(i)
		case "b":
			return 1000 + float64(i)
		}
		return 0
	})
	if err := ExecRoutine(r, shape.Of(n), st); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < n; i++ {
		want := float64(i) + (1000 + float64(i))
		if got := st.Arrays["d"].Data[i]; got != want {
			t.Fatalf("d[%d] = %v, want %v (stale-buffer bug: chained B read A's lanes)", i, got, want)
		}
	}
}

// TestExecChainedAddend chains the C (fmadd addend) operand alongside a
// chained A: three distinct streams on one instruction.
func TestExecChainedAddend(t *testing.T) {
	r := &peac.Routine{
		Name: "Pchain3",
		Params: []peac.Param{
			{Kind: peac.ArrayParam, Name: "a", Reg: 2},
			{Kind: peac.ArrayParam, Name: "b", Reg: 3},
			{Kind: peac.ArrayParam, Name: "c", Reg: 5},
			{Kind: peac.ArrayParam, Name: "d", Reg: 4},
		},
		Body: []peac.Instr{
			{Op: peac.FMADDV, A: peac.M(2), B: peac.M(3), C: peac.M(5), D: peac.V(0)},
			{Op: peac.FSTRV, A: peac.V(0), D: peac.M(4)},
		},
	}
	const n = 7
	st := parStore(n, []string{"a", "b", "c", "d"}, func(name string, i int) float64 {
		switch name {
		case "a":
			return float64(i + 1)
		case "b":
			return 2
		case "c":
			return 100 * float64(i)
		}
		return 0
	})
	if err := ExecRoutine(r, shape.Of(n), st); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < n; i++ {
		want := float64(i+1)*2 + 100*float64(i)
		if got := st.Arrays["d"].Data[i]; got != want {
			t.Fatalf("d[%d] = %v, want %v", i, got, want)
		}
	}
}

// TestExecFstrvChainedSourceAndMask stores straight from one chained
// stream under a mask read from another: before the fix FSTRV resolved
// Mem operands through the shared buffer WITHOUT fetching at all.
func TestExecFstrvChainedSourceAndMask(t *testing.T) {
	r := &peac.Routine{
		Name: "Pstrchain",
		Params: []peac.Param{
			{Kind: peac.ArrayParam, Name: "src", Reg: 2},
			{Kind: peac.ArrayParam, Name: "mask", Reg: 3},
			{Kind: peac.ArrayParam, Name: "d", Reg: 4},
		},
		Body: []peac.Instr{
			{Op: peac.FSTRV, A: peac.M(2), C: peac.M(3), D: peac.M(4)},
		},
	}
	const n = 9
	st := parStore(n, []string{"src", "mask", "d"}, func(name string, i int) float64 {
		switch name {
		case "src":
			return 10 + float64(i)
		case "mask":
			return float64(i % 2) // store odd elements only
		case "d":
			return -1
		}
		return 0
	})
	if err := ExecRoutine(r, shape.Of(n), st); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < n; i++ {
		want := -1.0
		if i%2 == 1 {
			want = 10 + float64(i)
		}
		if got := st.Arrays["d"].Data[i]; got != want {
			t.Fatalf("d[%d] = %v, want %v (FSTRV must fetch chained source and mask)", i, got, want)
		}
	}
}

// TestExecChainedUnboundPointer asserts a chained Mem operand naming an
// unbound pointer register fails loudly instead of reading garbage.
func TestExecChainedUnboundPointer(t *testing.T) {
	r := &peac.Routine{
		Name: "Punbound",
		Params: []peac.Param{
			{Kind: peac.ArrayParam, Name: "a", Reg: 2},
			{Kind: peac.ArrayParam, Name: "d", Reg: 4},
		},
		Body: []peac.Instr{
			{Op: peac.FADDV, A: peac.M(2), B: peac.M(9), D: peac.V(0)},
			{Op: peac.FSTRV, A: peac.V(0), D: peac.M(4)},
		},
	}
	st := parStore(4, []string{"a", "d"}, func(string, int) float64 { return 1 })
	err := ExecRoutine(r, shape.Of(4), st)
	if err == nil || !strings.Contains(err.Error(), "unbound pointer aP9") {
		t.Fatalf("err = %v, want chained-load unbound pointer error", err)
	}
}

// chunkRoutine exercises loads, spills, a coordinate stream, and a
// masked store — enough machinery that any chunk-boundary bug in the
// sharded executor shows up as a wrong lane.
func chunkRoutine() *peac.Routine {
	return &peac.Routine{
		Name:       "Pchunks",
		SpillSlots: 1,
		Params: []peac.Param{
			{Kind: peac.ArrayParam, Name: "a", Reg: 2},
			{Kind: peac.ArrayParam, Name: "b", Reg: 3},
			{Kind: peac.ArrayParam, Name: "d", Reg: 4},
			{Kind: peac.CoordParam, Dim: 1, Reg: 5},
			{Kind: peac.ConstParam, Value: 3, Reg: 16},
		},
		Body: []peac.Instr{
			{Op: peac.FLODV, A: peac.M(2), D: peac.V(0)},
			{Op: peac.SPILLV, A: peac.V(0), D: peac.Operand{Kind: peac.SpillSlot}},
			{Op: peac.FLODV, A: peac.M(3), D: peac.V(1)},
			{Op: peac.FLODV, A: peac.M(5), D: peac.V(2)},
			{Op: peac.FMULV, A: peac.V(1), B: peac.S(16), D: peac.V(1)},
			{Op: peac.RESTV, A: peac.Operand{Kind: peac.SpillSlot}, D: peac.V(3)},
			{Op: peac.FMADDV, A: peac.V(3), B: peac.V(2), C: peac.V(1), D: peac.V(3)},
			{Op: peac.FSTRV, A: peac.V(3), D: peac.M(4)},
		},
	}
}

func chunkStore(n int) *rt.Store {
	return parStore(n, []string{"a", "b", "d"}, func(name string, i int) float64 {
		switch name {
		case "a":
			return 1 + float64(i%17)
		case "b":
			return float64(i % 5)
		}
		return 0
	})
}

// TestExecParallelChunkBoundaries runs element counts around every
// chunk-boundary case (n < chunk, n == chunk, n % chunk != 0, many
// chunks) across worker counts and asserts the stores are bit-identical
// to the serial run.
func TestExecParallelChunkBoundaries(t *testing.T) {
	r := chunkRoutine()
	for _, n := range []int{1, 7, chunkSize - 1, chunkSize, chunkSize + 1, 3*chunkSize + 5} {
		ref := chunkStore(n)
		if err := ExecRoutineOpts(context.Background(), r, shape.Of(n), ref, ExecOpts{Workers: 1}); err != nil {
			t.Fatalf("n=%d serial: %v", n, err)
		}
		for _, workers := range []int{2, 3, 8, -1} {
			st := chunkStore(n)
			if err := ExecRoutineOpts(context.Background(), r, shape.Of(n), st, ExecOpts{Workers: workers}); err != nil {
				t.Fatalf("n=%d workers=%d: %v", n, workers, err)
			}
			for i, want := range ref.Arrays["d"].Data {
				got := st.Arrays["d"].Data[i]
				if math.Float64bits(got) != math.Float64bits(want) {
					t.Fatalf("n=%d workers=%d: d[%d] = %v, want %v (not bit-exact)", n, workers, i, got, want)
				}
			}
		}
	}
}

// TestExecParallelNumericRecordMerge asserts record-mode tallies are
// identical whatever the worker count: per-worker private planes merge
// per class.
func TestExecParallelNumericRecordMerge(t *testing.T) {
	r := &peac.Routine{
		Name: "Pnum",
		Params: []peac.Param{
			{Kind: peac.ArrayParam, Name: "a", Reg: 2},
			{Kind: peac.ArrayParam, Name: "b", Reg: 3},
			{Kind: peac.ArrayParam, Name: "d", Reg: 4},
		},
		Body: []peac.Instr{
			{Op: peac.FLODV, A: peac.M(2), D: peac.V(0)},
			{Op: peac.FLODV, A: peac.M(3), D: peac.V(1)},
			{Op: peac.FDIVV, A: peac.V(0), B: peac.V(1), D: peac.V(2)}, // x/0 -> Inf, 0/0 -> NaN
			{Op: peac.FLOGV, A: peac.V(1), D: peac.V(1)},
			{Op: peac.FSTRV, A: peac.V(2), D: peac.M(4)},
		},
	}
	n := 2*chunkSize + 100
	mk := func() *rt.Store {
		return parStore(n, []string{"a", "b", "d"}, func(name string, i int) float64 {
			switch name {
			case "a":
				if i%97 == 0 {
					return 0 // with b==0: NaN
				}
				return 1
			case "b":
				if i%13 == 0 {
					return 0 // divide by zero: Inf (or NaN when a==0 too)
				}
				return 2
			}
			return 0
		})
	}

	run := func(workers int) *rt.Numeric {
		num := &rt.Numeric{Mode: rt.NumericRecord}
		if err := ExecRoutineOpts(context.Background(), r, shape.Of(n), mk(), ExecOpts{Num: num, Subgrid: 8, PEs: 2048, Workers: workers}); err != nil {
			t.Fatalf("workers=%d: %v", workers, err)
		}
		return num
	}
	ref := run(1)
	if ref.Total() == 0 {
		t.Fatal("record run tallied no exceptional lanes; test inputs are broken")
	}
	for _, workers := range []int{2, 4, -1} {
		got := run(workers)
		for cl, c := range ref.NaN {
			if got.NaN[cl] != c {
				t.Errorf("workers=%d: NaN[%s] = %d, want %d", workers, cl, got.NaN[cl], c)
			}
		}
		for cl, c := range ref.Inf {
			if got.Inf[cl] != c {
				t.Errorf("workers=%d: Inf[%s] = %d, want %d", workers, cl, got.Inf[cl], c)
			}
		}
		if got.Total() != ref.Total() {
			t.Errorf("workers=%d: total %d, want %d", workers, got.Total(), ref.Total())
		}
	}
}

// TestExecParallelTrapLowestElement plants exceptional lanes in two
// different chunks and asserts every worker count traps on the same,
// lowest element — the exact error the serial executor returns —
// regardless of which worker finishes first.
func TestExecParallelTrapLowestElement(t *testing.T) {
	r := &peac.Routine{
		Name: "Ptrap",
		Params: []peac.Param{
			{Kind: peac.ArrayParam, Name: "a", Reg: 2},
			{Kind: peac.ArrayParam, Name: "b", Reg: 3},
			{Kind: peac.ArrayParam, Name: "d", Reg: 4},
		},
		Body: []peac.Instr{
			{Op: peac.FLODV, A: peac.M(2), D: peac.V(0)},
			{Op: peac.FLODV, A: peac.M(3), D: peac.V(1)},
			{Op: peac.FDIVV, A: peac.V(0), B: peac.V(1), D: peac.V(2)},
			{Op: peac.FSTRV, A: peac.V(2), D: peac.M(4)},
		},
	}
	n := 4 * chunkSize
	mk := func() *rt.Store {
		return parStore(n, []string{"a", "b", "d"}, func(name string, i int) float64 {
			if name == "b" {
				// Zeros (-> Inf) in chunk 1 and chunk 3.
				if i == chunkSize+123 || i == 3*chunkSize+7 {
					return 0
				}
				return 2
			}
			return 1
		})
	}
	run := func(workers int) error {
		num := &rt.Numeric{Mode: rt.NumericTrap}
		return ExecRoutineOpts(context.Background(), r, shape.Of(n), mk(), ExecOpts{Num: num, Subgrid: 8, PEs: 4096, Workers: workers})
	}
	ref := run(1)
	if ref == nil || !errors.Is(ref, rt.ErrNumeric) {
		t.Fatalf("serial trap error = %v, want rt.ErrNumeric", ref)
	}
	wantElem := "element " + itoaTest(chunkSize+123)
	if !strings.Contains(ref.Error(), wantElem) {
		t.Fatalf("serial trap error %q does not name the lowest exceptional %s", ref, wantElem)
	}
	for _, workers := range []int{2, 8, -1} {
		err := run(workers)
		if err == nil || err.Error() != ref.Error() {
			t.Errorf("workers=%d: trap error %q, want serial error %q", workers, err, ref)
		}
	}
}

// TestExecParallelCanceled asserts a canceled context stops the fan-out
// with an error wrapping rt.ErrCanceled.
func TestExecParallelCanceled(t *testing.T) {
	r := chunkRoutine()
	n := 2 * chunkSize
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	err := ExecRoutineOpts(ctx, r, shape.Of(n), chunkStore(n), ExecOpts{Workers: 2})
	if !errors.Is(err, rt.ErrCanceled) {
		t.Fatalf("err = %v, want rt.ErrCanceled", err)
	}
}

// TestScanNumericPEClamp drives the executor with a subgrid that does
// not tile the shape: the last elements' element/subgrid quotient lands
// past the machine, and the trap attribution must clamp to the last
// real processing element.
func TestScanNumericPEClamp(t *testing.T) {
	r := &peac.Routine{
		Name: "Pclamp",
		Params: []peac.Param{
			{Kind: peac.ArrayParam, Name: "a", Reg: 2},
			{Kind: peac.ArrayParam, Name: "d", Reg: 4},
		},
		Body: []peac.Instr{
			{Op: peac.FLODV, A: peac.M(2), D: peac.V(0)},
			{Op: peac.FLOGV, A: peac.V(0), D: peac.V(1)},
			{Op: peac.FSTRV, A: peac.V(1), D: peac.M(4)},
		},
	}
	const n = 10
	st := parStore(n, []string{"a", "d"}, func(name string, i int) float64 {
		if name == "a" {
			if i == n-1 {
				return -1 // log(-1) = NaN at the last element
			}
			return 1
		}
		return 0
	})
	num := &rt.Numeric{Mode: rt.NumericTrap}
	// Subgrid 1 on a 4-PE machine: element 9's naive quotient is PE 9,
	// which does not exist; attribution must clamp to PE 3.
	err := ExecRoutineOpts(context.Background(), r, shape.Of(n), st, ExecOpts{Num: num, Subgrid: 1, PEs: 4})
	if err == nil || !errors.Is(err, rt.ErrNumeric) {
		t.Fatalf("err = %v, want rt.ErrNumeric", err)
	}
	if !strings.Contains(err.Error(), "processing element 3") {
		t.Fatalf("err = %q, want PE attribution clamped to processing element 3", err)
	}
}

func itoaTest(n int) string {
	if n == 0 {
		return "0"
	}
	var b [20]byte
	i := len(b)
	for n > 0 {
		i--
		b[i] = byte('0' + n%10)
		n /= 10
	}
	return string(b[i:])
}
