package cm2

// The compiled executor: each peac.Routine is translated once into a
// chain of specialized Go closures — one kernel per instruction, with
// operand kinds (VReg/SReg/SpillSlot/chained Mem), masks, IntOp
// variants, and comparison predicates all resolved at build time — and
// the chain is dispatched per 4096-element chunk from the same sharded
// worker pool as the interpreter (ExecRoutineOpts). This is the paper's
// dispatch-amortization story made real: the per-element work is a
// handful of tight monomorphic loops over []float64 lanes instead of an
// instruction-by-instruction switch with per-element operand dispatch.
//
// The compiled path is bit-exact against the interpreter by
// construction:
//
//   - Every lane loop evaluates the identical float64 expression the
//     interpreter's corresponding case evaluates, in the same element
//     order. Scalar (SReg/Const) operands are broadcast once per worker
//     into chunk-sized buffers, which reads the same values the
//     interpreter's broadcast accessor returns.
//   - Modeled cycles are computed analytically in Machine.dispatch
//     before any execution, so the JIT cannot change them.
//   - Error strings are byte-identical: unbound-pointer operands are
//     statically known from the routine's parameter list, so they
//     compile to error kernels that fire at the same instruction
//     position, with the same message, that the interpreter's dynamic
//     lookup produces; data-dependent errors (integer division by
//     zero, numeric traps) use the same per-element check order and
//     the shared scanNumeric formatter.
//   - Numeric-plane tallies use the same scan over the same destination
//     lanes; the class string, mnemonic, and can-trap gate are merely
//     precomputed per instruction instead of per chunk.
//
// The interpreter remains the oracle's reference path; the JIT is
// selected per run (ExecOpts.JIT / Control.ExecJIT) and is gated behind
// the three-way differential oracle and the fault-invariance soak.

import (
	"errors"
	"fmt"
	"math"

	"f90y/internal/peac"
	"f90y/internal/rt"
)

// jitProgram is one routine's compiled form, cached on the routine
// itself (peac.Routine.JIT) so a long-lived artifact compiles at most
// once per process however many runs share it.
type jitProgram struct {
	nregs int // register-file size (mirrors ExecRoutineOpts's sizing)
	// scalarRegs maps each broadcast buffer (dense index) to the scalar
	// register it materializes; bindScalars fills the buffers per worker.
	scalarRegs []int
	kernels    []jitKernel
	// opt is the load-elided variant of the chain (see planLoadElim):
	// FLODV copies whose register reads can all be redirected to
	// zero-copy array windows compile to nothing, and the readers read
	// the arrays in place. Valid only when none of the plan's hazard
	// stream pairs alias at dispatch (jitEnv.elimOK); nil when the plan
	// found nothing to elide.
	opt []jitKernel
	// hazards are the (loaded stream, stored stream) pairs whose
	// aliasing would let a store change what an elided load would have
	// copied; ExecRoutineOpts checks them against the actual bindings
	// once per dispatch.
	hazards [][2]int
	// sunk lists the stream registers whose stores were sunk into their
	// producer kernels (see planFuse). A sunk store bypasses StoreLanes,
	// which is only a plain copy for Real arrays, so ExecRoutineOpts
	// re-checks the bound arrays' kinds once per dispatch.
	sunk []int
	// optNumOff marks an opt chain containing fused or sunk kernels,
	// which skip the numeric-plane scan an intermediate destination
	// would have received; such a chain is only selected when the plane
	// is inactive.
	optNumOff bool
	// pure marks a chain with no error kernels — static (unbound
	// pointer, unimplemented opcode) or data-dependent (IntOp divide and
	// mod). A pure chain cannot fail, which licenses the cache-tiled
	// execution order in execChunk.
	pure bool
}

// jitEnv is the per-worker execution context a kernel chain runs in:
// the pooled workspace, the run's stream bindings, and the chunk
// window. One env per worker, re-windowed per chunk.
type jitEnv struct {
	ws *workspace
	// streams is indexed directly by pointer register — a dense slice
	// rather than the dispatcher's map, because kernels hit it once per
	// strip and the map hash showed up in profiles.
	streams     []stream
	start, w    int
	ext, lo     []int
	strideBelow []int
	num         *rt.Numeric
	subgrid     int
	npes        int
	// optOK reports that this dispatch's bindings satisfy the opt
	// chain's preconditions: none of the program's hazard stream pairs
	// bind the same array (a store through one of the paired registers
	// then provably cannot change what the other's elided load would
	// have copied), and every sunk store's array is Real, so the
	// bypassed StoreLanes would have been a plain copy.
	optOK bool
}

// jitKernel executes one instruction over the env's chunk window.
type jitKernel func(e *jitEnv) error

// jitSrc resolves one source operand to its lane slice for the current
// chunk; the resolution strategy is chosen at build time.
type jitSrc func(e *jitEnv) []float64

// jitZeros is the NoOperand source: the interpreter resolves a missing
// operand to a broadcast zero, so the compiled path reads these
// never-written lanes.
var jitZeros = make([]float64, chunkSize)

// jitFor returns r's compiled program, building and caching it on
// first use. Concurrent first uses may both build (the cache is an
// atomic box, not a once); every build is equivalent, so either result
// serves all callers.
func jitFor(r *peac.Routine) *jitProgram {
	return r.JIT(func(r *peac.Routine) any { return compileRoutine(r) }).(*jitProgram)
}

// compileRoutine translates the routine body into the kernel chain.
// Everything the translation depends on — operand kinds, pointer
// binding and coordinate-ness (fixed by Params), comparison predicates,
// masks, IntOp — is a static property of the routine, so the result is
// valid for every store and shape the routine later runs over.
func compileRoutine(r *peac.Routine) *jitProgram {
	p := &jitProgram{nregs: peac.NumVRegs}
	for _, in := range r.Body {
		for _, o := range []peac.Operand{in.A, in.B, in.C, in.D} {
			if o.Kind == peac.VReg && o.N >= p.nregs {
				p.nregs = o.N + 1
			}
		}
	}
	b := &jitBuilder{prog: p, coord: map[int]bool{}, bound: map[int]bool{}, bcast: map[int]int{}}
	for _, pa := range r.Params {
		switch pa.Kind {
		case peac.ArrayParam:
			b.bound[pa.Reg] = true
		case peac.CoordParam:
			b.bound[pa.Reg] = true
			b.coord[pa.Reg] = true
		}
	}
	for idx, in := range r.Body {
		if k := b.instr(idx, in); k != nil {
			p.kernels = append(p.kernels, k)
		}
	}
	p.pure = !b.impure
	if plan := planOpt(r, b.bound, b.coord); plan != nil {
		b2 := &jitBuilder{prog: p, coord: b.coord, bound: b.bound, bcast: b.bcast, plan: plan}
		for idx, in := range r.Body {
			if k := b2.instr(idx, in); k != nil {
				p.opt = append(p.opt, k)
			}
		}
		p.hazards = plan.hazards
		p.sunk = plan.sunk
		p.optNumOff = len(plan.fuse) > 0 || len(plan.sink) > 0
	}
	return p
}

// planOpt assembles the opt chain's plan: dead-load elimination first
// (its elided set defines the effective kernel order), then pair fusion
// and store sinking over that order. Nil when no optimization applies,
// in which case the reference chain is the only chain.
func planOpt(r *peac.Routine, bound, coord map[int]bool) *elimPlan {
	plan := planLoadElim(r, bound, coord)
	if plan == nil {
		plan = &elimPlan{elide: map[int]bool{}, redirect: map[[2]int]int{}}
	}
	plan.fuse = map[int]fusedPair{}
	plan.skip = map[int]bool{}
	plan.sink = map[int]int{}
	planFuse(r, bound, coord, plan)
	if len(plan.elide) == 0 && len(plan.fuse) == 0 && len(plan.sink) == 0 {
		return nil
	}
	return plan
}

// planLoadElim finds the routine's dead loads: an FLODV from a plain
// array stream whose destination register is only read before the next
// write of that register, with no store back to the same stream before
// any of those reads. Each such load's copy is elided and its reads are
// redirected to the array window itself — the values are identical
// because a window read at kernel time sees exactly what the elided
// copy would have captured: kernels run in instruction order, a store
// to this stream only happens after the last redirected read, and a
// store to a different stream in between cannot touch this array unless
// the two streams bind the same array — each such (load, store) stream
// pair is recorded as a hazard for ExecRoutineOpts to check against the
// actual bindings once per dispatch. Returns nil when nothing elides.
type elimPlan struct {
	elide    map[int]bool   // body index of an FLODV with no kernel
	redirect map[[2]int]int // (body index, source position A=0/B=1/C=2) -> stream reg
	hazards  [][2]int       // (loaded stream, stored stream) pairs that must not alias
	// Fusion and sinking (planFuse) over the effective kernel order:
	fuse map[int]fusedPair // first body index -> the pair it absorbs
	skip map[int]bool      // body indices absorbed into an earlier kernel
	sink map[int]int       // producer body index -> stream reg its dst writes through
	sunk []int             // all sink target streams (dispatch checks their kind)
}

// fusedPair records that the instruction at body index j consumes this
// instruction's destination register t in exactly one operand position
// (accLeft: jn.A is t; otherwise jn.B is t) and t is dead afterwards, so
// the two compile to one loop that keeps t in a machine register.
type fusedPair struct {
	j       int
	jn      peac.Instr
	accLeft bool
}

// regSrcs returns an instruction's register-source positions — the
// operands the interpreter reads before writing the destination.
func regSrcs(in peac.Instr) [3]peac.Operand {
	var srcs [3]peac.Operand
	switch in.Op {
	case peac.FLODV, peac.RESTV: // no register sources
	case peac.SPILLV:
		srcs[0] = in.A
	case peac.FSTRV:
		srcs[0], srcs[2] = in.A, in.C
	default:
		srcs[0], srcs[1], srcs[2] = in.A, in.B, in.C
	}
	return srcs
}

// regDeadAfter reports that register reg is never read after body index
// after before its next write (or the end of the routine).
func regDeadAfter(r *peac.Routine, reg, after int) bool {
	for j := after + 1; j < len(r.Body); j++ {
		jn := r.Body[j]
		if jn.Op == peac.NOP || jn.Op == peac.JNZ {
			continue
		}
		for _, o := range regSrcs(jn) {
			if o.Kind == peac.VReg && o.N == reg {
				return false
			}
		}
		if jn.D.Kind == peac.VReg && jn.D.N == reg {
			return true
		}
	}
	return true
}

// planFuse extends the plan with pair fusion and store sinking, both
// over the effective kernel order (NOP, JNZ, and elided loads emit no
// kernels, so instructions separated only by those are adjacent: nothing
// executes between their kernels).
//
// Pair fusion: two adjacent add/sub/mul/div kernels where the second
// reads the first's destination register t in exactly one operand and t
// is dead afterwards compile to one loop — t lives in a machine register
// per element instead of round-tripping through a workspace vector. The
// loop computes t with an explicit float64 conversion, which the spec
// guarantees rounds the intermediate exactly as the interpreter's
// register write does (no FMA contraction), so the fused result is
// bit-identical.
//
// Store sinking: a kernel whose destination register feeds only an
// immediately-following unmasked FSTRV (and is dead afterwards) writes
// the target array window directly and the FSTRV emits no kernel. The
// array receives values at the same per-element point in the chain —
// the two kernels were adjacent — and StoreLanes is a plain copy for
// Real arrays, which the dispatch-time kind check (jitProgram.sunk)
// guarantees before the opt chain is selected. IntOp divide/mod never
// sink: their mid-loop error must not leave partial array writes the
// interpreter's register destination would have absorbed.
//
// Both transforms skip the fused-away intermediate's numeric-plane scan,
// so a plan with any of them pins the opt chain to numeric-off runs
// (jitProgram.optNumOff).
func planFuse(r *peac.Routine, bound, coord map[int]bool, plan *elimPlan) {
	var eff []int
	for idx, in := range r.Body {
		if in.Op == peac.NOP || in.Op == peac.JNZ || plan.elide[idx] {
			continue
		}
		eff = append(eff, idx)
	}
	clean := func(in peac.Instr) bool {
		for _, o := range []peac.Operand{in.A, in.B, in.C} {
			if o.Kind == peac.Mem && !bound[o.N] {
				return false // would compile to an error kernel
			}
		}
		return true
	}
	canFuse := func(in peac.Instr) bool {
		switch in.Op {
		case peac.FADDV, peac.FSUBV, peac.FMULV:
		case peac.FDIVV:
			if in.IntOp {
				return false // data-dependent error kernel
			}
		default:
			return false
		}
		return in.D.Kind == peac.VReg && clean(in)
	}
	for k := 0; k+1 < len(eff); k++ {
		i, j := eff[k], eff[k+1]
		a, c := r.Body[i], r.Body[j]
		if !canFuse(a) || !canFuse(c) {
			continue
		}
		t := a.D.N
		accA := c.A.Kind == peac.VReg && c.A.N == t
		accB := c.B.Kind == peac.VReg && c.B.N == t
		if accA == accB {
			continue // t must appear in exactly one position
		}
		if !(c.D.Kind == peac.VReg && c.D.N == t) && !regDeadAfter(r, t, j) {
			continue
		}
		plan.fuse[i] = fusedPair{j: j, jn: c, accLeft: accA}
		plan.skip[j] = true
		k++ // j is consumed; the next candidate pair starts after it
	}
	for k := 0; k < len(eff); k++ {
		i := eff[k]
		if plan.skip[i] {
			continue
		}
		in := r.Body[i]
		switch in.Op {
		case peac.FLODV, peac.RESTV, peac.SPILLV, peac.FSTRV:
			continue
		case peac.FDIVV, peac.FMODV:
			if in.IntOp {
				continue
			}
		}
		d := in.D
		if fp, ok := plan.fuse[i]; ok {
			d = fp.jn.D
		}
		if d.Kind != peac.VReg {
			continue
		}
		kk := k + 1
		for kk < len(eff) && plan.skip[eff[kk]] {
			kk++
		}
		if kk >= len(eff) {
			continue
		}
		j2 := eff[kk]
		sn := r.Body[j2]
		if sn.Op != peac.FSTRV || sn.C.Kind != peac.NoOperand {
			continue
		}
		if !(sn.A.Kind == peac.VReg && sn.A.N == d.N) {
			continue
		}
		if !bound[sn.D.N] || coord[sn.D.N] {
			continue // the store itself would be an error kernel
		}
		if !regDeadAfter(r, d.N, j2) {
			continue
		}
		plan.sink[i] = sn.D.N
		plan.skip[j2] = true
		plan.sunk = append(plan.sunk, sn.D.N)
	}
}

func planLoadElim(r *peac.Routine, bound, coord map[int]bool) *elimPlan {
	plan := &elimPlan{elide: map[int]bool{}, redirect: map[[2]int]int{}}
	hazard := map[[2]int]bool{}
	for k, in := range r.Body {
		if in.Op != peac.FLODV || !bound[in.A.N] || coord[in.A.N] {
			continue
		}
		n, d := in.A.N, in.D.N
		var reads [][2]int
		var storesSeen []int // streams stored to so far in the window
		hazardsHit := map[[2]int]bool{}
		ok, stored := true, false
		for j := k + 1; j < len(r.Body) && ok; j++ {
			jn := r.Body[j]
			if jn.Op == peac.NOP || jn.Op == peac.JNZ {
				continue
			}
			// Collect jn's register-source positions (the interpreter
			// reads an instruction's sources before writing its
			// destination, so a self-writing instruction's read still
			// belongs to this load's value).
			for pos, o := range regSrcs(jn) {
				if o.Kind == peac.VReg && o.N == d {
					if stored {
						ok = false // the register copy predates the store; the array no longer does
						break
					}
					reads = append(reads, [2]int{j, pos})
					// Every store already seen could alias this read's
					// array; the dispatch-time check rules it out.
					for _, m := range storesSeen {
						hazardsHit[[2]int{n, m}] = true
					}
				}
			}
			if jn.Op == peac.FSTRV {
				if jn.D.N == n {
					stored = true
				} else {
					storesSeen = append(storesSeen, jn.D.N)
				}
			}
			if jn.D.Kind == peac.VReg && jn.D.N == d {
				break // next write of d: later reads see the new value
			}
		}
		if ok {
			plan.elide[k] = true
			for _, rd := range reads {
				plan.redirect[rd] = n
			}
			for hz := range hazardsHit {
				hazard[hz] = true
			}
		}
	}
	if len(plan.elide) == 0 {
		return nil
	}
	for hz := range hazard {
		plan.hazards = append(plan.hazards, hz)
	}
	return plan
}

// bindScalars fills the workspace's broadcast buffers from the run's
// scalar bindings: one fill per worker per dispatch, after which every
// scalar operand is an ordinary lane vector. An unbound scalar register
// broadcasts 0, exactly like the interpreter's map lookup.
func (p *jitProgram) bindScalars(ws *workspace, scalars map[int]float64) {
	for j, reg := range p.scalarRegs {
		buf := ws.bcast[j]
		v := scalars[reg]
		for i := range buf {
			buf[i] = v
		}
	}
}

// jitStrip is the cache-tiling grain: a pure chain runs all its kernels
// over one strip before advancing, so the lane vectors an instruction
// reads are the ones its predecessor just wrote — still resident in L1
// — instead of streaming every 32 KiB chunk vector through L2 once per
// instruction. 512 lanes keeps a typical live set (a handful of
// registers plus the stream windows) inside a 32–48 KiB L1d.
const jitStrip = 512

// execChunk runs the kernel chain over one chunk window.
//
// A pure chain (no error kernels) with the numeric plane inactive is
// tiled: every kernel is elementwise over [start, start+w) — element
// i's result depends only on same-index lanes of its sources, and
// register lanes are strip-relative in every kernel because all
// indexing derives from e.start/e.w — so running the whole chain per
// strip computes bit-identical values in a cache-friendly order.
// Anything that could observe the order difference (a data-dependent
// error, a numeric trap or tally, which scans whole-chunk destinations
// between instructions) forces the untiled reference order.
func (p *jitProgram) execChunk(e *jitEnv) error {
	numOff := e.num == nil || e.num.Mode == rt.NumericOff
	ks := p.kernels
	if p.opt != nil && e.optOK && (numOff || !p.optNumOff) {
		ks = p.opt
	}
	if p.pure && e.w > jitStrip && numOff {
		start, w := e.start, e.w
		for off := 0; off < w; off += jitStrip {
			e.start = start + off
			e.w = min(jitStrip, w-off)
			for _, k := range ks {
				_ = k(e) // a pure chain cannot error
			}
		}
		e.start, e.w = start, w
		return nil
	}
	for _, k := range ks {
		if err := k(e); err != nil {
			return err
		}
	}
	return nil
}

// jitBuilder carries the per-routine compile state.
type jitBuilder struct {
	prog   *jitProgram
	bound  map[int]bool // pointer reg -> bound by a param
	coord  map[int]bool // pointer reg -> bound to a coordinate stream
	bcast  map[int]int  // scalar reg -> dense broadcast buffer index
	impure bool         // some kernel can return an error
	// plan, when non-nil, compiles the load-elided chain: elided FLODVs
	// emit no kernel and redirected register reads compile to zero-copy
	// array windows. The reference chain compiles with plan == nil.
	plan *elimPlan
}

// streamSrc is the zero-copy window of a plain array stream.
func streamSrc(n int) jitSrc {
	return func(e *jitEnv) []float64 {
		return e.streams[n].arr.Data[e.start : e.start+e.w]
	}
}

// srcAt compiles the source at position pos of instruction idx,
// honoring the elimination plan's redirects.
func (b *jitBuilder) srcAt(idx int, o peac.Operand, pos int) (jitSrc, error) {
	return b.srcAtBuf(idx, o, pos, pos)
}

// srcAtBuf is srcAt with the chained-fetch buffer chosen independently
// of the operand's position: a fused kernel resolves its second
// instruction's operand into buffer 2 so it cannot collide with the
// first instruction's A/B buffers, which are live in the same loop.
func (b *jitBuilder) srcAtBuf(idx int, o peac.Operand, pos, buf int) (jitSrc, error) {
	if b.plan != nil {
		if n, ok := b.plan.redirect[[2]int{idx, pos}]; ok {
			return streamSrc(n), nil
		}
	}
	return b.src(o, buf)
}

// dst compiles an arithmetic destination: the workspace register vector,
// or — when the plan sank the register's only consumer, an unmasked
// store — the target array window itself.
func (b *jitBuilder) dst(idx, dn int) func(e *jitEnv) []float64 {
	if b.plan != nil {
		if s, ok := b.plan.sink[idx]; ok {
			return func(e *jitEnv) []float64 {
				return e.streams[s].arr.Data[e.start : e.start+e.w]
			}
		}
	}
	return func(e *jitEnv) []float64 { return e.ws.regs[dn][:e.w] }
}

func (b *jitBuilder) bcastIdx(n int) int {
	if j, ok := b.bcast[n]; ok {
		return j
	}
	j := len(b.prog.scalarRegs)
	b.bcast[n] = j
	b.prog.scalarRegs = append(b.prog.scalarRegs, n)
	return j
}

// errKernel is an instruction that statically faults: it returns err at
// its position in the chain, preserving the interpreter's execution
// order (instructions before it run, instructions after it do not).
// Any error kernel marks the chain impure, pinning the untiled order.
func (b *jitBuilder) errKernel(err error) jitKernel {
	b.impure = true
	return func(*jitEnv) error { return err }
}

// src compiles one source operand; pos selects the chained-memory fetch
// buffer (A=0, B=1, C=2), matching the interpreter's per-position
// buffers so multi-chained instructions never alias. An unbound Mem
// operand returns the interpreter's chained-load error for the caller
// to turn into an error kernel.
func (b *jitBuilder) src(o peac.Operand, pos int) (jitSrc, error) {
	switch o.Kind {
	case peac.VReg:
		n := o.N
		return func(e *jitEnv) []float64 { return e.ws.regs[n] }, nil
	case peac.SReg:
		j := b.bcastIdx(o.N)
		return func(e *jitEnv) []float64 { return e.ws.bcast[j] }, nil
	case peac.SpillSlot:
		n := o.N
		return func(e *jitEnv) []float64 { return e.ws.slots[n] }, nil
	case peac.Mem:
		n := o.N
		if !b.bound[n] {
			return nil, fmt.Errorf("chained load from unbound pointer aP%d", n)
		}
		if b.coord[n] {
			return func(e *jitEnv) []float64 {
				buf := e.ws.mem[pos]
				coordFill(e.streams[n].coordDim-1, buf, e.start, e.w, e.ext, e.lo, e.strideBelow)
				return buf
			}, nil
		}
		// Plain array stream: the interpreter's fetch is a straight copy
		// of arr.Data[start:start+w] into a buffer, so the kernel can
		// read the array's lanes in place. Safe because lane loops and
		// lane stores only read a source at element i immediately before
		// writing element i (ascending order), which is the identical
		// read-then-write the interpreter's buffered fetch observes —
		// including a store whose source or mask chains the target array
		// itself. Coordinate streams above still materialize: their lanes
		// are computed, not resident.
		return streamSrc(n), nil
	}
	return func(*jitEnv) []float64 { return jitZeros }, nil
}

// coordFill writes a coordinate stream's [start, start+w) window
// without a per-element divide: the coordinate lo+(off/stride)%ext
// advances by one every stride elements and wraps at ext, so the loop
// tracks the quotient incrementally. It produces the same integers
// (hence the same float64 lanes) as fetchMem's direct formula, which
// remains the interpreter's path.
func coordFill(d int, dst []float64, start, w int, ext, lo, strideBelow []int) {
	sb, ex, l := strideBelow[d], ext[d], lo[d]
	q := start / sb
	rem := start - q*sb
	m := q % ex
	v := float64(l + m)
	for i := 0; i < w; i++ {
		dst[i] = v
		rem++
		if rem == sb {
			rem = 0
			m++
			if m == ex {
				m = 0
			}
			v = float64(l + m)
		}
	}
}

// scanStep precomputes the numeric-scan gate for one instruction: the
// can-trap decision, the cycle-class string, and the mnemonic are
// resolved at build time instead of per chunk. Nil for instructions the
// plane never scans.
func scanStep(idx int, in peac.Instr) func(e *jitEnv, dst []float64) error {
	if !peac.CanTrap(in.Op) {
		return nil
	}
	mnem := in.Mnemonic()
	class := peac.ClassOf(in).String()
	return func(e *jitEnv, dst []float64) error {
		if e.num == nil || e.num.Mode == rt.NumericOff {
			return nil
		}
		return scanNumeric(e.num, idx, mnem, class, dst, e.start, e.w, e.subgrid, e.npes)
	}
}

// instr compiles one instruction; nil means no kernel (NOP, JNZ, an
// elided load, or an instruction absorbed into an earlier fused or
// sinking kernel).
func (b *jitBuilder) instr(idx int, in peac.Instr) jitKernel {
	if b.plan != nil && b.plan.skip[idx] {
		return nil
	}
	switch in.Op {
	case peac.JNZ, peac.NOP:
		return nil
	case peac.FLODV:
		n := in.A.N
		if !b.bound[n] {
			return b.errKernel(fmt.Errorf("load from unbound pointer aP%d", n))
		}
		if b.plan != nil && b.plan.elide[idx] {
			return nil // dead load: every read of its register is redirected
		}
		dn := in.D.N
		if b.coord[n] {
			return func(e *jitEnv) error {
				coordFill(e.streams[n].coordDim-1, e.ws.regs[dn], e.start, e.w, e.ext, e.lo, e.strideBelow)
				return nil
			}
		}
		return func(e *jitEnv) error {
			fetchMem(e.streams[n], e.ws.regs[dn], e.start, e.w, e.ext, e.lo, e.strideBelow)
			return nil
		}
	case peac.RESTV:
		an, dn := in.A.N, in.D.N
		return func(e *jitEnv) error {
			copy(e.ws.regs[dn][:e.w], e.ws.slots[an][:e.w])
			return nil
		}
	case peac.SPILLV:
		dn := in.D.N
		src, err := b.srcAt(idx, in.A, 0)
		if err != nil {
			return b.errKernel(err)
		}
		return func(e *jitEnv) error {
			copy(e.ws.slots[dn][:e.w], src(e)[:e.w])
			return nil
		}
	case peac.FSTRV:
		return b.store(idx, in)
	}
	if b.plan != nil {
		if fp, ok := b.plan.fuse[idx]; ok {
			return b.fusedArith(idx, in, fp)
		}
	}
	return b.arith(idx, in)
}

// fusedArith compiles a fused pair (see planFuse): per element,
// t = in.A op1 in.B with an explicit rounding barrier, then
// dst = t op2 other (accLeft) or other op2 t, where dst is the second
// instruction's destination — possibly sunk to an array window. The
// numeric-plane scan of t is skipped, which optNumOff accounts for.
func (b *jitBuilder) fusedArith(idx int, in peac.Instr, fp fusedPair) jitKernel {
	ga, err := b.srcAtBuf(idx, in.A, 0, 0)
	if err != nil {
		return b.errKernel(err)
	}
	gb, err := b.srcAtBuf(idx, in.B, 1, 1)
	if err != nil {
		return b.errKernel(err)
	}
	other, opos := fp.jn.A, 0
	if fp.accLeft {
		other, opos = fp.jn.B, 1
	}
	gz, err := b.srcAtBuf(fp.j, other, opos, 2)
	if err != nil {
		return b.errKernel(err)
	}
	f := fusedOps[fuseKey{in.Op, fp.jn.Op, fp.accLeft}]
	dst := b.dst(idx, fp.jn.D.N)
	return func(e *jitEnv) error {
		f(dst(e), ga(e), gb(e), gz(e))
		return nil
	}
}

// store compiles an FSTRV: target binding checked first (the store
// taxonomy: unbound pointer, then coordinate stream), then the source,
// then the optional mask — the interpreter's resolution order, so the
// first error matches byte for byte.
func (b *jitBuilder) store(idx int, in peac.Instr) jitKernel {
	dn := in.D.N
	if !b.bound[dn] {
		return b.errKernel(fmt.Errorf("store to unbound pointer aP%d", dn))
	}
	if b.coord[dn] {
		return b.errKernel(fmt.Errorf("store to coordinate stream aP%d", dn))
	}
	src, err := b.srcAt(idx, in.A, 0)
	if err != nil {
		return b.errKernel(err)
	}
	if in.C.Kind == peac.NoOperand {
		return func(e *jitEnv) error {
			e.streams[dn].arr.StoreLanes(e.start, src(e)[:e.w])
			return nil
		}
	}
	mask, err := b.srcAt(idx, in.C, 2)
	if err != nil {
		return b.errKernel(err)
	}
	return func(e *jitEnv) error {
		e.streams[dn].arr.StoreLanesMasked(e.start, src(e)[:e.w], mask(e))
		return nil
	}
}

// Data-dependent error values. The strings match the interpreter's
// fmt.Errorf calls exactly; callers wrap with the routine prefix.
var (
	errIntDivZero = errors.New("integer division by zero")
	errIntModZero = errors.New("mod by zero")
)

// arith compiles an arithmetic instruction. Sources resolve in the
// interpreter's A, B, C order — including the unused C of a two-source
// op, whose unbound chained operand must fault identically — then the
// opcode (with its comparison predicate or IntOp variant) selects a
// monomorphic lane loop at build time.
func (b *jitBuilder) arith(idx int, in peac.Instr) jitKernel {
	ga, err := b.srcAt(idx, in.A, 0)
	if err != nil {
		return b.errKernel(err)
	}
	gb, err := b.srcAt(idx, in.B, 1)
	if err != nil {
		return b.errKernel(err)
	}
	gc, err := b.srcAt(idx, in.C, 2)
	if err != nil {
		return b.errKernel(err)
	}

	var (
		f1  func(dst, x []float64)
		f2  func(dst, x, y []float64)
		f2e func(dst, x, y []float64) error
		f3  func(dst, x, y, z []float64)
	)
	switch in.Op {
	case peac.FADDV:
		f2 = lanesAdd
	case peac.FSUBV:
		f2 = lanesSub
	case peac.FMULV:
		f2 = lanesMul
	case peac.FDIVV:
		if in.IntOp {
			f2e = lanesDivInt
			b.impure = true // data-dependent divide-by-zero error
		} else {
			f2 = lanesDiv
		}
	case peac.FMODV:
		if in.IntOp {
			f2e = lanesModInt
			b.impure = true // data-dependent mod-by-zero error
		} else {
			f2 = lanesMod
		}
	case peac.FMINV:
		f2 = lanesMin
	case peac.FMAXV:
		f2 = lanesMax
	case peac.FMADDV:
		f3 = lanesFmadd
	case peac.FMSUBV:
		f3 = lanesFmsub
	case peac.FNEGV:
		f1 = lanesNeg
	case peac.FABSV:
		f1 = lanesAbs
	case peac.FSQRTV:
		f1 = lanesSqrt
	case peac.FSINV:
		f1 = lanesSin
	case peac.FCOSV:
		f1 = lanesCos
	case peac.FTANV:
		f1 = lanesTan
	case peac.FEXPV:
		f1 = lanesExp
	case peac.FLOGV:
		f1 = lanesLog
	case peac.FTRNCV:
		f1 = lanesTrunc
	case peac.FMOVV:
		f1 = lanesMov
	case peac.FNOTV:
		f1 = lanesNot
	case peac.FCMPV:
		switch in.Cmp {
		case peac.CmpEQ:
			f2 = lanesCmpEQ
		case peac.CmpNE:
			f2 = lanesCmpNE
		case peac.CmpLT:
			f2 = lanesCmpLT
		case peac.CmpLE:
			f2 = lanesCmpLE
		case peac.CmpGT:
			f2 = lanesCmpGT
		case peac.CmpGE:
			f2 = lanesCmpGE
		default:
			f2 = lanesFalse // the interpreter's unmatched predicate
		}
	case peac.FANDV:
		f2 = lanesAnd
	case peac.FORV:
		f2 = lanesOr
	case peac.FEQVV:
		f2 = lanesEqv
	case peac.FNEQV:
		f2 = lanesNeqv
	case peac.FSELV:
		f3 = lanesSel
	default:
		return b.errKernel(fmt.Errorf("unimplemented opcode %v", in.Mnemonic()))
	}

	gd := b.dst(idx, in.D.N)
	scan := scanStep(idx, in)
	switch {
	case f1 != nil:
		return func(e *jitEnv) error {
			dst := gd(e)
			f1(dst, ga(e))
			if scan != nil {
				return scan(e, dst)
			}
			return nil
		}
	case f2 != nil:
		return func(e *jitEnv) error {
			dst := gd(e)
			f2(dst, ga(e), gb(e))
			if scan != nil {
				return scan(e, dst)
			}
			return nil
		}
	case f2e != nil:
		return func(e *jitEnv) error {
			dst := gd(e)
			if err := f2e(dst, ga(e), gb(e)); err != nil {
				return err
			}
			if scan != nil {
				return scan(e, dst)
			}
			return nil
		}
	default:
		return func(e *jitEnv) error {
			dst := gd(e)
			f3(dst, ga(e), gb(e), gc(e))
			if scan != nil {
				return scan(e, dst)
			}
			return nil
		}
	}
}

// Lane loops. Each is a monomorphic pass over the chunk window with the
// sources resliced to len(dst) so the compiler drops the bounds checks.
// Loops run in ascending element order and touch only index i per
// step, so a destination register aliasing a source (d = d*s) computes
// exactly what the interpreter's read-then-write of element i computes.

func lanesAdd(dst, x, y []float64) {
	x, y = x[:len(dst)], y[:len(dst)]
	for i := range dst {
		dst[i] = x[i] + y[i]
	}
}

func lanesSub(dst, x, y []float64) {
	x, y = x[:len(dst)], y[:len(dst)]
	for i := range dst {
		dst[i] = x[i] - y[i]
	}
}

func lanesMul(dst, x, y []float64) {
	x, y = x[:len(dst)], y[:len(dst)]
	for i := range dst {
		dst[i] = x[i] * y[i]
	}
}

func lanesDiv(dst, x, y []float64) {
	x, y = x[:len(dst)], y[:len(dst)]
	for i := range dst {
		dst[i] = x[i] / y[i]
	}
}

func lanesDivInt(dst, x, y []float64) error {
	x, y = x[:len(dst)], y[:len(dst)]
	for i := range dst {
		d := y[i]
		if d == 0 {
			return errIntDivZero
		}
		dst[i] = math.Trunc(x[i] / d)
	}
	return nil
}

func lanesMod(dst, x, y []float64) {
	x, y = x[:len(dst)], y[:len(dst)]
	for i := range dst {
		dst[i] = math.Mod(x[i], y[i])
	}
}

func lanesModInt(dst, x, y []float64) error {
	x, y = x[:len(dst)], y[:len(dst)]
	for i := range dst {
		d := y[i]
		if d == 0 {
			return errIntModZero
		}
		v := x[i]
		dst[i] = v - math.Trunc(v/d)*d
	}
	return nil
}

func lanesMin(dst, x, y []float64) {
	x, y = x[:len(dst)], y[:len(dst)]
	for i := range dst {
		dst[i] = math.Min(x[i], y[i])
	}
}

func lanesMax(dst, x, y []float64) {
	x, y = x[:len(dst)], y[:len(dst)]
	for i := range dst {
		dst[i] = math.Max(x[i], y[i])
	}
}

func lanesFmadd(dst, x, y, z []float64) {
	x, y, z = x[:len(dst)], y[:len(dst)], z[:len(dst)]
	for i := range dst {
		dst[i] = x[i]*y[i] + z[i]
	}
}

func lanesFmsub(dst, x, y, z []float64) {
	x, y, z = x[:len(dst)], y[:len(dst)], z[:len(dst)]
	for i := range dst {
		dst[i] = x[i]*y[i] - z[i]
	}
}

func lanesNeg(dst, x []float64) {
	x = x[:len(dst)]
	for i := range dst {
		dst[i] = -x[i]
	}
}

func lanesAbs(dst, x []float64) {
	x = x[:len(dst)]
	for i := range dst {
		dst[i] = math.Abs(x[i])
	}
}

func lanesSqrt(dst, x []float64) {
	x = x[:len(dst)]
	for i := range dst {
		dst[i] = math.Sqrt(x[i])
	}
}

func lanesSin(dst, x []float64) {
	x = x[:len(dst)]
	for i := range dst {
		dst[i] = math.Sin(x[i])
	}
}

func lanesCos(dst, x []float64) {
	x = x[:len(dst)]
	for i := range dst {
		dst[i] = math.Cos(x[i])
	}
}

func lanesTan(dst, x []float64) {
	x = x[:len(dst)]
	for i := range dst {
		dst[i] = math.Tan(x[i])
	}
}

func lanesExp(dst, x []float64) {
	x = x[:len(dst)]
	for i := range dst {
		dst[i] = math.Exp(x[i])
	}
}

func lanesLog(dst, x []float64) {
	x = x[:len(dst)]
	for i := range dst {
		dst[i] = math.Log(x[i])
	}
}

func lanesTrunc(dst, x []float64) {
	x = x[:len(dst)]
	for i := range dst {
		dst[i] = math.Trunc(x[i])
	}
}

func lanesMov(dst, x []float64) {
	copy(dst, x[:len(dst)])
}

func lanesNot(dst, x []float64) {
	x = x[:len(dst)]
	for i := range dst {
		dst[i] = b2f(x[i] == 0)
	}
}

func lanesCmpEQ(dst, x, y []float64) {
	x, y = x[:len(dst)], y[:len(dst)]
	for i := range dst {
		dst[i] = b2f(x[i] == y[i])
	}
}

func lanesCmpNE(dst, x, y []float64) {
	x, y = x[:len(dst)], y[:len(dst)]
	for i := range dst {
		dst[i] = b2f(x[i] != y[i])
	}
}

func lanesCmpLT(dst, x, y []float64) {
	x, y = x[:len(dst)], y[:len(dst)]
	for i := range dst {
		dst[i] = b2f(x[i] < y[i])
	}
}

func lanesCmpLE(dst, x, y []float64) {
	x, y = x[:len(dst)], y[:len(dst)]
	for i := range dst {
		dst[i] = b2f(x[i] <= y[i])
	}
}

func lanesCmpGT(dst, x, y []float64) {
	x, y = x[:len(dst)], y[:len(dst)]
	for i := range dst {
		dst[i] = b2f(x[i] > y[i])
	}
}

func lanesCmpGE(dst, x, y []float64) {
	x, y = x[:len(dst)], y[:len(dst)]
	for i := range dst {
		dst[i] = b2f(x[i] >= y[i])
	}
}

func lanesFalse(dst, _, _ []float64) {
	for i := range dst {
		dst[i] = 0
	}
}

func lanesAnd(dst, x, y []float64) {
	x, y = x[:len(dst)], y[:len(dst)]
	for i := range dst {
		dst[i] = b2f(x[i] != 0 && y[i] != 0)
	}
}

func lanesOr(dst, x, y []float64) {
	x, y = x[:len(dst)], y[:len(dst)]
	for i := range dst {
		dst[i] = b2f(x[i] != 0 || y[i] != 0)
	}
}

func lanesEqv(dst, x, y []float64) {
	x, y = x[:len(dst)], y[:len(dst)]
	for i := range dst {
		dst[i] = b2f((x[i] != 0) == (y[i] != 0))
	}
}

func lanesNeqv(dst, x, y []float64) {
	x, y = x[:len(dst)], y[:len(dst)]
	for i := range dst {
		dst[i] = b2f((x[i] != 0) != (y[i] != 0))
	}
}

func lanesSel(dst, x, y, z []float64) {
	x, y, z = x[:len(dst)], y[:len(dst)], z[:len(dst)]
	for i := range dst {
		if z[i] != 0 {
			dst[i] = x[i]
		} else {
			dst[i] = y[i]
		}
	}
}

// Fused-pair loops. Each computes t = x op1 y — the explicit float64
// conversion is the spec's fusion barrier, pinning the intermediate to
// the exact rounding the interpreter's register write performs — then
// combines t with z on the side the second instruction read the
// register. Operand order is preserved exactly (no commuting), so even
// NaN-payload propagation matches the interpreter.
type fuseKey struct {
	o1, o2  peac.Opcode
	accLeft bool
}

var fusedOps = map[fuseKey]func(dst, x, y, z []float64){
	{peac.FADDV, peac.FADDV, true}:  fuseAddAddL,
	{peac.FADDV, peac.FADDV, false}: fuseAddAddR,
	{peac.FADDV, peac.FSUBV, true}:  fuseAddSubL,
	{peac.FADDV, peac.FSUBV, false}: fuseAddSubR,
	{peac.FADDV, peac.FMULV, true}:  fuseAddMulL,
	{peac.FADDV, peac.FMULV, false}: fuseAddMulR,
	{peac.FADDV, peac.FDIVV, true}:  fuseAddDivL,
	{peac.FADDV, peac.FDIVV, false}: fuseAddDivR,
	{peac.FSUBV, peac.FADDV, true}:  fuseSubAddL,
	{peac.FSUBV, peac.FADDV, false}: fuseSubAddR,
	{peac.FSUBV, peac.FSUBV, true}:  fuseSubSubL,
	{peac.FSUBV, peac.FSUBV, false}: fuseSubSubR,
	{peac.FSUBV, peac.FMULV, true}:  fuseSubMulL,
	{peac.FSUBV, peac.FMULV, false}: fuseSubMulR,
	{peac.FSUBV, peac.FDIVV, true}:  fuseSubDivL,
	{peac.FSUBV, peac.FDIVV, false}: fuseSubDivR,
	{peac.FMULV, peac.FADDV, true}:  fuseMulAddL,
	{peac.FMULV, peac.FADDV, false}: fuseMulAddR,
	{peac.FMULV, peac.FSUBV, true}:  fuseMulSubL,
	{peac.FMULV, peac.FSUBV, false}: fuseMulSubR,
	{peac.FMULV, peac.FMULV, true}:  fuseMulMulL,
	{peac.FMULV, peac.FMULV, false}: fuseMulMulR,
	{peac.FMULV, peac.FDIVV, true}:  fuseMulDivL,
	{peac.FMULV, peac.FDIVV, false}: fuseMulDivR,
	{peac.FDIVV, peac.FADDV, true}:  fuseDivAddL,
	{peac.FDIVV, peac.FADDV, false}: fuseDivAddR,
	{peac.FDIVV, peac.FSUBV, true}:  fuseDivSubL,
	{peac.FDIVV, peac.FSUBV, false}: fuseDivSubR,
	{peac.FDIVV, peac.FMULV, true}:  fuseDivMulL,
	{peac.FDIVV, peac.FMULV, false}: fuseDivMulR,
	{peac.FDIVV, peac.FDIVV, true}:  fuseDivDivL,
	{peac.FDIVV, peac.FDIVV, false}: fuseDivDivR,
}

func fuseAddAddL(dst, x, y, z []float64) {
	x, y, z = x[:len(dst)], y[:len(dst)], z[:len(dst)]
	for i := range dst {
		dst[i] = float64(x[i]+y[i]) + z[i]
	}
}

func fuseAddAddR(dst, x, y, z []float64) {
	x, y, z = x[:len(dst)], y[:len(dst)], z[:len(dst)]
	for i := range dst {
		dst[i] = z[i] + float64(x[i]+y[i])
	}
}

func fuseAddSubL(dst, x, y, z []float64) {
	x, y, z = x[:len(dst)], y[:len(dst)], z[:len(dst)]
	for i := range dst {
		dst[i] = float64(x[i]+y[i]) - z[i]
	}
}

func fuseAddSubR(dst, x, y, z []float64) {
	x, y, z = x[:len(dst)], y[:len(dst)], z[:len(dst)]
	for i := range dst {
		dst[i] = z[i] - float64(x[i]+y[i])
	}
}

func fuseAddMulL(dst, x, y, z []float64) {
	x, y, z = x[:len(dst)], y[:len(dst)], z[:len(dst)]
	for i := range dst {
		dst[i] = float64(x[i]+y[i]) * z[i]
	}
}

func fuseAddMulR(dst, x, y, z []float64) {
	x, y, z = x[:len(dst)], y[:len(dst)], z[:len(dst)]
	for i := range dst {
		dst[i] = z[i] * float64(x[i]+y[i])
	}
}

func fuseAddDivL(dst, x, y, z []float64) {
	x, y, z = x[:len(dst)], y[:len(dst)], z[:len(dst)]
	for i := range dst {
		dst[i] = float64(x[i]+y[i]) / z[i]
	}
}

func fuseAddDivR(dst, x, y, z []float64) {
	x, y, z = x[:len(dst)], y[:len(dst)], z[:len(dst)]
	for i := range dst {
		dst[i] = z[i] / float64(x[i]+y[i])
	}
}

func fuseSubAddL(dst, x, y, z []float64) {
	x, y, z = x[:len(dst)], y[:len(dst)], z[:len(dst)]
	for i := range dst {
		dst[i] = float64(x[i]-y[i]) + z[i]
	}
}

func fuseSubAddR(dst, x, y, z []float64) {
	x, y, z = x[:len(dst)], y[:len(dst)], z[:len(dst)]
	for i := range dst {
		dst[i] = z[i] + float64(x[i]-y[i])
	}
}

func fuseSubSubL(dst, x, y, z []float64) {
	x, y, z = x[:len(dst)], y[:len(dst)], z[:len(dst)]
	for i := range dst {
		dst[i] = float64(x[i]-y[i]) - z[i]
	}
}

func fuseSubSubR(dst, x, y, z []float64) {
	x, y, z = x[:len(dst)], y[:len(dst)], z[:len(dst)]
	for i := range dst {
		dst[i] = z[i] - float64(x[i]-y[i])
	}
}

func fuseSubMulL(dst, x, y, z []float64) {
	x, y, z = x[:len(dst)], y[:len(dst)], z[:len(dst)]
	for i := range dst {
		dst[i] = float64(x[i]-y[i]) * z[i]
	}
}

func fuseSubMulR(dst, x, y, z []float64) {
	x, y, z = x[:len(dst)], y[:len(dst)], z[:len(dst)]
	for i := range dst {
		dst[i] = z[i] * float64(x[i]-y[i])
	}
}

func fuseSubDivL(dst, x, y, z []float64) {
	x, y, z = x[:len(dst)], y[:len(dst)], z[:len(dst)]
	for i := range dst {
		dst[i] = float64(x[i]-y[i]) / z[i]
	}
}

func fuseSubDivR(dst, x, y, z []float64) {
	x, y, z = x[:len(dst)], y[:len(dst)], z[:len(dst)]
	for i := range dst {
		dst[i] = z[i] / float64(x[i]-y[i])
	}
}

func fuseMulAddL(dst, x, y, z []float64) {
	x, y, z = x[:len(dst)], y[:len(dst)], z[:len(dst)]
	for i := range dst {
		dst[i] = float64(x[i]*y[i]) + z[i]
	}
}

func fuseMulAddR(dst, x, y, z []float64) {
	x, y, z = x[:len(dst)], y[:len(dst)], z[:len(dst)]
	for i := range dst {
		dst[i] = z[i] + float64(x[i]*y[i])
	}
}

func fuseMulSubL(dst, x, y, z []float64) {
	x, y, z = x[:len(dst)], y[:len(dst)], z[:len(dst)]
	for i := range dst {
		dst[i] = float64(x[i]*y[i]) - z[i]
	}
}

func fuseMulSubR(dst, x, y, z []float64) {
	x, y, z = x[:len(dst)], y[:len(dst)], z[:len(dst)]
	for i := range dst {
		dst[i] = z[i] - float64(x[i]*y[i])
	}
}

func fuseMulMulL(dst, x, y, z []float64) {
	x, y, z = x[:len(dst)], y[:len(dst)], z[:len(dst)]
	for i := range dst {
		dst[i] = float64(x[i]*y[i]) * z[i]
	}
}

func fuseMulMulR(dst, x, y, z []float64) {
	x, y, z = x[:len(dst)], y[:len(dst)], z[:len(dst)]
	for i := range dst {
		dst[i] = z[i] * float64(x[i]*y[i])
	}
}

func fuseMulDivL(dst, x, y, z []float64) {
	x, y, z = x[:len(dst)], y[:len(dst)], z[:len(dst)]
	for i := range dst {
		dst[i] = float64(x[i]*y[i]) / z[i]
	}
}

func fuseMulDivR(dst, x, y, z []float64) {
	x, y, z = x[:len(dst)], y[:len(dst)], z[:len(dst)]
	for i := range dst {
		dst[i] = z[i] / float64(x[i]*y[i])
	}
}

func fuseDivAddL(dst, x, y, z []float64) {
	x, y, z = x[:len(dst)], y[:len(dst)], z[:len(dst)]
	for i := range dst {
		dst[i] = float64(x[i]/y[i]) + z[i]
	}
}

func fuseDivAddR(dst, x, y, z []float64) {
	x, y, z = x[:len(dst)], y[:len(dst)], z[:len(dst)]
	for i := range dst {
		dst[i] = z[i] + float64(x[i]/y[i])
	}
}

func fuseDivSubL(dst, x, y, z []float64) {
	x, y, z = x[:len(dst)], y[:len(dst)], z[:len(dst)]
	for i := range dst {
		dst[i] = float64(x[i]/y[i]) - z[i]
	}
}

func fuseDivSubR(dst, x, y, z []float64) {
	x, y, z = x[:len(dst)], y[:len(dst)], z[:len(dst)]
	for i := range dst {
		dst[i] = z[i] - float64(x[i]/y[i])
	}
}

func fuseDivMulL(dst, x, y, z []float64) {
	x, y, z = x[:len(dst)], y[:len(dst)], z[:len(dst)]
	for i := range dst {
		dst[i] = float64(x[i]/y[i]) * z[i]
	}
}

func fuseDivMulR(dst, x, y, z []float64) {
	x, y, z = x[:len(dst)], y[:len(dst)], z[:len(dst)]
	for i := range dst {
		dst[i] = z[i] * float64(x[i]/y[i])
	}
}

func fuseDivDivL(dst, x, y, z []float64) {
	x, y, z = x[:len(dst)], y[:len(dst)], z[:len(dst)]
	for i := range dst {
		dst[i] = float64(x[i]/y[i]) / z[i]
	}
}

func fuseDivDivR(dst, x, y, z []float64) {
	x, y, z = x[:len(dst)], y[:len(dst)], z[:len(dst)]
	for i := range dst {
		dst[i] = z[i] / float64(x[i]/y[i])
	}
}
