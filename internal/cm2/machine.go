// Package cm2 models the Connection Machine CM/2 in the slicewise
// programming model (§2.2): up to 2,048 processing elements, each a
// Weitek WTL3164 64-bit FPU programmed as a four-wide vector processor,
// driven synchronously by a sequencer fed from a SPARC front end.
//
// The machine executes partitioned programs: the host program runs on the
// host VM, computation blocks execute as PEAC routines over blockwise
// subgrids with a calibrated per-instruction cycle model, and
// communication goes through the CM runtime cost model. Execution is
// functionally exact (results match the reference interpreter) while
// cycles are accounted analytically per PE.
package cm2

import (
	"fmt"

	"f90y/internal/fe"
	"f90y/internal/hostvm"
	"f90y/internal/nir"
	"f90y/internal/obs"
	"f90y/internal/peac"
	"f90y/internal/rt"
	"f90y/internal/shape"
)

// Machine is one CM/2 configuration.
type Machine struct {
	// PEs is the number of slicewise processing elements (2,048 on a full
	// 64K-processor CM/2). Must be a power of two.
	PEs int
	// ClockHz is the sequencer/Weitek clock (7 MHz).
	ClockHz float64
	// PECost is the PEAC instruction cycle model.
	PECost peac.CostModel
	// CommCost is the runtime communication model.
	CommCost rt.CommCost
	// HostCost is the front-end model.
	HostCost hostvm.Cost
}

// Default returns the full-size calibrated CM/2.
func Default() *Machine {
	return &Machine{
		PEs:      2048,
		ClockHz:  7e6,
		PECost:   peac.DefaultCost,
		CommCost: rt.DefaultCommCost,
		HostCost: hostvm.DefaultCost,
	}
}

// Result is the outcome of one program execution.
type Result struct {
	Output  []string
	Store   *rt.Store
	Stopped bool

	HostCycles float64
	PECycles   float64
	CommCycles float64
	Flops      int64
	NodeCalls  int
	CommCalls  int
	ClockHz    float64

	// Cycle attribution (§5.2/§6): each map's values sum exactly to the
	// corresponding total above.
	//
	// PEClassCycles attributes PECycles per PEAC instruction class
	// (peac.CycleClass names: vector-arith, divide, sqrt, transcend,
	// load-store, spill, loop).
	PEClassCycles map[string]float64
	// PERoutineCycles attributes PECycles per PEAC routine.
	PERoutineCycles map[string]float64
	// CommClassCycles attributes CommCycles per runtime network
	// (rt.CommGrid, rt.CommRouter, rt.CommReduce).
	CommClassCycles map[string]float64
	// HostClassCycles attributes HostCycles per front-end activity
	// (hostvm.HostIssue, HostScalar, HostElem, HostDispatch).
	HostClassCycles map[string]float64
}

// TotalCycles is the modeled end-to-end cycle count; host, node, and
// communication time are serialized, as in the synchronous SIMD model.
func (r *Result) TotalCycles() float64 {
	return r.HostCycles + r.PECycles + r.CommCycles
}

// Seconds is the modeled wall time.
func (r *Result) Seconds() float64 { return r.TotalCycles() / r.ClockHz }

// GFLOPS is the modeled sustained rate.
func (r *Result) GFLOPS() float64 {
	s := r.Seconds()
	if s == 0 {
		return 0
	}
	return float64(r.Flops) / s / 1e9
}

// Run executes a partitioned program on the machine.
func (m *Machine) Run(prog *fe.Program) (*Result, error) {
	return m.RunObs(prog, nil, nil)
}

// RunOn executes against a caller-prepared store (pre-initialized data).
func (m *Machine) RunOn(prog *fe.Program, store *rt.Store) (*Result, error) {
	return m.RunObs(prog, store, nil)
}

// RunObs executes a partitioned program, reporting telemetry to rec (a
// nil recorder costs one branch per dispatch). A nil store means a
// fresh store initialized from the program's symbols.
func (m *Machine) RunObs(prog *fe.Program, store *rt.Store, rec obs.Recorder) (*Result, error) {
	if store == nil {
		store = rt.NewStore(prog.Syms)
	}
	comm := &rt.Comm{Store: store, PEs: m.PEs, Cost: m.CommCost}
	res := &Result{
		Store:           store,
		ClockHz:         m.ClockHz,
		PEClassCycles:   map[string]float64{},
		PERoutineCycles: map[string]float64{},
	}

	hooks := hostvm.Hooks{
		Dispatch: func(r *peac.Routine, over shape.Shape) error {
			return m.dispatch(r, over, store, res, rec)
		},
		Comm: func(mv nir.Move) error { return comm.ExecMove(mv) },
	}
	vm, err := hostvm.Run(prog, store, m.HostCost, hooks)
	if err != nil {
		return nil, err
	}
	res.Output = vm.Output
	res.Stopped = vm.Stopped()
	res.HostCycles = vm.Cycles
	res.CommCycles = comm.Cycles
	res.CommCalls = comm.Calls
	res.HostClassCycles = vm.ClassCycles()
	res.CommClassCycles = map[string]float64{}
	for _, cl := range rt.CommClasses {
		res.CommClassCycles[cl] = comm.ClassCycles[cl]
	}
	res.emit(rec)
	return res, nil
}

// emit reports the execution result as counters.
func (res *Result) emit(rec obs.Recorder) {
	if rec == nil {
		return
	}
	obs.Add(rec, "exec/host-cycles", res.HostCycles)
	obs.Add(rec, "exec/pe-cycles", res.PECycles)
	obs.Add(rec, "exec/comm-cycles", res.CommCycles)
	obs.Add(rec, "exec/flops", float64(res.Flops))
	obs.Add(rec, "exec/node-calls", float64(res.NodeCalls))
	obs.Add(rec, "exec/comm-calls", float64(res.CommCalls))
	for cl, v := range res.PEClassCycles {
		obs.Add(rec, "exec/pe/"+cl, v)
	}
	for cl, v := range res.CommClassCycles {
		obs.Add(rec, "exec/comm/"+cl, v)
	}
	for cl, v := range res.HostClassCycles {
		obs.Add(rec, "exec/host/"+cl, v)
	}
	for name, v := range res.PERoutineCycles {
		obs.Add(rec, "exec/routine/"+name, v)
	}
}

// dispatch runs one PEAC routine over its shape, charging the cycle model
// and executing it functionally over the stored arrays.
func (m *Machine) dispatch(r *peac.Routine, over shape.Shape, store *rt.Store, res *Result, rec obs.Recorder) error {
	if over == nil {
		return fmt.Errorf("cm2: node routine %s without a shape", r.Name)
	}
	layout := shape.Blockwise(over, m.PEs)
	sub := layout.SubgridSize()
	cyc := float64(m.PECost.RoutineCycles(r, sub))
	res.PECycles += cyc
	res.PERoutineCycles[r.Name] += cyc
	itersPerPE := (sub + peac.VectorWidth - 1) / peac.VectorWidth
	if itersPerPE > 0 {
		byClass := m.PECost.BodyCyclesByClass(r.Body)
		for cl, n := range byClass {
			if n != 0 {
				res.PEClassCycles[peac.CycleClass(cl).String()] += float64(n * itersPerPE)
			}
		}
	}
	res.Flops += int64(r.FlopsPerIteration()) * int64(itersPerPE) * int64(layout.PEsUsed())
	res.NodeCalls++
	obs.Observe(rec, "cm2/dispatch-cycles", cyc)
	return ExecRoutine(r, over, store)
}
