// Package cm2 models the Connection Machine CM/2 in the slicewise
// programming model (§2.2): up to 2,048 processing elements, each a
// Weitek WTL3164 64-bit FPU programmed as a four-wide vector processor,
// driven synchronously by a sequencer fed from a SPARC front end.
//
// The machine executes partitioned programs: the host program runs on the
// host VM, computation blocks execute as PEAC routines over blockwise
// subgrids with a calibrated per-instruction cycle model, and
// communication goes through the CM runtime cost model. Execution is
// functionally exact (results match the reference interpreter) while
// cycles are accounted analytically per PE.
package cm2

import (
	"context"
	"fmt"

	"f90y/internal/faults"
	"f90y/internal/fe"
	"f90y/internal/hostvm"
	"f90y/internal/nir"
	"f90y/internal/obs"
	"f90y/internal/peac"
	"f90y/internal/rt"
	"f90y/internal/shape"
	"f90y/internal/source"
)

// DegradeClass is the PE cycle class charged for graceful degradation:
// remapping a dead PE's subgrid onto its buddy and the extra subgrid
// pass every subsequent dispatch pays while PEs are dead (the
// synchronous machine gates on its slowest PE).
const DegradeClass = "degrade"

// Control is the optional execution control plane for a run: fault
// injection, periodic checkpointing, and resume from a snapshot. A nil
// *Control runs the plain path with zero overhead.
type Control struct {
	// Faults drives injection across the host VM, the communication
	// layer, and node dispatch (nil disables injection).
	Faults *faults.Injector
	// CheckpointEvery writes a snapshot after every N top-level host
	// boundaries (ops and top-level serial-DO iterations); zero
	// disables checkpointing.
	CheckpointEvery int
	// Checkpoint receives each snapshot (typically to write to disk).
	Checkpoint func(ck *rt.Checkpoint) error
	// Resume restores a snapshot before execution: the store, the
	// accumulated cycle attribution, and the host resume position.
	Resume *rt.Checkpoint
	// MaxCycles is the watchdog budget: when the modeled cycle total
	// (host + PE + communication) exceeds it, the run is killed
	// deterministically at the next host tick with an error wrapping
	// rt.ErrBudget. Zero disables the watchdog. Resuming a killed run
	// from its last checkpoint with a higher budget continues exactly
	// where the accumulators left off.
	MaxCycles float64
	// Numeric attaches the numeric-exception plane: PE float ops are
	// scanned for NaN/Inf production, which either traps (rt.ErrNumeric
	// with PE and instruction attribution) or is tallied per cycle
	// class. Nil disables the plane.
	Numeric *rt.Numeric
	// ExecWorkers shards every PEAC routine dispatch across a chunk
	// worker pool: 0 and 1 execute serially, n > 1 uses n workers, and
	// a negative value selects GOMAXPROCS. Results — store contents,
	// output, cycle totals, numeric tallies — are bit-exact and
	// invariant under the worker count; only simulator wall-clock
	// changes. The analytic cycle model is computed before dispatch and
	// is untouched by the fan-out.
	ExecWorkers int
	// ExecJIT selects the compiled executor for every routine dispatch:
	// each PEAC routine is translated once into specialized Go closures
	// (see cm2/jit.go) instead of being interpreted per chunk. Results,
	// error strings, modeled cycles, and numeric tallies are
	// bit-identical to the interpreter under every ExecWorkers value;
	// only simulator wall-clock changes.
	ExecJIT bool
}

// Machine is one CM/2 configuration.
type Machine struct {
	// PEs is the number of slicewise processing elements (2,048 on a full
	// 64K-processor CM/2). Must be a power of two.
	PEs int
	// ClockHz is the sequencer/Weitek clock (7 MHz).
	ClockHz float64
	// PECost is the PEAC instruction cycle model.
	PECost peac.CostModel
	// CommCost is the runtime communication model.
	CommCost rt.CommCost
	// HostCost is the front-end model.
	HostCost hostvm.Cost
}

// Default returns the full-size calibrated CM/2.
func Default() *Machine {
	return &Machine{
		PEs:      2048,
		ClockHz:  7e6,
		PECost:   peac.DefaultCost,
		CommCost: rt.DefaultCommCost,
		HostCost: hostvm.DefaultCost,
	}
}

// Result is the outcome of one program execution.
type Result struct {
	Output  []string
	Store   *rt.Store
	Stopped bool

	HostCycles float64
	PECycles   float64
	CommCycles float64
	Flops      int64
	NodeCalls  int
	CommCalls  int
	ClockHz    float64

	// Cycle attribution (§5.2/§6): each map's values sum exactly to the
	// corresponding total above.
	//
	// PEClassCycles attributes PECycles per PEAC instruction class
	// (peac.CycleClass names: vector-arith, divide, sqrt, transcend,
	// load-store, spill, loop).
	PEClassCycles map[string]float64
	// PERoutineCycles attributes PECycles per PEAC routine.
	PERoutineCycles map[string]float64
	// PELineCycles attributes PECycles per (routine, source line, class)
	// cell, keyed by the provenance threaded from the Fortran front end
	// through PEAC. Its values sum exactly to PECycles, and the per-class
	// marginals equal PEClassCycles. The attribution is computed from the
	// analytic model before dispatch, so it is bit-identical for every
	// ExecWorkers setting.
	PELineCycles map[rt.LineRef]float64
	// CommClassCycles attributes CommCycles per runtime network
	// (rt.CommGrid, rt.CommRouter, rt.CommReduce).
	CommClassCycles map[string]float64
	// CommLineCycles attributes CommCycles per (source line, network
	// class) cell under the rt.CommRoutine pseudo-routine; its values
	// sum exactly to CommCycles. Merge with PELineCycles (see
	// rt.MergeLineMaps) for a whole-machine per-line profile.
	CommLineCycles map[rt.LineRef]float64
	// HostClassCycles attributes HostCycles per front-end activity
	// (hostvm.HostIssue, HostScalar, HostElem, HostDispatch, and
	// HostStall when stalls were injected).
	HostClassCycles map[string]float64

	// Faults reports what the fault plane injected and how the runtime
	// recovered; nil when the run had no injector attached.
	Faults *faults.Stats

	// Numeric is the numeric-exception plane's per-class NaN/Inf tally;
	// nil when no plane was attached (see Control.Numeric).
	Numeric *rt.Numeric
}

// TotalCycles is the modeled end-to-end cycle count; host, node, and
// communication time are serialized, as in the synchronous SIMD model.
func (r *Result) TotalCycles() float64 {
	return r.HostCycles + r.PECycles + r.CommCycles
}

// Seconds is the modeled wall time.
func (r *Result) Seconds() float64 { return r.TotalCycles() / r.ClockHz }

// GFLOPS is the modeled sustained rate.
func (r *Result) GFLOPS() float64 {
	s := r.Seconds()
	if s == 0 {
		return 0
	}
	return float64(r.Flops) / s / 1e9
}

// Run executes a partitioned program on the machine.
func (m *Machine) Run(prog *fe.Program) (*Result, error) {
	return m.RunObs(prog, nil, nil)
}

// RunOn executes against a caller-prepared store (pre-initialized data).
func (m *Machine) RunOn(prog *fe.Program, store *rt.Store) (*Result, error) {
	return m.RunObs(prog, store, nil)
}

// RunObs executes a partitioned program, reporting telemetry to rec (a
// nil recorder costs one branch per dispatch). A nil store means a
// fresh store initialized from the program's symbols.
func (m *Machine) RunObs(prog *fe.Program, store *rt.Store, rec obs.Recorder) (*Result, error) {
	return m.RunCtl(prog, store, rec, nil)
}

// RunCtl executes a partitioned program under an execution control
// plane: fault injection, periodic checkpoints, and resume from a
// snapshot. A nil ctl is exactly RunObs — same code path, bit-identical
// cycle totals. A run halted by an injected fatal fault returns an
// error wrapping faults.ErrFatal; restart it from the last checkpoint
// via ctl.Resume.
func (m *Machine) RunCtl(prog *fe.Program, store *rt.Store, rec obs.Recorder, ctl *Control) (*Result, error) {
	return m.RunCtx(context.Background(), prog, store, rec, ctl)
}

// RunCtx is RunCtl under a context: cancellation and deadline expiry
// are checked at every host op and loop-iteration boundary and return
// promptly with an error wrapping rt.ErrCanceled. The Machine is never
// mutated by a run, so one *Machine may serve any number of concurrent
// RunCtx calls (each run builds its own store when store is nil).
func (m *Machine) RunCtx(ctx context.Context, prog *fe.Program, store *rt.Store, rec obs.Recorder, ctl *Control) (*Result, error) {
	if store == nil {
		store = rt.NewStore(prog.Syms)
	}
	comm := &rt.Comm{Store: store, PEs: m.PEs, Cost: m.CommCost}
	res := &Result{
		Store:           store,
		ClockHz:         m.ClockHz,
		PEClassCycles:   map[string]float64{},
		PERoutineCycles: map[string]float64{},
		PELineCycles:    map[rt.LineRef]float64{},
	}

	var inj *faults.Injector
	var num *rt.Numeric
	var hctl *hostvm.Ctl
	workers := 0
	jit := false
	if ctl != nil {
		inj = ctl.Faults
		num = ctl.Numeric
		res.Numeric = num
		workers = ctl.ExecWorkers
		jit = ctl.ExecJIT
		comm.Faults = inj
		hctl = &hostvm.Ctl{Faults: inj, CheckpointEvery: ctl.CheckpointEvery, MaxCycles: ctl.MaxCycles}
		if ctl.MaxCycles > 0 {
			hctl.ExtraCycles = func() float64 { return res.PECycles + comm.Cycles }
		}
		if ctl.Checkpoint != nil {
			hctl.Checkpoint = func(vm *hostvm.VM, next int, inLoop bool, iterDone int) error {
				return ctl.Checkpoint(snapshot(store, vm, comm, res, next, inLoop, iterDone))
			}
		}
		if ck := ctl.Resume; ck != nil {
			if err := resume(ck, store, comm, res, hctl); err != nil {
				return nil, err
			}
		}
	}

	hooks := hostvm.Hooks{
		Dispatch: func(r *peac.Routine, over shape.Shape) error {
			return m.dispatch(ctx, r, over, store, res, rec, inj, num, workers, jit)
		},
		Comm: func(mv nir.Move) error { return comm.ExecMove(mv) },
	}
	vm, err := hostvm.RunCtx(ctx, prog, store, m.HostCost, hooks, hctl)
	if err != nil {
		return nil, err
	}
	res.Output = vm.Output
	res.Stopped = vm.Stopped()
	res.HostCycles = vm.Cycles
	res.CommCycles = comm.Cycles
	res.CommCalls = comm.Calls
	res.HostClassCycles = vm.ClassCycles()
	res.CommClassCycles = map[string]float64{}
	for _, cl := range rt.CommClasses {
		res.CommClassCycles[cl] = comm.ClassCycles[cl]
	}
	res.CommLineCycles = rt.CopyLineMap(comm.LineCycles)
	res.Faults = inj.Stats()
	res.emit(rec)
	return res, nil
}

// snapshot captures a consistent machine state at a host boundary via
// the shared rt boundary plumbing; the CM/2 has no machine-specific
// extras beyond the common fields.
func snapshot(store *rt.Store, vm *hostvm.VM, comm *rt.Comm, res *Result, next int, inLoop bool, iterDone int) *rt.Checkpoint {
	return rt.SnapshotBoundary(store, comm,
		rt.Boundary{Machine: "cm2", NextOp: next, InLoop: inLoop, IterDone: iterDone},
		rt.HostState{Output: vm.Output, Cycles: vm.Cycles, ClassCycles: vm.ClassCycles()},
		rt.ExecTotals{
			Flops:           res.Flops,
			NodeCalls:       res.NodeCalls,
			PECycles:        res.PECycles,
			PEClassCycles:   res.PEClassCycles,
			PERoutineCycles: res.PERoutineCycles,
			PELineCycles:    res.PELineCycles,
		})
}

// resume restores a snapshot into the store, the comm layer, the
// result accumulators, and the host control plane, so the continued
// run picks up every total where the snapshot left it.
func resume(ck *rt.Checkpoint, store *rt.Store, comm *rt.Comm, res *Result, hctl *hostvm.Ctl) error {
	tot, err := rt.ResumeBoundary(ck, store, comm)
	if err != nil {
		return fmt.Errorf("cm2: resume: %w", err)
	}
	res.PECycles = tot.PECycles
	res.Flops = tot.Flops
	res.NodeCalls = tot.NodeCalls
	res.PEClassCycles = tot.PEClassCycles
	res.PERoutineCycles = tot.PERoutineCycles
	res.PELineCycles = tot.PELineCycles
	hctl.SetResume(ck)
	return nil
}

// emit reports the execution result as counters.
func (res *Result) emit(rec obs.Recorder) {
	if rec == nil {
		return
	}
	obs.Add(rec, "exec/host-cycles", res.HostCycles)
	obs.Add(rec, "exec/pe-cycles", res.PECycles)
	obs.Add(rec, "exec/comm-cycles", res.CommCycles)
	obs.Add(rec, "exec/flops", float64(res.Flops))
	obs.Add(rec, "exec/node-calls", float64(res.NodeCalls))
	obs.Add(rec, "exec/comm-calls", float64(res.CommCalls))
	for cl, v := range res.PEClassCycles {
		obs.Add(rec, "exec/pe/"+cl, v)
	}
	for cl, v := range res.CommClassCycles {
		obs.Add(rec, "exec/comm/"+cl, v)
	}
	for cl, v := range res.HostClassCycles {
		obs.Add(rec, "exec/host/"+cl, v)
	}
	for name, v := range res.PERoutineCycles {
		obs.Add(rec, "exec/routine/"+name, v)
	}
	if res.Numeric != nil {
		for cl, n := range res.Numeric.NaN {
			obs.Add(rec, "exec/numeric/nan/"+cl, float64(n))
		}
		for cl, n := range res.Numeric.Inf {
			obs.Add(rec, "exec/numeric/inf/"+cl, float64(n))
		}
	}
}

// dispatch runs one PEAC routine over its shape, charging the cycle model
// and executing it functionally over the stored arrays, optionally
// sharded across a chunk worker pool (Control.ExecWorkers).
func (m *Machine) dispatch(ctx context.Context, r *peac.Routine, over shape.Shape, store *rt.Store, res *Result, rec obs.Recorder, inj *faults.Injector, num *rt.Numeric, workers int, jit bool) error {
	if over == nil {
		return fmt.Errorf("cm2: node routine %s without a shape: %w", r.Name, ErrDispatch)
	}
	layout := shape.Distribute(over, m.PEs, r.Dist)
	sub := layout.SubgridSize()
	if inj != nil {
		if err := m.injectDispatch(r, sub, res, inj); err != nil {
			return err
		}
	}
	cyc := float64(m.PECost.RoutineCycles(r, sub))
	res.PECycles += cyc
	res.PERoutineCycles[r.Name] += cyc
	itersPerPE := (sub + peac.VectorWidth - 1) / peac.VectorWidth
	if itersPerPE > 0 {
		byClass := m.PECost.BodyCyclesByClass(r.Body)
		for cl, n := range byClass {
			if n != 0 {
				res.PEClassCycles[peac.CycleClass(cl).String()] += float64(n * itersPerPE)
			}
		}
		for cell, n := range m.PECost.BodyCyclesByLine(r.Body, r.Pos) {
			if n != 0 {
				res.PELineCycles[lineRef(r, cell.Pos, cell.Class.String())] += float64(n * itersPerPE)
			}
		}
	}
	res.Flops += int64(r.FlopsPerIteration()) * int64(itersPerPE) * int64(layout.PEsUsed())
	res.NodeCalls++
	obs.Observe(rec, "cm2/dispatch-cycles", cyc)
	return ExecRoutineOpts(ctx, r, over, store, ExecOpts{Num: num, Subgrid: sub, PEs: m.PEs, Workers: workers, Rec: rec, JIT: jit})
}

// injectDispatch applies the fault plane to one node dispatch. A PE
// killed here either aborts the run (degradation disabled: a clean
// error wrapping ErrDispatch and faults.ErrPEDead) or degrades
// gracefully: the dead PE's subgrid is remapped onto a buddy — charged
// one router transfer of the subgrid — and every later dispatch pays
// one extra subgrid pass, because the synchronous machine gates on its
// slowest PE and the buddy now runs two subgrids back to back.
// Execution stays functionally exact: the model charges cycles, the
// data motion is unaffected.
func (m *Machine) injectDispatch(r *peac.Routine, sub int, res *Result, inj *faults.Injector) error {
	for _, pe := range inj.DispatchTick(m.PEs) {
		if !inj.Degrade() {
			return fmt.Errorf("cm2: dispatch of %s: %w: processing element %d: %w",
				r.Name, ErrDispatch, pe, faults.ErrPEDead)
		}
		remap := m.CommCost.RouterStartup + float64(sub)*m.CommCost.RouterPerElem
		res.PECycles += remap
		res.PEClassCycles[DegradeClass] += remap
		res.PELineCycles[lineRef(r, r.Pos, DegradeClass)] += remap
		inj.NoteDegraded(pe)
	}
	if inj.DeadCount() > 0 {
		extra := float64(m.PECost.RoutineCycles(r, sub))
		res.PECycles += extra
		res.PEClassCycles[DegradeClass] += extra
		res.PELineCycles[lineRef(r, r.Pos, DegradeClass)] += extra
	}
	return nil
}

// lineRef builds the attribution key for cycles modeled in routine r at
// source position pos under a cycle class name.
func lineRef(r *peac.Routine, pos source.Pos, class string) rt.LineRef {
	return rt.LineRef{Routine: r.Name, File: pos.File, Line: pos.Line, Class: class}
}
