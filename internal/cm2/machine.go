// Package cm2 models the Connection Machine CM/2 in the slicewise
// programming model (§2.2): up to 2,048 processing elements, each a
// Weitek WTL3164 64-bit FPU programmed as a four-wide vector processor,
// driven synchronously by a sequencer fed from a SPARC front end.
//
// The machine executes partitioned programs: the host program runs on the
// host VM, computation blocks execute as PEAC routines over blockwise
// subgrids with a calibrated per-instruction cycle model, and
// communication goes through the CM runtime cost model. Execution is
// functionally exact (results match the reference interpreter) while
// cycles are accounted analytically per PE.
package cm2

import (
	"fmt"

	"f90y/internal/fe"
	"f90y/internal/hostvm"
	"f90y/internal/nir"
	"f90y/internal/peac"
	"f90y/internal/rt"
	"f90y/internal/shape"
)

// Machine is one CM/2 configuration.
type Machine struct {
	// PEs is the number of slicewise processing elements (2,048 on a full
	// 64K-processor CM/2). Must be a power of two.
	PEs int
	// ClockHz is the sequencer/Weitek clock (7 MHz).
	ClockHz float64
	// PECost is the PEAC instruction cycle model.
	PECost peac.CostModel
	// CommCost is the runtime communication model.
	CommCost rt.CommCost
	// HostCost is the front-end model.
	HostCost hostvm.Cost
}

// Default returns the full-size calibrated CM/2.
func Default() *Machine {
	return &Machine{
		PEs:      2048,
		ClockHz:  7e6,
		PECost:   peac.DefaultCost,
		CommCost: rt.DefaultCommCost,
		HostCost: hostvm.DefaultCost,
	}
}

// Result is the outcome of one program execution.
type Result struct {
	Output  []string
	Store   *rt.Store
	Stopped bool

	HostCycles float64
	PECycles   float64
	CommCycles float64
	Flops      int64
	NodeCalls  int
	CommCalls  int
	ClockHz    float64
}

// TotalCycles is the modeled end-to-end cycle count; host, node, and
// communication time are serialized, as in the synchronous SIMD model.
func (r *Result) TotalCycles() float64 {
	return r.HostCycles + r.PECycles + r.CommCycles
}

// Seconds is the modeled wall time.
func (r *Result) Seconds() float64 { return r.TotalCycles() / r.ClockHz }

// GFLOPS is the modeled sustained rate.
func (r *Result) GFLOPS() float64 {
	s := r.Seconds()
	if s == 0 {
		return 0
	}
	return float64(r.Flops) / s / 1e9
}

// Run executes a partitioned program on the machine.
func (m *Machine) Run(prog *fe.Program) (*Result, error) {
	store := rt.NewStore(prog.Syms)
	return m.RunOn(prog, store)
}

// RunOn executes against a caller-prepared store (pre-initialized data).
func (m *Machine) RunOn(prog *fe.Program, store *rt.Store) (*Result, error) {
	comm := &rt.Comm{Store: store, PEs: m.PEs, Cost: m.CommCost}
	res := &Result{Store: store, ClockHz: m.ClockHz}

	hooks := hostvm.Hooks{
		Dispatch: func(r *peac.Routine, over shape.Shape) error {
			return m.dispatch(r, over, store, res)
		},
		Comm: func(mv nir.Move) error { return comm.ExecMove(mv) },
	}
	vm, err := hostvm.Run(prog, store, m.HostCost, hooks)
	if err != nil {
		return nil, err
	}
	res.Output = vm.Output
	res.Stopped = vm.Stopped()
	res.HostCycles = vm.Cycles
	res.CommCycles = comm.Cycles
	res.CommCalls = comm.Calls
	return res, nil
}

// dispatch runs one PEAC routine over its shape, charging the cycle model
// and executing it functionally over the stored arrays.
func (m *Machine) dispatch(r *peac.Routine, over shape.Shape, store *rt.Store, res *Result) error {
	if over == nil {
		return fmt.Errorf("cm2: node routine %s without a shape", r.Name)
	}
	layout := shape.Blockwise(over, m.PEs)
	sub := layout.SubgridSize()
	res.PECycles += float64(m.PECost.RoutineCycles(r, sub))
	itersPerPE := (sub + peac.VectorWidth - 1) / peac.VectorWidth
	res.Flops += int64(r.FlopsPerIteration()) * int64(itersPerPE) * int64(layout.PEsUsed())
	res.NodeCalls++
	return ExecRoutine(r, over, store)
}
