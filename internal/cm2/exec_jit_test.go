package cm2

// Differential tests for the compiled executor (jit.go): every test
// runs the interpreter as the reference and asserts the JIT is
// bit-identical — stores compared by Float64bits, error strings byte
// for byte, numeric-plane tallies count for count — across chunk
// boundaries and worker counts. The chained-memory regressions from
// exec_par_test.go are re-run against the compiled path, which has its
// own per-position fetch buffers to get wrong.

import (
	"context"
	"errors"
	"math"
	"testing"

	"f90y/internal/nir"
	"f90y/internal/peac"
	"f90y/internal/rt"
	"f90y/internal/shape"
)

// execJIT runs r over n elements with the compiled engine.
func execJIT(t *testing.T, r *peac.Routine, st *rt.Store, n, workers int) error {
	t.Helper()
	return ExecRoutineOpts(context.Background(), r, shape.Of(n), st, ExecOpts{JIT: true, Workers: workers})
}

// TestExecJITChunkBoundaries drives the compiled engine across every
// chunk-boundary case the ISSUE names (n = 1, chunkSize-1, chunkSize,
// chunkSize+1, plus a many-chunk count) and worker counts, asserting
// bit-exact agreement with the serial interpreter.
func TestExecJITChunkBoundaries(t *testing.T) {
	r := chunkRoutine()
	for _, n := range []int{1, chunkSize - 1, chunkSize, chunkSize + 1, 3*chunkSize + 5} {
		ref := chunkStore(n)
		if err := ExecRoutine(r, shape.Of(n), ref); err != nil {
			t.Fatalf("n=%d interpreter: %v", n, err)
		}
		for _, workers := range []int{1, 2, 8, -1} {
			st := chunkStore(n)
			if err := execJIT(t, r, st, n, workers); err != nil {
				t.Fatalf("n=%d workers=%d jit: %v", n, workers, err)
			}
			for i, want := range ref.Arrays["d"].Data {
				got := st.Arrays["d"].Data[i]
				if math.Float64bits(got) != math.Float64bits(want) {
					t.Fatalf("n=%d workers=%d: d[%d] = %v, want %v (jit not bit-exact)", n, workers, i, got, want)
				}
			}
		}
	}
}

// TestExecJITChainedMemPositions re-runs the chained-memory regressions
// against the compiled path: distinct Mem streams in A and B, in A, B,
// and C, and an FSTRV with chained source and mask must each read their
// own lanes through the per-position fetch buffers.
func TestExecJITChainedMemPositions(t *testing.T) {
	cases := []struct {
		name string
		r    *peac.Routine
		arrs []string
	}{
		{
			name: "A+B",
			r: &peac.Routine{
				Name: "PchainAB",
				Params: []peac.Param{
					{Kind: peac.ArrayParam, Name: "a", Reg: 2},
					{Kind: peac.ArrayParam, Name: "b", Reg: 3},
					{Kind: peac.ArrayParam, Name: "d", Reg: 4},
				},
				Body: []peac.Instr{
					{Op: peac.FADDV, A: peac.M(2), B: peac.M(3), D: peac.V(0)},
					{Op: peac.FSTRV, A: peac.V(0), D: peac.M(4)},
				},
			},
			arrs: []string{"a", "b", "d"},
		},
		{
			name: "A+B+C",
			r: &peac.Routine{
				Name: "PchainABC",
				Params: []peac.Param{
					{Kind: peac.ArrayParam, Name: "a", Reg: 2},
					{Kind: peac.ArrayParam, Name: "b", Reg: 3},
					{Kind: peac.ArrayParam, Name: "c", Reg: 5},
					{Kind: peac.ArrayParam, Name: "d", Reg: 4},
				},
				Body: []peac.Instr{
					{Op: peac.FMADDV, A: peac.M(2), B: peac.M(3), C: peac.M(5), D: peac.V(0)},
					{Op: peac.FSTRV, A: peac.V(0), D: peac.M(4)},
				},
			},
			arrs: []string{"a", "b", "c", "d"},
		},
		{
			name: "store-src+mask",
			r: &peac.Routine{
				Name: "PchainStore",
				Params: []peac.Param{
					{Kind: peac.ArrayParam, Name: "a", Reg: 2},
					{Kind: peac.ArrayParam, Name: "b", Reg: 3},
					{Kind: peac.ArrayParam, Name: "d", Reg: 4},
				},
				Body: []peac.Instr{
					{Op: peac.FSTRV, A: peac.M(2), C: peac.M(3), D: peac.M(4)},
				},
			},
			arrs: []string{"a", "b", "d"},
		},
	}
	const n = 2*chunkSize + 9
	fill := func(name string, i int) float64 {
		switch name {
		case "a":
			return 1 + float64(i%23)
		case "b":
			return float64(i % 3) // doubles as the store mask
		case "c":
			return 100 + float64(i%7)
		}
		return -1
	}
	for _, tc := range cases {
		ref := parStore(n, tc.arrs, fill)
		if err := ExecRoutine(tc.r, shape.Of(n), ref); err != nil {
			t.Fatalf("%s interpreter: %v", tc.name, err)
		}
		st := parStore(n, tc.arrs, fill)
		if err := execJIT(t, tc.r, st, n, 1); err != nil {
			t.Fatalf("%s jit: %v", tc.name, err)
		}
		for i, want := range ref.Arrays["d"].Data {
			got := st.Arrays["d"].Data[i]
			if math.Float64bits(got) != math.Float64bits(want) {
				t.Fatalf("%s: d[%d] = %v, want %v", tc.name, i, got, want)
			}
		}
	}
}

// TestExecJITIntegerStoreKind asserts the compiled store path applies
// the array's kind semantics: stores into an Integer32 array truncate,
// masked and unmasked, exactly like the interpreter's StoreVal.
func TestExecJITIntegerStoreKind(t *testing.T) {
	r := &peac.Routine{
		Name: "Pintstore",
		Params: []peac.Param{
			{Kind: peac.ArrayParam, Name: "a", Reg: 2},
			{Kind: peac.ArrayParam, Name: "d", Reg: 4},
			{Kind: peac.ConstParam, Value: 2, Reg: 16},
		},
		Body: []peac.Instr{
			{Op: peac.FLODV, A: peac.M(2), D: peac.V(0)},
			{Op: peac.FDIVV, A: peac.V(0), B: peac.S(16), D: peac.V(1)}, // i/2: halves are fractional
			{Op: peac.FSTRV, A: peac.V(1), D: peac.M(4)},
		},
	}
	const n = 12
	mk := func() *rt.Store {
		st := parStore(n, []string{"a"}, func(_ string, i int) float64 { return float64(i) })
		di := rt.NewArray(nir.Integer32, shape.Of(n))
		st.Arrays["d"] = di
		return st
	}
	ref := mk()
	if err := ExecRoutine(r, shape.Of(n), ref); err != nil {
		t.Fatal(err)
	}
	st := mk()
	if err := execJIT(t, r, st, n, 1); err != nil {
		t.Fatal(err)
	}
	for i := range ref.Arrays["d"].Data {
		want, got := ref.Arrays["d"].Data[i], st.Arrays["d"].Data[i]
		if math.Float64bits(got) != math.Float64bits(want) {
			t.Fatalf("d[%d] = %v, want %v (integer store must truncate)", i, got, want)
		}
		if got != math.Trunc(got) {
			t.Fatalf("d[%d] = %v is not an integer", i, got)
		}
	}
}

// TestExecJITErrorStrings drives every class of executor error through
// both engines and asserts the strings are byte-identical: the uniform
// unbound-pointer taxonomy (load, chained load, store, and the distinct
// store-to-coordinate case), the data-dependent integer div/mod faults,
// and the unimplemented-opcode backstop.
func TestExecJITErrorStrings(t *testing.T) {
	baseParams := []peac.Param{
		{Kind: peac.ArrayParam, Name: "a", Reg: 2},
		{Kind: peac.ArrayParam, Name: "d", Reg: 4},
		{Kind: peac.CoordParam, Dim: 1, Reg: 5},
	}
	cases := []struct {
		name string
		body []peac.Instr
		zero bool // plant a zero divisor lane
	}{
		{"load-unbound", []peac.Instr{
			{Op: peac.FLODV, A: peac.M(9), D: peac.V(0)},
		}, false},
		{"chained-unbound-B", []peac.Instr{
			{Op: peac.FADDV, A: peac.M(2), B: peac.M(9), D: peac.V(0)},
		}, false},
		{"chained-unbound-C-of-2src", []peac.Instr{
			// The interpreter resolves C even for a two-source op; the
			// compiled path must fault identically.
			{Op: peac.FADDV, A: peac.V(0), B: peac.V(1), C: peac.M(9), D: peac.V(0)},
		}, false},
		{"store-unbound", []peac.Instr{
			{Op: peac.FLODV, A: peac.M(2), D: peac.V(0)},
			{Op: peac.FSTRV, A: peac.V(0), D: peac.M(9)},
		}, false},
		{"store-coordinate", []peac.Instr{
			{Op: peac.FLODV, A: peac.M(2), D: peac.V(0)},
			{Op: peac.FSTRV, A: peac.V(0), D: peac.M(5)},
		}, false},
		{"int-div-zero", []peac.Instr{
			{Op: peac.FLODV, A: peac.M(2), D: peac.V(0)},
			{Op: peac.FDIVV, A: peac.V(0), B: peac.V(1), D: peac.V(2), IntOp: true},
		}, true},
		{"int-mod-zero", []peac.Instr{
			{Op: peac.FLODV, A: peac.M(2), D: peac.V(0)},
			{Op: peac.FMODV, A: peac.V(0), B: peac.V(1), D: peac.V(2), IntOp: true},
		}, true},
		{"unimplemented-opcode", []peac.Instr{
			{Op: peac.Opcode(250), A: peac.V(0), B: peac.V(1), D: peac.V(2)},
		}, false},
	}
	const n = 16
	for _, tc := range cases {
		r := &peac.Routine{Name: "Perr_" + tc.name, Params: baseParams, Body: tc.body}
		mk := func() *rt.Store {
			return parStore(n, []string{"a", "d"}, func(name string, i int) float64 { return 1 })
		}
		ref := ExecRoutine(r, shape.Of(n), mk())
		if ref == nil {
			t.Fatalf("%s: interpreter did not error", tc.name)
		}
		got := execJIT(t, r, mk(), n, 1)
		if got == nil || got.Error() != ref.Error() {
			t.Errorf("%s: jit error %q, want interpreter error %q", tc.name, got, ref)
		}
	}
}

// TestExecJITTrapIdentical plants exceptional lanes in two chunks and
// asserts the compiled engine traps with the interpreter's exact error
// — same instruction, element, and PE attribution — for every worker
// count.
func TestExecJITTrapIdentical(t *testing.T) {
	r := &peac.Routine{
		Name: "Pjittrap",
		Params: []peac.Param{
			{Kind: peac.ArrayParam, Name: "a", Reg: 2},
			{Kind: peac.ArrayParam, Name: "b", Reg: 3},
			{Kind: peac.ArrayParam, Name: "d", Reg: 4},
		},
		Body: []peac.Instr{
			{Op: peac.FLODV, A: peac.M(2), D: peac.V(0)},
			{Op: peac.FLODV, A: peac.M(3), D: peac.V(1)},
			{Op: peac.FDIVV, A: peac.V(0), B: peac.V(1), D: peac.V(2)},
			{Op: peac.FSTRV, A: peac.V(2), D: peac.M(4)},
		},
	}
	n := 3 * chunkSize
	mk := func() *rt.Store {
		return parStore(n, []string{"a", "b", "d"}, func(name string, i int) float64 {
			if name == "b" {
				if i == chunkSize+55 || i == 2*chunkSize+3 {
					return 0
				}
				return 2
			}
			return 1
		})
	}
	run := func(jit bool, workers int) error {
		num := &rt.Numeric{Mode: rt.NumericTrap}
		return ExecRoutineOpts(context.Background(), r, shape.Of(n), mk(),
			ExecOpts{Num: num, Subgrid: 8, PEs: 2048, Workers: workers, JIT: jit})
	}
	ref := run(false, 1)
	if ref == nil || !errors.Is(ref, rt.ErrNumeric) {
		t.Fatalf("interpreter trap = %v, want rt.ErrNumeric", ref)
	}
	for _, workers := range []int{1, 2, 8} {
		got := run(true, workers)
		if got == nil || got.Error() != ref.Error() {
			t.Errorf("jit workers=%d: trap %q, want %q", workers, got, ref)
		}
		if !errors.Is(got, rt.ErrNumeric) {
			t.Errorf("jit workers=%d: trap does not wrap rt.ErrNumeric", workers)
		}
	}
}

// TestExecJITNumericRecordParity asserts record-mode tallies from the
// compiled engine match the interpreter's exactly, per class, across
// worker counts.
func TestExecJITNumericRecordParity(t *testing.T) {
	r := &peac.Routine{
		Name: "Pjitnum",
		Params: []peac.Param{
			{Kind: peac.ArrayParam, Name: "a", Reg: 2},
			{Kind: peac.ArrayParam, Name: "b", Reg: 3},
			{Kind: peac.ArrayParam, Name: "d", Reg: 4},
		},
		Body: []peac.Instr{
			{Op: peac.FLODV, A: peac.M(2), D: peac.V(0)},
			{Op: peac.FLODV, A: peac.M(3), D: peac.V(1)},
			{Op: peac.FDIVV, A: peac.V(0), B: peac.V(1), D: peac.V(2)},
			{Op: peac.FLOGV, A: peac.V(1), D: peac.V(1)},
			{Op: peac.FSTRV, A: peac.V(2), D: peac.M(4)},
		},
	}
	n := 2*chunkSize + 77
	mk := func() *rt.Store {
		return parStore(n, []string{"a", "b", "d"}, func(name string, i int) float64 {
			switch name {
			case "a":
				if i%89 == 0 {
					return 0
				}
				return 1
			case "b":
				if i%11 == 0 {
					return 0
				}
				return 2
			}
			return 0
		})
	}
	run := func(jit bool, workers int) *rt.Numeric {
		num := &rt.Numeric{Mode: rt.NumericRecord}
		if err := ExecRoutineOpts(context.Background(), r, shape.Of(n), mk(),
			ExecOpts{Num: num, Subgrid: 8, PEs: 2048, Workers: workers, JIT: jit}); err != nil {
			t.Fatalf("jit=%v workers=%d: %v", jit, workers, err)
		}
		return num
	}
	ref := run(false, 1)
	if ref.Total() == 0 {
		t.Fatal("record run tallied no exceptional lanes; test inputs are broken")
	}
	for _, workers := range []int{1, 4, -1} {
		got := run(true, workers)
		for cl, c := range ref.NaN {
			if got.NaN[cl] != c {
				t.Errorf("jit workers=%d: NaN[%s] = %d, want %d", workers, cl, got.NaN[cl], c)
			}
		}
		for cl, c := range ref.Inf {
			if got.Inf[cl] != c {
				t.Errorf("jit workers=%d: Inf[%s] = %d, want %d", workers, cl, got.Inf[cl], c)
			}
		}
		if got.Total() != ref.Total() {
			t.Errorf("jit workers=%d: total %d, want %d", workers, got.Total(), ref.Total())
		}
	}
}

// TestExecJITRecordMergeOnFailure is the executor-bugfix regression: a
// FAILING parallel dispatch must still merge the per-worker numeric
// record planes — before the fix the error path returned without
// merging, silently dropping every tally the workers accumulated. The
// failure is planted in the LAST chunk, so the monotone chunk-claim
// order guarantees every earlier chunk is claimed (and runs to
// completion) before the failing chunk cancels the pool: serial and
// parallel tallies are deterministic and must be equal, under both
// engines.
func TestExecJITRecordMergeOnFailure(t *testing.T) {
	r := &peac.Routine{
		Name: "Pfail",
		Params: []peac.Param{
			{Kind: peac.ArrayParam, Name: "a", Reg: 2},
			{Kind: peac.ArrayParam, Name: "b", Reg: 3},
			{Kind: peac.ArrayParam, Name: "c", Reg: 5},
			{Kind: peac.ArrayParam, Name: "d", Reg: 4},
		},
		Body: []peac.Instr{
			{Op: peac.FLODV, A: peac.M(2), D: peac.V(0)},
			{Op: peac.FLODV, A: peac.M(3), D: peac.V(1)},
			{Op: peac.FDIVV, A: peac.V(0), B: peac.V(1), D: peac.V(2)}, // b==0 lanes -> Inf, recorded
			{Op: peac.FLODV, A: peac.M(5), D: peac.V(3)},
			{Op: peac.FDIVV, A: peac.V(0), B: peac.V(3), D: peac.V(4), IntOp: true}, // c==0 -> error
			{Op: peac.FSTRV, A: peac.V(2), D: peac.M(4)},
		},
	}
	n := 3*chunkSize + 17
	mk := func() *rt.Store {
		return parStore(n, []string{"a", "b", "c", "d"}, func(name string, i int) float64 {
			switch name {
			case "a":
				return 1
			case "b":
				if i%31 == 0 {
					return 0 // Inf lanes sprinkled through every chunk
				}
				return 2
			case "c":
				if i == n-5 {
					return 0 // the only failure, in the last chunk
				}
				return 1
			}
			return 0
		})
	}
	run := func(jit bool, workers int) (*rt.Numeric, error) {
		num := &rt.Numeric{Mode: rt.NumericRecord}
		err := ExecRoutineOpts(context.Background(), r, shape.Of(n), mk(),
			ExecOpts{Num: num, Subgrid: 8, PEs: 2048, Workers: workers, JIT: jit})
		return num, err
	}
	refNum, refErr := run(false, 1)
	if refErr == nil {
		t.Fatal("serial run did not fail; test inputs are broken")
	}
	if refNum.Total() == 0 {
		t.Fatal("serial failing run recorded no tallies; test inputs are broken")
	}
	for _, jit := range []bool{false, true} {
		for _, workers := range []int{1, 2, 8} {
			num, err := run(jit, workers)
			if err == nil || err.Error() != refErr.Error() {
				t.Errorf("jit=%v workers=%d: err %q, want %q", jit, workers, err, refErr)
			}
			if num.Total() != refNum.Total() {
				t.Errorf("jit=%v workers=%d: failing run tallied %d lanes, want %d (record planes dropped on error path)",
					jit, workers, num.Total(), refNum.Total())
			}
			for cl, c := range refNum.Inf {
				if num.Inf[cl] != c {
					t.Errorf("jit=%v workers=%d: Inf[%s] = %d, want %d", jit, workers, cl, num.Inf[cl], c)
				}
			}
		}
	}
}

// TestExecJITScalarAndNoOperand asserts scalar broadcast (SReg, Const)
// and missing-operand resolution match the interpreter: a NoOperand
// source reads broadcast zeros in both engines.
func TestExecJITScalarAndNoOperand(t *testing.T) {
	r := &peac.Routine{
		Name: "Pscal",
		Params: []peac.Param{
			{Kind: peac.ArrayParam, Name: "a", Reg: 2},
			{Kind: peac.ArrayParam, Name: "d", Reg: 4},
			{Kind: peac.ScalarParam, Name: "s", Reg: 17},
			{Kind: peac.ConstParam, Value: 2.5, Reg: 16},
		},
		Body: []peac.Instr{
			{Op: peac.FLODV, A: peac.M(2), D: peac.V(0)},
			{Op: peac.FMULV, A: peac.V(0), B: peac.S(17), D: peac.V(1)},
			// B is NoOperand: the interpreter broadcasts 0, so this adds 0.
			{Op: peac.FADDV, A: peac.V(1), D: peac.V(1)},
			{Op: peac.FMADDV, A: peac.V(1), B: peac.S(16), C: peac.S(18), D: peac.V(1)}, // S18 unbound -> 0
			{Op: peac.FSTRV, A: peac.V(1), D: peac.M(4)},
		},
	}
	const n = 33
	mk := func() *rt.Store {
		st := parStore(n, []string{"a", "d"}, func(name string, i int) float64 {
			if name == "a" {
				return float64(i) + 0.25
			}
			return 0
		})
		st.Scalars["s"] = 3.5
		return st
	}
	ref := mk()
	if err := ExecRoutine(r, shape.Of(n), ref); err != nil {
		t.Fatal(err)
	}
	st := mk()
	if err := execJIT(t, r, st, n, 1); err != nil {
		t.Fatal(err)
	}
	for i, want := range ref.Arrays["d"].Data {
		got := st.Arrays["d"].Data[i]
		if math.Float64bits(got) != math.Float64bits(want) {
			t.Fatalf("d[%d] = %v, want %v", i, got, want)
		}
	}
}

// fuseRoutine builds "t = a ?1 b; d0 = acc ?2 s (or s ?2 acc); store"
// so every fused-pair shape (op pair x accumulator side) runs against
// the interpreter, with the pair's result sunk into the store.
func fuseRoutine(op1, op2 peac.Opcode, accLeft bool) *peac.Routine {
	second := peac.Instr{Op: op2, A: peac.V(0), B: peac.S(16), D: peac.V(0)}
	if !accLeft {
		second = peac.Instr{Op: op2, A: peac.S(16), B: peac.V(0), D: peac.V(0)}
	}
	return &peac.Routine{
		Name: "Pfuse",
		Params: []peac.Param{
			{Kind: peac.ArrayParam, Name: "a", Reg: 2},
			{Kind: peac.ArrayParam, Name: "b", Reg: 3},
			{Kind: peac.ArrayParam, Name: "d", Reg: 4},
			{Kind: peac.ConstParam, Value: 1.7, Reg: 16},
		},
		Body: []peac.Instr{
			{Op: peac.FLODV, A: peac.M(2), D: peac.V(0)},
			{Op: peac.FLODV, A: peac.M(3), D: peac.V(1)},
			{Op: op1, A: peac.V(0), B: peac.V(1), D: peac.V(0)},
			second,
			{Op: peac.FSTRV, A: peac.V(0), D: peac.M(4)},
		},
	}
}

// TestExecJITFusedPairs sweeps every fused-pair combination the planner
// can emit — op1 x op2 x accumulator side — over inputs that include
// zeros (hence Inf and NaN intermediates for div) and asserts the JIT
// store is bit-identical to the interpreter, serial and parallel.
func TestExecJITFusedPairs(t *testing.T) {
	ops := []peac.Opcode{peac.FADDV, peac.FSUBV, peac.FMULV, peac.FDIVV}
	const n = chunkSize + 601
	fill := func(name string, i int) float64 {
		switch name {
		case "a":
			return float64(i%13) - 6 // negatives and zeros
		case "b":
			return float64(i % 7) // zero divisors -> Inf/NaN lanes
		}
		return 0
	}
	for _, op1 := range ops {
		for _, op2 := range ops {
			for _, accLeft := range []bool{true, false} {
				r := fuseRoutine(op1, op2, accLeft)
				ref := parStore(n, []string{"a", "b", "d"}, fill)
				if err := ExecRoutine(r, shape.Of(n), ref); err != nil {
					t.Fatalf("%v/%v interpreter: %v", op1, op2, err)
				}
				for _, workers := range []int{1, 4} {
					st := parStore(n, []string{"a", "b", "d"}, fill)
					if err := execJIT(t, r, st, n, workers); err != nil {
						t.Fatalf("%v/%v jit: %v", op1, op2, err)
					}
					for i, want := range ref.Arrays["d"].Data {
						got := st.Arrays["d"].Data[i]
						if math.Float64bits(got) != math.Float64bits(want) {
							t.Fatalf("op1=%v op2=%v accLeft=%v workers=%d: d[%d] = %v, want %v",
								op1, op2, accLeft, workers, i, got, want)
						}
					}
				}
			}
		}
	}
}

// TestExecJITSinkAliasing runs a sinkable chain with the store target
// bound to the same array as a load source — the hazard check must
// reject the optimized chain and the reference chain must still match
// the interpreter bit for bit (in-place update semantics).
func TestExecJITSinkAliasing(t *testing.T) {
	r := &peac.Routine{
		Name: "Psinkalias",
		Params: []peac.Param{
			{Kind: peac.ArrayParam, Name: "a", Reg: 2},
			{Kind: peac.ArrayParam, Name: "b", Reg: 3},
			{Kind: peac.ArrayParam, Name: "a", Reg: 4}, // store target aliases the load
		},
		Body: []peac.Instr{
			{Op: peac.FLODV, A: peac.M(2), D: peac.V(0)},
			{Op: peac.FLODV, A: peac.M(3), D: peac.V(1)},
			{Op: peac.FSUBV, A: peac.V(0), B: peac.V(1), D: peac.V(0)},
			{Op: peac.FMULV, A: peac.V(0), B: peac.V(1), D: peac.V(0)},
			{Op: peac.FSTRV, A: peac.V(0), D: peac.M(4)},
		},
	}
	const n = 2*chunkSize + 31
	fill := func(name string, i int) float64 {
		if name == "a" {
			return float64(i%19) + 0.5
		}
		return float64(i%5) + 1
	}
	ref := parStore(n, []string{"a", "b"}, fill)
	if err := ExecRoutine(r, shape.Of(n), ref); err != nil {
		t.Fatalf("interpreter: %v", err)
	}
	for _, workers := range []int{1, 4} {
		st := parStore(n, []string{"a", "b"}, fill)
		if err := execJIT(t, r, st, n, workers); err != nil {
			t.Fatalf("jit workers=%d: %v", workers, err)
		}
		for i, want := range ref.Arrays["a"].Data {
			got := st.Arrays["a"].Data[i]
			if math.Float64bits(got) != math.Float64bits(want) {
				t.Fatalf("workers=%d: a[%d] = %v, want %v", workers, i, got, want)
			}
		}
	}
}

// TestExecJITFusionLiveness pins the planner's deadness rule: a register
// consumed by a later instruction must not be fused away or sunk, so the
// chain that stores v0 and then reuses it still matches the interpreter.
func TestExecJITFusionLiveness(t *testing.T) {
	r := &peac.Routine{
		Name: "Plive",
		Params: []peac.Param{
			{Kind: peac.ArrayParam, Name: "a", Reg: 2},
			{Kind: peac.ArrayParam, Name: "b", Reg: 3},
			{Kind: peac.ArrayParam, Name: "d", Reg: 4},
			{Kind: peac.ArrayParam, Name: "e", Reg: 5},
		},
		Body: []peac.Instr{
			{Op: peac.FLODV, A: peac.M(2), D: peac.V(0)},
			{Op: peac.FLODV, A: peac.M(3), D: peac.V(1)},
			{Op: peac.FADDV, A: peac.V(0), B: peac.V(1), D: peac.V(0)},
			{Op: peac.FSTRV, A: peac.V(0), D: peac.M(4)}, // v0 still live: no sink
			{Op: peac.FMULV, A: peac.V(0), B: peac.V(0), D: peac.V(1)},
			{Op: peac.FSTRV, A: peac.V(1), D: peac.M(5)},
		},
	}
	const n = chunkSize + 77
	fill := func(name string, i int) float64 {
		switch name {
		case "a":
			return float64(i % 11)
		case "b":
			return float64(i%3) + 0.25
		}
		return 0
	}
	names := []string{"a", "b", "d", "e"}
	ref := parStore(n, names, fill)
	if err := ExecRoutine(r, shape.Of(n), ref); err != nil {
		t.Fatalf("interpreter: %v", err)
	}
	st := parStore(n, names, fill)
	if err := execJIT(t, r, st, n, 2); err != nil {
		t.Fatalf("jit: %v", err)
	}
	for _, name := range []string{"d", "e"} {
		for i, want := range ref.Arrays[name].Data {
			got := st.Arrays[name].Data[i]
			if math.Float64bits(got) != math.Float64bits(want) {
				t.Fatalf("%s[%d] = %v, want %v", name, i, got, want)
			}
		}
	}
}

// TestExecJITFusedNumericRecord runs a fusable chain with the numeric
// record plane active: the fused chain skips intermediate scans, so the
// engine must fall back to the reference chain and the tallies (and the
// store) must match the interpreter exactly.
func TestExecJITFusedNumericRecord(t *testing.T) {
	r := fuseRoutine(peac.FDIVV, peac.FMULV, true)
	const n = chunkSize + 99
	fill := func(name string, i int) float64 {
		switch name {
		case "a":
			return float64(i%13) - 6
		case "b":
			return float64(i % 7) // zero divisors -> overflow tallies
		}
		return 0
	}
	run := func(jit bool) (*rt.Numeric, *rt.Store) {
		st := parStore(n, []string{"a", "b", "d"}, fill)
		num := &rt.Numeric{Mode: rt.NumericRecord}
		if err := ExecRoutineOpts(context.Background(), r, shape.Of(n), st,
			ExecOpts{Num: num, Subgrid: 8, PEs: 2048, Workers: 2, JIT: jit}); err != nil {
			t.Fatalf("jit=%v: %v", jit, err)
		}
		return num, st
	}
	wantNum, wantSt := run(false)
	gotNum, gotSt := run(true)
	if wantNum.Total() == 0 {
		t.Fatal("record run tallied no exceptional lanes; test inputs are broken")
	}
	if gotNum.Total() != wantNum.Total() {
		t.Fatalf("total tallies: jit %d, interp %d", gotNum.Total(), wantNum.Total())
	}
	for cl, c := range wantNum.NaN {
		if gotNum.NaN[cl] != c {
			t.Fatalf("NaN[%s] = %d, want %d", cl, gotNum.NaN[cl], c)
		}
	}
	for cl, c := range wantNum.Inf {
		if gotNum.Inf[cl] != c {
			t.Fatalf("Inf[%s] = %d, want %d", cl, gotNum.Inf[cl], c)
		}
	}
	for i, want := range wantSt.Arrays["d"].Data {
		got := gotSt.Arrays["d"].Data[i]
		if math.Float64bits(got) != math.Float64bits(want) {
			t.Fatalf("d[%d] = %v, want %v", i, got, want)
		}
	}
}
