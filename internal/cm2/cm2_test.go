package cm2

import (
	"math"
	"strings"
	"testing"

	"f90y/internal/lower"
	"f90y/internal/nir"
	"f90y/internal/opt"
	"f90y/internal/parser"
	"f90y/internal/partition"
	"f90y/internal/pe"
	"f90y/internal/peac"
	"f90y/internal/rt"
	"f90y/internal/shape"
)

func TestMachineRunBasic(t *testing.T) {
	tree, _ := parser.Parse("t.f90", `program t
real a(64), b(64)
integer i
do i = 1, 64
  a(i) = i*0.5
end do
b = a*2.0 + 1.0
print *, 'b1 =', b(1)
end program t
`)
	mod, _ := lower.Lower(tree)
	omod, _ := opt.Optimize(mod, opt.Default)
	prog, _, err := partition.Compile(omod, pe.Optimized)
	if err != nil {
		t.Fatal(err)
	}
	res, err := Default().Run(prog)
	if err != nil {
		t.Fatal(err)
	}
	if res.Store.Arrays["b"].Data[0] != 2.0 {
		t.Fatalf("b[0] = %v", res.Store.Arrays["b"].Data[0])
	}
	if len(res.Output) != 1 || !strings.HasPrefix(res.Output[0], "b1 = 2") {
		t.Fatalf("output %q", res.Output)
	}
	if res.NodeCalls == 0 || res.PECycles <= 0 || res.HostCycles <= 0 {
		t.Fatalf("accounting: %+v", res)
	}
	if res.GFLOPS() <= 0 || res.Seconds() <= 0 {
		t.Fatalf("rates: %v GF over %v s", res.GFLOPS(), res.Seconds())
	}
}

// TestExecRoutineDirect drives the PEAC executor on a hand-built routine.
func TestExecRoutineDirect(t *testing.T) {
	// b = a*2 + c, with 2 in a scalar register.
	r := &peac.Routine{
		Name: "P",
		Params: []peac.Param{
			{Kind: peac.ArrayParam, Name: "a", Reg: 2},
			{Kind: peac.ArrayParam, Name: "c", Reg: 3},
			{Kind: peac.ArrayParam, Name: "b", Reg: 4},
			{Kind: peac.ConstParam, Value: 2, Reg: 16},
		},
		Body: []peac.Instr{
			{Op: peac.FLODV, A: peac.M(2), D: peac.V(0)},
			{Op: peac.FLODV, A: peac.M(3), D: peac.V(1)},
			{Op: peac.FMADDV, A: peac.V(0), B: peac.S(16), C: peac.V(1), D: peac.V(2)},
			{Op: peac.FSTRV, A: peac.V(2), D: peac.M(4)},
			{Op: peac.JNZ},
		},
	}
	st := &rt.Store{
		Arrays: map[string]*rt.Array{
			"a": rt.NewArray(nir.Float64, shape.Of(10)),
			"b": rt.NewArray(nir.Float64, shape.Of(10)),
			"c": rt.NewArray(nir.Float64, shape.Of(10)),
		},
		Scalars: map[string]float64{},
		Kinds:   map[string]nir.ScalarKind{},
	}
	for i := 0; i < 10; i++ {
		st.Arrays["a"].Data[i] = float64(i)
		st.Arrays["c"].Data[i] = 100
	}
	if err := ExecRoutine(r, shape.Of(10), st); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 10; i++ {
		want := float64(i)*2 + 100
		if st.Arrays["b"].Data[i] != want {
			t.Fatalf("b[%d] = %v, want %v", i, st.Arrays["b"].Data[i], want)
		}
	}
}

// TestExecRoutineCoordStream checks coordinate subgrid generation for a
// 2-D shape (column-major, declared lower bounds honored).
func TestExecRoutineCoordStream(t *testing.T) {
	r := &peac.Routine{
		Name: "P",
		Params: []peac.Param{
			{Kind: peac.CoordParam, Dim: 1, Reg: 2},
			{Kind: peac.CoordParam, Dim: 2, Reg: 3},
			{Kind: peac.ArrayParam, Name: "a", Reg: 4},
		},
		Body: []peac.Instr{
			{Op: peac.FLODV, A: peac.M(2), D: peac.V(0)},
			{Op: peac.FLODV, A: peac.M(3), D: peac.V(1)},
			{Op: peac.FMULV, A: peac.V(1), B: peac.S(16), D: peac.V(1)},
			{Op: peac.FADDV, A: peac.V(0), B: peac.V(1), D: peac.V(2)},
			{Op: peac.FSTRV, A: peac.V(2), D: peac.M(4)},
		},
	}
	r.Params = append(r.Params, peac.Param{Kind: peac.ConstParam, Value: 100, Reg: 16})
	st := &rt.Store{
		Arrays:  map[string]*rt.Array{"a": rt.NewArray(nir.Float64, shape.Of(3, 2))},
		Scalars: map[string]float64{},
		Kinds:   map[string]nir.ScalarKind{},
	}
	if err := ExecRoutine(r, shape.Of(3, 2), st); err != nil {
		t.Fatal(err)
	}
	// a(i,j) = i + 100*j, column-major.
	want := []float64{101, 102, 103, 201, 202, 203}
	for i, w := range want {
		if st.Arrays["a"].Data[i] != w {
			t.Fatalf("a = %v", st.Arrays["a"].Data)
		}
	}
}

// TestExecRoutineMaskedStore verifies masked lanes are untouched.
func TestExecRoutineMaskedStore(t *testing.T) {
	r := &peac.Routine{
		Name: "P",
		Params: []peac.Param{
			{Kind: peac.ArrayParam, Name: "m", Reg: 2},
			{Kind: peac.ArrayParam, Name: "a", Reg: 3},
			{Kind: peac.ConstParam, Value: 9, Reg: 16},
		},
		Body: []peac.Instr{
			{Op: peac.FLODV, A: peac.M(2), D: peac.V(0)},
			{Op: peac.FSTRV, A: peac.S(16), C: peac.V(0), D: peac.M(3)},
		},
	}
	st := &rt.Store{
		Arrays: map[string]*rt.Array{
			"m": rt.NewArray(nir.Logical32, shape.Of(4)),
			"a": rt.NewArray(nir.Float64, shape.Of(4)),
		},
		Scalars: map[string]float64{},
		Kinds:   map[string]nir.ScalarKind{},
	}
	st.Arrays["m"].Data = []float64{1, 0, 1, 0}
	st.Arrays["a"].Data = []float64{5, 5, 5, 5}
	if err := ExecRoutine(r, shape.Of(4), st); err != nil {
		t.Fatal(err)
	}
	want := []float64{9, 5, 9, 5}
	for i, w := range want {
		if st.Arrays["a"].Data[i] != w {
			t.Fatalf("a = %v", st.Arrays["a"].Data)
		}
	}
}

func TestExecRoutineErrors(t *testing.T) {
	bad := &peac.Routine{Name: "P",
		Params: []peac.Param{{Kind: peac.ArrayParam, Name: "ghost", Reg: 2}},
		Body:   []peac.Instr{{Op: peac.FLODV, A: peac.M(2), D: peac.V(0)}}}
	st := &rt.Store{Arrays: map[string]*rt.Array{}, Scalars: map[string]float64{}, Kinds: map[string]nir.ScalarKind{}}
	if err := ExecRoutine(bad, shape.Of(4), st); err == nil {
		t.Fatal("undefined array accepted")
	}
}

// TestChunkingIsExact: results must be identical regardless of chunk
// boundaries (the shape is larger than one chunk).
func TestChunkingIsExact(t *testing.T) {
	n := chunkSize*2 + 17
	r := &peac.Routine{
		Name: "P",
		Params: []peac.Param{
			{Kind: peac.ArrayParam, Name: "a", Reg: 2},
			{Kind: peac.ArrayParam, Name: "b", Reg: 3},
		},
		Body: []peac.Instr{
			{Op: peac.FLODV, A: peac.M(2), D: peac.V(0)},
			{Op: peac.FSQRTV, A: peac.V(0), D: peac.V(1)},
			{Op: peac.FSTRV, A: peac.V(1), D: peac.M(3)},
		},
	}
	st := &rt.Store{
		Arrays: map[string]*rt.Array{
			"a": rt.NewArray(nir.Float64, shape.Of(n)),
			"b": rt.NewArray(nir.Float64, shape.Of(n)),
		},
		Scalars: map[string]float64{},
		Kinds:   map[string]nir.ScalarKind{},
	}
	for i := 0; i < n; i++ {
		st.Arrays["a"].Data[i] = float64(i)
	}
	if err := ExecRoutine(r, shape.Of(n), st); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < n; i++ {
		if st.Arrays["b"].Data[i] != math.Sqrt(float64(i)) {
			t.Fatalf("b[%d] = %v", i, st.Arrays["b"].Data[i])
		}
	}
}

func TestGFLOPSScalesWithPEs(t *testing.T) {
	src := `program t
real, array(256,256) :: a, b
b = a*2.0 + 1.0
end program t
`
	tree, _ := parser.Parse("t.f90", src)
	mod, _ := lower.Lower(tree)
	omod, _ := opt.Optimize(mod, opt.Default)
	prog, _, _ := partition.Compile(omod, pe.Optimized)

	small := Default()
	small.PEs = 256
	big := Default()

	rs, err := small.Run(prog)
	if err != nil {
		t.Fatal(err)
	}
	rb, err := big.Run(prog)
	if err != nil {
		t.Fatal(err)
	}
	if rb.GFLOPS() <= rs.GFLOPS() {
		t.Fatalf("more PEs not faster: %v vs %v", rb.GFLOPS(), rs.GFLOPS())
	}
}
