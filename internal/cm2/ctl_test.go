package cm2

import (
	"errors"
	"reflect"
	"strings"
	"testing"

	"f90y/internal/faults"
	"f90y/internal/fe"
	"f90y/internal/lower"
	"f90y/internal/opt"
	"f90y/internal/parser"
	"f90y/internal/partition"
	"f90y/internal/pe"
	"f90y/internal/rt"
)

// ctlProg is the control-plane test workload: a top-level serial DO
// driving node computation and communication, so checkpoints land both
// at op boundaries and inside the loop.
const ctlProg = `program t
real a(64), b(64), c(64)
real s
integer i
a = 1.0
b = 0.0
do i = 1, 16
  b = a*2.0 + b
  c = cshift(b, 1)
  a = c + 0.5
end do
s = sum(a)
print *, 'sum =', s
end program t
`

func compileCtl(t *testing.T) *fe.Program {
	t.Helper()
	tree, err := parser.Parse("t.f90", ctlProg)
	if err != nil {
		t.Fatal(err)
	}
	mod, err := lower.Lower(tree)
	if err != nil {
		t.Fatal(err)
	}
	omod, _ := opt.Optimize(mod, opt.Default)
	prog, _, err := partition.Compile(omod, pe.Optimized)
	if err != nil {
		t.Fatal(err)
	}
	return prog
}

// sameResult asserts two results agree bit-for-bit on every observable:
// output, totals, attribution maps, and the stored data.
func sameResult(t *testing.T, what string, a, b *Result) {
	t.Helper()
	if !reflect.DeepEqual(a.Output, b.Output) {
		t.Errorf("%s: output differs: %q vs %q", what, a.Output, b.Output)
	}
	if a.HostCycles != b.HostCycles || a.PECycles != b.PECycles || a.CommCycles != b.CommCycles {
		t.Errorf("%s: cycles differ: host %v/%v pe %v/%v comm %v/%v", what,
			a.HostCycles, b.HostCycles, a.PECycles, b.PECycles, a.CommCycles, b.CommCycles)
	}
	if a.Flops != b.Flops || a.NodeCalls != b.NodeCalls || a.CommCalls != b.CommCalls {
		t.Errorf("%s: counters differ", what)
	}
	for name, m := range map[string][2]map[string]float64{
		"pe-class":   {a.PEClassCycles, b.PEClassCycles},
		"pe-routine": {a.PERoutineCycles, b.PERoutineCycles},
		"comm-class": {a.CommClassCycles, b.CommClassCycles},
		"host-class": {a.HostClassCycles, b.HostClassCycles},
	} {
		if !reflect.DeepEqual(m[0], m[1]) {
			t.Errorf("%s: %s map differs: %v vs %v", what, name, m[0], m[1])
		}
	}
	for name, arr := range a.Store.Arrays {
		if !reflect.DeepEqual(arr.Data, b.Store.Arrays[name].Data) {
			t.Errorf("%s: array %q differs", what, name)
		}
	}
	if !reflect.DeepEqual(a.Store.Scalars, b.Store.Scalars) {
		t.Errorf("%s: scalars differ", what)
	}
}

// TestRunCtlNilZeroOverhead is the zero-overhead invariant: attaching
// no control plane must leave every cycle total, attribution map, and
// result bit-identical to the plain Run path.
func TestRunCtlNilZeroOverhead(t *testing.T) {
	prog := compileCtl(t)
	m := Default()
	plain, err := m.Run(prog)
	if err != nil {
		t.Fatal(err)
	}
	ctl, err := m.RunCtl(prog, nil, nil, nil)
	if err != nil {
		t.Fatal(err)
	}
	sameResult(t, "nil-ctl", plain, ctl)
	if ctl.Faults != nil {
		t.Error("nil ctl must not attach fault stats")
	}
	// An empty Control (no injector, no checkpoints) is also exact.
	empty, err := m.RunCtl(prog, nil, nil, &Control{})
	if err != nil {
		t.Fatal(err)
	}
	sameResult(t, "empty-ctl", plain, empty)
}

// TestFaultDeterminism: the same fault plan produces the same injected
// sequence, event log, retry counts, and cycle totals on every run.
func TestFaultDeterminism(t *testing.T) {
	prog := compileCtl(t)
	m := Default()
	plan := &faults.Plan{Seed: 99, Drop: 0.05, Corrupt: 0.05, Delay: 0.05, Stall: 0.02, PEKill: 0.05}

	run := func() (*Result, *faults.Injector) {
		inj := faults.New(plan, nil)
		res, err := m.RunCtl(prog, nil, nil, &Control{Faults: inj})
		if err != nil {
			t.Fatal(err)
		}
		return res, inj
	}
	res1, inj1 := run()
	res2, inj2 := run()

	sameResult(t, "deterministic", res1, res2)
	if !reflect.DeepEqual(inj1.Log(), inj2.Log()) {
		t.Errorf("fault logs differ:\n%v\n%v", inj1.Log(), inj2.Log())
	}
	if !reflect.DeepEqual(inj1.Stats(), inj2.Stats()) {
		t.Errorf("fault stats differ: %+v vs %+v", inj1.Stats(), inj2.Stats())
	}
	total := int64(0)
	for _, n := range inj1.Stats().Injected {
		total += n
	}
	if total == 0 {
		t.Fatal("plan injected nothing; the determinism check is vacuous")
	}
}

// TestFaultedRunStaysExact: injected drops/corruptions/delays are all
// recovered by the runtime, so the stored results match a clean run
// exactly even though the cycle totals grow.
func TestFaultedRunStaysExact(t *testing.T) {
	prog := compileCtl(t)
	m := Default()
	clean, err := m.Run(prog)
	if err != nil {
		t.Fatal(err)
	}
	inj := faults.New(&faults.Plan{Seed: 7, Drop: 0.1, Corrupt: 0.1, Delay: 0.1}, nil)
	faulted, err := m.RunCtl(prog, nil, nil, &Control{Faults: inj})
	if err != nil {
		t.Fatal(err)
	}
	for name, arr := range clean.Store.Arrays {
		if !reflect.DeepEqual(arr.Data, faulted.Store.Arrays[name].Data) {
			t.Errorf("array %q corrupted by recovered faults", name)
		}
	}
	if !reflect.DeepEqual(clean.Output, faulted.Output) {
		t.Errorf("output differs: %q vs %q", clean.Output, faulted.Output)
	}
	if inj.Stats().Retries == 0 {
		t.Fatal("no retries happened; exactness check is vacuous")
	}
	if faulted.CommCycles <= clean.CommCycles {
		t.Errorf("retries charged nothing: %v <= %v", faulted.CommCycles, clean.CommCycles)
	}
}

// TestCheckpointResumeAfterFatal is the acceptance scenario: a run
// killed by an injected fatal fault resumes from its last checkpoint
// and finishes with the same store, output, and totals as a run that
// never faulted.
func TestCheckpointResumeAfterFatal(t *testing.T) {
	prog := compileCtl(t)
	m := Default()
	clean, err := m.Run(prog)
	if err != nil {
		t.Fatal(err)
	}

	var last *rt.Checkpoint
	inj := faults.New(&faults.Plan{Seed: 1, Events: []faults.Event{{At: 40, Kind: faults.FatalStop}}}, nil)
	_, err = m.RunCtl(prog, nil, nil, &Control{
		Faults:          inj,
		CheckpointEvery: 3,
		Checkpoint:      func(ck *rt.Checkpoint) error { last = ck; return nil },
	})
	if !errors.Is(err, faults.ErrFatal) {
		t.Fatalf("run survived the fatal fault: %v", err)
	}
	if last == nil {
		t.Fatal("no checkpoint was written before the fatal fault")
	}
	if last.Machine != "cm2" || last.Schema != rt.CkptSchema {
		t.Fatalf("checkpoint header: %q %q", last.Machine, last.Schema)
	}

	resumed, err := m.RunCtl(prog, nil, nil, &Control{Resume: last})
	if err != nil {
		t.Fatal(err)
	}
	sameResult(t, "resumed", clean, resumed)
}

// TestCheckpointRoundTripsThroughDisk: Write/ReadCheckpoint preserve
// the snapshot bit-for-bit (Go's JSON float encoding round-trips
// float64 exactly).
func TestCheckpointRoundTripsThroughDisk(t *testing.T) {
	prog := compileCtl(t)
	m := Default()
	var last *rt.Checkpoint
	_, err := m.RunCtl(prog, nil, nil, &Control{
		CheckpointEvery: 5,
		Checkpoint:      func(ck *rt.Checkpoint) error { last = ck; return nil },
	})
	if err != nil || last == nil {
		t.Fatalf("run: %v, ckpt %v", err, last)
	}
	path := t.TempDir() + "/ck.json"
	if err := last.Write(path); err != nil {
		t.Fatal(err)
	}
	loaded, err := rt.ReadCheckpoint(path)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(last, loaded) {
		t.Error("checkpoint changed across the disk round trip")
	}
}

// TestPEKillDegradesOrAborts: a scheduled PE kill either degrades
// gracefully (documented cycle penalty in the "degrade" class) or,
// with degradation disabled, fails cleanly with the sentinel pair.
func TestPEKillDegradesOrAborts(t *testing.T) {
	prog := compileCtl(t)
	m := Default()
	clean, err := m.Run(prog)
	if err != nil {
		t.Fatal(err)
	}

	kill := []faults.Event{{At: 2, Kind: faults.KillPE, PE: 5}}
	inj := faults.New(&faults.Plan{Seed: 1, Events: kill}, nil)
	degraded, err := m.RunCtl(prog, nil, nil, &Control{Faults: inj})
	if err != nil {
		t.Fatal(err)
	}
	if degraded.Faults.Degraded != 1 || len(degraded.Faults.DeadPEs) != 1 {
		t.Fatalf("stats: %+v", degraded.Faults)
	}
	if degraded.PEClassCycles[DegradeClass] <= 0 {
		t.Error("no degrade cycles charged")
	}
	if degraded.PECycles <= clean.PECycles {
		t.Errorf("degradation charged nothing: %v <= %v", degraded.PECycles, clean.PECycles)
	}
	for name, arr := range clean.Store.Arrays {
		if !reflect.DeepEqual(arr.Data, degraded.Store.Arrays[name].Data) {
			t.Errorf("array %q differs under degradation", name)
		}
	}

	inj = faults.New(&faults.Plan{Seed: 1, Events: kill, NoDegrade: true}, nil)
	_, err = m.RunCtl(prog, nil, nil, &Control{Faults: inj})
	if !errors.Is(err, faults.ErrPEDead) || !errors.Is(err, ErrDispatch) {
		t.Fatalf("error %v must wrap both faults.ErrPEDead and cm2.ErrDispatch", err)
	}
}

// compileSrcCtl compiles an arbitrary source through the same pipeline
// as compileCtl.
func compileSrcCtl(t *testing.T, src string) *fe.Program {
	t.Helper()
	tree, err := parser.Parse("t.f90", src)
	if err != nil {
		t.Fatal(err)
	}
	mod, err := lower.Lower(tree)
	if err != nil {
		t.Fatal(err)
	}
	omod, _ := opt.Optimize(mod, opt.Default)
	prog, _, err := partition.Compile(omod, pe.Optimized)
	if err != nil {
		t.Fatal(err)
	}
	return prog
}

// TestBudgetKillsRunawayLoop: the cycle watchdog terminates an
// intentionally infinite loop with rt.ErrBudget, at the same host step
// with the same message on every run — a deterministic kill, not a
// wall-clock timeout.
func TestBudgetKillsRunawayLoop(t *testing.T) {
	prog := compileSrcCtl(t, `program loop
integer i
i = 0
do while (i < 1)
  i = i * 1
end do
end program loop
`)
	m := Default()
	_, err1 := m.RunCtl(prog, nil, nil, &Control{MaxCycles: 100_000})
	if !errors.Is(err1, rt.ErrBudget) {
		t.Fatalf("want rt.ErrBudget, got %v", err1)
	}
	_, err2 := m.RunCtl(prog, nil, nil, &Control{MaxCycles: 100_000})
	if err1.Error() != err2.Error() {
		t.Errorf("budget kill not deterministic:\n  %v\n  %v", err1, err2)
	}
}

// TestBudgetResumeMatchesUnbudgeted: a run killed mid-flight by the
// watchdog resumes from its last checkpoint under a higher budget and
// finishes bit-identical to a run that never had a budget.
func TestBudgetResumeMatchesUnbudgeted(t *testing.T) {
	prog := compileCtl(t)
	m := Default()
	clean, err := m.Run(prog)
	if err != nil {
		t.Fatal(err)
	}

	var last *rt.Checkpoint
	_, err = m.RunCtl(prog, nil, nil, &Control{
		MaxCycles:       clean.TotalCycles() / 2,
		CheckpointEvery: 3,
		Checkpoint:      func(ck *rt.Checkpoint) error { last = ck; return nil },
	})
	if !errors.Is(err, rt.ErrBudget) {
		t.Fatalf("half-budget run survived: %v", err)
	}
	if last == nil {
		t.Fatal("no checkpoint before the budget kill")
	}

	resumed, err := m.RunCtl(prog, nil, nil, &Control{
		Resume:    last,
		MaxCycles: clean.TotalCycles() * 2,
	})
	if err != nil {
		t.Fatal(err)
	}
	sameResult(t, "budget-resumed", clean, resumed)
}

// divProg produces +Inf on every lane of c: a is nonzero, b stays 0.0,
// and c = a/b runs through FDIVV.
const divProg = `program d
real a(64), b(64), c(64)
a = 1.0
b = 0.0
c = a / b
end program d
`

// TestNumericTrap: in trap mode the first NaN/Inf-producing PE float op
// fails the run with rt.ErrNumeric, attributing the instruction and
// the processing element.
func TestNumericTrap(t *testing.T) {
	prog := compileSrcCtl(t, divProg)
	m := Default()
	_, err := m.RunCtl(prog, nil, nil, &Control{Numeric: rt.NewNumeric(rt.NumericTrap)})
	if !errors.Is(err, rt.ErrNumeric) {
		t.Fatalf("want rt.ErrNumeric, got %v", err)
	}
	for _, want := range []string{"fdivv", "inf", "processing element"} {
		if !strings.Contains(err.Error(), want) {
			t.Errorf("trap error lacks %q: %v", want, err)
		}
	}
}

// TestNumericRecord: record mode tallies exceptional lanes per cycle
// class, completes the run, and leaves the results bit-identical to an
// uninstrumented run.
func TestNumericRecord(t *testing.T) {
	prog := compileSrcCtl(t, divProg)
	m := Default()
	plain, err := m.Run(prog)
	if err != nil {
		t.Fatal(err)
	}
	num := rt.NewNumeric(rt.NumericRecord)
	res, err := m.RunCtl(prog, nil, nil, &Control{Numeric: num})
	if err != nil {
		t.Fatal(err)
	}
	if num.Inf["divide"] != 64 {
		t.Errorf("Inf[divide] = %d, want 64 (one per lane)", num.Inf["divide"])
	}
	if num.Total() != 64 {
		t.Errorf("Total() = %d, want 64", num.Total())
	}
	if res.Numeric != num {
		t.Error("result does not carry the numeric plane")
	}
	sameResult(t, "numeric-record", plain, res)
}
