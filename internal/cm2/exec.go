package cm2

import (
	"context"
	"fmt"
	"math"
	"runtime"
	"sync"
	"sync/atomic"
	"time"

	"f90y/internal/nir"
	"f90y/internal/obs"
	"f90y/internal/peac"
	"f90y/internal/rt"
	"f90y/internal/shape"
)

// chunkSize bounds executor memory: registers are materialized for this
// many elements at a time. The cycle model is analytic, so the chunk size
// has no effect on reported performance, only on simulation memory. It is
// also the sharding grain of the parallel executor: chunk boundaries are
// fixed by this constant, never by the worker count, which is one of the
// two invariants that make results bit-exact under parallelism (the other
// is that chunks cover disjoint element ranges).
const chunkSize = 4096

// stream is one pointer-register binding: an array subgrid stream or a
// coordinate subgrid.
type stream struct {
	arr      *rt.Array
	coordDim int // 0 = array stream, else coordinate dimension (1-based)
}

// TestOnlyPerturb, when non-nil, runs after every routine execution
// with the routine name and the store. It exists solely so tests can
// deliberately corrupt a backend's results and assert the differential
// oracle (internal/oracle) catches them with a first-divergence report;
// production code never sets it. The hook costs one nil check per
// dispatch.
var TestOnlyPerturb func(routine string, store *rt.Store)

// ExecOpts configures one routine execution beyond the routine, shape,
// and store themselves. The zero value is the plain serial path.
type ExecOpts struct {
	// Num attaches the numeric-exception plane: destination lanes of
	// every can-trap float op are scanned for NaN/Inf after execution.
	// Nil disables the scan.
	Num *rt.Numeric
	// Subgrid is the per-PE element count of the dispatch layout, used
	// to attribute an exceptional lane to its processing element.
	Subgrid int
	// PEs is the machine's processing-element count; when positive it
	// clamps the numeric plane's PE attribution, so a caller-supplied
	// subgrid that does not tile the shape exactly can never report a
	// processing element beyond the machine.
	PEs int
	// Workers fans chunk execution out across a worker pool: 0 and 1
	// run serially, n > 1 runs n workers, negative selects GOMAXPROCS.
	// Results are bit-exact and invariant under the worker count:
	// chunks cover disjoint element ranges, so grid-local routines
	// execute independently per chunk, and every per-element value is
	// computed by the identical instruction sequence regardless of
	// which worker ran its chunk.
	Workers int
	// Rec receives pool runtime telemetry from the parallel path:
	// per-worker busy spans (one trace track per worker), chunk spans,
	// chunk-claim wait and chunk duration histograms, and utilization
	// counters, all under the "execpool/" namespace. Wall-clock only —
	// it never feeds modeled cycles, so attaching a recorder cannot
	// perturb results. Nil (or a serial run) records nothing.
	Rec obs.Recorder
	// JIT selects the compiled executor (see jit.go): the routine is
	// translated once into specialized per-instruction closures and the
	// chain runs per chunk instead of the interpreter. Results, error
	// strings, modeled cycles, and numeric tallies are bit-identical to
	// the interpreter for every worker count; only wall-clock changes.
	JIT bool
}

// ExecRoutine executes a PEAC routine functionally over the whole shape.
// All PEs run the identical program over their subgrids; executing over
// the flattened array in chunks is exact for grid-local code. It is
// shared by every machine model built on the PEAC ISA (CM/2, CM/5).
func ExecRoutine(r *peac.Routine, over shape.Shape, store *rt.Store) error {
	return ExecRoutineOpts(context.Background(), r, over, store, ExecOpts{})
}

// ExecRoutineNum is ExecRoutine under a numeric-exception plane: when
// num is active, the destination lanes of every can-trap float op are
// scanned for NaN/Inf after execution, and subgrid (the per-PE element
// count of the dispatch layout) attributes an exceptional lane to its
// processing element. A nil num is exactly ExecRoutine.
func ExecRoutineNum(r *peac.Routine, over shape.Shape, store *rt.Store, num *rt.Numeric, subgrid int) error {
	return ExecRoutineOpts(context.Background(), r, over, store, ExecOpts{Num: num, Subgrid: subgrid})
}

// ExecRoutineOpts is the full-form executor entry point: ExecRoutine
// under a context, a numeric-exception plane, and an optional chunk
// worker pool (see ExecOpts). The context is honored by the parallel
// path between chunks: a canceled context stops the fan-out and returns
// an error wrapping rt.ErrCanceled.
//
// Error and numeric-plane semantics under parallelism are deterministic:
// the error returned is always the one the serial executor would have
// hit first (the failing chunk with the lowest element range wins,
// regardless of worker completion order), and record-mode numeric
// tallies are merged per class, so totals match a serial run exactly.
// The only divergence a failing parallel run may exhibit is which
// not-yet-reported chunks also executed before the pool drained — a
// failed run's store contents are unspecified on the serial path too.
func ExecRoutineOpts(ctx context.Context, r *peac.Routine, over shape.Shape, store *rt.Store, o ExecOpts) error {
	n := shape.Size(over)
	ext := shape.Extents(over)
	lo := shape.Lowers(over)

	streams := map[int]stream{}
	scalars := map[int]float64{}
	for _, p := range r.Params {
		switch p.Kind {
		case peac.ArrayParam:
			arr, ok := store.Arrays[p.Name]
			if !ok {
				return fmt.Errorf("cm2: routine %s references undefined array %q", r.Name, p.Name)
			}
			if arr.Size() != n {
				return fmt.Errorf("cm2: array %q size %d does not conform to shape %v", p.Name, arr.Size(), over)
			}
			streams[p.Reg] = stream{arr: arr}
		case peac.CoordParam:
			if p.Dim < 1 || p.Dim > len(ext) {
				return fmt.Errorf("cm2: coordinate dim %d out of range for %v", p.Dim, over)
			}
			streams[p.Reg] = stream{coordDim: p.Dim}
		case peac.ScalarParam:
			v, ok := store.Scalars[p.Name]
			if !ok {
				return fmt.Errorf("cm2: routine %s references undefined scalar %q", r.Name, p.Name)
			}
			scalars[p.Reg] = v
		case peac.ConstParam:
			scalars[p.Reg] = p.Value
		}
	}

	// Coordinate strides (column-major).
	strideBelow := make([]int, len(ext))
	s := 1
	for d := range ext {
		strideBelow[d] = s
		s *= ext[d]
	}

	// Size the register file from the routine itself so register-file
	// ablations (pe.Options.VRegs) execute unchanged.
	nregs := peac.NumVRegs
	for _, in := range r.Body {
		for _, o := range []peac.Operand{in.A, in.B, in.C, in.D} {
			if o.Kind == peac.VReg && o.N >= nregs {
				nregs = o.N + 1
			}
		}
	}

	nchunks := (n + chunkSize - 1) / chunkSize
	workers := o.Workers
	if workers < 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > nchunks {
		workers = nchunks
	}

	// Engine selection: the interpreter (execChunk) or the compiled
	// kernel chain (jit.go). Both paths share the chunk grid, the
	// worker pool, the workspace pool, and the numeric plane, so the
	// choice changes wall-clock only.
	var prog *jitProgram
	var jstreams []stream
	nbcast := 0
	optOK := false
	if o.JIT {
		prog = jitFor(r)
		if prog.nregs > nregs {
			nregs = prog.nregs
		}
		nbcast = len(prog.scalarRegs)
		// Kernels index streams by pointer register once per strip, so
		// they get a dense slice instead of the map.
		maxReg := -1
		for reg := range streams {
			if reg > maxReg {
				maxReg = reg
			}
		}
		jstreams = make([]stream, maxReg+1)
		for reg, st := range streams {
			jstreams[reg] = st
		}
		// The optimized chain is valid unless one of its hazard stream
		// pairs — a store that executes between an elided load and one
		// of its redirected reads — binds the same array as the load in
		// this dispatch, or a sunk store's array is Integer32 (its
		// bypassed StoreLanes would have truncated, not copied).
		optOK = true
		for _, hz := range prog.hazards {
			if streams[hz[0]].arr == streams[hz[1]].arr {
				optOK = false
				break
			}
		}
		for _, s := range prog.sunk {
			if streams[s].arr.Kind == nir.Integer32 {
				optOK = false
				break
			}
		}
	}
	setup := func(ws *workspace) {
		if prog != nil {
			prog.bindScalars(ws, scalars)
		}
	}
	runChunk := func(ws *workspace, start, w int, num *rt.Numeric) error {
		if prog != nil {
			env := jitEnv{ws: ws, streams: jstreams, start: start, w: w,
				ext: ext, lo: lo, strideBelow: strideBelow,
				num: num, subgrid: o.Subgrid, npes: o.PEs, optOK: optOK}
			return prog.execChunk(&env)
		}
		return execChunk(r, ws, streams, scalars, start, w, ext, lo, strideBelow, num, o.Subgrid, o.PEs)
	}

	if workers <= 1 {
		ws := getWorkspace(nregs, r.SpillSlots, nbcast)
		defer putWorkspace(ws)
		setup(ws)
		for start := 0; start < n; start += chunkSize {
			w := min(chunkSize, n-start)
			if err := runChunk(ws, start, w, o.Num); err != nil {
				return fmt.Errorf("cm2: routine %s: %w", r.Name, err)
			}
		}
		if TestOnlyPerturb != nil {
			TestOnlyPerturb(r.Name, store)
		}
		return nil
	}

	// Parallel fan-out. Chunks are claimed off a monotone counter, so by
	// the time chunk k is claimed every chunk below k has been claimed
	// too; a failing chunk cancels further claims but already-claimed
	// chunks run to completion. Together these guarantee that the
	// lowest-indexed error is always discovered, which is exactly the
	// error the serial loop would have returned.
	cctx, cancel := context.WithCancel(ctx)
	defer cancel()
	var (
		next   atomic.Int64
		done   atomic.Int64
		failed atomic.Bool
		wg     sync.WaitGroup
	)
	errs := make([]error, nchunks)
	nums := make([]*rt.Numeric, workers)
	for wk := 0; wk < workers; wk++ {
		wg.Add(1)
		go func(wk int) {
			defer wg.Done()
			ws := getWorkspace(nregs, r.SpillSlots, nbcast)
			defer putWorkspace(ws)
			setup(ws)
			// Each worker tallies (or traps) into a private plane;
			// record-mode counts merge after the pool drains.
			var wnum *rt.Numeric
			if o.Num != nil {
				wnum = &rt.Numeric{Mode: o.Num.Mode}
				nums[wk] = wnum
			}
			// Pool telemetry: each worker records on its own track, so
			// the Chrome trace shows one lane per worker with the busy
			// span and the chunk spans inside it. All of it is gated on
			// o.Rec so the plain hot path runs unchanged.
			track := wk + 1
			if o.Rec != nil {
				obs.Add(o.Rec, "execpool/workers", 1)
				busy := obs.StartTrack(o.Rec, "worker/"+r.Name, track)
				defer busy.End()
			}
			for cctx.Err() == nil {
				var claim time.Time
				if o.Rec != nil {
					claim = time.Now()
				}
				idx := int(next.Add(1)) - 1
				if idx >= nchunks {
					return
				}
				start := idx * chunkSize
				w := min(chunkSize, n-start)
				var sp obs.Span
				var t0 time.Time
				if o.Rec != nil {
					t0 = time.Now()
					obs.Observe(o.Rec, "execpool/chunk-claim-wait-ns", float64(t0.Sub(claim).Nanoseconds()))
					sp = obs.StartTrack(o.Rec, "chunk/"+r.Name, track)
				}
				err := runChunk(ws, start, w, wnum)
				if o.Rec != nil {
					sp.End()
					obs.Observe(o.Rec, "execpool/chunk-ns", float64(time.Since(t0).Nanoseconds()))
					obs.Add(o.Rec, "execpool/chunks", 1)
					obs.Add(o.Rec, "execpool/elements", float64(w))
				}
				if err != nil {
					errs[idx] = err
					failed.Store(true)
					cancel()
					return
				}
				done.Add(1)
			}
		}(wk)
	}
	wg.Wait()

	// Merge the per-worker numeric planes before ANY exit, error paths
	// included: the serial loop tallies record-mode counts straight into
	// o.Num before returning its error, so a failing parallel run must
	// surface the tallies its workers accumulated too, not drop them.
	if o.Num != nil {
		for _, wn := range nums {
			o.Num.Merge(wn)
		}
	}
	if failed.Load() {
		for _, err := range errs {
			if err != nil {
				return fmt.Errorf("cm2: routine %s: %w", r.Name, err)
			}
		}
	}
	if int(done.Load()) < nchunks {
		// No chunk failed but not all ran: the caller's context ended.
		return fmt.Errorf("cm2: routine %s: %w", r.Name, rt.Canceled(ctx))
	}
	if TestOnlyPerturb != nil {
		TestOnlyPerturb(r.Name, store)
	}
	return nil
}

// workspace is one executor worker's private mutable state: the
// materialized vector register file, the spill area, and one fetch
// buffer per chained-memory operand position (A, B, C — each distinct
// chained stream of an instruction gets its own buffer, so an
// instruction may chain several streams without aliasing). Workspaces
// are pooled: the per-routine register-file allocation that used to
// dominate small dispatches is paid once per worker lifetime, not once
// per routine.
type workspace struct {
	regs  [][]float64
	slots [][]float64
	mem   [3][]float64
	// bcast holds the compiled executor's scalar broadcast buffers (one
	// per distinct scalar register a routine reads; see jit.go). The
	// interpreter path requests none.
	bcast [][]float64
}

var wsPool = sync.Pool{New: func() any { return &workspace{} }}

// getWorkspace returns a pooled workspace with capacity for at least
// nregs vector registers, nslots spill slots, and nbcast scalar
// broadcast buffers. Lane contents are unspecified: PEAC routines are
// single basic blocks whose register allocator guarantees definition
// before use, every op writes exactly the [0, w) lanes it is asked for,
// and the compiled path refills its broadcast buffers per dispatch.
func getWorkspace(nregs, nslots, nbcast int) *workspace {
	ws := wsPool.Get().(*workspace)
	for len(ws.regs) < nregs {
		ws.regs = append(ws.regs, make([]float64, chunkSize))
	}
	for len(ws.slots) < nslots {
		ws.slots = append(ws.slots, make([]float64, chunkSize))
	}
	for len(ws.bcast) < nbcast {
		ws.bcast = append(ws.bcast, make([]float64, chunkSize))
	}
	for i := range ws.mem {
		if ws.mem[i] == nil {
			ws.mem[i] = make([]float64, chunkSize)
		}
	}
	return ws
}

func putWorkspace(ws *workspace) { wsPool.Put(ws) }

// fetchMem reads a pointer stream for [start, start+w) into dst.
func fetchMem(st stream, dst []float64, start, w int, ext, lo, strideBelow []int) {
	if st.coordDim > 0 {
		d := st.coordDim - 1
		for i := 0; i < w; i++ {
			off := start + i
			dst[i] = float64(lo[d] + (off/strideBelow[d])%ext[d])
		}
		return
	}
	copy(dst[:w], st.arr.Data[start:start+w])
}

func execChunk(r *peac.Routine, ws *workspace, streams map[int]stream, scalars map[int]float64,
	start, w int, ext, lo, strideBelow []int, num *rt.Numeric, subgrid, npes int) error {

	regs, slots := ws.regs, ws.slots

	// source resolves one operand to a lane slice or a broadcast scalar.
	// A chained memory operand is fetched into buf — each operand
	// position passes its own buffer, so an instruction with several
	// chained streams (Mem in A and B, an FSTRV with a Mem source or
	// mask) reads each stream's own lanes, never another operand's
	// leftover fetch.
	source := func(o peac.Operand, buf []float64) ([]float64, float64, error) {
		switch o.Kind {
		case peac.VReg:
			return regs[o.N], 0, nil
		case peac.SReg:
			return nil, scalars[o.N], nil
		case peac.SpillSlot:
			return slots[o.N], 0, nil
		case peac.Mem:
			st, ok := streams[o.N]
			if !ok {
				return nil, 0, fmt.Errorf("chained load from unbound pointer aP%d", o.N)
			}
			fetchMem(st, buf, start, w, ext, lo, strideBelow)
			return buf, 0, nil
		}
		return nil, 0, nil
	}

	at := func(sl []float64, sc float64, i int) float64 {
		if sl != nil {
			return sl[i]
		}
		return sc
	}

	for idx, in := range r.Body {
		switch in.Op {
		case peac.JNZ, peac.NOP:
			continue
		case peac.FLODV:
			st, ok := streams[in.A.N]
			if !ok {
				return fmt.Errorf("load from unbound pointer aP%d", in.A.N)
			}
			fetchMem(st, regs[in.D.N], start, w, ext, lo, strideBelow)
			continue
		case peac.RESTV:
			copy(regs[in.D.N][:w], slots[in.A.N][:w])
			continue
		case peac.SPILLV:
			copy(slots[in.D.N][:w], regs[in.A.N][:w])
			continue
		case peac.FSTRV:
			// The unbound-pointer taxonomy: a target register no param
			// binds is "unbound"; one bound to a coordinate stream is a
			// distinct, read-only-target error (coordinates are computed,
			// not stored). The compiled path produces both byte-identically.
			st, ok := streams[in.D.N]
			if !ok {
				return fmt.Errorf("store to unbound pointer aP%d", in.D.N)
			}
			if st.arr == nil {
				return fmt.Errorf("store to coordinate stream aP%d", in.D.N)
			}
			src, srcSc, err := source(in.A, ws.mem[0])
			if err != nil {
				return err
			}
			if in.C.Kind != peac.NoOperand {
				mask, maskSc, err := source(in.C, ws.mem[2])
				if err != nil {
					return err
				}
				for i := 0; i < w; i++ {
					if at(mask, maskSc, i) != 0 {
						st.arr.StoreVal(start+i, at(src, srcSc, i))
					}
				}
			} else {
				for i := 0; i < w; i++ {
					st.arr.StoreVal(start+i, at(src, srcSc, i))
				}
			}
			continue
		}

		// Arithmetic: resolve the sources, fetching each chained memory
		// operand into its own per-position buffer.
		av, asc, err := source(in.A, ws.mem[0])
		if err != nil {
			return err
		}
		bv, bsc, err := source(in.B, ws.mem[1])
		if err != nil {
			return err
		}
		cv, csc, err := source(in.C, ws.mem[2])
		if err != nil {
			return err
		}
		dst := regs[in.D.N]

		switch in.Op {
		case peac.FADDV:
			for i := 0; i < w; i++ {
				dst[i] = at(av, asc, i) + at(bv, bsc, i)
			}
		case peac.FSUBV:
			for i := 0; i < w; i++ {
				dst[i] = at(av, asc, i) - at(bv, bsc, i)
			}
		case peac.FMULV:
			for i := 0; i < w; i++ {
				dst[i] = at(av, asc, i) * at(bv, bsc, i)
			}
		case peac.FDIVV:
			if in.IntOp {
				for i := 0; i < w; i++ {
					d := at(bv, bsc, i)
					if d == 0 {
						return fmt.Errorf("integer division by zero")
					}
					dst[i] = math.Trunc(at(av, asc, i) / d)
				}
			} else {
				for i := 0; i < w; i++ {
					dst[i] = at(av, asc, i) / at(bv, bsc, i)
				}
			}
		case peac.FMODV:
			if in.IntOp {
				for i := 0; i < w; i++ {
					d := at(bv, bsc, i)
					if d == 0 {
						return fmt.Errorf("mod by zero")
					}
					x := at(av, asc, i)
					dst[i] = x - math.Trunc(x/d)*d
				}
			} else {
				for i := 0; i < w; i++ {
					dst[i] = math.Mod(at(av, asc, i), at(bv, bsc, i))
				}
			}
		case peac.FMINV:
			for i := 0; i < w; i++ {
				dst[i] = math.Min(at(av, asc, i), at(bv, bsc, i))
			}
		case peac.FMAXV:
			for i := 0; i < w; i++ {
				dst[i] = math.Max(at(av, asc, i), at(bv, bsc, i))
			}
		case peac.FMADDV:
			for i := 0; i < w; i++ {
				dst[i] = at(av, asc, i)*at(bv, bsc, i) + at(cv, csc, i)
			}
		case peac.FMSUBV:
			for i := 0; i < w; i++ {
				dst[i] = at(av, asc, i)*at(bv, bsc, i) - at(cv, csc, i)
			}
		case peac.FNEGV:
			for i := 0; i < w; i++ {
				dst[i] = -at(av, asc, i)
			}
		case peac.FABSV:
			for i := 0; i < w; i++ {
				dst[i] = math.Abs(at(av, asc, i))
			}
		case peac.FSQRTV:
			for i := 0; i < w; i++ {
				dst[i] = math.Sqrt(at(av, asc, i))
			}
		case peac.FSINV:
			for i := 0; i < w; i++ {
				dst[i] = math.Sin(at(av, asc, i))
			}
		case peac.FCOSV:
			for i := 0; i < w; i++ {
				dst[i] = math.Cos(at(av, asc, i))
			}
		case peac.FTANV:
			for i := 0; i < w; i++ {
				dst[i] = math.Tan(at(av, asc, i))
			}
		case peac.FEXPV:
			for i := 0; i < w; i++ {
				dst[i] = math.Exp(at(av, asc, i))
			}
		case peac.FLOGV:
			for i := 0; i < w; i++ {
				dst[i] = math.Log(at(av, asc, i))
			}
		case peac.FTRNCV:
			for i := 0; i < w; i++ {
				dst[i] = math.Trunc(at(av, asc, i))
			}
		case peac.FMOVV:
			for i := 0; i < w; i++ {
				dst[i] = at(av, asc, i)
			}
		case peac.FCMPV:
			for i := 0; i < w; i++ {
				x, y := at(av, asc, i), at(bv, bsc, i)
				var t bool
				switch in.Cmp {
				case peac.CmpEQ:
					t = x == y
				case peac.CmpNE:
					t = x != y
				case peac.CmpLT:
					t = x < y
				case peac.CmpLE:
					t = x <= y
				case peac.CmpGT:
					t = x > y
				case peac.CmpGE:
					t = x >= y
				}
				dst[i] = b2f(t)
			}
		case peac.FANDV:
			for i := 0; i < w; i++ {
				dst[i] = b2f(at(av, asc, i) != 0 && at(bv, bsc, i) != 0)
			}
		case peac.FORV:
			for i := 0; i < w; i++ {
				dst[i] = b2f(at(av, asc, i) != 0 || at(bv, bsc, i) != 0)
			}
		case peac.FEQVV:
			for i := 0; i < w; i++ {
				dst[i] = b2f((at(av, asc, i) != 0) == (at(bv, bsc, i) != 0))
			}
		case peac.FNEQV:
			for i := 0; i < w; i++ {
				dst[i] = b2f((at(av, asc, i) != 0) != (at(bv, bsc, i) != 0))
			}
		case peac.FNOTV:
			for i := 0; i < w; i++ {
				dst[i] = b2f(at(av, asc, i) == 0)
			}
		case peac.FSELV:
			for i := 0; i < w; i++ {
				if at(cv, csc, i) != 0 {
					dst[i] = at(av, asc, i)
				} else {
					dst[i] = at(bv, bsc, i)
				}
			}
		default:
			return fmt.Errorf("unimplemented opcode %v", in.Mnemonic())
		}
		if num != nil && num.Mode != rt.NumericOff && peac.CanTrap(in.Op) {
			if err := scanNumeric(num, idx, in.Mnemonic(), peac.ClassOf(in).String(), dst, start, w, subgrid, npes); err != nil {
				return err
			}
		}
	}
	return nil
}

// scanNumeric is the numeric-exception plane: it inspects the freshly
// written destination lanes of one can-trap float op. Trap mode halts
// at the first exceptional lane with instruction, element, and PE
// attribution (the caller prepends the routine name); record mode
// tallies lanes per cycle class and lets the run continue. When npes is
// positive the PE attribution is clamped to the machine: a subgrid that
// does not tile the shape exactly can otherwise compute an element-to-PE
// quotient past the last processing element.
//
// The mnemonic and class strings are parameters so both executors share
// one formatter: the interpreter computes them per scan, the compiled
// path precomputes them per instruction — either way the trap message
// and the record-mode class keys are byte-identical.
func scanNumeric(num *rt.Numeric, idx int, mnemonic, class string, dst []float64, start, w, subgrid, npes int) error {
	for i := 0; i < w; i++ {
		v := dst[i]
		nan := v != v
		if !nan && !math.IsInf(v, 0) {
			continue
		}
		if num.Mode == rt.NumericTrap {
			kind := "inf"
			if nan {
				kind = "nan"
			}
			pe := 0
			if subgrid > 0 {
				pe = (start + i) / subgrid
				if npes > 0 && pe >= npes {
					pe = npes - 1
				}
			}
			return fmt.Errorf("instr %d %s: %s produced at element %d (processing element %d): %w",
				idx, mnemonic, kind, start+i, pe, rt.ErrNumeric)
		}
		num.Note(class, nan)
	}
	return nil
}

func b2f(b bool) float64 {
	if b {
		return 1
	}
	return 0
}
