package cm2

import (
	"fmt"
	"math"

	"f90y/internal/peac"
	"f90y/internal/rt"
	"f90y/internal/shape"
)

// chunkSize bounds executor memory: registers are materialized for this
// many elements at a time. The cycle model is analytic, so the chunk size
// has no effect on reported performance, only on simulation memory.
const chunkSize = 4096

// stream is one pointer-register binding: an array subgrid stream or a
// coordinate subgrid.
type stream struct {
	arr      *rt.Array
	coordDim int // 0 = array stream, else coordinate dimension (1-based)
}

// TestOnlyPerturb, when non-nil, runs after every routine execution
// with the routine name and the store. It exists solely so tests can
// deliberately corrupt a backend's results and assert the differential
// oracle (internal/oracle) catches them with a first-divergence report;
// production code never sets it. The hook costs one nil check per
// dispatch.
var TestOnlyPerturb func(routine string, store *rt.Store)

// ExecRoutine executes a PEAC routine functionally over the whole shape.
// All PEs run the identical program over their subgrids; executing over
// the flattened array in chunks is exact for grid-local code. It is
// shared by every machine model built on the PEAC ISA (CM/2, CM/5).
func ExecRoutine(r *peac.Routine, over shape.Shape, store *rt.Store) error {
	return ExecRoutineNum(r, over, store, nil, 0)
}

// ExecRoutineNum is ExecRoutine under a numeric-exception plane: when
// num is active, the destination lanes of every can-trap float op are
// scanned for NaN/Inf after execution, and subgrid (the per-PE element
// count of the dispatch layout) attributes an exceptional lane to its
// processing element. A nil num is exactly ExecRoutine.
func ExecRoutineNum(r *peac.Routine, over shape.Shape, store *rt.Store, num *rt.Numeric, subgrid int) error {
	n := shape.Size(over)
	ext := shape.Extents(over)
	lo := shape.Lowers(over)

	streams := map[int]stream{}
	scalars := map[int]float64{}
	for _, p := range r.Params {
		switch p.Kind {
		case peac.ArrayParam:
			arr, ok := store.Arrays[p.Name]
			if !ok {
				return fmt.Errorf("cm2: routine %s references undefined array %q", r.Name, p.Name)
			}
			if arr.Size() != n {
				return fmt.Errorf("cm2: array %q size %d does not conform to shape %v", p.Name, arr.Size(), over)
			}
			streams[p.Reg] = stream{arr: arr}
		case peac.CoordParam:
			if p.Dim < 1 || p.Dim > len(ext) {
				return fmt.Errorf("cm2: coordinate dim %d out of range for %v", p.Dim, over)
			}
			streams[p.Reg] = stream{coordDim: p.Dim}
		case peac.ScalarParam:
			v, ok := store.Scalars[p.Name]
			if !ok {
				return fmt.Errorf("cm2: routine %s references undefined scalar %q", r.Name, p.Name)
			}
			scalars[p.Reg] = v
		case peac.ConstParam:
			scalars[p.Reg] = p.Value
		}
	}

	// Coordinate strides (column-major).
	strideBelow := make([]int, len(ext))
	s := 1
	for d := range ext {
		strideBelow[d] = s
		s *= ext[d]
	}

	// Size the register file from the routine itself so register-file
	// ablations (pe.Options.VRegs) execute unchanged.
	nregs := peac.NumVRegs
	for _, in := range r.Body {
		for _, o := range []peac.Operand{in.A, in.B, in.C, in.D} {
			if o.Kind == peac.VReg && o.N >= nregs {
				nregs = o.N + 1
			}
		}
	}
	regs := make([][]float64, nregs)
	for i := range regs {
		regs[i] = make([]float64, chunkSize)
	}
	slots := make([][]float64, r.SpillSlots)
	for i := range slots {
		slots[i] = make([]float64, chunkSize)
	}
	memBuf := make([]float64, chunkSize)

	for start := 0; start < n; start += chunkSize {
		w := min(chunkSize, n-start)
		if err := execChunk(r, regs, slots, memBuf, streams, scalars, start, w, ext, lo, strideBelow, num, subgrid); err != nil {
			return fmt.Errorf("cm2: routine %s: %w", r.Name, err)
		}
	}
	if TestOnlyPerturb != nil {
		TestOnlyPerturb(r.Name, store)
	}
	return nil
}

// fetchMem reads a pointer stream for [start, start+w) into dst.
func fetchMem(st stream, dst []float64, start, w int, ext, lo, strideBelow []int) {
	if st.coordDim > 0 {
		d := st.coordDim - 1
		for i := 0; i < w; i++ {
			off := start + i
			dst[i] = float64(lo[d] + (off/strideBelow[d])%ext[d])
		}
		return
	}
	copy(dst[:w], st.arr.Data[start:start+w])
}

// operandVals resolves an operand to either a lane slice or a broadcast
// scalar.
func operandVals(o peac.Operand, regs, slots [][]float64, scalars map[int]float64, memBuf []float64) (sl []float64, sc float64) {
	switch o.Kind {
	case peac.VReg:
		return regs[o.N], 0
	case peac.SReg:
		return nil, scalars[o.N]
	case peac.Mem:
		return memBuf, 0 // caller pre-fetched
	case peac.SpillSlot:
		return slots[o.N], 0
	}
	return nil, 0
}

func execChunk(r *peac.Routine, regs, slots [][]float64, memBuf []float64,
	streams map[int]stream, scalars map[int]float64,
	start, w int, ext, lo, strideBelow []int, num *rt.Numeric, subgrid int) error {

	at := func(sl []float64, sc float64, i int) float64 {
		if sl != nil {
			return sl[i]
		}
		return sc
	}

	for idx, in := range r.Body {
		switch in.Op {
		case peac.JNZ, peac.NOP:
			continue
		case peac.FLODV:
			st, ok := streams[in.A.N]
			if !ok {
				return fmt.Errorf("load from unbound pointer aP%d", in.A.N)
			}
			fetchMem(st, regs[in.D.N], start, w, ext, lo, strideBelow)
			continue
		case peac.RESTV:
			copy(regs[in.D.N][:w], slots[in.A.N][:w])
			continue
		case peac.SPILLV:
			copy(slots[in.D.N][:w], regs[in.A.N][:w])
			continue
		case peac.FSTRV:
			st, ok := streams[in.D.N]
			if !ok || st.arr == nil {
				return fmt.Errorf("store to unbound pointer aP%d", in.D.N)
			}
			src, srcSc := operandVals(in.A, regs, slots, scalars, memBuf)
			if in.C.Kind != peac.NoOperand {
				mask, maskSc := operandVals(in.C, regs, slots, scalars, memBuf)
				for i := 0; i < w; i++ {
					if at(mask, maskSc, i) != 0 {
						st.arr.StoreVal(start+i, at(src, srcSc, i))
					}
				}
			} else {
				for i := 0; i < w; i++ {
					st.arr.StoreVal(start+i, at(src, srcSc, i))
				}
			}
			continue
		}

		// Arithmetic: resolve a chained memory operand first.
		a, b, c := in.A, in.B, in.C
		if a.Kind == peac.Mem {
			st, ok := streams[a.N]
			if !ok {
				return fmt.Errorf("chained load from unbound pointer aP%d", a.N)
			}
			fetchMem(st, memBuf, start, w, ext, lo, strideBelow)
		} else if b.Kind == peac.Mem {
			st, ok := streams[b.N]
			if !ok {
				return fmt.Errorf("chained load from unbound pointer aP%d", b.N)
			}
			fetchMem(st, memBuf, start, w, ext, lo, strideBelow)
		}
		av, asc := operandVals(a, regs, slots, scalars, memBuf)
		bv, bsc := operandVals(b, regs, slots, scalars, memBuf)
		cv, csc := operandVals(c, regs, slots, scalars, memBuf)
		dst := regs[in.D.N]

		switch in.Op {
		case peac.FADDV:
			for i := 0; i < w; i++ {
				dst[i] = at(av, asc, i) + at(bv, bsc, i)
			}
		case peac.FSUBV:
			for i := 0; i < w; i++ {
				dst[i] = at(av, asc, i) - at(bv, bsc, i)
			}
		case peac.FMULV:
			for i := 0; i < w; i++ {
				dst[i] = at(av, asc, i) * at(bv, bsc, i)
			}
		case peac.FDIVV:
			if in.IntOp {
				for i := 0; i < w; i++ {
					d := at(bv, bsc, i)
					if d == 0 {
						return fmt.Errorf("integer division by zero")
					}
					dst[i] = math.Trunc(at(av, asc, i) / d)
				}
			} else {
				for i := 0; i < w; i++ {
					dst[i] = at(av, asc, i) / at(bv, bsc, i)
				}
			}
		case peac.FMODV:
			if in.IntOp {
				for i := 0; i < w; i++ {
					d := at(bv, bsc, i)
					if d == 0 {
						return fmt.Errorf("mod by zero")
					}
					x := at(av, asc, i)
					dst[i] = x - math.Trunc(x/d)*d
				}
			} else {
				for i := 0; i < w; i++ {
					dst[i] = math.Mod(at(av, asc, i), at(bv, bsc, i))
				}
			}
		case peac.FMINV:
			for i := 0; i < w; i++ {
				dst[i] = math.Min(at(av, asc, i), at(bv, bsc, i))
			}
		case peac.FMAXV:
			for i := 0; i < w; i++ {
				dst[i] = math.Max(at(av, asc, i), at(bv, bsc, i))
			}
		case peac.FMADDV:
			for i := 0; i < w; i++ {
				dst[i] = at(av, asc, i)*at(bv, bsc, i) + at(cv, csc, i)
			}
		case peac.FMSUBV:
			for i := 0; i < w; i++ {
				dst[i] = at(av, asc, i)*at(bv, bsc, i) - at(cv, csc, i)
			}
		case peac.FNEGV:
			for i := 0; i < w; i++ {
				dst[i] = -at(av, asc, i)
			}
		case peac.FABSV:
			for i := 0; i < w; i++ {
				dst[i] = math.Abs(at(av, asc, i))
			}
		case peac.FSQRTV:
			for i := 0; i < w; i++ {
				dst[i] = math.Sqrt(at(av, asc, i))
			}
		case peac.FSINV:
			for i := 0; i < w; i++ {
				dst[i] = math.Sin(at(av, asc, i))
			}
		case peac.FCOSV:
			for i := 0; i < w; i++ {
				dst[i] = math.Cos(at(av, asc, i))
			}
		case peac.FTANV:
			for i := 0; i < w; i++ {
				dst[i] = math.Tan(at(av, asc, i))
			}
		case peac.FEXPV:
			for i := 0; i < w; i++ {
				dst[i] = math.Exp(at(av, asc, i))
			}
		case peac.FLOGV:
			for i := 0; i < w; i++ {
				dst[i] = math.Log(at(av, asc, i))
			}
		case peac.FTRNCV:
			for i := 0; i < w; i++ {
				dst[i] = math.Trunc(at(av, asc, i))
			}
		case peac.FMOVV:
			for i := 0; i < w; i++ {
				dst[i] = at(av, asc, i)
			}
		case peac.FCMPV:
			for i := 0; i < w; i++ {
				x, y := at(av, asc, i), at(bv, bsc, i)
				var t bool
				switch in.Cmp {
				case peac.CmpEQ:
					t = x == y
				case peac.CmpNE:
					t = x != y
				case peac.CmpLT:
					t = x < y
				case peac.CmpLE:
					t = x <= y
				case peac.CmpGT:
					t = x > y
				case peac.CmpGE:
					t = x >= y
				}
				dst[i] = b2f(t)
			}
		case peac.FANDV:
			for i := 0; i < w; i++ {
				dst[i] = b2f(at(av, asc, i) != 0 && at(bv, bsc, i) != 0)
			}
		case peac.FORV:
			for i := 0; i < w; i++ {
				dst[i] = b2f(at(av, asc, i) != 0 || at(bv, bsc, i) != 0)
			}
		case peac.FEQVV:
			for i := 0; i < w; i++ {
				dst[i] = b2f((at(av, asc, i) != 0) == (at(bv, bsc, i) != 0))
			}
		case peac.FNEQV:
			for i := 0; i < w; i++ {
				dst[i] = b2f((at(av, asc, i) != 0) != (at(bv, bsc, i) != 0))
			}
		case peac.FNOTV:
			for i := 0; i < w; i++ {
				dst[i] = b2f(at(av, asc, i) == 0)
			}
		case peac.FSELV:
			for i := 0; i < w; i++ {
				if at(cv, csc, i) != 0 {
					dst[i] = at(av, asc, i)
				} else {
					dst[i] = at(bv, bsc, i)
				}
			}
		default:
			return fmt.Errorf("unimplemented opcode %v", in.Mnemonic())
		}
		if num != nil && num.Mode != rt.NumericOff && peac.CanTrap(in.Op) {
			if err := scanNumeric(num, idx, in, dst, start, w, subgrid); err != nil {
				return err
			}
		}
	}
	return nil
}

// scanNumeric is the numeric-exception plane: it inspects the freshly
// written destination lanes of one can-trap float op. Trap mode halts
// at the first exceptional lane with instruction, element, and PE
// attribution (the caller prepends the routine name); record mode
// tallies lanes per cycle class and lets the run continue.
func scanNumeric(num *rt.Numeric, idx int, in peac.Instr, dst []float64, start, w, subgrid int) error {
	class := peac.ClassOf(in).String()
	for i := 0; i < w; i++ {
		v := dst[i]
		nan := v != v
		if !nan && !math.IsInf(v, 0) {
			continue
		}
		if num.Mode == rt.NumericTrap {
			kind := "inf"
			if nan {
				kind = "nan"
			}
			pe := 0
			if subgrid > 0 {
				pe = (start + i) / subgrid
			}
			return fmt.Errorf("instr %d %s: %s produced at element %d (processing element %d): %w",
				idx, in.Mnemonic(), kind, start+i, pe, rt.ErrNumeric)
		}
		num.Note(class, nan)
	}
	return nil
}

func b2f(b bool) float64 {
	if b {
		return 1
	}
	return 0
}
