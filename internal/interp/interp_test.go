package interp

import (
	"math"
	"strings"
	"testing"

	"f90y/internal/parser"
)

func run(t *testing.T, src string) *Machine {
	t.Helper()
	prog, err := parser.Parse("test.f90", src)
	if err != nil {
		t.Fatalf("parse: %v", err)
	}
	m, err := Run(prog)
	if err != nil {
		t.Fatalf("run: %v\nsource:\n%s", err, src)
	}
	return m
}

func wrap(body string) string {
	return "program t\n" + body + "\nend program t\n"
}

func checkInts(t *testing.T, m *Machine, name string, want []int64) {
	t.Helper()
	a := m.Array(name)
	if a == nil {
		t.Fatalf("array %q missing", name)
	}
	if len(a.I) != len(want) {
		t.Fatalf("%q has %d elements, want %d", name, len(a.I), len(want))
	}
	for i := range want {
		if a.I[i] != want[i] {
			t.Fatalf("%q[%d] = %d, want %d (all: %v)", name, i, a.I[i], want[i], a.I)
		}
	}
}

func checkFloats(t *testing.T, m *Machine, name string, want []float64) {
	t.Helper()
	a := m.Array(name)
	if a == nil {
		t.Fatalf("array %q missing", name)
	}
	for i := range want {
		if math.Abs(a.F[i]-want[i]) > 1e-12 {
			t.Fatalf("%q[%d] = %v, want %v", name, i, a.F[i], want[i])
		}
	}
}

func TestPaperEquivalence(t *testing.T) {
	// §2.1 asserts the F77 loop nest and the F90 assignments are
	// equivalent; the oracle must agree with itself on both.
	f77 := `
program old
integer k(8,4), l(8)
integer i, j
do 10 i=1,8
   l(i) = 6
   do 20 j=1,4
      k(i,j) = 2*k(i,j) + 5
20 continue
10 continue
end program old
`
	f90 := wrap("integer k(8,4), l(8)\nl = 6\nk = 2*k + 5")
	m1 := run(t, f77)
	m2 := run(t, f90)
	for i := 0; i < 32; i++ {
		if m1.Array("k").I[i] != m2.Array("k").I[i] {
			t.Fatalf("k[%d]: %d vs %d", i, m1.Array("k").I[i], m2.Array("k").I[i])
		}
	}
	checkInts(t, m1, "l", []int64{6, 6, 6, 6, 6, 6, 6, 6})
	if m2.Array("k").I[0] != 5 {
		t.Fatalf("k starts zeroed, 2*0+5 = 5, got %d", m2.Array("k").I[0])
	}
}

func TestSectionCopyOverlapSafety(t *testing.T) {
	// §2.1: L(32:64) = L(96:128) — RHS evaluated before store. Use a
	// small analogue with genuinely overlapping sections.
	m := run(t, wrap(`integer l(8)
integer i
do i = 1, 8
  l(i) = i
end do
l(1:4) = l(3:6)`))
	checkInts(t, m, "l", []int64{3, 4, 5, 6, 5, 6, 7, 8})

	// Self-overlap where naive in-place copy would corrupt.
	m2 := run(t, wrap(`integer a(6)
integer i
do i = 1, 6
  a(i) = i
end do
a(2:6) = a(1:5)`))
	checkInts(t, m2, "a", []int64{1, 1, 2, 3, 4, 5})
}

func TestStrideSections(t *testing.T) {
	// Fig. 10 semantics.
	m := run(t, wrap(`integer a(8), b(8)
integer i
do i = 1, 8
  a(i) = i*10
end do
b = 0
b(1:8:2) = a(1:8:2)
b(2:8:2) = 5*a(2:8:2)`))
	checkInts(t, m, "b", []int64{10, 100, 30, 200, 50, 300, 70, 400})
}

func TestPowerSemantics(t *testing.T) {
	m := run(t, wrap(`integer k(4)
real x
integer i
do i = 1, 4
  k(i) = i
end do
k = k**2
x = 2.0**(-2)`))
	checkInts(t, m, "k", []int64{1, 4, 9, 16})
	if v, _ := m.Scalar("x"); math.Abs(v.F-0.25) > 1e-15 {
		t.Fatalf("x = %v", v)
	}
}

func TestIntegerDivisionTruncates(t *testing.T) {
	m := run(t, wrap("integer a\ninteger b\na = 7/2\nb = -7/2"))
	if v, _ := m.Scalar("a"); v.I != 3 {
		t.Fatalf("7/2 = %d", v.I)
	}
	if v, _ := m.Scalar("b"); v.I != -3 {
		t.Fatalf("-7/2 = %d", v.I)
	}
}

func TestCshiftSemantics(t *testing.T) {
	m := run(t, wrap(`integer a(4), b(4), c(4)
integer i
do i = 1, 4
  a(i) = i
end do
b = cshift(a, 1)
c = cshift(a, shift=-1)`))
	checkInts(t, m, "b", []int64{2, 3, 4, 1})
	checkInts(t, m, "c", []int64{4, 1, 2, 3})
}

func TestCshift2D(t *testing.T) {
	// Column-major 2x2: a = [[1,3],[2,4]] stored 1,2,3,4.
	m := run(t, wrap(`integer a(2,2), b(2,2), c(2,2)
a(1,1) = 1
a(2,1) = 2
a(1,2) = 3
a(2,2) = 4
b = cshift(a, 1, 1)
c = cshift(a, 1, 2)`))
	// Shift along dim 1 (rows): b(i,j) = a(i+1,j) circular.
	checkInts(t, m, "b", []int64{2, 1, 4, 3})
	// Shift along dim 2 (cols): c(i,j) = a(i,j+1) circular.
	checkInts(t, m, "c", []int64{3, 4, 1, 2})
}

func TestEoshift(t *testing.T) {
	m := run(t, wrap(`integer a(4), b(4)
integer i
do i = 1, 4
  a(i) = i
end do
b = eoshift(a, 1, boundary=-9)`))
	checkInts(t, m, "b", []int64{2, 3, 4, -9})
}

func TestWhereElsewhere(t *testing.T) {
	m := run(t, wrap(`real a(6), b(6)
integer i
do i = 1, 6
  a(i) = i - 3.5
end do
where (a > 0)
  b = a
elsewhere
  b = -a
end where`))
	checkFloats(t, m, "b", []float64{2.5, 1.5, 0.5, 0.5, 1.5, 2.5})
}

func TestWhereMaskFixedBeforeBody(t *testing.T) {
	// The body writes a, which the mask reads: mask must be evaluated once.
	m := run(t, wrap(`real a(4)
a(1) = -1
a(2) = 1
a(3) = -2
a(4) = 2
where (a > 0) a = -a`))
	checkFloats(t, m, "a", []float64{-1, -1, -2, -2})
}

func TestForallSemantics(t *testing.T) {
	m := run(t, wrap("integer, array(3,3) :: a\nforall (i=1:3, j=1:3) a(i,j) = i + 10*j"))
	checkInts(t, m, "a", []int64{11, 12, 13, 21, 22, 23, 31, 32, 33})
}

func TestForallEvaluatesBeforeStore(t *testing.T) {
	// a(i) = a(i+1) in FORALL uses original values everywhere.
	m := run(t, wrap(`integer a(4)
integer i
do i = 1, 4
  a(i) = i
end do
forall (i=1:3) a(i) = a(i+1)`))
	checkInts(t, m, "a", []int64{2, 3, 4, 4})
}

func TestForallWithMask(t *testing.T) {
	m := run(t, wrap("integer, array(3,3) :: a\na = 7\nforall (i=1:3, j=1:3, i /= j) a(i,j) = 0"))
	checkInts(t, m, "a", []int64{7, 0, 0, 0, 7, 0, 0, 0, 7})
}

func TestReductions(t *testing.T) {
	m := run(t, wrap(`real a(5)
real s, mx, mn
integer i
do i = 1, 5
  a(i) = i*1.5
end do
s = sum(a)
mx = maxval(a)
mn = minval(a)`))
	if v, _ := m.Scalar("s"); math.Abs(v.F-22.5) > 1e-12 {
		t.Fatalf("sum = %v", v.F)
	}
	if v, _ := m.Scalar("mx"); v.F != 7.5 {
		t.Fatalf("maxval = %v", v.F)
	}
	if v, _ := m.Scalar("mn"); v.F != 1.5 {
		t.Fatalf("minval = %v", v.F)
	}
}

func TestTransposeAndDot(t *testing.T) {
	m := run(t, wrap(`integer, array(2,3) :: a
integer, array(3,2) :: b
integer v(3), w(3)
integer d
forall (i=1:2, j=1:3) a(i,j) = 10*i + j
b = transpose(a)
forall (i=1:3) v(i) = i
forall (i=1:3) w(i) = i + 1
d = dot_product(v, w)`))
	// b(j,i) = a(i,j).
	checkInts(t, m, "b", []int64{11, 12, 13, 21, 22, 23})
	if v, _ := m.Scalar("d"); v.I != 1*2+2*3+3*4 {
		t.Fatalf("dot = %d", v.I)
	}
}

func TestSpread(t *testing.T) {
	m := run(t, wrap(`integer v(3)
integer, array(2,3) :: a
forall (i=1:3) v(i) = i
a = spread(v, 1, 2)`))
	checkInts(t, m, "a", []int64{1, 1, 2, 2, 3, 3})
}

func TestMergeIntrinsic(t *testing.T) {
	m := run(t, wrap(`integer a(4), b(4), c(4)
integer i
do i = 1, 4
  a(i) = i
  b(i) = -i
end do
c = merge(a, b, a > 2)`))
	checkInts(t, m, "c", []int64{-1, -2, 3, 4})
}

func TestDoWhileAndIf(t *testing.T) {
	m := run(t, wrap(`integer i, s
i = 1
s = 0
do while (i <= 10)
  if (mod(i, 2) == 0) then
    s = s + i
  end if
  i = i + 1
end do`))
	if v, _ := m.Scalar("s"); v.I != 30 {
		t.Fatalf("s = %d", v.I)
	}
}

func TestNegativeStepLoop(t *testing.T) {
	m := run(t, wrap(`integer a(5)
integer i, n
n = 0
do i = 5, 1, -1
  n = n + 1
  a(n) = i
end do`))
	checkInts(t, m, "a", []int64{5, 4, 3, 2, 1})
}

func TestPrintOutput(t *testing.T) {
	m := run(t, wrap("integer i\ni = 42\nprint *, 'i =', i\nprint *, i*2"))
	out := m.Output()
	if len(out) != 2 || out[0] != "i = 42" || out[1] != "84" {
		t.Fatalf("output = %q", out)
	}
}

func TestStopUnwinds(t *testing.T) {
	m := run(t, wrap("integer i\ni = 1\nstop\ni = 2"))
	if v, _ := m.Scalar("i"); v.I != 1 {
		t.Fatalf("i = %d after stop", v.I)
	}
}

func TestParameters(t *testing.T) {
	m := run(t, wrap("integer, parameter :: n = 4\nreal, parameter :: g = 9.8\nreal a(n)\na = g"))
	checkFloats(t, m, "a", []float64{9.8, 9.8, 9.8, 9.8})
}

func TestExplicitLowerBounds(t *testing.T) {
	m := run(t, wrap(`real, dimension(0:3) :: a
integer i
do i = 0, 3
  a(i) = i*2.0
end do
a(0:1) = a(2:3)`))
	checkFloats(t, m, "a", []float64{4, 6, 4, 6})
}

func TestOutOfBoundsError(t *testing.T) {
	prog, err := parser.Parse("t.f90", wrap("integer a(4)\na(5) = 1"))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := Run(prog); err == nil || !strings.Contains(err.Error(), "out of bounds") {
		t.Fatalf("err = %v", err)
	}
}

func TestDivisionByZeroError(t *testing.T) {
	prog, err := parser.Parse("t.f90", wrap("integer a\ninteger b\nb = 0\na = 1/b"))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := Run(prog); err == nil {
		t.Fatal("expected division-by-zero error")
	}
}

func TestRankReducedSection(t *testing.T) {
	m := run(t, wrap(`integer, array(3,3) :: a
integer c(3)
forall (i=1:3, j=1:3) a(i,j) = 10*i + j
c = a(2,1:3)`))
	checkInts(t, m, "c", []int64{21, 22, 23})
}

func TestElementalIntrinsicOnArray(t *testing.T) {
	m := run(t, wrap(`real a(3), b(3)
a(1) = 4.0
a(2) = 9.0
a(3) = 16.0
b = sqrt(a)`))
	checkFloats(t, m, "b", []float64{2, 3, 4})
}
