package interp

import (
	"fmt"
	"math"

	"f90y/internal/ast"
)

func (m *Machine) evalScalar(e ast.Expr) (Val, error) {
	r, err := m.eval(e)
	if err != nil {
		return Val{}, err
	}
	if r.isArray() {
		return Val{}, fmt.Errorf("%s: scalar value required", e.Position())
	}
	return r.Val, nil
}

func (m *Machine) eval(e ast.Expr) (result, error) {
	switch e := e.(type) {
	case *ast.IntLit:
		return scalarResult(IntVal(e.Value)), nil
	case *ast.RealLit:
		return scalarResult(RealVal(e.Value)), nil
	case *ast.LogicalLit:
		return scalarResult(BoolVal(e.Value)), nil
	case *ast.StringLit:
		return result{Str: e.Value, IsStr: true}, nil
	case *ast.Ident:
		if v, ok := m.params[e.Name]; ok {
			return scalarResult(v), nil
		}
		if p, ok := m.scalars[e.Name]; ok {
			return scalarResult(*p), nil
		}
		if a, ok := m.arrays[e.Name]; ok {
			return arrayResult(a.Clone()), nil
		}
		return result{}, fmt.Errorf("%s: undefined identifier %q", e.Pos, e.Name)
	case *ast.Unary:
		return m.evalUnary(e)
	case *ast.Binary:
		return m.evalBinary(e)
	case *ast.Index:
		return m.evalIndex(e)
	}
	return result{}, fmt.Errorf("%s: unsupported expression %T", e.Position(), e)
}

func (m *Machine) evalUnary(e *ast.Unary) (result, error) {
	x, err := m.eval(e.X)
	if err != nil {
		return result{}, err
	}
	op := func(v Val) (Val, error) {
		switch e.Op {
		case ast.Neg:
			if v.Kind == KInt {
				return IntVal(-v.I), nil
			}
			return RealVal(-v.F), nil
		case ast.Not:
			return BoolVal(!v.B), nil
		default:
			return v, nil
		}
	}
	return mapElems(x, op)
}

// mapElems applies a scalar function elementwise.
func mapElems(x result, f func(Val) (Val, error)) (result, error) {
	if !x.isArray() {
		v, err := f(x.Val)
		return scalarResult(v), err
	}
	first, err := f(x.Arr.at(0))
	if err != nil {
		return result{}, err
	}
	out := NewArray(first.Kind, x.Arr.Ext, x.Arr.Lo)
	out.set(0, first)
	for i := 1; i < x.Arr.Size(); i++ {
		v, err := f(x.Arr.at(i))
		if err != nil {
			return result{}, err
		}
		out.set(i, v)
	}
	return arrayResult(out), nil
}

// zipElems applies a scalar function elementwise over two operands with
// scalar broadcasting.
func zipElems(pos fmt.Stringer, l, r result, f func(Val, Val) (Val, error)) (result, error) {
	if !l.isArray() && !r.isArray() {
		v, err := f(l.Val, r.Val)
		return scalarResult(v), err
	}
	var ext, lo []int
	var n int
	if l.isArray() {
		ext, lo, n = l.Arr.Ext, l.Arr.Lo, l.Arr.Size()
		if r.isArray() && !l.Arr.Congruent(r.Arr) {
			return result{}, fmt.Errorf("%s: nonconforming array operands", pos)
		}
	} else {
		ext, lo, n = r.Arr.Ext, r.Arr.Lo, r.Arr.Size()
	}
	get := func(x result, i int) Val {
		if x.isArray() {
			return x.Arr.at(i)
		}
		return x.Val
	}
	first, err := f(get(l, 0), get(r, 0))
	if err != nil {
		return result{}, err
	}
	out := NewArray(first.Kind, ext, lo)
	out.set(0, first)
	for i := 1; i < n; i++ {
		v, err := f(get(l, i), get(r, i))
		if err != nil {
			return result{}, err
		}
		out.set(i, v)
	}
	return arrayResult(out), nil
}

func numKind(a, b Val) Kind {
	if a.Kind == KInt && b.Kind == KInt {
		return KInt
	}
	return KReal
}

func (m *Machine) evalBinary(e *ast.Binary) (result, error) {
	l, err := m.eval(e.L)
	if err != nil {
		return result{}, err
	}
	r, err := m.eval(e.R)
	if err != nil {
		return result{}, err
	}
	f := func(a, b Val) (Val, error) { return applyBin(e.Op, a, b, e) }
	return zipElems(e.Pos, l, r, f)
}

func applyBin(op ast.BinOp, a, b Val, e *ast.Binary) (Val, error) {
	switch op {
	case ast.And:
		return BoolVal(a.B && b.B), nil
	case ast.Or:
		return BoolVal(a.B || b.B), nil
	case ast.Eqv:
		return BoolVal(a.B == b.B), nil
	case ast.Neqv:
		return BoolVal(a.B != b.B), nil
	case ast.Eq:
		return BoolVal(a.AsFloat() == b.AsFloat()), nil
	case ast.Ne:
		return BoolVal(a.AsFloat() != b.AsFloat()), nil
	case ast.Lt:
		return BoolVal(a.AsFloat() < b.AsFloat()), nil
	case ast.Le:
		return BoolVal(a.AsFloat() <= b.AsFloat()), nil
	case ast.Gt:
		return BoolVal(a.AsFloat() > b.AsFloat()), nil
	case ast.Ge:
		return BoolVal(a.AsFloat() >= b.AsFloat()), nil
	}
	if numKind(a, b) == KInt {
		x, y := a.I, b.I
		switch op {
		case ast.Add:
			return IntVal(x + y), nil
		case ast.Sub:
			return IntVal(x - y), nil
		case ast.Mul:
			return IntVal(x * y), nil
		case ast.Div:
			if y == 0 {
				return Val{}, fmt.Errorf("%s: integer division by zero", e.Pos)
			}
			return IntVal(x / y), nil
		case ast.Pow:
			if y < 0 {
				if x == 0 {
					return Val{}, fmt.Errorf("%s: zero to negative power", e.Pos)
				}
				// Integer power with negative exponent truncates to 0
				// unless |x| == 1.
				switch x {
				case 1:
					return IntVal(1), nil
				case -1:
					if y%2 == 0 {
						return IntVal(1), nil
					}
					return IntVal(-1), nil
				default:
					return IntVal(0), nil
				}
			}
			p := int64(1)
			for k := int64(0); k < y; k++ {
				p *= x
			}
			return IntVal(p), nil
		}
	}
	x, y := a.AsFloat(), b.AsFloat()
	switch op {
	case ast.Add:
		return RealVal(x + y), nil
	case ast.Sub:
		return RealVal(x - y), nil
	case ast.Mul:
		return RealVal(x * y), nil
	case ast.Div:
		return RealVal(x / y), nil
	case ast.Pow:
		// Real base with integer exponent uses repeated multiplication
		// (matches the compiled strength reduction exactly).
		if b.Kind == KInt {
			return RealVal(ipow(x, b.I)), nil
		}
		return RealVal(math.Pow(x, y)), nil
	}
	return Val{}, fmt.Errorf("%s: bad operator", e.Pos)
}

func ipow(x float64, n int64) float64 {
	if n < 0 {
		return 1 / ipow(x, -n)
	}
	p := 1.0
	for k := int64(0); k < n; k++ {
		p *= x
	}
	return p
}

// secDim describes one dimension of a section reference.
type secDim struct {
	fixed bool
	index int   // when fixed
	idxs  []int // declared-space indexes when iterated
}

// sectionDims resolves subscripts against an array at runtime.
func (m *Machine) sectionDims(a *Array, e *ast.Index) ([]secDim, []int, bool, error) {
	if len(e.Subs) != a.Rank() {
		return nil, nil, false, fmt.Errorf("%s: %q has rank %d but %d subscripts",
			e.Pos, e.Name, a.Rank(), len(e.Subs))
	}
	dims := make([]secDim, len(e.Subs))
	var iterExt []int
	allFixed := true
	for d, sub := range e.Subs {
		if sub.Single {
			v, err := m.evalScalar(sub.Lo)
			if err != nil {
				return nil, nil, false, err
			}
			dims[d] = secDim{fixed: true, index: int(v.AsInt())}
			continue
		}
		allFixed = false
		lo := a.Lo[d]
		hi := a.Lo[d] + a.Ext[d] - 1
		step := 1
		if sub.Lo != nil {
			v, err := m.evalScalar(sub.Lo)
			if err != nil {
				return nil, nil, false, err
			}
			lo = int(v.AsInt())
		}
		if sub.Hi != nil {
			v, err := m.evalScalar(sub.Hi)
			if err != nil {
				return nil, nil, false, err
			}
			hi = int(v.AsInt())
		}
		if sub.Step != nil {
			v, err := m.evalScalar(sub.Step)
			if err != nil {
				return nil, nil, false, err
			}
			step = int(v.AsInt())
			if step == 0 {
				return nil, nil, false, fmt.Errorf("%s: zero section stride", e.Pos)
			}
		}
		var idxs []int
		if step > 0 {
			for i := lo; i <= hi; i += step {
				idxs = append(idxs, i)
			}
		} else {
			for i := lo; i >= hi; i += step {
				idxs = append(idxs, i)
			}
		}
		if len(idxs) == 0 {
			return nil, nil, false, fmt.Errorf("%s: empty section of %q", e.Pos, e.Name)
		}
		dims[d] = secDim{idxs: idxs}
		iterExt = append(iterExt, len(idxs))
	}
	return dims, iterExt, allFixed, nil
}

// walkSection iterates a section in column-major iteration order, calling
// f with the declared-space index vector and the linear iteration
// position.
func walkSection(dims []secDim, f func(idx []int, pos int) error) error {
	idx := make([]int, len(dims))
	pos := 0
	// Column-major: dimension 1 varies fastest, so recurse from the last
	// dimension outward.
	var outer func(d int) error
	outer = func(d int) error {
		if d < 0 {
			err := f(idx, pos)
			pos++
			return err
		}
		if dims[d].fixed {
			idx[d] = dims[d].index
			return outer(d - 1)
		}
		for _, i := range dims[d].idxs {
			idx[d] = i
			if err := outer(d - 1); err != nil {
				return err
			}
		}
		return nil
	}
	return outer(len(dims) - 1)
}

// evalIndex evaluates NAME(...): array element, section, or intrinsic.
func (m *Machine) evalIndex(e *ast.Index) (result, error) {
	if a, ok := m.arrays[e.Name]; ok {
		dims, iterExt, allFixed, err := m.sectionDims(a, e)
		if err != nil {
			return result{}, err
		}
		if allFixed {
			idx := make([]int, len(dims))
			for d := range dims {
				idx[d] = dims[d].index
			}
			v, err := a.Get(idx)
			if err != nil {
				return result{}, fmt.Errorf("%s: %q: %w", e.Pos, e.Name, err)
			}
			return scalarResult(v), nil
		}
		lo := make([]int, len(iterExt))
		for i := range lo {
			lo[i] = 1
		}
		out := NewArray(a.Kind, iterExt, lo)
		err = walkSection(dims, func(idx []int, pos int) error {
			v, gerr := a.Get(idx)
			if gerr != nil {
				return fmt.Errorf("%s: %q: %w", e.Pos, e.Name, gerr)
			}
			out.set(pos, v)
			return nil
		})
		if err != nil {
			return result{}, err
		}
		return arrayResult(out), nil
	}
	return m.evalIntrinsic(e)
}

// execAssign performs LHS = RHS, under an optional WHERE mask.
func (m *Machine) execAssign(s *ast.Assign, mask *Array) error {
	rhs, err := m.eval(s.RHS)
	if err != nil {
		return err
	}
	switch lhs := s.LHS.(type) {
	case *ast.Ident:
		if mask != nil {
			return m.assignMasked(lhs.Name, rhs, mask, s)
		}
		return m.assignWhole(lhs.Name, rhs)
	case *ast.Index:
		a, ok := m.arrays[lhs.Name]
		if !ok {
			return fmt.Errorf("%s: %q is not an array", lhs.Pos, lhs.Name)
		}
		dims, iterExt, allFixed, err := m.sectionDims(a, lhs)
		if err != nil {
			return err
		}
		if allFixed {
			if rhs.isArray() {
				return fmt.Errorf("%s: array assigned to element", s.Pos)
			}
			idx := make([]int, len(dims))
			for d := range dims {
				idx[d] = dims[d].index
			}
			if err := a.Set(idx, rhs.Val); err != nil {
				return fmt.Errorf("%s: %w", s.Pos, err)
			}
			return nil
		}
		// Section store (RHS already fully evaluated, so overlap is safe).
		if rhs.isArray() {
			n := 1
			for _, x := range iterExt {
				n *= x
			}
			if rhs.Arr.Size() != n {
				return fmt.Errorf("%s: nonconforming section assignment", s.Pos)
			}
		}
		if mask != nil {
			n := 1
			for _, x := range iterExt {
				n *= x
			}
			if mask.Size() != n {
				return fmt.Errorf("%s: WHERE mask does not conform to section", s.Pos)
			}
		}
		return walkSection(dims, func(idx []int, pos int) error {
			if mask != nil && !mask.B[pos] {
				return nil
			}
			v := rhs.Val
			if rhs.isArray() {
				v = rhs.Arr.at(pos)
			}
			return a.Set(idx, v)
		})
	}
	return fmt.Errorf("%s: invalid assignment target", s.Pos)
}

func (m *Machine) assignWhole(name string, rhs result) error {
	if p, ok := m.scalars[name]; ok {
		if rhs.isArray() {
			return fmt.Errorf("array assigned to scalar %q", name)
		}
		*p = convertVal(rhs.Val, p.Kind)
		return nil
	}
	a, ok := m.arrays[name]
	if !ok {
		return fmt.Errorf("assignment to undefined %q", name)
	}
	if rhs.isArray() {
		if !a.Congruent(rhs.Arr) {
			return fmt.Errorf("nonconforming assignment to %q", name)
		}
		for i := 0; i < a.Size(); i++ {
			a.set(i, rhs.Arr.at(i))
		}
		return nil
	}
	for i := 0; i < a.Size(); i++ {
		a.set(i, rhs.Val)
	}
	return nil
}

func (m *Machine) assignMasked(name string, rhs result, mask *Array, s *ast.Assign) error {
	a, ok := m.arrays[name]
	if !ok {
		return fmt.Errorf("%s: WHERE assignment to non-array %q", s.Pos, name)
	}
	if !a.Congruent(mask) {
		return fmt.Errorf("%s: WHERE mask does not conform to %q", s.Pos, name)
	}
	if rhs.isArray() && !a.Congruent(rhs.Arr) {
		return fmt.Errorf("%s: nonconforming WHERE assignment to %q", s.Pos, name)
	}
	for i := 0; i < a.Size(); i++ {
		if !mask.B[i] {
			continue
		}
		v := rhs.Val
		if rhs.isArray() {
			v = rhs.Arr.at(i)
		}
		a.set(i, v)
	}
	return nil
}
