package interp

import (
	"fmt"

	"f90y/internal/ast"
)

// requireArray evaluates an argument that must be an array.
func (m *Machine) requireArray(e *ast.Index, arg ast.Expr, what string) (*Array, error) {
	if arg == nil {
		return nil, fmt.Errorf("%s: %q requires %s", e.Pos, e.Name, what)
	}
	r, err := m.eval(arg)
	if err != nil {
		return nil, err
	}
	if !r.isArray() {
		return nil, fmt.Errorf("%s: %s of %q must be an array", e.Pos, what, e.Name)
	}
	return r.Arr, nil
}

// evalCshift implements CSHIFT (circular) and EOSHIFT (end-off).
// Shift semantics follow Fortran 90: positive shift moves elements toward
// lower indexes (element i of the result is element i+shift of the
// argument, circularly).
func (m *Machine) evalCshift(e *ast.Index, args map[string]ast.Expr, circular bool) (result, error) {
	a, err := m.requireArray(e, args["array"], "array argument")
	if err != nil {
		return result{}, err
	}
	if args["shift"] == nil {
		return result{}, fmt.Errorf("%s: %q requires a shift", e.Pos, e.Name)
	}
	sv, err := m.evalScalar(args["shift"])
	if err != nil {
		return result{}, err
	}
	shift := int(sv.AsInt())
	dim := 1
	if args["dim"] != nil {
		dv, err := m.evalScalar(args["dim"])
		if err != nil {
			return result{}, err
		}
		dim = int(dv.AsInt())
	}
	if dim < 1 || dim > a.Rank() {
		return result{}, fmt.Errorf("%s: dim %d out of range", e.Pos, dim)
	}
	boundary := Val{Kind: a.Kind}
	if !circular && args["boundary"] != nil {
		bv, err := m.evalScalar(args["boundary"])
		if err != nil {
			return result{}, err
		}
		boundary = convertVal(bv, a.Kind)
	}

	out := NewArray(a.Kind, a.Ext, a.Lo)
	d := dim - 1
	n := a.Ext[d]
	// Walk all elements; compute the source index along dim.
	idx := make([]int, a.Rank())
	for i := range idx {
		idx[i] = a.Lo[i]
	}
	total := a.Size()
	src := make([]int, a.Rank())
	for count := 0; count < total; count++ {
		copy(src, idx)
		j := idx[d] - a.Lo[d] + shift
		if circular {
			j = ((j % n) + n) % n
			src[d] = a.Lo[d] + j
			v, _ := a.Get(src)
			_ = out.Set(idx, v)
		} else if j >= 0 && j < n {
			src[d] = a.Lo[d] + j
			v, _ := a.Get(src)
			_ = out.Set(idx, v)
		} else {
			_ = out.Set(idx, boundary)
		}
		// Column-major increment.
		for k := 0; k < a.Rank(); k++ {
			idx[k]++
			if idx[k] < a.Lo[k]+a.Ext[k] {
				break
			}
			idx[k] = a.Lo[k]
		}
	}
	return arrayResult(out), nil
}

func (m *Machine) evalReduce(e *ast.Index, args map[string]ast.Expr) (result, error) {
	a, err := m.requireArray(e, args["array"], "array argument")
	if err != nil {
		return result{}, err
	}
	if a.Size() == 0 {
		return result{}, fmt.Errorf("%s: reduction of empty array", e.Pos)
	}
	switch e.Name {
	case "sum":
		if a.Kind == KInt {
			var s int64
			for _, v := range a.I {
				s += v
			}
			return scalarResult(IntVal(s)), nil
		}
		var s float64
		for _, v := range a.F {
			s += v
		}
		return scalarResult(RealVal(s)), nil
	case "product":
		if a.Kind == KInt {
			p := int64(1)
			for _, v := range a.I {
				p *= v
			}
			return scalarResult(IntVal(p)), nil
		}
		p := 1.0
		for _, v := range a.F {
			p *= v
		}
		return scalarResult(RealVal(p)), nil
	case "maxval", "minval":
		isMax := e.Name == "maxval"
		if a.Kind == KInt {
			best := a.I[0]
			for _, v := range a.I[1:] {
				if (isMax && v > best) || (!isMax && v < best) {
					best = v
				}
			}
			return scalarResult(IntVal(best)), nil
		}
		best := a.F[0]
		for _, v := range a.F[1:] {
			if (isMax && v > best) || (!isMax && v < best) {
				best = v
			}
		}
		return scalarResult(RealVal(best)), nil
	}
	return result{}, fmt.Errorf("%s: unknown reduction %q", e.Pos, e.Name)
}

// evalLogicalReduce implements ANY, ALL, and COUNT over logical arrays.
func (m *Machine) evalLogicalReduce(e *ast.Index, args map[string]ast.Expr) (result, error) {
	a, err := m.requireArray(e, args["mask"], "mask argument")
	if err != nil {
		return result{}, err
	}
	if a.Kind != KLogical {
		return result{}, fmt.Errorf("%s: %q requires a logical array", e.Pos, e.Name)
	}
	switch e.Name {
	case "any":
		for _, b := range a.B {
			if b {
				return scalarResult(BoolVal(true)), nil
			}
		}
		return scalarResult(BoolVal(false)), nil
	case "all":
		for _, b := range a.B {
			if !b {
				return scalarResult(BoolVal(false)), nil
			}
		}
		return scalarResult(BoolVal(true)), nil
	default: // count
		n := int64(0)
		for _, b := range a.B {
			if b {
				n++
			}
		}
		return scalarResult(IntVal(n)), nil
	}
}

func (m *Machine) evalTranspose(e *ast.Index, args map[string]ast.Expr) (result, error) {
	a, err := m.requireArray(e, args["matrix"], "matrix argument")
	if err != nil {
		return result{}, err
	}
	if a.Rank() != 2 {
		return result{}, fmt.Errorf("%s: transpose requires rank 2", e.Pos)
	}
	out := NewArray(a.Kind, []int{a.Ext[1], a.Ext[0]}, []int{1, 1})
	for j := 0; j < a.Ext[1]; j++ {
		for i := 0; i < a.Ext[0]; i++ {
			out.set(j+i*a.Ext[1], a.at(i+j*a.Ext[0]))
		}
	}
	return arrayResult(out), nil
}

// evalGather implements GATHER(array, index): result(i) =
// array(index(i)) for rank-1 array and integer index. Index values are
// bounds-checked against the array's declared bounds.
func (m *Machine) evalGather(e *ast.Index, args map[string]ast.Expr) (result, error) {
	a, err := m.requireArray(e, args["array"], "array argument")
	if err != nil {
		return result{}, err
	}
	idx, err := m.requireArray(e, args["index"], "index argument")
	if err != nil {
		return result{}, err
	}
	if a.Rank() != 1 || idx.Rank() != 1 {
		return result{}, fmt.Errorf("%s: gather requires rank-1 array and index", e.Pos)
	}
	if idx.Kind != KInt {
		return result{}, fmt.Errorf("%s: gather index must be integer", e.Pos)
	}
	out := NewArray(a.Kind, idx.Ext, []int{1})
	for i := 0; i < idx.Size(); i++ {
		j := int(idx.at(i).AsInt()) - a.Lo[0]
		if j < 0 || j >= a.Ext[0] {
			return result{}, fmt.Errorf("%s: gather index %d out of bounds [%d,%d]",
				e.Pos, j+a.Lo[0], a.Lo[0], a.Lo[0]+a.Ext[0]-1)
		}
		out.set(i, a.at(j))
	}
	return arrayResult(out), nil
}

func (m *Machine) evalSpread(e *ast.Index, args map[string]ast.Expr) (result, error) {
	if args["source"] == nil || args["dim"] == nil || args["ncopies"] == nil {
		return result{}, fmt.Errorf("%s: spread requires source, dim, ncopies", e.Pos)
	}
	src, err := m.eval(args["source"])
	if err != nil {
		return result{}, err
	}
	dv, err := m.evalScalar(args["dim"])
	if err != nil {
		return result{}, err
	}
	nv, err := m.evalScalar(args["ncopies"])
	if err != nil {
		return result{}, err
	}
	dim, n := int(dv.AsInt()), int(nv.AsInt())
	if n < 1 {
		return result{}, fmt.Errorf("%s: spread ncopies must be positive", e.Pos)
	}

	var srcExt []int
	kind := src.Val.Kind
	if src.isArray() {
		srcExt = src.Arr.Ext
		kind = src.Arr.Kind
	}
	if dim < 1 || dim > len(srcExt)+1 {
		return result{}, fmt.Errorf("%s: spread dim %d out of range", e.Pos, dim)
	}
	ext := make([]int, 0, len(srcExt)+1)
	ext = append(ext, srcExt[:dim-1]...)
	ext = append(ext, n)
	ext = append(ext, srcExt[dim-1:]...)
	lo := make([]int, len(ext))
	for i := range lo {
		lo[i] = 1
	}
	out := NewArray(kind, ext, lo)

	// Element (i1..id-1, c, id..ik) of the result is source element
	// (i1..ik); walk the result and map indexes back.
	idx := make([]int, len(ext))
	for i := range idx {
		idx[i] = 1
	}
	sidx := make([]int, len(srcExt))
	for count := 0; count < out.Size(); count++ {
		k := 0
		for d := 0; d < len(ext); d++ {
			if d == dim-1 {
				continue
			}
			sidx[k] = idx[d]
			k++
		}
		v := src.Val
		if src.isArray() {
			sv := sidx
			for i := range sv {
				sv[i] = sv[i] - 1 + src.Arr.Lo[i]
			}
			v, _ = src.Arr.Get(sv)
		}
		_ = out.Set(idx, v)
		for k := 0; k < len(ext); k++ {
			idx[k]++
			if idx[k] <= ext[k] {
				break
			}
			idx[k] = 1
		}
	}
	return arrayResult(out), nil
}

func (m *Machine) evalDot(e *ast.Index, args map[string]ast.Expr) (result, error) {
	a, err := m.requireArray(e, args["vector_a"], "vector_a")
	if err != nil {
		return result{}, err
	}
	b, err := m.requireArray(e, args["vector_b"], "vector_b")
	if err != nil {
		return result{}, err
	}
	if a.Rank() != 1 || b.Rank() != 1 || a.Size() != b.Size() {
		return result{}, fmt.Errorf("%s: dot_product requires conforming rank-1 arrays", e.Pos)
	}
	if a.Kind == KInt && b.Kind == KInt {
		var s int64
		for i := range a.I {
			s += a.I[i] * b.I[i]
		}
		return scalarResult(IntVal(s)), nil
	}
	var s float64
	for i := 0; i < a.Size(); i++ {
		s += a.at(i).AsFloat() * b.at(i).AsFloat()
	}
	return scalarResult(RealVal(s)), nil
}

func (m *Machine) evalSize(e *ast.Index, args map[string]ast.Expr) (result, error) {
	ident, ok := args["array"].(*ast.Ident)
	if !ok {
		return result{}, fmt.Errorf("%s: size argument must be an array name", e.Pos)
	}
	a := m.arrays[ident.Name]
	if a == nil {
		return result{}, fmt.Errorf("%s: size of non-array %q", e.Pos, ident.Name)
	}
	if args["dim"] == nil {
		return scalarResult(IntVal(int64(a.Size()))), nil
	}
	dv, err := m.evalScalar(args["dim"])
	if err != nil {
		return result{}, err
	}
	dim := int(dv.AsInt())
	if dim < 1 || dim > a.Rank() {
		return result{}, fmt.Errorf("%s: size dim %d out of range", e.Pos, dim)
	}
	return scalarResult(IntVal(int64(a.Ext[dim-1]))), nil
}
