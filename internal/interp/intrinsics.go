package interp

import (
	"errors"
	"fmt"
	"math"
	"sort"

	"f90y/internal/ast"
)

// evalIntrinsic dispatches NAME(...) where NAME is not an array.
func (m *Machine) evalIntrinsic(e *ast.Index) (result, error) {
	args, err := m.intrinsicArgs(e)
	if err != nil {
		return result{}, err
	}
	switch e.Name {
	case "sqrt":
		return m.elem1(e, args, "x", math.Sqrt)
	case "sin":
		return m.elem1(e, args, "x", math.Sin)
	case "cos":
		return m.elem1(e, args, "x", math.Cos)
	case "tan":
		return m.elem1(e, args, "x", math.Tan)
	case "exp":
		return m.elem1(e, args, "x", math.Exp)
	case "log":
		return m.elem1(e, args, "x", math.Log)
	case "abs":
		return m.evalAbs(e, args)
	case "real", "float":
		return m.evalConv(e, args, KReal)
	case "dble":
		return m.evalConv(e, args, KReal)
	case "int":
		return m.evalConv(e, args, KInt)
	case "mod":
		return m.evalModFn(e, args)
	case "min", "max":
		return m.evalMinMax(e)
	case "merge":
		return m.evalMerge(e, args)
	case "cshift":
		return m.evalCshift(e, args, true)
	case "eoshift":
		return m.evalCshift(e, args, false)
	case "sum", "product", "maxval", "minval":
		return m.evalReduce(e, args)
	case "any", "all", "count":
		return m.evalLogicalReduce(e, args)
	case "transpose":
		return m.evalTranspose(e, args)
	case "gather":
		return m.evalGather(e, args)
	case "spread":
		return m.evalSpread(e, args)
	case "dot_product":
		return m.evalDot(e, args)
	case "size":
		return m.evalSize(e, args)
	}
	return result{}, fmt.Errorf("%s: unknown function or array %q: %w", e.Pos, e.Name, ErrUnknownIntrinsic)
}

// ErrUnknownIntrinsic is wrapped when a call names neither an array nor
// a supported intrinsic, so callers can distinguish coverage gaps from
// evaluation failures.
var ErrUnknownIntrinsic = errors.New("unsupported intrinsic")

// IntrinsicNames returns the sorted names of every intrinsic the
// interpreter evaluates. The backend audit test cross-checks this list
// against lower.IntrinsicNames so the reference and compiled paths
// cannot silently drift apart.
func IntrinsicNames() []string {
	names := make([]string, 0, len(intrinsicParams)+2)
	for n := range intrinsicParams {
		names = append(names, n)
	}
	names = append(names, "min", "max") // variadic, not in intrinsicParams
	sort.Strings(names)
	return names
}

var intrinsicParams = map[string][]string{
	"sqrt": {"x"}, "sin": {"x"}, "cos": {"x"}, "tan": {"x"}, "exp": {"x"},
	"log": {"x"}, "abs": {"x"}, "real": {"x"}, "float": {"x"}, "dble": {"x"}, "int": {"x"},
	"mod": {"a", "p"}, "merge": {"tsource", "fsource", "mask"},
	"cshift": {"array", "shift", "dim"}, "eoshift": {"array", "shift", "boundary", "dim"},
	"sum": {"array"}, "product": {"array"}, "maxval": {"array"}, "minval": {"array"},
	"any": {"mask"}, "all": {"mask"}, "count": {"mask"},
	"transpose": {"matrix"}, "gather": {"array", "index"}, "spread": {"source", "dim", "ncopies"},
	"dot_product": {"vector_a", "vector_b"}, "size": {"array", "dim"},
}

// intrinsicArgs resolves positional/keyword arguments to expressions.
func (m *Machine) intrinsicArgs(e *ast.Index) (map[string]ast.Expr, error) {
	names, ok := intrinsicParams[e.Name]
	if !ok {
		return nil, nil // min/max handle their own variadic args
	}
	out := map[string]ast.Expr{}
	for i, sub := range e.Subs {
		if !sub.Single {
			return nil, fmt.Errorf("%s: section invalid as argument of %q", e.Pos, e.Name)
		}
		key := ""
		if i < len(e.Keys) {
			key = e.Keys[i]
		}
		if key == "" {
			if i >= len(names) {
				return nil, fmt.Errorf("%s: too many arguments to %q", e.Pos, e.Name)
			}
			out[names[i]] = sub.Lo
			continue
		}
		found := false
		for _, n := range names {
			if n == key {
				out[n] = sub.Lo
				found = true
			}
		}
		if !found {
			return nil, fmt.Errorf("%s: unknown keyword %q for %q", e.Pos, key, e.Name)
		}
	}
	return out, nil
}

func (m *Machine) elem1(e *ast.Index, args map[string]ast.Expr, name string, f func(float64) float64) (result, error) {
	arg := args[name]
	if arg == nil {
		return result{}, fmt.Errorf("%s: %q requires an argument", e.Pos, e.Name)
	}
	x, err := m.eval(arg)
	if err != nil {
		return result{}, err
	}
	return mapElems(x, func(v Val) (Val, error) { return RealVal(f(v.AsFloat())), nil })
}

func (m *Machine) evalAbs(e *ast.Index, args map[string]ast.Expr) (result, error) {
	if args["x"] == nil {
		return result{}, fmt.Errorf("%s: abs requires an argument", e.Pos)
	}
	x, err := m.eval(args["x"])
	if err != nil {
		return result{}, err
	}
	return mapElems(x, func(v Val) (Val, error) {
		if v.Kind == KInt {
			if v.I < 0 {
				return IntVal(-v.I), nil
			}
			return v, nil
		}
		return RealVal(math.Abs(v.F)), nil
	})
}

func (m *Machine) evalConv(e *ast.Index, args map[string]ast.Expr, to Kind) (result, error) {
	if args["x"] == nil {
		return result{}, fmt.Errorf("%s: %q requires an argument", e.Pos, e.Name)
	}
	x, err := m.eval(args["x"])
	if err != nil {
		return result{}, err
	}
	return mapElems(x, func(v Val) (Val, error) { return convertVal(v, to), nil })
}

func (m *Machine) evalModFn(e *ast.Index, args map[string]ast.Expr) (result, error) {
	if args["a"] == nil || args["p"] == nil {
		return result{}, fmt.Errorf("%s: mod requires two arguments", e.Pos)
	}
	a, err := m.eval(args["a"])
	if err != nil {
		return result{}, err
	}
	p, err := m.eval(args["p"])
	if err != nil {
		return result{}, err
	}
	return zipElems(e.Pos, a, p, func(x, y Val) (Val, error) {
		if numKind(x, y) == KInt {
			if y.I == 0 {
				return Val{}, fmt.Errorf("%s: mod by zero", e.Pos)
			}
			return IntVal(x.I % y.I), nil
		}
		return RealVal(math.Mod(x.AsFloat(), y.AsFloat())), nil
	})
}

func (m *Machine) evalMinMax(e *ast.Index) (result, error) {
	if len(e.Subs) < 2 {
		return result{}, fmt.Errorf("%s: %q requires two or more arguments", e.Pos, e.Name)
	}
	var acc result
	for i, sub := range e.Subs {
		if !sub.Single {
			return result{}, fmt.Errorf("%s: bad argument to %q", e.Pos, e.Name)
		}
		x, err := m.eval(sub.Lo)
		if err != nil {
			return result{}, err
		}
		if i == 0 {
			acc = x
			continue
		}
		isMax := e.Name == "max"
		acc, err = zipElems(e.Pos, acc, x, func(a, b Val) (Val, error) {
			if numKind(a, b) == KInt {
				if (isMax && b.I > a.I) || (!isMax && b.I < a.I) {
					return b, nil
				}
				return a, nil
			}
			af, bf := a.AsFloat(), b.AsFloat()
			if (isMax && bf > af) || (!isMax && bf < af) {
				return RealVal(bf), nil
			}
			return RealVal(af), nil
		})
		if err != nil {
			return result{}, err
		}
	}
	return acc, nil
}

func (m *Machine) evalMerge(e *ast.Index, args map[string]ast.Expr) (result, error) {
	for _, n := range []string{"tsource", "fsource", "mask"} {
		if args[n] == nil {
			return result{}, fmt.Errorf("%s: merge requires tsource, fsource, mask", e.Pos)
		}
	}
	t, err := m.eval(args["tsource"])
	if err != nil {
		return result{}, err
	}
	f, err := m.eval(args["fsource"])
	if err != nil {
		return result{}, err
	}
	mk, err := m.eval(args["mask"])
	if err != nil {
		return result{}, err
	}
	// Determine the result extent from the first array operand.
	var ref *Array
	for _, r := range []result{t, f, mk} {
		if r.isArray() {
			if ref != nil && !ref.Congruent(r.Arr) {
				return result{}, fmt.Errorf("%s: nonconforming merge operands", e.Pos)
			}
			if ref == nil {
				ref = r.Arr
			}
		}
	}
	get := func(r result, i int) Val {
		if r.isArray() {
			return r.Arr.at(i)
		}
		return r.Val
	}
	pick := func(i int) Val {
		if get(mk, i).B {
			return get(t, i)
		}
		return get(f, i)
	}
	if ref == nil {
		return scalarResult(pick(0)), nil
	}
	out := NewArray(pick(0).Kind, ref.Ext, ref.Lo)
	for i := 0; i < ref.Size(); i++ {
		out.set(i, pick(i))
	}
	return arrayResult(out), nil
}
