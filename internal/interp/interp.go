package interp

import (
	"errors"
	"fmt"
	"strings"

	"f90y/internal/ast"
)

// Machine holds interpreter state for one program run.
type Machine struct {
	scalars map[string]*Val
	arrays  map[string]*Array
	params  map[string]Val
	out     []string
	stopped bool
	steps   int
	limit   int
}

// stopSignal unwinds execution on STOP.
type stopSignal struct{}

// ErrSteps is the sentinel wrapped by the interpreter's runaway-loop
// backstop: errors.Is(err, ErrSteps) distinguishes "program ran too
// long" from genuine evaluation errors.
var ErrSteps = errors.New("interpreter step limit exceeded")

// Run interprets a program and returns the finished machine.
func Run(prog *ast.Program) (m *Machine, err error) {
	return RunSteps(prog, 0)
}

// RunSteps interprets a program under an explicit statement-step budget;
// limit 0 means the default 200M-step runaway backstop. Exceeding the
// budget fails with an error wrapping ErrSteps.
func RunSteps(prog *ast.Program, limit int) (m *Machine, err error) {
	if limit <= 0 {
		limit = 200_000_000 // runaway-loop backstop
	}
	m = &Machine{
		scalars: map[string]*Val{},
		arrays:  map[string]*Array{},
		params:  map[string]Val{},
		limit:   limit,
	}
	if derr := m.declare(prog.Decls); derr != nil {
		return nil, derr
	}
	defer func() {
		if r := recover(); r != nil {
			if _, ok := r.(stopSignal); ok {
				m.stopped = true
				return
			}
			panic(r)
		}
	}()
	if err := m.exec(prog.Body); err != nil {
		return nil, err
	}
	return m, nil
}

// Output returns the PRINT lines produced by the run.
func (m *Machine) Output() []string { return m.out }

// Array returns a named array, or nil.
func (m *Machine) Array(name string) *Array { return m.arrays[strings.ToLower(name)] }

// Scalar returns a named scalar's value.
func (m *Machine) Scalar(name string) (Val, bool) {
	if p, ok := m.scalars[strings.ToLower(name)]; ok {
		return *p, true
	}
	if v, ok := m.params[strings.ToLower(name)]; ok {
		return v, true
	}
	return Val{}, false
}

func kindOf(k ast.BaseKind) Kind {
	switch k {
	case ast.Integer:
		return KInt
	case ast.Logical:
		return KLogical
	default:
		return KReal
	}
}

func (m *Machine) declare(decls []*ast.Decl) error {
	for _, d := range decls {
		kind := kindOf(d.Kind)
		if d.Param {
			v, err := m.evalScalar(d.Init)
			if err != nil {
				return fmt.Errorf("%s: PARAMETER %s: %w", d.Pos, d.Name, err)
			}
			m.params[d.Name] = convertVal(v, kind)
			continue
		}
		if d.Dims == nil {
			v := Val{Kind: kind}
			m.scalars[d.Name] = &v
			if d.Init != nil {
				iv, err := m.evalScalar(d.Init)
				if err != nil {
					return err
				}
				*m.scalars[d.Name] = convertVal(iv, kind)
			}
			continue
		}
		var ext, lo []int
		for _, e := range d.Dims {
			l := 1
			if e.Lo != nil {
				lv, err := m.evalScalar(e.Lo)
				if err != nil {
					return err
				}
				l = int(lv.AsInt())
			}
			hv, err := m.evalScalar(e.Hi)
			if err != nil {
				return err
			}
			h := int(hv.AsInt())
			if h < l {
				return fmt.Errorf("%s: empty extent %d:%d for %s", d.Pos, l, h, d.Name)
			}
			ext = append(ext, h-l+1)
			lo = append(lo, l)
		}
		m.arrays[d.Name] = NewArray(kind, ext, lo)
		if d.Init != nil {
			iv, err := m.eval(d.Init)
			if err != nil {
				return err
			}
			if err := m.assignWhole(d.Name, iv); err != nil {
				return err
			}
		}
	}
	return nil
}

func convertVal(v Val, to Kind) Val {
	switch to {
	case KInt:
		return IntVal(v.AsInt())
	case KLogical:
		return BoolVal(v.B)
	default:
		return RealVal(v.AsFloat())
	}
}

func (m *Machine) exec(stmts []ast.Stmt) error {
	for _, s := range stmts {
		if err := m.execStmt(s); err != nil {
			return err
		}
	}
	return nil
}

func (m *Machine) tick(s ast.Stmt) error {
	m.steps++
	if m.steps > m.limit {
		return fmt.Errorf("%s: %d statements: %w", s.Position(), m.steps, ErrSteps)
	}
	return nil
}

func (m *Machine) execStmt(s ast.Stmt) error {
	if err := m.tick(s); err != nil {
		return err
	}
	switch s := s.(type) {
	case *ast.Assign:
		return m.execAssign(s, nil)
	case *ast.If:
		c, err := m.evalScalar(s.Cond)
		if err != nil {
			return err
		}
		if c.B {
			return m.exec(s.Then)
		}
		return m.exec(s.Else)
	case *ast.DoLoop:
		return m.execDo(s)
	case *ast.DoWhile:
		for {
			c, err := m.evalScalar(s.Cond)
			if err != nil {
				return err
			}
			if !c.B {
				return nil
			}
			if err := m.exec(s.Body); err != nil {
				return err
			}
			if err := m.tick(s); err != nil {
				return err
			}
		}
	case *ast.Where:
		return m.execWhere(s)
	case *ast.Forall:
		return m.execForall(s)
	case *ast.Print:
		return m.execPrint(s)
	case *ast.Continue:
		return nil
	case *ast.Stop:
		panic(stopSignal{})
	case *ast.Call:
		return fmt.Errorf("%s: CALL %s: user subroutines unsupported", s.Pos, s.Name)
	}
	return fmt.Errorf("%s: unsupported statement %T", s.Position(), s)
}

func (m *Machine) execDo(s *ast.DoLoop) error {
	from, err := m.evalScalar(s.From)
	if err != nil {
		return err
	}
	to, err := m.evalScalar(s.To)
	if err != nil {
		return err
	}
	step := int64(1)
	if s.Step != nil {
		sv, err := m.evalScalar(s.Step)
		if err != nil {
			return err
		}
		step = sv.AsInt()
	}
	if step == 0 {
		return fmt.Errorf("%s: zero DO step", s.Pos)
	}
	iv, ok := m.scalars[s.Var]
	if !ok {
		// Implicitly typed loop index (I-N rule).
		v := Val{Kind: KInt}
		m.scalars[s.Var] = &v
		iv = &v
	}
	i := from.AsInt()
	for ; (step > 0 && i <= to.AsInt()) || (step < 0 && i >= to.AsInt()); i += step {
		*iv = IntVal(i)
		if err := m.exec(s.Body); err != nil {
			return err
		}
		if err := m.tick(s); err != nil {
			return err
		}
	}
	// Fortran 90 semantics: after loop completion the DO variable holds
	// the value after the final incrementation.
	*iv = IntVal(i)
	return nil
}

// execWhere evaluates the mask once, then runs body and elsewhere
// assignments under it (Fortran 90 single-statement-group semantics).
func (m *Machine) execWhere(s *ast.Where) error {
	mv, err := m.eval(s.Mask)
	if err != nil {
		return err
	}
	if !mv.isArray() || mv.Arr.Kind != KLogical {
		return fmt.Errorf("%s: WHERE mask must be a logical array", s.Pos)
	}
	mask := mv.Arr
	for _, a := range s.Body {
		if err := m.execAssign(a, mask); err != nil {
			return err
		}
	}
	if len(s.ElseBody) > 0 {
		not := NewArray(KLogical, mask.Ext, mask.Lo)
		for i, b := range mask.B {
			not.B[i] = !b
		}
		for _, a := range s.ElseBody {
			if err := m.execAssign(a, not); err != nil {
				return err
			}
		}
	}
	return nil
}

// execForall evaluates every element's RHS before any store (FORALL
// determinate semantics).
func (m *Machine) execForall(s *ast.Forall) error {
	if s.Assign == nil {
		return nil
	}
	type bound struct{ lo, hi, step int64 }
	bounds := make([]bound, len(s.Indexes))
	for k, ix := range s.Indexes {
		lo, err := m.evalScalar(ix.Lo)
		if err != nil {
			return err
		}
		hi, err := m.evalScalar(ix.Hi)
		if err != nil {
			return err
		}
		st := int64(1)
		if ix.Step != nil {
			sv, err := m.evalScalar(ix.Step)
			if err != nil {
				return err
			}
			st = sv.AsInt()
		}
		if st == 0 {
			return fmt.Errorf("%s: zero FORALL stride", s.Pos)
		}
		bounds[k] = bound{lo.AsInt(), hi.AsInt(), st}
	}

	lhs, ok := s.Assign.LHS.(*ast.Index)
	if !ok {
		return fmt.Errorf("%s: FORALL target must be subscripted", s.Pos)
	}
	tgt := m.arrays[lhs.Name]
	if tgt == nil {
		return fmt.Errorf("%s: FORALL target %q is not an array", s.Pos, lhs.Name)
	}

	// Save and create the index scalars.
	saved := map[string]*Val{}
	for _, ix := range s.Indexes {
		saved[ix.Var] = m.scalars[ix.Var]
		v := Val{Kind: KInt}
		m.scalars[ix.Var] = &v
	}
	defer func() {
		for name, old := range saved {
			if old == nil {
				delete(m.scalars, name)
			} else {
				m.scalars[name] = old
			}
		}
	}()

	type pending struct {
		idx []int
		v   Val
	}
	var stores []pending
	var walk func(k int) error
	walk = func(k int) error {
		if k == len(bounds) {
			if s.Mask != nil {
				mv, err := m.evalScalar(s.Mask)
				if err != nil {
					return err
				}
				if !mv.B {
					return nil
				}
			}
			idx := make([]int, len(lhs.Subs))
			for d, sub := range lhs.Subs {
				if !sub.Single {
					return fmt.Errorf("%s: FORALL target must use element subscripts", s.Pos)
				}
				v, err := m.evalScalar(sub.Lo)
				if err != nil {
					return err
				}
				idx[d] = int(v.AsInt())
			}
			rv, err := m.evalScalar(s.Assign.RHS)
			if err != nil {
				return err
			}
			stores = append(stores, pending{idx: idx, v: rv})
			return nil
		}
		b := bounds[k]
		iv := m.scalars[s.Indexes[k].Var]
		for i := b.lo; (b.step > 0 && i <= b.hi) || (b.step < 0 && i >= b.hi); i += b.step {
			*iv = IntVal(i)
			if err := walk(k + 1); err != nil {
				return err
			}
		}
		return nil
	}
	if err := walk(0); err != nil {
		return err
	}
	for _, p := range stores {
		if err := tgt.Set(p.idx, p.v); err != nil {
			return fmt.Errorf("%s: %w", s.Pos, err)
		}
	}
	return nil
}

func (m *Machine) execPrint(s *ast.Print) error {
	var parts []string
	for _, item := range s.Items {
		r, err := m.eval(item)
		if err != nil {
			return err
		}
		switch {
		case r.IsStr:
			parts = append(parts, r.Str)
		case r.isArray():
			var elems []string
			a := r.Arr
			for i := 0; i < a.Size(); i++ {
				elems = append(elems, a.at(i).String())
			}
			parts = append(parts, strings.Join(elems, " "))
		default:
			parts = append(parts, r.Val.String())
		}
	}
	m.out = append(m.out, strings.Join(parts, " "))
	return nil
}
