// Package interp is a direct reference interpreter for the Fortran 90
// subset. It executes the AST against ordinary Go storage with no
// compilation, optimization, or machine model, and serves as the oracle
// for end-to-end correctness tests: a program compiled by Fortran-90-Y and
// run on the simulated CM/2 must produce the same values, elementwise, as
// this interpreter.
//
// Numeric semantics: REAL and DOUBLE PRECISION are both computed in
// float64 (the compiled path computes in 64-bit Weitek arithmetic as
// well); INTEGER uses int64 with Fortran truncating division.
package interp

import (
	"fmt"
	"math"
)

// Kind classifies a runtime value.
type Kind int

// Runtime kinds.
const (
	KInt Kind = iota
	KReal
	KLogical
)

// Val is a runtime scalar.
type Val struct {
	Kind Kind
	I    int64
	F    float64
	B    bool
}

// IntVal builds an integer scalar.
func IntVal(i int64) Val { return Val{Kind: KInt, I: i} }

// RealVal builds a real scalar.
func RealVal(f float64) Val { return Val{Kind: KReal, F: f} }

// BoolVal builds a logical scalar.
func BoolVal(b bool) Val { return Val{Kind: KLogical, B: b} }

// AsFloat converts a numeric scalar to float64.
func (v Val) AsFloat() float64 {
	if v.Kind == KInt {
		return float64(v.I)
	}
	return v.F
}

// AsInt converts a numeric scalar to int64 with Fortran truncation.
func (v Val) AsInt() int64 {
	if v.Kind == KInt {
		return v.I
	}
	return int64(math.Trunc(v.F))
}

func (v Val) String() string {
	switch v.Kind {
	case KInt:
		return fmt.Sprintf("%d", v.I)
	case KLogical:
		if v.B {
			return "T"
		}
		return "F"
	default:
		return fmt.Sprintf("%g", v.F)
	}
}

// Array is a runtime array with column-major element order (Fortran
// storage sequence) and per-dimension lower bounds.
type Array struct {
	Kind Kind
	Ext  []int // extents per dimension
	Lo   []int // declared lower bound per dimension
	I    []int64
	F    []float64
	B    []bool
}

// NewArray allocates a zeroed array.
func NewArray(kind Kind, ext, lo []int) *Array {
	n := 1
	for _, e := range ext {
		n *= e
	}
	a := &Array{Kind: kind, Ext: append([]int(nil), ext...), Lo: append([]int(nil), lo...)}
	switch kind {
	case KInt:
		a.I = make([]int64, n)
	case KLogical:
		a.B = make([]bool, n)
	default:
		a.F = make([]float64, n)
	}
	return a
}

// Size is the total element count.
func (a *Array) Size() int {
	n := 1
	for _, e := range a.Ext {
		n *= e
	}
	return n
}

// Rank is the number of dimensions.
func (a *Array) Rank() int { return len(a.Ext) }

// offset converts per-dimension indexes (in declared index space) to the
// column-major storage offset.
func (a *Array) offset(idx []int) (int, error) {
	off, stride := 0, 1
	for d := 0; d < len(a.Ext); d++ {
		i := idx[d] - a.Lo[d]
		if i < 0 || i >= a.Ext[d] {
			return 0, fmt.Errorf("subscript %d out of bounds for dimension %d (extent %d, lower %d)",
				idx[d], d+1, a.Ext[d], a.Lo[d])
		}
		off += i * stride
		stride *= a.Ext[d]
	}
	return off, nil
}

// Get reads the element at idx (declared index space).
func (a *Array) Get(idx []int) (Val, error) {
	off, err := a.offset(idx)
	if err != nil {
		return Val{}, err
	}
	return a.at(off), nil
}

func (a *Array) at(off int) Val {
	switch a.Kind {
	case KInt:
		return IntVal(a.I[off])
	case KLogical:
		return BoolVal(a.B[off])
	default:
		return RealVal(a.F[off])
	}
}

// Set writes the element at idx, converting v to the array's kind.
func (a *Array) Set(idx []int, v Val) error {
	off, err := a.offset(idx)
	if err != nil {
		return err
	}
	a.set(off, v)
	return nil
}

func (a *Array) set(off int, v Val) {
	switch a.Kind {
	case KInt:
		a.I[off] = v.AsInt()
	case KLogical:
		a.B[off] = v.B
	default:
		a.F[off] = v.AsFloat()
	}
}

// Clone copies the array.
func (a *Array) Clone() *Array {
	out := NewArray(a.Kind, a.Ext, a.Lo)
	copy(out.I, a.I)
	copy(out.F, a.F)
	copy(out.B, a.B)
	return out
}

// Congruent reports whether two arrays have identical extents.
func (a *Array) Congruent(b *Array) bool {
	if len(a.Ext) != len(b.Ext) {
		return false
	}
	for i := range a.Ext {
		if a.Ext[i] != b.Ext[i] {
			return false
		}
	}
	return true
}

// result is a scalar, an array, or (only within PRINT items) a character
// string.
type result struct {
	Val   Val
	Arr   *Array
	Str   string
	IsStr bool
}

func scalarResult(v Val) result   { return result{Val: v} }
func arrayResult(a *Array) result { return result{Arr: a} }

func (r result) isArray() bool { return r.Arr != nil }
