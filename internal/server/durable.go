package server

// The durability plane. With Config.StateDir set, the server keeps
// three durable artifacts under it:
//
//	journal.wal   the job WAL (journal.go, f90y-journal/v1)
//	spills/       one checkpoint per in-flight run job (rt.Checkpoint
//	              format, atomic temp+rename+fsync, CRC trailer)
//	cache/        the driver's persistent artifact tier (diskcache.go)
//
// Run jobs execute with periodic checkpointing wired through the
// EXISTING cm2.Control hook: every CheckpointEvery host boundaries the
// runtime snapshot is spilled to disk. Drain flips the suspend flag, so
// the next spill also returns ErrSuspended — the run stops at an exact
// boundary with a just-written snapshot, and the client gets 503 +
// code "suspended" with its job id still valid.
//
// Recovery (replayJournal) reconstructs obligations on startup:
//
//	finished record            -> job reloaded into the retention table;
//	                              GET /v1/jobs/{id} serves identical bytes
//	admitted, spill readable   -> re-admitted with Resume set: continues
//	                              from the boundary, bit-identically
//	admitted, no/bad spill     -> re-admitted from scratch (deterministic
//	                              jobs still produce identical results);
//	                              an unreadable spill is counted as a
//	                              casualty, never decoded
//	torn journal line          -> counted in stats (torn_records); a job
//	                              whose admitted record was lost cannot
//	                              be resumed, and the non-zero counter is
//	                              how the loss is reported
//
// The journal is compacted atomically before the new epoch appends.

import (
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"sync"

	"f90y/internal/cm2"
	"f90y/internal/driver"
	"f90y/internal/faults"
	"f90y/internal/rt"
)

// DurabilityStats is the /statsz durability section.
type DurabilityStats struct {
	StateDir        string `json:"state_dir"`
	JournalRecords  int64  `json:"journal_records"` // appended this epoch
	JournalBytes    int64  `json:"journal_bytes"`
	JournalErrors   int64  `json:"journal_errors"` // append failures (degraded, not fatal)
	TornRecords     int64  `json:"torn_records"`   // damaged WAL lines found at recovery
	SpillWrites     int64  `json:"spill_writes"`
	SpillCasualties int64  `json:"spill_casualties"` // unreadable spills at recovery
	Suspended       int64  `json:"suspended"`        // jobs suspended by drain this epoch
	Resumed         int64  `json:"resumed"`          // jobs resumed from a spill at startup
	Requeued        int64  `json:"requeued"`         // jobs re-run from scratch at startup
	RecoveredDone   int64  `json:"recovered_done"`   // finished results reloaded at startup
	Unrecoverable   int64  `json:"unrecoverable"`    // admitted records that no longer build a job

	DiskCache driver.DiskCacheStats `json:"disk_cache"`
}

// durable owns the state directory: the WAL appender, the spill files,
// and the counters. Nil methods are safe so call sites stay branch-free
// when the plane is disabled.
type durable struct {
	dir     string
	journal *journal
	io      *faults.IOInjector
	logf    func(format string, args ...any)

	mu sync.Mutex
	st DurabilityStats
}

// openDurable creates the state-dir layout and reads (but does not yet
// compact) the prior epoch's journal.
func openDurable(dir string, inj *faults.IOInjector, logf func(string, ...any)) (*durable, []jrec, error) {
	for _, sub := range []string{dir, filepath.Join(dir, "spills"), filepath.Join(dir, "cache")} {
		if err := os.MkdirAll(sub, 0o755); err != nil {
			return nil, nil, fmt.Errorf("server: state dir: %w", err)
		}
	}
	recs, torn, err := readJournal(filepath.Join(dir, "journal.wal"))
	if err != nil {
		return nil, nil, err
	}
	d := &durable{dir: dir, io: inj, logf: logf}
	d.st.StateDir = dir
	d.st.TornRecords = torn
	if torn > 0 {
		logf("f90yd: journal: %d torn record(s) skipped during recovery\n", torn)
	}
	return d, recs, nil
}

// compactAndOpen atomically rewrites the WAL to carry and opens the
// epoch's appender.
func (d *durable) compactAndOpen(carry []jrec) error {
	path := filepath.Join(d.dir, "journal.wal")
	if err := writeCompact(path, carry); err != nil {
		return err
	}
	j, err := openJournal(path, d.io)
	if err != nil {
		return err
	}
	d.journal = j
	return nil
}

// append journals one record, best effort: a failed append degrades
// durability (counted, logged once per failure) but never fails the
// request — the in-memory server remains correct.
func (d *durable) append(rec jrec) {
	if d == nil {
		return
	}
	if err := d.journal.append(rec); err != nil {
		d.mu.Lock()
		d.st.JournalErrors++
		d.mu.Unlock()
		d.logf("f90yd: %v\n", err)
	}
}

// spillPath is the job's checkpoint file.
func (d *durable) spillPath(id string) string {
	return filepath.Join(d.dir, "spills", id+".ckpt")
}

// writeSpill durably writes one job checkpoint, through the fault
// injector when armed.
func (d *durable) writeSpill(id string, ck *rt.Checkpoint) error {
	data, err := ck.Encode()
	if err != nil {
		return err
	}
	mangled, _ := d.io.Mangle(data)
	if err := rt.WriteFileAtomic(d.spillPath(id), mangled); err != nil {
		return err
	}
	d.mu.Lock()
	d.st.SpillWrites++
	d.mu.Unlock()
	return nil
}

// readSpill loads a job checkpoint; integrity failures surface as
// rt.ErrCkptTruncated / rt.ErrCkptCorrupt exactly like the CLI path.
func (d *durable) readSpill(id string) (*rt.Checkpoint, error) {
	return rt.ReadCheckpoint(d.spillPath(id))
}

// removeSpill deletes a finished job's checkpoint.
func (d *durable) removeSpill(id string) {
	if d == nil {
		return
	}
	os.Remove(d.spillPath(id))
}

// count bumps one counter under the lock.
func (d *durable) count(f func(*DurabilityStats)) {
	if d == nil {
		return
	}
	d.mu.Lock()
	f(&d.st)
	d.mu.Unlock()
}

// snapshot copies the counters, folding in the journal's epoch usage.
func (d *durable) snapshot(disk driver.DiskCacheStats) *DurabilityStats {
	if d == nil {
		return nil
	}
	d.mu.Lock()
	st := d.st
	d.mu.Unlock()
	if d.journal != nil {
		st.JournalRecords, st.JournalBytes = d.journal.usage()
	}
	st.DiskCache = disk
	return &st
}

// close releases the WAL appender (after the workers have stopped).
func (d *durable) close() {
	if d == nil || d.journal == nil {
		return
	}
	d.journal.close()
}

// jobHist aggregates one job's journal records during replay.
type jobHist struct {
	admitted *jrec
	ckpt     bool
	finished *jrec
	order    int
}

// replayJournal reconstructs state from the prior epoch's records:
// finished jobs are reloaded into the retention table, unfinished
// admitted jobs are rebuilt for re-admission (with Resume set when
// their spill survives), and the carry list for compaction is returned.
// Called from New before the workers start; no locks are needed yet.
func (s *Server) replayJournal(recs []jrec) (carry []jrec, resume []*jobState) {
	hist := map[string]*jobHist{}
	var order []string
	var maxSeq int64
	note := func(id string) *jobHist {
		h := hist[id]
		if h == nil {
			h = &jobHist{order: len(order)}
			hist[id] = h
			order = append(order, id)
		}
		if n := jobSeq(id); n > maxSeq {
			maxSeq = n
		}
		return h
	}
	for i := range recs {
		rec := &recs[i]
		if rec.Job == "" {
			continue
		}
		switch rec.T {
		case "admitted":
			note(rec.Job).admitted = rec
		case "ckpt":
			note(rec.Job).ckpt = true
		case "finished":
			note(rec.Job).finished = rec
		}
	}
	s.jobs.setSeq(maxSeq)

	for _, id := range order {
		h := hist[id]
		switch {
		case h.finished != nil:
			// Terminal: reload the outcome so GET /v1/jobs/{id} serves the
			// same result this epoch, and carry the record forward.
			s.jobs.restoreFinished(id, h.finished)
			carry = append(carry, *h.finished)
			s.dur.count(func(st *DurabilityStats) { st.RecoveredDone++ })
			s.dur.removeSpill(id)
		case h.admitted != nil && h.admitted.Req != nil:
			js := s.jobs.restoreQueued(id, h.admitted)
			js.spec = h.admitted.Req
			if err := s.jobFromSpec(js); err != nil {
				// The record decoded (CRC passed) but no longer builds a
				// job — schema drift across versions. Reported, not silent.
				s.dur.count(func(st *DurabilityStats) { st.Unrecoverable++ })
				fmt.Fprintf(s.cfg.Log, "f90yd: recovery: job %s unrecoverable: %v\n", id, err)
				s.jobs.drop(js)
				s.dur.removeSpill(id)
				continue
			}
			carryRec := *h.admitted
			if h.ckpt {
				ck, err := s.dur.readSpill(id)
				switch {
				case err == nil:
					ctl := js.job.Ctl
					if ctl == nil {
						ctl = &cm2.Control{}
					}
					ctl.Resume = ck
					js.job.Ctl = ctl
					s.dur.count(func(st *DurabilityStats) { st.Resumed++ })
					carry = append(carry, carryRec, jrec{T: "ckpt", Job: id})
				default:
					// Torn or corrupt spill: a casualty to report, never a
					// snapshot to trust. The job re-runs from scratch.
					if errors.Is(err, rt.ErrCkptTruncated) || errors.Is(err, rt.ErrCkptCorrupt) || os.IsNotExist(err) {
						s.dur.count(func(st *DurabilityStats) { st.SpillCasualties++ })
						fmt.Fprintf(s.cfg.Log, "f90yd: recovery: job %s spill unusable (re-running): %v\n", id, err)
					}
					s.dur.removeSpill(id)
					s.dur.count(func(st *DurabilityStats) { st.Requeued++ })
					carry = append(carry, carryRec)
				}
			} else {
				s.dur.count(func(st *DurabilityStats) { st.Requeued++ })
				carry = append(carry, carryRec)
			}
			resume = append(resume, js)
		default:
			// A ckpt/started record whose admitted line was torn: the job
			// cannot be rebuilt. The torn counter already reports the loss;
			// make the orphan explicit too.
			s.dur.count(func(st *DurabilityStats) { st.Unrecoverable++ })
			s.dur.removeSpill(id)
		}
	}

	// Bound the carried finished records like the in-memory retention:
	// drop the oldest past RetainedJobs so the journal cannot grow one
	// compaction at a time forever.
	nFin := 0
	for _, r := range carry {
		if r.T == "finished" {
			nFin++
		}
	}
	if over := nFin - s.cfg.RetainedJobs; over > 0 {
		kept := carry[:0]
		for _, r := range carry {
			if r.T == "finished" && over > 0 {
				over--
				continue
			}
			kept = append(kept, r)
		}
		carry = kept
	}
	return carry, resume
}

// enqueueRecovered re-admits recovered jobs on a goroutine once the
// workers are running. Quota slots are adopted unconditionally — the
// jobs were already admitted in a prior epoch; bouncing them now would
// turn a restart into data loss. The queue send blocks past the
// admission bound for the same reason (the workers are live, so it
// drains). Drain stops the re-admission; un-enqueued jobs stay in the
// compacted journal for the next epoch.
func (s *Server) enqueueRecovered(resume []*jobState) {
	for _, js := range resume {
		s.admitMu.Lock()
		if s.draining {
			s.admitMu.Unlock()
			return
		}
		s.tenants.adopt(js.tenant)
		s.jobWG.Add(1)
		s.admitMu.Unlock()
		s.stats.mu.Lock()
		s.stats.admitted++
		s.stats.mu.Unlock()
		js.ctx, js.cancel = withJobContext(s.baseCtx)
		s.queue <- js
	}
	if len(resume) > 0 {
		fmt.Fprintf(s.cfg.Log, "f90yd: recovery: re-admitted %d job(s)\n", len(resume))
	}
}

// prepareDurable wires the checkpoint plane into one admitted run job:
// every CheckpointEvery boundaries the run spills its snapshot; once
// the suspend flag is up, the next spill also stops the run with
// ErrSuspended. The ctl is cloned — specs may be shared with recovery
// state — and Resume set by recovery is preserved.
func (s *Server) prepareDurable(js *jobState) {
	if s.dur == nil || js.kind != "run" {
		return
	}
	var ctl cm2.Control
	if js.job.Ctl != nil {
		ctl = *js.job.Ctl
	}
	if ctl.CheckpointEvery == 0 {
		ctl.CheckpointEvery = s.cfg.CheckpointEvery
	}
	id := js.id
	journaled := false
	ctl.Checkpoint = func(ck *rt.Checkpoint) error {
		if err := s.dur.writeSpill(id, ck); err == nil && !journaled {
			journaled = true
			s.dur.append(jrec{T: "ckpt", Job: id})
		}
		if s.suspend.Load() {
			return ErrSuspended
		}
		return nil
	}
	js.job.Ctl = &ctl
}
