package server

import (
	"bytes"
	"context"
	"encoding/json"
	"io"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"reflect"
	"testing"
	"time"
)

// reqBody marshals a request body for the raw-client posts these tests
// use (they need typed jobView decoding, not the map-based post helper).
func reqBody(t *testing.T, v any) io.Reader {
	t.Helper()
	b, err := json.Marshal(v)
	if err != nil {
		t.Fatal(err)
	}
	return bytes.NewReader(b)
}

// durSrc has ~400 top-level host boundaries (one per DO iteration), so
// a drain always finds a checkpoint boundary to suspend at.
const durSrc = `      PROGRAM DUR
      REAL A(16), B(16)
      INTEGER I
      A = 1.5
      B = 0.5
      DO I = 1, 400
        A = A * B + A
      END DO
      PRINT *, SUM(A)
      END
`

// durableConfig is the shared small-server config for durability tests.
func durableConfig(dir string) Config {
	return Config{
		Workers:         2,
		QueueDepth:      8,
		StateDir:        dir,
		CheckpointEvery: 1,
		Quotas:          Quotas{MaxInFlight: 8, MaxSourceBytes: 1 << 20},
	}
}

// pollJob fetches a job view until want (a JobStatus) or the deadline.
func pollJob(t *testing.T, hs *httptest.Server, id string, want JobStatus) jobView {
	t.Helper()
	deadline := time.Now().Add(15 * time.Second)
	for {
		resp, err := hs.Client().Get(hs.URL + "/v1/jobs/" + id)
		if err != nil {
			t.Fatal(err)
		}
		var v jobView
		if err := json.NewDecoder(resp.Body).Decode(&v); err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if v.Status == want {
			return v
		}
		if time.Now().After(deadline) {
			t.Fatalf("job %s stuck at %q (want %q): %+v", id, v.Status, want, v)
		}
		time.Sleep(10 * time.Millisecond)
	}
}

// TestJournalTornTolerance: a WAL with a torn tail and a mid-file
// mangled line yields every intact record plus an accurate torn count.
func TestJournalTornTolerance(t *testing.T) {
	path := filepath.Join(t.TempDir(), "journal.wal")
	recs := []jrec{
		{T: "admitted", Job: "j000001", Kind: "run", Req: &runRequest{Source: "x"}},
		{T: "started", Job: "j000001"},
		{T: "finished", Job: "j000001", Status: 200},
	}
	if err := writeCompact(path, recs); err != nil {
		t.Fatal(err)
	}
	data, _ := os.ReadFile(path)
	// Mangle the "started" line (CRC now fails) and tear the tail.
	lines := []byte{}
	lines = append(lines, data...)
	mid := len(data) / 2
	lines[mid] ^= 0x20
	lines = append(lines, []byte("00000000 {\"t\":\"adm")...) // torn tail, no newline
	if err := os.WriteFile(path, lines, 0o644); err != nil {
		t.Fatal(err)
	}

	got, torn, err := readJournal(path)
	if err != nil {
		t.Fatal(err)
	}
	if torn < 1 {
		t.Errorf("torn = %d, want >= 1", torn)
	}
	for _, r := range got {
		if r.Job != "j000001" {
			t.Errorf("unexpected surviving record %+v", r)
		}
	}
	if len(got)+int(torn) < 4 {
		t.Errorf("records %d + torn %d should cover all 4 damaged-or-not lines", len(got), torn)
	}

	// A journal in a foreign schema is refused, not reinterpreted.
	bad, _ := encodeRec(jrec{T: "journal", Schema: "f90y-journal/v999"})
	if err := os.WriteFile(path, bad, 0o644); err != nil {
		t.Fatal(err)
	}
	if _, _, err := readJournal(path); err == nil {
		t.Error("foreign-schema journal was accepted")
	}
}

// TestServerSuspendResumeBitIdentical is the tentpole acceptance at
// unit scale: a run suspended at a checkpoint boundary by drain and
// resumed by a fresh server on the same state dir produces exactly the
// result of a run that was never interrupted.
func TestServerSuspendResumeBitIdentical(t *testing.T) {
	// Baseline: the uninterrupted result.
	base, baseHS := testServer(t, durableConfig(t.TempDir()))
	_ = base
	var baseline jobView
	{
		resp, err := baseHS.Client().Post(baseHS.URL+"/v1/run", "application/json",
			reqBody(t, map[string]any{"file": "dur.f90", "source": durSrc}))
		if err != nil {
			t.Fatal(err)
		}
		if err := json.NewDecoder(resp.Body).Decode(&baseline); err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode != 200 || baseline.Result == nil {
			t.Fatalf("baseline run failed: %d %+v", resp.StatusCode, baseline)
		}
	}

	dir := t.TempDir()
	a, err := New(durableConfig(dir))
	if err != nil {
		t.Fatal(err)
	}
	ahs := httptest.NewServer(a.Handler())
	// Pre-arm the suspend flag: the run parks at its FIRST checkpoint
	// boundary, deterministically, with almost all work still to do.
	a.suspend.Store(true)

	resp, err := ahs.Client().Post(ahs.URL+"/v1/run", "application/json",
		reqBody(t, map[string]any{"file": "dur.f90", "source": durSrc, "async": true}))
	if err != nil {
		t.Fatal(err)
	}
	var admitted jobView
	if err := json.NewDecoder(resp.Body).Decode(&admitted); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("async admission: %d %+v", resp.StatusCode, admitted)
	}
	v := pollJob(t, ahs, admitted.JobID, JobSuspended)
	if v.HTTPStatus != http.StatusServiceUnavailable || v.Code != CodeSuspended {
		t.Fatalf("suspended view = (%d, %s), want (503, suspended)", v.HTTPStatus, v.Code)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	st := a.Drain(ctx)
	cancel()
	ahs.Close()
	if st.Durability == nil || st.Durability.Suspended != 1 || st.Durability.SpillWrites < 1 {
		t.Fatalf("drain durability stats %+v, want 1 suspended and >=1 spill", st.Durability)
	}

	// Epoch two: recovery resumes the spilled job to completion.
	b, err := New(durableConfig(dir))
	if err != nil {
		t.Fatal(err)
	}
	bhs := httptest.NewServer(b.Handler())
	defer func() {
		ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
		b.Drain(ctx)
		cancel()
		bhs.Close()
	}()
	done := pollJob(t, bhs, admitted.JobID, JobDone)
	if done.HTTPStatus != 200 || done.Result == nil {
		t.Fatalf("resumed job ended (%d, %s): %s", done.HTTPStatus, done.Code, done.Error)
	}
	if !reflect.DeepEqual(done.Result, baseline.Result) {
		t.Errorf("resumed result diverges from uninterrupted baseline:\n resumed  %+v\n baseline %+v",
			done.Result, baseline.Result)
	}
	if bst := b.Stats(); bst.Durability == nil || bst.Durability.Resumed != 1 {
		t.Errorf("epoch-two durability stats %+v, want resumed=1", bst.Durability)
	}
}

// TestServerRecoveryRequeuesNeverStarted: an admitted record with no
// started/finished trace (the crash hit before a worker picked it up)
// is re-run from scratch on the next epoch, and the id counter resumes
// above the journaled ids.
func TestServerRecoveryRequeuesNeverStarted(t *testing.T) {
	dir := t.TempDir()
	if err := os.MkdirAll(dir, 0o755); err != nil {
		t.Fatal(err)
	}
	recs := []jrec{{
		T: "admitted", Job: "j000007", Tenant: "crashed", Kind: "run",
		Req: &runRequest{File: "dur.f90", Source: durSrc},
	}}
	if err := writeCompact(filepath.Join(dir, "journal.wal"), recs); err != nil {
		t.Fatal(err)
	}

	s, hs := testServer(t, durableConfig(dir))
	v := pollJob(t, hs, "j000007", JobDone)
	if v.HTTPStatus != 200 || v.Result == nil {
		t.Fatalf("recovered job ended (%d, %s): %s", v.HTTPStatus, v.Code, v.Error)
	}
	if v.Tenant != "crashed" {
		t.Errorf("recovered job tenant %q, want %q", v.Tenant, "crashed")
	}
	if st := s.Stats(); st.Durability == nil || st.Durability.Requeued != 1 {
		t.Errorf("durability stats %+v, want requeued=1", st.Durability)
	}
	// Fresh ids must not collide with recovered ones.
	njs := s.jobs.newJob("t", "run")
	if jobSeq(njs.id) <= 7 {
		t.Errorf("fresh id %s collides with the recovered journal range", njs.id)
	}
	s.jobs.drop(njs)
}

// TestServerRecoveryServesFinished: finished results survive a restart
// — the journal's finished record reloads into the retention table and
// GET /v1/jobs/{id} answers identically next epoch.
func TestServerRecoveryServesFinished(t *testing.T) {
	dir := t.TempDir()
	a, err := New(durableConfig(dir))
	if err != nil {
		t.Fatal(err)
	}
	ahs := httptest.NewServer(a.Handler())
	resp, err := ahs.Client().Post(ahs.URL+"/v1/run", "application/json",
		reqBody(t, map[string]any{"file": "dur.f90", "source": durSrc}))
	if err != nil {
		t.Fatal(err)
	}
	var first jobView
	if err := json.NewDecoder(resp.Body).Decode(&first); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != 200 || first.Result == nil {
		t.Fatalf("first-epoch run failed: %d %+v", resp.StatusCode, first)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	a.Drain(ctx)
	cancel()
	ahs.Close()

	s, hs := testServer(t, durableConfig(dir))
	v := pollJob(t, hs, first.JobID, JobDone)
	if !reflect.DeepEqual(v.Result, first.Result) {
		t.Errorf("recovered result differs:\n epoch2 %+v\n epoch1 %+v", v.Result, first.Result)
	}
	if v.HTTPStatus != 200 {
		t.Errorf("recovered job status %d, want 200", v.HTTPStatus)
	}
	if st := s.Stats(); st.Durability == nil || st.Durability.RecoveredDone != 1 {
		t.Errorf("durability stats %+v, want recovered_done=1", st.Durability)
	}
}

// TestServerRecoveryTornJournalTail: garbage appended to the WAL (a
// torn final write) is counted and skipped; the server still starts and
// still serves everything whose records survived.
func TestServerRecoveryTornJournalTail(t *testing.T) {
	dir := t.TempDir()
	recs := []jrec{{
		T: "admitted", Job: "j000003", Tenant: "anon", Kind: "run",
		Req: &runRequest{File: "dur.f90", Source: durSrc},
	}}
	if err := writeCompact(filepath.Join(dir, "journal.wal"), recs); err != nil {
		t.Fatal(err)
	}
	f, err := os.OpenFile(filepath.Join(dir, "journal.wal"), os.O_APPEND|os.O_WRONLY, 0o644)
	if err != nil {
		t.Fatal(err)
	}
	f.Write([]byte("deadbeef {\"t\":\"adm")) // CRC cannot match this torn body
	f.Close()

	s, hs := testServer(t, durableConfig(dir))
	v := pollJob(t, hs, "j000003", JobDone)
	if v.HTTPStatus != 200 {
		t.Fatalf("surviving job ended (%d, %s): %s", v.HTTPStatus, v.Code, v.Error)
	}
	if st := s.Stats(); st.Durability == nil || st.Durability.TornRecords < 1 {
		t.Errorf("durability stats %+v, want torn_records>=1", st.Durability)
	}
}

// TestServerStateless: without a StateDir the durability section is
// absent and no state files appear — the plane is strictly opt-in.
func TestServerStateless(t *testing.T) {
	s, hs := testServer(t, Config{Workers: 1, QueueDepth: 4,
		Quotas: Quotas{MaxInFlight: 4, MaxSourceBytes: 1 << 20}})
	resp, err := hs.Client().Post(hs.URL+"/v1/run", "application/json",
		reqBody(t, map[string]any{"file": "dur.f90", "source": durSrc}))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != 200 {
		t.Fatalf("stateless run: %d", resp.StatusCode)
	}
	if st := s.Stats(); st.Durability != nil {
		t.Errorf("stateless server reports durability stats: %+v", st.Durability)
	}
}
