package server

// Per-tenant quotas. The design deliberately adds NO second enforcement
// path inside the pipeline: a tenant's cycle quota is applied by
// setting cm2.Control.MaxCycles on its jobs, so the kill site, the
// determinism guarantee, and the rt.ErrBudget error chain are exactly
// the ones PR 4's watchdog already proved. The server only decides the
// number; the runtime enforces it. Likewise ExecWorkers caps reuse the
// sharded executor's existing knob, and the admission-side quotas
// (source bytes, in-flight jobs) are checked before any pipeline work
// starts.

import (
	"sync"
)

// Quotas are the per-tenant admission and execution bounds. The zero
// value of any field disables that bound.
type Quotas struct {
	// MaxInFlight bounds a tenant's jobs that are queued or running at
	// once; excess admissions get 429 tenant_busy.
	MaxInFlight int
	// MaxCycles caps the modeled-cycle budget of any single job. A
	// request may ask for less, never more; a job with no request
	// budget gets this cap (or the service default if smaller).
	MaxCycles float64
	// MaxExecWorkers caps the per-job executor sharding a request may
	// ask for (0 = requests may not shard beyond the service default).
	MaxExecWorkers int
	// MaxSourceBytes bounds the program source accepted from a tenant;
	// larger requests get 413 before any admission work.
	MaxSourceBytes int
}

// tenantState is one tenant's live accounting.
type tenantState struct {
	inflight int
	admitted int64
	rejected int64 // 429 tenant_busy rejections
}

// tenants tracks per-tenant in-flight counts and counters under one
// lock; operations are O(1) and called once per request.
type tenants struct {
	mu sync.Mutex
	q  Quotas
	m  map[string]*tenantState
}

func newTenants(q Quotas) *tenants {
	return &tenants{q: q, m: map[string]*tenantState{}}
}

// acquire admits one job for tenant, reporting false when the tenant is
// at its in-flight quota. On success the caller must release exactly
// once.
func (t *tenants) acquire(tenant string) bool {
	t.mu.Lock()
	defer t.mu.Unlock()
	st := t.m[tenant]
	if st == nil {
		st = &tenantState{}
		t.m[tenant] = st
	}
	if t.q.MaxInFlight > 0 && st.inflight >= t.q.MaxInFlight {
		st.rejected++
		return false
	}
	st.inflight++
	st.admitted++
	return true
}

// adopt takes an in-flight slot for a journal-recovered job without the
// quota check: the job was already admitted in a prior epoch, and
// re-running the check now would turn a restart into data loss.
func (t *tenants) adopt(tenant string) {
	t.mu.Lock()
	defer t.mu.Unlock()
	st := t.m[tenant]
	if st == nil {
		st = &tenantState{}
		t.m[tenant] = st
	}
	st.inflight++
	st.admitted++
}

// release returns one in-flight slot.
func (t *tenants) release(tenant string) {
	t.mu.Lock()
	defer t.mu.Unlock()
	if st := t.m[tenant]; st != nil && st.inflight > 0 {
		st.inflight--
	}
}

// TenantStats is one tenant's snapshot for /statsz.
type TenantStats struct {
	InFlight int   `json:"in_flight"`
	Admitted int64 `json:"admitted"`
	Rejected int64 `json:"rejected"`
}

// snapshot copies the table for /statsz.
func (t *tenants) snapshot() map[string]TenantStats {
	t.mu.Lock()
	defer t.mu.Unlock()
	out := make(map[string]TenantStats, len(t.m))
	for name, st := range t.m {
		out[name] = TenantStats{InFlight: st.inflight, Admitted: st.admitted, Rejected: st.rejected}
	}
	return out
}

// budget resolves the effective cycle budget for a job: the requested
// budget when given (clamped to the tenant cap), else the tenant cap,
// else the service default (which the driver applies). Returns 0 to
// mean "leave it to the service default".
func (q Quotas) budget(requested float64) float64 {
	switch {
	case requested > 0 && q.MaxCycles > 0 && requested > q.MaxCycles:
		return q.MaxCycles
	case requested > 0:
		return requested
	default:
		return q.MaxCycles
	}
}

// execWorkers clamps a requested sharding width to the tenant cap; 0
// defers to the service default.
func (q Quotas) execWorkers(requested int) int {
	if requested == 0 {
		return 0
	}
	if requested < 0 || (q.MaxExecWorkers > 0 && requested > q.MaxExecWorkers) {
		return q.MaxExecWorkers
	}
	return requested
}
