// Package server is f90yd's hardened multi-tenant compile-and-run HTTP
// server over internal/driver: the "millions of users" network boundary
// the ROADMAP's first open item calls for. The robustness spine:
//
//   - Bounded admission: a fixed-depth queue in front of a fixed worker
//     pool. Overflow is rejected at the edge with 429 + Retry-After —
//     the pipeline never sees load it cannot carry.
//   - Per-tenant quotas (quota.go): in-flight job caps, source-size
//     caps, and cycle budgets enforced through the EXISTING watchdog
//     hook (cm2.Control.MaxCycles → rt.ErrBudget) rather than a second
//     enforcement path — one kill site, one error chain, deterministic.
//   - Per-request deadlines mapped onto the end-to-end context plumbing
//     that already reaches every pipeline phase and host-op boundary.
//   - A typed error taxonomy (errors.go): every expected failure mode
//     maps to a documented status + JSON code; 500 means a bug.
//   - LRU + byte bounds on the artifact cache (driver.MaxCacheEntries/
//     MaxCacheBytes), singleflight semantics preserved.
//   - Graceful drain on SIGTERM: stop admitting (readyz → 503), let
//     in-flight jobs finish inside a grace period, budget-kill the
//     stragglers via context cause ErrDraining, flush /statsz.
//   - A crash-safe durability plane (durable.go, journal.go) behind
//     Config.StateDir: admitted jobs are journaled, drain checkpoints
//     in-flight runs instead of killing them, and a restarted server
//     replays the journal — resuming checkpointed runs bit-identically,
//     re-running never-started jobs, and re-serving finished results.
//     Without a StateDir the server behaves exactly as before.
//
// Endpoints: POST /v1/compile, POST /v1/run, GET /v1/jobs/{id},
// GET /healthz, GET /readyz, GET /statsz. See handlers.go for the JSON
// shapes and errors.go for the status taxonomy.
package server

import (
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net"
	"net/http"
	"path/filepath"
	"runtime"
	"sync"
	"sync/atomic"
	"time"

	"f90y/internal/driver"
	"f90y/internal/faults"
)

// Config sizes the server. Zero values select the documented defaults.
type Config struct {
	// Addr is the listen address for ListenAndServe ("" = 127.0.0.1:8090).
	Addr string
	// Workers is the job execution pool size (<1 = GOMAXPROCS).
	Workers int
	// QueueDepth bounds jobs admitted but not yet running (<1 = 64).
	QueueDepth int
	// RequestTimeout is the per-job wall-clock deadline; a request may
	// ask for less via timeout_ms, never more (0 = 60s).
	RequestTimeout time.Duration
	// MaxCycles is the service-default watchdog budget for jobs with no
	// request or tenant budget (0 = 2e9 modeled cycles).
	MaxCycles float64
	// ExecWorkers is the service-default executor sharding (0 = serial).
	ExecWorkers int
	// ExecJIT selects the compiled closure executor for every job; a
	// runtime choice, so cached artifacts are shared with interpreter
	// instances and results stay bit-identical either way.
	ExecJIT bool
	// Quotas are the per-tenant bounds; the zero value applies the
	// defaults of DefaultQuotas.
	Quotas Quotas
	// RetainedJobs bounds the finished-job registry for /v1/jobs/{id}
	// (<1 = 256).
	RetainedJobs int
	// CacheEntries / CacheBytes bound the driver's artifact cache
	// (0 = 512 entries, 256 MiB).
	CacheEntries int
	CacheBytes   int64
	// StateDir enables the durability plane: the job journal, drain
	// spill files, and the persistent artifact cache live under it, and
	// New replays any prior epoch's journal found there. Empty (the
	// default) disables all of it.
	StateDir string
	// CheckpointEvery is the spill cadence for run jobs under StateDir:
	// a snapshot every N top-level host boundaries (0 = 8). Ignored
	// without a StateDir.
	CheckpointEvery int
	// DiskCacheBytes bounds the persistent artifact cache under
	// StateDir; oldest entries are pruned at startup (0 = 1 GiB).
	DiskCacheBytes int64
	// IOFaults, when non-nil, mangles durable writes (journal appends,
	// spills, cache entries) for crash testing; see faults.ParseIOSpec.
	IOFaults *faults.IOInjector
	// Log receives one line per lifecycle event (nil = discard).
	Log io.Writer
}

// DefaultQuotas are the per-tenant bounds applied when Config.Quotas is
// the zero value: enough in-flight work to saturate a small pool,
// sources bounded at 1 MiB, budgets at the service default.
var DefaultQuotas = Quotas{
	MaxInFlight:    8,
	MaxSourceBytes: 1 << 20,
	MaxExecWorkers: 8,
}

// withDefaults resolves the documented zero-value defaults.
func (c Config) withDefaults() Config {
	if c.Addr == "" {
		c.Addr = "127.0.0.1:8090"
	}
	if c.Workers < 1 {
		c.Workers = runtime.GOMAXPROCS(0)
	}
	if c.QueueDepth < 1 {
		c.QueueDepth = 64
	}
	if c.RequestTimeout <= 0 {
		c.RequestTimeout = 60 * time.Second
	}
	if c.MaxCycles == 0 {
		c.MaxCycles = 2e9
	}
	if c.Quotas == (Quotas{}) {
		c.Quotas = DefaultQuotas
	}
	if c.RetainedJobs < 1 {
		c.RetainedJobs = 256
	}
	if c.CacheEntries == 0 {
		c.CacheEntries = 512
	}
	if c.CacheBytes == 0 {
		c.CacheBytes = 256 << 20
	}
	if c.CheckpointEvery < 1 {
		c.CheckpointEvery = 8
	}
	if c.DiskCacheBytes == 0 {
		c.DiskCacheBytes = 1 << 30
	}
	if c.Log == nil {
		c.Log = io.Discard
	}
	return c
}

// Server is one f90yd instance. Construct with New; Close or Drain it
// when done (New starts the worker pool immediately).
type Server struct {
	cfg     Config
	svc     *driver.Service
	mux     *http.ServeMux
	queue   chan *jobState
	jobs    *jobTable
	tenants *tenants

	baseCtx    context.Context
	baseCancel context.CancelCauseFunc

	admitMu  sync.Mutex // guards draining + jobWG.Add vs Drain
	draining bool

	// The durability plane (nil without Config.StateDir).
	dur *durable
	// suspend asks in-flight runs to stop at their next checkpoint
	// boundary (set by Drain before admission closes).
	suspend atomic.Bool
	// notReady flips readyz to 503 as the very first drain step, before
	// admission closes, so load balancers route away while in-flight
	// work is still checkpointing.
	notReady atomic.Bool

	jobWG       sync.WaitGroup // admitted jobs not yet finished
	workerWG    sync.WaitGroup
	stopWorkers chan struct{}
	stopOnce    sync.Once

	hsMu sync.Mutex
	hs   *http.Server
	ln   net.Listener

	stats serverStats
	start time.Time
}

// serverStats counts outcomes under one lock; every request increments
// exactly one status and (for errors) one code.
type serverStats struct {
	mu        sync.Mutex
	admitted  int64
	completed int64
	byStatus  map[int]int64
	byCode    map[Code]int64
	// ewmaRunNS is an exponentially-weighted run duration used for the
	// Retry-After estimate; 0 until the first completion.
	ewmaRunNS float64
}

func (st *serverStats) note(status int, code Code) {
	st.mu.Lock()
	st.byStatus[status]++
	if code != "" {
		st.byCode[code]++
	}
	st.mu.Unlock()
}

func (st *serverStats) noteRun(d time.Duration) {
	st.mu.Lock()
	st.completed++
	ns := float64(d.Nanoseconds())
	if st.ewmaRunNS == 0 {
		st.ewmaRunNS = ns
	} else {
		st.ewmaRunNS = 0.8*st.ewmaRunNS + 0.2*ns
	}
	st.mu.Unlock()
}

// New builds the server and starts its worker pool. The HTTP side is
// inert until the handler is served (Handler / ListenAndServe). With
// Config.StateDir set, New first recovers the prior epoch: the journal
// is replayed, finished results reload into the retention table, and
// unfinished jobs re-enter the queue (resuming from their drain spills
// when present) once the workers are up. Recovery errors — an unusable
// state directory or a journal in a foreign schema — fail construction
// rather than silently starting an amnesiac server.
func New(cfg Config) (*Server, error) {
	cfg = cfg.withDefaults()
	svc := driver.New(cfg.Workers)
	svc.MaxCycles = cfg.MaxCycles
	svc.ExecWorkers = cfg.ExecWorkers
	svc.ExecJIT = cfg.ExecJIT
	svc.MaxCacheEntries = cfg.CacheEntries
	svc.MaxCacheBytes = cfg.CacheBytes

	s := &Server{
		cfg:         cfg,
		svc:         svc,
		queue:       make(chan *jobState, cfg.QueueDepth),
		jobs:        newJobTable(cfg.RetainedJobs),
		tenants:     newTenants(cfg.Quotas),
		stopWorkers: make(chan struct{}),
		start:       time.Now(),
	}
	s.baseCtx, s.baseCancel = context.WithCancelCause(context.Background())
	s.stats.byStatus = map[int]int64{}
	s.stats.byCode = map[Code]int64{}
	s.mux = s.routes()

	var resume []*jobState
	if cfg.StateDir != "" {
		dur, recs, err := openDurable(cfg.StateDir, cfg.IOFaults, func(format string, args ...any) {
			fmt.Fprintf(cfg.Log, format, args...)
		})
		if err != nil {
			return nil, err
		}
		s.dur = dur
		svc.CacheDir = filepath.Join(cfg.StateDir, "cache")
		svc.IOFaults = cfg.IOFaults
		if n := svc.PruneDiskCache(cfg.DiskCacheBytes); n > 0 {
			fmt.Fprintf(cfg.Log, "f90yd: pruned %d disk cache entries\n", n)
		}
		var carry []jrec
		carry, resume = s.replayJournal(recs)
		if err := dur.compactAndOpen(carry); err != nil {
			return nil, err
		}
	}

	for i := 0; i < cfg.Workers; i++ {
		s.workerWG.Add(1)
		go s.worker()
	}
	if len(resume) > 0 {
		go s.enqueueRecovered(resume)
	}
	return s, nil
}

// Service exposes the underlying driver (tests and stats).
func (s *Server) Service() *driver.Service { return s.svc }

// Handler is the server's HTTP handler (for tests and embedding).
func (s *Server) Handler() http.Handler { return s.mux }

// ListenAndServe binds cfg.Addr and serves until Drain/Close. The
// bound address (useful with ":0") is reported through addr, if
// non-nil, before serving starts.
func (s *Server) ListenAndServe(addr func(net.Addr)) error {
	ln, err := net.Listen("tcp", s.cfg.Addr)
	if err != nil {
		return err
	}
	s.hsMu.Lock()
	s.ln = ln
	s.hs = &http.Server{Handler: s.mux}
	hs := s.hs
	s.hsMu.Unlock()
	if addr != nil {
		addr(ln.Addr())
	}
	fmt.Fprintf(s.cfg.Log, "f90yd: listening on %s (workers=%d queue=%d)\n",
		ln.Addr(), s.cfg.Workers, s.cfg.QueueDepth)
	if err := hs.Serve(ln); err != nil && err != http.ErrServerClosed {
		return err
	}
	return nil
}

// worker executes admitted jobs until the pool is stopped. Workers are
// only stopped after the queue has fully drained (Drain waits jobWG
// first), so no admitted job is abandoned.
func (s *Server) worker() {
	defer s.workerWG.Done()
	for {
		select {
		case js := <-s.queue:
			s.runJob(js)
		case <-s.stopWorkers:
			return
		}
	}
}

// admit runs the admission pipeline for a registered job: drain gate,
// tenant quota, bounded queue. A nil error admits the job (the caller
// must not touch it again until done); otherwise the returned status/
// envelope reject it and the job is unregistered.
func (s *Server) admit(js *jobState) (int, apiError) {
	s.admitMu.Lock()
	if s.draining {
		s.admitMu.Unlock()
		s.jobs.drop(js)
		e := errorf(CodeDraining, "server is draining; not admitting new jobs")
		e.Error.RetryAfterMS = s.retryAfter().Milliseconds()
		return http.StatusServiceUnavailable, e
	}
	if !s.tenants.acquire(js.tenant) {
		s.admitMu.Unlock()
		s.jobs.drop(js)
		e := errorf(CodeTenantBusy, "tenant %q is at its in-flight quota (%d)", js.tenant, s.cfg.Quotas.MaxInFlight)
		e.Error.RetryAfterMS = s.retryAfter().Milliseconds()
		return http.StatusTooManyRequests, e
	}
	s.jobWG.Add(1)
	// Journal the admission before the queue send: a crash between the
	// two re-runs the job next epoch (at-least-once), whereas the other
	// order would lose it silently.
	if s.dur != nil {
		s.dur.append(jrec{T: "admitted", Job: js.id, Tenant: js.tenant, Kind: js.kind, Req: js.spec})
	}
	select {
	case s.queue <- js:
		s.admitMu.Unlock()
		s.stats.mu.Lock()
		s.stats.admitted++
		s.stats.mu.Unlock()
		return 0, apiError{}
	default:
		s.jobWG.Done()
		s.admitMu.Unlock()
		s.tenants.release(js.tenant)
		s.jobs.drop(js)
		e := errorf(CodeQueueFull, "admission queue is full (depth %d)", s.cfg.QueueDepth)
		e.Error.RetryAfterMS = s.retryAfter().Milliseconds()
		// Settle the journaled admission so recovery does not re-run a
		// job its caller saw rejected.
		if s.dur != nil {
			s.dur.append(jrec{T: "finished", Job: js.id, Tenant: js.tenant, Kind: js.kind,
				Status: http.StatusTooManyRequests, Code: CodeQueueFull, Error: e.Error.Message})
		}
		return http.StatusTooManyRequests, e
	}
}

// retryAfter estimates when a rejected caller should come back: the
// queue's expected service time on the current pool, floored at one
// second. It is a hint, not a promise.
func (s *Server) retryAfter() time.Duration {
	s.stats.mu.Lock()
	avg := time.Duration(s.stats.ewmaRunNS)
	s.stats.mu.Unlock()
	if avg <= 0 {
		avg = 250 * time.Millisecond
	}
	est := time.Duration(len(s.queue)+1) * avg / time.Duration(s.cfg.Workers)
	if est < time.Second {
		est = time.Second
	}
	if est > time.Minute {
		est = time.Minute
	}
	return est
}

// runJob executes one admitted job end to end: deadline, driver run,
// optional oracle verify, classification, accounting, retention.
func (s *Server) runJob(js *jobState) {
	js.mu.Lock()
	js.status = JobRunning
	js.started = time.Now()
	js.mu.Unlock()
	if s.dur != nil {
		s.dur.append(jrec{T: "started", Job: js.id})
	}
	s.prepareDurable(js)

	timeout := s.cfg.RequestTimeout
	if js.timeout > 0 && js.timeout < timeout {
		timeout = js.timeout
	}
	ctx, cancel := context.WithTimeout(js.ctx, timeout)

	status, code, errMsg, result, cached := s.execute(ctx, js)
	cancel()
	js.cancel(nil) // release the job's cause context

	js.mu.Lock()
	js.cached = cached
	started := js.started
	js.mu.Unlock()
	if code == CodeSuspended {
		// Drain parked this run at a checkpoint boundary: waiters get 503
		// suspended now, and — critically — no finished record is
		// journaled, so recovery resumes the job from its spill.
		js.finishAs(JobSuspended, status, code, errMsg, nil)
		s.dur.count(func(st *DurabilityStats) { st.Suspended++ })
		fmt.Fprintf(s.cfg.Log, "f90yd: job %s suspended at a checkpoint boundary\n", js.id)
	} else {
		js.finish(status, code, errMsg, result)
		if s.dur != nil {
			s.dur.append(jrec{T: "finished", Job: js.id, Tenant: js.tenant, Kind: js.kind,
				Status: status, Code: code, Error: errMsg, Cached: cached, Result: result})
			s.dur.removeSpill(js.id)
		}
	}

	s.stats.noteRun(time.Since(started))
	s.stats.note(status, code)
	s.tenants.release(js.tenant)
	s.jobs.retire(js)
	s.jobWG.Done()
}

// Drain gracefully shuts the server down. The ordering is the
// durability contract: readyz flips to 503 first (load balancers stop
// routing while work is still live), then the suspend flag goes up so
// in-flight runs checkpoint and park at their next boundary, then
// admission closes. In-flight jobs that do not finish or suspend inside
// ctx's grace are killed through the context plumbing with cause
// ErrDraining — the checkpoint path is the graceful exit, the budget
// kill the backstop. Returns the final stats snapshot; safe to call
// once.
func (s *Server) Drain(ctx context.Context) Stats {
	s.notReady.Store(true)
	if s.dur != nil {
		s.suspend.Store(true)
	}
	s.admitMu.Lock()
	s.draining = true
	s.admitMu.Unlock()
	fmt.Fprintf(s.cfg.Log, "f90yd: draining (in-flight jobs finishing)\n")

	done := make(chan struct{})
	go func() { s.jobWG.Wait(); close(done) }()
	select {
	case <-done:
	case <-ctx.Done():
		fmt.Fprintf(s.cfg.Log, "f90yd: drain grace expired; killing in-flight jobs\n")
		s.baseCancel(ErrDraining)
		<-done
	}

	s.stopOnce.Do(func() { close(s.stopWorkers) })
	s.workerWG.Wait()
	s.dur.close() // nothing appends after the workers stop

	s.hsMu.Lock()
	hs := s.hs
	s.hsMu.Unlock()
	if hs != nil {
		sctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
		hs.Shutdown(sctx)
		cancel()
	}
	st := s.Stats()
	fmt.Fprintf(s.cfg.Log, "f90yd: drained (admitted=%d completed=%d)\n", st.Jobs.Admitted, st.Jobs.Completed)
	return st
}

// Close is Drain with no grace period: in-flight jobs are killed
// immediately.
func (s *Server) Close() Stats {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	return s.Drain(ctx)
}

// Stats is the /statsz snapshot (schema f90y-statsz/v1).
type Stats struct {
	Schema   string `json:"schema"`
	UptimeMS int64  `json:"uptime_ms"`
	Draining bool   `json:"draining"`
	Workers  int    `json:"workers"`
	Queue    struct {
		Len int `json:"len"`
		Cap int `json:"cap"`
	} `json:"queue"`
	InFlight struct {
		Queued  int `json:"queued"`
		Running int `json:"running"`
	} `json:"in_flight"`
	Jobs struct {
		Admitted  int64            `json:"admitted"`
		Completed int64            `json:"completed"`
		ByStatus  map[string]int64 `json:"by_status"`
		ByCode    map[string]int64 `json:"by_code"`
	} `json:"jobs"`
	Cache struct {
		Hits      int64 `json:"hits"`
		Misses    int64 `json:"misses"`
		Entries   int   `json:"entries"`
		Bytes     int64 `json:"bytes"`
		Evictions int64 `json:"evictions"`
	} `json:"cache"`
	Tenants map[string]TenantStats `json:"tenants"`
	// Durability is present only when the plane is enabled (-state-dir).
	Durability *DurabilityStats `json:"durability,omitempty"`
}

// Stats assembles the snapshot.
func (s *Server) Stats() Stats {
	var st Stats
	st.Schema = "f90y-statsz/v1"
	st.UptimeMS = time.Since(s.start).Milliseconds()
	s.admitMu.Lock()
	st.Draining = s.draining
	s.admitMu.Unlock()
	st.Workers = s.cfg.Workers
	st.Queue.Len = len(s.queue)
	st.Queue.Cap = s.cfg.QueueDepth
	st.InFlight.Queued, st.InFlight.Running = s.jobs.counts()

	s.stats.mu.Lock()
	st.Jobs.Admitted = s.stats.admitted
	st.Jobs.Completed = s.stats.completed
	st.Jobs.ByStatus = map[string]int64{}
	for code, n := range s.stats.byStatus {
		st.Jobs.ByStatus[fmt.Sprintf("%d", code)] = n
	}
	st.Jobs.ByCode = map[string]int64{}
	for c, n := range s.stats.byCode {
		st.Jobs.ByCode[string(c)] = n
	}
	s.stats.mu.Unlock()

	st.Cache.Hits, st.Cache.Misses = s.svc.CacheStats()
	st.Cache.Entries, st.Cache.Bytes, st.Cache.Evictions = s.svc.CacheUsage()
	st.Tenants = s.tenants.snapshot()
	st.Durability = s.dur.snapshot(s.svc.DiskStats())
	return st
}

// writeJSON writes v with status, counting it in stats when counted.
func (s *Server) writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	enc.Encode(v)
}
