package server

// The admission queue and job registry. Admission is a non-blocking
// send into a bounded channel: a full queue rejects with 429 +
// Retry-After instead of queueing unboundedly (load sheds at the edge,
// the paper-pipeline workers never see the overload). Every admitted
// job is tracked in a bounded registry so GET /v1/jobs/{id} can serve
// async results; finished jobs are retained FIFO up to a cap.

import (
	"context"
	"fmt"
	"sync"
	"time"

	"f90y/internal/driver"
)

// JobStatus is a job's lifecycle phase as reported by /v1/jobs/{id}.
type JobStatus string

const (
	JobQueued  JobStatus = "queued"
	JobRunning JobStatus = "running"
	JobDone    JobStatus = "done"
	// JobSuspended: drain checkpointed the run mid-flight; the id stays
	// valid and the job resumes from its spill after the server restarts.
	JobSuspended JobStatus = "suspended"
)

// jobState is one admitted job, from admission to retention. Mutable
// fields are guarded by mu; done closes when the terminal fields
// (httpStatus, code, result, errMsg, finished) are settled.
type jobState struct {
	id      string
	tenant  string
	kind    string // "compile" or "run"
	job     driver.Job
	verify  bool          // run the differential oracle after a successful run
	budget  float64       // effective MaxCycles for the verify pass
	timeout time.Duration // per-job deadline applied by the worker
	// spec is the validated request the job was built from; journaled on
	// admission so recovery can rebuild the job after a crash.
	spec *runRequest

	ctx    context.Context
	cancel context.CancelCauseFunc
	done   chan struct{}

	mu         sync.Mutex
	status     JobStatus
	created    time.Time
	started    time.Time
	finished   time.Time
	cached     bool
	httpStatus int
	code       Code
	errMsg     string
	result     *runResult
}

// finish settles the terminal fields and closes done.
func (js *jobState) finish(status int, code Code, errMsg string, result *runResult) {
	js.finishAs(JobDone, status, code, errMsg, result)
}

// finishAs is finish with an explicit terminal state: JobDone for a
// settled outcome, JobSuspended for a run parked by drain (its waiters
// are released with 503 suspended; the job itself continues next epoch).
func (js *jobState) finishAs(st JobStatus, status int, code Code, errMsg string, result *runResult) {
	js.mu.Lock()
	js.status = st
	js.finished = time.Now()
	js.httpStatus = status
	js.code = code
	js.errMsg = errMsg
	js.result = result
	js.mu.Unlock()
	close(js.done)
}

// view renders the job for /v1/jobs/{id} and the sync response path.
func (js *jobState) view() jobView {
	js.mu.Lock()
	defer js.mu.Unlock()
	v := jobView{
		JobID:  js.id,
		Tenant: js.tenant,
		Kind:   js.kind,
		Status: js.status,
		Cached: js.cached,
	}
	if !js.started.IsZero() {
		v.QueueMS = durMS(js.started.Sub(js.created))
	}
	if js.status == JobDone || js.status == JobSuspended {
		v.HTTPStatus = js.httpStatus
		v.Code = js.code
		v.Error = js.errMsg
		v.RunMS = durMS(js.finished.Sub(js.started))
		v.Result = js.result
	}
	return v
}

func durMS(d time.Duration) float64 { return float64(d.Nanoseconds()) / 1e6 }

// jobView is the JSON shape of one job, shared by the sync run
// response and the async job fetch.
type jobView struct {
	JobID      string     `json:"job_id"`
	Tenant     string     `json:"tenant,omitempty"`
	Kind       string     `json:"kind,omitempty"`
	Status     JobStatus  `json:"status"`
	HTTPStatus int        `json:"http_status,omitempty"`
	Code       Code       `json:"code,omitempty"`
	Error      string     `json:"error,omitempty"`
	Cached     bool       `json:"cached,omitempty"`
	QueueMS    float64    `json:"queue_ms,omitempty"`
	RunMS      float64    `json:"run_ms,omitempty"`
	Result     *runResult `json:"result,omitempty"`
}

// jobTable is the bounded job registry: all live (queued/running) jobs
// plus the most recent max finished ones.
type jobTable struct {
	mu       sync.Mutex
	max      int
	seq      int64
	m        map[string]*jobState
	finished []string // finish order; evicted from the front past max
}

func newJobTable(max int) *jobTable {
	if max < 1 {
		max = 256
	}
	return &jobTable{max: max, m: map[string]*jobState{}}
}

// newJob mints an id and registers a queued job.
func (t *jobTable) newJob(tenant, kind string) *jobState {
	t.mu.Lock()
	t.seq++
	js := &jobState{
		id:      fmt.Sprintf("j%06d", t.seq),
		tenant:  tenant,
		kind:    kind,
		status:  JobQueued,
		created: time.Now(),
		done:    make(chan struct{}),
	}
	t.m[js.id] = js
	t.mu.Unlock()
	return js
}

// setSeq raises the id counter to at least n, so ids minted this epoch
// never collide with ids recovered from the journal.
func (t *jobTable) setSeq(n int64) {
	t.mu.Lock()
	if n > t.seq {
		t.seq = n
	}
	t.mu.Unlock()
}

// restoreFinished re-registers a finished job from its journal record
// so GET /v1/jobs/{id} keeps serving the same outcome across a restart.
// The done channel is born closed — the outcome is already settled.
func (t *jobTable) restoreFinished(id string, rec *jrec) *jobState {
	now := time.Now()
	js := &jobState{
		id:       id,
		tenant:   rec.Tenant,
		kind:     rec.Kind,
		status:   JobDone,
		created:  now,
		done:     make(chan struct{}),
		cached:   rec.Cached,
		finished: now,
	}
	js.httpStatus = rec.Status
	js.code = rec.Code
	js.errMsg = rec.Error
	js.result = rec.Result
	close(js.done)
	t.mu.Lock()
	t.m[id] = js
	t.finished = append(t.finished, id)
	for len(t.finished) > t.max {
		delete(t.m, t.finished[0])
		t.finished = t.finished[1:]
	}
	t.mu.Unlock()
	return js
}

// restoreQueued re-registers an admitted-but-unfinished job from its
// journal record, back in the queued state for re-admission.
func (t *jobTable) restoreQueued(id string, rec *jrec) *jobState {
	js := &jobState{
		id:      id,
		tenant:  rec.Tenant,
		kind:    rec.Kind,
		status:  JobQueued,
		created: time.Now(),
		done:    make(chan struct{}),
	}
	t.mu.Lock()
	t.m[id] = js
	t.mu.Unlock()
	return js
}

// get looks a job up by id.
func (t *jobTable) get(id string) *jobState {
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.m[id]
}

// retire moves a finished job into the bounded retention window,
// evicting the oldest finished job past the cap. Live jobs are never
// evicted — there are at most queue-depth + workers of them.
func (t *jobTable) retire(js *jobState) {
	t.mu.Lock()
	defer t.mu.Unlock()
	t.finished = append(t.finished, js.id)
	for len(t.finished) > t.max {
		delete(t.m, t.finished[0])
		t.finished = t.finished[1:]
	}
}

// drop unregisters a job that was never admitted (queue/quota
// rejection happens after the id is minted).
func (t *jobTable) drop(js *jobState) {
	t.mu.Lock()
	delete(t.m, js.id)
	t.mu.Unlock()
}

// counts reports live jobs for /statsz.
func (t *jobTable) counts() (queued, running int) {
	t.mu.Lock()
	defer t.mu.Unlock()
	for _, js := range t.m {
		js.mu.Lock()
		switch js.status {
		case JobQueued:
			queued++
		case JobRunning:
			running++
		}
		js.mu.Unlock()
	}
	return queued, running
}
