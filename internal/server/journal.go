package server

// The job journal: an append-only WAL under -state-dir recording every
// job's lifecycle so a restarted server can reconstruct its obligations
// exactly. Format f90y-journal/v1:
//
//	<crc32 hex8> <json record>\n
//
// one record per line, the CRC taken over the JSON bytes. The first
// record is a header naming the schema. A line that fails its CRC (or
// does not parse) is a torn-write casualty: expected at the tail after
// a crash, counted and skipped anywhere. Recovery (durable.go) replays
// the surviving records:
//
//	admitted  job accepted; carries the full request so it can be rebuilt
//	started   a worker picked the job up (diagnostic; replay treats
//	          admitted-but-unfinished jobs identically either way)
//	ckpt      the job has a spill file; resume from it on restart
//	finished  terminal outcome with the full result payload, so async
//	          pollers get identical bytes across a restart
//
// On startup the journal is compacted: finished records inside the
// retention window and admitted(+ckpt) records for jobs being recovered
// are rewritten atomically; everything else has no live obligation.

import (
	"bufio"
	"bytes"
	"encoding/json"
	"fmt"
	"hash/crc32"
	"os"
	"strconv"
	"strings"
	"sync"

	"f90y/internal/faults"
	"f90y/internal/rt"
)

// JournalSchema identifies the WAL format.
const JournalSchema = "f90y-journal/v1"

// jrec is one journal record. T selects which fields are meaningful.
type jrec struct {
	T      string `json:"t"`                // journal | admitted | started | ckpt | finished
	Schema string `json:"schema,omitempty"` // journal header
	Job    string `json:"job,omitempty"`

	// admitted
	Tenant string      `json:"tenant,omitempty"`
	Kind   string      `json:"kind,omitempty"`
	Req    *runRequest `json:"req,omitempty"`

	// finished
	Status int        `json:"status,omitempty"`
	Code   Code       `json:"code,omitempty"`
	Error  string     `json:"error,omitempty"`
	Cached bool       `json:"cached,omitempty"`
	Result *runResult `json:"result,omitempty"`
}

// encodeRec renders one WAL line.
func encodeRec(rec jrec) ([]byte, error) {
	body, err := json.Marshal(rec)
	if err != nil {
		return nil, fmt.Errorf("server: encode journal record: %w", err)
	}
	return []byte(fmt.Sprintf("%08x %s\n", crc32.ChecksumIEEE(body), body)), nil
}

// decodeLine parses one WAL line, verifying its CRC.
func decodeLine(line []byte) (jrec, error) {
	var rec jrec
	sp := bytes.IndexByte(line, ' ')
	if sp != 8 {
		return rec, fmt.Errorf("no crc prefix")
	}
	want, err := strconv.ParseUint(string(line[:sp]), 16, 32)
	if err != nil {
		return rec, fmt.Errorf("bad crc prefix %q", line[:sp])
	}
	body := line[sp+1:]
	if got := crc32.ChecksumIEEE(body); got != uint32(want) {
		return rec, fmt.Errorf("crc %08x, line says %08x", got, want)
	}
	if err := json.Unmarshal(body, &rec); err != nil {
		return rec, fmt.Errorf("undecodable record: %v", err)
	}
	return rec, nil
}

// journal is the WAL appender: one fd, one lock, fsync per record.
// Writes pass through the IO fault injector (when armed) so crash tests
// can manufacture torn records.
type journal struct {
	mu      sync.Mutex
	f       *os.File
	io      *faults.IOInjector
	records int64
	bytes   int64
}

// openJournal opens (or creates) the WAL for appending.
func openJournal(path string, inj *faults.IOInjector) (*journal, error) {
	f, err := os.OpenFile(path, os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		return nil, fmt.Errorf("server: open journal: %w", err)
	}
	return &journal{f: f, io: inj}, nil
}

// append durably adds one record. Errors are returned for accounting
// but the server treats journal append failure as a degraded mode, not
// a request failure — the job still runs; only its durability is lost.
func (j *journal) append(rec jrec) error {
	line, err := encodeRec(rec)
	if err != nil {
		return err
	}
	mangled, _ := j.io.Mangle(line)
	j.mu.Lock()
	defer j.mu.Unlock()
	if _, err := j.f.Write(mangled); err != nil {
		return fmt.Errorf("server: journal append: %w", err)
	}
	if err := j.f.Sync(); err != nil {
		return fmt.Errorf("server: journal sync: %w", err)
	}
	j.records++
	j.bytes += int64(len(mangled))
	return nil
}

// usage reports records and bytes appended this epoch.
func (j *journal) usage() (records, bytes int64) {
	j.mu.Lock()
	defer j.mu.Unlock()
	return j.records, j.bytes
}

// close releases the appender fd.
func (j *journal) close() {
	j.mu.Lock()
	defer j.mu.Unlock()
	j.f.Close()
}

// readJournal loads a WAL tolerantly: surviving records in order, plus
// the count of damaged (torn/corrupt) lines. A missing file is an empty
// journal. A journal whose header names an unknown schema is refused —
// silently reinterpreting someone else's format would be data loss.
func readJournal(path string) (recs []jrec, torn int64, err error) {
	f, err := os.Open(path)
	if os.IsNotExist(err) {
		return nil, 0, nil
	}
	if err != nil {
		return nil, 0, fmt.Errorf("server: read journal: %w", err)
	}
	defer f.Close()
	sc := bufio.NewScanner(f)
	sc.Buffer(make([]byte, 0, 64<<10), 16<<20) // sources up to the quota fit in one record
	sawHeader := false
	for sc.Scan() {
		line := sc.Bytes()
		if len(bytes.TrimSpace(line)) == 0 {
			continue
		}
		rec, derr := decodeLine(line)
		if derr != nil {
			torn++
			continue
		}
		if rec.T == "journal" {
			if rec.Schema != JournalSchema {
				return nil, torn, fmt.Errorf("server: journal %s has schema %q, want %q", path, rec.Schema, JournalSchema)
			}
			sawHeader = true
			continue
		}
		recs = append(recs, rec)
	}
	if err := sc.Err(); err != nil {
		return nil, torn, fmt.Errorf("server: read journal: %w", err)
	}
	if !sawHeader && (len(recs) > 0 || torn > 0) {
		// Records but no header: the header line itself was torn. The
		// records still carry their own CRCs, so use them — but count the
		// casualty.
		torn++
	}
	return recs, torn, nil
}

// writeCompact atomically replaces the WAL with a header plus recs.
func writeCompact(path string, recs []jrec) error {
	var buf bytes.Buffer
	head, err := encodeRec(jrec{T: "journal", Schema: JournalSchema})
	if err != nil {
		return err
	}
	buf.Write(head)
	for _, rec := range recs {
		line, err := encodeRec(rec)
		if err != nil {
			return err
		}
		buf.Write(line)
	}
	return rt.WriteFileAtomic(path, buf.Bytes())
}

// jobSeq extracts the numeric suffix of a j%06d job id; -1 when the id
// is not in that form (foreign journals are tolerated, not resumed).
func jobSeq(id string) int64 {
	if !strings.HasPrefix(id, "j") {
		return -1
	}
	n, err := strconv.ParseInt(id[1:], 10, 64)
	if err != nil || n < 0 {
		return -1
	}
	return n
}
