package server

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"runtime"
	"strings"
	"sync"
	"testing"
	"time"

	"f90y/internal/workload"
)

// runawaySrc never terminates on its own: only a cycle budget or a
// context cancellation stops it. The deterministic budget-killer used
// throughout these tests.
const runawaySrc = "program loop\ninteger :: i\ni = 0\ndo while (i < 1)\n  i = i * 1\nend do\nend program loop\n"

// testServer builds a server + httptest front end and registers cleanup
// that drains it and checks for leaked goroutines.
func testServer(t *testing.T, cfg Config) (*Server, *httptest.Server) {
	t.Helper()
	base := runtime.NumGoroutine()
	s, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	hs := httptest.NewServer(s.Handler())
	t.Cleanup(func() {
		hs.Close()
		ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
		s.Drain(ctx)
		cancel()
		waitGoroutines(t, base)
	})
	return s, hs
}

// waitGoroutines asserts the goroutine count returns to (near) base:
// the queue workers, job contexts, and handler waiters must all be
// gone. The slack absorbs runtime/httptest background goroutines.
func waitGoroutines(t *testing.T, base int) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for {
		runtime.GC()
		n := runtime.NumGoroutine()
		if n <= base+3 {
			return
		}
		if time.Now().After(deadline) {
			buf := make([]byte, 1<<16)
			t.Fatalf("goroutine leak: %d now vs %d at start\n%s", n, base, buf[:runtime.Stack(buf, true)])
		}
		time.Sleep(20 * time.Millisecond)
	}
}

// post sends a JSON body and decodes the JSON response.
func post(t *testing.T, client *http.Client, url, tenant string, body any) (int, map[string]any, http.Header) {
	t.Helper()
	b, err := json.Marshal(body)
	if err != nil {
		t.Fatal(err)
	}
	req, err := http.NewRequest("POST", url, bytes.NewReader(b))
	if err != nil {
		t.Fatal(err)
	}
	req.Header.Set("Content-Type", "application/json")
	if tenant != "" {
		req.Header.Set("X-Tenant", tenant)
	}
	resp, err := client.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var v map[string]any
	if err := json.NewDecoder(resp.Body).Decode(&v); err != nil {
		t.Fatalf("decoding %s response: %v", url, err)
	}
	return resp.StatusCode, v, resp.Header
}

func get(t *testing.T, client *http.Client, url string) (int, map[string]any) {
	t.Helper()
	resp, err := client.Get(url)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var v map[string]any
	if err := json.NewDecoder(resp.Body).Decode(&v); err != nil {
		t.Fatalf("decoding %s response: %v", url, err)
	}
	return resp.StatusCode, v
}

func errCode(v map[string]any) string {
	e, _ := v["error"].(map[string]any)
	c, _ := e["code"].(string)
	return c
}

// TestServerRoundTrip drives the whole API surface once: compile, a
// cached sync run on both targets, an async run with polling, probes,
// and statsz accounting.
func TestServerRoundTrip(t *testing.T) {
	_, hs := testServer(t, Config{Workers: 2, QueueDepth: 8})
	c := hs.Client()
	src := workload.SWE(16, 1)

	status, v, _ := post(t, c, hs.URL+"/v1/compile", "", map[string]any{"file": "swe.f90", "source": src})
	if status != 200 {
		t.Fatalf("compile: status %d, body %v", status, v)
	}
	res := v["result"].(map[string]any)
	if res["routines"].(float64) < 1 {
		t.Errorf("compile reported no routines: %v", res)
	}
	if !strings.HasPrefix(res["fingerprint"].(string), "fp1|") {
		t.Errorf("fingerprint %q lacks the fp1 version prefix", res["fingerprint"])
	}

	for _, target := range []string{"cm2", "cm5"} {
		status, v, _ = post(t, c, hs.URL+"/v1/run", "", map[string]any{"file": "swe.f90", "source": src, "target": target})
		if status != 200 {
			t.Fatalf("run %s: status %d, body %v", target, status, v)
		}
		if v["cached"] != true {
			t.Errorf("run %s after compile not served from cache", target)
		}
		r := v["result"].(map[string]any)
		if r["gflops"].(float64) <= 0 {
			t.Errorf("run %s: gflops %v", target, r["gflops"])
		}
	}

	// Async: admit, then poll to completion.
	status, v, _ = post(t, c, hs.URL+"/v1/run", "", map[string]any{"file": "swe.f90", "source": src, "async": true})
	if status != 202 {
		t.Fatalf("async run: status %d, body %v", status, v)
	}
	id := v["job_id"].(string)
	deadline := time.Now().Add(10 * time.Second)
	for {
		status, v = get(t, c, hs.URL+"/v1/jobs/"+id)
		if status != 200 {
			t.Fatalf("job fetch: status %d, body %v", status, v)
		}
		if v["status"] == "done" {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("async job %s did not finish: %v", id, v)
		}
		time.Sleep(10 * time.Millisecond)
	}
	if v["http_status"].(float64) != 200 {
		t.Errorf("async job outcome: %v", v)
	}

	if status, _ = get(t, c, hs.URL+"/healthz"); status != 200 {
		t.Errorf("healthz: %d", status)
	}
	if status, _ = get(t, c, hs.URL+"/readyz"); status != 200 {
		t.Errorf("readyz: %d", status)
	}
	status, v = get(t, c, hs.URL+"/statsz")
	if status != 200 || v["schema"] != "f90y-statsz/v1" {
		t.Errorf("statsz: %d %v", status, v)
	}
	if status, v = get(t, c, hs.URL+"/v1/jobs/nope"); status != 404 || errCode(v) != "not_found" {
		t.Errorf("unknown job: %d %s", status, errCode(v))
	}
}

// TestErrorTaxonomy drives each documented failure mode and asserts
// the exact (status, code) pair — and that none of them is a 500.
func TestErrorTaxonomy(t *testing.T) {
	_, hs := testServer(t, Config{
		Workers:    2,
		QueueDepth: 8,
		Quotas:     Quotas{MaxInFlight: 8, MaxSourceBytes: 4096, MaxExecWorkers: 4},
	})
	c := hs.Client()

	cases := []struct {
		name   string
		body   any
		status int
		code   string
	}{
		{"compile error", map[string]any{"source": "program p\nthis is not fortran\nend\n"}, 422, "compile_error"},
		{"budget kill", map[string]any{"source": runawaySrc, "max_cycles": 1e6}, 422, "budget_exhausted"},
		{"deadline", map[string]any{"source": runawaySrc, "timeout_ms": 50}, 408, "deadline_exceeded"},
		{"unknown target", map[string]any{"source": "program p\nend\n", "target": "cm9"}, 400, "bad_request"},
		{"bad numeric mode", map[string]any{"source": "program p\nend\n", "numeric": "explode"}, 400, "bad_request"},
		{"bad faults spec", map[string]any{"source": "program p\nend\n", "faults": "bogus=1"}, 400, "bad_request"},
		{"empty source", map[string]any{"source": ""}, 400, "bad_request"},
		{"oversize source", map[string]any{"source": strings.Repeat("! padding\n", 600)}, 413, "source_too_large"},
	}
	for _, tc := range cases {
		status, v, _ := post(t, c, hs.URL+"/v1/run", "", tc.body)
		if status != tc.status || errCode(v) != tc.code {
			t.Errorf("%s: got (%d, %s), want (%d, %s) — body %v", tc.name, status, errCode(v), tc.status, tc.code, v)
		}
		if status >= 500 {
			t.Errorf("%s: expected failure mode produced a server error (%d)", tc.name, status)
		}
	}

	// Malformed JSON.
	resp, err := hs.Client().Post(hs.URL+"/v1/run", "application/json", strings.NewReader("{nope"))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != 400 {
		t.Errorf("malformed JSON: status %d", resp.StatusCode)
	}

	// A request cannot raise its budget past the tenant cap.
	_, hs2 := testServer(t, Config{
		Workers: 1, QueueDepth: 4,
		Quotas: Quotas{MaxInFlight: 4, MaxCycles: 1e6, MaxSourceBytes: 1 << 20},
	})
	status, v, _ := post(t, hs2.Client(), hs2.URL+"/v1/run", "", map[string]any{"source": runawaySrc, "max_cycles": 1e12})
	if status != 422 || errCode(v) != "budget_exhausted" {
		t.Errorf("tenant budget cap not enforced: (%d, %s) %v", status, errCode(v), v)
	}
}

// TestAdmissionOverflow fills the queue past its depth and asserts
// overflow is shed with 429 + Retry-After while everything admitted
// completes — and that the flood leaks no goroutines (the testServer
// cleanup re-checks after drain).
func TestAdmissionOverflow(t *testing.T) {
	s, hs := testServer(t, Config{
		Workers:    1,
		QueueDepth: 2,
		MaxCycles:  5e6, // budget-kill each runaway quickly and deterministically
		Quotas:     Quotas{MaxInFlight: 64, MaxSourceBytes: 1 << 20},
	})
	c := hs.Client()

	const flood = 24
	statuses := make([]int, flood)
	headers := make([]http.Header, flood)
	var wg sync.WaitGroup
	for i := 0; i < flood; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			st, _, h := post(t, c, hs.URL+"/v1/run", "", map[string]any{"source": runawaySrc})
			statuses[i] = st
			headers[i] = h
		}(i)
	}
	wg.Wait()

	var completed, shed int
	for i, st := range statuses {
		switch st {
		case 422: // budget-killed after running: it was admitted
			completed++
		case 429:
			shed++
			if headers[i].Get("Retry-After") == "" {
				t.Errorf("429 response %d lacks Retry-After", i)
			}
		default:
			t.Errorf("request %d: unexpected status %d (want 422 or 429)", i, st)
		}
	}
	if shed == 0 {
		t.Error("flooding a depth-2 queue on 1 worker shed nothing")
	}
	if completed == 0 {
		t.Error("no request was admitted and completed")
	}
	st := s.Stats()
	if st.Jobs.ByCode["queue_full"] == 0 {
		t.Errorf("statsz recorded no queue_full rejections: %v", st.Jobs.ByCode)
	}
}

// TestTenantQuotaIsolation: tenant A floods the server with
// budget-killer jobs; tenant B's healthy requests keep completing.
// A's excess is shed by ITS in-flight quota (429 tenant_busy), so B
// never sees queue_full, never waits behind more than A's quota, and
// is never starved.
func TestTenantQuotaIsolation(t *testing.T) {
	_, hs := testServer(t, Config{
		Workers:    4,
		QueueDepth: 64,
		MaxCycles:  5e6,
		Quotas:     Quotas{MaxInFlight: 2, MaxSourceBytes: 1 << 20},
	})
	c := hs.Client()
	stop := make(chan struct{})
	var floodWG sync.WaitGroup
	var aBusy, aOther int64
	var aMu sync.Mutex
	for i := 0; i < 4; i++ {
		floodWG.Add(1)
		go func() {
			defer floodWG.Done()
			for {
				select {
				case <-stop:
					return
				default:
				}
				st, _, _ := post(t, c, hs.URL+"/v1/run", "tenant-a", map[string]any{"source": runawaySrc})
				aMu.Lock()
				if st == 429 {
					aBusy++
				} else if st != 422 {
					aOther++
				}
				aMu.Unlock()
			}
		}()
	}

	src := workload.SWE(16, 1)
	for i := 0; i < 6; i++ {
		st, v, _ := post(t, c, hs.URL+"/v1/run", "tenant-b", map[string]any{"file": "swe.f90", "source": src})
		if st != 200 {
			t.Errorf("tenant B request %d: status %d (%s) — starved by tenant A's budget-killers: %v", i, st, errCode(v), v)
		}
	}
	close(stop)
	floodWG.Wait()

	aMu.Lock()
	defer aMu.Unlock()
	if aBusy == 0 {
		t.Error("tenant A's flood was never shed by its in-flight quota (no 429 tenant_busy)")
	}
	if aOther != 0 {
		t.Errorf("tenant A saw %d statuses outside the documented 422/429 pair", aOther)
	}
}

// TestServerDrain: with jobs in flight, Drain must stop admissions
// (503 draining; readyz flips), let the in-flight jobs finish or
// budget-kill them, and leave zero leaked goroutines (cleanup checks).
func TestServerDrain(t *testing.T) {
	base := runtime.NumGoroutine()
	s, err := New(Config{
		Workers:    2,
		QueueDepth: 8,
		MaxCycles:  5e6, // in-flight runaways die by budget "or complete"
		Quotas:     Quotas{MaxInFlight: 16, MaxSourceBytes: 1 << 20},
	})
	if err != nil {
		t.Fatal(err)
	}
	hs := httptest.NewServer(s.Handler())
	defer hs.Close()
	c := hs.Client()

	// Two in-flight budget-killers occupy both workers; one healthy job
	// waits in the queue. All three must reach a terminal state.
	results := make(chan int, 3)
	for i := 0; i < 2; i++ {
		go func() {
			st, _, _ := post(t, c, hs.URL+"/v1/run", "", map[string]any{"source": runawaySrc})
			results <- st
		}()
	}
	go func() {
		st, _, _ := post(t, c, hs.URL+"/v1/run", "", map[string]any{"file": "swe.f90", "source": workload.SWE(16, 1)})
		results <- st
	}()
	// Wait until the workers have actually picked work up.
	deadline := time.Now().Add(5 * time.Second)
	for {
		st := s.Stats()
		if st.InFlight.Running >= 2 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("jobs never started: %+v", st.InFlight)
		}
		time.Sleep(5 * time.Millisecond)
	}

	drained := make(chan Stats, 1)
	go func() {
		ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
		defer cancel()
		drained <- s.Drain(ctx)
	}()

	// New admissions are refused while draining; readyz flips to 503.
	time.Sleep(20 * time.Millisecond)
	st, v, _ := post(t, c, hs.URL+"/v1/run", "", map[string]any{"source": workload.SWE(16, 1)})
	if st != 503 || errCode(v) != "draining" {
		t.Errorf("admission during drain: (%d, %s), want (503, draining)", st, errCode(v))
	}
	if st, _ := get(t, c, hs.URL+"/readyz"); st != 503 {
		t.Errorf("readyz during drain: %d, want 503", st)
	}

	var final Stats
	select {
	case final = <-drained:
	case <-time.After(30 * time.Second):
		t.Fatal("Drain did not return")
	}
	for i := 0; i < 3; i++ {
		select {
		case got := <-results:
			if got != 422 && got != 200 {
				t.Errorf("in-flight job %d ended %d; want 200 (completed) or 422 (budget-killed)", i, got)
			}
		case <-time.After(5 * time.Second):
			t.Fatal("an in-flight request never got a response after drain")
		}
	}
	if !final.Draining {
		t.Error("final stats do not show draining")
	}
	if final.InFlight.Queued != 0 || final.InFlight.Running != 0 {
		t.Errorf("jobs still live after drain: %+v", final.InFlight)
	}
	hs.Close()
	waitGoroutines(t, base)
}

// TestServerDrainForceKill: a drain whose grace expires kills the
// in-flight run through the context plumbing with the documented 503
// draining outcome — never a 500, never a hang.
func TestServerDrainForceKill(t *testing.T) {
	base := runtime.NumGoroutine()
	s, err := New(Config{
		Workers:    1,
		QueueDepth: 2,
		// No budget to save us: MaxCycles huge, so only the drain kill
		// can stop the runaway.
		MaxCycles: 1e15,
		Quotas:    Quotas{MaxInFlight: 4, MaxSourceBytes: 1 << 20},
	})
	if err != nil {
		t.Fatal(err)
	}
	hs := httptest.NewServer(s.Handler())
	defer hs.Close()

	result := make(chan int, 1)
	go func() {
		st, _, _ := post(t, hs.Client(), hs.URL+"/v1/run", "", map[string]any{"source": runawaySrc})
		result <- st
	}()
	deadline := time.Now().Add(5 * time.Second)
	for s.Stats().InFlight.Running == 0 {
		if time.Now().After(deadline) {
			t.Fatal("runaway never started")
		}
		time.Sleep(5 * time.Millisecond)
	}

	ctx, cancel := context.WithTimeout(context.Background(), 50*time.Millisecond)
	defer cancel()
	start := time.Now()
	s.Drain(ctx)
	if elapsed := time.Since(start); elapsed > 10*time.Second {
		t.Fatalf("force drain took %v", elapsed)
	}
	select {
	case st := <-result:
		if st != 503 {
			t.Errorf("force-killed run returned %d, want 503 draining", st)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("force-killed request never got a response")
	}
	hs.Close()
	waitGoroutines(t, base)
}

// TestServerClientDisconnect: a sync client that goes away mid-run
// frees its worker promptly (the run is canceled, recorded 499) rather
// than stranding it until the deadline.
func TestServerClientDisconnect(t *testing.T) {
	s, hs := testServer(t, Config{
		Workers:    1,
		QueueDepth: 2,
		MaxCycles:  1e15,
		Quotas:     Quotas{MaxInFlight: 4, MaxSourceBytes: 1 << 20},
	})
	c := hs.Client()

	body, _ := json.Marshal(map[string]any{"source": runawaySrc})
	ctx, cancel := context.WithCancel(context.Background())
	req, _ := http.NewRequestWithContext(ctx, "POST", hs.URL+"/v1/run", bytes.NewReader(body))
	errc := make(chan error, 1)
	go func() { _, err := c.Do(req); errc <- err }()
	deadline := time.Now().Add(5 * time.Second)
	for s.Stats().InFlight.Running == 0 {
		if time.Now().After(deadline) {
			t.Fatal("runaway never started")
		}
		time.Sleep(5 * time.Millisecond)
	}
	cancel()
	if err := <-errc; err == nil {
		t.Fatal("canceled request reported no error")
	}

	// The worker must come free: a healthy request completes.
	st, v, _ := post(t, c, hs.URL+"/v1/run", "", map[string]any{"file": "swe.f90", "source": workload.SWE(16, 1)})
	if st != 200 {
		t.Fatalf("healthy request after disconnect: %d %v", st, v)
	}
	stats := s.Stats()
	if stats.Jobs.ByCode["client_closed"] == 0 {
		t.Errorf("disconnect not recorded as client_closed: %v", stats.Jobs.ByCode)
	}
	if stats.Jobs.ByStatus["499"] == 0 {
		t.Errorf("disconnect not recorded as 499: %v", stats.Jobs.ByStatus)
	}
}

// TestServerVerifyJob: the oracle rides along on a run request.
func TestServerVerifyJob(t *testing.T) {
	_, hs := testServer(t, Config{Workers: 1, QueueDepth: 2})
	status, v, _ := post(t, hs.Client(), hs.URL+"/v1/run", "", map[string]any{
		"file": "swe.f90", "source": workload.SWE(16, 1), "verify": true,
	})
	if status != 200 {
		t.Fatalf("verified run: %d %v", status, v)
	}
	res := v["result"].(map[string]any)
	ver, _ := res["verified"].(map[string]any)
	if ver == nil || ver["elems"].(float64) <= 0 {
		t.Errorf("no verification report in result: %v", res)
	}
}

// TestServerFaultedRun: a recoverable fault plan (retried transfers)
// still completes 200 through the server.
func TestServerFaultedRun(t *testing.T) {
	_, hs := testServer(t, Config{Workers: 1, QueueDepth: 2})
	status, v, _ := post(t, hs.Client(), hs.URL+"/v1/run", "", map[string]any{
		"file": "swe.f90", "source": workload.SWE(16, 1), "faults": "seed=7,drop=0.01",
	})
	if status != 200 {
		t.Fatalf("faulted run: %d %v", status, v)
	}
}

// TestJobRetentionBounded: the finished-job registry evicts FIFO past
// its cap, and evicted ids 404 while recent ids survive.
func TestJobRetentionBounded(t *testing.T) {
	_, hs := testServer(t, Config{Workers: 1, QueueDepth: 4, RetainedJobs: 3})
	c := hs.Client()
	var ids []string
	for i := 0; i < 6; i++ {
		status, v, _ := post(t, c, hs.URL+"/v1/compile", "", map[string]any{
			"file": "p.f90", "source": fmt.Sprintf("program p\nprint *, %d\nend program p\n", i),
		})
		if status != 200 {
			t.Fatalf("compile %d: %d %v", i, status, v)
		}
		ids = append(ids, v["job_id"].(string))
	}
	if st, _ := get(t, c, hs.URL+"/v1/jobs/"+ids[0]); st != 404 {
		t.Errorf("oldest job still retained past the cap: %d", st)
	}
	if st, _ := get(t, c, hs.URL+"/v1/jobs/"+ids[5]); st != 200 {
		t.Errorf("newest job not retained: %d", st)
	}
}
