package server

// Error taxonomy: every failure mode the server can produce maps to
// exactly one HTTP status and one machine-readable JSON code, and the
// expected failure modes of a healthy-but-loaded server (budget kills,
// queue overflow, quota rejection, drain) are NEVER 500s. The same
// underlying sentinels drive the CLI exit statuses, so the two tables
// below are one taxonomy with two surfaces. README.md ("Status and
// exit codes") carries the same table; keep them in sync.
//
// CLI (f90yrun):
//
//	exit 0  success
//	exit 1  compile/runtime error, fault fatal, numeric trap, verify divergence
//	exit 2  usage (bad flags/spec)
//	exit 3  wall-clock deadline   (f90y.ErrCanceled via -timeout)
//	exit 4  cycle-budget kill     (rt.ErrBudget via -max-cycles)
//
// Server (f90yd), status → code:
//
//	200  —                 success (sync run / compile / job fetch)
//	202  —                 async job admitted
//	400  bad_request       malformed JSON, unknown target/field values
//	404  not_found         unknown job id or route
//	408  deadline_exceeded per-request deadline expired mid-run
//	413  source_too_large  source exceeds the per-tenant byte bound
//	422  compile_error     the program does not compile (deterministic; cached)
//	422  run_error         the program compiled but faulted at runtime
//	422  budget_exhausted  the cycle watchdog killed the run (rt.ErrBudget)
//	422  numeric_trap      the numeric plane trapped a NaN/Inf (rt.ErrNumeric)
//	422  fault_fatal       an injected fatal fault killed the run (faults.ErrFatal)
//	422  verify_failed     the differential oracle found a divergence
//	429  queue_full        admission queue at capacity      (+ Retry-After)
//	429  tenant_busy       tenant at its in-flight quota    (+ Retry-After)
//	499  client_closed     the client went away mid-run (nginx convention)
//	503  draining          server is draining: admission refused, or an
//	                       in-flight run was budget-killed past the grace
//	                       (+ Retry-After)
//	503  suspended         drain checkpointed this run; the job id stays
//	                       valid and the run resumes bit-identically after
//	                       restart (+ Retry-After; needs -state-dir)
//	500  internal          anything not in this table (a bug by definition)
//
// 4xx are the caller's program or the caller's pacing; 503 is the
// operator's lifecycle; 500 is ours. The load generator (swebench
// -serve-url) and the acceptance gate assert that expected failure
// injections produce only the statuses above, never 500.

import (
	"context"
	"errors"
	"fmt"
	"net/http"

	"f90y/internal/faults"
	"f90y/internal/rt"
)

// Code is the machine-readable error code carried in every non-2xx
// JSON body as {"error": {"code": ..., "message": ...}}.
type Code string

const (
	CodeBadRequest     Code = "bad_request"
	CodeNotFound       Code = "not_found"
	CodeDeadline       Code = "deadline_exceeded"
	CodeSourceTooLarge Code = "source_too_large"
	CodeCompile        Code = "compile_error"
	CodeRun            Code = "run_error"
	CodeBudget         Code = "budget_exhausted"
	CodeNumericTrap    Code = "numeric_trap"
	CodeFaultFatal     Code = "fault_fatal"
	CodeVerifyFailed   Code = "verify_failed"
	CodeQueueFull      Code = "queue_full"
	CodeTenantBusy     Code = "tenant_busy"
	CodeClientClosed   Code = "client_closed"
	CodeDraining       Code = "draining"
	CodeSuspended      Code = "suspended"
	CodeInternal       Code = "internal"
)

// StatusClientClosed is nginx's non-standard 499: the client closed the
// connection before the response. The status is recorded in stats and
// written best-effort (the client is usually gone).
const StatusClientClosed = 499

// Cancellation causes: Drain and the sync handler cancel job contexts
// with these, so classify can tell a drain kill from a vanished client
// from an expired deadline — all three surface as rt.ErrCanceled chains.
var (
	// ErrDraining is the cancel cause used when Drain's grace period
	// expires and in-flight jobs are force-killed.
	ErrDraining = errors.New("server draining")
	// ErrClientClosed is the cancel cause used when the requesting
	// client disconnects before its synchronous job completes.
	ErrClientClosed = errors.New("client closed request")
	// ErrSuspended is returned from the durable checkpoint hook when a
	// drain is in progress: the run stops at the boundary it just
	// spilled, and recovery resumes it from that spill after restart.
	ErrSuspended = errors.New("job suspended for restart; poll the job id after the server returns")
)

// classify maps a job error to its HTTP status and code. compileFailed
// distinguishes a pipeline failure (the artifact never existed) from a
// runtime failure of a compiled program; both are the caller's program,
// not the server, hence 422.
func classify(err error, compileFailed bool) (int, Code) {
	switch {
	case err == nil:
		return http.StatusOK, ""
	case errors.Is(err, rt.ErrBudget):
		return http.StatusUnprocessableEntity, CodeBudget
	case errors.Is(err, rt.ErrNumeric):
		return http.StatusUnprocessableEntity, CodeNumericTrap
	case errors.Is(err, faults.ErrFatal):
		return http.StatusUnprocessableEntity, CodeFaultFatal
	case errors.Is(err, ErrSuspended):
		return http.StatusServiceUnavailable, CodeSuspended
	case errors.Is(err, ErrDraining):
		return http.StatusServiceUnavailable, CodeDraining
	case errors.Is(err, ErrClientClosed):
		return StatusClientClosed, CodeClientClosed
	case errors.Is(err, context.DeadlineExceeded):
		return http.StatusRequestTimeout, CodeDeadline
	case errors.Is(err, rt.ErrCanceled):
		// Canceled without a more specific cause: the client (or its
		// proxy) tore the context down.
		return StatusClientClosed, CodeClientClosed
	case compileFailed:
		return http.StatusUnprocessableEntity, CodeCompile
	default:
		// A compiled program that failed at runtime (shape/operand/
		// dispatch errors) is still the caller's program.
		return http.StatusUnprocessableEntity, CodeRun
	}
}

// apiError is the JSON error envelope.
type apiError struct {
	Error apiErrorBody `json:"error"`
}

type apiErrorBody struct {
	Code    Code   `json:"code"`
	Message string `json:"message"`
	// RetryAfterMS accompanies 429s, mirroring the Retry-After header
	// with finer grain.
	RetryAfterMS int64 `json:"retry_after_ms,omitempty"`
}

// errorf builds the envelope.
func errorf(code Code, format string, args ...any) apiError {
	return apiError{Error: apiErrorBody{Code: code, Message: fmt.Sprintf(format, args...)}}
}
