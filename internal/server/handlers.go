package server

// HTTP handlers and JSON request/response shapes. Validation failures
// (400/413) are decided before admission; everything after admission is
// classified by errors.go from the sentinel chain the pipeline already
// produces.

import (
	"context"
	"crypto/sha256"
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"strconv"
	"time"

	"f90y"
	"f90y/internal/cm2"
	"f90y/internal/driver"
	"f90y/internal/faults"
	"f90y/internal/opt"
	"f90y/internal/oracle"
	"f90y/internal/pe"
	"f90y/internal/rt"
)

// tenantOf resolves the tenant token: the X-Tenant header, defaulting
// to "anon". Quotas are per token; isolation between tokens is the
// contract TestTenantQuotaIsolation enforces.
func tenantOf(r *http.Request) string {
	if t := r.Header.Get("X-Tenant"); t != "" {
		return t
	}
	return "anon"
}

// configSpec selects the compiler configuration by level name, keeping
// the wire format decoupled from the option structs (which are cache-
// key material; see driver.Fingerprint).
type configSpec struct {
	// Opt is the NIR transformation level: "default" (all passes, the
	// default) or "naive" (none).
	Opt string `json:"opt,omitempty"`
	// PE is the PE code-generator level: "optimized" (the default) or
	// "naive".
	PE string `json:"pe,omitempty"`
}

func (cs configSpec) build() (f90y.Config, error) {
	cfg := f90y.DefaultConfig()
	switch cs.Opt {
	case "", "default":
	case "naive":
		cfg.Opt = opt.Options{}
	default:
		return cfg, fmt.Errorf("unknown config.opt %q (want default or naive)", cs.Opt)
	}
	switch cs.PE {
	case "", "optimized":
	case "naive":
		cfg.PE = pe.Naive
	default:
		return cfg, fmt.Errorf("unknown config.pe %q (want optimized or naive)", cs.PE)
	}
	return cfg, nil
}

// runRequest is the POST /v1/run body.
type runRequest struct {
	File   string     `json:"file,omitempty"`
	Source string     `json:"source"`
	Target string     `json:"target,omitempty"` // "cm2" (default) or "cm5"
	Config configSpec `json:"config"`
	// MaxCycles asks for a cycle budget; the tenant cap clamps it (a
	// request may ask for less, never more).
	MaxCycles float64 `json:"max_cycles,omitempty"`
	// ExecWorkers asks for executor sharding; the tenant cap clamps it.
	ExecWorkers int `json:"exec_workers,omitempty"`
	// Numeric is the numeric-exception plane: "", "off", "record", "trap".
	Numeric string `json:"numeric,omitempty"`
	// Faults attaches a deterministic fault-injection spec (the same
	// grammar as the CLIs' -faults flag).
	Faults string `json:"faults,omitempty"`
	// Verify runs the differential oracle (interp vs cm2 vs cm5) after
	// a successful run; a divergence fails the job with 422.
	Verify bool `json:"verify,omitempty"`
	// TimeoutMS asks for a per-job wall-clock deadline; the server's
	// RequestTimeout clamps it.
	TimeoutMS int `json:"timeout_ms,omitempty"`
	// Async admits the job and returns 202 immediately; poll
	// GET /v1/jobs/{id} for the outcome.
	Async bool `json:"async,omitempty"`
}

// compileRequest is the POST /v1/compile body.
type compileRequest struct {
	File   string     `json:"file,omitempty"`
	Source string     `json:"source"`
	Config configSpec `json:"config"`
}

// runResult is a finished job's payload; run jobs fill the execution
// fields, compile jobs the artifact fields.
type runResult struct {
	Target    string      `json:"target,omitempty"`
	GFLOPS    float64     `json:"gflops,omitempty"`
	Flops     int64       `json:"flops,omitempty"`
	NodeCalls int         `json:"node_calls,omitempty"`
	CommCalls int         `json:"comm_calls,omitempty"`
	Cycles    *cyclesJSON `json:"cycles,omitempty"`
	Output    []string    `json:"output,omitempty"`

	Routines    int    `json:"routines,omitempty"`
	HostOps     int    `json:"host_ops,omitempty"`
	Fingerprint string `json:"fingerprint,omitempty"`
	SourceSHA   string `json:"source_sha256,omitempty"`

	Verified *verifyJSON `json:"verified,omitempty"`
}

type cyclesJSON struct {
	Host  float64 `json:"host"`
	PE    float64 `json:"pe"`
	Comm  float64 `json:"comm"`
	Total float64 `json:"total"`
}

type verifyJSON struct {
	Vars  int `json:"vars"`
	Elems int `json:"elems"`
}

// fail writes the error envelope, counting the response and setting
// Retry-After on 429/503.
func (s *Server) fail(w http.ResponseWriter, status int, env apiError) {
	s.stats.note(status, env.Error.Code)
	if env.Error.RetryAfterMS > 0 {
		secs := (env.Error.RetryAfterMS + 999) / 1000
		w.Header().Set("Retry-After", strconv.FormatInt(secs, 10))
	}
	s.writeJSON(w, status, env)
}

// decode reads a JSON body bounded by the tenant source quota (plus
// envelope headroom), distinguishing oversize (413) from malformed
// (400).
func (s *Server) decode(w http.ResponseWriter, r *http.Request, v any) bool {
	limit := int64(s.cfg.Quotas.MaxSourceBytes) + 64<<10
	if s.cfg.Quotas.MaxSourceBytes <= 0 {
		limit = 64 << 20
	}
	r.Body = http.MaxBytesReader(w, r.Body, limit)
	if err := json.NewDecoder(r.Body).Decode(v); err != nil {
		var tooBig *http.MaxBytesError
		if errors.As(err, &tooBig) {
			s.fail(w, http.StatusRequestEntityTooLarge,
				errorf(CodeSourceTooLarge, "request body exceeds %d bytes", tooBig.Limit))
			return false
		}
		s.fail(w, http.StatusBadRequest, errorf(CodeBadRequest, "malformed JSON body: %v", err))
		return false
	}
	return true
}

// checkSource applies the per-tenant source byte quota.
func (s *Server) checkSource(w http.ResponseWriter, src string) bool {
	if src == "" {
		s.fail(w, http.StatusBadRequest, errorf(CodeBadRequest, "source is required"))
		return false
	}
	if max := s.cfg.Quotas.MaxSourceBytes; max > 0 && len(src) > max {
		s.fail(w, http.StatusRequestEntityTooLarge,
			errorf(CodeSourceTooLarge, "source is %d bytes; the per-tenant bound is %d", len(src), max))
		return false
	}
	return true
}

func (s *Server) routes() *http.ServeMux {
	mux := http.NewServeMux()
	mux.HandleFunc("GET /healthz", s.handleHealthz)
	mux.HandleFunc("GET /readyz", s.handleReadyz)
	mux.HandleFunc("GET /statsz", s.handleStatsz)
	mux.HandleFunc("POST /v1/compile", s.handleCompile)
	mux.HandleFunc("POST /v1/run", s.handleRun)
	mux.HandleFunc("GET /v1/jobs/{id}", s.handleJob)
	mux.HandleFunc("/", func(w http.ResponseWriter, r *http.Request) {
		s.writeJSON(w, http.StatusNotFound, errorf(CodeNotFound, "no such route: %s %s", r.Method, r.URL.Path))
	})
	return mux
}

// handleHealthz: liveness — the process is up. Always 200.
func (s *Server) handleHealthz(w http.ResponseWriter, r *http.Request) {
	s.writeJSON(w, http.StatusOK, map[string]string{"status": "ok"})
}

// handleReadyz: readiness — 503 as the very first step of a drain
// (notReady flips before admission closes), so load balancers stop
// routing here while in-flight work is still being checkpointed.
func (s *Server) handleReadyz(w http.ResponseWriter, r *http.Request) {
	s.admitMu.Lock()
	draining := s.draining
	s.admitMu.Unlock()
	if draining || s.notReady.Load() {
		s.writeJSON(w, http.StatusServiceUnavailable, map[string]string{"status": "draining"})
		return
	}
	s.writeJSON(w, http.StatusOK, map[string]string{"status": "ready"})
}

func (s *Server) handleStatsz(w http.ResponseWriter, r *http.Request) {
	s.writeJSON(w, http.StatusOK, s.Stats())
}

func (s *Server) handleJob(w http.ResponseWriter, r *http.Request) {
	js := s.jobs.get(r.PathValue("id"))
	if js == nil {
		s.writeJSON(w, http.StatusNotFound, errorf(CodeNotFound, "no such job %q (finished jobs are retained up to %d)", r.PathValue("id"), s.cfg.RetainedJobs))
		return
	}
	s.writeJSON(w, http.StatusOK, js.view())
}

func (s *Server) handleCompile(w http.ResponseWriter, r *http.Request) {
	var req compileRequest
	if !s.decode(w, r, &req) || !s.checkSource(w, req.Source) {
		return
	}
	js := s.jobs.newJob(tenantOf(r), "compile")
	// Compile specs journal in the run-request shape (the fields align);
	// kind selects the compile path when the job is rebuilt.
	js.spec = &runRequest{File: req.File, Source: req.Source, Config: req.Config}
	if err := s.jobFromSpec(js); err != nil {
		s.jobs.drop(js)
		s.fail(w, http.StatusBadRequest, errorf(CodeBadRequest, "%v", err))
		return
	}
	js.ctx, js.cancel = withJobContext(s.baseCtx)
	if status, env := s.admit(js); status != 0 {
		s.fail(w, status, env)
		return
	}
	s.waitSync(w, r, js)
}

func (s *Server) handleRun(w http.ResponseWriter, r *http.Request) {
	var req runRequest
	if !s.decode(w, r, &req) || !s.checkSource(w, req.Source) {
		return
	}
	js := s.jobs.newJob(tenantOf(r), "run")
	js.spec = &req
	if err := s.jobFromSpec(js); err != nil {
		s.jobs.drop(js)
		s.fail(w, http.StatusBadRequest, errorf(CodeBadRequest, "%v", err))
		return
	}
	js.ctx, js.cancel = withJobContext(s.baseCtx)
	if status, env := s.admit(js); status != 0 {
		s.fail(w, status, env)
		return
	}
	if req.Async {
		s.stats.note(http.StatusAccepted, "")
		s.writeJSON(w, http.StatusAccepted, js.view())
		return
	}
	s.waitSync(w, r, js)
}

// jobFromSpec validates js.spec and materializes the driver job and
// control plane onto js. It is the single constructor for both the
// admission handlers and journal recovery, so a job rebuilt from its
// journaled spec is configured exactly like the original admission.
func (s *Server) jobFromSpec(js *jobState) error {
	req := js.spec
	if req.Source == "" {
		return fmt.Errorf("source is required")
	}
	cfg, err := req.Config.build()
	if err != nil {
		return err
	}
	file := req.File
	if file == "" {
		file = "prog.f90"
	}
	if js.kind == "compile" {
		js.job = driver.Job{Name: js.id, File: file, Source: req.Source, Config: cfg}
		return nil
	}
	switch req.Target {
	case "", "cm2", "cm5":
	default:
		return fmt.Errorf("unknown target %q (want cm2 or cm5)", req.Target)
	}
	numMode, err := rt.ParseNumericMode(req.Numeric)
	if err != nil {
		return err
	}
	plan, err := faults.ParseSpec(req.Faults)
	if err != nil {
		return err
	}
	if req.MaxCycles < 0 || req.TimeoutMS < 0 {
		return fmt.Errorf("max_cycles and timeout_ms must be >= 0")
	}

	// Quota resolution: the request may narrow its budget and sharding,
	// never widen them past the tenant caps. Enforcement itself is the
	// runtime watchdog (rt.ErrBudget), not a second mechanism.
	budget := s.cfg.Quotas.budget(req.MaxCycles)
	execW := s.cfg.Quotas.execWorkers(req.ExecWorkers)
	var ctl *cm2.Control
	if plan != nil || numMode != rt.NumericOff || budget > 0 || execW != 0 {
		ctl = &cm2.Control{
			Faults:      faults.New(plan, nil),
			MaxCycles:   budget,
			Numeric:     rt.NewNumeric(numMode),
			ExecWorkers: execW,
		}
	}
	js.job = driver.Job{
		Name:   js.id,
		File:   file,
		Source: req.Source,
		Config: cfg,
		Target: req.Target,
		Ctl:    ctl,
	}
	js.verify = req.Verify
	js.budget = budget
	if req.TimeoutMS > 0 {
		js.timeout = time.Duration(req.TimeoutMS) * time.Millisecond
	}
	return nil
}

// waitSync blocks the handler until the admitted job finishes. A client
// that disconnects first cancels the job's context with cause
// ErrClientClosed: the run dies at the next host-op boundary and is
// recorded as 499, and the worker moves on — an abandoned request never
// strands a worker. The job's terminal status was counted by runJob, so
// nothing is double-counted here.
func (s *Server) waitSync(w http.ResponseWriter, r *http.Request, js *jobState) {
	stop := context.AfterFunc(r.Context(), func() { js.cancel(ErrClientClosed) })
	<-js.done
	stop()
	v := js.view()
	if v.HTTPStatus >= 400 {
		env := errorf(v.Code, "%s", v.Error)
		// 503s out of a drain (suspended / force-killed) advise the caller
		// when to come back, like the admission-side 429/503 path. The
		// terminal status was already counted by runJob.
		if v.HTTPStatus == http.StatusServiceUnavailable {
			env.Error.RetryAfterMS = s.retryAfter().Milliseconds()
			secs := (env.Error.RetryAfterMS + 999) / 1000
			w.Header().Set("Retry-After", strconv.FormatInt(secs, 10))
		}
		s.writeJSON(w, v.HTTPStatus, env)
		return
	}
	s.writeJSON(w, v.HTTPStatus, v)
}

// withJobContext derives a job's cancellable context from the server
// base context (so Drain's force-kill reaches every job).
func withJobContext(base context.Context) (context.Context, context.CancelCauseFunc) {
	return context.WithCancelCause(base)
}

// execute runs one admitted job's work under ctx and returns its
// terminal (status, code, error message, payload, cache-hit flag).
func (s *Server) execute(ctx context.Context, js *jobState) (int, Code, string, *runResult, bool) {
	cached := s.svc.Peek(js.job.Source, js.job.Config)
	if js.kind == "compile" {
		art, err := s.svc.Compile(ctx, js.job.File, js.job.Source, js.job.Config)
		if err != nil {
			status, code := classify(err, true)
			return status, code, err.Error(), nil, cached
		}
		ops := 0
		for _, n := range art.Comp.Program.CountOps() {
			ops += n
		}
		sum := sha256.Sum256([]byte(js.job.Source))
		return http.StatusOK, "", "", &runResult{
			Routines:    len(art.Comp.Program.Routines),
			HostOps:     ops,
			Fingerprint: art.Key.Config,
			SourceSHA:   fmt.Sprintf("%x", sum),
		}, cached
	}

	res := s.svc.Run(ctx, js.job)
	if res.Err != nil {
		status, code := classify(res.Err, res.Artifact == nil)
		return status, code, res.Err.Error(), nil, cached
	}
	cr := res.Result()
	out := &runResult{
		Target:    js.job.Target,
		GFLOPS:    cr.GFLOPS(),
		Flops:     cr.Flops,
		NodeCalls: cr.NodeCalls,
		CommCalls: cr.CommCalls,
		Cycles: &cyclesJSON{
			Host:  cr.HostCycles,
			PE:    cr.PECycles,
			Comm:  cr.CommCycles,
			Total: cr.TotalCycles(),
		},
		Output: cr.Output,
	}
	if out.Target == "" {
		out.Target = "cm2"
	}
	if js.verify {
		// The oracle compiles and runs all three backends itself; the
		// job's budget bounds each of them (rt.ErrBudget on overrun).
		// It is not context-aware — the budget, not the deadline, is
		// its backstop.
		rep, err := oracle.Verify(js.job.File, js.job.Source, oracle.Options{MaxCycles: js.budget})
		if err != nil {
			status, code := classify(err, false)
			if code == CodeRun {
				code = CodeVerifyFailed
			}
			return status, code, fmt.Sprintf("verify: %v", err), nil, cached
		}
		out.Verified = &verifyJSON{Vars: rep.Vars, Elems: rep.Elems}
	}
	return http.StatusOK, "", "", out, cached
}
