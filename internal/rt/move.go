package rt

import (
	"fmt"
	"math"

	"f90y/internal/nir"
	"f90y/internal/shape"
)

// generalMove executes a communication-class move with no runtime
// intrinsic: misaligned section copies, gathers and scatters through
// subscripted references, and masked motion between shapes. It is the
// general-router path: every element is charged RouterPerElem. Fortran
// assignment semantics hold — the right-hand side is fully evaluated
// before any element is stored.
func (c *Comm) generalMove(over shape.Shape, g nir.GuardedMove) error {
	if over == nil {
		return fmt.Errorf("rt: scalar move routed to communication: %w", ErrBadOperand)
	}
	ext := shape.Extents(over)
	lo := shape.Lowers(over)
	n := shape.Size(over)

	idx := make([]int, len(ext))
	for d := range idx {
		idx[d] = lo[d]
	}
	pos := 0

	ctx := &EvalCtx{Store: c.Store}
	ctx.Local = func(_ shape.Shape, dim int) (int, bool) {
		if dim < 1 || dim > len(idx) {
			return 0, false
		}
		return idx[dim-1], true
	}
	ctx.Elem = func(av nir.AVar) (float64, nir.ScalarKind, error) {
		arr, ok := c.Store.Arrays[av.Name]
		if !ok {
			return 0, 0, fmt.Errorf("rt: undefined array %q: %w", av.Name, ErrUndefined)
		}
		off, err := c.resolve(av, arr, idx, lo, pos, ctx)
		if err != nil {
			return 0, 0, err
		}
		return arr.Data[off], arr.Kind, nil
	}

	writes := make([]commWrite, 0, n)

	tgtAV, ok := g.Tgt.(nir.AVar)
	if !ok {
		return fmt.Errorf("rt: parallel move target must be an array, got %s: %w", nir.PrintValue(g.Tgt), ErrBadOperand)
	}
	tgtArr, ok := c.Store.Arrays[tgtAV.Name]
	if !ok {
		return fmt.Errorf("rt: undefined array %q: %w", tgtAV.Name, ErrUndefined)
	}

	for p := 0; p < n; p++ {
		pos = p
		masked := true
		if !nir.EqualValue(g.Mask, nir.True) {
			mv, _, err := Eval(g.Mask, ctx)
			if err != nil {
				return err
			}
			masked = mv != 0
		}
		if masked {
			v, _, err := Eval(g.Src, ctx)
			if err != nil {
				return err
			}
			off, err := c.resolve(tgtAV, tgtArr, idx, lo, pos, ctx)
			if err != nil {
				return err
			}
			writes = append(writes, commWrite{arr: tgtArr, off: off, val: v})
		}
		// Column-major increment.
		for d := range idx {
			idx[d]++
			if idx[d] < lo[d]+ext[d] {
				break
			}
			idx[d] = lo[d]
		}
	}
	l := shape.Blockwise(over, c.PEs)
	return c.deliverWrites(CommRouter, c.Cost.RouterStartup+float64(l.SubgridSize())*c.Cost.RouterPerElem, writes)
}

// resolve maps an array reference to the storage offset selected by the
// current iteration point.
func (c *Comm) resolve(av nir.AVar, arr *Array, idx, iterLo []int, pos int, ctx *EvalCtx) (int, error) {
	switch f := av.Field.(type) {
	case nir.Everywhere:
		if arr.Size() < pos {
			return 0, fmt.Errorf("rt: %q too small for move", av.Name)
		}
		return pos, nil
	case nir.Subscript:
		declared, err := evalIndexes(f.Subs, ctx)
		if err != nil {
			return 0, err
		}
		off, err := arr.Offset(declared)
		if err != nil {
			return 0, fmt.Errorf("rt: %q: %w", av.Name, err)
		}
		return off, nil
	case nir.Section:
		declared := make([]int, len(f.Subs))
		k := 0 // iteration-dimension cursor (scalar triplets reduce rank)
		for d, t := range f.Subs {
			switch {
			case t.Scalar:
				v, _, err := Eval(t.Lo, ctx)
				if err != nil {
					return 0, err
				}
				declared[d] = int(math.Trunc(v))
			case t.Full:
				declared[d] = arr.Lo[d] + (idx[k] - iterLo[k])
				k++
			default:
				tlo, _, err := Eval(t.Lo, ctx)
				if err != nil {
					return 0, err
				}
				step := 1.0
				if t.Step != nil {
					step, _, err = Eval(t.Step, ctx)
					if err != nil {
						return 0, err
					}
				}
				declared[d] = int(tlo) + (idx[k]-iterLo[k])*int(step)
				k++
			}
		}
		off, err := arr.Offset(declared)
		if err != nil {
			return 0, fmt.Errorf("rt: %q: %w", av.Name, err)
		}
		return off, nil
	}
	return 0, fmt.Errorf("rt: unsupported field on %q", av.Name)
}
