package rt

import (
	"math"
	"testing"

	"f90y/internal/nir"
	"f90y/internal/shape"
)

// shiftMove builds a cm_cshift move b = cshift(a, shift, dim).
func shiftMove(shift, dim int) nir.Move {
	return nir.Move{Over: shape.Of(1), Moves: []nir.GuardedMove{{
		Mask: nir.True,
		Src: nir.FcnCall{Name: "cm_cshift", Args: []nir.Value{
			nir.AVar{Name: "a", Field: nir.Everywhere{}},
			nir.IntConst(int64(shift)), nir.IntConst(int64(dim))}},
		Tgt: nir.AVar{Name: "b", Field: nir.Everywhere{}},
	}}}
}

// vecStore builds a store with two rank-1 arrays a, b of extent n and the
// given distributions.
func vecStore(n int, da, db shape.Distribution) *Store {
	a := NewArray(nir.Float64, shape.Of(n))
	b := NewArray(nir.Float64, shape.Of(n))
	a.Dist, b.Dist = da, db
	for i := range a.Data {
		a.Data[i] = float64(i)
	}
	return &Store{
		Arrays:  map[string]*Array{"a": a, "b": b},
		Scalars: map[string]float64{},
		Kinds:   map[string]nir.ScalarKind{"a": nir.Float64, "b": nir.Float64},
	}
}

var cyclic = shape.Distribution{Dims: []shape.DimDist{{Kind: shape.DistCyclic}}}

// TestShiftDefaultLayoutLegacyCost pins the directive-free shift charge
// to the exact legacy NEWS formula — the layout plane must not move a
// single cycle of the default path.
func TestShiftDefaultLayoutLegacyCost(t *testing.T) {
	st := vecStore(128, shape.Distribution{}, shape.Distribution{})
	c := newComm(st)
	if err := c.ExecMove(shiftMove(3, 1)); err != nil {
		t.Fatal(err)
	}
	l := shape.Blockwise(shape.Of(128), c.PEs)
	sub := float64(l.SubgridSize())
	want := c.Cost.GridStartup + sub*c.Cost.GridLocal + sub*l.OffPEFraction(0)*c.Cost.GridWire*3
	if c.Cycles != want {
		t.Fatalf("default shift: %v cycles, legacy formula gives %v", c.Cycles, want)
	}
	if c.ClassCycles[CommGrid] != want || c.ClassCycles[CommRouter] != 0 {
		t.Fatalf("default shift must be pure grid: %v", c.ClassCycles)
	}
}

// TestShiftCyclicAlignedFree pins the distribution plane's headline
// property: between identically CYCLIC-distributed arrays, a shift by a
// multiple of chunk*PEs is a pure relabeling — no wire traffic at all —
// while the same shift under BLOCK pays per-hop wire charges.
func TestShiftCyclicAlignedFree(t *testing.T) {
	// 128 elements over 64 PEs cyclic: pd=64, chunk=1, so shift 64 is free.
	st := vecStore(128, cyclic, cyclic)
	c := newComm(st)
	if err := c.ExecMove(shiftMove(64, 1)); err != nil {
		t.Fatal(err)
	}
	l := shape.Distribute(shape.Of(128), c.PEs, cyclic)
	sub := float64(l.SubgridSize())
	want := c.Cost.GridStartup + sub*c.Cost.GridLocal // zero wire term
	if c.Cycles != want {
		t.Fatalf("free cyclic shift: %v cycles, want %v", c.Cycles, want)
	}
	if c.ClassCycles[CommGrid] != want {
		t.Fatalf("free cyclic shift must be grid class: %v", c.ClassCycles)
	}

	// The identical shift under the default BLOCK layout pays 64 hops of
	// wire traffic (or the router, whichever the model picks) — far more.
	stB := vecStore(128, shape.Distribution{}, shape.Distribution{})
	cb := newComm(stB)
	if err := cb.ExecMove(shiftMove(64, 1)); err != nil {
		t.Fatal(err)
	}
	if cb.Cycles <= c.Cycles {
		t.Fatalf("BLOCK shift-64 (%v) must cost more than CYCLIC (%v)", cb.Cycles, c.Cycles)
	}
}

// TestShiftWildcardAdoptsExplicit checks the wildcard rule: a
// default-layout partner adopts the explicit side's distribution (the
// compiler materializes temporaries in the consumer's layout), so
// explicit-vs-default is priced like explicit-vs-explicit, not as a
// realignment.
func TestShiftWildcardAdoptsExplicit(t *testing.T) {
	exp := vecStore(128, cyclic, cyclic)
	ce := newComm(exp)
	if err := ce.ExecMove(shiftMove(64, 1)); err != nil {
		t.Fatal(err)
	}
	wild := vecStore(128, cyclic, shape.Distribution{})
	cw := newComm(wild)
	if err := cw.ExecMove(shiftMove(64, 1)); err != nil {
		t.Fatal(err)
	}
	if cw.Cycles != ce.Cycles {
		t.Fatalf("wildcard pair %v cycles, explicit pair %v — must match", cw.Cycles, ce.Cycles)
	}
}

// TestShiftCrossDistributionRouts checks that a shift between two
// different explicit distributions is priced as a general-router
// realignment.
func TestShiftCrossDistributionRouts(t *testing.T) {
	cyc4 := shape.Distribution{Dims: []shape.DimDist{{Kind: shape.DistCyclic, K: 4}}}
	st := vecStore(128, cyclic, cyc4)
	c := newComm(st)
	if err := c.ExecMove(shiftMove(1, 1)); err != nil {
		t.Fatal(err)
	}
	l := shape.Distribute(shape.Of(128), c.PEs, cyclic)
	want := c.Cost.RouterStartup + float64(l.SubgridSize())*c.Cost.RouterPerElem
	if c.ClassCycles[CommRouter] != want || c.ClassCycles[CommGrid] != 0 {
		t.Fatalf("cross-distribution shift must be a router realignment of %v: %v", want, c.ClassCycles)
	}
	// The data still arrives correctly.
	if st.Arrays["b"].Data[0] != 1 || st.Arrays["b"].Data[127] != 0 {
		t.Fatalf("shift result wrong: %v...", st.Arrays["b"].Data[:4])
	}
}

// matStore builds an n-by-n pair a, b with the given distributions.
func matStore(n int, da, db shape.Distribution) *Store {
	a := NewArray(nir.Float64, shape.Of(n, n))
	b := NewArray(nir.Float64, shape.Of(n, n))
	a.Dist, b.Dist = da, db
	for i := range a.Data {
		a.Data[i] = float64(i)
	}
	return &Store{
		Arrays:  map[string]*Array{"a": a, "b": b},
		Scalars: map[string]float64{},
		Kinds:   map[string]nir.ScalarKind{"a": nir.Float64, "b": nir.Float64},
	}
}

func transposeMove() nir.Move {
	return nir.Move{Over: shape.Of(1), Moves: []nir.GuardedMove{{
		Mask: nir.True,
		Src:  nir.FcnCall{Name: "cm_transpose", Args: []nir.Value{nir.AVar{Name: "a", Field: nir.Everywhere{}}}},
		Tgt:  nir.AVar{Name: "b", Field: nir.Everywhere{}},
	}}}
}

// TestTransposeLayoutClasses pins the transpose cost matrix: default
// layouts pay the legacy flat router charge; a (BLOCK,*) source into a
// (*,BLOCK) target is fully PE-local and moves on the grid.
func TestTransposeLayoutClasses(t *testing.T) {
	// Default: legacy router formula, verbatim.
	st := matStore(16, shape.Distribution{}, shape.Distribution{})
	c := newComm(st)
	if err := c.ExecMove(transposeMove()); err != nil {
		t.Fatal(err)
	}
	l := shape.Blockwise(shape.Of(16, 16), c.PEs)
	want := c.Cost.RouterStartup + float64(l.SubgridSize())*c.Cost.RouterPerElem
	if c.ClassCycles[CommRouter] != want {
		t.Fatalf("default transpose: %v, legacy router formula gives %v", c.ClassCycles, want)
	}

	// (BLOCK,*) -> (*,BLOCK): every element's target PE is its source PE.
	rowD := shape.Distribution{Dims: []shape.DimDist{{Kind: shape.DistBlock}, {Kind: shape.DistStar}}}
	colD := shape.Distribution{Dims: []shape.DimDist{{Kind: shape.DistStar}, {Kind: shape.DistBlock}}}
	st2 := matStore(16, rowD, colD)
	c2 := newComm(st2)
	if err := c2.ExecMove(transposeMove()); err != nil {
		t.Fatal(err)
	}
	if c2.ClassCycles[CommRouter] != 0 || c2.ClassCycles[CommGrid] <= 0 {
		t.Fatalf("aligned transpose must be pure grid: %v", c2.ClassCycles)
	}
	if c2.Cycles >= c.Cycles {
		t.Fatalf("aligned transpose (%v) must beat default router transpose (%v)", c2.Cycles, c.Cycles)
	}
	// Functional result matches on both paths.
	for j := 0; j < 16; j++ {
		for i := 0; i < 16; i++ {
			want := st2.Arrays["a"].Data[j+i*16]
			if got := st2.Arrays["b"].Data[i+j*16]; got != want {
				t.Fatalf("b(%d,%d) = %v, want %v", i+1, j+1, got, want)
			}
		}
	}
}

// gatherMove builds b = gather(a, idx).
func gatherMove() nir.Move {
	return nir.Move{Over: shape.Of(1), Moves: []nir.GuardedMove{{
		Mask: nir.True,
		Src: nir.FcnCall{Name: "cm_gather", Args: []nir.Value{
			nir.AVar{Name: "a", Field: nir.Everywhere{}},
			nir.AVar{Name: "idx", Field: nir.Everywhere{}}}},
		Tgt: nir.AVar{Name: "b", Field: nir.Everywhere{}},
	}}}
}

func gatherStore(n int, da shape.Distribution, index func(i int) int) *Store {
	st := vecStore(n, da, shape.Distribution{})
	idx := NewArray(nir.Integer32, shape.Of(n))
	for i := range idx.Data {
		idx.Data[i] = float64(index(i))
	}
	st.Arrays["idx"] = idx
	st.Kinds["idx"] = nir.Integer32
	return st
}

// TestGatherLayoutCosts checks the gather cost model: an identity gather
// under matched layouts is all-local (grid class); a neighbor gather
// under element-CYCLIC crosses a PE boundary for every element and pays
// the router for all of them, costing strictly more than the same gather
// under BLOCK where only block edges cross.
func TestGatherLayoutCosts(t *testing.T) {
	identity := func(i int) int { return i + 1 }
	st := gatherStore(128, shape.Distribution{}, identity)
	c := newComm(st)
	if err := c.ExecMove(gatherMove()); err != nil {
		t.Fatal(err)
	}
	if c.ClassCycles[CommRouter] != 0 || c.ClassCycles[CommGrid] <= 0 {
		t.Fatalf("identity gather must be pure grid: %v", c.ClassCycles)
	}
	for i, v := range st.Arrays["b"].Data {
		if v != float64(i) {
			t.Fatalf("identity gather b[%d] = %v", i, v)
		}
	}

	neighbor := func(i int) int { return (i+1)%128 + 1 }
	stB := gatherStore(128, shape.Distribution{}, neighbor)
	cb := newComm(stB)
	if err := cb.ExecMove(gatherMove()); err != nil {
		t.Fatal(err)
	}
	stC := gatherStore(128, cyclic, neighbor)
	cc := newComm(stC)
	if err := cc.ExecMove(gatherMove()); err != nil {
		t.Fatal(err)
	}
	if cb.ClassCycles[CommRouter] <= 0 || cc.ClassCycles[CommRouter] <= 0 {
		t.Fatalf("neighbor gathers must route: block %v, cyclic %v", cb.ClassCycles, cc.ClassCycles)
	}
	if cc.Cycles <= cb.Cycles {
		t.Fatalf("cyclic neighbor gather (%v) must cost more than block (%v)", cc.Cycles, cb.Cycles)
	}
}

// TestCommLineCyclesSumInvariant runs a mix of operations and checks the
// per-line attribution: every cell is keyed under the CommRoutine
// pseudo-routine with a known class, and the values sum exactly to the
// cycle total.
func TestCommLineCyclesSumInvariant(t *testing.T) {
	st := gatherStore(64, cyclic, func(i int) int { return (i+3)%64 + 1 })
	c := newComm(st)
	if err := c.ExecMove(shiftMove(1, 1)); err != nil {
		t.Fatal(err)
	}
	if err := c.ExecMove(gatherMove()); err != nil {
		t.Fatal(err)
	}
	sum := 0.0
	for ref, v := range c.LineCycles {
		if ref.Routine != CommRoutine {
			t.Fatalf("line ref %v not under %q", ref, CommRoutine)
		}
		switch ref.Class {
		case CommGrid, CommRouter, CommReduce:
		default:
			t.Fatalf("line ref %v has unknown class", ref)
		}
		sum += v
	}
	if math.Abs(sum-c.Cycles) > 1e-9 {
		t.Fatalf("LineCycles sum %v, Cycles %v", sum, c.Cycles)
	}
}

// TestRestoreWithoutLineCycles checks old-checkpoint compatibility: a
// snapshot carrying only class totals seeds zero-position line refs so
// the sum invariant still holds after resume.
func TestRestoreWithoutLineCycles(t *testing.T) {
	c := &Comm{Store: nil, PEs: 4, Cost: DefaultCommCost}
	c.Restore(map[string]float64{CommGrid: 100, CommRouter: 250}, nil, 3)
	if c.Cycles != 350 || c.Calls != 3 {
		t.Fatalf("restore totals: %v cycles, %d calls", c.Cycles, c.Calls)
	}
	sum := 0.0
	for ref, v := range c.LineCycles {
		if ref.Routine != CommRoutine || ref.File != "" || ref.Line != 0 {
			t.Fatalf("seeded ref %v must be zero-position under %q", ref, CommRoutine)
		}
		sum += v
	}
	if sum != c.Cycles {
		t.Fatalf("seeded LineCycles sum %v, Cycles %v", sum, c.Cycles)
	}
}
