package rt

import (
	"errors"
	"testing"

	"f90y/internal/faults"
	"f90y/internal/nir"
	"f90y/internal/shape"
)

// every returns a whole-array reference.
func every(name string) nir.AVar { return nir.AVar{Name: name, Field: nir.Everywhere{}} }

func shiftCall(src nir.Value) nir.FcnCall {
	return nir.FcnCall{Name: "cm_cshift", Args: []nir.Value{src, nir.IntConst(1), nir.IntConst(1)}}
}

// TestCommErrorSentinels locks in the error taxonomy of the
// communication layer: every failure wraps exactly one of the rt
// sentinels, so callers classify with errors.Is instead of string
// matching.
func TestCommErrorSentinels(t *testing.T) {
	st, _ := storeFor(t, `program t
real a(4), b(4), m(2,2), r1(4), d6(6)
real s
a = 0
b = 0
m = 0
r1 = 0
d6 = 0
s = 0
end program t`)

	over := shape.Of(4)
	move := func(src nir.Value, tgt nir.Value) nir.Move {
		return nir.Move{Over: over, Moves: []nir.GuardedMove{{Mask: nir.True, Src: src, Tgt: tgt}}}
	}

	cases := []struct {
		name string
		mv   nir.Move
		want error
	}{
		{"shift-src-not-array", move(shiftCall(nir.IntConst(3)), every("b")), ErrBadOperand},
		{"shift-src-undefined", move(shiftCall(every("nope")), every("b")), ErrUndefined},
		{"shift-target-undefined", move(shiftCall(every("a")), every("nope")), ErrUndefined},
		{"shift-target-not-array", move(shiftCall(every("a")), nir.SVar{Name: "s"}), ErrBadOperand},
		{"shift-dim-out-of-range", move(
			nir.FcnCall{Name: "cm_cshift", Args: []nir.Value{every("a"), nir.IntConst(1), nir.IntConst(3)}},
			every("b")), ErrShape},
		{"unknown-intrinsic", move(nir.FcnCall{Name: "cm_warp", Args: []nir.Value{every("a")}}, every("b")),
			ErrBadOperand},
		{"reduce-target-not-scalar", nir.Move{Moves: []nir.GuardedMove{{
			Mask: nir.True,
			Src:  nir.FcnCall{Name: "cm_reduce_sum", Args: []nir.Value{every("a")}},
			Tgt:  every("b"),
		}}}, ErrBadOperand},
		{"transpose-rank-1", move(nir.FcnCall{Name: "cm_transpose", Args: []nir.Value{every("r1")}}, every("b")),
			ErrShape},
		{"dot-size-mismatch", nir.Move{Moves: []nir.GuardedMove{{
			Mask: nir.True,
			Src:  nir.FcnCall{Name: "cm_dot", Args: []nir.Value{every("a"), every("d6")}},
			Tgt:  nir.SVar{Name: "s"},
		}}}, ErrShape},
		{"dot-target-not-scalar", nir.Move{Moves: []nir.GuardedMove{{
			Mask: nir.True,
			Src:  nir.FcnCall{Name: "cm_dot", Args: []nir.Value{every("a"), every("b")}},
			Tgt:  every("b"),
		}}}, ErrBadOperand},
		{"move-scalar-over", nir.Move{Moves: []nir.GuardedMove{{
			Mask: nir.True, Src: nir.SVar{Name: "s"}, Tgt: nir.SVar{Name: "s"},
		}}}, ErrBadOperand},
		{"move-target-not-array", move(every("a"), nir.SVar{Name: "s"}), ErrBadOperand},
		{"move-target-undefined", move(every("a"), every("nope")), ErrUndefined},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			err := newComm(st).ExecMove(tc.mv)
			if err == nil {
				t.Fatal("no error")
			}
			if !errors.Is(err, tc.want) {
				t.Fatalf("error %v does not wrap %v", err, tc.want)
			}
		})
	}
}

// TestShiftSizeMismatchShapeError pins the size check specifically: a
// 2x2 source shifted into an 8-element target is a shape error.
func TestShiftSizeMismatchShapeError(t *testing.T) {
	st, _ := storeFor(t, "program t\nreal m(2,2), w(8)\nm = 0\nw = 0\nend program t")
	mv := nir.Move{Over: shape.Of(4), Moves: []nir.GuardedMove{{
		Mask: nir.True, Src: shiftCall(every("m")), Tgt: every("w"),
	}}}
	err := newComm(st).ExecMove(mv)
	if !errors.Is(err, ErrShape) {
		t.Fatalf("error %v does not wrap ErrShape", err)
	}
}

// TestTransferGivesUpAfterRetries drives the resilient delivery path to
// exhaustion: with a 100% drop rate every retransmission is lost, the
// retry budget runs out, and the failure wraps faults.ErrTransfer with
// the extra retry cycles charged to the network bucket.
func TestTransferGivesUpAfterRetries(t *testing.T) {
	st, _ := storeFor(t, "program t\nreal a(4), b(4)\na = 0\nb = 0\nend program t")
	c := newComm(st)
	inj := faults.New(&faults.Plan{Seed: 1, Drop: 1, MaxRetries: 3}, nil)
	c.Faults = inj

	clean := newComm(st)
	mv := nir.Move{Over: shape.Of(4), Moves: []nir.GuardedMove{{
		Mask: nir.True, Src: shiftCall(every("a")), Tgt: every("b"),
	}}}
	if err := clean.ExecMove(mv); err != nil {
		t.Fatal(err)
	}

	err := c.ExecMove(mv)
	if !errors.Is(err, faults.ErrTransfer) {
		t.Fatalf("error %v does not wrap faults.ErrTransfer", err)
	}
	if c.Cycles <= clean.Cycles {
		t.Fatalf("retries charged no extra cycles: %v <= %v", c.Cycles, clean.Cycles)
	}
	s := inj.Stats()
	if s.Retries != 3 || s.Injected["drop"] != 4 {
		t.Fatalf("stats: %d retries, %d drops", s.Retries, s.Injected["drop"])
	}
}

// TestCorruptionDetectedAndRepaired injects a 100% corruption rate with
// a generous retry budget... every transfer is corrupted, detected by
// the checksum, and retransmitted until the corruption draw happens to
// leave the payload checksum-clean — with rate 1.0 it never does, so
// delivery must fail; with rate 0.5 it eventually succeeds and the
// data must be exact.
func TestCorruptionDetectedAndRepaired(t *testing.T) {
	st, _ := storeFor(t, "program t\nreal a(8), b(8)\na = 0\nb = 0\nend program t")
	for i := range st.Arrays["a"].Data {
		st.Arrays["a"].Data[i] = float64(i) + 0.5
	}
	mv := nir.Move{Over: shape.Of(8), Moves: []nir.GuardedMove{{
		Mask: nir.True, Src: shiftCall(every("a")), Tgt: every("b"),
	}}}

	c := newComm(st)
	c.Faults = faults.New(&faults.Plan{Seed: 42, Corrupt: 0.5, MaxRetries: 64}, nil)
	if err := c.ExecMove(mv); err != nil {
		t.Fatal(err)
	}
	want := []float64{1.5, 2.5, 3.5, 4.5, 5.5, 6.5, 7.5, 0.5}
	for i, w := range want {
		if st.Arrays["b"].Data[i] != w {
			t.Fatalf("b[%d] = %v, want %v (corruption leaked through)", i, st.Arrays["b"].Data[i], w)
		}
	}
	if c.Faults.Stats().Injected["corrupt"] == 0 {
		t.Fatal("no corruption was injected")
	}
}
