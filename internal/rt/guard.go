package rt

// Runtime guardrails: the cycle-budget watchdog and the numeric-
// exception plane. Both are opt-in through the execution control plane
// (cm2.Control / hostvm.Ctl); a run without them pays one nil check per
// instrumented site.

import (
	"errors"
	"fmt"
)

// Guardrail sentinels, matched by callers with errors.Is.
var (
	// ErrBudget reports a run killed by the watchdog: the modeled cycle
	// total exceeded the configured budget (or the host step backstop).
	// The kill is deterministic — the same program and budget die at the
	// same host step with the same message on every run.
	ErrBudget = errors.New("cycle budget exhausted")
	// ErrNumeric reports a NaN or infinity produced by a PE float
	// operation while the numeric plane runs in trap mode. The wrapping
	// error attributes the exception to a routine, instruction, element
	// offset, and processing element.
	ErrNumeric = errors.New("numeric exception")
)

// NumericMode selects what the numeric-exception plane does when a PE
// float operation produces a NaN or infinity.
type NumericMode int

const (
	// NumericOff disables the plane (no scan, no counts).
	NumericOff NumericMode = iota
	// NumericRecord counts exceptional lanes per PEAC cycle class and
	// lets the run continue.
	NumericRecord
	// NumericTrap halts the run at the first exceptional lane with an
	// error wrapping ErrNumeric.
	NumericTrap
)

func (m NumericMode) String() string {
	switch m {
	case NumericRecord:
		return "record"
	case NumericTrap:
		return "trap"
	}
	return "off"
}

// ParseNumericMode parses the CLI form of a mode: "" and "off" disable
// the plane, "trap" and "record" select the active modes.
func ParseNumericMode(s string) (NumericMode, error) {
	switch s {
	case "", "off":
		return NumericOff, nil
	case "trap":
		return NumericTrap, nil
	case "record":
		return NumericRecord, nil
	}
	return NumericOff, fmt.Errorf("rt: bad numeric mode %q (want off, trap, or record)", s)
}

// Numeric is the numeric-exception plane for one run: the executor
// scans the destination lanes of every can-trap PEAC float op (see
// peac.CanTrap) and either traps or tallies per cycle class. Counts are
// keyed by the peac.CycleClass names so rt stays independent of the
// instruction set.
type Numeric struct {
	Mode NumericMode
	// NaN and Inf count exceptional lanes produced, per cycle class
	// ("vector-arith", "divide", "sqrt", "transcend", ...).
	NaN map[string]int64
	Inf map[string]int64
}

// NewNumeric builds a plane in the given mode.
// NewNumeric builds a plane for the mode; NumericOff yields nil (the
// plane disabled), so callers can pass the result straight to a
// control structure.
func NewNumeric(mode NumericMode) *Numeric {
	if mode == NumericOff {
		return nil
	}
	return &Numeric{Mode: mode}
}

// Note tallies one exceptional lane under class.
func (n *Numeric) Note(class string, nan bool) {
	if nan {
		if n.NaN == nil {
			n.NaN = map[string]int64{}
		}
		n.NaN[class]++
		return
	}
	if n.Inf == nil {
		n.Inf = map[string]int64{}
	}
	n.Inf[class]++
}

// Merge folds another plane's tallies into n (both sides nil-safe).
// Per-class counts add, so merging workers' private planes in any order
// yields totals identical to a serial scan — the parallel executor's
// deterministic record-mode merge.
func (n *Numeric) Merge(m *Numeric) {
	if n == nil || m == nil {
		return
	}
	for cl, c := range m.NaN {
		if n.NaN == nil {
			n.NaN = map[string]int64{}
		}
		n.NaN[cl] += c
	}
	for cl, c := range m.Inf {
		if n.Inf == nil {
			n.Inf = map[string]int64{}
		}
		n.Inf[cl] += c
	}
}

// Total is the number of exceptional lanes recorded (nil-safe).
func (n *Numeric) Total() int64 {
	if n == nil {
		return 0
	}
	var t int64
	for _, v := range n.NaN {
		t += v
	}
	for _, v := range n.Inf {
		t += v
	}
	return t
}
