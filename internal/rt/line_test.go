package rt

import (
	"encoding/json"
	"testing"
)

// TestLineRefTextRoundTrip asserts MarshalText/UnmarshalText are exact
// inverses — the property the checkpoint JSON encoding of PELineCycles
// (and ctl_test's DeepEqual round-trip) depends on — including files
// whose names contain ':' and refs with no provenance at all.
func TestLineRefTextRoundTrip(t *testing.T) {
	refs := []LineRef{
		{Routine: "Pk0", File: "swe.f90", Line: 23, Class: "vector-arith"},
		{Routine: "Pk1", File: "C:/src/swe.f90", Line: 7, Class: "divide"},
		{Routine: "Pk2", File: "", Line: 0, Class: "loop"},
		{Routine: "Pk3", File: "a.f90", Line: 0, Class: "spill"},
	}
	for _, ref := range refs {
		text, err := ref.MarshalText()
		if err != nil {
			t.Fatalf("%+v: %v", ref, err)
		}
		var got LineRef
		if err := got.UnmarshalText(text); err != nil {
			t.Fatalf("%+v: unmarshal %q: %v", ref, text, err)
		}
		if got != ref {
			t.Errorf("round trip %q: got %+v, want %+v", text, got, ref)
		}
	}
}

// TestLineRefJSONMapKey asserts a PELineCycles map survives the JSON
// encoding checkpoints use (LineRef as a TextMarshaler map key).
func TestLineRefJSONMapKey(t *testing.T) {
	in := map[LineRef]float64{
		{Routine: "Pk0", File: "swe.f90", Line: 23, Class: "vector-arith"}: 169,
		{Routine: "Pk0", File: "swe.f90", Line: 23, Class: "loop"}:         1,
		{Routine: "Pk2", File: "", Line: 0, Class: "degrade"}:              42,
	}
	b, err := json.Marshal(in)
	if err != nil {
		t.Fatal(err)
	}
	var out map[LineRef]float64
	if err := json.Unmarshal(b, &out); err != nil {
		t.Fatal(err)
	}
	if len(out) != len(in) {
		t.Fatalf("round trip kept %d entries, want %d", len(out), len(in))
	}
	for k, v := range in {
		if out[k] != v {
			t.Errorf("round trip[%v] = %v, want %v", k, out[k], v)
		}
	}
}

// TestCopyLineMap asserts the copy is deep and nil maps to empty.
func TestCopyLineMap(t *testing.T) {
	if got := CopyLineMap(nil); got == nil || len(got) != 0 {
		t.Errorf("CopyLineMap(nil) = %v, want empty non-nil map", got)
	}
	src := map[LineRef]float64{{Routine: "P", Line: 1, Class: "loop"}: 2}
	cp := CopyLineMap(src)
	cp[LineRef{Routine: "P", Line: 1, Class: "loop"}] = 99
	if src[LineRef{Routine: "P", Line: 1, Class: "loop"}] != 2 {
		t.Error("CopyLineMap aliases its input")
	}
}
