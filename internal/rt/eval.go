package rt

import (
	"fmt"
	"math"

	"f90y/internal/nir"
	"f90y/internal/shape"
)

// EvalCtx supplies the environment for host-side evaluation of NIR
// values: the store, the current iteration coordinates (for LocalUnder
// values inside serial loops and general moves), and an element resolver
// for array references.
type EvalCtx struct {
	Store *Store
	// Local returns the current coordinate along dim of the iteration
	// shape s, when iterating.
	Local func(s shape.Shape, dim int) (int, bool)
	// Elem resolves an array reference to an element value. When nil,
	// only Subscript references are evaluated (via Local-driven
	// subscript expressions).
	Elem func(av nir.AVar) (float64, nir.ScalarKind, error)
	// Ops counts evaluated operators for the host cycle model.
	Ops int
}

// Eval computes a NIR value on the host, returning the value and its kind.
func Eval(v nir.Value, ctx *EvalCtx) (float64, nir.ScalarKind, error) {
	switch v := v.(type) {
	case nir.Const:
		switch v.Type.Kind {
		case nir.Integer32:
			return float64(v.I), nir.Integer32, nil
		case nir.Logical32:
			if v.B {
				return 1, nir.Logical32, nil
			}
			return 0, nir.Logical32, nil
		default:
			return v.F, v.Type.Kind, nil
		}
	case nir.SVar:
		val, ok := ctx.Store.Scalars[v.Name]
		if !ok {
			return 0, 0, fmt.Errorf("rt: undefined scalar %q", v.Name)
		}
		return val, ctx.Store.Kinds[v.Name], nil
	case nir.LocalUnder:
		if ctx.Local != nil {
			if c, ok := ctx.Local(v.S, v.Dim); ok {
				return float64(c), nir.Integer32, nil
			}
		}
		return 0, 0, fmt.Errorf("rt: local_under outside iteration")
	case nir.AVar:
		if ctx.Elem != nil {
			val, kind, err := ctx.Elem(v)
			return val, kind, err
		}
		return evalSubscripted(v, ctx)
	case nir.Unary:
		ctx.Ops++
		x, k, err := Eval(v.X, ctx)
		if err != nil {
			return 0, 0, err
		}
		return evalUnary(v.Op, x, k)
	case nir.Binary:
		ctx.Ops++
		l, lk, err := Eval(v.L, ctx)
		if err != nil {
			return 0, 0, err
		}
		r, rk, err := Eval(v.R, ctx)
		if err != nil {
			return 0, 0, err
		}
		return evalBinary(v.Op, l, lk, r, rk)
	case nir.FcnCall:
		return 0, 0, fmt.Errorf("rt: runtime call %q in value position", v.Name)
	case nir.StrConst:
		return 0, 0, fmt.Errorf("rt: string constant in value position")
	}
	return 0, 0, fmt.Errorf("rt: unsupported value %T", v)
}

// evalSubscripted reads one array element through a Subscript field.
func evalSubscripted(av nir.AVar, ctx *EvalCtx) (float64, nir.ScalarKind, error) {
	arr, ok := ctx.Store.Arrays[av.Name]
	if !ok {
		return 0, 0, fmt.Errorf("rt: undefined array %q", av.Name)
	}
	sub, ok := av.Field.(nir.Subscript)
	if !ok {
		return 0, 0, fmt.Errorf("rt: whole-array reference to %q in scalar context", av.Name)
	}
	idx, err := evalIndexes(sub.Subs, ctx)
	if err != nil {
		return 0, 0, err
	}
	off, err := arr.Offset(idx)
	if err != nil {
		return 0, 0, fmt.Errorf("rt: %q: %w", av.Name, err)
	}
	return arr.Data[off], arr.Kind, nil
}

func evalIndexes(subs []nir.Value, ctx *EvalCtx) ([]int, error) {
	idx := make([]int, len(subs))
	for d, s := range subs {
		v, _, err := Eval(s, ctx)
		if err != nil {
			return nil, err
		}
		idx[d] = int(math.Trunc(v))
	}
	return idx, nil
}

func boolToF(b bool) float64 {
	if b {
		return 1
	}
	return 0
}

func evalUnary(op nir.UnOp, x float64, k nir.ScalarKind) (float64, nir.ScalarKind, error) {
	switch op {
	case nir.Neg:
		return -x, k, nil
	case nir.NotU:
		return boolToF(x == 0), nir.Logical32, nil
	case nir.Abs:
		return math.Abs(x), k, nil
	case nir.Sqrt:
		return math.Sqrt(x), floatKind(k), nil
	case nir.Sin:
		return math.Sin(x), floatKind(k), nil
	case nir.Cos:
		return math.Cos(x), floatKind(k), nil
	case nir.Tan:
		return math.Tan(x), floatKind(k), nil
	case nir.Exp:
		return math.Exp(x), floatKind(k), nil
	case nir.Log:
		return math.Log(x), floatKind(k), nil
	case nir.ToFloat64:
		return x, nir.Float64, nil
	case nir.ToFloat32:
		return x, nir.Float32, nil
	case nir.ToInteger32:
		return math.Trunc(x), nir.Integer32, nil
	}
	return 0, 0, fmt.Errorf("rt: unknown unary %v", op)
}

func floatKind(k nir.ScalarKind) nir.ScalarKind {
	if k == nir.Integer32 {
		return nir.Float64
	}
	return k
}

func evalBinary(op nir.BinOp, l float64, lk nir.ScalarKind, r float64, rk nir.ScalarKind) (float64, nir.ScalarKind, error) {
	bothInt := lk == nir.Integer32 && rk == nir.Integer32
	kind := nir.Float64
	if bothInt {
		kind = nir.Integer32
	} else if lk == nir.Float32 && rk != nir.Float64 || rk == nir.Float32 && lk != nir.Float64 {
		kind = nir.Float32
	}
	switch op {
	case nir.Plus:
		return l + r, kind, nil
	case nir.Minus:
		return l - r, kind, nil
	case nir.Mul:
		return l * r, kind, nil
	case nir.Div:
		if bothInt {
			if r == 0 {
				return 0, 0, fmt.Errorf("rt: integer division by zero")
			}
			return math.Trunc(l / r), nir.Integer32, nil
		}
		return l / r, kind, nil
	case nir.Mod:
		if bothInt {
			if r == 0 {
				return 0, 0, fmt.Errorf("rt: mod by zero")
			}
			return l - math.Trunc(l/r)*r, nir.Integer32, nil
		}
		return math.Mod(l, r), kind, nil
	case nir.Min:
		return math.Min(l, r), kind, nil
	case nir.Max:
		return math.Max(l, r), kind, nil
	case nir.Pow:
		if rk == nir.Integer32 {
			// Repeated multiplication, matching the PE strength reduction
			// and the reference interpreter.
			p := 1.0
			n := int64(r)
			neg := n < 0
			if neg {
				n = -n
			}
			for i := int64(0); i < n; i++ {
				p *= l
			}
			if neg {
				if bothInt {
					switch {
					case l == 1:
						return 1, nir.Integer32, nil
					case l == -1 && n%2 == 0:
						return 1, nir.Integer32, nil
					case l == -1:
						return -1, nir.Integer32, nil
					case l == 0:
						return 0, 0, fmt.Errorf("rt: zero to negative power")
					default:
						return 0, nir.Integer32, nil
					}
				}
				return 1 / p, kind, nil
			}
			return p, kind, nil
		}
		return math.Pow(l, r), kind, nil
	case nir.Equals:
		return boolToF(l == r), nir.Logical32, nil
	case nir.NotEquals:
		return boolToF(l != r), nir.Logical32, nil
	case nir.Less:
		return boolToF(l < r), nir.Logical32, nil
	case nir.LessEq:
		return boolToF(l <= r), nir.Logical32, nil
	case nir.Greater:
		return boolToF(l > r), nir.Logical32, nil
	case nir.GreaterEq:
		return boolToF(l >= r), nir.Logical32, nil
	case nir.AndOp:
		return boolToF(l != 0 && r != 0), nir.Logical32, nil
	case nir.OrOp:
		return boolToF(l != 0 || r != 0), nir.Logical32, nil
	case nir.EqvOp:
		return boolToF((l != 0) == (r != 0)), nir.Logical32, nil
	case nir.NeqvOp:
		return boolToF((l != 0) != (r != 0)), nir.Logical32, nil
	}
	return 0, 0, fmt.Errorf("rt: unknown binary %v", op)
}
