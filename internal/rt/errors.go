package rt

import "errors"

// Sentinel errors for the runtime system, matched by callers with
// errors.Is. Every error the communication layer returns wraps exactly
// one of these (or a faults.* sentinel for injected failures), so
// tooling can classify failures without string matching.
var (
	// ErrBadOperand reports a runtime call whose operand has the wrong
	// kind: an array where a scalar is required, a non-array reference
	// fed to an array intrinsic, an unsupported move target.
	ErrBadOperand = errors.New("bad operand")
	// ErrUndefined reports a reference to a name absent from the store.
	ErrUndefined = errors.New("undefined name")
	// ErrShape reports non-conforming extents: size mismatches, shift
	// dimensions out of range, transposes of non-matrices.
	ErrShape = errors.New("shape mismatch")
)
