// Package rt implements the CM runtime system substrate (§2.2, §5.2): CM
// array storage with blockwise geometry, the communication library the
// front end calls for grid shifts, general routing, and reductions, and a
// calibrated communication cost model. Under the slicewise model
// "interprocessor communication ... is in general no faster than in the
// previous programming model": communication is charged per element moved,
// with microcoded grid shifts far cheaper than the general router.
package rt

import (
	"fmt"
	"math"

	"f90y/internal/lower"
	"f90y/internal/nir"
	"f90y/internal/shape"
)

// Array is one CM array: flat column-major float64 storage (the Weitek
// datapath is 64-bit; integers and logicals travel in f64 lanes exactly).
type Array struct {
	Kind nir.ScalarKind
	Ext  []int
	Lo   []int
	Data []float64
	// Dist is the array's data distribution from !HPF$ directives; the
	// zero value is the default blockwise layout. It never changes
	// element storage (always flat column-major) — only the modeled
	// communication geometry.
	Dist shape.Distribution
}

// NewArray allocates a zeroed CM array for a shape.
func NewArray(kind nir.ScalarKind, s shape.Shape) *Array {
	ext := shape.Extents(s)
	lo := shape.Lowers(s)
	n := 1
	for _, e := range ext {
		n *= e
	}
	return &Array{Kind: kind, Ext: append([]int(nil), ext...), Lo: append([]int(nil), lo...), Data: make([]float64, n)}
}

// Size is the element count.
func (a *Array) Size() int { return len(a.Data) }

// Rank is the dimension count.
func (a *Array) Rank() int { return len(a.Ext) }

// Offset maps declared-space indexes to the storage offset.
func (a *Array) Offset(idx []int) (int, error) {
	off, stride := 0, 1
	for d := range a.Ext {
		i := idx[d] - a.Lo[d]
		if i < 0 || i >= a.Ext[d] {
			return 0, fmt.Errorf("rt: subscript %d out of bounds in dimension %d of extent %d", idx[d], d+1, a.Ext[d])
		}
		off += i * stride
		stride *= a.Ext[d]
	}
	return off, nil
}

// Coord returns the declared-space coordinate along dim (1-based) of the
// element at storage offset off.
func (a *Array) Coord(off, dim int) int {
	stride := 1
	for d := 0; d < dim-1; d++ {
		stride *= a.Ext[d]
	}
	return a.Lo[dim-1] + (off/stride)%a.Ext[dim-1]
}

// StoreVal writes v with the array's kind semantics (integers truncate).
func (a *Array) StoreVal(off int, v float64) {
	if a.Kind == nir.Integer32 {
		v = math.Trunc(v)
	}
	a.Data[off] = v
}

// StoreLanes writes len(src) consecutive values starting at off with the
// array's kind semantics — the vectorized form of StoreVal, shared by the
// executors so the per-kind conversion cannot drift between them.
func (a *Array) StoreLanes(off int, src []float64) {
	dst := a.Data[off : off+len(src)]
	if a.Kind == nir.Integer32 {
		for i, v := range src {
			dst[i] = math.Trunc(v)
		}
		return
	}
	copy(dst, src)
}

// StoreLanesMasked is StoreLanes under a mask: lane i is written only
// when mask[i] is nonzero.
func (a *Array) StoreLanesMasked(off int, src, mask []float64) {
	dst := a.Data[off : off+len(src)]
	mask = mask[:len(src)]
	if a.Kind == nir.Integer32 {
		for i, v := range src {
			if mask[i] != 0 {
				dst[i] = math.Trunc(v)
			}
		}
		return
	}
	for i, v := range src {
		if mask[i] != 0 {
			dst[i] = v
		}
	}
}

// Store holds all front-end scalars and CM arrays of a running program.
type Store struct {
	Arrays  map[string]*Array
	Scalars map[string]float64
	Kinds   map[string]nir.ScalarKind
}

// NewStore allocates storage for every non-PARAMETER symbol.
func NewStore(syms *lower.SymTab) *Store {
	st := &Store{Arrays: map[string]*Array{}, Scalars: map[string]float64{}, Kinds: map[string]nir.ScalarKind{}}
	for _, sym := range syms.All() {
		if sym.Param {
			continue
		}
		st.Kinds[sym.Name] = sym.Kind
		if sym.Shape == nil {
			st.Scalars[sym.Name] = 0
			continue
		}
		a := NewArray(sym.Kind, sym.Shape)
		a.Dist = sym.Dist
		st.Arrays[sym.Name] = a
	}
	return st
}

// SetScalar writes a scalar with kind semantics.
func (st *Store) SetScalar(name string, v float64) {
	if st.Kinds[name] == nir.Integer32 {
		v = math.Trunc(v)
	}
	st.Scalars[name] = v
}

// FormatVal renders a value the way the reference interpreter prints it,
// so compiled and interpreted PRINT output can be compared byte-for-byte.
func FormatVal(kind nir.ScalarKind, v float64) string {
	switch kind {
	case nir.Integer32:
		return fmt.Sprintf("%d", int64(v))
	case nir.Logical32:
		if v != 0 {
			return "T"
		}
		return "F"
	default:
		return fmt.Sprintf("%g", v)
	}
}
