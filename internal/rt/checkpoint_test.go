package rt

import (
	"errors"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func testCkpt() *Checkpoint {
	return &Checkpoint{
		Schema:  CkptSchema,
		Machine: "cm2",
		NextOp:  3,
		Flops:   42,
		Scalars: map[string]float64{"i": 7},
		Kinds:   nil,
		Arrays:  map[string]CkptArray{"a": {Ext: []int{2}, Lo: []int{1}, Data: []float64{1.5, -2.25}}},
	}
}

// TestCheckpointTrailerRoundTrip: Write appends the CRC trailer,
// ReadCheckpoint verifies it, and the snapshot round-trips intact.
func TestCheckpointTrailerRoundTrip(t *testing.T) {
	path := filepath.Join(t.TempDir(), "ck.json")
	if err := testCkpt().Write(path); err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(string(data), ckptTrailer) {
		t.Fatalf("written checkpoint carries no %q trailer", ckptTrailer)
	}
	ck, err := ReadCheckpoint(path)
	if err != nil {
		t.Fatal(err)
	}
	if ck.NextOp != 3 || ck.Flops != 42 || ck.Scalars["i"] != 7 || ck.Arrays["a"].Data[1] != -2.25 {
		t.Errorf("round trip mangled the snapshot: %+v", ck)
	}
}

// TestCheckpointTruncated: a file cut off mid-body (torn write) is
// reported as ErrCkptTruncated, never as a bare decode error.
func TestCheckpointTruncated(t *testing.T) {
	path := filepath.Join(t.TempDir(), "ck.json")
	if err := testCkpt().Write(path); err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	for _, keep := range []int{0, 1, len(data) / 2, len(data) - 3} {
		if err := os.WriteFile(path, data[:keep], 0o644); err != nil {
			t.Fatal(err)
		}
		_, rerr := ReadCheckpoint(path)
		if !errors.Is(rerr, ErrCkptTruncated) {
			t.Errorf("truncated to %d bytes: err = %v, want ErrCkptTruncated", keep, rerr)
		}
		if errors.Is(rerr, ErrCkptCorrupt) {
			t.Errorf("truncated to %d bytes also matched ErrCkptCorrupt; sentinels must be distinct", keep)
		}
	}
}

// TestCheckpointCorrupt: a complete file whose body was bit-flipped
// after commit fails the CRC with ErrCkptCorrupt.
func TestCheckpointCorrupt(t *testing.T) {
	path := filepath.Join(t.TempDir(), "ck.json")
	if err := testCkpt().Write(path); err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	data[len(data)/3] ^= 0x40 // flip a bit in the body, trailer intact
	if err := os.WriteFile(path, data, 0o644); err != nil {
		t.Fatal(err)
	}
	_, rerr := ReadCheckpoint(path)
	if !errors.Is(rerr, ErrCkptCorrupt) {
		t.Errorf("bit-flipped body: err = %v, want ErrCkptCorrupt", rerr)
	}
	if errors.Is(rerr, ErrCkptTruncated) {
		t.Error("bit-flipped body also matched ErrCkptTruncated; sentinels must be distinct")
	}
}

// TestCheckpointWriteLeavesNoTemp: the atomic write cleans its
// temporary file up on success.
func TestCheckpointWriteLeavesNoTemp(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "ck.json")
	if err := testCkpt().Write(path); err != nil {
		t.Fatal(err)
	}
	ents, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(ents) != 1 || ents[0].Name() != "ck.json" {
		names := make([]string, len(ents))
		for i, e := range ents {
			names[i] = e.Name()
		}
		t.Errorf("directory after Write: %v, want exactly [ck.json]", names)
	}
}
