package rt

import (
	"context"
	"errors"
	"fmt"
)

// ErrCanceled is the sentinel wrapped by every error the pipeline or a
// machine model returns because its context was canceled or its
// deadline expired. Callers classify with errors.Is(err, ErrCanceled);
// the underlying context.Canceled / context.DeadlineExceeded cause is
// wrapped alongside it, so errors.Is against either also works.
var ErrCanceled = errors.New("run canceled")

// Canceled converts a done context into the structured cancellation
// error: it wraps both ErrCanceled and the context's cause. Call it
// only after ctx.Done() fired (or ctx.Err() returned non-nil).
func Canceled(ctx context.Context) error {
	cause := context.Cause(ctx)
	if cause == nil {
		cause = context.Canceled
	}
	return fmt.Errorf("%w: %w", ErrCanceled, cause)
}
