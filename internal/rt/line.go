package rt

import (
	"fmt"
	"strconv"
	"strings"
)

// LineRef is one source-line cycle-attribution cell: the PEAC routine the
// cycles were modeled in, the Fortran file and line the work descends
// from, and the cycle class ("vector-arith", "load-store", ..., plus the
// machine-specific "degrade" and "sparc-issue" buckets). It is the key of
// the PELineCycles maps carried by results and checkpoints.
//
// LineRef implements encoding.TextMarshaler/TextUnmarshaler so the maps
// serialize as ordinary JSON objects; the text form is
// "routine|file:line|class" and round-trips exactly (routine names,
// file names, and class names never contain '|').
type LineRef struct {
	Routine string
	File    string
	Line    int
	Class   string
}

func (l LineRef) String() string {
	return fmt.Sprintf("%s|%s:%d|%s", l.Routine, l.File, l.Line, l.Class)
}

// MarshalText renders the "routine|file:line|class" key form.
func (l LineRef) MarshalText() ([]byte, error) {
	return []byte(l.String()), nil
}

// UnmarshalText parses the form written by MarshalText. The file:line
// field splits at the last ':' so file names containing colons survive.
func (l *LineRef) UnmarshalText(text []byte) error {
	parts := strings.Split(string(text), "|")
	if len(parts) != 3 {
		return fmt.Errorf("rt: malformed line ref %q", text)
	}
	loc := parts[1]
	i := strings.LastIndexByte(loc, ':')
	if i < 0 {
		return fmt.Errorf("rt: malformed line ref location %q", loc)
	}
	line, err := strconv.Atoi(loc[i+1:])
	if err != nil {
		return fmt.Errorf("rt: malformed line ref line number %q: %w", loc[i+1:], err)
	}
	l.Routine, l.File, l.Line, l.Class = parts[0], loc[:i], line, parts[2]
	return nil
}

// CopyLineMap returns an independent copy of a per-line cycle map. A nil
// map copies to an empty (non-nil) map, matching CopyMap.
func CopyLineMap(m map[LineRef]float64) map[LineRef]float64 {
	out := make(map[LineRef]float64, len(m))
	for k, v := range m {
		out[k] = v
	}
	return out
}

// MergeLineMaps sums any number of per-line cycle maps into a fresh map
// (nil inputs are skipped); the profiler uses it to overlay the comm
// network attribution onto the PE attribution.
func MergeLineMaps(maps ...map[LineRef]float64) map[LineRef]float64 {
	out := map[LineRef]float64{}
	for _, m := range maps {
		for k, v := range m {
			out[k] += v
		}
	}
	return out
}

// CommRoutine is the pseudo-routine name under which communication
// cycles are attributed to source lines (there is no PEAC routine for a
// router or NEWS transfer; the network itself is the "routine").
const CommRoutine = "(comm)"
