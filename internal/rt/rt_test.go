package rt

import (
	"math"
	"testing"
	"testing/quick"

	"f90y/internal/lower"
	"f90y/internal/nir"
	"f90y/internal/parser"
	"f90y/internal/shape"
)

func storeFor(t *testing.T, src string) (*Store, *lower.SymTab) {
	t.Helper()
	tree, err := parser.Parse("t.f90", src)
	if err != nil {
		t.Fatal(err)
	}
	mod, err := lower.Lower(tree)
	if err != nil {
		t.Fatal(err)
	}
	return NewStore(mod.Syms), mod.Syms
}

func TestStoreAllocation(t *testing.T) {
	st, _ := storeFor(t, `program t
integer, parameter :: n = 8
real, array(n,n) :: a
integer v(n)
real s
s = 1.0
a = s
v = 1
end program t`)
	if st.Arrays["a"] == nil || st.Arrays["a"].Size() != 64 {
		t.Fatalf("a: %+v", st.Arrays["a"])
	}
	if st.Arrays["v"].Kind != nir.Integer32 {
		t.Fatalf("v kind: %v", st.Arrays["v"].Kind)
	}
	if _, ok := st.Scalars["s"]; !ok {
		t.Fatal("s missing")
	}
	if _, ok := st.Scalars["n"]; ok {
		t.Fatal("PARAMETER must not be allocated")
	}
}

func TestArrayOffsetColumnMajor(t *testing.T) {
	a := NewArray(nir.Float64, shape.Of(4, 3))
	off, err := a.Offset([]int{2, 1})
	if err != nil || off != 1 {
		t.Fatalf("offset(2,1) = %d, %v", off, err)
	}
	off, _ = a.Offset([]int{1, 2})
	if off != 4 {
		t.Fatalf("offset(1,2) = %d", off)
	}
	if _, err := a.Offset([]int{5, 1}); err == nil {
		t.Fatal("out of bounds accepted")
	}
	// Coord inverts offset.
	if a.Coord(4, 1) != 1 || a.Coord(4, 2) != 2 {
		t.Fatalf("coord(4) = (%d,%d)", a.Coord(4, 1), a.Coord(4, 2))
	}
}

func TestIntegerStoreTruncates(t *testing.T) {
	a := NewArray(nir.Integer32, shape.Of(2))
	a.StoreVal(0, 3.9)
	a.StoreVal(1, -3.9)
	if a.Data[0] != 3 || a.Data[1] != -3 {
		t.Fatalf("trunc: %v", a.Data)
	}
}

func TestEvalScalarExpressions(t *testing.T) {
	st, _ := storeFor(t, "program t\ninteger i\nreal x\ni = 1\nx = 1.0\nend program t")
	st.Scalars["i"] = 7
	st.Scalars["x"] = 2.5
	ctx := &EvalCtx{Store: st}
	cases := []struct {
		v    nir.Value
		want float64
	}{
		{nir.Binary{Op: nir.Plus, L: nir.SVar{Name: "i"}, R: nir.IntConst(3)}, 10},
		{nir.Binary{Op: nir.Div, L: nir.IntConst(7), R: nir.IntConst(2)}, 3},
		{nir.Binary{Op: nir.Div, L: nir.FloatConst(7), R: nir.FloatConst(2)}, 3.5},
		{nir.Binary{Op: nir.Mod, L: nir.IntConst(-7), R: nir.IntConst(3)}, -1},
		{nir.Binary{Op: nir.Pow, L: nir.SVar{Name: "x"}, R: nir.IntConst(2)}, 6.25},
		{nir.Unary{Op: nir.Neg, X: nir.SVar{Name: "x"}}, -2.5},
		{nir.Binary{Op: nir.Less, L: nir.SVar{Name: "i"}, R: nir.IntConst(10)}, 1},
		{nir.Unary{Op: nir.NotU, X: nir.BoolConst(false)}, 1},
		{nir.Binary{Op: nir.Max, L: nir.IntConst(3), R: nir.IntConst(9)}, 9},
	}
	for _, c := range cases {
		got, _, err := Eval(c.v, ctx)
		if err != nil || got != c.want {
			t.Errorf("%s = %v (%v), want %v", nir.PrintValue(c.v), got, err, c.want)
		}
	}
}

func TestEvalErrors(t *testing.T) {
	st := &Store{Arrays: map[string]*Array{}, Scalars: map[string]float64{}, Kinds: map[string]nir.ScalarKind{}}
	ctx := &EvalCtx{Store: st}
	for _, v := range []nir.Value{
		nir.SVar{Name: "ghost"},
		nir.Binary{Op: nir.Div, L: nir.IntConst(1), R: nir.IntConst(0)},
		nir.LocalUnder{S: shape.Of(4), Dim: 1},
		nir.FcnCall{Name: "cm_cshift"},
	} {
		if _, _, err := Eval(v, ctx); err == nil {
			t.Errorf("no error for %s", nir.PrintValue(v))
		}
	}
}

func newComm(st *Store) *Comm {
	return &Comm{Store: st, PEs: 64, Cost: DefaultCommCost}
}

func TestCommCshift(t *testing.T) {
	st, _ := storeFor(t, "program t\ninteger a(4), b(4)\na = 0\nb = 0\nend program t")
	for i := 0; i < 4; i++ {
		st.Arrays["a"].Data[i] = float64(i + 1)
	}
	c := newComm(st)
	mv := nir.Move{Over: shape.Of(4), Moves: []nir.GuardedMove{{
		Mask: nir.True,
		Src: nir.FcnCall{Name: "cm_cshift", Args: []nir.Value{
			nir.AVar{Name: "a", Field: nir.Everywhere{}}, nir.IntConst(1), nir.IntConst(1)}},
		Tgt: nir.AVar{Name: "b", Field: nir.Everywhere{}},
	}}}
	if err := c.ExecMove(mv); err != nil {
		t.Fatal(err)
	}
	want := []float64{2, 3, 4, 1}
	for i, w := range want {
		if st.Arrays["b"].Data[i] != w {
			t.Fatalf("b = %v", st.Arrays["b"].Data)
		}
	}
	if c.Cycles <= 0 || c.Calls != 1 {
		t.Fatalf("accounting: %v cycles, %d calls", c.Cycles, c.Calls)
	}
}

func TestCommReduce(t *testing.T) {
	st, _ := storeFor(t, "program t\nreal a(8)\nreal s\na = 0\ns = 0\nend program t")
	for i := range st.Arrays["a"].Data {
		st.Arrays["a"].Data[i] = float64(i)
	}
	c := newComm(st)
	mv := nir.Move{Moves: []nir.GuardedMove{{
		Mask: nir.True,
		Src:  nir.FcnCall{Name: "cm_reduce_sum", Args: []nir.Value{nir.AVar{Name: "a", Field: nir.Everywhere{}}}},
		Tgt:  nir.SVar{Name: "s"},
	}}}
	if err := c.ExecMove(mv); err != nil {
		t.Fatal(err)
	}
	if st.Scalars["s"] != 28 {
		t.Fatalf("s = %v", st.Scalars["s"])
	}
}

func TestGeneralMoveMisalignedSection(t *testing.T) {
	// §2.1: L(32:64) = L(96:128) scaled down — an overlapping shifted copy
	// through the router, honoring evaluate-before-store.
	st, _ := storeFor(t, "program t\ninteger l(8)\nl = 0\nend program t")
	for i := range st.Arrays["l"].Data {
		st.Arrays["l"].Data[i] = float64(i + 1)
	}
	c := newComm(st)
	sec := func(lo, hi int) nir.Field {
		return nir.Section{Subs: []nir.Triplet{{Lo: nir.IntConst(int64(lo)), Hi: nir.IntConst(int64(hi))}}}
	}
	mv := nir.Move{Over: shape.Of(4), Moves: []nir.GuardedMove{{
		Mask: nir.True,
		Src:  nir.AVar{Name: "l", Field: sec(3, 6)},
		Tgt:  nir.AVar{Name: "l", Field: sec(1, 4)},
	}}}
	if err := c.ExecMove(mv); err != nil {
		t.Fatal(err)
	}
	want := []float64{3, 4, 5, 6, 5, 6, 7, 8}
	for i, w := range want {
		if st.Arrays["l"].Data[i] != w {
			t.Fatalf("l = %v", st.Arrays["l"].Data)
		}
	}
}

func TestGridCheaperThanRouter(t *testing.T) {
	// The §2.2 cost relation: a grid shift of an array costs less than
	// pushing the same elements through the router.
	st, _ := storeFor(t, "program t\nreal a(4096), b(4096)\na = 0\nb = 0\nend program t")
	grid := newComm(st)
	shiftMove := nir.Move{Over: shape.Of(4096), Moves: []nir.GuardedMove{{
		Mask: nir.True,
		Src: nir.FcnCall{Name: "cm_cshift", Args: []nir.Value{
			nir.AVar{Name: "a", Field: nir.Everywhere{}}, nir.IntConst(1), nir.IntConst(1)}},
		Tgt: nir.AVar{Name: "b", Field: nir.Everywhere{}},
	}}}
	if err := grid.ExecMove(shiftMove); err != nil {
		t.Fatal(err)
	}
	router := newComm(st)
	full := nir.Section{Subs: []nir.Triplet{{Full: true}}}
	routerMove := nir.Move{Over: shape.Of(4096), Moves: []nir.GuardedMove{{
		Mask: nir.True,
		Src:  nir.AVar{Name: "a", Field: full},
		Tgt:  nir.AVar{Name: "b", Field: full},
	}}}
	if err := router.ExecMove(routerMove); err != nil {
		t.Fatal(err)
	}
	if grid.Cycles >= router.Cycles {
		t.Fatalf("grid %v !< router %v", grid.Cycles, router.Cycles)
	}
}

// Property: shift cost grows with |shift| distance and is always positive.
func TestShiftCostMonotoneProperty(t *testing.T) {
	st, _ := storeFor(t, "program t\nreal a(1024), b(1024)\na = 0\nb = 0\nend program t")
	cost := func(amt int) float64 {
		c := newComm(st)
		mv := nir.Move{Over: shape.Of(1024), Moves: []nir.GuardedMove{{
			Mask: nir.True,
			Src: nir.FcnCall{Name: "cm_cshift", Args: []nir.Value{
				nir.AVar{Name: "a", Field: nir.Everywhere{}}, nir.IntConst(int64(amt)), nir.IntConst(1)}},
			Tgt: nir.AVar{Name: "b", Field: nir.Everywhere{}},
		}}}
		if err := c.ExecMove(mv); err != nil {
			t.Fatal(err)
		}
		return c.Cycles
	}
	f := func(k uint8) bool {
		a := int(k%7) + 1
		return cost(a) > 0 && cost(a) <= cost(a+1)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

func TestFormatValMatchesInterpreterStyle(t *testing.T) {
	if FormatVal(nir.Integer32, 42) != "42" {
		t.Error("int format")
	}
	if FormatVal(nir.Logical32, 1) != "T" || FormatVal(nir.Logical32, 0) != "F" {
		t.Error("logical format")
	}
	if FormatVal(nir.Float64, 1.5) != "1.5" {
		t.Error("real format")
	}
	if FormatVal(nir.Float32, 0.25) != "0.25" {
		t.Error("f32 format")
	}
	_ = math.Pi
}

func TestCommEoshiftBoundary(t *testing.T) {
	st, _ := storeFor(t, "program t\ninteger a(4), b(4)\na = 0\nb = 0\nend program t")
	for i := 0; i < 4; i++ {
		st.Arrays["a"].Data[i] = float64(i + 1)
	}
	c := newComm(st)
	mv := nir.Move{Over: shape.Of(4), Moves: []nir.GuardedMove{{
		Mask: nir.True,
		Src: nir.FcnCall{Name: "cm_eoshift", Args: []nir.Value{
			nir.AVar{Name: "a", Field: nir.Everywhere{}}, nir.IntConst(1),
			nir.IntConst(-9), nir.IntConst(1)}},
		Tgt: nir.AVar{Name: "b", Field: nir.Everywhere{}},
	}}}
	if err := c.ExecMove(mv); err != nil {
		t.Fatal(err)
	}
	want := []float64{2, 3, 4, -9}
	for i, w := range want {
		if st.Arrays["b"].Data[i] != w {
			t.Fatalf("b = %v", st.Arrays["b"].Data)
		}
	}
}

func TestCommTransposeAndDot(t *testing.T) {
	st, _ := storeFor(t, `program t
integer, array(2,3) :: a
integer, array(3,2) :: b
integer v(3), w(3)
integer d
d = 0
v = 0
w = 0
a = 0
b = 0
end program t`)
	for i := 0; i < 6; i++ {
		st.Arrays["a"].Data[i] = float64(i + 1)
	}
	c := newComm(st)
	tr := nir.Move{Over: shape.Of(3, 2), Moves: []nir.GuardedMove{{
		Mask: nir.True,
		Src:  nir.FcnCall{Name: "cm_transpose", Args: []nir.Value{nir.AVar{Name: "a", Field: nir.Everywhere{}}}},
		Tgt:  nir.AVar{Name: "b", Field: nir.Everywhere{}},
	}}}
	if err := c.ExecMove(tr); err != nil {
		t.Fatal(err)
	}
	// a (2x3 col-major) = [[1,3,5],[2,4,6]]; b = a^T.
	want := []float64{1, 3, 5, 2, 4, 6}
	for i, w := range want {
		if st.Arrays["b"].Data[i] != w {
			t.Fatalf("b = %v", st.Arrays["b"].Data)
		}
	}

	for i := 0; i < 3; i++ {
		st.Arrays["v"].Data[i] = float64(i + 1)
		st.Arrays["w"].Data[i] = float64(i + 2)
	}
	dot := nir.Move{Moves: []nir.GuardedMove{{
		Mask: nir.True,
		Src: nir.FcnCall{Name: "cm_dot", Args: []nir.Value{
			nir.AVar{Name: "v", Field: nir.Everywhere{}},
			nir.AVar{Name: "w", Field: nir.Everywhere{}}}},
		Tgt: nir.SVar{Name: "d"},
	}}}
	if err := c.ExecMove(dot); err != nil {
		t.Fatal(err)
	}
	if st.Scalars["d"] != 1*2+2*3+3*4 {
		t.Fatalf("d = %v", st.Scalars["d"])
	}
}

func TestCommSpreadVector(t *testing.T) {
	st, _ := storeFor(t, `program t
integer v(3)
integer, array(2,3) :: a
v = 0
a = 0
end program t`)
	for i := 0; i < 3; i++ {
		st.Arrays["v"].Data[i] = float64(i + 1)
	}
	c := newComm(st)
	mv := nir.Move{Over: shape.Of(2, 3), Moves: []nir.GuardedMove{{
		Mask: nir.True,
		Src: nir.FcnCall{Name: "cm_spread", Args: []nir.Value{
			nir.AVar{Name: "v", Field: nir.Everywhere{}}, nir.IntConst(1), nir.IntConst(2)}},
		Tgt: nir.AVar{Name: "a", Field: nir.Everywhere{}},
	}}}
	if err := c.ExecMove(mv); err != nil {
		t.Fatal(err)
	}
	want := []float64{1, 1, 2, 2, 3, 3}
	for i, w := range want {
		if st.Arrays["a"].Data[i] != w {
			t.Fatalf("a = %v", st.Arrays["a"].Data)
		}
	}
}

func TestLogicalReductions(t *testing.T) {
	st, _ := storeFor(t, "program t\nlogical m(4)\ninteger n\nlogical p\nn = 0\np = .false.\nm = .false.\nend program t")
	st.Arrays["m"].Data = []float64{1, 0, 1, 1}
	c := newComm(st)
	run := func(fn, tgt string) {
		mv := nir.Move{Moves: []nir.GuardedMove{{
			Mask: nir.True,
			Src:  nir.FcnCall{Name: fn, Args: []nir.Value{nir.AVar{Name: "m", Field: nir.Everywhere{}}}},
			Tgt:  nir.SVar{Name: tgt},
		}}}
		if err := c.ExecMove(mv); err != nil {
			t.Fatal(err)
		}
	}
	run("cm_reduce_count", "n")
	if st.Scalars["n"] != 3 {
		t.Fatalf("count = %v", st.Scalars["n"])
	}
	run("cm_reduce_any", "p")
	if st.Scalars["p"] != 1 {
		t.Fatalf("any = %v", st.Scalars["p"])
	}
	run("cm_reduce_all", "p")
	if st.Scalars["p"] != 0 {
		t.Fatalf("all = %v", st.Scalars["p"])
	}
}

func TestGeneralMoveScatterSubscript(t *testing.T) {
	// FORALL-style reversal: a(i) = b(9-i) via subscripted refs.
	st, _ := storeFor(t, "program t\ninteger a(8), b(8)\na = 0\nb = 0\nend program t")
	for i := 0; i < 8; i++ {
		st.Arrays["b"].Data[i] = float64(i + 1)
	}
	c := newComm(st)
	S := shape.Of(8)
	coord := nir.LocalUnder{S: S, Dim: 1}
	mv := nir.Move{Over: S, Moves: []nir.GuardedMove{{
		Mask: nir.True,
		Src: nir.AVar{Name: "b", Field: nir.Subscript{Subs: []nir.Value{
			nir.Binary{Op: nir.Minus, L: nir.IntConst(9), R: coord}}}},
		Tgt: nir.AVar{Name: "a", Field: nir.Subscript{Subs: []nir.Value{coord}}},
	}}}
	if err := c.ExecMove(mv); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 8; i++ {
		if st.Arrays["a"].Data[i] != float64(8-i) {
			t.Fatalf("a = %v", st.Arrays["a"].Data)
		}
	}
}

func TestGeneralMoveMasked(t *testing.T) {
	st, _ := storeFor(t, "program t\ninteger a(6), b(6)\na = 0\nb = 0\nend program t")
	for i := 0; i < 6; i++ {
		st.Arrays["b"].Data[i] = float64(10 * (i + 1))
		st.Arrays["a"].Data[i] = -1
	}
	c := newComm(st)
	S := shape.Of(6)
	coord := nir.LocalUnder{S: S, Dim: 1}
	mv := nir.Move{Over: S, Moves: []nir.GuardedMove{{
		Mask: nir.Binary{Op: nir.Equals,
			L: nir.Binary{Op: nir.Mod, L: coord, R: nir.IntConst(2)}, R: nir.IntConst(0)},
		Src: nir.AVar{Name: "b", Field: nir.Subscript{Subs: []nir.Value{nir.Binary{Op: nir.Minus, L: nir.IntConst(7), R: coord}}}},
		Tgt: nir.AVar{Name: "a", Field: nir.Subscript{Subs: []nir.Value{coord}}},
	}}}
	if err := c.ExecMove(mv); err != nil {
		t.Fatal(err)
	}
	want := []float64{-1, 50, -1, 30, -1, 10}
	for i, w := range want {
		if st.Arrays["a"].Data[i] != w {
			t.Fatalf("a = %v", st.Arrays["a"].Data)
		}
	}
}

func TestUnaryEvalFunctions(t *testing.T) {
	st := &Store{Arrays: map[string]*Array{}, Scalars: map[string]float64{}, Kinds: map[string]nir.ScalarKind{}}
	ctx := &EvalCtx{Store: st}
	cases := []struct {
		op   nir.UnOp
		x    float64
		want float64
	}{
		{nir.Sqrt, 9, 3},
		{nir.Abs, -4, 4},
		{nir.Exp, 0, 1},
		{nir.Log, 1, 0},
		{nir.Sin, 0, 0},
		{nir.Cos, 0, 1},
		{nir.Tan, 0, 0},
		{nir.ToInteger32, 3.7, 3},
	}
	for _, cse := range cases {
		got, _, err := Eval(nir.Unary{Op: cse.op, X: nir.FloatConst(cse.x)}, ctx)
		if err != nil || math.Abs(got-cse.want) > 1e-15 {
			t.Errorf("%v(%v) = %v (%v)", cse.op, cse.x, got, err)
		}
	}
}
