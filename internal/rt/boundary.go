package rt

// Boundary snapshot/resume plumbing shared by every machine model.
// The CM/2 and CM-5 back ends checkpoint the same state at a host
// boundary — store, output, call counts, and the cycle buckets — and
// differ only in machine-specific extras (the CM-5's three-way node
// split travels in Checkpoint.Extra). Centralizing the common fields
// here means a new checkpoint field cannot silently drift between
// targets.

// CopyMap returns an independent copy of a cycle-bucket map. A nil map
// copies to an empty (non-nil) map.
func CopyMap(m map[string]float64) map[string]float64 {
	out := make(map[string]float64, len(m))
	for k, v := range m {
		out[k] = v
	}
	return out
}

// Boundary identifies a host-program resume position: the next
// top-level op and, inside a top-level serial DO, the last completed
// iteration.
type Boundary struct {
	Machine  string // "cm2" or "cm5"
	NextOp   int
	InLoop   bool
	IterDone int
}

// HostState is the host VM's contribution to a snapshot: accumulated
// output and the front-end cycle attribution.
type HostState struct {
	Output      []string
	Cycles      float64
	ClassCycles map[string]float64
}

// ExecTotals is the machine-independent node-side accumulator state a
// snapshot carries and a resume restores: flop and dispatch counts plus
// the PE cycle total and its attributions.
type ExecTotals struct {
	Flops           int64
	NodeCalls       int
	PECycles        float64
	PEClassCycles   map[string]float64
	PERoutineCycles map[string]float64
	PELineCycles    map[LineRef]float64
}

// SnapshotBoundary captures the checkpoint state shared by every
// machine model: the store, the resume position, the host VM state, the
// communication layer's buckets, and the node-side totals. Machine
// layers add their extras (Checkpoint.Extra) on the returned snapshot.
func SnapshotBoundary(store *Store, comm *Comm, b Boundary, host HostState, tot ExecTotals) *Checkpoint {
	ck := store.Checkpoint()
	ck.Machine = b.Machine
	ck.NextOp, ck.InLoop, ck.IterDone = b.NextOp, b.InLoop, b.IterDone
	ck.Output = append([]string(nil), host.Output...)
	ck.Flops = tot.Flops
	ck.NodeCalls = tot.NodeCalls
	ck.CommCalls = comm.Calls
	ck.HostCycles = host.Cycles
	ck.PECycles = tot.PECycles
	ck.CommCycles = comm.Cycles
	ck.PEClassCycles = CopyMap(tot.PEClassCycles)
	ck.PERoutineCycles = CopyMap(tot.PERoutineCycles)
	ck.PELineCycles = CopyLineMap(tot.PELineCycles)
	ck.CommClassCycles = CopyMap(comm.ClassCycles)
	ck.CommLineCycles = CopyLineMap(comm.LineCycles)
	ck.HostClassCycles = host.ClassCycles
	return ck
}

// ResumeBoundary restores the shared snapshot state: the store and the
// communication layer in place, and the node-side totals by value for
// the machine layer's accumulators. The returned maps are copies, so a
// resumed run never aliases the checkpoint.
func ResumeBoundary(ck *Checkpoint, store *Store, comm *Comm) (ExecTotals, error) {
	if err := ck.ApplyStore(store); err != nil {
		return ExecTotals{}, err
	}
	comm.Restore(ck.CommClassCycles, ck.CommLineCycles, ck.CommCalls)
	return ExecTotals{
		Flops:           ck.Flops,
		NodeCalls:       ck.NodeCalls,
		PECycles:        ck.PECycles,
		PEClassCycles:   CopyMap(ck.PEClassCycles),
		PERoutineCycles: CopyMap(ck.PERoutineCycles),
		PELineCycles:    CopyLineMap(ck.PELineCycles),
	}, nil
}
