package rt

import (
	"encoding/json"
	"fmt"
	"os"

	"f90y/internal/nir"
)

// CkptSchema identifies the snapshot format. Bump the version when the
// layout changes incompatibly; ReadCheckpoint rejects other schemas.
const CkptSchema = "f90y-ckpt/v1"

// CkptArray is one serialized CM array. Data round-trips exactly:
// encoding/json renders float64 with enough digits to reproduce the
// IEEE bit pattern.
type CkptArray struct {
	Kind nir.ScalarKind `json:"kind"`
	Ext  []int          `json:"ext"`
	Lo   []int          `json:"lo"`
	Data []float64      `json:"data"`
}

// Checkpoint is a versioned machine snapshot taken at a host-program
// boundary: the complete store, the accumulated output and cycle
// attribution, and the resume position. A run restarted from a
// checkpoint continues at the boundary and produces the same final
// store and totals as one that never stopped.
type Checkpoint struct {
	Schema  string `json:"schema"`
	Machine string `json:"machine,omitempty"` // "cm2" or "cm5"

	// Resume position: the next top-level host op to execute. When
	// InLoop is set, op NextOp is a serial DO whose iterations through
	// IterDone (inclusive, declared-space index) have completed.
	NextOp   int  `json:"next_op"`
	InLoop   bool `json:"in_loop,omitempty"`
	IterDone int  `json:"iter_done,omitempty"`

	// Accumulated execution state. Totals are carried explicitly —
	// the class maps need not sum to them (PE routine overheads are
	// attributed per routine, not per class).
	Output          []string           `json:"output,omitempty"`
	Flops           int64              `json:"flops"`
	NodeCalls       int                `json:"node_calls"`
	CommCalls       int                `json:"comm_calls"`
	HostCycles      float64            `json:"host_cycles"`
	PECycles        float64            `json:"pe_cycles"`
	CommCycles      float64            `json:"comm_cycles"`
	PEClassCycles   map[string]float64 `json:"pe_class_cycles,omitempty"`
	PERoutineCycles map[string]float64 `json:"pe_routine_cycles,omitempty"`
	// PELineCycles carries the source-line attribution; LineRef keys
	// serialize as "routine|file:line|class" strings.
	PELineCycles map[LineRef]float64 `json:"pe_line_cycles,omitempty"`
	// CommLineCycles carries the communication-network attribution under
	// the pseudo-routine CommRoutine, with Class "grid"/"router"/"reduce".
	CommLineCycles  map[LineRef]float64 `json:"comm_line_cycles,omitempty"`
	CommClassCycles map[string]float64  `json:"comm_class_cycles,omitempty"`
	HostClassCycles map[string]float64  `json:"host_class_cycles,omitempty"`
	// Extra carries machine-specific cycle buckets (the CM-5's
	// three-way split: "vu-cycles", "sparc-cycles", "degrade-cycles").
	Extra map[string]float64 `json:"extra,omitempty"`

	// The store.
	Scalars map[string]float64        `json:"scalars"`
	Kinds   map[string]nir.ScalarKind `json:"kinds"`
	Arrays  map[string]CkptArray      `json:"arrays"`
}

// Checkpoint snapshots the store into a fresh Checkpoint (resume
// position and cycle state left zero for the machine layer to fill).
func (st *Store) Checkpoint() *Checkpoint {
	ck := &Checkpoint{
		Schema:  CkptSchema,
		Scalars: map[string]float64{},
		Kinds:   map[string]nir.ScalarKind{},
		Arrays:  map[string]CkptArray{},
	}
	for name, v := range st.Scalars {
		ck.Scalars[name] = v
	}
	for name, k := range st.Kinds {
		ck.Kinds[name] = k
	}
	for name, a := range st.Arrays {
		ck.Arrays[name] = CkptArray{
			Kind: a.Kind,
			Ext:  append([]int(nil), a.Ext...),
			Lo:   append([]int(nil), a.Lo...),
			Data: append([]float64(nil), a.Data...),
		}
	}
	return ck
}

// ApplyStore restores the snapshot's scalars and arrays into a store
// freshly allocated from the same program. Symbols present in the
// store but absent from the snapshot keep their zero initialization.
func (ck *Checkpoint) ApplyStore(st *Store) error {
	for name, v := range ck.Scalars {
		if _, ok := st.Scalars[name]; !ok {
			return fmt.Errorf("rt: checkpoint scalar %q not in program: %w", name, ErrUndefined)
		}
		st.Scalars[name] = v
	}
	for name, ca := range ck.Arrays {
		a, ok := st.Arrays[name]
		if !ok {
			return fmt.Errorf("rt: checkpoint array %q not in program: %w", name, ErrUndefined)
		}
		if len(a.Data) != len(ca.Data) {
			return fmt.Errorf("rt: checkpoint array %q has %d elements, program declares %d: %w",
				name, len(ca.Data), len(a.Data), ErrShape)
		}
		copy(a.Data, ca.Data)
	}
	return nil
}

// Write serializes the checkpoint to path atomically (write to a
// temporary file in the same directory, then rename).
func (ck *Checkpoint) Write(path string) error {
	data, err := json.Marshal(ck)
	if err != nil {
		return fmt.Errorf("rt: encode checkpoint: %w", err)
	}
	tmp := path + ".tmp"
	if err := os.WriteFile(tmp, data, 0o644); err != nil {
		return fmt.Errorf("rt: write checkpoint: %w", err)
	}
	if err := os.Rename(tmp, path); err != nil {
		return fmt.Errorf("rt: commit checkpoint: %w", err)
	}
	return nil
}

// ReadCheckpoint loads and validates a snapshot written by Write.
func ReadCheckpoint(path string) (*Checkpoint, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, fmt.Errorf("rt: read checkpoint: %w", err)
	}
	ck := &Checkpoint{}
	if err := json.Unmarshal(data, ck); err != nil {
		return nil, fmt.Errorf("rt: decode checkpoint %s: %w", path, err)
	}
	if ck.Schema != CkptSchema {
		return nil, fmt.Errorf("rt: checkpoint %s has schema %q, want %q", path, ck.Schema, CkptSchema)
	}
	return ck, nil
}
